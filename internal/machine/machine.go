// Package machine defines the machine models consumed by the performance
// models in this toolbox: CPUs (multi-core hosts with a cache hierarchy) and
// GPUs (many-core accelerator devices), mirroring the heterogeneous systems
// the course targets (Section 2.1 of the paper).
//
// A machine model is a small set of first-order parameters — peak
// floating-point throughput, memory bandwidths and latencies per memory
// level — sufficient to drive the Roofline model, the ECM-style analytical
// models, and the LogGP cluster model. Models can be written down from data
// sheets (as students do from Agner Fog's tables) or calibrated empirically
// with package microbench.
package machine

import (
	"errors"
	"fmt"
	"strings"
)

// CacheLevel describes one level of the cache hierarchy.
type CacheLevel struct {
	Name      string // "L1", "L2", "L3"
	SizeBytes int64  // capacity per instance
	LineBytes int    // cache line size
	Assoc     int    // set associativity (ways)
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles float64
	// BandwidthBytesPerCycle is the sustainable transfer rate between this
	// level and the core (per core), in bytes per clock cycle.
	BandwidthBytesPerCycle float64
	// Shared reports whether the level is shared among all cores (true for
	// a typical L3) or private per core (typical L1/L2).
	Shared bool
}

// Sets returns the number of sets in the cache, or an error when the
// geometry is inconsistent (size not divisible by line*assoc).
func (c CacheLevel) Sets() (int, error) {
	if c.LineBytes <= 0 || c.Assoc <= 0 {
		return 0, fmt.Errorf("machine: %s has non-positive line or assoc", c.Name)
	}
	den := int64(c.LineBytes) * int64(c.Assoc)
	if c.SizeBytes%den != 0 {
		return 0, fmt.Errorf("machine: %s size %d not divisible by line*assoc %d",
			c.Name, c.SizeBytes, den)
	}
	return int(c.SizeBytes / den), nil
}

// CPU is the host processor model.
type CPU struct {
	Name  string
	Cores int
	// ThreadsPerCore is the SMT degree (1 = no hyper-threading).
	ThreadsPerCore int
	FreqHz         float64
	// FLOPsPerCyclePerCore is the peak double-precision floating-point
	// operations per cycle per core, folding in SIMD width, FMA, and the
	// number of FP execution ports (e.g. 16 for Haswell AVX2+FMA).
	FLOPsPerCyclePerCore float64
	// ScalarFLOPsPerCycle is the same without SIMD (used for the
	// "no-vectorization" roofline ceiling).
	ScalarFLOPsPerCycle float64
	Caches              []CacheLevel
	// MemBandwidthBytesPerSec is the sustainable main-memory bandwidth of
	// the full socket (STREAM triad scale).
	MemBandwidthBytesPerSec float64
	// MemLatencyNs is the idle main-memory load latency.
	MemLatencyNs float64
}

// PeakGFLOPS returns the peak double-precision throughput of all cores in
// GFLOP/s.
func (c CPU) PeakGFLOPS() float64 {
	return float64(c.Cores) * c.FreqHz * c.FLOPsPerCyclePerCore / 1e9
}

// PeakGFLOPSPerCore returns the single-core peak in GFLOP/s.
func (c CPU) PeakGFLOPSPerCore() float64 {
	return c.FreqHz * c.FLOPsPerCyclePerCore / 1e9
}

// ScalarPeakGFLOPS returns the all-core peak without SIMD in GFLOP/s.
func (c CPU) ScalarPeakGFLOPS() float64 {
	return float64(c.Cores) * c.FreqHz * c.ScalarFLOPsPerCycle / 1e9
}

// MemBandwidthGBs returns main-memory bandwidth in GB/s.
func (c CPU) MemBandwidthGBs() float64 { return c.MemBandwidthBytesPerSec / 1e9 }

// MachineBalance returns the machine balance in bytes per FLOP
// (bandwidth / peak), the quantity the Roofline ridge point is built from.
func (c CPU) MachineBalance() float64 {
	p := c.PeakGFLOPS() * 1e9
	if p == 0 {
		return 0
	}
	return c.MemBandwidthBytesPerSec / p
}

// RidgeAI returns the roofline ridge point in FLOP/byte: the arithmetic
// intensity at which the machine transitions from memory- to compute-bound.
func (c CPU) RidgeAI() float64 {
	if c.MemBandwidthBytesPerSec == 0 {
		return 0
	}
	return c.PeakGFLOPS() * 1e9 / c.MemBandwidthBytesPerSec
}

// Cache returns the cache level with the given name, if present.
func (c CPU) Cache(name string) (CacheLevel, bool) {
	for _, l := range c.Caches {
		if strings.EqualFold(l.Name, name) {
			return l, true
		}
	}
	return CacheLevel{}, false
}

// LastLevelCache returns the last (largest-index) cache level.
// ok is false when the hierarchy is empty.
func (c CPU) LastLevelCache() (CacheLevel, bool) {
	if len(c.Caches) == 0 {
		return CacheLevel{}, false
	}
	return c.Caches[len(c.Caches)-1], true
}

// Validate checks the model for internal consistency.
func (c CPU) Validate() error {
	if c.Cores <= 0 {
		return errors.New("machine: CPU needs at least one core")
	}
	if c.ThreadsPerCore <= 0 {
		return errors.New("machine: CPU needs ThreadsPerCore >= 1")
	}
	if c.FreqHz <= 0 {
		return errors.New("machine: CPU needs positive frequency")
	}
	if c.FLOPsPerCyclePerCore <= 0 {
		return errors.New("machine: CPU needs positive FLOPs/cycle")
	}
	if c.ScalarFLOPsPerCycle > c.FLOPsPerCyclePerCore {
		return errors.New("machine: scalar peak exceeds SIMD peak")
	}
	if c.MemBandwidthBytesPerSec <= 0 {
		return errors.New("machine: CPU needs positive memory bandwidth")
	}
	var prev int64
	for i, l := range c.Caches {
		if _, err := l.Sets(); err != nil {
			return err
		}
		if l.SizeBytes <= prev {
			return fmt.Errorf("machine: cache %d (%s) not larger than previous level", i, l.Name)
		}
		prev = l.SizeBytes
	}
	return nil
}

// GPU is the accelerator device model (the GPU is "the accelerator device to
// the CPU host" in the paper's terminology).
type GPU struct {
	Name       string
	SMs        int // streaming multiprocessors
	CoresPerSM int
	FreqHz     float64
	// FLOPsPerCyclePerCore is typically 2 (FMA).
	FLOPsPerCyclePerCore float64
	// MemBandwidthBytesPerSec is device-memory bandwidth.
	MemBandwidthBytesPerSec float64
	WarpSize                int
	MaxThreadsPerSM         int
	MaxBlocksPerSM          int
	SharedMemPerSMBytes     int
	RegistersPerSM          int
	// PCIeBandwidthBytesPerSec is the host-device transfer rate, needed to
	// model offload cost.
	PCIeBandwidthBytesPerSec float64
	PCIeLatencyUs            float64
}

// PeakGFLOPS returns peak device throughput in GFLOP/s.
func (g GPU) PeakGFLOPS() float64 {
	return float64(g.SMs*g.CoresPerSM) * g.FreqHz * g.FLOPsPerCyclePerCore / 1e9
}

// MemBandwidthGBs returns device-memory bandwidth in GB/s.
func (g GPU) MemBandwidthGBs() float64 { return g.MemBandwidthBytesPerSec / 1e9 }

// RidgeAI returns the device roofline ridge point in FLOP/byte.
func (g GPU) RidgeAI() float64 {
	if g.MemBandwidthBytesPerSec == 0 {
		return 0
	}
	return g.PeakGFLOPS() * 1e9 / g.MemBandwidthBytesPerSec
}

// Validate checks the device model for internal consistency.
func (g GPU) Validate() error {
	switch {
	case g.SMs <= 0 || g.CoresPerSM <= 0:
		return errors.New("machine: GPU needs positive SM/core counts")
	case g.FreqHz <= 0:
		return errors.New("machine: GPU needs positive frequency")
	case g.WarpSize <= 0:
		return errors.New("machine: GPU needs positive warp size")
	case g.MaxThreadsPerSM%g.WarpSize != 0:
		return errors.New("machine: MaxThreadsPerSM must be a multiple of WarpSize")
	case g.MemBandwidthBytesPerSec <= 0:
		return errors.New("machine: GPU needs positive memory bandwidth")
	}
	return nil
}

// Node is a heterogeneous compute node: one host CPU plus zero or more
// accelerator devices.
type Node struct {
	CPU  CPU
	GPUs []GPU
}

// PeakGFLOPS returns the combined peak of host and devices.
func (n Node) PeakGFLOPS() float64 {
	p := n.CPU.PeakGFLOPS()
	for _, g := range n.GPUs {
		p += g.PeakGFLOPS()
	}
	return p
}

// Validate checks every component model.
func (n Node) Validate() error {
	if err := n.CPU.Validate(); err != nil {
		return err
	}
	for i, g := range n.GPUs {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("machine: GPU %d: %w", i, err)
		}
	}
	return nil
}
