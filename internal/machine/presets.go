package machine

// Preset machine models. DAS5Node mirrors the standard node of the DAS-5
// cluster the course gives students access to (dual Xeon E5-2630v3 — here
// modeled as one 8-core socket — optionally with a GTX TitanX accelerator);
// the numbers are data-sheet values of the same kind students copy from
// vendor documentation and Agner Fog's instruction tables. GenericLaptop is
// a deliberately modest model used by examples so their output is
// reproducible anywhere.

// DAS5CPU returns a model of one Intel Xeon E5-2630 v3 (Haswell-EP) socket:
// 8 cores at 2.4 GHz, AVX2+FMA (16 DP FLOPs/cycle/core).
func DAS5CPU() CPU {
	return CPU{
		Name:                 "Intel Xeon E5-2630 v3 (Haswell-EP, 1 socket)",
		Cores:                8,
		ThreadsPerCore:       2,
		FreqHz:               2.4e9,
		FLOPsPerCyclePerCore: 16, // 2 FMA ports x 4-wide AVX2 DP
		ScalarFLOPsPerCycle:  2,  // 2 scalar FP ports
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8,
				LatencyCycles: 4, BandwidthBytesPerCycle: 64},
			{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8,
				LatencyCycles: 12, BandwidthBytesPerCycle: 32},
			{Name: "L3", SizeBytes: 20 << 20, LineBytes: 64, Assoc: 20,
				LatencyCycles: 34, BandwidthBytesPerCycle: 48, Shared: true},
		},
		MemBandwidthBytesPerSec: 59e9, // 4-channel DDR4-1866
		MemLatencyNs:            90,
	}
}

// DAS5TitanX returns a model of the NVIDIA GTX TitanX (Maxwell, compute
// capability 5.2) accelerator available in DAS-5 GPU nodes.
func DAS5TitanX() GPU {
	return GPU{
		Name:                     "NVIDIA GTX TitanX (Maxwell)",
		SMs:                      24,
		CoresPerSM:               128,
		FreqHz:                   1.0e9,
		FLOPsPerCyclePerCore:     2, // FMA
		MemBandwidthBytesPerSec:  336e9,
		WarpSize:                 32,
		MaxThreadsPerSM:          2048,
		MaxBlocksPerSM:           32,
		SharedMemPerSMBytes:      96 << 10,
		RegistersPerSM:           64 << 10,
		PCIeBandwidthBytesPerSec: 12e9, // PCIe 3.0 x16 effective
		PCIeLatencyUs:            10,
	}
}

// DAS5Node returns a heterogeneous DAS-5 GPU node model.
func DAS5Node() Node {
	return Node{CPU: DAS5CPU(), GPUs: []GPU{DAS5TitanX()}}
}

// GenericLaptop returns a modest 4-core mobile CPU model; examples use it so
// their printed models are identical on every machine.
func GenericLaptop() CPU {
	return CPU{
		Name:                 "Generic 4-core laptop CPU",
		Cores:                4,
		ThreadsPerCore:       2,
		FreqHz:               3.0e9,
		FLOPsPerCyclePerCore: 8, // AVX without dual FMA
		ScalarFLOPsPerCycle:  2,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8,
				LatencyCycles: 4, BandwidthBytesPerCycle: 32},
			{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8,
				LatencyCycles: 14, BandwidthBytesPerCycle: 16},
			{Name: "L3", SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16,
				LatencyCycles: 40, BandwidthBytesPerCycle: 8, Shared: true},
		},
		MemBandwidthBytesPerSec: 25e9,
		MemLatencyNs:            100,
	}
}
