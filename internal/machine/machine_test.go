package machine

import (
	"math"
	"testing"
)

func TestDAS5CPUPeaks(t *testing.T) {
	c := DAS5CPU()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 cores * 2.4 GHz * 16 FLOPs/cycle = 307.2 GFLOP/s
	if got := c.PeakGFLOPS(); math.Abs(got-307.2) > 1e-9 {
		t.Fatalf("PeakGFLOPS = %v, want 307.2", got)
	}
	if got := c.PeakGFLOPSPerCore(); math.Abs(got-38.4) > 1e-9 {
		t.Fatalf("PeakGFLOPSPerCore = %v, want 38.4", got)
	}
	if got := c.ScalarPeakGFLOPS(); math.Abs(got-38.4) > 1e-9 {
		t.Fatalf("ScalarPeakGFLOPS = %v, want 38.4", got)
	}
	// Ridge = 307.2e9 / 59e9 ≈ 5.2 FLOP/byte.
	if got := c.RidgeAI(); math.Abs(got-307.2/59) > 1e-9 {
		t.Fatalf("RidgeAI = %v", got)
	}
	if got := c.MachineBalance(); math.Abs(got-59.0/307.2) > 1e-9 {
		t.Fatalf("MachineBalance = %v", got)
	}
}

func TestCacheLookups(t *testing.T) {
	c := DAS5CPU()
	l2, ok := c.Cache("l2")
	if !ok || l2.SizeBytes != 256<<10 {
		t.Fatalf("Cache lookup failed: %v %v", l2, ok)
	}
	if _, ok := c.Cache("L9"); ok {
		t.Fatal("nonexistent cache found")
	}
	llc, ok := c.LastLevelCache()
	if !ok || llc.Name != "L3" || !llc.Shared {
		t.Fatalf("LLC = %v", llc)
	}
	if _, ok := (CPU{}).LastLevelCache(); ok {
		t.Fatal("empty hierarchy should report no LLC")
	}
}

func TestCacheSets(t *testing.T) {
	l1 := CacheLevel{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8}
	sets, err := l1.Sets()
	if err != nil || sets != 64 {
		t.Fatalf("Sets = %d, %v; want 64", sets, err)
	}
	bad := CacheLevel{Name: "X", SizeBytes: 1000, LineBytes: 64, Assoc: 8}
	if _, err := bad.Sets(); err == nil {
		t.Fatal("inconsistent geometry must error")
	}
}

func TestCPUValidateRejections(t *testing.T) {
	base := DAS5CPU()
	cases := []struct {
		name   string
		mutate func(*CPU)
	}{
		{"no cores", func(c *CPU) { c.Cores = 0 }},
		{"no threads", func(c *CPU) { c.ThreadsPerCore = 0 }},
		{"no freq", func(c *CPU) { c.FreqHz = 0 }},
		{"no flops", func(c *CPU) { c.FLOPsPerCyclePerCore = 0 }},
		{"scalar > simd", func(c *CPU) { c.ScalarFLOPsPerCycle = 99 }},
		{"no bandwidth", func(c *CPU) { c.MemBandwidthBytesPerSec = 0 }},
		{"shrinking caches", func(c *CPU) { c.Caches[1].SizeBytes = 1 << 10 }},
	}
	for _, tc := range cases {
		c := base
		c.Caches = append([]CacheLevel(nil), base.Caches...)
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestGPUPeaks(t *testing.T) {
	g := DAS5TitanX()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 24*128 cores * 1 GHz * 2 = 6144 GFLOP/s
	if got := g.PeakGFLOPS(); math.Abs(got-6144) > 1e-9 {
		t.Fatalf("GPU PeakGFLOPS = %v, want 6144", got)
	}
	if got := g.MemBandwidthGBs(); math.Abs(got-336) > 1e-9 {
		t.Fatalf("GPU bandwidth = %v", got)
	}
	if g.RidgeAI() <= 1 {
		t.Fatalf("GPU ridge should exceed 1 FLOP/byte, got %v", g.RidgeAI())
	}
}

func TestGPUValidateRejections(t *testing.T) {
	g := DAS5TitanX()
	g.MaxThreadsPerSM = 100 // not a multiple of warp size
	if err := g.Validate(); err == nil {
		t.Fatal("bad MaxThreadsPerSM must fail validation")
	}
	g = DAS5TitanX()
	g.WarpSize = 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero warp size must fail validation")
	}
}

func TestNode(t *testing.T) {
	n := DAS5Node()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	want := n.CPU.PeakGFLOPS() + n.GPUs[0].PeakGFLOPS()
	if got := n.PeakGFLOPS(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Node peak = %v, want %v", got, want)
	}
	n.GPUs[0].SMs = 0
	if err := n.Validate(); err == nil {
		t.Fatal("invalid GPU must fail node validation")
	}
}

func TestGenericLaptop(t *testing.T) {
	c := GenericLaptop()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The laptop must be memory-lean: ridge point above 1 FLOP/byte so the
	// classic matmul-naive-is-memory-bound story holds in examples.
	if c.RidgeAI() < 1 {
		t.Fatalf("laptop ridge %v too low", c.RidgeAI())
	}
}
