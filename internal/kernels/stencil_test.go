package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGrid2DBasics(t *testing.T) {
	g := NewGrid2D(4)
	g.Set(2, 3, 1.5)
	if g.At(2, 3) != 1.5 {
		t.Fatal("At/Set broken")
	}
	c := g.Clone()
	c.Set(1, 1, 9)
	if g.At(1, 1) != 0 {
		t.Fatal("Clone not deep")
	}
	if math.IsInf(g.MaxAbsDiff(c), 1) || g.MaxAbsDiff(c) != 9 {
		t.Fatalf("MaxAbsDiff = %v", g.MaxAbsDiff(c))
	}
	if !math.IsInf(g.MaxAbsDiff(NewGrid2D(5)), 1) {
		t.Fatal("size mismatch should be Inf")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid2D(0) must panic")
		}
	}()
	NewGrid2D(0)
}

func TestStencilSweepAveraging(t *testing.T) {
	// A uniform field is a fixed point of the 4-point average.
	g := NewGrid2D(6)
	for i := range g.Data {
		g.Data[i] = 3
	}
	dst := NewGrid2D(6)
	StencilSweep(g, dst)
	for i := 1; i <= 6; i++ {
		for j := 1; j <= 6; j++ {
			if dst.At(i, j) != 3 {
				t.Fatalf("uniform field not fixed point at (%d,%d): %v", i, j, dst.At(i, j))
			}
		}
	}
}

func TestStencilParallelMatchesSequential(t *testing.T) {
	g := HotBoundaryGrid(33)
	for _, w := range []int{1, 2, 5, 16, 64} {
		seq := StencilRun(g, 10, 1)
		par := StencilRun(g, 10, w)
		if d := seq.MaxAbsDiff(par); d > 1e-12 {
			t.Fatalf("workers=%d differs by %v", w, d)
		}
	}
}

func TestStencilHeatFlowsDown(t *testing.T) {
	g := HotBoundaryGrid(16)
	out := StencilRun(g, 50, 1)
	// Row 1 (next to the hot boundary) must be warmer than row 16.
	if out.At(1, 8) <= out.At(16, 8) {
		t.Fatalf("heat did not diffuse: top %v bottom %v", out.At(1, 8), out.At(16, 8))
	}
	// All interior values stay in [0, 1] (max principle).
	for i := 1; i <= 16; i++ {
		for j := 1; j <= 16; j++ {
			v := out.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("max principle violated at (%d,%d): %v", i, j, v)
			}
		}
	}
}

func TestStencilResidualShrinks(t *testing.T) {
	g := HotBoundaryGrid(12)
	a := StencilRun(g, 5, 1)
	b := StencilRun(g, 6, 1)
	early := StencilResidual(a, b)
	c := StencilRun(g, 50, 1)
	d := StencilRun(g, 51, 1)
	late := StencilResidual(c, d)
	if late >= early {
		t.Fatalf("Jacobi not converging: early %v late %v", early, late)
	}
}

func TestStencilWorkCharacterization(t *testing.T) {
	if StencilFLOPs(10, 2) != 1000 {
		t.Fatalf("StencilFLOPs = %v", StencilFLOPs(10, 2))
	}
	if StencilBytes(10) <= 0 {
		t.Fatal("StencilBytes must be positive")
	}
}

// Property: one sweep never exceeds the bounds of the source field
// (discrete maximum principle).
func TestQuickStencilMaxPrinciple(t *testing.T) {
	f := func(seed int64) bool {
		g := NewGrid2D(8)
		rngFill(g, seed)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range g.Data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		dst := NewGrid2D(8)
		StencilSweep(g, dst)
		for i := 1; i <= 8; i++ {
			for j := 1; j <= 8; j++ {
				v := dst.At(i, j)
				if v < lo-1e-12 || v > hi+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func rngFill(g *Grid2D, seed int64) {
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range g.Data {
		s = s*2862933555777941757 + 3037000493
		g.Data[i] = float64(s>>11) / float64(1<<53)
	}
}

func TestStencilRunDoesNotMutateInput(t *testing.T) {
	// Regression: StencilRun used to ping-pong into the caller's grid,
	// corrupting it for sweeps >= 2.
	g := HotBoundaryGrid(10)
	orig := g.Clone()
	for _, sweeps := range []int{0, 1, 2, 3, 7} {
		StencilRun(g, sweeps, 1)
		if d := g.MaxAbsDiff(orig); d != 0 {
			t.Fatalf("sweeps=%d mutated the input grid by %v", sweeps, d)
		}
	}
}
