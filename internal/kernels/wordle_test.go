package kernels

import (
	"testing"
	"testing/quick"
)

func fb(t *testing.T, guess, answer string) uint8 {
	t.Helper()
	code, err := Feedback(guess, answer)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// decode turns the base-3 code back into per-position marks.
func decode(code uint8) [5]uint8 {
	var m [5]uint8
	for i := 0; i < 5; i++ {
		m[i] = code % 3
		code /= 3
	}
	return m
}

func TestFeedbackExactMatch(t *testing.T) {
	if fb(t, "apple", "apple") != AllCorrect {
		t.Fatal("exact match must be all-correct")
	}
}

func TestFeedbackNoMatch(t *testing.T) {
	if fb(t, "about", "jinns") != 0 {
		t.Fatalf("disjoint words must be 0, got %v", decode(fb(t, "about", "jinns")))
	}
}

func TestFeedbackDuplicateRules(t *testing.T) {
	// Classic duplicate cases from the official rules.
	// guess "allee" vs answer "apple" (a-p-p-l-e):
	//   pos0 a==a -> 2
	//   pos4 e==e -> 2 (consumes the answer's only e)
	//   pos1 l: answer has one non-exact l (idx3) -> 1
	//   pos2 l: l supply exhausted -> 0
	//   pos3 e: e supply consumed by the exact match -> 0
	got := decode(fb(t, "allee", "apple"))
	want := [5]uint8{2, 1, 0, 0, 2}
	if got != want {
		t.Fatalf("allee/apple = %v, want %v", got, want)
	}
	// guess "speed" vs answer "abide": one e present, d present? answer
	// a-b-i-d-e. s:0 p:0 e: answer has one e (idx4): first e gets 1,
	// second e 0; d present -> 1.
	got = decode(fb(t, "speed", "abide"))
	want = [5]uint8{0, 0, 1, 0, 1}
	if got != want {
		t.Fatalf("speed/abide = %v, want %v", got, want)
	}
	// Exact match consumes before present: guess "eerie" vs answer
	// "tenet": e-e-r-i-e vs t-e-n-e-t. pos1 e==e -> 2. Supplies: answer
	// e at idx3 (1 left). pos0 e -> 1. pos4 e -> 0. r,i -> 0.
	got = decode(fb(t, "eerie", "tenet"))
	want = [5]uint8{1, 2, 0, 0, 0}
	if got != want {
		t.Fatalf("eerie/tenet = %v, want %v", got, want)
	}
}

func TestFeedbackErrors(t *testing.T) {
	if _, err := Feedback("abc", "apple"); err == nil {
		t.Fatal("short guess must fail")
	}
	if _, err := Feedback("apple", "hi"); err == nil {
		t.Fatal("short answer must fail")
	}
}

func TestNewWordleValidation(t *testing.T) {
	if _, err := NewWordle(nil); err == nil {
		t.Fatal("empty list must fail")
	}
	if _, err := NewWordle([]string{"toolong"}); err == nil {
		t.Fatal("wrong length must fail")
	}
	if _, err := NewWordle([]string{"ab!de"}); err == nil {
		t.Fatal("non-letter must fail")
	}
	if _, err := NewWordle([]string{"apple", "apple"}); err == nil {
		t.Fatal("duplicate must fail")
	}
	if len(DefaultWordList()) < 100 {
		t.Fatal("default list too small")
	}
}

func TestWordleSolvesEveryAnswer(t *testing.T) {
	w, err := NewWordle(DefaultWordList())
	if err != nil {
		t.Fatal(err)
	}
	w.Precompute()
	maxTurns := 0
	for answer := range w.Words {
		turns, err := w.Solve(answer, 0)
		if err != nil {
			t.Fatalf("answer %q: %v", w.Words[answer], err)
		}
		if turns > maxTurns {
			maxTurns = turns
		}
	}
	// The greedy expected-remaining strategy solves a 120-word list
	// comfortably within 6 guesses.
	if maxTurns > 6 {
		t.Fatalf("worst case %d guesses, want <= 6", maxTurns)
	}
}

func TestWordlePrecomputeMatchesDirect(t *testing.T) {
	words := DefaultWordList()[:40]
	direct, err := NewWordle(words)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewWordle(words)
	if err != nil {
		t.Fatal(err)
	}
	cached.Precompute()
	for answer := 0; answer < len(words); answer += 7 {
		td, err := direct.Solve(answer, 0)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := cached.Solve(answer, 0)
		if err != nil {
			t.Fatal(err)
		}
		if td != tc {
			t.Fatalf("answer %d: direct %d turns, cached %d", answer, td, tc)
		}
	}
}

func TestWordleParallelMatchesSequential(t *testing.T) {
	w, err := NewWordle(DefaultWordList()[:60])
	if err != nil {
		t.Fatal(err)
	}
	w.Precompute()
	candidates := make([]int, len(w.Words))
	for i := range candidates {
		candidates[i] = i
	}
	seq, err := w.BestGuess(candidates)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 64} {
		par, err := w.BestGuessParallel(candidates, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par != seq {
			t.Fatalf("workers=%d chose %d, sequential chose %d", workers, par, seq)
		}
	}
	if _, err := w.BestGuess(nil); err == nil {
		t.Fatal("no candidates must fail")
	}
	if _, err := w.BestGuessParallel(nil, 2); err == nil {
		t.Fatal("no candidates must fail")
	}
}

func TestWordleSolveErrors(t *testing.T) {
	w, _ := NewWordle(DefaultWordList()[:10])
	if _, err := w.Solve(-1, 0); err == nil {
		t.Fatal("bad answer index must fail")
	}
	if _, err := w.Solve(99, 0); err == nil {
		t.Fatal("out-of-range answer must fail")
	}
}

// Property: feedback is all-correct iff guess == answer, for words drawn
// from the default list.
func TestQuickFeedbackIdentity(t *testing.T) {
	words := DefaultWordList()
	f := func(gi, ai uint8) bool {
		g := words[int(gi)%len(words)]
		a := words[int(ai)%len(words)]
		code, err := Feedback(g, a)
		if err != nil {
			return false
		}
		return (code == AllCorrect) == (g == a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of "correct" marks equals the number of positions
// where the strings agree.
func TestQuickFeedbackCorrectCount(t *testing.T) {
	words := DefaultWordList()
	f := func(gi, ai uint8) bool {
		g := words[int(gi)%len(words)]
		a := words[int(ai)%len(words)]
		code, _ := Feedback(g, a)
		marks := decode(code)
		correct := 0
		for i := 0; i < 5; i++ {
			if marks[i] == 2 {
				correct++
			}
		}
		agree := 0
		for i := 0; i < 5; i++ {
			if g[i] == a[i] {
				agree++
			}
		}
		return correct == agree
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
