package kernels

import (
	"path/filepath"
	"testing"

	"perfeng/internal/benchgate"
	"perfeng/internal/telemetry"
	"perfeng/internal/tune"
)

// TestKernelsConsultTuningCache proves the acceptance property of the
// autotuner wiring: with a cache activated, the parallel kernel entry
// points actually hit it (observed through the tune telemetry
// counters), results stay identical to the sequential references, and
// deactivating restores the default dispatch with no residue.
func TestKernelsConsultTuningCache(t *testing.T) {
	reg := telemetry.NewRegistry()
	tune.EnableTelemetry(reg)
	t.Cleanup(func() { tune.EnableTelemetry(nil) })
	tune.Activate(nil)
	t.Cleanup(func() { tune.Activate(nil) })

	const n = 64
	const samples = 10000
	a, b := RandomDense(n, 1), RandomDense(n, 2)
	want := NewDense(n)
	MatMulIKJ(a, b, want)
	data := UniformSamples(samples, 3)
	wantCounts := make([]int64, 64)
	HistogramSeq(data, wantCounts)

	tune.Activate(&tune.Cache{Entries: []tune.Entry{
		{Kernel: tune.KernelMatMul, N: n,
			Config: tune.Config{Policy: "guided", Grain: 8, Tile: 16}},
		{Kernel: tune.KernelHistogram, N: samples,
			Config: tune.Config{Policy: "static", Grain: 512}},
	}})

	hits := reg.Counter("perfeng_tune_lookup_hits", "")

	got := NewDense(n)
	MatMulParallel(a, b, got, 0)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("tuned MatMulParallel diverges from reference: %g", d)
	}
	MatMulParallelTiled(a, b, got, 0, 0) // tile 0 → tuned tile 16
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("tuned MatMulParallelTiled diverges from reference: %g", d)
	}
	MatMulTiled(a, b, got, 0)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("tuned MatMulTiled diverges from reference: %g", d)
	}

	counts := make([]int64, 64)
	HistogramPrivate(data, counts, 0)
	for i := range counts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("tuned HistogramPrivate bin %d = %d, want %d", i, counts[i], wantCounts[i])
		}
	}

	if v := hits.Value(); v < 4 {
		t.Errorf("kernels consulted the cache %d times, want >= 4 (one per entry point)", v)
	}

	// Explicit worker pins bypass the cache: the caller chose.
	before := hits.Value()
	MatMulParallel(a, b, got, 2)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("pinned MatMulParallel diverges: %g", d)
	}
	if hits.Value() != before {
		t.Error("explicit workers pin still consulted the tuning cache")
	}

	// Deactivation restores the default path and stops consultation.
	tune.Activate(nil)
	before = hits.Value()
	MatMulParallel(a, b, got, 0)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("default MatMulParallel diverges after deactivation: %g", d)
	}
	if hits.Value() != before {
		t.Error("deactivated table still produced lookup hits")
	}
}

// TestStaleCacheFallsBackToDefaults is the doctored-cache test: a
// TUNED.json recorded on another machine refuses to activate, and a
// cache whose entries are corrupted degrades to the default dispatch —
// in both cases every kernel keeps producing reference results.
func TestStaleCacheFallsBackToDefaults(t *testing.T) {
	tune.Activate(nil)
	t.Cleanup(func() { tune.Activate(nil) })

	const n = 48
	a, b := RandomDense(n, 4), RandomDense(n, 5)
	want := NewDense(n)
	MatMulIKJ(a, b, want)

	// Stale = fingerprinted by a machine this host is not.
	stale := &tune.Cache{
		Env: benchgate.Environment{GOOS: "plan9", GOARCH: "mips", NumCPU: 1024, Procs: 1024},
		Entries: []tune.Entry{{Kernel: tune.KernelMatMul, N: n,
			Config: tune.Config{Policy: "static", Grain: 1, Tile: 8}}},
	}
	path := filepath.Join(t.TempDir(), "TUNED.json")
	if err := stale.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := tune.LoadAndActivate(path); err == nil {
		t.Fatal("stale-environment cache activated without error")
	}
	if tune.Active() {
		t.Fatal("stale-environment cache left a table active")
	}
	got := NewDense(n)
	MatMulParallel(a, b, got, 0)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("kernel diverges after stale-cache refusal: %g", d)
	}

	// Doctored entries (invalid policy) are skipped at activation; the
	// kernel silently uses its defaults.
	tune.Activate(&tune.Cache{Entries: []tune.Entry{{Kernel: tune.KernelMatMul, N: n,
		Config: tune.Config{Policy: "voodoo"}}}})
	MatMulParallel(a, b, got, 0)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("kernel diverges under a doctored cache: %g", d)
	}
}
