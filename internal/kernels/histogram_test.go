package kernels

import (
	"testing"
	"testing/quick"
)

func sumCounts(c []int64) int64 {
	var s int64
	for _, v := range c {
		s += v
	}
	return s
}

func TestHistogramSeqKnown(t *testing.T) {
	counts := make([]int64, 4)
	HistogramSeq([]float64{0.1, 0.3, 0.6, 0.9, 0.9}, counts)
	want := []int64{1, 1, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	counts := make([]int64, 4)
	HistogramSeq([]float64{-0.5, 1.5, 1.0}, counts)
	if counts[0] != 1 || counts[3] != 2 {
		t.Fatalf("clamping wrong: %v", counts)
	}
}

func TestParallelHistogramsMatchSequential(t *testing.T) {
	samples := UniformSamples(50_000, 7)
	const bins = 64
	ref := make([]int64, bins)
	HistogramSeq(samples, ref)
	strategies := map[string]func([]float64, []int64, int){
		"atomic":  HistogramAtomic,
		"private": HistogramPrivate,
		"mutex":   HistogramMutex,
	}
	for name, fn := range strategies {
		for _, workers := range []int{1, 2, 4, 7} {
			got := make([]int64, bins)
			fn(samples, got, workers)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s workers=%d bin %d: %d != %d",
						name, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestSkewedSamplesAreSkewed(t *testing.T) {
	samples := SkewedSamples(10_000, 4, 3)
	counts := make([]int64, 10)
	HistogramSeq(samples, counts)
	// With x^4 skew, the first bin must dominate.
	if counts[0] < counts[9]*5 {
		t.Fatalf("samples not skewed: %v", counts)
	}
}

func TestHistogramWorkCharacterization(t *testing.T) {
	if HistogramFLOPs(100) != 0 {
		t.Fatal("histogram declares no FLOPs")
	}
	if HistogramBytes(100, 10) != 880 {
		t.Fatalf("HistogramBytes = %v", HistogramBytes(100, 10))
	}
}

// Property: every strategy conserves the sample count.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		n := 1000
		workers := int(wRaw%8) + 1
		samples := UniformSamples(n, seed)
		for _, fn := range []func([]float64, []int64, int){
			HistogramAtomic, HistogramPrivate, HistogramMutex,
		} {
			counts := make([]int64, 16)
			fn(samples, counts, workers)
			if sumCounts(counts) != int64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSumAboveVariantsAgree(t *testing.T) {
	samples := UniformSamples(10_000, 3)
	want := SumAbove(samples, 0.5)
	got := SumAboveBranchless(samples, 0.5)
	if want != got {
		t.Fatalf("branchless %v != branchy %v", got, want)
	}
	// Sorted input computes the same sum as its unsorted source only if
	// we sort a copy — SortedSamples must not change the multiset.
	srt := SortedSamples(10_000, 3)
	// FP addition is not associative: sorted-order summation may differ
	// in the last bits, not more.
	if d := SumAbove(srt, 0.5) - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("sorting changed the sum by %v", d)
	}
	for i := 1; i < len(srt); i++ {
		if srt[i-1] > srt[i] {
			t.Fatal("SortedSamples not sorted")
		}
	}
}
