package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuildGraph(t *testing.T) {
	g := BuildGraph(4, [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if g.N != 4 || g.M() != 4 {
		t.Fatalf("graph shape wrong: N=%d M=%d", g.N, g.M())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
}

func TestBFSChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, plus isolated 4.
	g := BuildGraph(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	dist := BFS(g, 0)
	want := []int32{0, 1, 2, 3, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSGridDiameter(t *testing.T) {
	side := 9
	g := GridGraph(side)
	dist := BFS(g, 0)
	// Farthest corner is at Manhattan distance 2*(side-1).
	if got := dist[side*side-1]; got != int32(2*(side-1)) {
		t.Fatalf("corner distance = %d, want %d", got, 2*(side-1))
	}
	for _, d := range dist {
		if d < 0 {
			t.Fatal("grid graph is connected; no vertex may be unreachable")
		}
	}
}

func TestBFSParallelMatchesSequential(t *testing.T) {
	g := RandomGraph(500, 3000, 13)
	want := BFS(g, 0)
	for _, w := range []int{1, 2, 4, 16} {
		got := BFSParallel(g, 0, w)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d vertex %d: %d != %d", w, v, got[v], want[v])
			}
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := RandomGraph(200, 1000, 3)
	rank := PageRank(g, 0.85, 30)
	var sum float64
	for _, r := range rank {
		sum += r
		if r < 0 {
			t.Fatal("negative rank")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

func TestPageRankStarCenter(t *testing.T) {
	// Star: all point to vertex 0 -> vertex 0 must have the highest rank.
	var edges [][2]int32
	for v := int32(1); v < 10; v++ {
		edges = append(edges, [2]int32{v, 0})
	}
	g := BuildGraph(10, edges)
	rank := PageRank(g, 0.85, 50)
	for v := 1; v < 10; v++ {
		if rank[0] <= rank[v] {
			t.Fatalf("center rank %v not above leaf %v", rank[0], rank[v])
		}
	}
}

func TestPageRankParallelMatchesSequential(t *testing.T) {
	g := RandomGraph(300, 2000, 5)
	want := PageRank(g, 0.85, 20)
	for _, w := range []int{1, 3, 8} {
		got := PageRankParallel(g, 0.85, 20, w)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("workers=%d vertex %d: %v != %v", w, v, got[v], want[v])
			}
		}
	}
}

func TestReverse(t *testing.T) {
	g := BuildGraph(3, [][2]int32{{0, 1}, {1, 2}})
	r := g.Reverse()
	if r.Degree(1) != 1 || r.Degree(2) != 1 || r.Degree(0) != 0 {
		t.Fatalf("reverse degrees wrong")
	}
	if r.Reverse().M() != g.M() {
		t.Fatal("double reverse changed edge count")
	}
}

// Property: BFS levels increase by at most 1 along any edge (triangle
// inequality on unweighted graphs).
func TestQuickBFSTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGraph(60, 240, seed)
		dist := BFS(g, 0)
		for u := 0; u < g.N; u++ {
			if dist[u] < 0 {
				continue
			}
			for k := g.Offset[u]; k < g.Offset[u+1]; k++ {
				v := g.Edges[k]
				if dist[v] < 0 || dist[v] > dist[u]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: PageRank mass conservation holds for any random graph.
func TestQuickPageRankConservation(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGraph(50, 150, seed)
		rank := PageRank(g, 0.85, 10)
		var sum float64
		for _, r := range rank {
			sum += r
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
