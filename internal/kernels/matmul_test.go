package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone is not deep")
	}
	if d := m.MaxAbsDiff(c); d != 1 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if !math.IsInf(m.MaxAbsDiff(NewDense(2)), 1) {
		t.Fatal("size mismatch should be +Inf")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(0) must panic")
		}
	}()
	NewDense(0)
}

func TestRandomDenseDeterministic(t *testing.T) {
	a := RandomDense(16, 42)
	b := RandomDense(16, 42)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("same seed must give same matrix")
	}
	c := RandomDense(16, 43)
	if a.MaxAbsDiff(c) == 0 {
		t.Fatal("different seeds should differ")
	}
}

// matmulRef is an independently coded reference (jik order, indexed access).
func matmulRef(a, b *Dense) *Dense {
	n := a.N
	c := NewDense(n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestAllMatMulVariantsAgree(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33, 64} {
		a := RandomDense(n, int64(n))
		b := RandomDense(n, int64(n)+100)
		want := matmulRef(a, b)
		for _, v := range MatMulVariants(8, 3) {
			c := NewDense(n)
			v.Run(a, b, c)
			if d := c.MaxAbsDiff(want); d > 1e-9 {
				t.Errorf("n=%d variant %s: max diff %v", n, v.Name, d)
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	n := 12
	a := RandomDense(n, 5)
	id := NewDense(n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	c := NewDense(n)
	MatMulIKJ(a, id, c)
	if c.MaxAbsDiff(a) > 1e-12 {
		t.Fatal("A*I != A")
	}
	MatMulTiled(id, a, c, 5)
	if c.MaxAbsDiff(a) > 1e-12 {
		t.Fatal("I*A != A")
	}
}

func TestMatMulTileEdgeCases(t *testing.T) {
	n := 10
	a, b := RandomDense(n, 1), RandomDense(n, 2)
	want := matmulRef(a, b)
	for _, tile := range []int{-1, 0, 1, 3, 10, 99} {
		c := NewDense(n)
		MatMulTiled(a, b, c, tile)
		if c.MaxAbsDiff(want) > 1e-9 {
			t.Errorf("tile=%d wrong result", tile)
		}
	}
}

func TestMatMulParallelWorkerCounts(t *testing.T) {
	n := 17
	a, b := RandomDense(n, 3), RandomDense(n, 4)
	want := matmulRef(a, b)
	for _, w := range []int{-1, 1, 2, 5, 17, 64} {
		c := NewDense(n)
		MatMulParallel(a, b, c, w)
		if c.MaxAbsDiff(want) > 1e-9 {
			t.Errorf("workers=%d wrong result", w)
		}
		c2 := NewDense(n)
		MatMulParallelTiled(a, b, c2, w, 4)
		if c2.MaxAbsDiff(want) > 1e-9 {
			t.Errorf("parallel-tiled workers=%d wrong result", w)
		}
	}
}

func TestMatMulSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch must panic")
		}
	}()
	MatMulNaive(NewDense(3), NewDense(4), NewDense(3))
}

func TestMatMulWorkCharacterization(t *testing.T) {
	if MatMulFLOPs(10) != 2000 {
		t.Fatalf("FLOPs = %v", MatMulFLOPs(10))
	}
	if MatMulCompulsoryBytes(10) != 2400 {
		t.Fatalf("Bytes = %v", MatMulCompulsoryBytes(10))
	}
}

// Property: matmul distributes over addition, (A+A)*B == 2*(A*B).
func TestQuickMatMulLinearity(t *testing.T) {
	f := func(seed int64) bool {
		n := 8
		a := RandomDense(n, seed)
		b := RandomDense(n, seed+1)
		a2 := a.Clone()
		for i := range a2.Data {
			a2.Data[i] *= 2
		}
		c1, c2 := NewDense(n), NewDense(n)
		MatMulIKJ(a, b, c1)
		MatMulIKJ(a2, b, c2)
		for i := range c1.Data {
			if math.Abs(c2.Data[i]-2*c1.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
