package kernels

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := RandomSparse(25, 17, 60, 11)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("shape changed: %dx%d nnz=%d", back.Rows, back.Cols, back.NNZ())
	}
	d1, d2 := denseFromCOO(m), denseFromCOO(back)
	for i := range d1 {
		for j := range d1[i] {
			if d1[i][j] != d2[i][j] {
				t.Fatalf("value changed at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 2
1 1 5.0
3 1 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal entry not mirrored; off-diagonal mirrored -> 3 stored.
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	d := denseFromCOO(m)
	if d[0][0] != 5 || d[2][0] != 2 || d[0][2] != 2 {
		t.Fatalf("symmetric expansion wrong: %v", d)
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := denseFromCOO(m)
	if d[1][0] != 3 || d[0][1] != -3 {
		t.Fatalf("skew expansion wrong: %v", d)
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Vals {
		if v != 1 {
			t.Fatalf("pattern value %v, want 1", v)
		}
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad banner":   "hello\n1 1 1\n1 1 1\n",
		"dense format": "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"bad field":    "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"no size":      "%%MatrixMarket matrix coordinate real general\n",
		"bad size":     "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"neg dims":     "%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
		"truncated":    "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"short entry":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad row":      "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
		"bad col":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n",
		"bad value":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"out of range": "%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 1.0\n",
		"zero col":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1.0\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketCommentsAndBlanks(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment line

2 2 2
% mid-data comment
1 1 1.5

2 2 2.5
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}
