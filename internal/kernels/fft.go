package kernels

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
)

// Radix-2 FFT — one of the "exotic" student projects the paper lists
// ("FFT optimizations"). The iterative in-place Cooley-Tukey transform is
// the optimization target; the O(n^2) DFT is the correctness reference.

// ErrNotPowerOfTwo is returned for inputs whose length is not a power of 2.
var ErrNotPowerOfTwo = errors.New("kernels: FFT length must be a power of two")

// FFTFLOPs returns the classical 5*n*log2(n) operation count of a radix-2
// complex FFT.
func FFTFLOPs(n int) float64 {
	if n < 2 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// DFT computes the discrete Fourier transform directly in O(n^2);
// it is the reference implementation FFT variants are validated against.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// FFT computes the forward transform of x in place using the iterative
// radix-2 Cooley-Tukey algorithm with bit-reversal permutation.
func FFT(x []complex128) error { return fft(x, false) }

// IFFT computes the inverse transform of x in place (normalized by 1/n).
func IFFT(x []complex128) error {
	if err := fft(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
	return nil
}

// RandomComplex returns n deterministic complex samples with components in
// [-1, 1).
func RandomComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

// MaxComplexDiff returns the largest |a[i]-b[i]|; +Inf on length mismatch.
func MaxComplexDiff(a, b []complex128) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var max float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
