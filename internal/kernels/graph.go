package kernels

import (
	"math/rand"
	"sort"
	"sync/atomic"
)

// Graph processing — a recurring student project, "due to one of the
// recurring invited lectures" (Section 5.1). The graph is stored in CSR
// adjacency form; BFS and PageRank are the two kernels, each with a
// sequential and a parallel variant.

// Graph is a directed graph in CSR adjacency representation.
type Graph struct {
	N      int
	Offset []int32 // len N+1
	Edges  []int32 // len M, destination vertices
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.Edges) }

// Degree returns the out-degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.Offset[v+1] - g.Offset[v]) }

// BuildGraph constructs a CSR graph from an edge list over n vertices.
// Edges are sorted per source; duplicates are kept.
func BuildGraph(n int, edges [][2]int32) *Graph {
	sorted := append([][2]int32(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	g := &Graph{N: n, Offset: make([]int32, n+1), Edges: make([]int32, len(sorted))}
	for i, e := range sorted {
		g.Offset[e[0]+1]++
		g.Edges[i] = e[1]
	}
	for v := 0; v < n; v++ {
		g.Offset[v+1] += g.Offset[v]
	}
	return g
}

// RandomGraph returns a uniform random directed graph with n vertices and
// about m edges (self-loops excluded), deterministic in seed.
func RandomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, m)
	for len(edges) < m {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	return BuildGraph(n, edges)
}

// GridGraph returns the directed 4-neighbour grid graph on side x side
// vertices (each edge in both directions), a diameter-heavy BFS workload.
func GridGraph(side int) *Graph {
	edges := make([][2]int32, 0, 4*side*side)
	id := func(r, c int) int32 { return int32(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				edges = append(edges, [2]int32{id(r, c), id(r+1, c)}, [2]int32{id(r+1, c), id(r, c)})
			}
			if c+1 < side {
				edges = append(edges, [2]int32{id(r, c), id(r, c+1)}, [2]int32{id(r, c+1), id(r, c)})
			}
		}
	}
	return BuildGraph(side*side, edges)
}

// BFS returns the level (hop distance) of every vertex from src, or -1 for
// unreachable vertices, using a sequential frontier sweep.
func BFS(g *Graph, src int) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	off, adj := g.Offset, g.Edges
	frontier := []int32{int32(src)}
	for level := int32(1); len(frontier) > 0; level++ {
		next := make([]int32, 0, len(frontier))
		for _, u := range frontier {
			for k := off[u]; k < off[u+1]; k++ {
				v := adj[k]
				if dist[v] == -1 {
					dist[v] = level
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// BFSParallel is a level-synchronous parallel BFS: each level's frontier is
// split over the shared scheduler, with atomic claim of unvisited vertices
// and per-executor next-frontier buffers (reused across levels) merged at
// the level barrier.
func BFSParallel(g *Graph, src, workers int) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	off, adj := g.Offset, g.Edges
	frontier := []int32{int32(src)}
	nexts := make([][]int32, parExecutors())
	for level := int32(1); len(frontier) > 0; level++ {
		for i := range nexts {
			nexts[i] = nexts[i][:0]
		}
		part := frontier
		parForWorker(len(part), workers, func(w, lo, hi int) {
			local := nexts[w]
			for _, u := range part[lo:hi] {
				for k := off[u]; k < off[u+1]; k++ {
					v := adj[k]
					if atomic.CompareAndSwapInt32(&dist[v], -1, level) {
						local = append(local, v)
					}
				}
			}
			nexts[w] = local
		})
		frontier = frontier[:0]
		for _, local := range nexts {
			frontier = append(frontier, local...)
		}
	}
	return dist
}

// PageRank runs iters power iterations with damping d and returns the rank
// vector. Dangling-vertex mass is redistributed uniformly, so the ranks sum
// to 1 every iteration.
func PageRank(g *Graph, d float64, iters int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	off, adj := g.Offset, g.Edges
	for it := 0; it < iters; it++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u, ru := range rank {
			deg := int(off[u+1] - off[u])
			if deg == 0 {
				dangling += ru
				continue
			}
			share := ru / float64(deg)
			for k := off[u]; k < off[u+1]; k++ {
				next[adj[k]] += share
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		for i := range next {
			next[i] = base + d*next[i]
		}
		rank, next = next, rank
	}
	return rank
}

// PageRankParallel is the pull-based parallel formulation: it needs the
// reverse graph so each vertex gathers from its in-neighbours without
// write conflicts.
func PageRankParallel(g *Graph, d float64, iters, workers int) []float64 {
	rev := g.Reverse()
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for u, ru := range rank {
			deg := g.Degree(u)
			if deg == 0 {
				dangling += ru
				contrib[u] = 0
			} else {
				contrib[u] = ru / float64(deg)
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		roff, radj := rev.Offset, rev.Edges
		dst := next
		parFor(n, workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				var sum float64
				for k := roff[v]; k < roff[v+1]; k++ {
					sum += contrib[radj[k]]
				}
				dst[v] = base + d*sum
			}
		})
		rank, next = next, rank
	}
	return rank
}

// Reverse returns the transpose graph (all edges flipped).
func (g *Graph) Reverse() *Graph {
	edges := make([][2]int32, 0, g.M())
	off, adj := g.Offset, g.Edges
	for u := 0; u < len(off)-1; u++ {
		for k := off[u]; k < off[u+1]; k++ {
			edges = append(edges, [2]int32{adj[k], int32(u)})
		}
	}
	return BuildGraph(g.N, edges)
}
