package kernels

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := RandomComplex(n, int64(n))
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatal(err)
		}
		if d := MaxComplexDiff(got, want); d > 1e-8*float64(n) {
			t.Fatalf("n=%d FFT differs from DFT by %v", n, d)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	x := RandomComplex(12, 1)
	if err := FFT(x); err != ErrNotPowerOfTwo {
		t.Fatalf("err = %v, want ErrNotPowerOfTwo", err)
	}
	if err := IFFT(x); err != ErrNotPowerOfTwo {
		t.Fatalf("IFFT err = %v", err)
	}
	if err := FFT(nil); err != nil {
		t.Fatalf("empty input should be a no-op, got %v", err)
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	x := RandomComplex(128, 5)
	orig := append([]complex128(nil), x...)
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	if d := MaxComplexDiff(x, orig); d > 1e-10 {
		t.Fatalf("round trip error %v", d)
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]complex128, 16)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", i, v)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	x := RandomComplex(64, 9)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= 64
	if math.Abs(timeEnergy-freqEnergy) > 1e-9*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTFLOPs(t *testing.T) {
	if FFTFLOPs(1) != 0 {
		t.Fatal("n=1 has no work")
	}
	if got := FFTFLOPs(8); got != 5*8*3 {
		t.Fatalf("FFTFLOPs(8) = %v, want 120", got)
	}
}

// Property: FFT is linear and IFFT inverts it for random power-of-two
// lengths.
func TestQuickFFTRoundTrip(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 1 << (uint(szRaw%7) + 1) // 2..128
		x := RandomComplex(n, seed)
		orig := append([]complex128(nil), x...)
		if FFT(x) != nil || IFFT(x) != nil {
			return false
		}
		return MaxComplexDiff(x, orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
