// Package kernels implements the computational kernels the course's four
// assignments and recurring student projects are built on: dense matrix
// multiplication in the optimization ladder of Assignment 1 (naive, loop
// reordering, tiling, parallel), the data-dependent histogram of
// Assignment 2, the sparse matrix-vector product of Assignments 3 and 4 in
// the three classical storage formats (CSR, CSC, COO), and the popular
// project kernels (2D stencil, Game of Life, FFT, graph processing).
//
// Every kernel comes with a work/traffic characterization (FLOPs and
// compulsory bytes) so measurements can be placed on a Roofline and fed to
// the analytical models.
package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"perfeng/internal/tune"
)

// Dense is a dense row-major n x n matrix of float64.
type Dense struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewDense allocates an n x n zero matrix. It panics for n <= 0.
func NewDense(n int) *Dense {
	if n <= 0 {
		panic("kernels: non-positive matrix size")
	}
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// RandomDense returns an n x n matrix with uniform entries in [0, 1)
// generated from seed (deterministic).
func RandomDense(n int, seed int64) *Dense {
	m := NewDense(n)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// MaxAbsDiff returns the largest elementwise |m-b|, or +Inf on size
// mismatch.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	if m.N != b.N {
		return math.Inf(1)
	}
	var max float64
	for i, v := range m.Data {
		d := v - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MatMulFLOPs returns the floating-point work of an n x n matmul
// (n^3 multiplies + n^3 adds).
func MatMulFLOPs(n int) float64 { f := float64(n); return 2 * f * f * f }

// MatMulCompulsoryBytes returns the compulsory memory traffic of an n x n
// matmul: reading A and B and writing C once (3*n^2 doubles). Real traffic
// is higher for cache-unfriendly variants; the cache simulator measures that.
func MatMulCompulsoryBytes(n int) float64 { f := float64(n); return 3 * f * f * 8 }

// MatMulNaive computes c = a*b with the textbook i-j-k loop order. The
// innermost loop strides down a column of b, which is the cache behaviour
// Assignment 1 asks students to diagnose.
func MatMulNaive(a, b, c *Dense) {
	n := mustSameSize(a, b, c)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				//perfvet:ignore:bcehint verbatim textbook baseline of the Assignment 1 ladder; the reloads are part of what students diagnose
				sum += a.Data[i*n+k] * b.Data[k*n+j]
			}
			//perfvet:ignore:bcehint verbatim textbook baseline of the Assignment 1 ladder
			c.Data[i*n+j] = sum
		}
	}
}

// MatMulIKJ computes c = a*b with the i-k-j loop order: the innermost loop
// walks rows of b and c with unit stride — the first optimization the
// assignment suggests ("loop reordering").
func MatMulIKJ(a, b, c *Dense) {
	n := mustSameSize(a, b, c)
	for i := range c.Data {
		c.Data[i] = 0
	}
	ad := a.Data
	for i := 0; i < n; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			av := ad[i*n+k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransposed computes c = a*b via an explicit transpose of b, turning
// the inner product into two unit-stride streams.
func MatMulTransposed(a, b, c *Dense) {
	n := mustSameSize(a, b, c)
	bt := NewDense(n)
	btd, bd := bt.Data, b.Data
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			btd[j*n+i] = bd[i*n+j]
		}
	}
	cd := c.Data
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			btrow := btd[j*n : (j+1)*n]
			var sum float64
			for k, av := range arow {
				sum += av * btrow[k]
			}
			cd[i*n+j] = sum
		}
	}
}

// MatMulTiled computes c = a*b with square tiling of all three loops
// ("loop tiling" in the assignment), tile being the tile edge. A
// non-positive tile consults the tuning cache, then falls back to 64.
func MatMulTiled(a, b, c *Dense, tile int) {
	n := mustSameSize(a, b, c)
	tile = tunedTile(tune.KernelMatMul, n, tile, 64)
	for i := range c.Data {
		c.Data[i] = 0
	}
	ad := a.Data
	for ii := 0; ii < n; ii += tile {
		imax := min(ii+tile, n)
		for kk := 0; kk < n; kk += tile {
			kmax := min(kk+tile, n)
			for jj := 0; jj < n; jj += tile {
				jmax := min(jj+tile, n)
				for i := ii; i < imax; i++ {
					crow := c.Data[i*n : (i+1)*n]
					for k := kk; k < kmax; k++ {
						av := ad[i*n+k]
						brow := b.Data[k*n : (k+1)*n]
						for j := jj; j < jmax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// MatMulParallel computes c = a*b with the ikj order, splitting rows of c
// over the shared scheduler. workers > 0 pins a static decomposition into
// that many row bands; workers <= 0 lets the pool steal dynamically.
func MatMulParallel(a, b, c *Dense, workers int) {
	n := mustSameSize(a, b, c)
	ad := a.Data
	parForTuned(tune.KernelMatMul, n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.Data[i*n : (i+1)*n]
			for j := range crow {
				crow[j] = 0
			}
			for k := 0; k < n; k++ {
				av := ad[i*n+k]
				brow := b.Data[k*n : (k+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulParallelTiled combines tiling with row-block parallelism: each
// executed range owns a horizontal band of c and tiles the k and j loops
// within it.
func MatMulParallelTiled(a, b, c *Dense, workers, tile int) {
	n := mustSameSize(a, b, c)
	tile = tunedTile(tune.KernelMatMul, n, tile, 64)
	ad := a.Data
	parForTuned(tune.KernelMatMul, n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := c.Data[i*n : (i+1)*n]
			for j := range row {
				row[j] = 0
			}
		}
		for kk := 0; kk < n; kk += tile {
			kmax := min(kk+tile, n)
			for jj := 0; jj < n; jj += tile {
				jmax := min(jj+tile, n)
				for i := lo; i < hi; i++ {
					crow := c.Data[i*n : (i+1)*n]
					for k := kk; k < kmax; k++ {
						av := ad[i*n+k]
						brow := b.Data[k*n : (k+1)*n]
						for j := jj; j < jmax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	})
}

// MatMulVariant names one member of the matmul optimization ladder.
type MatMulVariant struct {
	Name string
	// Parallel reports whether the variant uses multiple workers.
	Parallel bool
	Run      func(a, b, c *Dense)
}

// MatMulVariants returns the optimization ladder of Assignment 1 in
// pedagogical order, using the given tile size and worker count for the
// variants that take them.
func MatMulVariants(tile, workers int) []MatMulVariant {
	return []MatMulVariant{
		{Name: "naive-ijk", Run: MatMulNaive},
		{Name: "reordered-ikj", Run: MatMulIKJ},
		{Name: "transposed", Run: MatMulTransposed},
		{Name: "tiled", Run: func(a, b, c *Dense) { MatMulTiled(a, b, c, tile) }},
		{Name: "parallel-ikj", Parallel: true,
			Run: func(a, b, c *Dense) { MatMulParallel(a, b, c, workers) }},
		{Name: "parallel-tiled", Parallel: true,
			Run: func(a, b, c *Dense) { MatMulParallelTiled(a, b, c, workers, tile) }},
	}
}

func mustSameSize(ms ...*Dense) int {
	n := ms[0].N
	for _, m := range ms {
		if m.N != n {
			panic(fmt.Sprintf("kernels: size mismatch %d vs %d", m.N, n))
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
