package kernels

import (
	"strings"
	"testing"
)

// Fuzz targets: the Matrix Market reader is the one component that parses
// external input (students feed it SuiteSparse downloads), and Feedback is
// pure string logic. Both must never panic and must preserve their
// invariants on arbitrary input. The seed corpus runs as part of the
// normal test suite; `go test -fuzz` explores further.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5.0\n3 1 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n9 9 1.0\n")
	f.Add("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadMatrixMarket(strings.NewReader(src))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Accepted matrices must be internally consistent.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails validation: %v", err)
		}
		if m.Rows <= 0 || m.Cols <= 0 {
			t.Fatalf("accepted matrix with bad shape %dx%d", m.Rows, m.Cols)
		}
		// And must survive conversion.
		csr := m.ToCSR()
		if int(csr.RowPtr[csr.Rows]) != csr.NNZ() {
			t.Fatal("CSR row pointer inconsistent")
		}
	})
}

func FuzzFeedback(f *testing.F) {
	f.Add("apple", "apple")
	f.Add("allee", "apple")
	f.Add("speed", "abide")
	f.Add("", "")
	f.Add("abcde", "vwxyz")
	f.Fuzz(func(t *testing.T, guess, answer string) {
		code, err := Feedback(guess, answer)
		if err != nil {
			return
		}
		if code > AllCorrect {
			t.Fatalf("feedback code %d out of range", code)
		}
		// All-correct iff equal strings.
		if (code == AllCorrect) != (guess == answer) {
			t.Fatalf("identity violated for %q/%q: code %d", guess, answer, code)
		}
	})
}
