package kernels

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market I/O. The paper's artifact notes that the assignment
// frameworks include "open-source code for reading matrices in the matrix
// market format"; this file provides the equivalent reader/writer for the
// coordinate (sparse) format, including the general/symmetric and
// real/integer/pattern qualifiers that SuiteSparse matrices use.

// ReadMatrixMarket parses a Matrix Market coordinate stream into a COO
// matrix. Symmetric/skew-symmetric matrices are expanded to general form.
// Pattern matrices get value 1 for every stored entry.
func ReadMatrixMarket(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("kernels: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("kernels: bad MatrixMarket banner %q", sc.Text())
	}
	if header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("kernels: unsupported MatrixMarket object/format %q", sc.Text())
	}
	field, symmetry := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("kernels: unsupported field %q", field)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("kernels: unsupported symmetry %q", symmetry)
	}

	// Skip comments; first non-comment line is the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("kernels: missing MatrixMarket size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("kernels: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("kernels: invalid dimensions %dx%d nnz=%d", rows, cols, nnz)
	}

	m := &COO{Rows: rows, Cols: cols}
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("kernels: truncated MatrixMarket data: %d of %d entries", read, nnz)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("kernels: short MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("kernels: bad row index %q: %w", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("kernels: bad col index %q: %w", fields[1], err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("kernels: MatrixMarket entry (%d,%d) out of range", i, j)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("kernels: bad value %q: %w", fields[2], err)
			}
		}
		m.RowIdx = append(m.RowIdx, int32(i-1))
		m.ColIdx = append(m.ColIdx, int32(j-1))
		m.Vals = append(m.Vals, v)
		if symmetry != "general" && i != j {
			sv := v
			if symmetry == "skew-symmetric" {
				sv = -v
			}
			m.RowIdx = append(m.RowIdx, int32(j-1))
			m.ColIdx = append(m.ColIdx, int32(i-1))
			m.Vals = append(m.Vals, sv)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteMatrixMarket writes the matrix in general real coordinate format.
func WriteMatrixMarket(w io.Writer, m *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for k := range m.Vals {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n",
			m.RowIdx[k]+1, m.ColIdx[k]+1, m.Vals[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
