// Shared dispatch into the work-stealing runtime (internal/sched).
// Every parallel kernel in this package routes its index loop through
// these helpers instead of hand-rolling a goroutine fan-out: spawn and
// join costs are paid once in the persistent pool, and irregular
// workloads (power-law SpMV rows, BFS frontiers, Wordle scoring)
// rebalance by stealing instead of idling behind a static split.
package kernels

import (
	"perfeng/internal/sched"
	"perfeng/internal/tune"
)

// parFor runs body over disjoint subranges covering [0, n).
// workers > 0 reproduces the classic static decomposition into that
// many contiguous chunks — the behaviour these kernels had with
// hand-rolled fan-outs, kept so decomposition stays an explicit knob
// for the scheduling ablations and for callers that pin concurrency.
// workers <= 0 uses the pool's dynamic stealing policy with an
// automatic grain.
func parFor(n, workers int, body func(lo, hi int)) {
	if workers > 0 {
		sched.ParallelForPolicy(sched.PolicyStatic, n, (n+workers-1)/workers, body)
		return
	}
	sched.ParallelFor(n, 0, body)
}

// parForWorker is parFor for bodies that privatize per-executor state
// (histogram counts, BFS next-frontier buffers): body additionally
// receives an executor id in [0, parExecutors()), and ranges with the
// same id never run concurrently.
func parForWorker(n, workers int, body func(worker, lo, hi int)) {
	if workers > 0 {
		sched.ParallelForWorkerPolicy(sched.PolicyStatic, n, (n+workers-1)/workers, body)
		return
	}
	sched.ParallelForWorker(n, 0, body)
}

// parExecutors sizes per-executor state for parForWorker bodies.
func parExecutors() int { return sched.Executors() }

// parForTuned is parFor consulting the tuning cache: when the caller
// leaves workers at 0 (the "let the runtime decide" setting) and an
// activated TUNED.json has an entry for (kernel, n), the dispatch uses
// the tuned policy and grain instead of the stealing default. An
// explicit workers pin always wins — callers that chose a
// decomposition keep it — and a cache miss is exactly parFor.
func parForTuned(kernel string, n, workers int, body func(lo, hi int)) {
	if workers > 0 {
		sched.ParallelForPolicy(sched.PolicyStatic, n, (n+workers-1)/workers, body)
		return
	}
	if cfg, ok := tune.Lookup(kernel, n); ok {
		sched.ParallelForPolicy(cfg.SchedPolicy(sched.PolicyStealing), n, cfg.EffectiveGrain(n), body)
		return
	}
	sched.ParallelFor(n, 0, body)
}

// parForWorkerTuned is parForWorker with the same cache consultation
// as parForTuned.
func parForWorkerTuned(kernel string, n, workers int, body func(worker, lo, hi int)) {
	if workers > 0 {
		sched.ParallelForWorkerPolicy(sched.PolicyStatic, n, (n+workers-1)/workers, body)
		return
	}
	if cfg, ok := tune.Lookup(kernel, n); ok {
		sched.ParallelForWorkerPolicy(cfg.SchedPolicy(sched.PolicyStealing), n, cfg.EffectiveGrain(n), body)
		return
	}
	sched.ParallelForWorker(n, 0, body)
}

// tunedTile resolves the tile edge for a tiled kernel: an explicit
// caller tile wins, then an activated cache entry's Tile, then the
// kernel's built-in default.
func tunedTile(kernel string, n, tile, def int) int {
	if tile > 0 {
		return tile
	}
	if cfg, ok := tune.Lookup(kernel, n); ok && cfg.Tile > 0 {
		return cfg.Tile
	}
	return def
}
