// Shared dispatch into the work-stealing runtime (internal/sched).
// Every parallel kernel in this package routes its index loop through
// these helpers instead of hand-rolling a goroutine fan-out: spawn and
// join costs are paid once in the persistent pool, and irregular
// workloads (power-law SpMV rows, BFS frontiers, Wordle scoring)
// rebalance by stealing instead of idling behind a static split.
package kernels

import "perfeng/internal/sched"

// parFor runs body over disjoint subranges covering [0, n).
// workers > 0 reproduces the classic static decomposition into that
// many contiguous chunks — the behaviour these kernels had with
// hand-rolled fan-outs, kept so decomposition stays an explicit knob
// for the scheduling ablations and for callers that pin concurrency.
// workers <= 0 uses the pool's dynamic stealing policy with an
// automatic grain.
func parFor(n, workers int, body func(lo, hi int)) {
	if workers > 0 {
		sched.ParallelForPolicy(sched.PolicyStatic, n, (n+workers-1)/workers, body)
		return
	}
	sched.ParallelFor(n, 0, body)
}

// parForWorker is parFor for bodies that privatize per-executor state
// (histogram counts, BFS next-frontier buffers): body additionally
// receives an executor id in [0, parExecutors()), and ranges with the
// same id never run concurrently.
func parForWorker(n, workers int, body func(worker, lo, hi int)) {
	if workers > 0 {
		sched.ParallelForWorkerPolicy(sched.PolicyStatic, n, (n+workers-1)/workers, body)
		return
	}
	sched.ParallelForWorker(n, 0, body)
}

// parExecutors sizes per-executor state for parForWorker bodies.
func parExecutors() int { return sched.Executors() }
