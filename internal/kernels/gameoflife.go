package kernels

import (
	"math/rand"
	"strings"
)

// Conway's Game of Life on a toroidal grid — the second most popular
// student project (Section 5.1). The kernel is integer/branch heavy with a
// 9-point neighbourhood, the pedagogical contrast to the FP stencil.

// Life is a toroidal Game-of-Life board.
type Life struct {
	W, H  int
	Cells []uint8 // 1 = alive, row-major
}

// NewLife allocates a dead w x h board. It panics on non-positive sizes.
func NewLife(w, h int) *Life {
	if w <= 0 || h <= 0 {
		panic("kernels: non-positive Life board")
	}
	return &Life{W: w, H: h, Cells: make([]uint8, w*h)}
}

// RandomLife returns a board with the given live-cell density.
func RandomLife(w, h int, density float64, seed int64) *Life {
	b := NewLife(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range b.Cells {
		if rng.Float64() < density {
			b.Cells[i] = 1
		}
	}
	return b
}

// At returns cell (x, y) with toroidal wraparound.
func (b *Life) At(x, y int) uint8 {
	x = ((x % b.W) + b.W) % b.W
	y = ((y % b.H) + b.H) % b.H
	return b.Cells[y*b.W+x]
}

// Set assigns cell (x, y) (no wraparound; caller provides in-range coords).
func (b *Life) Set(x, y int, v uint8) { b.Cells[y*b.W+x] = v }

// Population returns the number of live cells.
func (b *Life) Population() int {
	n := 0
	for _, c := range b.Cells {
		n += int(c)
	}
	return n
}

// Equal reports whether two boards have identical state.
func (b *Life) Equal(o *Life) bool {
	if b.W != o.W || b.H != o.H {
		return false
	}
	for i, c := range b.Cells {
		if c != o.Cells[i] {
			return false
		}
	}
	return true
}

// String renders the board with '#' for live cells.
func (b *Life) String() string {
	var sb strings.Builder
	cells, w := b.Cells, b.W
	for y := 0; y < b.H; y++ {
		for x := 0; x < w; x++ {
			if cells[y*w+x] == 1 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (b *Life) neighbours(x, y int) int {
	w, h := b.W, b.H
	xm := (x - 1 + w) % w
	xp := (x + 1) % w
	ym := (y - 1 + h) % h
	yp := (y + 1) % h
	return int(b.Cells[ym*w+xm]) + int(b.Cells[ym*w+x]) + int(b.Cells[ym*w+xp]) +
		int(b.Cells[y*w+xm]) + int(b.Cells[y*w+xp]) +
		int(b.Cells[yp*w+xm]) + int(b.Cells[yp*w+x]) + int(b.Cells[yp*w+xp])
}

// Step computes one generation into dst. dst must be a distinct board of
// the same size.
func (b *Life) Step(dst *Life) {
	src, out, w := b.Cells, dst.Cells, b.W
	for y := 0; y < b.H; y++ {
		for x := 0; x < w; x++ {
			n := b.neighbours(x, y)
			alive := src[y*w+x] == 1
			if alive && (n == 2 || n == 3) || !alive && n == 3 {
				out[y*w+x] = 1
			} else {
				out[y*w+x] = 0
			}
		}
	}
}

// StepParallel computes one generation with row bands split over the
// shared scheduler.
func (b *Life) StepParallel(dst *Life, workers int) {
	src, out, width := b.Cells, dst.Cells, b.W
	parFor(b.H, workers, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < width; x++ {
				n := b.neighbours(x, y)
				alive := src[y*width+x] == 1
				if alive && (n == 2 || n == 3) || !alive && n == 3 {
					out[y*width+x] = 1
				} else {
					out[y*width+x] = 0
				}
			}
		}
	})
}

// Run advances the board g generations (workers <= 1 sequential) and
// returns the final board.
func (b *Life) Run(generations, workers int) *Life {
	src := b
	dst := NewLife(b.W, b.H)
	for g := 0; g < generations; g++ {
		if workers > 1 {
			src.StepParallel(dst, workers)
		} else {
			src.Step(dst)
		}
		src, dst = dst, src
	}
	return src
}

// Glider stamps the classic glider pattern at (x, y).
func (b *Life) Glider(x, y int) {
	coords := [][2]int{{1, 0}, {2, 1}, {0, 2}, {1, 2}, {2, 2}}
	for _, c := range coords {
		b.Set((x+c[0])%b.W, (y+c[1])%b.H, 1)
	}
}

// StepPadded computes one generation using a padded scratch board instead
// of per-neighbour modulo arithmetic — the classic "hoist the wraparound
// out of the inner loop" optimization step in the Game-of-Life project
// ladder. Semantically identical to Step.
func (b *Life) StepPadded(dst *Life, scratch []uint8) []uint8 {
	w, h := b.W, b.H
	pw := w + 2
	need := pw * (h + 2)
	if cap(scratch) < need {
		scratch = make([]uint8, need)
	}
	pad := scratch[:need]
	// Interior copy.
	for y := 0; y < h; y++ {
		copy(pad[(y+1)*pw+1:(y+1)*pw+1+w], b.Cells[y*w:(y+1)*w])
	}
	// Halo rows/columns implement the torus once, outside the hot loop.
	copy(pad[1:1+w], b.Cells[(h-1)*w:h*w]) // top halo = last row
	copy(pad[(h+1)*pw+1:(h+1)*pw+1+w], b.Cells[0:w])
	for y := 0; y < h+2; y++ {
		pad[y*pw] = pad[y*pw+w]     // left halo = right column
		pad[y*pw+w+1] = pad[y*pw+1] // right halo = left column
	}
	// Corner cells are covered by the column fill above because the halo
	// rows were installed first.
	for y := 0; y < h; y++ {
		up := pad[y*pw : (y+1)*pw]
		mid := pad[(y+1)*pw : (y+2)*pw]
		down := pad[(y+2)*pw : (y+3)*pw]
		out := dst.Cells[y*w : (y+1)*w]
		// Tell the prover the rows cover x+2 and out covers x, so the
		// inner loop runs without bounds checks (-d=ssa/check_bce).
		_ = up[w+1]
		_ = mid[w+1]
		_ = down[w+1]
		_ = out[w-1]
		for x := 0; x < w; x++ {
			n := int(up[x]) + int(up[x+1]) + int(up[x+2]) +
				int(mid[x]) + int(mid[x+2]) +
				int(down[x]) + int(down[x+1]) + int(down[x+2])
			alive := mid[x+1] == 1
			if alive && (n == 2 || n == 3) || !alive && n == 3 {
				out[x] = 1
			} else {
				out[x] = 0
			}
		}
	}
	return pad
}

// RunPadded advances the board like Run but with the padded stepper.
func (b *Life) RunPadded(generations int) *Life {
	src := b
	dst := NewLife(b.W, b.H)
	var scratch []uint8
	for g := 0; g < generations; g++ {
		scratch = src.StepPadded(dst, scratch)
		src, dst = dst, src
	}
	return src
}
