package kernels

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"perfeng/internal/tune"
)

// Sparse matrix-vector multiplication (Assignments 3 and 4) in the three
// classical storage formats the course hands to students: CSR, CSC and COO.
// SpMV is the canonical data-dependent kernel — its performance depends on
// the non-zero structure, which is what makes it the statistical-modeling
// workload of Assignment 3.

// COO is a coordinate-format sparse matrix (row, col, value triplets).
type COO struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Vals       []float64
}

// NNZ returns the number of stored non-zeros.
func (m *COO) NNZ() int { return len(m.Vals) }

// Validate checks index bounds and slice-length agreement.
func (m *COO) Validate() error {
	if len(m.RowIdx) != len(m.Vals) || len(m.ColIdx) != len(m.Vals) {
		return errors.New("kernels: COO slice length mismatch")
	}
	for i := range m.Vals {
		if m.RowIdx[i] < 0 || int(m.RowIdx[i]) >= m.Rows {
			return fmt.Errorf("kernels: COO row index %d out of range", m.RowIdx[i])
		}
		if m.ColIdx[i] < 0 || int(m.ColIdx[i]) >= m.Cols {
			return fmt.Errorf("kernels: COO col index %d out of range", m.ColIdx[i])
		}
	}
	return nil
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1
	ColIdx     []int32 // len NNZ
	Vals       []float64
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// CSC is a compressed-sparse-column matrix.
type CSC struct {
	Rows, Cols int
	ColPtr     []int32 // len Cols+1
	RowIdx     []int32 // len NNZ
	Vals       []float64
}

// NNZ returns the number of stored non-zeros.
func (m *CSC) NNZ() int { return len(m.Vals) }

// ToCSR converts the COO matrix to CSR. Duplicate entries are summed, as the
// Matrix Market convention expects.
func (m *COO) ToCSR() *CSR {
	type trip struct {
		r, c int32
		v    float64
	}
	ts := make([]trip, m.NNZ())
	for i := range m.Vals {
		ts[i] = trip{m.RowIdx[i], m.ColIdx[i], m.Vals[i]}
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].r != ts[j].r {
			return ts[i].r < ts[j].r
		}
		return ts[i].c < ts[j].c
	})
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int32, m.Rows+1)}
	for i := 0; i < len(ts); {
		j := i
		v := 0.0
		for j < len(ts) && ts[j].r == ts[i].r && ts[j].c == ts[i].c {
			v += ts[j].v
			j++
		}
		out.ColIdx = append(out.ColIdx, ts[i].c)
		out.Vals = append(out.Vals, v)
		out.RowPtr[ts[i].r+1]++
		i = j
	}
	for r := 0; r < m.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	return out
}

// ToCSC converts the COO matrix to CSC. Duplicates are summed.
func (m *COO) ToCSC() *CSC {
	t := &COO{Rows: m.Cols, Cols: m.Rows, RowIdx: m.ColIdx, ColIdx: m.RowIdx, Vals: m.Vals}
	csr := t.ToCSR() // CSR of the transpose == CSC of the original
	return &CSC{Rows: m.Rows, Cols: m.Cols, ColPtr: csr.RowPtr, RowIdx: csr.ColIdx, Vals: csr.Vals}
}

// ToCOO converts back to coordinate format (row-major order).
func (m *CSR) ToCOO() *COO {
	out := &COO{Rows: m.Rows, Cols: m.Cols,
		RowIdx: make([]int32, 0, m.NNZ()),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Vals:   append([]float64(nil), m.Vals...)}
	rp := m.RowPtr
	for r := 0; r < len(rp)-1; r++ {
		for k := rp[r]; k < rp[r+1]; k++ {
			out.RowIdx = append(out.RowIdx, int32(r))
		}
	}
	return out
}

// SpMVCSR computes y = A*x for a CSR matrix: unit-stride over the values,
// gather on x — the format of choice for row-parallel SpMV.
func SpMVCSR(a *CSR, x, y []float64) {
	rp, ci, vals := a.RowPtr, a.ColIdx, a.Vals
	for r := range y[:a.Rows] {
		var sum float64
		for k := rp[r]; k < rp[r+1]; k++ {
			sum += vals[k] * x[ci[k]]
		}
		y[r] = sum
	}
}

// SpMVCSRParallel computes y = A*x with rows split across the shared
// scheduler. With workers <= 0 the stealing policy rebalances power-law
// row-length imbalance that a static split cannot.
func SpMVCSRParallel(a *CSR, x, y []float64, workers int) {
	rp, ci, vals := a.RowPtr, a.ColIdx, a.Vals
	parForTuned(tune.KernelSpMVCSR, a.Rows, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			var sum float64
			for k := rp[r]; k < rp[r+1]; k++ {
				sum += vals[k] * x[ci[k]]
			}
			y[r] = sum
		}
	})
}

// SpMVCSC computes y = A*x for a CSC matrix: scatter on y, which defeats
// row-parallelism and streams x instead — the slow format for this
// operation, kept as the pedagogical contrast.
func SpMVCSC(a *CSC, x, y []float64) {
	for i := range y[:a.Rows] {
		y[i] = 0
	}
	cp, ri, vals := a.ColPtr, a.RowIdx, a.Vals
	for c, xv := range x[:a.Cols] {
		if xv == 0 {
			continue
		}
		for k := cp[c]; k < cp[c+1]; k++ {
			y[ri[k]] += vals[k] * xv
		}
	}
}

// SpMVCOO computes y = A*x for a COO matrix: fully irregular scatter/gather.
func SpMVCOO(a *COO, x, y []float64) {
	for i := range y[:a.Rows] {
		y[i] = 0
	}
	for k := range a.Vals {
		y[a.RowIdx[k]] += a.Vals[k] * x[a.ColIdx[k]]
	}
}

// SpMVFLOPs returns the floating-point work of one SpMV (2 per non-zero).
func SpMVFLOPs(nnz int) float64 { return 2 * float64(nnz) }

// SpMVCSRBytes returns the compulsory traffic of a CSR SpMV: values +
// column indices + row pointers + x and y once each.
func SpMVCSRBytes(rows, nnz int) float64 {
	return float64(nnz)*(8+4) + float64(rows+1)*4 + float64(rows)*8*2
}

// RandomSparse returns a Rows x Cols COO matrix with the given nnz count,
// uniform random structure, deterministic in seed. Duplicate coordinates
// may appear and are summed on conversion; nnz is the generated triplet
// count.
func RandomSparse(rows, cols, nnz int, seed int64) *COO {
	rng := rand.New(rand.NewSource(seed))
	m := &COO{Rows: rows, Cols: cols,
		RowIdx: make([]int32, nnz),
		ColIdx: make([]int32, nnz),
		Vals:   make([]float64, nnz)}
	for i := 0; i < nnz; i++ {
		m.RowIdx[i] = int32(rng.Intn(rows))
		m.ColIdx[i] = int32(rng.Intn(cols))
		m.Vals[i] = rng.Float64()*2 - 1
	}
	return m
}

// BandedSparse returns an n x n COO matrix with the given half bandwidth
// (diagonal plus band neighbours), the regular-structure contrast to
// RandomSparse in the Assignment 3 dataset families.
func BandedSparse(n, halfBand int, seed int64) *COO {
	rng := rand.New(rand.NewSource(seed))
	m := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		for j := max(0, i-halfBand); j <= min(n-1, i+halfBand); j++ {
			m.RowIdx = append(m.RowIdx, int32(i))
			m.ColIdx = append(m.ColIdx, int32(j))
			m.Vals = append(m.Vals, rng.Float64()*2-1)
		}
	}
	return m
}

// PowerLawSparse returns an n x n COO matrix whose row populations follow a
// Zipf-like distribution — the load-imbalance adversary for row-parallel
// SpMV, and a feature-engineering exercise for the statistical models.
func PowerLawSparse(n, avgPerRow int, alpha float64, seed int64) *COO {
	rng := rand.New(rand.NewSource(seed))
	m := &COO{Rows: n, Cols: n}
	// Zipf weights over rows.
	weights := make([]float64, n)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), alpha)
		total += weights[i]
	}
	budget := n * avgPerRow
	for i := 0; i < n; i++ {
		cnt := int(float64(budget) * weights[i] / total)
		if cnt < 1 {
			cnt = 1
		}
		if cnt > n {
			cnt = n
		}
		for j := 0; j < cnt; j++ {
			m.RowIdx = append(m.RowIdx, int32(i))
			m.ColIdx = append(m.ColIdx, int32(rng.Intn(n)))
			m.Vals = append(m.Vals, rng.Float64()*2-1)
		}
	}
	return m
}

// RowStats summarizes the non-zero structure of a CSR matrix — the features
// Assignment 3's statistical models are trained on.
type RowStats struct {
	Rows, Cols, NNZ   int
	MeanPerRow        float64
	MaxPerRow         int
	EmptyRows         int
	Density           float64
	RowCV             float64 // coefficient of variation of row populations
	MeanColSpan       float64 // mean (maxcol-mincol) per non-empty row
	DiagonalDominance float64 // fraction of nnz on the diagonal band +-1
}

// Stats computes RowStats for the matrix.
func (m *CSR) Stats() RowStats {
	s := RowStats{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	if m.Rows == 0 || m.Cols == 0 {
		return s
	}
	s.Density = float64(s.NNZ) / (float64(m.Rows) * float64(m.Cols))
	var sum, sumSq, spanSum float64
	nonEmpty := 0
	diag := 0
	rp, ci := m.RowPtr, m.ColIdx
	for r := 0; r < len(rp)-1; r++ {
		cnt := int(rp[r+1] - rp[r])
		sum += float64(cnt)
		sumSq += float64(cnt) * float64(cnt)
		if cnt > s.MaxPerRow {
			s.MaxPerRow = cnt
		}
		if cnt == 0 {
			s.EmptyRows++
			continue
		}
		nonEmpty++
		minC, maxC := int32(m.Cols), int32(-1)
		for k := rp[r]; k < rp[r+1]; k++ {
			c := ci[k]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
			d := int(c) - r
			if d >= -1 && d <= 1 {
				diag++
			}
		}
		spanSum += float64(maxC - minC)
	}
	n := float64(m.Rows)
	s.MeanPerRow = sum / n
	if n > 1 {
		variance := (sumSq - sum*sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		if s.MeanPerRow > 0 {
			s.RowCV = math.Sqrt(variance) / s.MeanPerRow
		}
	}
	if nonEmpty > 0 {
		s.MeanColSpan = spanSum / float64(nonEmpty)
	}
	if s.NNZ > 0 {
		s.DiagonalDominance = float64(diag) / float64(s.NNZ)
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
