package kernels

import (
	"testing"
	"testing/quick"
)

func TestLifeBlinkerOscillates(t *testing.T) {
	b := NewLife(5, 5)
	// Vertical blinker.
	b.Set(2, 1, 1)
	b.Set(2, 2, 1)
	b.Set(2, 3, 1)
	one := b.Run(1, 1)
	// After one step: horizontal blinker.
	if one.At(1, 2) != 1 || one.At(2, 2) != 1 || one.At(3, 2) != 1 {
		t.Fatalf("blinker step wrong:\n%s", one)
	}
	if one.Population() != 3 {
		t.Fatalf("population = %d", one.Population())
	}
	two := b.Run(2, 1)
	if !two.Equal(b) {
		t.Fatalf("blinker must have period 2:\n%s", two)
	}
}

func TestLifeBlockIsStill(t *testing.T) {
	b := NewLife(6, 6)
	b.Set(2, 2, 1)
	b.Set(3, 2, 1)
	b.Set(2, 3, 1)
	b.Set(3, 3, 1)
	after := b.Run(7, 1)
	if !after.Equal(b) {
		t.Fatal("block must be a still life")
	}
}

func TestLifeGliderTravels(t *testing.T) {
	b := NewLife(16, 16)
	b.Glider(1, 1)
	// A glider translates by (1,1) every 4 generations.
	after := b.Run(4, 1)
	want := NewLife(16, 16)
	want.Glider(2, 2)
	if !after.Equal(want) {
		t.Fatalf("glider did not travel:\n%s\nwant:\n%s", after, want)
	}
}

func TestLifeToroidalWraparound(t *testing.T) {
	b := NewLife(4, 4)
	if b.At(-1, -1) != b.At(3, 3) {
		t.Fatal("negative wraparound broken")
	}
	if b.At(4, 4) != b.At(0, 0) {
		t.Fatal("positive wraparound broken")
	}
}

func TestLifeParallelMatchesSequential(t *testing.T) {
	b := RandomLife(40, 31, 0.35, 17)
	for _, w := range []int{2, 3, 8, 64} {
		seq := b.Run(8, 1)
		par := b.Run(8, w)
		if !seq.Equal(par) {
			t.Fatalf("workers=%d diverged", w)
		}
	}
}

func TestLifeEdgeCases(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLife(0, 5) must panic")
		}
	}()
	NewLife(0, 5)
}

func TestLifeString(t *testing.T) {
	b := NewLife(2, 1)
	b.Set(1, 0, 1)
	if got := b.String(); got != ".#\n" {
		t.Fatalf("String = %q", got)
	}
}

// Property: an empty board stays empty; a full board dies to stable
// patterns that never exceed the cell count.
func TestQuickLifeInvariants(t *testing.T) {
	f := func(seed int64, gens uint8) bool {
		g := int(gens % 6)
		empty := NewLife(9, 7)
		if empty.Run(g, 1).Population() != 0 {
			return false
		}
		b := RandomLife(9, 7, 0.5, seed)
		pop := b.Run(g, 1).Population()
		return pop >= 0 && pop <= 9*7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStepPaddedMatchesStep(t *testing.T) {
	for _, dims := range [][2]int{{5, 5}, {16, 9}, {33, 40}, {2, 2}} {
		b := RandomLife(dims[0], dims[1], 0.4, int64(dims[0]))
		want := b.Run(6, 1)
		got := b.RunPadded(6)
		if !want.Equal(got) {
			t.Fatalf("%dx%d: padded stepper diverged", dims[0], dims[1])
		}
	}
	// Glider (exercises all four torus edges on a small board).
	g := NewLife(6, 6)
	g.Glider(3, 3)
	if !g.Run(24, 1).Equal(g.RunPadded(24)) {
		t.Fatal("glider wraparound diverged")
	}
}
