package kernels

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"perfeng/internal/tune"
)

// Histogram kernels (Assignment 2): counting values into bins is the
// simplest kernel with data-dependent behaviour — the memory access pattern
// on the bin array depends on the input distribution, which is exactly why
// the assignment adds it next to matmul as a modeling challenge.

// HistogramFLOPs returns 0: the kernel does no floating-point arithmetic,
// which is itself a modeling lesson (it is bound by memory and integer ops).
func HistogramFLOPs(n int) float64 { return 0 }

// HistogramBytes returns the compulsory traffic of histogramming n float64
// samples: one read per sample plus the bin array once.
func HistogramBytes(n, bins int) float64 { return float64(n)*8 + float64(bins)*8 }

// HistogramSeq bins samples in [0,1) into len(counts) bins sequentially.
// Out-of-range samples are clamped into the edge bins.
func HistogramSeq(samples []float64, counts []int64) {
	bins := len(counts)
	for _, s := range samples {
		counts[binIndex(s, bins)]++
	}
}

func binIndex(s float64, bins int) int {
	i := int(s * float64(bins))
	if i < 0 {
		return 0
	}
	if i >= bins {
		return bins - 1
	}
	return i
}

// HistogramAtomic bins samples in parallel, with all executors
// incrementing a shared bin array using atomic adds — correct, but heavily
// contended for skewed inputs (the "false sharing / contention"
// performance pattern).
func HistogramAtomic(samples []float64, counts []int64, workers int) {
	bins := len(counts)
	parForTuned(tune.KernelHistogram, len(samples), workers, func(lo, hi int) {
		for _, s := range samples[lo:hi] {
			atomic.AddInt64(&counts[binIndex(s, bins)], 1)
		}
	})
}

// HistogramPrivate bins samples in parallel with per-executor private bin
// arrays merged at the end — the standard privatization fix for the
// contention pattern. Private arrays are allocated lazily on an
// executor's first range, so only executors that actually ran pay for
// one.
func HistogramPrivate(samples []float64, counts []int64, workers int) {
	bins := len(counts)
	privs := make([][]int64, parExecutors())
	parForWorkerTuned(tune.KernelHistogram, len(samples), workers, func(w, lo, hi int) {
		priv := privs[w]
		if priv == nil {
			priv = make([]int64, bins)
			privs[w] = priv
		}
		for _, s := range samples[lo:hi] {
			priv[binIndex(s, bins)]++
		}
	})
	for _, priv := range privs {
		for i, c := range priv {
			counts[i] += c
		}
	}
}

// HistogramMutex bins samples in parallel with a single mutex around the
// shared bin array — the pessimal strategy, kept as the ablation baseline.
func HistogramMutex(samples []float64, counts []int64, workers int) {
	bins := len(counts)
	var mu sync.Mutex
	parFor(len(samples), workers, func(lo, hi int) {
		for _, s := range samples[lo:hi] {
			mu.Lock()
			counts[binIndex(s, bins)]++
			mu.Unlock()
		}
	})
}

// UniformSamples returns n deterministic uniform samples in [0,1).
func UniformSamples(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// SkewedSamples returns n samples concentrated near 0 (x^k of a uniform x),
// the adversarial input for contended histogram strategies: most samples
// land in a handful of bins.
func SkewedSamples(n int, k int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		x := rng.Float64()
		v := x
		for j := 1; j < k; j++ {
			v *= x
		}
		out[i] = v
	}
	return out
}

// SumAbove returns the sum of samples >= threshold using a conditional
// branch per element — the canonical branch-prediction demonstration
// kernel ("why is the sorted array faster"). Pair with a sorted vs
// shuffled input and the branch-predictor model in internal/simulator.
func SumAbove(samples []float64, threshold float64) float64 {
	var sum float64
	for _, s := range samples {
		if s >= threshold {
			sum += s
		}
	}
	return sum
}

// SumAboveBranchless computes the same sum with a branch-free select (the
// sign bit of s-threshold becomes a multiplicative 0/1 mask) — the
// standard fix for mispredict-bound loops. Requires non-NaN inputs.
func SumAboveBranchless(samples []float64, threshold float64) float64 {
	var sum float64
	for _, s := range samples {
		// sign bit of (s - threshold): 1 when s < threshold.
		below := math.Float64bits(s-threshold) >> 63
		sum += s * float64(1-below)
	}
	return sum
}

// SortedSamples returns UniformSamples sorted ascending — the predictable
// input for the branch demo.
func SortedSamples(n int, seed int64) []float64 {
	out := UniformSamples(n, seed)
	sort.Float64s(out)
	return out
}
