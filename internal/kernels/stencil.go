package kernels

import (
	"math"

	"perfeng/internal/tune"
)

// 2D 5-point Jacobi stencil — the most popular student project in the
// course's history ("2D stencil code optimization", Section 5.1). The grid
// is (n+2) x (n+2) with a fixed boundary ring; one sweep updates the n x n
// interior from the previous iterate.

// Grid2D is a square 2D grid with a one-cell halo.
type Grid2D struct {
	N    int       // interior size
	Data []float64 // (N+2)*(N+2), row-major
}

// NewGrid2D allocates an n x n interior grid with halo. It panics for
// n <= 0.
func NewGrid2D(n int) *Grid2D {
	if n <= 0 {
		panic("kernels: non-positive grid size")
	}
	return &Grid2D{N: n, Data: make([]float64, (n+2)*(n+2))}
}

// At returns cell (i, j), where (0,0) is the top-left halo corner.
func (g *Grid2D) At(i, j int) float64 { return g.Data[i*(g.N+2)+j] }

// Set assigns cell (i, j).
func (g *Grid2D) Set(i, j int, v float64) { g.Data[i*(g.N+2)+j] = v }

// Clone returns a deep copy.
func (g *Grid2D) Clone() *Grid2D {
	c := NewGrid2D(g.N)
	copy(c.Data, g.Data)
	return c
}

// MaxAbsDiff returns the largest elementwise difference, +Inf on size
// mismatch.
func (g *Grid2D) MaxAbsDiff(o *Grid2D) float64 {
	if g.N != o.N {
		return math.Inf(1)
	}
	var max float64
	for i, v := range g.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// HotBoundaryGrid returns an n-grid with the top halo row at 1 and the rest
// 0 — the classic heat-diffusion initial condition.
func HotBoundaryGrid(n int) *Grid2D {
	g := NewGrid2D(n)
	for j := 0; j < n+2; j++ {
		g.Set(0, j, 1)
	}
	return g
}

// StencilFLOPs returns the work of sweeps Jacobi sweeps on an n x n
// interior (4 adds + 1 multiply per point).
func StencilFLOPs(n, sweeps int) float64 {
	return 5 * float64(n) * float64(n) * float64(sweeps)
}

// StencilBytes returns the compulsory traffic of one sweep: read the source
// grid, write the destination interior.
func StencilBytes(n int) float64 {
	f := float64(n)
	return (f+2)*(f+2)*8 + f*f*8
}

// StencilSweep performs one Jacobi sweep dst <- avg4(src) over the interior.
// dst and src must be distinct grids of the same size.
func StencilSweep(src, dst *Grid2D) {
	n, w := src.N, src.N+2
	for i := 1; i <= n; i++ {
		up := src.Data[(i-1)*w:]
		mid := src.Data[i*w:]
		down := src.Data[(i+1)*w:]
		out := dst.Data[i*w:]
		for j := 1; j <= n; j++ {
			out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
		}
	}
}

// StencilSweepParallel performs one Jacobi sweep with interior row bands
// split over the shared scheduler.
func StencilSweepParallel(src, dst *Grid2D, workers int) {
	n, w := src.N, src.N+2
	parForTuned(tune.KernelStencil, n, workers, func(lo, hi int) {
		for i := lo + 1; i <= hi; i++ { // interior rows are 1..n
			up := src.Data[(i-1)*w:]
			mid := src.Data[i*w:]
			down := src.Data[(i+1)*w:]
			out := dst.Data[i*w:]
			for j := 1; j <= n; j++ {
				out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
			}
		}
	})
}

// StencilRun performs sweeps Jacobi sweeps ping-ponging between two
// scratch grids and returns the grid holding the final iterate. g itself
// is never modified. workers == 1 runs sequentially; any other value is
// the usual decomposition knob (0 = dynamic pool, possibly tuned, like
// every other parallel kernel here).
func StencilRun(g *Grid2D, sweeps, workers int) *Grid2D {
	src, dst := g.Clone(), g.Clone()
	for s := 0; s < sweeps; s++ {
		if workers == 1 {
			StencilSweep(src, dst)
		} else {
			StencilSweepParallel(src, dst, workers)
		}
		src, dst = dst, src
	}
	return src
}

// StencilResidual returns the max |a-b| over the interior, the convergence
// measure for Jacobi iteration.
func StencilResidual(a, b *Grid2D) float64 {
	n, w := a.N, a.N+2
	ad, bd := a.Data, b.Data
	var max float64
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			d := ad[i*w+j] - bd[i*w+j]
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}
