package kernels

import (
	"errors"
	"fmt"

	"perfeng/internal/sched"
)

// Wordle solving — one of the "exotic applications" students brought to
// the course's project (Section 5.1). The kernel is the solver's inner
// loop: scoring every candidate guess against every possible answer.
// It is branch- and table-heavy with zero floating point — a deliberate
// contrast to the numeric kernels — and its optimization ladder (naive
// rescoring -> precomputed feedback table -> parallel scoring) mirrors the
// ladder of the numeric ones.

// WordLen is the word length of the game.
const WordLen = 5

// feedbackStates is the number of distinct feedback patterns (3^5).
const feedbackStates = 243

// Feedback computes the Wordle response for guess against answer, encoded
// in base 3 per position: 0 absent, 1 present (wrong spot), 2 correct.
// Duplicate letters follow the official rules: correct positions claim
// their letters first, then "present" marks are given while letter
// supplies last.
func Feedback(guess, answer string) (uint8, error) {
	if len(guess) != WordLen || len(answer) != WordLen {
		return 0, fmt.Errorf("kernels: words must have %d letters", WordLen)
	}
	for i := 0; i < WordLen; i++ {
		if guess[i] < 'a' || guess[i] > 'z' || answer[i] < 'a' || answer[i] > 'z' {
			return 0, fmt.Errorf("kernels: words must be lowercase a-z")
		}
	}
	var counts [26]int8
	var marks [WordLen]uint8
	// Pass 1: exact matches consume their letters.
	for i := 0; i < WordLen; i++ {
		if guess[i] == answer[i] {
			marks[i] = 2
		} else {
			counts[answer[i]-'a']++
		}
	}
	// Pass 2: present marks while supplies last.
	for i := 0; i < WordLen; i++ {
		if marks[i] == 2 {
			continue
		}
		c := guess[i] - 'a'
		if counts[c] > 0 {
			counts[c]--
			marks[i] = 1
		}
	}
	var code uint8
	for i := WordLen - 1; i >= 0; i-- {
		code = code*3 + marks[i]
	}
	return code, nil
}

// AllCorrect is the feedback code of a solved guess (all positions 2).
const AllCorrect uint8 = 2 + 2*3 + 2*9 + 2*27 + 2*81

// Wordle is a solver instance over a fixed word list (candidates ==
// allowed guesses, the "hard mode" simplification).
type Wordle struct {
	Words []string
	// table[g*len+a] caches Feedback(Words[g], Words[a]); nil until
	// Precompute.
	table []uint8
}

// NewWordle validates the list and builds a solver.
func NewWordle(words []string) (*Wordle, error) {
	if len(words) == 0 {
		return nil, errors.New("kernels: empty word list")
	}
	seen := make(map[string]bool, len(words))
	for _, w := range words {
		if len(w) != WordLen {
			return nil, fmt.Errorf("kernels: word %q is not %d letters", w, WordLen)
		}
		for i := 0; i < WordLen; i++ {
			if w[i] < 'a' || w[i] > 'z' {
				return nil, fmt.Errorf("kernels: word %q has non a-z letter", w)
			}
		}
		if seen[w] {
			return nil, fmt.Errorf("kernels: duplicate word %q", w)
		}
		seen[w] = true
	}
	return &Wordle{Words: words}, nil
}

// Precompute fills the guess x answer feedback table — the
// memoization optimization (trades O(n^2) bytes for the per-pair scoring
// work).
func (w *Wordle) Precompute() {
	words := w.Words
	n := len(words)
	w.table = make([]uint8, n*n)
	tbl := w.table
	for g := 0; g < n; g++ {
		for a := 0; a < n; a++ {
			fb, _ := Feedback(words[g], words[a])
			tbl[g*n+a] = fb
		}
	}
}

// feedbackOf returns the (possibly cached) feedback between word indices.
func (w *Wordle) feedbackOf(g, a int) uint8 {
	if w.table != nil {
		return w.table[g*len(w.Words)+a]
	}
	fb, _ := Feedback(w.Words[g], w.Words[a])
	return fb
}

// scoreGuess returns the expected remaining-candidate count of guessing g
// against the candidate set (lower is better): sum over feedback buckets
// of (bucket size)^2 / total.
func (w *Wordle) scoreGuess(g int, candidates []int) float64 {
	var buckets [feedbackStates]int
	for _, a := range candidates {
		buckets[w.feedbackOf(g, a)]++
	}
	var ss float64
	for _, b := range buckets {
		ss += float64(b) * float64(b)
	}
	return ss / float64(len(candidates))
}

// BestGuess returns the candidate index minimizing expected remaining
// candidates, scoring sequentially. Ties break to the lower index, so all
// variants are deterministic and comparable.
func (w *Wordle) BestGuess(candidates []int) (int, error) {
	if len(candidates) == 0 {
		return 0, errors.New("kernels: no candidates")
	}
	best, bestScore := candidates[0], w.scoreGuess(candidates[0], candidates)
	for _, g := range candidates[1:] {
		if s := w.scoreGuess(g, candidates); s < bestScore {
			best, bestScore = g, s
		}
	}
	return best, nil
}

// BestGuessParallel scores candidate guesses as a parallel reduction on
// the shared scheduler: each range reports its best (score, index) pair
// and pairs combine by lower score, ties to the lower index — an
// order-insensitive fold, so the answer is deterministic under stealing.
// Guess scoring cost varies with how sharply a guess partitions the
// candidates, which is exactly the irregularity stealing absorbs.
func (w *Wordle) BestGuessParallel(candidates []int, workers int) (int, error) {
	n := len(candidates)
	if n == 0 {
		return 0, errors.New("kernels: no candidates")
	}
	type result struct {
		idx   int
		score float64
	}
	pol, grain := sched.PolicyStealing, 0
	if workers > 0 {
		pol, grain = sched.PolicyStatic, (n+workers-1)/workers
	}
	best := sched.Reduce(sched.Default(), pol, n, grain, result{idx: -1},
		func(lo, hi int) result {
			best, bestScore := candidates[lo], w.scoreGuess(candidates[lo], candidates)
			for _, g := range candidates[lo+1 : hi] {
				if s := w.scoreGuess(g, candidates); s < bestScore {
					best, bestScore = g, s
				}
			}
			return result{idx: best, score: bestScore}
		},
		func(a, b result) result {
			switch {
			case a.idx < 0:
				return b
			case b.idx < 0:
				return a
			case b.score < a.score, b.score == a.score && b.idx < a.idx:
				return b
			default:
				return a
			}
		})
	return best.idx, nil
}

// Solve plays a full game against the hidden answer (an index into Words)
// and returns the number of guesses used. parallel > 0 scores guesses with
// that many workers.
func (w *Wordle) Solve(answer int, parallel int) (int, error) {
	if answer < 0 || answer >= len(w.Words) {
		return 0, fmt.Errorf("kernels: answer index %d out of range", answer)
	}
	candidates := make([]int, len(w.Words))
	for i := range candidates {
		candidates[i] = i
	}
	for turn := 1; turn <= 32; turn++ {
		var g int
		var err error
		if parallel > 0 {
			g, err = w.BestGuessParallel(candidates, parallel)
		} else {
			g, err = w.BestGuess(candidates)
		}
		if err != nil {
			return 0, err
		}
		fb := w.feedbackOf(g, answer)
		if fb == AllCorrect {
			return turn, nil
		}
		next := candidates[:0]
		for _, a := range candidates {
			if a != g && w.feedbackOf(g, a) == fb {
				next = append(next, a)
			}
		}
		if len(next) == 0 {
			return 0, errors.New("kernels: candidate set emptied without solving")
		}
		candidates = next
	}
	return 0, errors.New("kernels: unsolved after 32 turns")
}

// DefaultWordList returns a 120-word list of common five-letter words.
func DefaultWordList() []string {
	return []string{
		"about", "above", "abuse", "actor", "adapt", "added", "admit",
		"adopt", "after", "again", "agent", "agree", "ahead", "alarm",
		"album", "alert", "alike", "alive", "allow", "alone", "along",
		"alter", "among", "anger", "angle", "angry", "apart", "apple",
		"apply", "arena", "argue", "arise", "armor", "array", "aside",
		"asset", "audio", "audit", "avoid", "awake", "award", "aware",
		"badly", "baker", "bases", "basic", "basis", "beach", "began",
		"begin", "being", "below", "bench", "billy", "birth", "black",
		"blame", "blind", "block", "blood", "board", "boost", "booth",
		"bound", "brain", "brand", "bread", "break", "breed", "brief",
		"bring", "broad", "broke", "brown", "build", "built", "buyer",
		"cable", "calif", "carry", "catch", "cause", "chain", "chair",
		"chart", "chase", "cheap", "check", "chest", "chief", "child",
		"china", "chose", "civil", "claim", "class", "clean", "clear",
		"click", "clock", "close", "coach", "coast", "could", "count",
		"court", "cover", "craft", "crash", "cream", "crime", "cross",
		"crowd", "crown", "curve", "cycle", "daily", "dance", "dated",
		"dealt",
	}
}
