package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

// denseFromCOO materializes a small COO matrix for reference computation.
func denseFromCOO(m *COO) [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
	}
	for k := range m.Vals {
		d[m.RowIdx[k]][m.ColIdx[k]] += m.Vals[k]
	}
	return d
}

func refSpMV(d [][]float64, x []float64) []float64 {
	y := make([]float64, len(d))
	for i, row := range d {
		for j, v := range row {
			y[i] += v * x[j]
		}
	}
	return y
}

func vecDiff(a, b []float64) float64 {
	var max float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max
}

func TestCOOValidate(t *testing.T) {
	m := RandomSparse(10, 8, 30, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &COO{Rows: 2, Cols: 2, RowIdx: []int32{5}, ColIdx: []int32{0}, Vals: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range row must fail")
	}
	bad2 := &COO{Rows: 2, Cols: 2, RowIdx: []int32{0}, ColIdx: []int32{0}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestFormatConversionsPreserveValues(t *testing.T) {
	m := RandomSparse(20, 15, 80, 2)
	dense := denseFromCOO(m)
	csr := m.ToCSR()
	csc := m.ToCSC()
	back := csr.ToCOO()
	dense2 := denseFromCOO(back)
	for i := range dense {
		for j := range dense[i] {
			if math.Abs(dense[i][j]-dense2[i][j]) > 1e-12 {
				t.Fatalf("CSR round trip changed (%d,%d)", i, j)
			}
		}
	}
	// Row pointer sanity.
	if int(csr.RowPtr[csr.Rows]) != csr.NNZ() {
		t.Fatal("CSR RowPtr tail != NNZ")
	}
	if int(csc.ColPtr[csc.Cols]) != csc.NNZ() {
		t.Fatal("CSC ColPtr tail != NNZ")
	}
}

func TestDuplicatesSummed(t *testing.T) {
	m := &COO{Rows: 2, Cols: 2,
		RowIdx: []int32{0, 0, 1},
		ColIdx: []int32{1, 1, 0},
		Vals:   []float64{2, 3, 4}}
	csr := m.ToCSR()
	if csr.NNZ() != 2 {
		t.Fatalf("NNZ after dedup = %d, want 2", csr.NNZ())
	}
	x := []float64{1, 1}
	y := make([]float64, 2)
	SpMVCSR(csr, x, y)
	if y[0] != 5 || y[1] != 4 {
		t.Fatalf("y = %v, want [5 4]", y)
	}
}

func TestAllSpMVFormatsAgree(t *testing.T) {
	for _, gen := range []func() *COO{
		func() *COO { return RandomSparse(40, 40, 200, 3) },
		func() *COO { return BandedSparse(40, 3, 4) },
		func() *COO { return PowerLawSparse(40, 5, 1.5, 5) },
	} {
		m := gen()
		dense := denseFromCOO(m)
		x := UniformSamples(m.Cols, 9)
		want := refSpMV(dense, x)

		csr, csc := m.ToCSR(), m.ToCSC()
		y := make([]float64, m.Rows)
		SpMVCSR(csr, x, y)
		if vecDiff(y, want) > 1e-9 {
			t.Fatal("CSR SpMV wrong")
		}
		SpMVCSC(csc, x, y)
		if vecDiff(y, want) > 1e-9 {
			t.Fatal("CSC SpMV wrong")
		}
		SpMVCOO(m, x, y)
		if vecDiff(y, want) > 1e-9 {
			t.Fatal("COO SpMV wrong")
		}
		for _, w := range []int{1, 3, 8} {
			SpMVCSRParallel(csr, x, y, w)
			if vecDiff(y, want) > 1e-9 {
				t.Fatalf("parallel CSR (w=%d) wrong", w)
			}
		}
	}
}

func TestSpMVWorkCharacterization(t *testing.T) {
	if SpMVFLOPs(10) != 20 {
		t.Fatal("SpMVFLOPs wrong")
	}
	if SpMVCSRBytes(10, 100) <= 0 {
		t.Fatal("SpMVCSRBytes must be positive")
	}
}

func TestGenerators(t *testing.T) {
	b := BandedSparse(10, 1, 1)
	// Tridiagonal: 3n - 2 entries.
	if b.NNZ() != 28 {
		t.Fatalf("banded NNZ = %d, want 28", b.NNZ())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	p := PowerLawSparse(50, 4, 1.2, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	csr := p.ToCSR()
	st := csr.Stats()
	// Power-law structure must be visibly imbalanced.
	if st.RowCV < 0.3 {
		t.Fatalf("power-law RowCV = %v, want > 0.3", st.RowCV)
	}
	if st.MaxPerRow <= int(st.MeanPerRow) {
		t.Fatal("power-law max row should exceed mean")
	}
}

func TestStats(t *testing.T) {
	m := BandedSparse(10, 1, 1).ToCSR()
	s := m.Stats()
	if s.Rows != 10 || s.NNZ != 28 {
		t.Fatalf("stats identity wrong: %+v", s)
	}
	if math.Abs(s.MeanPerRow-2.8) > 1e-12 {
		t.Fatalf("MeanPerRow = %v", s.MeanPerRow)
	}
	if s.EmptyRows != 0 {
		t.Fatal("banded has no empty rows")
	}
	// Tridiagonal: every nnz is within the +-1 diagonal band.
	if s.DiagonalDominance != 1 {
		t.Fatalf("DiagonalDominance = %v, want 1", s.DiagonalDominance)
	}
	if s.Density <= 0 || s.Density > 1 {
		t.Fatalf("Density = %v", s.Density)
	}
	empty := (&COO{Rows: 0, Cols: 0}).ToCSR()
	_ = empty.Stats() // must not panic
}

// Property: SpMV is linear — A*(2x) == 2*(A*x) across all formats.
func TestQuickSpMVLinearity(t *testing.T) {
	f := func(seed int64) bool {
		m := RandomSparse(15, 15, 60, seed)
		csr := m.ToCSR()
		x := UniformSamples(15, seed+1)
		x2 := make([]float64, len(x))
		for i := range x {
			x2[i] = 2 * x[i]
		}
		y1 := make([]float64, 15)
		y2 := make([]float64, 15)
		SpMVCSR(csr, x, y1)
		SpMVCSR(csr, x2, y2)
		for i := range y1 {
			if math.Abs(y2[i]-2*y1[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: conversion chain COO -> CSR -> COO -> CSC agrees with direct
// COO -> CSC on the dense materialization.
func TestQuickConversionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		m := RandomSparse(12, 9, 40, seed)
		d1 := denseFromCOO(m.ToCSR().ToCOO())
		x := UniformSamples(9, seed)
		want := refSpMV(denseFromCOO(m), x)
		got1 := refSpMV(d1, x)
		y := make([]float64, 12)
		SpMVCSC(m.ToCSC(), x, y)
		return vecDiff(got1, want) < 1e-9 && vecDiff(y, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
