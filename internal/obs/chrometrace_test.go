package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestChromeTraceRoundTrip emits a session with nested spans on two
// tracks, instants and a counter series, decodes the JSON with
// encoding/json, and asserts the structure survives: span nesting (via
// timestamps and durations), track ids, and the counter samples.
func TestChromeTraceRoundTrip(t *testing.T) {
	s := NewSession("roundtrip")
	host := s.Track("host")
	host.AddSpanOffsets("outer", nil, 0, 10*time.Millisecond, nil)
	host.AddSpanOffsets("inner", []string{"outer"}, 2*time.Millisecond, 6*time.Millisecond,
		map[string]any{"bytes": 128})
	rank := s.Track("rank 0")
	rank.AddSpanOffsets("send", nil, time.Millisecond, 3*time.Millisecond, nil)
	rank.Instant("late-sender", nil)
	s.CounterSampleAt("cache-misses", 0, 0)
	s.CounterSampleAt("cache-misses", 5*time.Millisecond, 42)

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var decoded ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}

	byPhase := make(map[string][]ChromeEvent)
	for _, e := range decoded.TraceEvents {
		byPhase[e.Phase] = append(byPhase[e.Phase], e)
	}

	// Track metadata: a thread_name record per track, names preserved.
	// Exported tids are assigned by sorted track name, not creation
	// order, so the test resolves them from the metadata.
	tids := make(map[string]int)
	for _, e := range byPhase["M"] {
		if e.Name == "thread_name" {
			tids[e.Args["name"].(string)] = e.TID
		}
	}
	hostTID, hostOK := tids["host"]
	rankTID, rankOK := tids["rank 0"]
	if !hostOK || !rankOK {
		t.Fatalf("thread names = %v", tids)
	}

	// Spans: three complete events; inner nested inside outer on the same
	// tid, send on the rank tid.
	spans := byPhase["X"]
	if len(spans) != 3 {
		t.Fatalf("complete events = %d, want 3", len(spans))
	}
	find := func(name string) ChromeEvent {
		for _, e := range spans {
			if e.Name == name {
				return e
			}
		}
		t.Fatalf("span %q missing", name)
		return ChromeEvent{}
	}
	outer, inner, send := find("outer"), find("inner"), find("send")
	if outer.TID != hostTID || inner.TID != hostTID || send.TID != rankTID {
		t.Fatalf("track ids: outer=%d inner=%d send=%d", outer.TID, inner.TID, send.TID)
	}
	if inner.TS < outer.TS || inner.TS+inner.Dur > outer.TS+outer.Dur {
		t.Fatalf("nesting lost: outer [%v,%v] inner [%v,%v]",
			outer.TS, outer.TS+outer.Dur, inner.TS, inner.TS+inner.Dur)
	}
	if inner.Args["bytes"].(float64) != 128 {
		t.Fatalf("span args lost: %v", inner.Args)
	}
	if outer.Dur != 10000 || inner.Dur != 4000 {
		t.Fatalf("durations (us): outer=%v inner=%v", outer.Dur, inner.Dur)
	}

	// Instants.
	if len(byPhase["i"]) != 1 || byPhase["i"][0].Name != "late-sender" {
		t.Fatalf("instants = %+v", byPhase["i"])
	}

	// Counter series: two samples in order with values intact.
	cs := byPhase["C"]
	if len(cs) != 2 {
		t.Fatalf("counter events = %d, want 2", len(cs))
	}
	if cs[0].Name != "cache-misses" || cs[1].Name != "cache-misses" {
		t.Fatalf("counter names = %v, %v", cs[0].Name, cs[1].Name)
	}
	if cs[0].Args["value"].(float64) != 0 || cs[1].Args["value"].(float64) != 42 {
		t.Fatalf("counter values lost: %v %v", cs[0].Args, cs[1].Args)
	}
	if cs[1].TS != 5000 {
		t.Fatalf("counter timestamp = %v us, want 5000", cs[1].TS)
	}
}

// TestChromeTraceIsValidFormat guards the two accepted container shapes:
// we emit the object-with-traceEvents form, and every event must carry
// the mandatory ph/pid/tid fields.
func TestChromeTraceIsValidFormat(t *testing.T) {
	s := NewSession("valid")
	s.Track("t").AddSpanOffsets("x", nil, 0, time.Millisecond, nil)
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	raw, ok := top["traceEvents"]
	if !ok {
		t.Fatal("traceEvents field missing")
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("traceEvents is not an array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for _, e := range events {
		if _, ok := e["ph"]; !ok {
			t.Fatalf("event without phase: %v", e)
		}
		if _, ok := e["pid"]; !ok {
			t.Fatalf("event without pid: %v", e)
		}
	}
}
