package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Chrome Trace Event Format export (the "JSON Array with metadata" form:
// an object whose traceEvents field holds the events). The output loads
// directly in Perfetto (ui.perfetto.dev) and chrome://tracing, which is
// the point: students inspect the toolbox's runs with the same viewers
// used on real systems.
//
// Mapping: the session is pid 1, each Track is a tid with a thread_name
// metadata record, spans are complete events (ph "X"), instants are ph
// "i", counter series are ph "C". Timestamps are microseconds from the
// session epoch, as the format requires.
//
// The export is deterministic: the same recorded material marshals to
// the same bytes no matter which interleaving produced it. Track ids
// are creation-ordered and workers append spans concurrently, so the
// raw session order varies run to run; here tids are reassigned by
// sorted track name and events are sorted by time. That makes golden
// tests byte-exact and diffs between two exports meaningful.

// ChromeEvent is one entry of the traceEvents array. Exported so the
// round-trip test (and any downstream tool) can decode what we emit.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

const tracePID = 1

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// ChromeTrace assembles the export object.
func (s *Session) ChromeTrace() ChromeTrace {
	spans := s.Spans()
	instants := s.Instants()
	counters := s.Counters()
	trackNames := s.TrackNames()

	// tid = rank of the track name in sorted order, independent of
	// which track happened to be created first.
	order := make([]int, len(trackNames))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return trackNames[order[a]] < trackNames[order[b]] })
	tid := make([]int, len(trackNames))
	for newID, oldID := range order {
		tid[oldID] = newID
	}

	// Spans sort by start, then tid, then duration descending (an
	// enclosing span precedes the nested span it shares a start with —
	// viewers infer nesting from emission order on ties), then name.
	sort.SliceStable(spans, func(a, b int) bool {
		sa, sb := spans[a], spans[b]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		if ta, tb := tid[sa.TrackID], tid[sb.TrackID]; ta != tb {
			return ta < tb
		}
		if sa.Dur != sb.Dur {
			return sa.Dur > sb.Dur
		}
		return sa.Name < sb.Name
	})
	sort.SliceStable(instants, func(a, b int) bool {
		ia, ib := instants[a], instants[b]
		if ia.At != ib.At {
			return ia.At < ib.At
		}
		if ta, tb := tid[ia.TrackID], tid[ib.TrackID]; ta != tb {
			return ta < tb
		}
		return ia.Name < ib.Name
	})
	counterOrder := make([]string, 0, len(counters))
	for name := range counters {
		counterOrder = append(counterOrder, name)
	}
	sort.Strings(counterOrder)

	events := make([]ChromeEvent, 0, len(spans)+len(instants)+2*len(trackNames)+8)
	events = append(events, ChromeEvent{
		Name: "process_name", Phase: "M", PID: tracePID,
		Args: map[string]any{"name": s.Name()},
	})
	for newID, oldID := range order {
		events = append(events, ChromeEvent{
			Name: "thread_name", Phase: "M", PID: tracePID, TID: newID,
			Args: map[string]any{"name": trackNames[oldID]},
		})
		events = append(events, ChromeEvent{
			Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: newID,
			Args: map[string]any{"sort_index": newID},
		})
	}
	for _, sp := range spans {
		events = append(events, ChromeEvent{
			Name: sp.Name, Phase: "X", TS: usec(sp.Start), Dur: usec(sp.Dur),
			PID: tracePID, TID: tid[sp.TrackID], Args: sp.Args,
		})
	}
	for _, in := range instants {
		events = append(events, ChromeEvent{
			Name: in.Name, Phase: "i", TS: usec(in.At),
			PID: tracePID, TID: tid[in.TrackID], Scope: "t", Args: in.Args,
		})
	}
	for _, name := range counterOrder {
		for _, smp := range counters[name] {
			events = append(events, ChromeEvent{
				Name: name, Phase: "C", TS: usec(smp.At), PID: tracePID,
				Args: map[string]any{"value": smp.Value},
			})
		}
	}
	return ChromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"session": s.Name(), "exporter": "perfeng/internal/obs"},
	}
}

// WriteChromeTrace writes the Chrome Trace Event Format JSON to w.
func (s *Session) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.ChromeTrace())
}
