package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Chrome Trace Event Format export (the "JSON Array with metadata" form:
// an object whose traceEvents field holds the events). The output loads
// directly in Perfetto (ui.perfetto.dev) and chrome://tracing, which is
// the point: students inspect the toolbox's runs with the same viewers
// used on real systems.
//
// Mapping: the session is pid 1, each Track is a tid with a thread_name
// metadata record, spans are complete events (ph "X"), instants are ph
// "i", counter series are ph "C". Timestamps are microseconds from the
// session epoch, as the format requires.

// ChromeEvent is one entry of the traceEvents array. Exported so the
// round-trip test (and any downstream tool) can decode what we emit.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

const tracePID = 1

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// ChromeTrace assembles the export object.
func (s *Session) ChromeTrace() ChromeTrace {
	spans := s.Spans()
	instants := s.Instants()
	counters := s.Counters()
	trackNames := s.TrackNames()
	s.mu.Lock()
	counterOrder := append([]string(nil), s.names...)
	s.mu.Unlock()

	events := make([]ChromeEvent, 0, len(spans)+len(instants)+2*len(trackNames)+8)
	events = append(events, ChromeEvent{
		Name: "process_name", Phase: "M", PID: tracePID,
		Args: map[string]any{"name": s.Name()},
	})
	for id, name := range trackNames {
		events = append(events, ChromeEvent{
			Name: "thread_name", Phase: "M", PID: tracePID, TID: id,
			Args: map[string]any{"name": name},
		})
		events = append(events, ChromeEvent{
			Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: id,
			Args: map[string]any{"sort_index": id},
		})
	}
	for _, sp := range spans {
		events = append(events, ChromeEvent{
			Name: sp.Name, Phase: "X", TS: usec(sp.Start), Dur: usec(sp.Dur),
			PID: tracePID, TID: sp.TrackID, Args: sp.Args,
		})
	}
	for _, in := range instants {
		events = append(events, ChromeEvent{
			Name: in.Name, Phase: "i", TS: usec(in.At),
			PID: tracePID, TID: in.TrackID, Scope: "t", Args: in.Args,
		})
	}
	for _, name := range counterOrder {
		for _, smp := range counters[name] {
			events = append(events, ChromeEvent{
				Name: name, Phase: "C", TS: usec(smp.At), PID: tracePID,
				Args: map[string]any{"value": smp.Value},
			})
		}
	}
	return ChromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"session": s.Name(), "exporter": "perfeng/internal/obs"},
	}
}

// WriteChromeTrace writes the Chrome Trace Event Format JSON to w.
func (s *Session) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.ChromeTrace())
}
