package obs

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"perfeng/internal/cluster"
	"perfeng/internal/counters"
	"perfeng/internal/gpu"
	"perfeng/internal/machine"
	"perfeng/internal/profile"
	"perfeng/internal/sched"
)

// Adapters wiring the existing producers into one session timeline:
// profiler regions become spans, cluster ranks become tracks (keeping
// the material the Scalasca-style wait-state analysis runs on), counter
// event sets become sampled series, and SIMT kernel launches become
// device-track spans with occupancy metadata.

// ProfileListener returns a profile.SpanListener mirroring every region
// exit onto the track, preserving the region stack for the folded
// export. Attach with p.Listen(track.ProfileListener()).
func (t *Track) ProfileListener() profile.SpanListener {
	return func(path []string, start, end time.Time) {
		leaf := path[len(path)-1]
		t.AddSpanAt(leaf, path[:len(path)-1], start, end, nil)
	}
}

// AddClusterTrace imports a cluster tracer's per-rank event streams as
// "rank N" tracks: every send/recv/collective/compute interval becomes a
// span carrying peer and byte metadata. The late-sender totals of the
// wait-state analysis are attached as instant events at each rank's
// timeline origin, so the diagnosis travels with the trace.
func AddClusterTrace(s *Session, tr *cluster.Tracer) {
	ws := tr.AnalyzeWaitStates()
	for r := 0; r < tr.Size(); r++ {
		t := s.Track("rank " + strconv.Itoa(r))
		for _, e := range tr.Events(r) {
			args := map[string]any{"bytes": e.Bytes}
			if e.Peer >= 0 {
				args["peer"] = e.Peer
			}
			t.AddSpanAt(e.Kind.String(), nil, e.Start, e.End, args)
		}
		if wait := ws.LateSenderTime[r]; wait > 0 {
			t.Instant("late-sender", map[string]any{
				"wait": wait.String(),
			})
		}
	}
}

// CounterSampler samples a PAPI-style event set into the session's
// counter series. Values are reported as deltas from the first sample,
// so the series start at zero at the session origin instead of at
// whatever the process accumulated before tracing began.
type CounterSampler struct {
	s    *Session
	set  *counters.EventSet
	base map[counters.Event]uint64
	// events and names are resolved once at construction so the
	// per-span-boundary record loop builds no series-name strings.
	events []counters.Event
	names  []string
}

// NewCounterSampler creates a sampler over the set and records the
// baseline sample immediately. prefix namespaces the series (e.g.
// "runtime/"). The set needs its events added, but not started.
func NewCounterSampler(s *Session, prefix string, set *counters.EventSet) (*CounterSampler, error) {
	base, err := set.ReadNow()
	if err != nil {
		return nil, err
	}
	cs := &CounterSampler{s: s, set: set, base: base, events: set.Events()}
	cs.names = make([]string, len(cs.events))
	for i, e := range cs.events {
		cs.names[i] = prefix + string(e)
	}
	cs.record(s.Now(), base)
	return cs, nil
}

// Sample reads every event in the set and appends one point per series,
// stamped now. Call it at span boundaries so counter inflections line up
// with the spans that caused them.
func (cs *CounterSampler) Sample() error {
	vals, err := cs.set.ReadNow()
	if err != nil {
		return err
	}
	cs.record(cs.s.Now(), vals)
	return nil
}

func (cs *CounterSampler) record(at time.Duration, vals map[counters.Event]uint64) {
	for i, e := range cs.events {
		// Signed delta: gauges like GO_GOROUTINES can dip below the
		// baseline, which must not wrap around in uint64 space.
		delta := float64(vals[e]) - float64(cs.base[e])
		cs.s.CounterSampleAt(cs.names[i], at, delta)
	}
}

// GPURecorder implements gpu.Recorder: kernel launches become spans on a
// "gpu device" track annotated with geometry and the occupancy analysis
// of model.go, and each executed block becomes a nested span on its
// worker's "gpu sm N" track.
type GPURecorder struct {
	s     *Session
	model machine.GPU
	// RegsPerThread is the per-thread register assumption fed to the
	// occupancy calculation (the executor does not model registers);
	// defaults to 32, the usual CUDA compiler ballpark.
	RegsPerThread int
}

// NewGPURecorder creates a recorder emitting onto s for a device model.
func NewGPURecorder(s *Session, model machine.GPU) *GPURecorder {
	return &GPURecorder{s: s, model: model, RegsPerThread: 32}
}

// KernelLaunch implements gpu.Recorder.
func (g *GPURecorder) KernelLaunch(name string, grid, block gpu.Dim3, sharedLen, workers int, start, end time.Time) {
	args := map[string]any{
		"grid":         fmt.Sprintf("%dx%dx%d", grid.X, grid.Y, grid.Z),
		"block":        fmt.Sprintf("%dx%dx%d", block.X, block.Y, block.Z),
		"blocks":       grid.Count(),
		"threads":      grid.Count() * block.Count(),
		"shared_bytes": sharedLen * 8,
		"workers":      workers,
	}
	if occ, err := gpu.ComputeOccupancy(g.model, block.Count(), g.RegsPerThread, sharedLen*8); err == nil {
		args["occupancy"] = occ.Fraction
		args["occupancy_limited_by"] = occ.LimitedBy
	}
	g.s.Track("gpu device").AddSpanAt(name, nil, start, end, args)
}

// KernelBlock implements gpu.Recorder.
func (g *GPURecorder) KernelBlock(name string, worker int, blockIdx gpu.Dim3, start, end time.Time) {
	t := g.s.Track(fmt.Sprintf("gpu sm %d", worker))
	t.AddSpanAt("block", []string{name}, start, end, map[string]any{
		"blockIdx": fmt.Sprintf("(%d,%d,%d)", blockIdx.X, blockIdx.Y, blockIdx.Z),
	})
}

// SchedObserver implements sched.Observer: every range a pool executes
// becomes a span on a per-executor track ("sched worker 0", …, plus
// "sched caller" for ranges a submitter ran in its help loop), named by
// scheduling policy — the timeline view of how evenly a parallel
// region spread over the pool. Attach with sched.Observe(
// obs.NewSchedObserver(session)) and detach with sched.Observe(nil).
type SchedObserver struct {
	s *Session
}

// NewSchedObserver creates an observer emitting onto s.
func NewSchedObserver(s *Session) *SchedObserver {
	return &SchedObserver{s: s}
}

// TaskRan implements sched.Observer.
func (o *SchedObserver) TaskRan(executor string, pol sched.Policy, start time.Time, dur time.Duration) {
	off := o.s.At(start)
	o.s.Track("sched "+executor).AddSpanOffsets("parfor/"+pol.String(), nil, off, off+dur, nil)
}

// TaskRanInfo implements sched.ProvenanceObserver: the span carries the
// submitting region's id and fork offset plus steal provenance, so an
// offline analyzer (internal/critpath) can rebuild fork/join and steal
// edges from the exported trace alone.
func (o *SchedObserver) TaskRanInfo(info sched.TaskInfo) {
	off := o.s.At(info.Start)
	args := map[string]any{
		"region":  info.Region,
		"worker":  info.Worker,
		"origin":  info.Origin,
		"stolen":  info.Stolen,
		"fork_ns": int64(o.s.At(info.Forked)),
	}
	o.s.Track("sched "+info.Executor).AddSpanOffsets(
		"parfor/"+info.Policy.String(), nil, off, off+info.Dur, args)
}

// SessionSink is a swappable indirection in front of the current
// session: long-lived consumers (the telemetry collector's sample
// bridge, the monitoring server's trace endpoints) hold one stable sink
// while a rolling workload loop rotates fresh sessions underneath it.
// It satisfies telemetry.SampleSink and, via Current, supplies
// telemetry.TraceSource; samples arriving while no session is attached
// are dropped.
type SessionSink struct {
	cur atomic.Pointer[Session]
}

// NewSessionSink returns a sink forwarding to s (nil = detached).
func NewSessionSink(s *Session) *SessionSink {
	k := &SessionSink{}
	k.cur.Store(s)
	return k
}

// Set swaps the target session; nil detaches.
func (k *SessionSink) Set(s *Session) { k.cur.Store(s) }

// Current returns the session currently receiving samples, or nil.
func (k *SessionSink) Current() *Session { return k.cur.Load() }

// CounterSample forwards one sampled value to the current session.
func (k *SessionSink) CounterSample(name string, v float64) {
	if s := k.cur.Load(); s != nil {
		s.CounterSample(name, v)
	}
}
