package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndStacks(t *testing.T) {
	s := NewSession("test")
	tr := s.Track("main")
	tr.Begin("outer")
	tr.Begin("inner")
	if err := tr.End("inner"); err != nil {
		t.Fatal(err)
	}
	if err := tr.End("outer"); err != nil {
		t.Fatal(err)
	}
	spans := s.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// inner completes first and must carry its enclosing frame.
	if spans[0].Name != "inner" || len(spans[0].Stack) != 1 || spans[0].Stack[0] != "outer" {
		t.Fatalf("inner span = %+v", spans[0])
	}
	if spans[1].Name != "outer" || len(spans[1].Stack) != 0 {
		t.Fatalf("outer span = %+v", spans[1])
	}
	if spans[0].Start < spans[1].Start {
		t.Fatal("inner must start after outer")
	}
	if s.OpenSpans() != 0 {
		t.Fatal("session left spans open")
	}
}

func TestEndDiagnosesUnbalancedSpans(t *testing.T) {
	s := NewSession("test")
	tr := s.Track("main")
	if err := tr.End("nothing"); err == nil {
		t.Fatal("End on empty stack must fail")
	}
	tr.Begin("a")
	if err := tr.End("b"); err == nil {
		t.Fatal("mismatched End must fail")
	}
	if err := tr.End("a"); err != nil {
		t.Fatal(err)
	}
}

func TestTracksAreStableByName(t *testing.T) {
	s := NewSession("test")
	a := s.Track("a")
	b := s.Track("b")
	if a.ID() == b.ID() {
		t.Fatal("distinct tracks share an id")
	}
	if s.Track("a") != a {
		t.Fatal("Track must return the same track for the same name")
	}
	names := s.TrackNames()
	if names[a.ID()] != "a" || names[b.ID()] != "b" {
		t.Fatalf("track names = %v", names)
	}
}

// TestConcurrentSpanEmission is the acceptance check: spans emitted from
// many goroutines at once, each on its own per-goroutine track, under
// the race detector.
func TestConcurrentSpanEmission(t *testing.T) {
	s := NewSession("race")
	const workers = 8
	const spansPer = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := s.GoroutineTrack()
			for i := 0; i < spansPer; i++ {
				if err := tr.Span(fmt.Sprintf("work-%d", w), func() {
					s.CounterSample("progress", float64(i))
				}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(s.Spans()); got != workers*spansPer {
		t.Fatalf("spans = %d, want %d", got, workers*spansPer)
	}
	if got := len(s.Counters()["progress"]); got != workers*spansPer {
		t.Fatalf("samples = %d, want %d", got, workers*spansPer)
	}
	// Every goroutine got its own track.
	names := s.TrackNames()
	if len(names) != workers {
		t.Fatalf("tracks = %d (%v), want %d", len(names), names, workers)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "goroutine ") {
			t.Fatalf("unexpected track name %q", n)
		}
	}
}

func TestFoldedStacks(t *testing.T) {
	s := NewSession("test")
	tr := s.Track("main")
	tr.AddSpanOffsets("leaf", []string{"root"}, 1*time.Millisecond, 2*time.Millisecond, nil)
	tr.AddSpanOffsets("root", nil, 0, 4*time.Millisecond, nil)
	lines := s.FoldedStacks()
	if len(lines) != 2 {
		t.Fatalf("folded lines = %v", lines)
	}
	// root's exclusive time is 4ms - 1ms of child = 3ms.
	if lines[0] != "main;root 3000" {
		t.Fatalf("root line = %q", lines[0])
	}
	if lines[1] != "main;root;leaf 1000" {
		t.Fatalf("leaf line = %q", lines[1])
	}
}

func TestFoldedSanitizesSeparator(t *testing.T) {
	s := NewSession("test")
	s.Track("main").AddSpanOffsets("a;b", nil, 0, time.Millisecond, nil)
	lines := s.FoldedStacks()
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "main;a:b ") {
		t.Fatalf("folded = %v", lines)
	}
}

func TestFoldedKeepsSubMicrosecondSpans(t *testing.T) {
	s := NewSession("test")
	s.Track("main").AddSpanOffsets("blink", nil, 0, 100*time.Nanosecond, nil)
	lines := s.FoldedStacks()
	if len(lines) != 1 || lines[0] != "main;blink 1" {
		t.Fatalf("folded = %v", lines)
	}
}

func TestFlatReport(t *testing.T) {
	s := NewSession("test")
	tr := s.Track("main")
	tr.AddSpanOffsets("hot", nil, 0, 3*time.Millisecond, nil)
	tr.AddSpanOffsets("cold", nil, 3*time.Millisecond, 4*time.Millisecond, nil)
	tr.AddSpanOffsets("hot", nil, 4*time.Millisecond, 7*time.Millisecond, nil)
	rep := s.FlatReport()
	if !strings.Contains(rep, "flat profile (by exclusive time):") {
		t.Fatalf("header missing:\n%s", rep)
	}
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	// Header, column row, then hot before cold (6ms vs 1ms).
	if len(lines) != 4 {
		t.Fatalf("report lines = %d:\n%s", len(lines), rep)
	}
	if !strings.Contains(lines[2], "hot") || !strings.Contains(lines[2], "2") {
		t.Fatalf("hot row = %q", lines[2])
	}
	if !strings.Contains(lines[3], "cold") {
		t.Fatalf("cold row = %q", lines[3])
	}
}

func TestWallClockConversion(t *testing.T) {
	s := NewSession("test")
	if s.At(time.Now().Add(-time.Hour)) != 0 {
		t.Fatal("pre-epoch timestamps must clamp to zero")
	}
	if s.At(time.Now()) < 0 {
		t.Fatal("offsets must be non-negative")
	}
	start := time.Now()
	end := start.Add(5 * time.Millisecond)
	tr := s.Track("main")
	tr.AddSpanAt("x", nil, start, end, nil)
	sp := s.Spans()[0]
	if sp.Dur < 4*time.Millisecond || sp.Dur > 6*time.Millisecond {
		t.Fatalf("span duration = %v, want ~5ms", sp.Dur)
	}
}
