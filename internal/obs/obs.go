// Package obs is the toolbox's unified observability layer: one session
// timeline that every producer — the region profiler, the cluster tracer,
// the PAPI-style counters, the SIMT device — records into, with exports a
// real tool can open. The course's seven-stage process lives or dies on
// correlated evidence ("use different performance engineering tools"),
// yet each substrate kept its own clock and its own report; obs gives
// them a shared monotonic clock, named per-goroutine/per-rank/per-device
// tracks, nested spans, instant events and counter sample series, and
// renders the result as
//
//   - Chrome Trace Event Format JSON (open in Perfetto or chrome://tracing),
//   - folded stacks (feed to flamegraph.pl or speedscope), and
//   - the flat profile text students already know from internal/profile.
//
// All methods are safe for concurrent use; each goroutine (or adapter)
// typically records onto its own Track, and the session serializes the
// bookkeeping.
package obs

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one completed interval on a track.
type Span struct {
	// TrackID identifies the track the span was recorded on.
	TrackID int
	// Name is the leaf frame name.
	Name string
	// Stack holds the enclosing frame names, outermost first, excluding
	// Name itself.
	Stack []string
	// Start and Dur position the span on the session timeline (offsets
	// from the session epoch, monotonic clock).
	Start, Dur time.Duration
	// Args carries producer metadata (peer rank, bytes, occupancy, ...).
	Args map[string]any
}

// End returns the span's end offset.
func (sp Span) End() time.Duration { return sp.Start + sp.Dur }

// Instant is a zero-duration marker on a track.
type Instant struct {
	TrackID int
	Name    string
	At      time.Duration
	Args    map[string]any
}

// Sample is one point of a counter series.
type Sample struct {
	At    time.Duration
	Value float64
}

// Track is one horizontal lane of the timeline: a goroutine, a cluster
// rank, a GPU worker. Tracks carry the open-span stack, so Begin/End
// nest per track exactly as regions nest per thread in Score-P.
type Track struct {
	s    *Session
	id   int
	name string
	open []openSpan
}

type openSpan struct {
	name  string
	start time.Duration
}

// ID returns the track id (the Chrome-trace tid).
func (t *Track) ID() int { return t.id }

// Name returns the track name.
func (t *Track) Name() string { return t.name }

// Session is one recording: an epoch, a set of tracks, and everything
// recorded onto them.
type Session struct {
	mu       sync.Mutex
	name     string
	epoch    time.Time // carries a monotonic reading
	tracks   []*Track
	byName   map[string]*Track
	spans    []Span
	instants []Instant
	series   map[string][]Sample
	names    []string // counter insertion order
}

// NewSession starts a session; its epoch is now.
func NewSession(name string) *Session {
	return &Session{
		name:   name,
		epoch:  time.Now(),
		byName: make(map[string]*Track),
		series: make(map[string][]Sample),
	}
}

// Name returns the session name.
func (s *Session) Name() string { return s.name }

// Now returns the current offset on the session timeline.
func (s *Session) Now() time.Duration { return time.Since(s.epoch) }

// At converts a wall-clock timestamp to a timeline offset. Timestamps
// taken with time.Now carry Go's monotonic reading, so the subtraction is
// immune to wall-clock adjustment; times before the epoch clamp to zero.
func (s *Session) At(t time.Time) time.Duration {
	d := t.Sub(s.epoch)
	if d < 0 {
		return 0
	}
	return d
}

// Track returns the track with the name, creating it on first use.
func (s *Session) Track(name string) *Track {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trackLocked(name)
}

func (s *Session) trackLocked(name string) *Track {
	if t, ok := s.byName[name]; ok {
		return t
	}
	t := &Track{s: s, id: len(s.tracks), name: name}
	s.tracks = append(s.tracks, t)
	s.byName[name] = t
	return t
}

// GoroutineTrack returns the calling goroutine's own track
// ("goroutine <id>"), the per-thread lane of classic tracers.
func (s *Session) GoroutineTrack() *Track {
	return s.Track(fmt.Sprintf("goroutine %d", goid()))
}

// goid extracts the runtime's goroutine id from the stack header
// ("goroutine 123 [running]:") — the standard trick, used only to label
// tracks, never for logic.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// Begin opens a nested span on the track.
func (t *Track) Begin(name string) {
	now := t.s.Now()
	t.s.mu.Lock()
	t.open = append(t.open, openSpan{name: name, start: now})
	t.s.mu.Unlock()
}

// End closes the innermost open span. Like profile.Exit it diagnoses
// unbalanced instrumentation: the name must match the open span.
func (t *Track) End(name string) error {
	now := t.s.Now()
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if len(t.open) == 0 {
		return fmt.Errorf("obs: end %q on track %q with no open span", name, t.name)
	}
	top := t.open[len(t.open)-1]
	if top.name != name {
		return fmt.Errorf("obs: end %q does not match open span %q", name, top.name)
	}
	t.open = t.open[:len(t.open)-1]
	stack := make([]string, len(t.open))
	for i, o := range t.open {
		stack[i] = o.name
	}
	t.s.spans = append(t.s.spans, Span{
		TrackID: t.id, Name: name, Stack: stack,
		Start: top.start, Dur: now - top.start,
	})
	return nil
}

// Span records f as one span.
func (t *Track) Span(name string, f func()) error {
	t.Begin(name)
	f()
	return t.End(name)
}

// Depth returns the track's open-span depth.
func (t *Track) Depth() int {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return len(t.open)
}

// AddSpanAt records a completed span from explicit wall-clock timestamps
// — the adapter entry point for producers that kept their own event logs
// (cluster tracer, profiler regions, GPU blocks). stack lists enclosing
// frames, outermost first; args may be nil.
func (t *Track) AddSpanAt(name string, stack []string, start, end time.Time, args map[string]any) {
	so, eo := t.s.At(start), t.s.At(end)
	t.AddSpanOffsets(name, stack, so, eo, args)
}

// AddSpanOffsets is AddSpanAt with timeline offsets already computed.
func (t *Track) AddSpanOffsets(name string, stack []string, start, end time.Duration, args map[string]any) {
	if end < start {
		end = start
	}
	t.s.mu.Lock()
	t.s.spans = append(t.s.spans, Span{
		TrackID: t.id, Name: name, Stack: append([]string(nil), stack...),
		Start: start, Dur: end - start, Args: args,
	})
	t.s.mu.Unlock()
}

// Instant records a zero-duration marker now.
func (t *Track) Instant(name string, args map[string]any) {
	t.InstantAt(name, t.s.Now(), args)
}

// InstantAt records a zero-duration marker at an explicit timeline
// offset — the adapter entry point for producers (the flight recorder's
// drain) that kept their own timestamps.
func (t *Track) InstantAt(name string, at time.Duration, args map[string]any) {
	t.s.mu.Lock()
	t.s.instants = append(t.s.instants, Instant{TrackID: t.id, Name: name, At: at, Args: args})
	t.s.mu.Unlock()
}

// CounterSample appends one point to the named counter series, stamped
// now.
func (s *Session) CounterSample(name string, v float64) {
	s.CounterSampleAt(name, s.Now(), v)
}

// CounterSampleAt appends one point at an explicit offset.
func (s *Session) CounterSampleAt(name string, at time.Duration, v float64) {
	s.mu.Lock()
	if _, ok := s.series[name]; !ok {
		s.names = append(s.names, name)
	}
	s.series[name] = append(s.series[name], Sample{At: at, Value: v})
	s.mu.Unlock()
}

// Spans returns a copy of the completed spans in recording order.
func (s *Session) Spans() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// Instants returns a copy of the instant events.
func (s *Session) Instants() []Instant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Instant(nil), s.instants...)
}

// Counters returns the counter series, keyed by name.
func (s *Session) Counters() map[string][]Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]Sample, len(s.series))
	for k, v := range s.series {
		out[k] = append([]Sample(nil), v...)
	}
	return out
}

// TrackNames returns the track names indexed by track id.
func (s *Session) TrackNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.tracks))
	for i, t := range s.tracks {
		out[i] = t.name
	}
	return out
}

// OpenSpans reports how many spans are still open across all tracks —
// zero for a well-formed finished session.
func (s *Session) OpenSpans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tracks {
		n += len(t.open)
	}
	return n
}

// pathKey joins a span's frames under its track into the canonical
// "track;frame;frame" key used by the folded and flat exports. Semicolons
// inside names would corrupt the folded format, so they are rewritten.
func pathKey(trackName string, sp Span) string {
	var b bytes.Buffer
	b.WriteString(sanitizeFrame(trackName))
	for _, f := range sp.Stack {
		b.WriteByte(';')
		b.WriteString(sanitizeFrame(f))
	}
	b.WriteByte(';')
	b.WriteString(sanitizeFrame(sp.Name))
	return b.String()
}

func sanitizeFrame(name string) string {
	return string(bytes.ReplaceAll([]byte(name), []byte(";"), []byte(":")))
}

// pathStats aggregates inclusive time and call counts per stack path and
// charges each path's inclusive time to its parent, so exclusive time
// falls out as inclusive minus children — computed once, shared by the
// folded and flat exports.
type pathStats struct {
	paths     []string // sorted
	inclusive map[string]time.Duration
	children  map[string]time.Duration
	calls     map[string]int
}

func (s *Session) computePathStats() pathStats {
	spans := s.Spans()
	names := s.TrackNames()

	ps := pathStats{
		inclusive: make(map[string]time.Duration),
		children:  make(map[string]time.Duration),
		calls:     make(map[string]int),
	}
	for _, sp := range spans {
		key := pathKey(names[sp.TrackID], sp)
		if _, seen := ps.inclusive[key]; !seen {
			ps.paths = append(ps.paths, key)
		}
		ps.inclusive[key] += sp.Dur
		ps.calls[key]++
		if i := lastSep(key); i >= 0 {
			ps.children[key[:i]] += sp.Dur
		}
	}
	sort.Strings(ps.paths)
	return ps
}

// exclusive returns the path's self time, clamped at zero (adapters that
// import overlapping external timelines can overshoot).
func (ps pathStats) exclusive(path string) time.Duration {
	ex := ps.inclusive[path] - ps.children[path]
	if ex < 0 {
		return 0
	}
	return ex
}

func lastSep(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ';' {
			return i
		}
	}
	return -1
}
