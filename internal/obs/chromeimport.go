package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"encoding/json"
)

// Chrome Trace Event Format import: the inverse of ChromeTrace, good
// enough to feed an exported trace back into the offline analyzers
// (internal/critpath) without keeping the live Session around. Only the
// shapes our exporter emits are rebuilt — complete events, instants,
// counter samples, thread_name metadata; anything else (async events,
// flow arrows from other tools) is skipped rather than rejected, so
// traces that passed through Perfetto still load.
//
// What does not survive the round trip: span stacks (the format encodes
// nesting positionally, not structurally — consumers that care, like
// critpath, recover containment geometrically) and the session epoch
// (offsets are preserved exactly, the wall-clock anchor is gone).

// ReadChromeTrace decodes a Chrome Trace Event Format JSON object (the
// traceEvents-in-an-object form our exporter writes) and rebuilds a
// Session from it.
func ReadChromeTrace(r io.Reader) (*Session, error) {
	var tr ChromeTrace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("obs: decode chrome trace: %w", err)
	}
	return SessionFromChromeTrace(tr)
}

// SessionFromChromeTrace rebuilds a Session from a decoded trace.
func SessionFromChromeTrace(tr ChromeTrace) (*Session, error) {
	name := tr.OtherData["session"]
	trackName := map[int]string{}
	tids := make([]int, 0, len(tr.TraceEvents))
	for _, e := range tr.TraceEvents {
		switch {
		case e.Phase == "M" && e.Name == "process_name":
			if n, ok := e.Args["name"].(string); ok && name == "" {
				name = n
			}
		case e.Phase == "M" && e.Name == "thread_name":
			if n, ok := e.Args["name"].(string); ok {
				if _, seen := trackName[e.TID]; !seen {
					tids = append(tids, e.TID)
				}
				trackName[e.TID] = n
			}
		case e.Phase == "X" || e.Phase == "i":
			if _, seen := trackName[e.TID]; !seen {
				trackName[e.TID] = "track " + strconv.Itoa(e.TID)
				tids = append(tids, e.TID)
			}
		}
	}
	if name == "" {
		name = "imported"
	}
	s := NewSession(name)
	// Materialize tracks in ascending tid order so a session that came
	// from our own exporter keeps its track ids verbatim.
	sort.Ints(tids)
	tracks := make(map[int]*Track, len(tids))
	for _, id := range tids {
		tracks[id] = s.Track(trackName[id])
	}
	for _, e := range tr.TraceEvents {
		switch e.Phase {
		case "X":
			t := tracks[e.TID]
			start := usecToDur(e.TS)
			t.AddSpanOffsets(e.Name, nil, start, start+usecToDur(e.Dur), e.Args)
		case "i":
			tracks[e.TID].InstantAt(e.Name, usecToDur(e.TS), e.Args)
		case "C":
			v, ok := e.Args["value"].(float64)
			if !ok {
				continue
			}
			s.CounterSampleAt(e.Name, usecToDur(e.TS), v)
		}
	}
	return s, nil
}

// usecToDur inverts usec. Exporter timestamps are exact thirds of a
// nanosecond at worst within float64 range, so round-half-away restores
// the original integer nanoseconds for everything we wrote ourselves.
func usecToDur(us float64) time.Duration {
	return time.Duration(math.Round(us * 1e3))
}
