package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Folded-stack export, Brendan Gregg's flamegraph input format: one line
// per unique stack, frames joined by semicolons, followed by a weight.
// The weight here is exclusive (self) time in integer microseconds, so
// flamegraph.pl and speedscope render the session's time attribution the
// way a sampling profiler's collapse script would.

// FoldedStacks returns the folded lines ("track;frame;...;leaf weight"),
// sorted lexicographically for deterministic output. Paths whose
// exclusive time rounds to zero microseconds are kept at weight 1 when
// they carry calls, so very fast regions stay visible rather than
// silently vanishing.
func (s *Session) FoldedStacks() []string {
	ps := s.computePathStats()
	out := make([]string, 0, len(ps.paths))
	for _, path := range ps.paths {
		us := ps.exclusive(path).Microseconds()
		if us == 0 {
			us = 1
		}
		out = append(out, path+" "+strconv.FormatInt(us, 10))
	}
	return out
}

// WriteFolded writes the folded stacks to w, one per line.
func (s *Session) WriteFolded(w io.Writer) error {
	for _, line := range s.FoldedStacks() {
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// FlatReport renders the session as the flat profile students know from
// internal/profile: spans merged by leaf name, sorted by exclusive time.
// The header and columns match profile.Profiler.Report, so a session
// summary drops into the same stage-7 report slot.
func (s *Session) FlatReport() string {
	ps := s.computePathStats()
	type row struct {
		name      string
		calls     int
		inclusive time.Duration
		exclusive time.Duration
	}
	byName := make(map[string]*row)
	order := make([]string, 0, len(ps.paths))
	for _, path := range ps.paths {
		leaf := path[lastSep(path)+1:]
		r, ok := byName[leaf]
		if !ok {
			r = &row{name: leaf}
			byName[leaf] = r
			order = append(order, leaf)
		}
		r.calls += ps.calls[path]
		r.inclusive += ps.inclusive[path]
		r.exclusive += ps.exclusive(path)
	}
	rows := make([]*row, 0, len(order))
	var total time.Duration
	for _, name := range order {
		rows = append(rows, byName[name])
		total += byName[name].exclusive
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].exclusive != rows[j].exclusive {
			return rows[i].exclusive > rows[j].exclusive
		}
		return rows[i].name < rows[j].name
	})

	var sb strings.Builder
	sb.WriteString("flat profile (by exclusive time):\n")
	sb.WriteString("  excl%   exclusive    inclusive    calls  region\n")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = float64(r.exclusive) / float64(total) * 100
		}
		fmt.Fprintf(&sb, "  %5.1f%%  %-11s  %-11s  %5d  %s\n",
			pct, r.exclusive.Round(time.Microsecond),
			r.inclusive.Round(time.Microsecond), r.calls, r.name)
	}
	return sb.String()
}
