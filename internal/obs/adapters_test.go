package obs

import (
	"strings"
	"testing"
	"time"

	"perfeng/internal/cluster"
	"perfeng/internal/counters"
	"perfeng/internal/gpu"
	"perfeng/internal/machine"
	"perfeng/internal/profile"
)

func TestProfileListenerMirrorsRegions(t *testing.T) {
	s := NewSession("test")
	p := profile.New()
	p.Listen(s.Track("host").ProfileListener())

	p.Enter("outer")
	p.Enter("inner")
	time.Sleep(time.Millisecond)
	if err := p.Exit("inner"); err != nil {
		t.Fatal(err)
	}
	if err := p.Exit("outer"); err != nil {
		t.Fatal(err)
	}

	spans := s.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "inner" || len(spans[0].Stack) != 1 || spans[0].Stack[0] != "outer" {
		t.Fatalf("inner span = %+v", spans[0])
	}
	if spans[1].Name != "outer" {
		t.Fatalf("outer span = %+v", spans[1])
	}
	// The profiler's own statistics must be untouched by listening.
	if got := len(p.Regions()); got != 2 {
		t.Fatalf("profiler regions = %d", got)
	}
	// Folded export sees the region stack through the adapter.
	joined := strings.Join(s.FoldedStacks(), "\n")
	if !strings.Contains(joined, "host;outer;inner ") {
		t.Fatalf("folded stacks missing nested path:\n%s", joined)
	}
}

func TestAddClusterTrace(t *testing.T) {
	w, err := cluster.NewWorld(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tracer := w.EnableTracing()
	s := NewSession("test")
	err = w.Run(func(c *cluster.Comm) error {
		const tag = 7
		if c.Rank() == 0 {
			start := time.Now()
			for i := 0; i < 1000; i++ {
				_ = i
			}
			tracer.RecordCompute(0, start, time.Now())
			return c.Send(1, tag, []float64{1, 2, 3})
		}
		_, err := c.Recv(0, tag)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	AddClusterTrace(s, tracer)

	names := s.TrackNames()
	if len(names) != 2 || names[0] != "rank 0" || names[1] != "rank 1" {
		t.Fatalf("tracks = %v", names)
	}
	kinds := make(map[string]int)
	for _, sp := range s.Spans() {
		kinds[sp.Name]++
		if sp.Name == "send" {
			if sp.Args["peer"].(int) != 1 || sp.Args["bytes"].(int) != 24 {
				t.Fatalf("send args = %v", sp.Args)
			}
		}
	}
	for _, want := range []string{"send", "recv", "compute"} {
		if kinds[want] == 0 {
			t.Fatalf("missing %q spans: %v", want, kinds)
		}
	}
}

func TestCounterSampler(t *testing.T) {
	s := NewSession("test")
	set := counters.NewEventSet(counters.RuntimeBackend{})
	if err := set.Add(counters.Allocs, counters.Goroutines); err != nil {
		t.Fatal(err)
	}
	cs, err := NewCounterSampler(s, "runtime/", set)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate between samples so the delta is visibly positive.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	if err := cs.Sample(); err != nil {
		t.Fatal(err)
	}
	series := s.Counters()
	allocs := series["runtime/"+string(counters.Allocs)]
	if len(allocs) != 2 {
		t.Fatalf("alloc samples = %d, want 2 (baseline + one)", len(allocs))
	}
	if allocs[0].Value != 0 {
		t.Fatalf("baseline sample = %v, want 0", allocs[0].Value)
	}
	if allocs[1].Value <= 0 {
		t.Fatalf("alloc delta = %v, want > 0", allocs[1].Value)
	}
	if allocs[1].At < allocs[0].At {
		t.Fatal("samples out of order")
	}
	if _, ok := series["runtime/"+string(counters.Goroutines)]; !ok {
		t.Fatal("goroutine series missing")
	}
}

func TestGPURecorder(t *testing.T) {
	model := machine.DAS5TitanX()
	dev, err := gpu.NewDevice(model)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession("test")
	dev.Recorder = NewGPURecorder(s, model)

	n := 1 << 12
	out := make([]float64, n)
	if err := dev.LaunchNamed("saxpy",
		gpu.Dim3{X: n / 256, Y: 1, Z: 1}, gpu.Dim3{X: 256, Y: 1, Z: 1}, 0,
		func(b, tid gpu.Dim3, _ []float64) {
			i := b.X*256 + tid.X
			out[i] = 2*float64(i) + 1
		}); err != nil {
		t.Fatal(err)
	}

	var launch *Span
	blocks := 0
	spans := s.Spans()
	for i, sp := range spans {
		switch sp.Name {
		case "saxpy":
			launch = &spans[i]
		case "block":
			blocks++
			if len(sp.Stack) != 1 || sp.Stack[0] != "saxpy" {
				t.Fatalf("block span not nested under kernel: %+v", sp)
			}
		}
	}
	if launch == nil {
		t.Fatal("kernel launch span missing")
	}
	if blocks != n/256 {
		t.Fatalf("block spans = %d, want %d", blocks, n/256)
	}
	if launch.Args["occupancy"] == nil || launch.Args["blocks"].(int) != n/256 {
		t.Fatalf("launch args = %v", launch.Args)
	}
	// Device track plus at least one SM track exist.
	names := strings.Join(s.TrackNames(), ",")
	if !strings.Contains(names, "gpu device") || !strings.Contains(names, "gpu sm 0") {
		t.Fatalf("tracks = %s", names)
	}
}
