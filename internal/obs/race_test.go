package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestExportWhileRecording hammers one session with concurrent span,
// instant and counter writers while a drainer repeatedly renders both
// exports — the exact shape of the flight recorder's dump-on-violation
// path, where the serve loop keeps recording while /debug/flight
// drains. Run under -race this proves the session's locking covers the
// export readers, not just the recording writers.
func TestExportWhileRecording(t *testing.T) {
	s := NewSession("race")
	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := s.Track("writer")
			own := s.GoroutineTrack()
			// Record before checking stop, so every writer lands at
			// least one full iteration even if the drainer is quick.
			for i := 0; ; i++ {
				if err := own.Span("unit", func() {}); err != nil {
					t.Error(err)
					return
				}
				at := time.Duration(i) * time.Microsecond
				tr.AddSpanOffsets("work", []string{"outer"}, at, at+time.Microsecond,
					map[string]any{"writer": w})
				tr.InstantAt("mark", at, nil)
				s.CounterSampleAt("load", at, float64(i))
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	// The drainer: alternate both exports against the live session.
	for i := 0; i < 50; i++ {
		if err := s.WriteChromeTrace(io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteFolded(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if len(s.Spans()) == 0 || len(s.Instants()) == 0 {
		t.Fatal("writers recorded nothing")
	}
	if s.OpenSpans() != 0 {
		t.Fatalf("%d spans left open", s.OpenSpans())
	}
}

// TestInstantAt pins the explicit-offset variant: the marker lands at
// the given offset, not at now.
func TestInstantAt(t *testing.T) {
	s := NewSession("instants")
	tr := s.Track("t")
	tr.InstantAt("late", 42*time.Millisecond, map[string]any{"k": "v"})
	ins := s.Instants()
	if len(ins) != 1 || ins[0].At != 42*time.Millisecond || ins[0].Name != "late" {
		t.Fatalf("instants = %+v", ins)
	}
}
