package obs

import (
	"bytes"
	"testing"
	"time"
)

// goldenSession builds a fully deterministic session: every offset is
// explicit, and the creation/recording orders are deliberately scrambled
// relative to time and name order so the test proves the exporter sorts
// them back out.
func goldenSession() *Session {
	s := NewSession("golden")
	r := s.Track("rank 1") // created before "host": exercises the tid remap
	h := s.Track("host")
	h.AddSpanOffsets("main", nil, 0, 8*time.Millisecond, nil)
	r.AddSpanOffsets("compute", nil, 2*time.Millisecond, 7*time.Millisecond,
		map[string]any{"bytes": 64, "peer": 0})
	h.AddSpanOffsets("phase", []string{"main"}, 0, 3*time.Millisecond, nil)
	r.InstantAt("late-sender", 5*time.Millisecond, map[string]any{"wait": "1ms"})
	s.CounterSampleAt("b/ops", time.Millisecond, 2)
	s.CounterSampleAt("a/bytes", 0, 1)
	s.CounterSampleAt("b/ops", 2*time.Millisecond, 3)
	return s
}

// scrambledSession records the same material as goldenSession in a
// different order: tracks created the other way round, spans and samples
// appended in a different sequence.
func scrambledSession() *Session {
	s := NewSession("golden")
	h := s.Track("host")
	r := s.Track("rank 1")
	s.CounterSampleAt("a/bytes", 0, 1)
	h.AddSpanOffsets("phase", []string{"main"}, 0, 3*time.Millisecond, nil)
	r.InstantAt("late-sender", 5*time.Millisecond, map[string]any{"wait": "1ms"})
	r.AddSpanOffsets("compute", nil, 2*time.Millisecond, 7*time.Millisecond,
		map[string]any{"bytes": 64, "peer": 0})
	h.AddSpanOffsets("main", nil, 0, 8*time.Millisecond, nil)
	s.CounterSampleAt("b/ops", time.Millisecond, 2)
	s.CounterSampleAt("b/ops", 2*time.Millisecond, 3)
	return s
}

// TestChromeTraceGolden pins the export byte for byte. If this fails
// because the format deliberately changed, regenerate the constant —
// but remember every stored trace in CI artifacts is in the old shape.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSession().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenChromeTrace {
		t.Fatalf("export drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, goldenChromeTrace)
	}
}

// TestChromeTraceDeterministic asserts recording order cannot leak into
// the bytes: two sessions holding the same material in different
// insertion orders export identically.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenSession().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := scrambledSession().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("insertion order leaked into the export:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
}

// TestReadChromeTrace round-trips export → import → export and checks
// both the rebuilt session and that a second export reproduces the
// first byte for byte (import is lossless for everything critpath
// consumes: offsets, durations, args, track names, counters).
func TestReadChromeTrace(t *testing.T) {
	var first bytes.Buffer
	if err := goldenSession().WriteChromeTrace(&first); err != nil {
		t.Fatal(err)
	}
	s, err := ReadChromeTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if s.Name() != "golden" {
		t.Fatalf("session name = %q", s.Name())
	}
	names := s.TrackNames()
	if len(names) != 2 || names[0] != "host" || names[1] != "rank 1" {
		t.Fatalf("track names = %v", names)
	}
	spans := s.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	var compute *Span
	for i := range spans {
		if spans[i].Name == "compute" {
			compute = &spans[i]
		}
	}
	if compute == nil {
		t.Fatal("compute span missing after import")
	}
	if compute.Start != 2*time.Millisecond || compute.Dur != 5*time.Millisecond {
		t.Fatalf("compute offsets: start=%v dur=%v", compute.Start, compute.Dur)
	}
	if compute.Args["bytes"].(float64) != 64 {
		t.Fatalf("span args lost: %v", compute.Args)
	}
	if got := s.Counters()["b/ops"]; len(got) != 2 || got[1].Value != 3 || got[1].At != 2*time.Millisecond {
		t.Fatalf("counter series b/ops = %v", got)
	}
	if ins := s.Instants(); len(ins) != 1 || ins[0].Name != "late-sender" || ins[0].At != 5*time.Millisecond {
		t.Fatalf("instants = %v", s.Instants())
	}

	var second bytes.Buffer
	if err := s.WriteChromeTrace(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-export after import drifted:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}
}

// goldenChromeTrace is the pinned export of goldenSession.
const goldenChromeTrace = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "golden"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "host"
   }
  },
  {
   "name": "thread_sort_index",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "sort_index": 0
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "rank 1"
   }
  },
  {
   "name": "thread_sort_index",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "sort_index": 1
   }
  },
  {
   "name": "main",
   "ph": "X",
   "ts": 0,
   "dur": 8000,
   "pid": 1,
   "tid": 0
  },
  {
   "name": "phase",
   "ph": "X",
   "ts": 0,
   "dur": 3000,
   "pid": 1,
   "tid": 0
  },
  {
   "name": "compute",
   "ph": "X",
   "ts": 2000,
   "dur": 5000,
   "pid": 1,
   "tid": 1,
   "args": {
    "bytes": 64,
    "peer": 0
   }
  },
  {
   "name": "late-sender",
   "ph": "i",
   "ts": 5000,
   "pid": 1,
   "tid": 1,
   "s": "t",
   "args": {
    "wait": "1ms"
   }
  },
  {
   "name": "a/bytes",
   "ph": "C",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "value": 1
   }
  },
  {
   "name": "b/ops",
   "ph": "C",
   "ts": 1000,
   "pid": 1,
   "tid": 0,
   "args": {
    "value": 2
   }
  },
  {
   "name": "b/ops",
   "ph": "C",
   "ts": 2000,
   "pid": 1,
   "tid": 0,
   "args": {
    "value": 3
   }
  }
 ],
 "displayTimeUnit": "ms",
 "otherData": {
  "exporter": "perfeng/internal/obs",
  "session": "golden"
 }
}
`
