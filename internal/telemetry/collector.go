// The runtime collector: a background sampler that publishes Go
// runtime health — scheduler, GC, heap — into the registry on a ticker,
// and optionally mirrors every sample into a trace timeline (the obs
// session's counter series) so live monitoring and the Chrome-trace
// view stay one dataset.
package telemetry

import (
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
	"time"
)

// SampleSink receives every collector sample as a named series point.
// *obs.Session satisfies it, which is the bridge that lands live
// telemetry in the Chrome-trace timeline; implementations must be safe
// for concurrent use.
type SampleSink interface {
	CounterSample(name string, v float64)
}

// runtimeMetrics is the curated runtime/metrics subset the collector
// samples, with the registry names they publish under. Cumulative
// runtime totals are exposed as gauges (the collector samples, it does
// not own the increments).
var runtimeMetrics = []struct {
	source string // runtime/metrics key
	name   string // registry metric name
	help   string
}{
	{"/sched/goroutines:goroutines", "go_sched_goroutines", "Live goroutines."},
	{"/sched/gomaxprocs:threads", "go_sched_gomaxprocs_threads", "GOMAXPROCS."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total_cycles", "Completed GC cycles since process start."},
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes", "Cumulative bytes allocated on the heap."},
	{"/gc/heap/allocs:objects", "go_gc_heap_allocs_objects", "Cumulative heap objects allocated."},
	{"/memory/classes/heap/objects:bytes", "go_memory_heap_objects_bytes", "Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped by the Go runtime."},
}

// Collector samples the runtime into a registry on a fixed interval.
type Collector struct {
	reg      *Registry
	interval time.Duration

	mu   sync.Mutex
	sink SampleSink

	gauges     []*Gauge // aligned with the scalar entries of runtimeMetrics
	names      []string // exposition names, same alignment
	samples    []rtmetrics.Sample
	pauses     *Gauge // GC pause total from the runtime histogram
	heapInuse  *Gauge
	stackInuse *Gauge
	ticks      *Counter

	stop chan struct{}
	done chan struct{}
}

// NewCollector creates a collector publishing into reg every interval
// (minimum 10ms; zero means 1s). Call Start to begin sampling.
func NewCollector(reg *Registry, interval time.Duration) *Collector {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	c := &Collector{reg: reg, interval: interval}
	for _, m := range runtimeMetrics {
		c.gauges = append(c.gauges, reg.Gauge(m.name, m.help))
		c.names = append(c.names, m.name)
		c.samples = append(c.samples, rtmetrics.Sample{Name: m.source})
	}
	c.pauses = reg.Gauge("go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.")
	c.heapInuse = reg.Gauge("go_memstats_heap_inuse_bytes", "Heap bytes in in-use spans.")
	c.stackInuse = reg.Gauge("go_memstats_stack_inuse_bytes", "Stack bytes in use.")
	c.ticks = reg.Counter("perfeng_collector_ticks", "Collector sampling ticks.")
	return c
}

// SetSink attaches (or, with nil, detaches) a sink that receives every
// sampled value in addition to the registry — pass an *obs.Session to
// land live series in the trace timeline. Safe to swap while running,
// which is how a rolling serve loop re-points the collector at each
// fresh session.
func (c *Collector) SetSink(s SampleSink) {
	c.mu.Lock()
	c.sink = s
	c.mu.Unlock()
}

// Start launches the sampling loop. It samples once immediately so the
// registry is populated before the first scrape.
func (c *Collector) Start() {
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	c.SampleOnce()
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.SampleOnce()
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Idempotent; Start may
// be called again afterwards.
func (c *Collector) Stop() {
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop, c.done = nil, nil
}

// SampleOnce reads the runtime and publishes one sample of every
// metric. Exported so tests and one-shot tools can sample without the
// background loop.
func (c *Collector) SampleOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	rtmetrics.Read(c.samples)
	for i, s := range c.samples {
		var v float64
		switch s.Value.Kind() {
		case rtmetrics.KindUint64:
			v = float64(s.Value.Uint64())
		case rtmetrics.KindFloat64:
			v = s.Value.Float64()
		default:
			continue
		}
		c.gauges[i].Set(v)
		c.emit(c.names[i], v)
	}

	// GC pause total from the runtime's pause histogram: sum of
	// bucket-weighted counts is overkill; MemStats carries the exact
	// cumulative total.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pause := float64(ms.PauseTotalNs) / 1e9
	c.pauses.Set(pause)
	c.emit("go_gc_pause_total_seconds", pause)
	c.heapInuse.Set(float64(ms.HeapInuse))
	c.emit("go_memstats_heap_inuse_bytes", float64(ms.HeapInuse))
	c.stackInuse.Set(float64(ms.StackInuse))
	c.emit("go_memstats_stack_inuse_bytes", float64(ms.StackInuse))

	c.ticks.Inc()
}

// emit forwards one sample to the sink, if attached. Caller holds c.mu.
func (c *Collector) emit(name string, v float64) {
	if c.sink != nil {
		c.sink.CounterSample(name, v)
	}
}
