// The runtime collector: a background sampler that publishes Go
// runtime health — scheduler, GC, heap — into the registry on a ticker,
// and optionally mirrors every sample into a trace timeline (the obs
// session's counter series) so live monitoring and the Chrome-trace
// view stay one dataset.
package telemetry

import (
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
	"time"
)

// SampleSink receives every collector sample as a named series point.
// *obs.Session satisfies it, which is the bridge that lands live
// telemetry in the Chrome-trace timeline; implementations must be safe
// for concurrent use.
type SampleSink interface {
	CounterSample(name string, v float64)
}

// teeSink fans samples out to several sinks (trace timeline and flight
// recorder at once).
type teeSink []SampleSink

func (t teeSink) CounterSample(name string, v float64) {
	for _, s := range t {
		s.CounterSample(name, v)
	}
}

// TeeSink combines sinks into one that forwards every sample to each
// non-nil member, so a collector can feed the obs timeline and the
// flight recorder from the same sampling pass.
func TeeSink(sinks ...SampleSink) SampleSink {
	out := make(teeSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// runtimeMetrics is the curated runtime/metrics subset the collector
// samples, with the registry names they publish under. Cumulative
// runtime totals are exposed as gauges (the collector samples, it does
// not own the increments).
var runtimeMetrics = []struct {
	source string // runtime/metrics key
	name   string // registry metric name
	help   string
}{
	{"/sched/goroutines:goroutines", "go_sched_goroutines", "Live goroutines."},
	{"/sched/gomaxprocs:threads", "go_sched_gomaxprocs_threads", "GOMAXPROCS."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total_cycles", "Completed GC cycles since process start."},
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes", "Cumulative bytes allocated on the heap."},
	{"/gc/heap/allocs:objects", "go_gc_heap_allocs_objects", "Cumulative heap objects allocated."},
	{"/memory/classes/heap/objects:bytes", "go_memory_heap_objects_bytes", "Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped by the Go runtime."},
}

// Collector samples the runtime into a registry on a fixed interval.
type Collector struct {
	reg      *Registry
	interval time.Duration

	mu   sync.Mutex
	sink SampleSink

	gauges     []*Gauge // aligned with the scalar entries of runtimeMetrics
	names      []string // exposition names, same alignment
	samples    []rtmetrics.Sample
	pauses     *Gauge // GC pause total from the runtime histogram
	heapInuse  *Gauge
	stackInuse *Gauge
	ticks      *Counter

	// Derived SLO-trigger gauges: interval-delta ratios a burn objective
	// can watch directly instead of re-deriving from raw cumulative
	// counters on every evaluation.
	gcBurn     *Gauge   // pause seconds per wall second over the last interval
	stealRatio *Gauge   // failed steal sweeps per steal attempt, last interval
	steals     *Counter // the sched counters the ratio derives from
	stealFails *Counter
	prevPause  float64
	prevSteals uint64
	prevFails  uint64
	prevAt     time.Time

	stop chan struct{}
	done chan struct{}
}

// NewCollector creates a collector publishing into reg every interval
// (minimum 10ms; zero means 1s). Call Start to begin sampling.
func NewCollector(reg *Registry, interval time.Duration) *Collector {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	c := &Collector{reg: reg, interval: interval}
	for _, m := range runtimeMetrics {
		//perfvet:ignore:allocattr gauge resolution runs once at collector construction, not per sample tick
		c.gauges = append(c.gauges, reg.Gauge(m.name, m.help))
		c.names = append(c.names, m.name)
		c.samples = append(c.samples, rtmetrics.Sample{Name: m.source})
	}
	c.pauses = reg.Gauge("go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.")
	c.heapInuse = reg.Gauge("go_memstats_heap_inuse_bytes", "Heap bytes in in-use spans.")
	c.stackInuse = reg.Gauge("go_memstats_stack_inuse_bytes", "Stack bytes in use.")
	c.ticks = reg.Counter("perfeng_collector_ticks", "Collector sampling ticks.")
	c.gcBurn = reg.Gauge("go_gc_pause_burn_ratio",
		"Fraction of the last sampling interval spent in GC stop-the-world pauses (derived).")
	c.stealRatio = reg.Gauge("perfeng_sched_steal_failure_ratio",
		"Failed steal sweeps per steal attempt over the last sampling interval (derived).")
	// The sched counters the ratio derives from. register() returns the
	// existing series when sched.EnableTelemetry already created them (and
	// creates zero-valued ones otherwise, keeping the ratio well-defined
	// whether or not the scheduler publishes).
	c.steals = reg.Counter("perfeng_sched_steals",
		"Tasks taken from another worker's deque.")
	c.stealFails = reg.Counter("perfeng_sched_steal_failures",
		"Steal sweeps that found every deque empty.")
	return c
}

// SetSink attaches (or, with nil, detaches) a sink that receives every
// sampled value in addition to the registry — pass an *obs.Session to
// land live series in the trace timeline. Safe to swap while running,
// which is how a rolling serve loop re-points the collector at each
// fresh session.
func (c *Collector) SetSink(s SampleSink) {
	c.mu.Lock()
	c.sink = s
	c.mu.Unlock()
}

// Start launches the sampling loop. It samples once immediately so the
// registry is populated before the first scrape.
func (c *Collector) Start() {
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	c.SampleOnce()
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.SampleOnce()
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Idempotent; Start may
// be called again afterwards.
func (c *Collector) Stop() {
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop, c.done = nil, nil
}

// SampleOnce reads the runtime and publishes one sample of every
// metric. Exported so tests and one-shot tools can sample without the
// background loop.
func (c *Collector) SampleOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	rtmetrics.Read(c.samples)
	for i, s := range c.samples {
		var v float64
		switch s.Value.Kind() {
		case rtmetrics.KindUint64:
			v = float64(s.Value.Uint64())
		case rtmetrics.KindFloat64:
			v = s.Value.Float64()
		default:
			continue
		}
		c.gauges[i].Set(v)
		c.emit(c.names[i], v)
	}

	// GC pause total from the runtime's pause histogram: sum of
	// bucket-weighted counts is overkill; MemStats carries the exact
	// cumulative total.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pause := float64(ms.PauseTotalNs) / 1e9
	c.pauses.Set(pause)
	c.emit("go_gc_pause_total_seconds", pause)
	c.heapInuse.Set(float64(ms.HeapInuse))
	c.emit("go_memstats_heap_inuse_bytes", float64(ms.HeapInuse))
	c.stackInuse.Set(float64(ms.StackInuse))
	c.emit("go_memstats_stack_inuse_bytes", float64(ms.StackInuse))

	// Derived interval deltas. The first sample has no interval, so both
	// ratios report zero until the second pass.
	now := time.Now()
	steals, fails := c.steals.Value(), c.stealFails.Value()
	if !c.prevAt.IsZero() {
		var burn float64
		if elapsed := now.Sub(c.prevAt).Seconds(); elapsed > 0 {
			burn = (pause - c.prevPause) / elapsed
		}
		c.gcBurn.Set(burn)
		c.emit("go_gc_pause_burn_ratio", burn)

		var ratio float64
		dSteals, dFails := steals-c.prevSteals, fails-c.prevFails
		if attempts := dSteals + dFails; attempts > 0 {
			ratio = float64(dFails) / float64(attempts)
		}
		c.stealRatio.Set(ratio)
		c.emit("perfeng_sched_steal_failure_ratio", ratio)
	}
	c.prevAt, c.prevPause = now, pause
	c.prevSteals, c.prevFails = steals, fails

	c.ticks.Inc()
}

// emit forwards one sample to the sink, if attached. Caller holds c.mu.
func (c *Collector) emit(name string, v float64) {
	if c.sink != nil {
		c.sink.CounterSample(name, v)
	}
}
