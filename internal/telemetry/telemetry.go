// Package telemetry is the toolbox's live metrics surface: a
// concurrency-safe registry of counters, gauges and histograms that is
// allocation-free on the hot path, cheap enough to leave compiled into
// production binaries, and scrapeable while workloads run.
//
// Where internal/obs records a bounded *session* (spans on a timeline,
// exported once at the end), telemetry holds *cumulative* state a
// monitoring system polls: the OpenMetrics exposition (openmetrics.go),
// the runtime collector (collector.go) and the embedded HTTP server
// (server.go) turn the registry into the always-on measurement
// infrastructure the course's "measure first" process asks for.
//
// Design constraints, in order:
//
//   - Hot path (Counter.Inc, Histogram.Observe) must be a few
//     nanoseconds and 0 allocs/op — it sits inside producer loops.
//   - Disabled must be near-free: every method is a no-op on a nil
//     receiver, so producers hold handles from a possibly-nil registry
//     and instrument unconditionally.
//   - Writers must not serialize: counters and histograms stripe their
//     state over cache-line-padded cells indexed by a per-goroutine
//     stack hint, so concurrent writers on different Ps do not bounce
//     one line (the geometry perfvet's falseshare analyzer checks).
//
// Handles are cheap pointers; look them up once (registration takes a
// lock, With allocates on first use per label set) and keep them.
package telemetry

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Kind discriminates the metric types of a family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer (the OpenMetrics type names).
func (k Kind) String() string {
	return [...]string{"counter", "gauge", "histogram"}[k]
}

// numShards is the stripe count for counters and histograms: enough
// stripes that concurrent writers on different Ps rarely collide, capped
// so idle families stay small. Computed once; GOMAXPROCS changes after
// init only affect contention, not correctness.
var numShards = func() int {
	n := runtime.GOMAXPROCS(0)
	shards := 1
	for shards < n {
		shards *= 2
	}
	if shards > 64 {
		shards = 64
	}
	return shards
}()

// cell is one cache-line-padded stripe of a counter. The padding keeps
// adjacent stripes on distinct lines — without it, striping would buy
// nothing: every Add would still bounce the same line between cores.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// shardIndex returns this goroutine's stripe. The hint is the address of
// a stack variable: distinct goroutines run on distinct stacks, so the
// multiplicative hash spreads concurrent writers over stripes, and the
// same goroutine hashes stably while its stack stays put. The pointer
// never escapes (it is consumed as an integer), so this is
// allocation-free — measured, and enforced by TestHotPathAllocs.
func shardIndex() int {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) * 0x9E3779B97F4A7C15
	return int(h>>33) & (numShards - 1)
}

// Counter is a monotonically increasing count of events. The zero state
// is sharded over padded cells; nil counters no-op.
type Counter struct {
	cells []cell
}

func newCounter() *Counter { return &Counter{cells: make([]cell, numShards)} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (counts only grow; use a Gauge for values that move
// both ways).
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.cells[shardIndex()].n.Add(delta)
}

// Value returns the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Gauge is a value that can go up and down (queue depth, occupancy,
// bytes in use). Set is last-write-wins, so a gauge is a single atomic,
// not a striped sum. Nil gauges no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

func newGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a distribution with exponential (log2) buckets: bucket i
// has upper bound 2^(minExp+i), closing with +Inf. Observation is O(1)
// — the bucket index comes straight from the float's exponent bits, no
// search — and the per-shard state keeps concurrent observers off each
// other's cache lines. Nil histograms no-op.
type Histogram struct {
	minExp int
	bounds []float64 // finite upper bounds, ascending; +Inf implied
	// counts is a shards × stride matrix of raw (non-cumulative) bucket
	// counts; stride is len(bounds)+1 (the +Inf overflow bucket) rounded
	// up to a cache line so shard rows do not share lines.
	counts []atomic.Uint64
	stride int
	sums   []sumCell

	// Exemplar state: the trace reference behind the largest observation
	// seen through ObserveExemplar. The fast path is one atomic load and
	// a compare; the lock is taken only when a new maximum arrives.
	exMax atomic.Uint64 // float64 bits of the retained exemplar's value
	_     [56]byte      // keep the hot exMax load off the lock word's cache line
	exMu  sync.Mutex
	ex    Exemplar
	exSet bool
}

// Exemplar links a histogram's extreme observation to the trace evidence
// behind it: a span on the flight-recorder timeline (track, name, start
// offset, duration). An SLO violation on the histogram can then point at
// the exact interval that caused it instead of a bare number.
type Exemplar struct {
	// Value is the observed value the exemplar annotates (seconds for
	// duration histograms).
	Value float64
	// Track and Name identify the span on the flight timeline.
	Track, Name string
	// Start and Dur position the span as offsets on the flight-recorder
	// timeline (the recorder's epoch, not the wall clock).
	Start, Dur time.Duration
}

// sumCell is a padded per-shard accumulator for the observation sum.
type sumCell struct {
	bits atomic.Uint64 // float64 bits, CAS-added
	_    [56]byte
}

func newHistogram(minExp, maxExp int) *Histogram {
	if maxExp < minExp {
		minExp, maxExp = maxExp, minExp
	}
	nb := maxExp - minExp + 1
	bounds := make([]float64, nb)
	for i := range bounds {
		bounds[i] = math.Ldexp(1, minExp+i)
	}
	stride := (nb + 1 + 7) &^ 7 // round to 8 uint64s = one 64B line
	h := &Histogram{
		minExp: minExp,
		bounds: bounds,
		counts: make([]atomic.Uint64, numShards*stride),
		stride: stride,
		sums:   make([]sumCell, numShards),
	}
	// -Inf so the first exemplar-carrying observation, whatever its
	// value, becomes the retained maximum.
	h.exMax.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps v to its raw bucket: values ≤ 2^minExp (including
// zero and negatives) land in bucket 0, (2^(e-1), 2^e] lands in bucket
// e-minExp, anything above the last bound in the +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 { // negative (incl. -0): below every bound
		return 0
	}
	exp := int(bits>>52&0x7FF) - 1023
	frac := bits & (1<<52 - 1)
	idx := exp - h.minExp
	if frac != 0 {
		idx++ // strictly above 2^exp, belongs to the next bound
	}
	if idx < 0 {
		return 0
	}
	if idx > len(h.bounds) {
		return len(h.bounds) // +Inf bucket (also where +Inf and NaN land)
	}
	return idx
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	shard := shardIndex()
	h.counts[shard*h.stride+h.bucketIndex(v)].Add(1)
	s := &h.sums[shard]
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration is shorthand for recording a duration in seconds.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// ObserveExemplar records v and, when v is the largest value the
// histogram has seen through this method, retains ex as the histogram's
// exemplar. The common case — v is not a new maximum — adds one atomic
// load and a compare to Observe and allocates nothing; only a fresh
// maximum takes the exemplar lock.
func (h *Histogram) ObserveExemplar(v float64, ex Exemplar) {
	if h == nil {
		return
	}
	h.Observe(v)
	if v <= math.Float64frombits(h.exMax.Load()) {
		return
	}
	h.exMu.Lock()
	if v > math.Float64frombits(h.exMax.Load()) {
		h.exMax.Store(math.Float64bits(v))
		h.ex = ex
		h.exSet = true
	}
	h.exMu.Unlock()
}

// Exemplar returns the trace reference behind the histogram's largest
// exemplar-carrying observation, and whether one has been recorded.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.ex, h.exSet
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	_, _, count := h.snapshot()
	return count
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the log2
// buckets. The rank convention follows internal/stats.Percentile: the
// fractional rank is q*(count-1), and the estimate interpolates linearly
// between that rank's neighbors — here under the assumption that a
// bucket's members are evenly spread from its lower to its upper bound
// (the only assumption a bucketed sketch can make). The first bucket's
// lower bound is 0; ranks landing in the +Inf bucket clamp to the last
// finite bound. Returns NaN for an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	cum, _, count := h.snapshot()
	if count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count-1)
	// First bucket whose cumulative count exceeds the rank holds the
	// rank's observation (cumulative counts index one past the last
	// member rank).
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) > rank })
	if i == len(cum) { // defensive: rank <= count-1 < cum[last]
		i = len(cum) - 1
	}
	var lower float64
	if i > 0 {
		lower = h.bounds[i-1]
	}
	if i >= len(h.bounds) {
		// +Inf bucket: no finite upper bound to interpolate toward.
		return h.bounds[len(h.bounds)-1]
	}
	upper := h.bounds[i]
	var prev uint64
	if i > 0 {
		prev = cum[i-1]
	}
	n := cum[i] - prev // members in this bucket; > 0 by bucket choice
	if n == 1 {
		// A single member is assumed mid-bucket — the unbiased guess.
		return lower + (upper-lower)/2
	}
	frac := (rank - float64(prev)) / float64(n-1)
	return lower + (upper-lower)*frac
}

// snapshot returns cumulative bucket counts (one per finite bound, plus
// +Inf last), the observation sum, and the total count.
func (h *Histogram) snapshot() (cumulative []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, 0, 0
	}
	raw := make([]uint64, len(h.bounds)+1)
	counts := h.counts
	for s := 0; s < numShards; s++ {
		row := s * h.stride
		for i := range raw {
			raw[i] += counts[row+i].Load()
		}
		sum += math.Float64frombits(h.sums[s].bits.Load())
	}
	cumulative = raw
	var running uint64
	for i := range cumulative {
		running += cumulative[i]
		cumulative[i] = running
	}
	return cumulative, sum, running
}

// family is one named metric family: a kind, label names, and one
// series per label-value combination.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	minExp     int // histogram bucket range
	maxExp     int

	mu     sync.Mutex
	keys   []string // series insertion order
	series map[string]*series
}

type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
}

// labelKey joins label values into the series map key. 0x1F (unit
// separator) cannot collide with escaped text boundaries in practice;
// values containing it still map consistently.
func labelKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1F)
		}
		b = append(b, v...)
	}
	return string(b)
}

// get returns the series for the label values, creating it on first use
// (the only allocating step; callers cache the returned handle).
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s expects %d label value(s), got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	switch f.kind {
	case KindCounter:
		s.counter = newCounter()
	case KindGauge:
		s.gauge = newGauge()
	case KindHistogram:
		s.histogram = newHistogram(f.minExp, f.maxExp)
	}
	f.keys = append(f.keys, key)
	f.series[key] = s
	return s
}

// Registry holds metric families. The zero value is not usable; a nil
// *Registry is the documented disabled state: every lookup returns a
// nil handle whose methods no-op, so "telemetry off" costs one nil
// check per operation.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register returns the named family, creating it if new and diagnosing
// conflicting re-registration (same name, different shape) — a
// programming error, reported eagerly.
func (r *Registry) register(name, help string, kind Kind, labelNames []string, minExp, maxExp int) *family {
	validateName(name)
	for _, l := range labelNames {
		validateName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !equalStrings(f.labelNames, labelNames) ||
			(kind == KindHistogram && (f.minExp != minExp || f.maxExp != maxExp)) {
			panic(fmt.Sprintf("telemetry: %s re-registered with a different kind, labels or buckets", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		minExp:     minExp, maxExp: maxExp,
		series: make(map[string]*series),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func validateName(name string) {
	if name == "" {
		panic("telemetry: empty metric or label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", name))
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the unlabeled counter with the name, creating it on
// first use. Counter names take an implicit _total suffix in the
// exposition; register the name without it.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, nil, 0, 0).get(nil).counter
}

// Gauge returns the unlabeled gauge with the name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, nil, 0, 0).get(nil).gauge
}

// Histogram returns the unlabeled histogram with the name and log2
// buckets 2^minExp .. 2^maxExp (+Inf implied). For durations in
// seconds, minExp -30 (≈1ns) and maxExp 4 (16s) cover the toolbox's
// operating range.
func (r *Registry) Histogram(name, help string, minExp, maxExp int) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram, nil, minExp, maxExp).get(nil).histogram
}

// CounterFamily declares a labeled counter family.
func (r *Registry) CounterFamily(name, help string, labelNames ...string) *CounterFamily {
	if r == nil {
		return nil
	}
	return &CounterFamily{f: r.register(name, help, KindCounter, labelNames, 0, 0)}
}

// GaugeFamily declares a labeled gauge family.
func (r *Registry) GaugeFamily(name, help string, labelNames ...string) *GaugeFamily {
	if r == nil {
		return nil
	}
	return &GaugeFamily{f: r.register(name, help, KindGauge, labelNames, 0, 0)}
}

// HistogramFamily declares a labeled histogram family with log2 buckets
// 2^minExp .. 2^maxExp.
func (r *Registry) HistogramFamily(name, help string, minExp, maxExp int, labelNames ...string) *HistogramFamily {
	if r == nil {
		return nil
	}
	return &HistogramFamily{f: r.register(name, help, KindHistogram, labelNames, minExp, maxExp)}
}

// CounterFamily is a counter per label-value combination.
type CounterFamily struct{ f *family }

// With returns the counter for the label values, creating it on first
// use. Cache the handle: With takes the family lock and allocates on a
// new label set; Inc/Add on the handle do not.
func (cf *CounterFamily) With(labelValues ...string) *Counter {
	if cf == nil {
		return nil
	}
	return cf.f.get(labelValues).counter
}

// GaugeFamily is a gauge per label-value combination.
type GaugeFamily struct{ f *family }

// With returns the gauge for the label values (see CounterFamily.With).
func (gf *GaugeFamily) With(labelValues ...string) *Gauge {
	if gf == nil {
		return nil
	}
	return gf.f.get(labelValues).gauge
}

// HistogramFamily is a histogram per label-value combination.
type HistogramFamily struct{ f *family }

// With returns the histogram for the label values (see
// CounterFamily.With).
func (hf *HistogramFamily) With(labelValues ...string) *Histogram {
	if hf == nil {
		return nil
	}
	return hf.f.get(labelValues).histogram
}

// find looks a series up without creating anything: nil when the family
// does not exist, is a different kind, or the series has not been
// instantiated. This is the read-side counterpart of register/get for
// consumers (the SLO engine) that watch metrics some producer may or may
// not have registered yet.
func (r *Registry) find(name string, kind Kind, labelValues []string) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	f, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || f.kind != kind || len(labelValues) != len(f.labelNames) {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.series[labelKey(labelValues)]
}

// FindHistogram returns the histogram series with the name and label
// values, or nil when no producer has registered it (yet).
func (r *Registry) FindHistogram(name string, labelValues ...string) *Histogram {
	if s := r.find(name, KindHistogram, labelValues); s != nil {
		return s.histogram
	}
	return nil
}

// FindGauge returns the gauge series with the name and label values, or
// nil when no producer has registered it (yet).
func (r *Registry) FindGauge(name string, labelValues ...string) *Gauge {
	if s := r.find(name, KindGauge, labelValues); s != nil {
		return s.gauge
	}
	return nil
}

// Bucket is one cumulative histogram bucket of a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper bound (le); +Inf closes the
	// histogram.
	UpperBound float64
	// CumulativeCount counts observations ≤ UpperBound.
	CumulativeCount uint64
}

// SeriesSnapshot is one series' state at snapshot time.
type SeriesSnapshot struct {
	// LabelValues aligns with the family's LabelNames.
	LabelValues []string
	// Value is the counter total or gauge value (unused for histograms).
	Value float64
	// Buckets, Sum and Count describe a histogram series.
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// FamilySnapshot is one family's state at snapshot time.
type FamilySnapshot struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string
	Series     []SeriesSnapshot
}

// Snapshot returns a consistent-enough copy of every family for
// exposition: families in registration order, series sorted by label
// values. Counters and histogram buckets are read atomically per cell;
// the snapshot as a whole is not a point-in-time cut (writers keep
// writing), which is the standard scrape semantics.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name: f.name, Help: f.help, Kind: f.kind,
			LabelNames: append([]string(nil), f.labelNames...),
		}
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{LabelValues: append([]string(nil), s.labelValues...)}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = s.gauge.Value()
			case KindHistogram:
				cum, sum, count := s.histogram.snapshot()
				ss.Sum, ss.Count = sum, count
				bounds := s.histogram.bounds
				buckets := make([]Bucket, len(cum))
				for i, c := range cum {
					ub := math.Inf(1)
					if i < len(bounds) {
						ub = bounds[i]
					}
					buckets[i] = Bucket{UpperBound: ub, CumulativeCount: c}
				}
				ss.Buckets = buckets
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}
