package telemetry

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds the fixed registry the golden file records: one
// of each kind, labeled and unlabeled, with label values that exercise
// escaping.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("perfeng_ops", "Operations completed.").Add(42)
	cf := reg.CounterFamily("perfeng_events", "Events by kind.", "kind", "peer")
	cf.With("send", "1").Add(7)
	cf.With("recv", "0").Add(9)
	cf.With(`quo"te`, "back\\slash\nnewline").Inc()
	reg.Gauge("perfeng_depth", "Queue depth.").Set(3.25)
	h := reg.Histogram("perfeng_latency_seconds", "Latency with\nmultiline help.", -2, 2)
	for _, v := range []float64{0.1, 0.25, 0.3, 1, 3, 100} {
		h.Observe(v)
	}
	return reg
}

func TestOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.om")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to record)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestOpenMetricsRoundTrip renders the registry, parses the text back,
// and checks the parsed families match the registry snapshot — values,
// labels (including escaped ones), histogram buckets, sums and counts.
func TestOpenMetricsRoundTrip(t *testing.T) {
	reg := goldenRegistry()
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseOpenMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if len(parsed) != len(snap) {
		t.Fatalf("parsed %d families, snapshot has %d", len(parsed), len(snap))
	}
	for i, want := range snap {
		got := parsed[i]
		if got.Name != want.Name || got.Kind != want.Kind {
			t.Fatalf("family %d: got %s/%v, want %s/%v", i, got.Name, got.Kind, want.Name, want.Kind)
		}
		if got.Help != want.Help {
			t.Errorf("%s: help %q != %q", got.Name, got.Help, want.Help)
		}
		if len(got.Series) != len(want.Series) {
			t.Fatalf("%s: %d series, want %d", got.Name, len(got.Series), len(want.Series))
		}
		for j, ws := range want.Series {
			gs := got.Series[j]
			if !equalStrings(gs.LabelValues, ws.LabelValues) {
				t.Errorf("%s[%d]: labels %q != %q", got.Name, j, gs.LabelValues, ws.LabelValues)
			}
			switch want.Kind {
			case KindCounter, KindGauge:
				if gs.Value != ws.Value {
					t.Errorf("%s[%d]: value %v != %v", got.Name, j, gs.Value, ws.Value)
				}
			case KindHistogram:
				if gs.Count != ws.Count || math.Abs(gs.Sum-ws.Sum) > 1e-9 {
					t.Errorf("%s[%d]: count/sum %d/%v != %d/%v", got.Name, j, gs.Count, gs.Sum, ws.Count, ws.Sum)
				}
				if len(gs.Buckets) != len(ws.Buckets) {
					t.Fatalf("%s[%d]: %d buckets, want %d", got.Name, j, len(gs.Buckets), len(ws.Buckets))
				}
				for k := range ws.Buckets {
					if gs.Buckets[k] != ws.Buckets[k] {
						t.Errorf("%s[%d] bucket %d: %+v != %+v", got.Name, j, k, gs.Buckets[k], ws.Buckets[k])
					}
				}
			}
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"all\\three\"\n", `all\\three\"\n`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// And the exposition round-trips them through the parser.
	reg := NewRegistry()
	cf := reg.CounterFamily("m", "", "l")
	for _, c := range cases {
		cf.With(c.in).Inc()
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseOpenMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range parsed[0].Series {
		seen[s.LabelValues[0]] = true
	}
	for _, c := range cases {
		if !seen[c.in] {
			t.Errorf("label %q did not round-trip (saw %v)", c.in, seen)
		}
	}
}

// TestHistogramExpositionCumulativity checks the wire-format contract
// directly on the text: le buckets monotone non-decreasing, +Inf
// present and equal to _count.
func TestHistogramExpositionCumulativity(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", -3, 3)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.1)
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseOpenMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := parsed[0].Series[0]
	if len(s.Buckets) == 0 {
		t.Fatal("no buckets parsed")
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) {
		t.Fatalf("last bucket le = %v, want +Inf", last.UpperBound)
	}
	if last.CumulativeCount != s.Count {
		t.Fatalf("+Inf bucket %d != count %d", last.CumulativeCount, s.Count)
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].CumulativeCount < s.Buckets[i-1].CumulativeCount {
			t.Fatalf("buckets not monotone: %+v", s.Buckets)
		}
	}
	// The raw text must spell the +Inf bound exactly "+Inf".
	if !strings.Contains(buf.String(), `le="+Inf"`) {
		t.Fatal(`exposition missing le="+Inf" bucket`)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"no-eof":         "# TYPE a counter\na_total 1\n",
		"after-eof":      "# EOF\nx 1\n",
		"unknown-type":   "# TYPE a summary\n# EOF\n",
		"bad-value":      "# TYPE a gauge\na nope\n# EOF\n",
		"orphan-sample":  "b 1\n# EOF\n",
		"unclosed-label": "# TYPE a counter\na_total{l=\"v 1\n# EOF\n",
	} {
		if _, err := ParseOpenMetrics(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestExpositionEndsWithEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "# EOF\n" {
		t.Fatalf("empty registry exposition = %q", got)
	}
}
