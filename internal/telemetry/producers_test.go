// End-to-end producer instrumentation test: enable telemetry in every
// instrumented package, run a small workload through each, and verify
// the series arrive in one registry and survive a scrape round-trip.
// Lives in the external test package so it can import the producers
// (they import telemetry).
package telemetry_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"perfeng/internal/cluster"
	"perfeng/internal/gpu"
	"perfeng/internal/machine"
	"perfeng/internal/metrics"
	"perfeng/internal/queuing"
	"perfeng/internal/simulator"
	"perfeng/internal/telemetry"
)

// enableAll points every producer at reg and restores the disabled
// state when the test finishes, so package-global telemetry does not
// leak into other tests.
func enableAll(t *testing.T, reg *telemetry.Registry) {
	t.Helper()
	metrics.EnableTelemetry(reg)
	gpu.EnableTelemetry(reg)
	cluster.EnableTelemetry(reg)
	simulator.EnableTelemetry(reg)
	queuing.EnableTelemetry(reg)
	t.Cleanup(func() {
		metrics.EnableTelemetry(nil)
		gpu.EnableTelemetry(nil)
		cluster.EnableTelemetry(nil)
		simulator.EnableTelemetry(nil)
		queuing.EnableTelemetry(nil)
	})
}

func TestProducersPublishToOneRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	enableAll(t, reg)

	// metrics.Runner: one quick measurement.
	runner := metrics.NewRunner(metrics.QuickConfig())
	runner.Measure("tel-test", 1, 1, func() { time.Sleep(10 * time.Microsecond) })

	// gpu.Device: one named launch.
	dev, err := gpu.NewDevice(machine.DAS5TitanX())
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, 64)
	if err := dev.LaunchNamed("teltest", gpu.Dim3{X: 2, Y: 1, Z: 1}, gpu.Dim3{X: 32, Y: 1, Z: 1}, 0,
		func(b, th gpu.Dim3, _ []float64) { sum[b.X*32+th.X]++ }); err != nil {
		t.Fatal(err)
	}

	// cluster.Tracer: a send/recv pair plus wait-state analysis.
	tr := cluster.NewTracer(2)
	base := tr.Epoch()
	tr.RecordEvent(0, cluster.Event{Kind: cluster.EvSend, Peer: 1, Bytes: 1024,
		Start: base.Add(2 * time.Millisecond), End: base.Add(3 * time.Millisecond)})
	tr.RecordEvent(1, cluster.Event{Kind: cluster.EvRecv, Peer: 0, Bytes: 1024,
		Start: base, End: base.Add(3 * time.Millisecond)})
	tr.AnalyzeWaitStates()

	// simulator: a short access stream, published at a safe point.
	c1, err := simulator.NewCache("L1", 64, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := simulator.NewHierarchy(c1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		hier.Load(uint64(i*8), 8)
	}
	hier.PublishTelemetry()

	// queuing: one small M/M/1 run.
	if _, err := queuing.Simulate(queuing.Exponential(1), queuing.Exponential(2), 1, 200, 10, 1); err != nil {
		t.Fatal(err)
	}

	byName := map[string]telemetry.FamilySnapshot{}
	for _, f := range reg.Snapshot() {
		byName[f.Name] = f
	}
	counterVal := func(name string) uint64 {
		f, ok := byName[name]
		if !ok || len(f.Series) == 0 {
			t.Fatalf("family %s missing from registry (have %d families)", name, len(byName))
		}
		var total uint64
		for _, s := range f.Series {
			total += uint64(s.Value)
		}
		return total
	}

	if got := counterVal("perfeng_runner_measurements"); got != 1 {
		t.Errorf("runner measurements = %d, want 1", got)
	}
	if counterVal("perfeng_runner_samples") == 0 {
		t.Error("runner published no samples")
	}
	if got := counterVal("perfeng_gpu_launches"); got != 1 {
		t.Errorf("gpu launches = %d, want 1", got)
	}
	if got := counterVal("perfeng_gpu_blocks"); got != 2 {
		t.Errorf("gpu blocks = %d, want 2", got)
	}
	occ := byName["perfeng_gpu_occupancy_fraction"]
	if len(occ.Series) != 1 || occ.Series[0].Value <= 0 || occ.Series[0].Value > 1 {
		t.Errorf("gpu occupancy gauge: %+v", occ.Series)
	}
	if got := counterVal("perfeng_cluster_events"); got != 2 {
		t.Errorf("cluster events = %d, want 2", got)
	}
	if got := counterVal("perfeng_cluster_bytes_sent"); got != 1024 {
		t.Errorf("cluster bytes sent = %d, want 1024", got)
	}
	if got := counterVal("perfeng_cluster_bytes_recv"); got != 1024 {
		t.Errorf("cluster bytes recv = %d, want 1024", got)
	}
	// Rank 1's recv started 2ms before the send: late-sender time shows up.
	if ls := byName["perfeng_cluster_late_sender_seconds"]; len(ls.Series) == 0 || ls.Series[0].Value <= 0 {
		t.Errorf("late-sender gauge not refreshed: %+v", ls.Series)
	}
	if got := counterVal("perfeng_simcache_accesses"); got != 1000 {
		t.Errorf("simcache accesses = %d, want 1000", got)
	}
	if counterVal("perfeng_simcache_hits") == 0 || counterVal("perfeng_simcache_misses") == 0 {
		t.Error("simcache published no hits or no misses")
	}
	if got := counterVal("perfeng_queuing_runs"); got != 1 {
		t.Errorf("queuing runs = %d, want 1", got)
	}
	if got := counterVal("perfeng_queuing_customers"); got != 200 {
		t.Errorf("queuing customers = %d, want 200", got)
	}

	// The combined registry must still render and parse as OpenMetrics.
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ParseOpenMetrics(&buf); err != nil {
		t.Fatalf("combined exposition does not parse: %v", err)
	}
}

// TestSimulatorPublishDeltas verifies repeated publication forwards
// deltas, not cumulative totals, and survives a Reset.
func TestSimulatorPublishDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	simulator.EnableTelemetry(reg)
	t.Cleanup(func() { simulator.EnableTelemetry(nil) })

	c1, err := simulator.NewCache("L1", 64, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := simulator.NewHierarchy(c1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		hier.Load(uint64(i*64), 8)
	}
	hier.PublishTelemetry()
	hier.PublishTelemetry() // no new activity: must not double-count
	for i := 0; i < 50; i++ {
		hier.Load(uint64(i*64), 8)
	}
	hier.PublishTelemetry()
	hier.Reset()
	for i := 0; i < 25; i++ {
		hier.Load(uint64(i*64), 8)
	}
	hier.PublishTelemetry() // post-Reset stats are smaller: fresh start, no wrap

	var accesses uint64
	for _, f := range reg.Snapshot() {
		if f.Name == "perfeng_simcache_accesses" {
			accesses = uint64(f.Series[0].Value)
		}
	}
	if accesses != 175 {
		t.Fatalf("published accesses = %d, want 175 (100+50+25)", accesses)
	}
}

// TestProducersDisabledAreSilent runs the cheapest workload with
// telemetry off and checks nothing registers anywhere.
func TestProducersDisabledAreSilent(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Not enabled: producers must not touch any registry.
	runner := metrics.NewRunner(metrics.QuickConfig())
	runner.Measure("silent", 1, 1, func() {})
	if _, err := queuing.Simulate(queuing.Exponential(1), queuing.Exponential(2), 1, 10, 0, 1); err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); len(snap) != 0 {
		t.Fatalf("disabled producers registered %d families", len(snap))
	}
}

// BenchmarkProducerOverhead measures a real producer end-to-end with
// telemetry off and on — the enabled-vs-disabled delta EXPERIMENTS.md
// reports. The queuing simulator publishes once per run (a counter add
// and two gauge sets after ~1 ms of simulation), so the instrumented
// path should be indistinguishable from the plain one.
func BenchmarkProducerOverhead(b *testing.B) {
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queuing.Simulate(queuing.Exponential(2), queuing.Exponential(3),
				1, 2000, 200, 42); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("queuing-disabled", run)
	b.Run("queuing-enabled", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		queuing.EnableTelemetry(reg)
		defer queuing.EnableTelemetry(nil)
		run(b)
	})
}

func TestExpositionContainsProducerHelp(t *testing.T) {
	reg := telemetry.NewRegistry()
	cluster.EnableTelemetry(reg)
	t.Cleanup(func() { cluster.EnableTelemetry(nil) })
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP perfeng_cluster_events Traced communication events by kind.") {
		t.Fatalf("producer HELP text missing:\n%s", buf.String())
	}
}
