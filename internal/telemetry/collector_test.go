package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCollectorSampleOnce(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, time.Second)
	c.SampleOnce()
	snap := reg.Snapshot()
	byName := map[string]FamilySnapshot{}
	for _, f := range snap {
		byName[f.Name] = f
	}
	g, ok := byName["go_sched_goroutines"]
	if !ok {
		t.Fatal("goroutine gauge missing after sample")
	}
	if g.Series[0].Value < 1 {
		t.Fatalf("goroutines = %v, want >= 1", g.Series[0].Value)
	}
	if _, ok := byName["go_gc_heap_allocs_bytes"]; !ok {
		t.Fatal("heap alloc gauge missing")
	}
	if byName["perfeng_collector_ticks"].Series[0].Value != 1 {
		t.Fatal("tick counter did not advance")
	}
}

// testSink records samples for the obs-bridge contract.
type testSink struct {
	mu      sync.Mutex
	samples map[string][]float64
}

func (s *testSink) CounterSample(name string, v float64) {
	s.mu.Lock()
	s.samples[name] = append(s.samples[name], v)
	s.mu.Unlock()
}

func TestCollectorBridgesToSink(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, time.Second)
	sink := &testSink{samples: map[string][]float64{}}
	c.SetSink(sink)
	c.SampleOnce()
	c.SampleOnce()
	sink.mu.Lock()
	defer sink.mu.Unlock()
	got := sink.samples["go_sched_goroutines"]
	if len(got) != 2 {
		t.Fatalf("sink received %d goroutine samples, want 2", len(got))
	}
	if len(sink.samples["go_gc_pause_total_seconds"]) != 2 {
		t.Fatal("memstats-derived series did not reach the sink")
	}
}

func TestCollectorStartStop(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 10*time.Millisecond)
	ticks := reg.Counter("perfeng_collector_ticks", "Collector sampling ticks.")
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	if got := ticks.Value(); got < 3 {
		t.Fatalf("collector ticked %d times in 2s at 10ms interval", got)
	}
	after := ticks.Value()
	time.Sleep(30 * time.Millisecond)
	if ticks.Value() != after {
		t.Fatal("collector still ticking after Stop")
	}
	// Stop is idempotent and Start may be called again.
	c.Stop()
	c.Start()
	c.Stop()
}
