package telemetry

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestQuantileSingleBucket: all observations inside one bucket — the
// estimate must stay within the bucket's bounds and hit them at the
// extremes (q=0 → lower, q=1 → upper, Percentile rank convention).
func TestQuantileSingleBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_single", "t", -4, 4)
	// Bucket (2^1, 2^2] = (2, 4].
	for i := 0; i < 100; i++ {
		h.Observe(3.0)
	}
	if got := h.Quantile(0); got != 2 {
		t.Fatalf("q=0: got %v, want lower bound 2", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("q=1: got %v, want upper bound 4", got)
	}
	if got := h.Quantile(0.5); got <= 2 || got >= 4 {
		t.Fatalf("q=0.5: got %v, want inside (2, 4)", got)
	}
}

// TestQuantileAcrossBuckets: a known split across two buckets must put
// low quantiles in the low bucket and high quantiles in the high one,
// monotonically.
func TestQuantileAcrossBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_split", "t", -4, 8)
	// 90 observations in (1, 2], 10 in (64, 128].
	for i := 0; i < 90; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100.0)
	}
	if got := h.Quantile(0.5); got > 2 {
		t.Fatalf("p50 = %v, want <= 2 (low bucket)", got)
	}
	if got := h.Quantile(0.99); got <= 64 || got > 128 {
		t.Fatalf("p99 = %v, want in (64, 128]", got)
	}
	prev := math.Inf(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v gives %v < %v", q, v, prev)
		}
		prev = v
	}
}

// TestQuantileEdgeCases: empty and nil histograms are NaN; a single
// observation lands mid-bucket; the +Inf bucket clamps to the last
// finite bound.
func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_edge", "t", -2, 2)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should give NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil histogram should give NaN")
	}
	if nilH.Count() != 0 {
		t.Fatal("nil histogram count should be 0")
	}
	h.Observe(1.5) // bucket (1, 2]
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("single observation: got %v, want mid-bucket 1.5", got)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	h2 := reg.Histogram("q_inf", "t", -2, 2)
	h2.Observe(1e9) // +Inf bucket
	if got := h2.Quantile(0.99); got != 4 {
		t.Fatalf("+Inf bucket: got %v, want last finite bound 4", got)
	}
}

// TestExemplar: the histogram retains the exemplar of its maximum
// observation, replaces it only for larger values, and the fast path
// stays allocation-free.
func TestExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ex_hist", "t", -30, 4)
	if _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram should have no exemplar")
	}
	h.ObserveExemplar(0.010, Exemplar{Value: 0.010, Track: "host", Name: "fast", Dur: 10 * time.Millisecond})
	h.ObserveExemplar(0.050, Exemplar{Value: 0.050, Track: "host", Name: "slow", Dur: 50 * time.Millisecond})
	h.ObserveExemplar(0.020, Exemplar{Value: 0.020, Track: "host", Name: "mid", Dur: 20 * time.Millisecond})
	ex, ok := h.Exemplar()
	if !ok || ex.Name != "slow" || ex.Value != 0.050 {
		t.Fatalf("exemplar = %+v (ok=%v), want the 50ms 'slow' span", ex, ok)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3 (ObserveExemplar must also observe)", h.Count())
	}

	var nilH *Histogram
	nilH.ObserveExemplar(1, Exemplar{}) // must not panic
	if _, ok := nilH.Exemplar(); ok {
		t.Fatal("nil histogram cannot hold an exemplar")
	}

	// Steady state (not a new max) must not allocate.
	ex2 := Exemplar{Value: 0.001, Track: "bench", Name: "op", Dur: time.Millisecond}
	if a := testing.AllocsPerRun(1000, func() { h.ObserveExemplar(0.001, ex2) }); a != 0 {
		t.Fatalf("ObserveExemplar fast path allocates: %v allocs/op", a)
	}
}

// TestFindLookups: Find* return existing series without creating them,
// and nil on missing names, kind mismatches or label mismatches.
func TestFindLookups(t *testing.T) {
	reg := NewRegistry()
	if reg.FindHistogram("nope") != nil || reg.FindGauge("nope") != nil {
		t.Fatal("lookups on an empty registry must be nil")
	}
	h := reg.Histogram("find_h", "t", -4, 4)
	g := reg.Gauge("find_g", "t")
	reg.Counter("find_c", "t")
	if got := reg.FindHistogram("find_h"); got != h {
		t.Fatal("FindHistogram did not return the registered series")
	}
	if got := reg.FindGauge("find_g"); got != g {
		t.Fatal("FindGauge did not return the registered series")
	}
	if reg.FindHistogram("find_g") != nil || reg.FindGauge("find_c") != nil {
		t.Fatal("kind mismatches must return nil")
	}
	hf := reg.HistogramFamily("find_hf", "t", -4, 4, "k")
	if reg.FindHistogram("find_hf", "v") != nil {
		t.Fatal("uninstantiated labeled series must return nil")
	}
	want := hf.With("v")
	if got := reg.FindHistogram("find_hf", "v"); got != want {
		t.Fatal("labeled lookup did not return the instantiated series")
	}
	if reg.FindHistogram("find_hf") != nil {
		t.Fatal("label-arity mismatch must return nil")
	}
	var nilReg *Registry
	if nilReg.FindHistogram("x") != nil || nilReg.FindGauge("x") != nil {
		t.Fatal("nil registry lookups must be nil")
	}
}

type recordingSink struct{ names []string }

func (r *recordingSink) CounterSample(name string, v float64) { r.names = append(r.names, name) }

// TestTeeSink: every non-nil member receives every sample.
func TestTeeSink(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	tee := TeeSink(a, nil, b)
	tee.CounterSample("x", 1)
	tee.CounterSample("y", 2)
	if len(a.names) != 2 || len(b.names) != 2 || a.names[0] != "x" || b.names[1] != "y" {
		t.Fatalf("tee did not fan out: a=%v b=%v", a.names, b.names)
	}
}

// TestCollectorDerivedGauges: the steal-failure ratio and GC pause burn
// gauges derive from interval deltas — zero on the first pass, and the
// steal ratio reflects counter movement between passes.
func TestCollectorDerivedGauges(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, time.Second)
	c.SampleOnce()
	if v := reg.FindGauge("perfeng_sched_steal_failure_ratio").Value(); v != 0 {
		t.Fatalf("first pass steal ratio = %v, want 0", v)
	}
	if v := reg.FindGauge("go_gc_pause_burn_ratio").Value(); v != 0 {
		t.Fatalf("first pass gc burn = %v, want 0", v)
	}
	// Move the sched counters: 3 fails out of 4 attempts this interval.
	reg.Counter("perfeng_sched_steals", "t").Add(1)
	reg.Counter("perfeng_sched_steal_failures", "t").Add(3)
	c.SampleOnce()
	if v := reg.FindGauge("perfeng_sched_steal_failure_ratio").Value(); v != 0.75 {
		t.Fatalf("steal ratio = %v, want 0.75", v)
	}
	if v := reg.FindGauge("go_gc_pause_burn_ratio").Value(); v < 0 || v > 1 {
		t.Fatalf("gc burn ratio = %v, want within [0, 1]", v)
	}
	// No movement: ratio falls back to zero.
	c.SampleOnce()
	if v := reg.FindGauge("perfeng_sched_steal_failure_ratio").Value(); v != 0 {
		t.Fatalf("idle interval steal ratio = %v, want 0", v)
	}
}

// TestServerHandleFunc: extra routes registered before Handler() serve
// alongside the built-ins.
func TestServerHandleFunc(t *testing.T) {
	reg := NewRegistry()
	srv := NewServer("127.0.0.1:0", reg, nil)
	srv.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "flight-dump")
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "flight-dump" {
		t.Fatalf("/debug/flight: %d %q", resp.StatusCode, body)
	}
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("built-in route broken after HandleFunc: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
}
