package telemetry

import (
	"fmt"
	"io"
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests", "Requests handled.")
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same name returns the same underlying series.
	c2 := reg.Counter("requests", "Requests handled.")
	c2.Inc()
	if got := c.Value(); got != 43 {
		t.Fatalf("re-lookup counter = %d, want 43", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth", "Queue depth.")
	g.Set(4.5)
	g.Add(-1.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	// Buckets: 2^-2=0.25, 0.5, 1, 2, 4, +Inf.
	h := reg.Histogram("latency", "Op latency.", -2, 2)
	for _, v := range []float64{0.1, 0.25, 0.3, 1.0, 3.0, 100.0, -5.0, 0} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	if count != 8 {
		t.Fatalf("count = %d, want 8", count)
	}
	wantSum := 0.1 + 0.25 + 0.3 + 1.0 + 3.0 + 100.0 + -5.0 + 0
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
	// ≤0.25: 0.1, 0.25, -5, 0 → 4. ≤0.5: +0.3 → 5. ≤1: +1.0 → 6.
	// ≤2: 6. ≤4: +3.0 → 7. +Inf: +100 → 8.
	want := []uint64{4, 5, 6, 6, 7, 8}
	if len(cum) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(cum), len(want))
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	// Cumulativity: le-bucket counts must be monotone, last == count.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("buckets not monotone at %d: %v", i, cum)
		}
	}
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf bucket %d != count %d", cum[len(cum)-1], count)
	}
}

func TestHistogramBucketIndexEdges(t *testing.T) {
	h := newHistogram(-2, 2)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {-1, 0}, {math.SmallestNonzeroFloat64, 0},
		{0.25, 0},        // exactly the first bound: inclusive
		{0.2500001, 1},   // just above
		{4, 4},           // exactly the last finite bound
		{4.0001, 5},      // overflow
		{math.Inf(1), 5}, // +Inf lands in the +Inf bucket
		{math.MaxFloat64, 5},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	reg := NewRegistry()
	cf := reg.CounterFamily("events", "Events by kind.", "kind")
	cf.With("send").Add(3)
	cf.With("recv").Add(5)
	cf.With("send").Inc()
	if got := cf.With("send").Value(); got != 4 {
		t.Fatalf("send = %d, want 4", got)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 2 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	// Series sorted by label values: recv before send.
	if snap[0].Series[0].LabelValues[0] != "recv" || snap[0].Series[1].LabelValues[0] != "send" {
		t.Fatalf("series order: %+v", snap[0].Series)
	}
}

func TestWithArityPanics(t *testing.T) {
	reg := NewRegistry()
	cf := reg.CounterFamily("events", "", "kind")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	cf.With("a", "b")
}

func TestConflictingRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestNilRegistryNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a", "")
	g := reg.Gauge("b", "")
	h := reg.Histogram("c", "", -10, 10)
	cf := reg.CounterFamily("d", "", "k")
	gf := reg.GaugeFamily("e", "", "k")
	hf := reg.HistogramFamily("f", "", -10, 10, "k")
	// Every call below must be a safe no-op.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cf.With("v").Inc()
	gf.With("v").Set(2)
	hf.With("v").Observe(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if snap := reg.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
	if err := reg.WriteOpenMetrics(io.Discard); err != nil {
		t.Fatalf("nil registry exposition: %v", err)
	}
}

// TestHotPathAllocs enforces the 0 allocs/op contract of the hot path —
// the property that lets producers instrument unconditionally.
func TestHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", -30, 4)
	lc := reg.CounterFamily("lc", "", "k").With("v")
	for name, f := range map[string]func(){
		"counter-inc":       func() { c.Inc() },
		"counter-add":       func() { c.Add(3) },
		"gauge-set":         func() { g.Set(1.5) },
		"gauge-add":         func() { g.Add(0.5) },
		"histogram-observe": func() { h.Observe(1.25e-6) },
		"labeled-inc":       func() { lc.Inc() },
		"nil-counter-inc":   func() { (*Counter)(nil).Inc() },
	} {
		if allocs := testing.AllocsPerRun(1000, f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestConcurrentWritersAndScraper is the race-detector exercise: many
// writers on every metric type while a reader scrapes the exposition.
// Run under -race (CI does); the final totals also verify no lost
// updates across shards.
func TestConcurrentWritersAndScraper(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits", "")
	g := reg.Gauge("level", "")
	h := reg.Histogram("lat", "", -30, 4)
	cf := reg.CounterFamily("by_kind", "", "kind")
	kinds := []string{"a", "b", "c", "d"}
	for _, k := range kinds {
		cf.With(k) // pre-create so writers only touch the hot path
	}

	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	var readerWG, writerWG sync.WaitGroup
	readerWG.Add(1)
	go func() { // the scraping reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reg.WriteOpenMetrics(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			reg.Snapshot()
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			k := cf.With(kinds[w%len(kinds)])
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) * 1e-6)
				k.Inc()
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("lost updates: counter = %d, want %d", got, writers*perWriter)
	}
	_, _, count := h.snapshot()
	if count != writers*perWriter {
		t.Fatalf("lost observations: %d, want %d", count, writers*perWriter)
	}
	var byKind uint64
	for _, k := range kinds {
		byKind += cf.With(k).Value()
	}
	if byKind != writers*perWriter {
		t.Fatalf("labeled total = %d, want %d", byKind, writers*perWriter)
	}
}

func TestValidateNameRejects(t *testing.T) {
	for _, bad := range []string{"", "1abc", "has space", "dash-ed", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			validateName(bad)
		}()
	}
	for _, good := range []string{"a", "perfeng_x_total", "A9_:z"} {
		validateName(good)
	}
}

func TestShardedCounterDistribution(t *testing.T) {
	// Not a correctness requirement — documents that Value sums every
	// stripe regardless of which stripe writers landed on.
	reg := NewRegistry()
	c := reg.Counter("striped", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("striped sum = %d, want 16000", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var reg *Registry
	c := reg.Counter("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench", "", -30, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.25e-6)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var reg *Registry
	h := reg.Histogram("bench", "", -30, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.25e-6)
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func ExampleRegistry() {
	reg := NewRegistry()
	reqs := reg.CounterFamily("myapp_requests", "Requests by route.", "route")
	reqs.With("/api").Add(2)
	reg.Gauge("myapp_queue_depth", "Jobs waiting.").Set(3)
	for _, f := range reg.Snapshot() {
		fmt.Println(f.Name, f.Kind)
	}
	// Output:
	// myapp_requests counter
	// myapp_queue_depth gauge
}
