package telemetry

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeTrace implements TraceSource with canned payloads.
type fakeTrace struct{ chrome, folded string }

func (f *fakeTrace) WriteChromeTrace(w io.Writer) error {
	_, err := io.WriteString(w, f.chrome)
	return err
}
func (f *fakeTrace) WriteFolded(w io.Writer) error {
	_, err := io.WriteString(w, f.folded)
	return err
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("perfeng_ops", "ops").Add(5)
	trace := &fakeTrace{chrome: `{"traceEvents":[]}`, folded: "main;work 12\n"}
	srv := NewServer(":0", reg, func() TraceSource { return trace })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, hdr := get(t, ts, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body, hdr = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "perfeng_ops_total 5") || !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	// The scrape must parse as valid OpenMetrics.
	if _, err := ParseOpenMetrics(strings.NewReader(body)); err != nil {
		t.Fatalf("scrape does not round-trip: %v", err)
	}

	code, body, hdr = get(t, ts, "/trace.json")
	if code != http.StatusOK || body != trace.chrome {
		t.Fatalf("/trace.json: %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/trace.json content type %q", ct)
	}

	code, body, _ = get(t, ts, "/profile.folded")
	if code != http.StatusOK || body != trace.folded {
		t.Fatalf("/profile.folded: %d %q", code, body)
	}

	code, body, _ = get(t, ts, "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}

	code, body, _ = get(t, ts, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}

	code, _, _ = get(t, ts, "/nope")
	if code != http.StatusNotFound {
		t.Fatalf("/nope: %d, want 404", code)
	}
}

func TestServerWithoutTraceSource(t *testing.T) {
	srv := NewServer(":0", NewRegistry(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/trace.json", "/profile.folded"} {
		code, _, _ := get(t, ts, path)
		if code != http.StatusNotFound {
			t.Fatalf("%s without source: %d, want 404", path, code)
		}
	}
}

func TestServerStartStop(t *testing.T) {
	reg := NewRegistry()
	srv := NewServer("127.0.0.1:0", reg, nil)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live server /healthz: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	// After shutdown the port no longer answers.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after Stop")
	} else if !errors.Is(err, context.DeadlineExceeded) && err == nil {
		t.Fatal("unexpected nil error")
	}
}
