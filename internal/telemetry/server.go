// The embedded monitoring endpoint: one HTTP server exposing the
// registry (OpenMetrics), liveness, the stdlib pprof handlers, and —
// when a trace source is attached — the current obs session rendered on
// demand as Chrome-trace JSON and folded stacks. This is what `perfeng
// serve` binds: scrape /metrics with Prometheus, browse
// /debug/pprof/ with go tool pprof, drag /trace.json into Perfetto,
// feed /profile.folded to a flamegraph, all while the workload runs.
package telemetry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// TraceSource renders a live trace timeline. *obs.Session satisfies
// it; Server calls the provider on every request so a rolling workload
// loop can swap sessions between scrapes.
type TraceSource interface {
	WriteChromeTrace(w io.Writer) error
	WriteFolded(w io.Writer) error
}

// Server is the monitoring endpoint.
type Server struct {
	reg   *Registry
	trace func() TraceSource // may be nil, or return nil
	extra map[string]http.HandlerFunc
	http  *http.Server
	ln    net.Listener
}

// NewServer builds a server for the registry. trace supplies the
// current session for /trace.json and /profile.folded; pass nil when
// there is no timeline to expose (both endpoints then answer 404).
func NewServer(addr string, reg *Registry, trace func() TraceSource) *Server {
	s := &Server{reg: reg, trace: trace}
	s.http = &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// HandleFunc registers an extra route served alongside the built-in
// endpoints — how the flight recorder's /debug/flight dump attaches
// without this package importing it. Register before Start/Handler;
// built-in patterns cannot be overridden.
func (s *Server) HandleFunc(pattern string, fn http.HandlerFunc) {
	if s.extra == nil {
		s.extra = make(map[string]http.HandlerFunc)
	}
	s.extra[pattern] = fn
	s.http.Handler = s.Handler()
}

// Handler returns the endpoint's routing table — also the unit-test
// surface (httptest.NewServer(srv.Handler())).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for pattern, fn := range s.extra {
		mux.HandleFunc(pattern, fn)
	}
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/profile.folded", s.handleFolded)
	// The stdlib pprof handlers register on DefaultServeMux; on a
	// private mux they must be wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Render to memory first so an error can still become a clean 500
	// (nothing of the body has reached the client yet).
	var buf bytes.Buffer
	if err := s.reg.WriteOpenMetrics(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) currentTrace() TraceSource {
	if s.trace == nil {
		return nil
	}
	return s.trace()
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	src := s.currentTrace()
	if src == nil {
		http.Error(w, "no trace session attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	if err := src.WriteChromeTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleFolded(w http.ResponseWriter, _ *http.Request) {
	src := s.currentTrace()
	if src == nil {
		http.Error(w, "no trace session attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := src.WriteFolded(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `perfeng monitoring endpoint

  /metrics         OpenMetrics exposition (scrape me)
  /healthz         liveness probe
  /trace.json      current session, Chrome Trace Event JSON (Perfetto)
  /profile.folded  current session, folded stacks (flamegraph.pl)
  /debug/pprof/    Go pprof profiles
`)
}

// Start binds the listener and serves in the background. It returns the
// bound address (useful with ":0") after the listener is live, so a
// caller can print or scrape it immediately.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve errors after Shutdown are expected; anything else
			// surfaces on Stop via the closed listener.
			_ = err
		}
	}()
	return ln.Addr().String(), nil
}

// Stop gracefully shuts the server down, waiting up to the context's
// deadline for in-flight scrapes.
func (s *Server) Stop(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}
