// OpenMetrics text exposition (the format Prometheus scrapes) and a
// parser for it. The writer renders a Registry snapshot; the parser
// exists so tests can round-trip the exposition back into snapshots and
// so scrape consumers in-process (the serve smoke test, courseware)
// need no external dependency.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteOpenMetrics renders the registry in OpenMetrics text format:
// HELP/TYPE metadata per family, one sample line per series (counters
// take the _total suffix, histograms expand to cumulative _bucket lines
// with le labels plus _sum and _count), closed by the mandatory # EOF.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			switch f.Kind {
			case KindCounter:
				writeSample(bw, f.Name+"_total", f.LabelNames, s.LabelValues, "", "", s.Value)
			case KindGauge:
				writeSample(bw, f.Name, f.LabelNames, s.LabelValues, "", "", s.Value)
			case KindHistogram:
				for _, b := range s.Buckets {
					writeSample(bw, f.Name+"_bucket", f.LabelNames, s.LabelValues,
						"le", formatLe(b.UpperBound), float64(b.CumulativeCount))
				}
				writeSample(bw, f.Name+"_sum", f.LabelNames, s.LabelValues, "", "", s.Sum)
				writeSample(bw, f.Name+"_count", f.LabelNames, s.LabelValues, "", "", float64(s.Count))
			}
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// writeSample renders one sample line; extraName/extraValue append a
// synthetic label (le) after the series labels.
func writeSample(w io.Writer, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	io.WriteString(w, name)
	if len(labelNames) > 0 || extraName != "" {
		io.WriteString(w, "{")
		for i, ln := range labelNames {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, ln, escapeLabel(labelValues[i]))
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, extraName, extraValue)
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatValue(v))
	io.WriteString(w, "\n")
}

// escapeLabel escapes a label value per the exposition format: the
// three characters the format defines (backslash, double quote,
// newline), nothing else — the parser's label scan is the exact
// inverse.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// escapeHelp escapes HELP text (backslash and newline).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var sb strings.Builder
	sb.Grow(len(h) + 2)
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(h[i])
		}
	}
	return sb.String()
}

// formatLe renders a histogram bound: +Inf spelled the conventional
// way, finite bounds in shortest round-trip form.
func formatLe(ub float64) string {
	if math.IsInf(ub, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseOpenMetrics parses text exposition back into family snapshots:
// the inverse of WriteOpenMetrics over the subset of OpenMetrics the
// writer emits (counter/gauge/histogram, no exemplars or timestamps).
// Families come back in exposition order with cumulative buckets; use
// it to verify a scrape end-to-end.
func ParseOpenMetrics(r io.Reader) ([]FamilySnapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		byName = map[string]*FamilySnapshot{}
		order  []string
		sawEOF bool
		lineNo int
	)
	fam := func(name string) *FamilySnapshot {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &FamilySnapshot{Name: name}
		byName[name] = f
		order = append(order, name)
		return f
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("telemetry: line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			switch {
			case len(fields) >= 2 && fields[1] == "EOF":
				sawEOF = true
			case len(fields) >= 4 && fields[1] == "HELP":
				fam(fields[2]).Help = unescapeHelp(fields[3])
			case len(fields) >= 4 && fields[1] == "TYPE":
				f := fam(fields[2])
				switch fields[3] {
				case "counter":
					f.Kind = KindCounter
				case "gauge":
					f.Kind = KindGauge
				case "histogram":
					f.Kind = KindHistogram
				default:
					return nil, fmt.Errorf("telemetry: line %d: unknown type %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		base, suffix := splitSuffix(name, byName)
		f, ok := byName[base]
		if !ok {
			return nil, fmt.Errorf("telemetry: line %d: sample %q before its TYPE line", lineNo, name)
		}
		var le string
		kept := labels[:0]
		for _, l := range labels {
			if f.Kind == KindHistogram && l.name == "le" {
				le = l.value
				continue
			}
			kept = append(kept, l)
		}
		labels = kept
		if len(f.Series) == 0 && len(labels) > 0 {
			for _, l := range labels {
				f.LabelNames = append(f.LabelNames, l.name)
			}
		}
		s := seriesFor(f, labels)
		switch suffix {
		case "":
			s.Value = value
		case "_total":
			s.Value = value
		case "_sum":
			s.Sum = value
		case "_count":
			s.Count = uint64(value)
		case "_bucket":
			ub := math.Inf(1)
			if le != "+Inf" {
				ub, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("telemetry: line %d: bad le %q", lineNo, le)
				}
			}
			s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, CumulativeCount: uint64(value)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("telemetry: exposition not terminated by # EOF")
	}
	out := make([]FamilySnapshot, 0, len(order))
	for _, n := range order {
		f := byName[n]
		series := f.Series
		for i := range series {
			buckets := series[i].Buckets
			sort.Slice(buckets, func(a, b int) bool {
				return buckets[a].UpperBound < buckets[b].UpperBound
			})
		}
		out = append(out, *f)
	}
	return out, nil
}

// sampleSuffixes are the OpenMetrics sample-name suffixes, hoisted so
// splitSuffix (called per sample line) does not rebuild the table.
var sampleSuffixes = [...]string{"_bucket", "_sum", "_count", "_total"}

// splitSuffix maps a sample name back to its family: histogram series
// sample names carry _bucket/_sum/_count, counters _total. The family
// is whichever declared (TYPE'd) name the sample name extends.
func splitSuffix(name string, byName map[string]*FamilySnapshot) (base, suffix string) {
	for _, suf := range sampleSuffixes {
		if b, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := byName[b]; declared {
				return b, suf
			}
		}
	}
	return name, ""
}

type labelPair struct{ name, value string }

// parseSample parses `name{l="v",...} value`.
func parseSample(line string) (name string, labels []labelPair, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			ln := rest[:eq]
			rest = rest[eq+2:]
			var sb strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' && i+1 < len(rest) {
					i++
					switch rest[i] {
					case 'n':
						sb.WriteByte('\n')
					default:
						sb.WriteByte(rest[i])
					}
					continue
				}
				if c == '"' {
					rest = rest[i+1:]
					closed = true
					break
				}
				sb.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, labelPair{name: ln, value: sb.String()})
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = strings.TrimPrefix(rest, "}")
	}
	rest = strings.TrimSpace(rest)
	// Ignore a trailing timestamp if one ever appears.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	switch rest {
	case "+Inf":
		value = math.Inf(1)
	case "-Inf":
		value = math.Inf(-1)
	default:
		value, err = strconv.ParseFloat(rest, 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("bad value in %q: %v", line, err)
		}
	}
	return name, labels, value, nil
}

// seriesFor finds or creates the series with the label values.
func seriesFor(f *FamilySnapshot, labels []labelPair) *SeriesSnapshot {
	values := make([]string, len(labels))
	for i, l := range labels {
		values[i] = l.value
	}
	for i := range f.Series {
		if equalStrings(f.Series[i].LabelValues, values) {
			return &f.Series[i]
		}
	}
	f.Series = append(f.Series, SeriesSnapshot{LabelValues: values})
	return &f.Series[len(f.Series)-1]
}

// unescapeHelp is the single-pass inverse of escapeHelp (sequential
// ReplaceAll would mis-decode a literal backslash followed by n).
func unescapeHelp(h string) string {
	if !strings.Contains(h, `\`) {
		return h
	}
	var sb strings.Builder
	sb.Grow(len(h))
	for i := 0; i < len(h); i++ {
		if h[i] == '\\' && i+1 < len(h) {
			i++
			switch h[i] {
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(h[i])
			}
			continue
		}
		sb.WriteByte(h[i])
	}
	return sb.String()
}
