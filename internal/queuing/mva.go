package queuing

import "errors"

// Exact Mean Value Analysis for closed single-class product-form networks
// (Reiser & Lavenberg) — the closed-network counterpart of the Jackson
// analysis, covering the "fixed population of jobs cycling through
// stations" systems (interactive users against a server farm) the queuing
// lectures end on.

// MVAStation is one queueing station of the closed network.
type MVAStation struct {
	Name string
	// Demand is the service demand per visit-adjusted job pass
	// (visit ratio x service time), in seconds.
	Demand float64
	// Delay marks a pure delay (infinite-server) station, e.g. user
	// think time: jobs never queue there.
	Delay bool
}

// MVAResult is the steady state for one population size.
type MVAResult struct {
	Population int
	Throughput float64 // jobs/second through the reference point
	// ResponseTime is the total residence time across all stations.
	ResponseTime float64
	// QueueLengths holds the mean number of jobs at each station.
	QueueLengths []float64
	// Utilization holds throughput*demand per station (queueing stations
	// only; delay stations report the mean population there).
	Utilization []float64
}

// MVA runs exact mean value analysis for populations 1..n and returns the
// result for each population size.
func MVA(stations []MVAStation, n int) ([]MVAResult, error) {
	if len(stations) == 0 {
		return nil, errors.New("queuing: MVA needs at least one station")
	}
	if n < 1 {
		return nil, errors.New("queuing: MVA needs population >= 1")
	}
	for _, s := range stations {
		if s.Demand <= 0 {
			return nil, errors.New("queuing: MVA demands must be positive")
		}
	}
	k := len(stations)
	q := make([]float64, k) // queue lengths at previous population
	out := make([]MVAResult, 0, n)
	for pop := 1; pop <= n; pop++ {
		res := MVAResult{Population: pop,
			QueueLengths: make([]float64, k),
			Utilization:  make([]float64, k)}
		// Residence times with the arrival theorem: an arriving job sees
		// the queue of the network with one job fewer.
		resid := make([]float64, k)
		var total float64
		for i, s := range stations {
			if s.Delay {
				resid[i] = s.Demand
			} else {
				resid[i] = s.Demand * (1 + q[i])
			}
			total += resid[i]
		}
		res.ResponseTime = total
		res.Throughput = float64(pop) / total
		ql, util := res.QueueLengths, res.Utilization
		for i, s := range stations {
			ql[i] = res.Throughput * resid[i]
			if s.Delay {
				util[i] = ql[i]
			} else {
				util[i] = res.Throughput * s.Demand
			}
		}
		q = ql
		out = append(out, res)
	}
	return out, nil
}

// MVABottleneck returns the index of the queueing station with the largest
// demand — the station whose saturation caps closed-network throughput at
// 1/maxDemand.
func MVABottleneck(stations []MVAStation) int {
	best := -1
	for i, s := range stations {
		if s.Delay {
			continue
		}
		if best == -1 || s.Demand > stations[best].Demand {
			best = i
		}
	}
	return best
}
