package queuing

import (
	"container/heap"
	"errors"
	"math"
	"math/rand"
)

// Discrete-event simulation of a G/G/c queue, used to validate the
// analytical formulas — the empirical half of the queuing-theory topic.

// Sampler draws one random interval (inter-arrival or service time).
type Sampler func(rng *rand.Rand) float64

// Exponential returns a Sampler with the given rate.
func Exponential(rate float64) Sampler {
	return func(rng *rand.Rand) float64 { return rng.ExpFloat64() / rate }
}

// Deterministic returns a constant-interval Sampler.
func Deterministic(interval float64) Sampler {
	return func(*rand.Rand) float64 { return interval }
}

// Uniform returns a Sampler uniform on [lo, hi).
func Uniform(lo, hi float64) Sampler {
	return func(rng *rand.Rand) float64 { return lo + rng.Float64()*(hi-lo) }
}

// SimResult summarizes a simulation run.
type SimResult struct {
	Customers int
	MeanW     float64 // mean time in system
	MeanWq    float64 // mean waiting time
	MeanL     float64 // time-average number in system
	Util      float64 // time-average busy servers / servers
	// Sojourns holds each post-warm-up customer's time in system, in
	// arrival order — the empirical distribution behind MeanW, kept so
	// tail quantiles (the p99 the admission controller sizes for) can be
	// validated against the analytical SojournTail, not just the mean.
	Sojourns []float64
}

type event struct {
	at   float64
	kind int // 0 arrival, 1 departure
	id   int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Simulate runs a FIFO G/G/c queue for the given number of customers
// (after a warm-up of warmup customers excluded from statistics).
func Simulate(interarrival, service Sampler, servers, customers, warmup int, seed int64) (SimResult, error) {
	if servers < 1 || customers < 1 {
		return SimResult{}, errors.New("queuing: need servers >= 1 and customers >= 1")
	}
	if warmup < 0 {
		warmup = 0
	}
	rng := rand.New(rand.NewSource(seed))
	total := customers + warmup

	var h eventHeap
	// Pre-generate arrivals.
	t := 0.0
	arrivals := make([]float64, total)
	for i := 0; i < total; i++ {
		t += interarrival(rng)
		arrivals[i] = t
		heap.Push(&h, event{at: t, kind: 0, id: i})
	}

	busy := 0
	var queue []int // waiting customer ids
	startService := make([]float64, total)
	departure := make([]float64, total)

	// Time-average accumulators (collected over the full horizon after the
	// warm-up customer's arrival).
	var lastT, areaL, areaBusy float64
	inSystem := 0
	statsStart := arrivals[0]
	if warmup > 0 && warmup < total {
		statsStart = arrivals[warmup]
	}
	accumulate := func(now float64) {
		if now > lastT && lastT >= statsStart {
			dt := now - lastT
			areaL += dt * float64(inSystem)
			areaBusy += dt * float64(busy)
		}
		if now > lastT {
			lastT = now
		}
	}

	serve := func(id int, now float64) {
		busy++
		startService[id] = now
		dep := now + service(rng)
		departure[id] = dep
		heap.Push(&h, event{at: dep, kind: 1, id: id})
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		accumulate(ev.at)
		if ev.kind == 0 {
			inSystem++
			if busy < servers {
				serve(ev.id, ev.at)
			} else {
				queue = append(queue, ev.id)
			}
		} else {
			inSystem--
			busy--
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				serve(next, ev.at)
			}
		}
	}

	var sumW, sumWq float64
	sojourns := make([]float64, 0, customers)
	for i := warmup; i < total; i++ {
		w := departure[i] - arrivals[i]
		sumW += w
		sumWq += startService[i] - arrivals[i]
		sojourns = append(sojourns, w)
	}
	n := float64(customers)
	horizon := lastT - statsStart
	res := SimResult{
		Customers: customers,
		MeanW:     sumW / n,
		MeanWq:    sumWq / n,
		Sojourns:  sojourns,
	}
	if horizon > 0 {
		res.MeanL = areaL / horizon
		res.Util = areaBusy / horizon / float64(servers)
	}
	if math.IsNaN(res.MeanW) {
		return SimResult{}, errors.New("queuing: simulation produced NaN")
	}
	publishRun(res)
	return res, nil
}
