// Package queuing implements the queuing-theory toolbox of the course's
// "Queuing theory" topic (inspired by MIT's 15.072J): analytical results
// for M/M/1, M/M/c and M/G/1 queues, Jackson networks of M/M/c stations,
// Little's law utilities, and a discrete-event simulator used to validate
// the closed forms — the same analysis-vs-simulation cross-check students
// perform.
package queuing

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned when the offered load reaches or exceeds
// capacity (rho >= 1), where no steady state exists.
var ErrUnstable = errors.New("queuing: unstable queue (rho >= 1)")

// MM1 summarizes the steady state of an M/M/1 queue.
type MM1 struct {
	Lambda float64 // arrival rate
	Mu     float64 // service rate
	Rho    float64 // utilization
	L      float64 // mean number in system
	Lq     float64 // mean number in queue
	W      float64 // mean time in system
	Wq     float64 // mean waiting time
}

// AnalyzeMM1 returns the closed-form M/M/1 results.
func AnalyzeMM1(lambda, mu float64) (MM1, error) {
	if lambda <= 0 || mu <= 0 {
		return MM1{}, errors.New("queuing: rates must be positive")
	}
	rho := lambda / mu
	if rho >= 1 {
		return MM1{}, ErrUnstable
	}
	l := rho / (1 - rho)
	w := 1 / (mu - lambda)
	return MM1{
		Lambda: lambda, Mu: mu, Rho: rho,
		L: l, Lq: l - rho,
		W: w, Wq: w - 1/mu,
	}, nil
}

// MMC summarizes the steady state of an M/M/c queue.
type MMC struct {
	Lambda  float64
	Mu      float64
	Servers int
	Rho     float64 // per-server utilization lambda/(c*mu)
	ErlangC float64 // probability an arrival waits
	Lq      float64
	L       float64
	Wq      float64
	W       float64
}

// AnalyzeMMC returns the closed-form M/M/c results (Erlang-C).
func AnalyzeMMC(lambda, mu float64, servers int) (MMC, error) {
	if lambda <= 0 || mu <= 0 {
		return MMC{}, errors.New("queuing: rates must be positive")
	}
	if servers < 1 {
		return MMC{}, errors.New("queuing: need at least one server")
	}
	c := float64(servers)
	a := lambda / mu // offered load in Erlangs
	rho := a / c
	if rho >= 1 {
		return MMC{}, ErrUnstable
	}
	// Erlang-C via the numerically stable iterative Erlang-B recursion:
	// B(0)=1; B(k)=a*B(k-1)/(k+a*B(k-1)); C = B/(1-rho(1-B)).
	b := 1.0
	for k := 1; k <= servers; k++ {
		b = a * b / (float64(k) + a*b)
	}
	erlangC := b / (1 - rho*(1-b))
	lq := erlangC * rho / (1 - rho)
	wq := lq / lambda
	return MMC{
		Lambda: lambda, Mu: mu, Servers: servers, Rho: rho,
		ErlangC: erlangC,
		Lq:      lq, L: lq + a,
		Wq: wq, W: wq + 1/mu,
	}, nil
}

// WaitTail returns P(Wq > t), the probability an arrival waits longer
// than t before service starts. For M/M/c FCFS the waiting time is 0
// with probability 1-ErlangC and exponential with rate c*mu-lambda
// otherwise, so the tail is ErlangC * exp(-(c*mu-lambda)*t).
func (m MMC) WaitTail(t float64) float64 {
	if t <= 0 {
		return m.ErlangC
	}
	theta := float64(m.Servers)*m.Mu - m.Lambda
	return m.ErlangC * math.Exp(-theta*t)
}

// SojournTail returns P(W > t), the probability a customer's total time
// in system (wait + service) exceeds t. The sojourn is the independent
// sum of an exponential service S ~ Exp(mu) and the FCFS waiting time
// Wq (an atom at 0 with mass 1-ErlangC, exponential with rate
// theta = c*mu-lambda otherwise), so the tail is the exact convolution
//
//	P(W>t) = (1-C) e^{-mu t} + C (mu e^{-theta t} - theta e^{-mu t})/(mu-theta)
//
// with the usual (1+mu t) e^{-mu t} limit when theta == mu. This is the
// distribution admission control sizes against: exact under the M/M/c
// assumptions, an approximation (documented as such) for the measured
// service processes it is fed.
func (m MMC) SojournTail(t float64) float64 {
	if t <= 0 {
		return 1
	}
	c := m.ErlangC
	mu := m.Mu
	theta := float64(m.Servers)*mu - m.Lambda
	if math.Abs(mu-theta) < 1e-12*mu {
		return (1-c)*math.Exp(-mu*t) + c*(1+mu*t)*math.Exp(-mu*t)
	}
	conv := (mu*math.Exp(-theta*t) - theta*math.Exp(-mu*t)) / (mu - theta)
	return (1-c)*math.Exp(-mu*t) + c*conv
}

// SojournQuantile returns the p-th quantile (0 < p < 1) of the sojourn
// time, the t with P(W <= t) = p, by bisection on SojournTail. This is
// what "modeled p99 latency" means throughout internal/serviced: the
// admission controller picks the largest arrival rate whose modeled
// SojournQuantile(0.99) still sits under the latency objective.
func (m MMC) SojournQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("queuing: quantile must be in (0, 1)")
	}
	tail := 1 - p
	// Grow an upper bracket first; the tail decays exponentially, so a
	// few doublings beyond the mean always cross it.
	hi := m.W
	if hi <= 0 {
		hi = 1 / m.Mu
	}
	for i := 0; m.SojournTail(hi) > tail; i++ {
		hi *= 2
		if i > 200 {
			return 0, errors.New("queuing: sojourn quantile bracket diverged")
		}
	}
	lo := 0.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if m.SojournTail(mid) > tail {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// MG1 summarizes an M/G/1 queue via the Pollaczek-Khinchine formula.
type MG1 struct {
	Lambda      float64
	MeanService float64
	// SCV is the squared coefficient of variation of service time
	// (variance/mean^2): 1 for exponential, 0 for deterministic.
	SCV float64
	Rho float64
	Lq  float64
	L   float64
	Wq  float64
	W   float64
}

// AnalyzeMG1 returns the P-K results for general service times.
func AnalyzeMG1(lambda, meanService, scv float64) (MG1, error) {
	if lambda <= 0 || meanService <= 0 || scv < 0 {
		return MG1{}, errors.New("queuing: invalid M/G/1 parameters")
	}
	rho := lambda * meanService
	if rho >= 1 {
		return MG1{}, ErrUnstable
	}
	wq := rho * meanService * (1 + scv) / (2 * (1 - rho))
	return MG1{
		Lambda: lambda, MeanService: meanService, SCV: scv, Rho: rho,
		Wq: wq, W: wq + meanService,
		Lq: lambda * wq, L: lambda * (wq + meanService),
	}, nil
}

// LittlesLaw returns L = lambda * W.
func LittlesLaw(lambda, w float64) float64 { return lambda * w }

// Station is one node of a Jackson network.
type Station struct {
	Name    string
	Mu      float64 // service rate per server
	Servers int
}

// JacksonNetwork is an open network of M/M/c stations with Markovian
// routing.
type JacksonNetwork struct {
	Stations []Station
	// External holds exogenous arrival rates per station.
	External []float64
	// Routing[i][j] is the probability a job leaving i goes to j; the
	// remainder 1-sum(Routing[i]) leaves the network.
	Routing [][]float64
}

// StationResult is one station's steady state in the network.
type StationResult struct {
	Station Station
	Lambda  float64 // effective arrival rate from the traffic equations
	MMC
}

// Solve computes effective arrival rates from the traffic equations
// (fixed-point iteration) and analyzes each station as M/M/c; by Jackson's
// theorem the stations behave as independent M/M/c queues.
func (n *JacksonNetwork) Solve() ([]StationResult, float64, error) {
	k := len(n.Stations)
	if k == 0 {
		return nil, 0, errors.New("queuing: empty network")
	}
	if len(n.External) != k || len(n.Routing) != k {
		return nil, 0, errors.New("queuing: network shape mismatch")
	}
	for i, row := range n.Routing {
		if len(row) != k {
			return nil, 0, fmt.Errorf("queuing: routing row %d has %d entries", i, len(row))
		}
		var sum float64
		for _, p := range row {
			if p < 0 {
				return nil, 0, fmt.Errorf("queuing: negative routing probability at row %d", i)
			}
			sum += p
		}
		if sum > 1+1e-12 {
			return nil, 0, fmt.Errorf("queuing: routing row %d sums to %g > 1", i, sum)
		}
	}
	// Traffic equations: lambda_j = ext_j + sum_i lambda_i p_ij.
	lambda := append([]float64(nil), n.External...)
	routing := n.Routing
	for iter := 0; iter < 10000; iter++ {
		next := append([]float64(nil), n.External...)
		for i, li := range lambda {
			for j, p := range routing[i] {
				next[j] += li * p
			}
		}
		var maxDelta float64
		for j := range next {
			d := math.Abs(next[j] - lambda[j])
			if d > maxDelta {
				maxDelta = d
			}
		}
		lambda = next
		if maxDelta < 1e-12 {
			break
		}
	}
	out := make([]StationResult, k)
	var totalL, totalExternal float64
	for j, st := range n.Stations {
		res, err := AnalyzeMMC(lambda[j], st.Mu, st.Servers)
		if err != nil {
			return nil, 0, fmt.Errorf("queuing: station %s: %w", st.Name, err)
		}
		out[j] = StationResult{Station: st, Lambda: lambda[j], MMC: res}
		totalL += res.L
	}
	for _, e := range n.External {
		totalExternal += e
	}
	// Network response time by Little's law on the whole network.
	var totalW float64
	if totalExternal > 0 {
		totalW = totalL / totalExternal
	}
	return out, totalW, nil
}
