package queuing

import (
	"sync/atomic"

	"perfeng/internal/telemetry"
)

// Live-telemetry hooks for the discrete-event simulator. Simulate runs
// for thousands of events per call, so publication happens once at the
// end of a run; the disabled path is one atomic load.

type telHandles struct {
	runs      *telemetry.Counter
	customers *telemetry.Counter
	meanWait  *telemetry.Gauge
	util      *telemetry.Gauge
}

var tel atomic.Pointer[telHandles]

// EnableTelemetry publishes simulation activity to reg: runs and
// customers completed, plus the mean waiting time and server
// utilization of the most recent run (in simulated time units).
// Passing nil stops publication.
func EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		tel.Store(nil)
		return
	}
	tel.Store(&telHandles{
		runs: reg.Counter("perfeng_queuing_runs",
			"Discrete-event simulation runs completed."),
		customers: reg.Counter("perfeng_queuing_customers",
			"Customers served across all runs (excluding warm-up)."),
		meanWait: reg.Gauge("perfeng_queuing_mean_wait",
			"Mean waiting time of the most recent run, simulated time units."),
		util: reg.Gauge("perfeng_queuing_utilization",
			"Server utilization of the most recent run."),
	})
}

// publishRun records one completed simulation.
func publishRun(res SimResult) {
	th := tel.Load()
	if th == nil {
		return
	}
	th.runs.Inc()
	th.customers.Add(uint64(res.Customers))
	th.meanWait.Set(res.MeanWq)
	th.util.Set(res.Util)
}
