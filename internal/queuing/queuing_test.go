package queuing

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1e-12, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestAnalyzeMM1Textbook(t *testing.T) {
	// lambda=2, mu=3: rho=2/3, L=2, W=1.
	q, err := AnalyzeMM1(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, q.Rho, 2.0/3, 1e-12, "rho")
	approx(t, q.L, 2, 1e-12, "L")
	approx(t, q.W, 1, 1e-12, "W")
	approx(t, q.Wq, 1-1.0/3, 1e-12, "Wq")
	approx(t, q.Lq, 2-2.0/3, 1e-12, "Lq")
	// Little's law holds.
	approx(t, LittlesLaw(q.Lambda, q.W), q.L, 1e-12, "Little")
}

func TestAnalyzeMM1Errors(t *testing.T) {
	if _, err := AnalyzeMM1(3, 3); err != ErrUnstable {
		t.Fatalf("rho=1 err = %v", err)
	}
	if _, err := AnalyzeMM1(5, 3); err != ErrUnstable {
		t.Fatalf("rho>1 err = %v", err)
	}
	if _, err := AnalyzeMM1(0, 3); err == nil {
		t.Fatal("zero lambda must fail")
	}
}

func TestAnalyzeMMCReducesToMM1(t *testing.T) {
	m1, err := AnalyzeMM1(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := AnalyzeMMC(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, mc.L, m1.L, 1e-9, "L")
	approx(t, mc.W, m1.W, 1e-9, "W")
	// For M/M/1 the waiting probability equals rho.
	approx(t, mc.ErlangC, m1.Rho, 1e-9, "ErlangC")
}

func TestAnalyzeMMCTextbook(t *testing.T) {
	// Classic example: lambda=3, mu=2, c=2 -> rho=0.75, ErlangC ~ 0.6428.
	q, err := AnalyzeMMC(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, q.Rho, 0.75, 1e-12, "rho")
	approx(t, q.ErlangC, 9.0/14, 1e-9, "ErlangC")
	approx(t, q.Lq, (9.0/14)*0.75/0.25, 1e-9, "Lq")
	if _, err := AnalyzeMMC(4, 2, 2); err != ErrUnstable {
		t.Fatal("rho=1 must be unstable")
	}
	if _, err := AnalyzeMMC(1, 1, 0); err == nil {
		t.Fatal("no servers must fail")
	}
}

func TestMoreServersNeverHurt(t *testing.T) {
	prev := math.Inf(1)
	for c := 1; c <= 6; c++ {
		q, err := AnalyzeMMC(3.5, 1, c+3)
		if err != nil {
			t.Fatal(err)
		}
		if q.Wq > prev+1e-12 {
			t.Fatalf("Wq increased with servers: %v > %v", q.Wq, prev)
		}
		prev = q.Wq
	}
}

func TestAnalyzeMG1(t *testing.T) {
	// Exponential service (SCV=1) must reproduce M/M/1.
	m1, _ := AnalyzeMM1(2, 3)
	g1, err := AnalyzeMG1(2, 1.0/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, g1.Wq, m1.Wq, 1e-9, "Wq")
	approx(t, g1.L, m1.L, 1e-9, "L")
	// Deterministic service (SCV=0) halves the waiting time.
	g0, err := AnalyzeMG1(2, 1.0/3, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, g0.Wq, m1.Wq/2, 1e-9, "deterministic Wq")
	if _, err := AnalyzeMG1(3, 1.0/3, 1); err != ErrUnstable {
		t.Fatal("rho=1 must be unstable")
	}
	if _, err := AnalyzeMG1(1, -1, 1); err == nil {
		t.Fatal("negative service must fail")
	}
}

func TestJacksonTandem(t *testing.T) {
	// Two-station tandem: all of station 0's output goes to station 1.
	net := &JacksonNetwork{
		Stations: []Station{
			{Name: "cpu", Mu: 5, Servers: 1},
			{Name: "disk", Mu: 4, Servers: 1},
		},
		External: []float64{2, 0},
		Routing:  [][]float64{{0, 1}, {0, 0}},
	}
	res, totalW, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Both stations see lambda=2.
	approx(t, res[0].Lambda, 2, 1e-9, "lambda0")
	approx(t, res[1].Lambda, 2, 1e-9, "lambda1")
	// Each is an independent M/M/1: W = 1/(mu-lambda).
	w0, w1 := 1.0/3, 1.0/2
	approx(t, totalW, w0+w1, 1e-9, "network W")
}

func TestJacksonFeedback(t *testing.T) {
	// Single station with feedback probability 0.5: effective lambda =
	// ext / (1 - 0.5) = 2.
	net := &JacksonNetwork{
		Stations: []Station{{Name: "s", Mu: 5, Servers: 1}},
		External: []float64{1},
		Routing:  [][]float64{{0.5}},
	}
	res, _, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res[0].Lambda, 2, 1e-9, "feedback lambda")
}

func TestJacksonErrors(t *testing.T) {
	if _, _, err := (&JacksonNetwork{}).Solve(); err == nil {
		t.Fatal("empty network must fail")
	}
	bad := &JacksonNetwork{
		Stations: []Station{{Mu: 1, Servers: 1}},
		External: []float64{0.5},
		Routing:  [][]float64{{1.5}},
	}
	if _, _, err := bad.Solve(); err == nil {
		t.Fatal("routing sum > 1 must fail")
	}
	unstable := &JacksonNetwork{
		Stations: []Station{{Mu: 1, Servers: 1}},
		External: []float64{2},
		Routing:  [][]float64{{0}},
	}
	if _, _, err := unstable.Solve(); err == nil {
		t.Fatal("unstable station must fail")
	}
}

func TestSimulateMatchesMM1(t *testing.T) {
	lambda, mu := 2.0, 3.0
	want, _ := AnalyzeMM1(lambda, mu)
	sim, err := Simulate(Exponential(lambda), Exponential(mu), 1, 60000, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	// 10% tolerance: stochastic validation.
	approx(t, sim.MeanW, want.W, 0.10, "sim W")
	approx(t, sim.MeanWq, want.Wq, 0.15, "sim Wq")
	approx(t, sim.MeanL, want.L, 0.15, "sim L")
	approx(t, sim.Util, want.Rho, 0.10, "sim util")
}

func TestSimulateMatchesMMC(t *testing.T) {
	lambda, mu, c := 3.0, 2.0, 2
	want, _ := AnalyzeMMC(lambda, mu, c)
	sim, err := Simulate(Exponential(lambda), Exponential(mu), c, 60000, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sim.MeanWq, want.Wq, 0.15, "sim Wq")
	approx(t, sim.Util, want.Rho, 0.10, "sim util")
}

func TestSimulateMatchesMD1(t *testing.T) {
	// Deterministic service: M/D/1 (SCV = 0).
	lambda, mean := 2.0, 1.0/3
	want, _ := AnalyzeMG1(lambda, mean, 0)
	sim, err := Simulate(Exponential(lambda), Deterministic(mean), 1, 60000, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sim.MeanWq, want.Wq, 0.15, "sim M/D/1 Wq")
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Exponential(1), Exponential(2), 0, 10, 0, 1); err == nil {
		t.Fatal("zero servers must fail")
	}
	if _, err := Simulate(Exponential(1), Exponential(2), 1, 0, 0, 1); err == nil {
		t.Fatal("zero customers must fail")
	}
	// Negative warmup clamps rather than fails.
	if _, err := Simulate(Exponential(1), Exponential(2), 1, 100, -5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSampler(t *testing.T) {
	s := Uniform(1, 2)
	r, err := Simulate(s, Deterministic(0.1), 1, 1000, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic fast service: no queueing, W == service time.
	approx(t, r.MeanW, 0.1, 0.01, "uniform/deterministic W")
}

// Property: for any stable M/M/1, the analytical results satisfy Little's
// law and the simulation's W stays within 25% (loose stochastic bound).
func TestQuickMM1Consistency(t *testing.T) {
	f := func(lRaw, mRaw uint8) bool {
		lambda := float64(lRaw%50)/10 + 0.1
		mu := lambda/0.8 + float64(mRaw%20)/10 + 0.05 // keep rho < 0.8
		q, err := AnalyzeMM1(lambda, mu)
		if err != nil {
			return false
		}
		if math.Abs(LittlesLaw(lambda, q.W)-q.L) > 1e-9 {
			return false
		}
		return math.Abs(LittlesLaw(lambda, q.Wq)-q.Lq) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMVASingleStationMatchesTheory(t *testing.T) {
	// One queueing station, demand D: X(n) = n / (D * n) saturates at
	// 1/D; for n=1, X = 1/D and R = D.
	st := []MVAStation{{Name: "cpu", Demand: 0.1}}
	res, err := MVA(st, 20)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res[0].Throughput, 10, 1e-12, "X(1)")
	approx(t, res[0].ResponseTime, 0.1, 1e-12, "R(1)")
	// Saturation: X(20) -> 1/D = 10 and never exceeds it.
	for _, r := range res {
		if r.Throughput > 10+1e-9 {
			t.Fatalf("throughput %v exceeds saturation", r.Throughput)
		}
	}
	approx(t, res[19].Throughput, 10, 0.01, "X(20)")
}

func TestMVAInteractiveSystem(t *testing.T) {
	// Classic interactive system: think time 5s (delay), CPU 0.04s,
	// disk 0.03s. Bottleneck is the CPU; X_max = 1/0.04 = 25 jobs/s.
	st := []MVAStation{
		{Name: "think", Demand: 5, Delay: true},
		{Name: "cpu", Demand: 0.04},
		{Name: "disk", Demand: 0.03},
	}
	if b := MVABottleneck(st); b != 1 {
		t.Fatalf("bottleneck = %d, want cpu", b)
	}
	res, err := MVA(st, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Low population: response ~ sum of demands, X ~ n/(Z+D_total).
	approx(t, res[0].ResponseTime, 5.07, 1e-9, "R(1)")
	// High population: X saturates near 25/s.
	x := res[299].Throughput
	if x > 25+1e-9 || x < 24 {
		t.Fatalf("X(300) = %v, want ~25", x)
	}
	// Little's law at every population: n = X * R.
	for _, r := range res {
		approx(t, r.Throughput*r.ResponseTime, float64(r.Population), 1e-9, "Little")
	}
	// CPU utilization approaches 1 and never exceeds it.
	if u := res[299].Utilization[1]; u > 1+1e-9 || u < 0.95 {
		t.Fatalf("cpu utilization = %v", u)
	}
}

func TestMVAErrors(t *testing.T) {
	if _, err := MVA(nil, 5); err == nil {
		t.Fatal("no stations must fail")
	}
	if _, err := MVA([]MVAStation{{Demand: 1}}, 0); err == nil {
		t.Fatal("zero population must fail")
	}
	if _, err := MVA([]MVAStation{{Demand: -1}}, 5); err == nil {
		t.Fatal("negative demand must fail")
	}
	if MVABottleneck([]MVAStation{{Demand: 1, Delay: true}}) != -1 {
		t.Fatal("all-delay network has no bottleneck")
	}
}

func TestSojournTailBasics(t *testing.T) {
	m, err := AnalyzeMMC(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tail is a proper survival function: 1 at 0, decreasing, -> 0.
	if got := m.SojournTail(0); got != 1 {
		t.Fatalf("SojournTail(0) = %v, want 1", got)
	}
	prev := 1.0
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		cur := m.SojournTail(x)
		if cur > prev+1e-12 {
			t.Fatalf("tail increased at t=%v: %v > %v", x, cur, prev)
		}
		prev = cur
	}
	if m.SojournTail(50) > 1e-9 {
		t.Fatalf("tail does not vanish: %v", m.SojournTail(50))
	}
	// Wait tail at 0 is the Erlang-C waiting probability.
	approx(t, m.WaitTail(0), m.ErlangC, 1e-12, "WaitTail(0)")
}

func TestSojournTailMeanConsistent(t *testing.T) {
	// Integrating the survival function recovers the mean sojourn W.
	for _, tc := range []struct {
		lambda, mu float64
		c          int
	}{
		{0.8, 1, 1}, {3, 2, 2}, {7, 1, 10},
	} {
		m, err := AnalyzeMMC(tc.lambda, tc.mu, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		var integ float64
		dt := m.W / 4000
		for x := dt / 2; x < 60*m.W; x += dt {
			integ += m.SojournTail(x) * dt
		}
		approx(t, integ, m.W, 1e-2, "integral of tail vs W")
	}
}

func TestSojournQuantileInvertsTail(t *testing.T) {
	m, err := AnalyzeMMC(3.6, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q, err := m.SojournQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, m.SojournTail(q), 1-p, 1e-6, "tail at quantile")
	}
	if _, err := m.SojournQuantile(0); err == nil {
		t.Fatal("p=0 must fail")
	}
	if _, err := m.SojournQuantile(1); err == nil {
		t.Fatal("p=1 must fail")
	}
}

func TestSojournQuantileMatchesSimulation(t *testing.T) {
	// The analytical p90/p99 must agree with the discrete-event
	// simulator's empirical quantiles — the same cross-check the course
	// runs for the means, extended to the tail the admission controller
	// actually sizes for.
	const lambda, mu, servers = 3.0, 1.0, 4
	m, err := AnalyzeMMC(lambda, mu, servers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Exponential(lambda), Exponential(mu), servers, 60000, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sojourns) != res.Customers {
		t.Fatalf("got %d sojourn samples, want %d", len(res.Sojourns), res.Customers)
	}
	sorted := append([]float64(nil), res.Sojourns...)
	sort.Float64s(sorted)
	for _, p := range []float64{0.9, 0.99} {
		want, err := m.SojournQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		got := sorted[int(p*float64(len(sorted)-1))]
		approx(t, got, want, 0.12, "simulated quantile")
	}
}
