package analytic

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"perfeng/internal/isa"
	"perfeng/internal/machine"
)

func cube(n float64) float64 { return n * n * n }

func TestFunctionModelCalibrateExact(t *testing.T) {
	// Synthetic data from T = 1e-3 + 2e-9 * n^3 must be recovered exactly.
	m := &FunctionModel{ModelName: "matmul-fn", Work: cube}
	var pts []CalibrationPoint
	for _, n := range []float64{64, 128, 256, 512} {
		pts = append(pts, CalibrationPoint{N: n, Seconds: 1e-3 + 2e-9*cube(n)})
	}
	if err := m.Calibrate(pts); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Overhead-1e-3) > 1e-9 || math.Abs(m.CostPerUnit-2e-9) > 1e-15 {
		t.Fatalf("calibrated %v + %v*W", m.Overhead, m.CostPerUnit)
	}
	pred, err := m.PredictSeconds(1024)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-3 + 2e-9*cube(1024)
	if math.Abs(pred-want) > 1e-9*want {
		t.Fatalf("prediction %v, want %v", pred, want)
	}
}

func TestFunctionModelCalibrationErrors(t *testing.T) {
	m := &FunctionModel{ModelName: "x", Work: cube}
	if err := m.Calibrate([]CalibrationPoint{{1, 1}}); err == nil {
		t.Fatal("one point must fail")
	}
	noWork := &FunctionModel{ModelName: "y"}
	if err := noWork.Calibrate([]CalibrationPoint{{1, 1}, {2, 2}}); err == nil {
		t.Fatal("missing work fn must fail")
	}
	if _, err := noWork.PredictSeconds(4); err == nil {
		t.Fatal("predict without work fn must fail")
	}
	// Decreasing time with increasing work -> negative cost -> error.
	bad := &FunctionModel{ModelName: "z", Work: cube}
	if err := bad.Calibrate([]CalibrationPoint{{10, 5}, {20, 1}}); err == nil {
		t.Fatal("negative cost must be reported")
	}
}

func TestBoundModel(t *testing.T) {
	cpu := machine.DAS5CPU()
	m := (&BoundModel{
		ModelName: "matmul-bound",
		FLOPs:     func(n float64) float64 { return 2 * n * n * n },
		Bytes:     func(n float64) float64 { return 3 * n * n * 8 },
	}).FromCPU(cpu)
	// Large n: compute-bound (AI grows with n).
	if m.BoundOf(1024) != "compute" {
		t.Fatal("large matmul should be compute-bound")
	}
	// Tiny n with this characterization: memory-bound.
	if m.BoundOf(2) != "memory" {
		t.Fatal("tiny matmul should be memory-bound")
	}
	pred, err := m.PredictSeconds(512)
	if err != nil {
		t.Fatal(err)
	}
	wantCompute := 2 * 512.0 * 512 * 512 / (cpu.PeakGFLOPS() * 1e9)
	if math.Abs(pred-wantCompute) > 1e-12 {
		t.Fatalf("prediction %v, want %v", pred, wantCompute)
	}
	// Efficiency derating raises the prediction.
	m.Efficiency = 0.5
	pred2, _ := m.PredictSeconds(512)
	if math.Abs(pred2-2*pred) > 1e-12 {
		t.Fatalf("derated prediction %v, want %v", pred2, 2*pred)
	}
}

func TestBoundModelErrors(t *testing.T) {
	m := &BoundModel{ModelName: "x"}
	if _, err := m.PredictSeconds(4); err == nil {
		t.Fatal("missing characterization must fail")
	}
	m.FLOPs = func(n float64) float64 { return n }
	m.Bytes = func(n float64) float64 { return n }
	if _, err := m.PredictSeconds(4); err == nil {
		t.Fatal("missing machine rates must fail")
	}
}

func TestValidateAndCompare(t *testing.T) {
	m := &FunctionModel{ModelName: "exact", Work: cube, CostPerUnit: 1e-9}
	pts := []CalibrationPoint{
		{N: 10, Seconds: 1e-6},
		{N: 100, Seconds: 1e-3},
	}
	v, err := Validate(m, pts)
	if err != nil {
		t.Fatal(err)
	}
	if v.MAPE > 1e-12 || v.MaxAPE > 1e-12 {
		t.Fatalf("exact model should have ~zero error: %+v", v)
	}
	if !strings.Contains(v.String(), "MAPE") {
		t.Fatal("String incomplete")
	}

	worse := &FunctionModel{ModelName: "biased", Work: cube, CostPerUnit: 2e-9}
	ranked, err := Compare([]Model{worse, m}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Model != "exact" {
		t.Fatalf("ranking wrong: %v first", ranked[0].Model)
	}
	if _, err := Validate(m, nil); err == nil {
		t.Fatal("empty points must fail")
	}
}

func TestECMFromStreamsTriad(t *testing.T) {
	cpu := machine.DAS5CPU()
	// Triad: 3 streams + write-allocate = 4 effective; core 4 cy/line.
	e, err := ECMFromStreams("triad-ecm", cpu, 3, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.IterationsPerLine != 8 {
		t.Fatalf("iters/line = %v", e.IterationsPerLine)
	}
	if len(e.TransferCyclesPerLine) != 3 {
		t.Fatalf("transfer terms = %d", len(e.TransferCyclesPerLine))
	}
	// Transfers must dominate the 4-cycle core time: memory-bound kernel.
	if e.CyclesPerLine() <= e.CoreCyclesPerLine {
		t.Fatal("triad should be data-dominated")
	}
	// Saturation well below the 8 cores of the DAS-5 socket.
	if s := e.SaturationCores(); s <= 0 || s >= 8 {
		t.Fatalf("saturation cores = %v, want in (0, 8)", s)
	}
	if !strings.Contains(e.String(), "cy/line") {
		t.Fatal("String incomplete")
	}
}

func TestECMScaling(t *testing.T) {
	cpu := machine.DAS5CPU()
	e, err := ECMFromStreams("triad-ecm", cpu, 3, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := e.SecondsForIterations(1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := e.SecondsForIterations(1<<20, 2)
	t8, _ := e.SecondsForIterations(1<<20, 8)
	if t2 >= t1 {
		t.Fatal("2 cores should be faster than 1")
	}
	// Past saturation, more cores stop helping: t8 should be well above
	// the linear extrapolation t1/8.
	if t8 < t1/8*1.5 {
		t.Fatalf("t8 = %v suggests linear scaling past saturation (t1=%v)", t8, t1)
	}
	// PredictSeconds is the single-core path.
	p, err := e.PredictSeconds(1 << 20)
	if err != nil || p != t1 {
		t.Fatalf("PredictSeconds = %v, want %v", p, t1)
	}
}

func TestECMComputeBoundKernelNeverSaturates(t *testing.T) {
	e := &ECM{ModelName: "compute", CoreCyclesPerLine: 100,
		FreqHz: 2e9, IterationsPerLine: 8}
	if !math.IsInf(e.SaturationCores(), 1) {
		t.Fatal("kernel without memory traffic never saturates")
	}
	t1, err := e.SecondsForIterations(1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	t4, _ := e.SecondsForIterations(1e6, 4)
	if math.Abs(t4-t1/4) > 1e-12*t1 {
		t.Fatal("compute-bound kernel should scale linearly")
	}
}

func TestECMErrors(t *testing.T) {
	e := &ECM{ModelName: "bad"}
	if _, err := e.SecondsForIterations(100, 1); err == nil {
		t.Fatal("missing geometry must fail")
	}
	if _, err := ECMFromStreams("x", machine.CPU{}, 3, false, 1); err == nil {
		t.Fatal("cacheless CPU must fail")
	}
}

func TestInstrModel(t *testing.T) {
	m := &InstrModel{
		ModelName: "dot-instr",
		Kernel:    isa.DotProductKernel(),
		Table:     isa.Haswell(),
		FreqHz:    2.4e9,
	}
	// Dot product: 5 cycles/iter latency bound; 1e6 iterations.
	pred, err := m.PredictSeconds(1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6 * 5 / 2.4e9
	if math.Abs(pred-want) > 0.02*want {
		t.Fatalf("prediction %v, want ~%v", pred, want)
	}
	// Second call reuses the cached analysis.
	if _, err := m.PredictSeconds(10); err != nil {
		t.Fatal(err)
	}
	// IterationsOf mapping.
	m2 := &InstrModel{ModelName: "x", Kernel: isa.DotProductKernel(),
		Table: isa.Haswell(), FreqHz: 1e9,
		IterationsOf: func(n float64) float64 { return n * n }}
	p4, _ := m2.PredictSeconds(2)
	p1, _ := m2.PredictSeconds(1)
	if math.Abs(p4-4*p1) > 1e-12 {
		t.Fatal("IterationsOf not applied")
	}
}

func TestInstrModelErrors(t *testing.T) {
	if _, err := (&InstrModel{ModelName: "x", FreqHz: 1e9}).PredictSeconds(1); err == nil {
		t.Fatal("missing kernel must fail")
	}
	if _, err := (&InstrModel{ModelName: "x", Kernel: isa.DotProductKernel(),
		Table: isa.Haswell()}).PredictSeconds(1); err == nil {
		t.Fatal("missing frequency must fail")
	}
}

// Property: FunctionModel calibration recovers planted coefficients from
// noise-free data for random positive constants.
func TestQuickCalibrationRecovery(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 10)) + 0.01
		b := math.Abs(math.Mod(bRaw, 1e-6)) + 1e-12
		m := &FunctionModel{ModelName: "q", Work: cube}
		var pts []CalibrationPoint
		for _, n := range []float64{8, 16, 32, 64} {
			pts = append(pts, CalibrationPoint{N: n, Seconds: a + b*cube(n)})
		}
		if err := m.Calibrate(pts); err != nil {
			return false
		}
		return math.Abs(m.Overhead-a) < 1e-6*a+1e-12 &&
			math.Abs(m.CostPerUnit-b) < 1e-6*b+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateEfficiency(t *testing.T) {
	cpu := machine.DAS5CPU()
	m := (&BoundModel{
		ModelName: "mm",
		FLOPs:     func(n float64) float64 { return 2 * n * n * n },
		Bytes:     func(n float64) float64 { return 3 * n * n * 8 },
	}).FromCPU(cpu)
	// Synthetic measurements at exactly 25% of the ideal bound.
	var pts []CalibrationPoint
	for _, n := range []float64{128, 256, 512} {
		ideal, err := m.PredictSeconds(n)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, CalibrationPoint{N: n, Seconds: ideal * 4})
	}
	if err := m.CalibrateEfficiency(pts); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Efficiency-0.25) > 1e-9 {
		t.Fatalf("efficiency = %v, want 0.25", m.Efficiency)
	}
	// The calibrated model now predicts the measurements exactly.
	v, err := Validate(m, pts)
	if err != nil || v.MAPE > 1e-9 {
		t.Fatalf("calibrated MAPE = %v, %v", v, err)
	}
	// Faster-than-ideal measurements clamp to 1.
	fast := []CalibrationPoint{{N: 128, Seconds: 1e-12}}
	if err := m.CalibrateEfficiency(fast); err != nil {
		t.Fatal(err)
	}
	if m.Efficiency != 1 {
		t.Fatalf("efficiency should clamp to 1, got %v", m.Efficiency)
	}
	if err := m.CalibrateEfficiency(nil); err == nil {
		t.Fatal("empty calibration must fail")
	}
	if err := m.CalibrateEfficiency([]CalibrationPoint{{N: 1, Seconds: -1}}); err == nil {
		t.Fatal("negative time must fail")
	}
}

func TestZen2VsHaswellOnDotProduct(t *testing.T) {
	// Cross-table comparison: the dot product is latency-bound on both
	// (5-cycle FMA), so the tables agree — the port structure only
	// matters for throughput-bound bodies.
	hw := &InstrModel{ModelName: "hw", Kernel: isa.DotProductKernel(),
		Table: isa.Haswell(), FreqHz: 1e9}
	zen := &InstrModel{ModelName: "zen", Kernel: isa.DotProductKernel(),
		Table: isa.Zen2(), FreqHz: 1e9}
	ph, err := hw.PredictSeconds(1e6)
	if err != nil {
		t.Fatal(err)
	}
	pz, err := zen.PredictSeconds(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph-pz) > 0.02*ph {
		t.Fatalf("latency-bound kernel should time equally: %v vs %v", ph, pz)
	}
}

func TestWorkSpanBasics(t *testing.T) {
	w := WorkSpan{Name: "x", Work: 100, Span: 10}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Parallelism() != 10 {
		t.Fatalf("parallelism = %v", w.Parallelism())
	}
	// Brent: p=1 gives W; p=inf approaches S.
	b1, err := w.BrentBound(1)
	if err != nil || b1 != 100 {
		t.Fatalf("BrentBound(1) = %v, %v", b1, err)
	}
	bBig, _ := w.BrentBound(1 << 20)
	if math.Abs(bBig-10) > 0.01 {
		t.Fatalf("BrentBound(inf) = %v, want ~10", bBig)
	}
	// Speedup bound is monotone in p and capped by parallelism.
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8, 1024} {
		s, err := w.SpeedupBound(p)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev || s > w.Parallelism()+1e-9 {
			t.Fatalf("speedup bound %v at p=%d (prev %v)", s, p, prev)
		}
		prev = s
	}
	if !strings.Contains(w.String(), "parallelism") {
		t.Fatal("String incomplete")
	}
}

func TestWorkSpanErrors(t *testing.T) {
	bad := WorkSpan{Work: 1, Span: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("W < S must fail")
	}
	if _, err := bad.BrentBound(2); err == nil {
		t.Fatal("invalid work-span must fail")
	}
	good := WorkSpan{Work: 10, Span: 1}
	if _, err := good.BrentBound(0); err == nil {
		t.Fatal("p=0 must fail")
	}
	if _, err := good.PredictSeconds(2); err == nil {
		t.Fatal("missing OpSeconds must fail")
	}
	good.OpSeconds = 1e-9
	sec, err := good.PredictSeconds(2)
	if err != nil || math.Abs(sec-(1+9.0/2)*1e-9) > 1e-18 {
		t.Fatalf("PredictSeconds = %v, %v", sec, err)
	}
}

func TestCanonicalWorkSpans(t *testing.T) {
	mm := MatMulWorkSpan(512)
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Matmul parallelism n^2: enormous — compute scales to any machine.
	if mm.Parallelism() != 512*512 {
		t.Fatalf("matmul parallelism = %v", mm.Parallelism())
	}
	red := ReduceWorkSpan(1024)
	if red.Span != 10 {
		t.Fatalf("reduce span = %v, want log2(1024)=10", red.Span)
	}
	if ReduceWorkSpan(1).Work != 1 {
		t.Fatal("degenerate reduce wrong")
	}
	st := StencilSweepWorkSpan(100)
	if st.Span != 5 || st.Work != 5*100*100 {
		t.Fatalf("stencil workspan = %+v", st)
	}
	// Brent's bound at p = parallelism gives ~2x the span (the classic
	// "within a factor of two of optimal" statement).
	b, _ := red.BrentBound(int(red.Parallelism()))
	if b > 2*red.Span+1 {
		t.Fatalf("Brent at p=parallelism = %v, want <= ~2*span", b)
	}
}
