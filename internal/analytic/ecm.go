package analytic

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"perfeng/internal/machine"
)

// Simplified Execution-Cache-Memory (ECM) model (Hager/Wellein school; the
// course cites its application to ODE methods [Seiferth et al. 2018]). The
// unit of work is one cache line of loop iterations (8 doubles). The model
// composes:
//
//	T_core  — in-core execution cycles per line (from the port model or a
//	          hand count),
//	T_data  — data-transfer cycles per line through each memory level,
//	          summed non-overlapping (the conservative ECM variant),
//	T_line  = max(T_core, T_data)    per line, single core,
//	T(p)    = min-scaling: p cores scale until the memory roof saturates.
type ECM struct {
	ModelName string
	// CoreCyclesPerLine is the in-core execution time per cache line of
	// iterations.
	CoreCyclesPerLine float64
	// TransferCyclesPerLine holds the per-level transfer contributions
	// (L1<-L2, L2<-L3, L3<-Mem ...), in cycles per line, in hierarchy
	// order.
	TransferCyclesPerLine []float64
	// FreqHz converts cycles to seconds.
	FreqHz float64
	// IterationsPerLine is the loop iterations covered by one line
	// (8 for unit-stride double streams).
	IterationsPerLine float64
	// MemBandwidthBytesPerSec caps multi-core scaling.
	MemBandwidthBytesPerSec float64
	// BytesPerLine is the memory traffic per line (for the saturation
	// point).
	BytesPerLine float64
}

// Name implements Model (per-size predictions use SecondsForIterations).
func (e *ECM) Name() string { return e.ModelName }

// CyclesPerLine returns the single-core ECM prediction per cache line.
func (e *ECM) CyclesPerLine() float64 {
	var data float64
	for _, t := range e.TransferCyclesPerLine {
		data += t
	}
	return math.Max(e.CoreCyclesPerLine, data)
}

// PredictSeconds implements Model: n is the iteration count.
func (e *ECM) PredictSeconds(n float64) (float64, error) {
	return e.SecondsForIterations(n, 1)
}

// SecondsForIterations predicts the runtime of iters loop iterations on
// cores cores.
func (e *ECM) SecondsForIterations(iters float64, cores int) (float64, error) {
	if e.FreqHz <= 0 || e.IterationsPerLine <= 0 {
		return 0, errors.New("analytic: ECM missing frequency or line geometry")
	}
	if cores < 1 {
		cores = 1
	}
	lines := iters / e.IterationsPerLine
	cyc := e.CyclesPerLine()
	singleCoreSec := lines * cyc / e.FreqHz

	// Multi-core: performance scales linearly until the aggregate memory
	// bandwidth saturates (the ECM scaling law).
	perf := float64(cores)
	if e.MemBandwidthBytesPerSec > 0 && e.BytesPerLine > 0 {
		// Single-core memory demand in B/s.
		singleDemand := e.BytesPerLine / (cyc / e.FreqHz)
		maxCores := e.MemBandwidthBytesPerSec / singleDemand
		perf = math.Min(perf, math.Max(1, maxCores))
	}
	return singleCoreSec / perf, nil
}

// SaturationCores returns the core count at which the kernel saturates
// memory bandwidth (the "ns" of the ECM papers); +Inf when the kernel never
// saturates (no memory traffic declared).
func (e *ECM) SaturationCores() float64 {
	if e.MemBandwidthBytesPerSec <= 0 || e.BytesPerLine <= 0 || e.FreqHz <= 0 {
		return math.Inf(1)
	}
	cyc := e.CyclesPerLine()
	singleDemand := e.BytesPerLine / (cyc / e.FreqHz)
	return e.MemBandwidthBytesPerSec / singleDemand
}

// String renders the ECM contribution breakdown in the customary
// "{Tcore | T_L1L2 | T_L2L3 | T_L3Mem}" notation.
func (e *ECM) String() string {
	parts := make([]string, 0, len(e.TransferCyclesPerLine)+1)
	parts = append(parts, strconv.FormatFloat(e.CoreCyclesPerLine, 'f', 1, 64))
	for _, t := range e.TransferCyclesPerLine {
		parts = append(parts, strconv.FormatFloat(t, 'f', 1, 64))
	}
	return fmt.Sprintf("%s = {%s} cy/line -> %.1f cy/line, saturates at %.1f cores",
		e.ModelName, strings.Join(parts, " | "), e.CyclesPerLine(), e.SaturationCores())
}

// ECMFromStreams builds the ECM transfer terms for a streaming kernel on
// the given CPU model: for each memory level crossed, the cycles to move
// the streams' lines at that level's bandwidth.
//
// streams is the number of 8-byte streams the loop touches per iteration
// (e.g. triad: 3 — two loads + one store counted once each; write-allocate
// adds one extra read stream for the stored array when writeAllocate is
// true). coreCycles is the in-core execution per line (from ports.Analyze:
// cycles/iter * IterationsPerLine).
func ECMFromStreams(name string, c machine.CPU, streams int, writeAllocate bool, coreCyclesPerLine float64) (*ECM, error) {
	if len(c.Caches) == 0 {
		return nil, errors.New("analytic: CPU model has no caches")
	}
	line := float64(c.Caches[0].LineBytes)
	eff := float64(streams)
	if writeAllocate {
		eff++ // the store stream is read once more for the allocate
	}
	bytesPerLineOfWork := eff * line

	e := &ECM{
		ModelName:               name,
		CoreCyclesPerLine:       coreCyclesPerLine,
		FreqHz:                  c.FreqHz,
		IterationsPerLine:       line / 8,
		MemBandwidthBytesPerSec: c.MemBandwidthBytesPerSec,
		BytesPerLine:            bytesPerLineOfWork,
	}
	// Transfers between adjacent levels: each stream's line moves through
	// every level once (fully cache-cold streaming).
	for i := range c.Caches {
		var bwBytesPerCycle float64
		if i+1 < len(c.Caches) {
			bwBytesPerCycle = c.Caches[i+1].BandwidthBytesPerCycle
		} else {
			// Last level <- memory at DRAM bandwidth.
			bwBytesPerCycle = c.MemBandwidthBytesPerSec / c.FreqHz
		}
		if bwBytesPerCycle <= 0 {
			return nil, fmt.Errorf("analytic: level %d has no bandwidth", i)
		}
		e.TransferCyclesPerLine = append(e.TransferCyclesPerLine,
			bytesPerLineOfWork/bwBytesPerCycle)
	}
	return e, nil
}
