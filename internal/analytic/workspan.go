package analytic

import (
	"errors"
	"fmt"
	"math"
)

// Work-span analysis (Brent's theorem): the DAG model of parallel
// computation taught alongside Amdahl in the parallel-algorithms
// prerequisite. Work W is the total operation count, span S the critical
// path; parallelism W/S bounds achievable speedup and Brent's bound
// T_p <= S + (W-S)/p predicts runtime on p processors.

// WorkSpan characterizes a parallel computation.
type WorkSpan struct {
	Name string
	// Work is the total operations (T_1).
	Work float64
	// Span is the critical-path operations (T_inf).
	Span float64
	// OpSeconds converts operations to seconds (calibrated cost per op);
	// zero means results are reported in abstract operations.
	OpSeconds float64
}

// Validate checks W >= S > 0.
func (w WorkSpan) Validate() error {
	if w.Span <= 0 || w.Work <= 0 {
		return errors.New("analytic: work and span must be positive")
	}
	if w.Work < w.Span {
		return errors.New("analytic: work cannot be below span")
	}
	return nil
}

// Parallelism returns W/S, the maximum useful processor count.
func (w WorkSpan) Parallelism() float64 { return w.Work / w.Span }

// BrentBound returns the operations executed on the critical schedule for
// p processors: S + (W-S)/p.
func (w WorkSpan) BrentBound(p int) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if p < 1 {
		return 0, errors.New("analytic: need p >= 1")
	}
	return w.Span + (w.Work-w.Span)/float64(p), nil
}

// SpeedupBound returns the Brent speedup prediction T_1/T_p for p
// processors; it approaches Parallelism() as p grows.
func (w WorkSpan) SpeedupBound(p int) (float64, error) {
	tp, err := w.BrentBound(p)
	if err != nil {
		return 0, err
	}
	return w.Work / tp, nil
}

// PredictSeconds returns the Brent runtime in seconds for p processors
// (requires OpSeconds > 0).
func (w WorkSpan) PredictSeconds(p int) (float64, error) {
	if w.OpSeconds <= 0 {
		return 0, errors.New("analytic: WorkSpan needs OpSeconds for time predictions")
	}
	tp, err := w.BrentBound(p)
	if err != nil {
		return 0, err
	}
	return tp * w.OpSeconds, nil
}

// String renders the summary line.
func (w WorkSpan) String() string {
	return fmt.Sprintf("%s: W=%.3g, S=%.3g, parallelism %.1f",
		w.Name, w.Work, w.Span, w.Parallelism())
}

// MatMulWorkSpan returns the work-span of the classic parallel n x n
// matmul with a parallel-for over i and j and a sequential k loop:
// W = 2n^3, S = O(n) (the k reduction chain; 2n ops).
func MatMulWorkSpan(n int) WorkSpan {
	f := float64(n)
	return WorkSpan{Name: fmt.Sprintf("matmul-n%d", n), Work: 2 * f * f * f, Span: 2 * f}
}

// ReduceWorkSpan returns the work-span of a tree reduction over n
// elements: W = n-1, S = ceil(log2 n).
func ReduceWorkSpan(n int) WorkSpan {
	if n < 2 {
		return WorkSpan{Name: "reduce", Work: 1, Span: 1}
	}
	return WorkSpan{Name: fmt.Sprintf("reduce-n%d", n),
		Work: float64(n - 1), Span: math.Ceil(math.Log2(float64(n)))}
}

// StencilSweepWorkSpan returns the work-span of one fully parallel Jacobi
// sweep on an n x n interior: W = 5n^2, S = 5 (every point independent).
func StencilSweepWorkSpan(n int) WorkSpan {
	f := float64(n)
	return WorkSpan{Name: fmt.Sprintf("stencil-sweep-n%d", n), Work: 5 * f * f, Span: 5}
}
