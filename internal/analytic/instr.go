package analytic

import (
	"errors"

	"perfeng/internal/isa"
	"perfeng/internal/simulator/ports"
)

// InstrModel is the finest granularity of Assignment 2: runtime predicted
// from the loop body's port/latency analysis (the OSACA/IACA level). n is
// interpreted as the loop trip count.
type InstrModel struct {
	ModelName string
	Kernel    *isa.Kernel
	Table     *isa.Table
	FreqHz    float64
	// IterationsOf maps problem size n to loop iterations (identity when
	// nil).
	IterationsOf func(n float64) float64

	result *ports.Result
}

// Name implements Model.
func (m *InstrModel) Name() string { return m.ModelName }

// Analyze runs the port analysis once; PredictSeconds calls it lazily.
func (m *InstrModel) Analyze() (*ports.Result, error) {
	if m.result != nil {
		return m.result, nil
	}
	if m.Kernel == nil || m.Table == nil {
		return nil, errors.New("analytic: InstrModel missing kernel or table")
	}
	r, err := ports.Analyze(m.Kernel, m.Table, 0)
	if err != nil {
		return nil, err
	}
	m.result = r
	return r, nil
}

// PredictSeconds implements Model.
func (m *InstrModel) PredictSeconds(n float64) (float64, error) {
	if m.FreqHz <= 0 {
		return 0, errors.New("analytic: InstrModel missing frequency")
	}
	r, err := m.Analyze()
	if err != nil {
		return 0, err
	}
	iters := n
	if m.IterationsOf != nil {
		iters = m.IterationsOf(n)
	}
	return iters * r.Predicted / m.FreqHz, nil
}
