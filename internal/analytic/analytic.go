// Package analytic implements the analytical performance models of
// Assignment 2 at the three granularities students explore — function
// level (asymptotic work times a calibrated cost), loop level (the
// compute/bandwidth bound model and a simplified ECM), and instruction
// level (port/latency analysis via simulator/ports) — together with the
// calibration and validation machinery ("calibrate these models using
// microbenchmarking, and evaluate the models against measured performance
// data").
package analytic

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"perfeng/internal/linalg"
	"perfeng/internal/machine"
)

// Model predicts the runtime in seconds of a kernel configuration
// identified by a size parameter n (problem size; the meaning is
// model-specific).
type Model interface {
	Name() string
	// PredictSeconds returns the predicted runtime for problem size n.
	PredictSeconds(n float64) (float64, error)
}

// FunctionModel is the coarsest granularity: T(n) = overhead + cost * W(n),
// with W the asymptotic work function (e.g. n^3 for matmul) and the two
// constants calibrated from measurements.
type FunctionModel struct {
	ModelName string
	// Work maps problem size to abstract work units.
	Work func(n float64) float64
	// Overhead and CostPerUnit are the calibrated constants (seconds and
	// seconds/unit).
	Overhead    float64
	CostPerUnit float64
}

// Name implements Model.
func (m *FunctionModel) Name() string { return m.ModelName }

// PredictSeconds implements Model.
func (m *FunctionModel) PredictSeconds(n float64) (float64, error) {
	if m.Work == nil {
		return 0, errors.New("analytic: FunctionModel without work function")
	}
	return m.Overhead + m.CostPerUnit*m.Work(n), nil
}

// CalibrationPoint is one (size, measured seconds) observation.
type CalibrationPoint struct {
	N       float64
	Seconds float64
}

// Calibrate fits Overhead and CostPerUnit by least squares over the given
// observations. At least two points with distinct work values are needed.
func (m *FunctionModel) Calibrate(points []CalibrationPoint) error {
	if m.Work == nil {
		return errors.New("analytic: FunctionModel without work function")
	}
	if len(points) < 2 {
		return errors.New("analytic: calibration needs at least two points")
	}
	a := linalg.NewMatrix(len(points), 2)
	b := make([]float64, len(points))
	for i, p := range points {
		a.Set(i, 0, 1)
		a.Set(i, 1, m.Work(p.N))
		b[i] = p.Seconds
	}
	x, err := linalg.SolveLeastSquares(a, b)
	if err != nil {
		return fmt.Errorf("analytic: calibration failed: %w", err)
	}
	m.Overhead, m.CostPerUnit = x[0], x[1]
	if m.CostPerUnit < 0 {
		// A negative marginal cost means the work function does not
		// describe the data; report rather than silently extrapolate.
		return fmt.Errorf("analytic: calibration produced negative cost %g (wrong work function?)", m.CostPerUnit)
	}
	return nil
}

// BoundModel is the loop-level granularity: the kernel is characterized by
// FLOPs(n) and Bytes(n); the prediction is the roofline bound
// T = max(FLOPs/peak, Bytes/bandwidth) with an optional efficiency factor
// for how close real code gets to the roofs.
type BoundModel struct {
	ModelName string
	FLOPs     func(n float64) float64
	Bytes     func(n float64) float64
	// PeakFLOPS and BandwidthBytes are absolute rates (FLOP/s, B/s),
	// typically from a calibrated machine model.
	PeakFLOPS      float64
	BandwidthBytes float64
	// Efficiency in (0, 1] derates both roofs (1 = ideal). Zero means 1.
	Efficiency float64
}

// FromCPU fills the machine rates from a CPU model.
func (m *BoundModel) FromCPU(c machine.CPU) *BoundModel {
	m.PeakFLOPS = c.PeakGFLOPS() * 1e9
	m.BandwidthBytes = c.MemBandwidthBytesPerSec
	return m
}

// Name implements Model.
func (m *BoundModel) Name() string { return m.ModelName }

// PredictSeconds implements Model.
func (m *BoundModel) PredictSeconds(n float64) (float64, error) {
	if m.FLOPs == nil || m.Bytes == nil {
		return 0, errors.New("analytic: BoundModel without characterization")
	}
	if m.PeakFLOPS <= 0 || m.BandwidthBytes <= 0 {
		return 0, errors.New("analytic: BoundModel without machine rates")
	}
	eff := m.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	tc := m.FLOPs(n) / (m.PeakFLOPS * eff)
	tm := m.Bytes(n) / (m.BandwidthBytes * eff)
	return math.Max(tc, tm), nil
}

// CalibrateEfficiency fits the single Efficiency scalar from measured
// points by least squares on log-time (the multiplicative-error fit):
// eff = exp(mean(log(T_ideal/T_measured))). Points whose ideal prediction
// is non-positive are rejected.
func (m *BoundModel) CalibrateEfficiency(points []CalibrationPoint) error {
	if len(points) == 0 {
		return errors.New("analytic: no calibration points")
	}
	saved := m.Efficiency
	m.Efficiency = 1
	var logSum float64
	for _, p := range points {
		ideal, err := m.PredictSeconds(p.N)
		if err != nil {
			m.Efficiency = saved
			return err
		}
		if ideal <= 0 || p.Seconds <= 0 {
			m.Efficiency = saved
			return errors.New("analytic: non-positive time in calibration")
		}
		logSum += math.Log(ideal / p.Seconds)
	}
	eff := math.Exp(logSum / float64(len(points)))
	if eff > 1 {
		// Measurements faster than the ideal bound indicate a wrong
		// characterization; clamp and keep the model honest at 1.
		eff = 1
	}
	m.Efficiency = eff
	return nil
}

// BoundOf reports which resource limits the prediction at size n.
func (m *BoundModel) BoundOf(n float64) string {
	tc := m.FLOPs(n) / m.PeakFLOPS
	tm := m.Bytes(n) / m.BandwidthBytes
	if tm > tc {
		return "memory"
	}
	return "compute"
}

// Validation quantifies prediction error against measurements.
type Validation struct {
	Model string
	// Points holds (n, predicted, measured, relative error).
	Points []ValidationPoint
	// MAPE is the mean absolute percentage error.
	MAPE float64
	// MaxAPE is the worst absolute percentage error.
	MaxAPE float64
}

// ValidationPoint is one prediction/measurement pair.
type ValidationPoint struct {
	N         float64
	Predicted float64
	Measured  float64
	APE       float64 // |pred-meas|/meas
}

// Validate evaluates the model at every measured point.
func Validate(m Model, points []CalibrationPoint) (*Validation, error) {
	if len(points) == 0 {
		return nil, errors.New("analytic: no validation points")
	}
	v := &Validation{Model: m.Name()}
	var sum float64
	for _, p := range points {
		pred, err := m.PredictSeconds(p.N)
		if err != nil {
			return nil, err
		}
		ape := math.Abs(pred-p.Seconds) / p.Seconds
		v.Points = append(v.Points, ValidationPoint{
			N: p.N, Predicted: pred, Measured: p.Seconds, APE: ape})
		sum += ape
		if ape > v.MaxAPE {
			v.MaxAPE = ape
		}
	}
	v.MAPE = sum / float64(len(points))
	return v, nil
}

// String renders the validation table.
func (v *Validation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "model %s: MAPE %.1f%%, max APE %.1f%%\n", v.Model, v.MAPE*100, v.MaxAPE*100)
	for _, p := range v.Points {
		fmt.Fprintf(&sb, "  n=%-10g predicted %-12.4g measured %-12.4g err %5.1f%%\n",
			p.N, p.Predicted, p.Measured, p.APE*100)
	}
	return sb.String()
}

// Compare validates several models on the same data and returns them
// ordered by MAPE (best first) — the model shoot-out of Assignments 2/3.
func Compare(models []Model, points []CalibrationPoint) ([]*Validation, error) {
	out := make([]*Validation, 0, len(models))
	for _, m := range models {
		//perfvet:ignore:allocattr per-model scratch inside the port-model critical-path solver; the shoot-out runs once per model
		v, err := Validate(m, points)
		if err != nil {
			return nil, fmt.Errorf("analytic: validating %s: %w", m.Name(), err)
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAPE < out[j].MAPE })
	return out, nil
}
