// Package energy implements the energy-efficiency metrics the paper lists
// as the course's first topic to develop further ("including additional
// metrics — such as energy-efficiency — more prominently"). It provides a
// first-order CPU power model (static + dynamic-per-active-core), energy
// and energy-delay-product accounting for measured kernels, and the
// race-to-idle vs slow-and-steady frequency analysis.
package energy

import (
	"errors"
	"fmt"
	"math"

	"perfeng/internal/machine"
	"perfeng/internal/metrics"
)

// PowerModel is the first-order machine power model: P = Static +
// PerCore * activeCores * (f/f0)^3 (cubic frequency scaling of dynamic
// power at constant voltage-frequency curve).
type PowerModel struct {
	// StaticWatts is the package idle power.
	StaticWatts float64
	// PerCoreWatts is the dynamic power of one busy core at nominal
	// frequency.
	PerCoreWatts float64
	// NominalHz is the frequency PerCoreWatts is specified at.
	NominalHz float64
}

// Validate checks the model.
func (p PowerModel) Validate() error {
	if p.StaticWatts < 0 || p.PerCoreWatts <= 0 || p.NominalHz <= 0 {
		return errors.New("energy: invalid power model")
	}
	return nil
}

// DefaultPowerModel returns a model sized for the given CPU: a typical
// server split of ~1/3 static, with the dynamic budget spread over the
// cores (roughly matching an 85 W Haswell-EP part for the DAS-5 preset).
func DefaultPowerModel(c machine.CPU) PowerModel {
	tdp := 10.0 * float64(c.Cores) // ~10 W/core class
	return PowerModel{
		StaticWatts:  tdp / 3,
		PerCoreWatts: tdp * 2 / 3 / float64(c.Cores),
		NominalHz:    c.FreqHz,
	}
}

// Power returns package power with activeCores busy at frequency hz.
func (p PowerModel) Power(activeCores int, hz float64) float64 {
	if activeCores < 0 {
		activeCores = 0
	}
	scale := hz / p.NominalHz
	return p.StaticWatts + p.PerCoreWatts*float64(activeCores)*scale*scale*scale
}

// Result is the energy accounting of one measured kernel execution.
type Result struct {
	Seconds float64
	Watts   float64
	Joules  float64
	// EDP is the energy-delay product (J*s), the metric that punishes
	// both slow and hungry.
	EDP float64
	// GFLOPSPerWatt is the energy efficiency (0 when no FLOPs declared).
	GFLOPSPerWatt float64
}

// Account computes the energy metrics of a measurement executed with
// activeCores busy cores at frequency hz.
func (p PowerModel) Account(m *metrics.Measurement, activeCores int, hz float64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	t := m.MedianSeconds()
	if t <= 0 || math.IsNaN(t) {
		return Result{}, errors.New("energy: measurement has no runtime")
	}
	w := p.Power(activeCores, hz)
	r := Result{
		Seconds: t,
		Watts:   w,
		Joules:  w * t,
		EDP:     w * t * t,
	}
	if g := m.GFLOPS(); g > 0 && w > 0 {
		r.GFLOPSPerWatt = g / w
	}
	return r, nil
}

// String renders the result.
func (r Result) String() string {
	s := fmt.Sprintf("%s at %.1f W = %.3g J (EDP %.3g Js)",
		metrics.FormatSeconds(r.Seconds), r.Watts, r.Joules, r.EDP)
	if r.GFLOPSPerWatt > 0 {
		s += fmt.Sprintf(", %.2f GFLOP/s/W", r.GFLOPSPerWatt)
	}
	return s
}

// FrequencyChoice is one point of the race-to-idle analysis.
type FrequencyChoice struct {
	Hz      float64
	Seconds float64
	Joules  float64
	EDP     float64
}

// RaceToIdle analyzes running a compute-bound job of the given work
// (busy-seconds at nominal frequency, on activeCores cores) across the
// candidate frequencies: runtime scales as f0/f, dynamic power as (f/f0)^3,
// static power accrues for the whole (stretched) runtime. It returns the
// choices and the indices of the energy-optimal and EDP-optimal points —
// the classic result that the energy optimum sits below nominal frequency
// while the EDP optimum sits near it.
func RaceToIdle(p PowerModel, busySecondsAtNominal float64, activeCores int, freqs []float64) ([]FrequencyChoice, int, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, 0, err
	}
	if busySecondsAtNominal <= 0 || len(freqs) == 0 {
		return nil, 0, 0, errors.New("energy: need positive work and at least one frequency")
	}
	out := make([]FrequencyChoice, 0, len(freqs))
	bestE, bestEDP := 0, 0
	for i, f := range freqs {
		if f <= 0 {
			return nil, 0, 0, fmt.Errorf("energy: non-positive frequency %g", f)
		}
		t := busySecondsAtNominal * p.NominalHz / f
		w := p.Power(activeCores, f)
		c := FrequencyChoice{Hz: f, Seconds: t, Joules: w * t, EDP: w * t * t}
		out = append(out, c)
		if c.Joules < out[bestE].Joules {
			bestE = i
		}
		if c.EDP < out[bestEDP].EDP {
			bestEDP = i
		}
	}
	return out, bestE, bestEDP, nil
}
