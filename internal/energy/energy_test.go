package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"perfeng/internal/machine"
	"perfeng/internal/metrics"
)

func model() PowerModel {
	return PowerModel{StaticWatts: 20, PerCoreWatts: 8, NominalHz: 2.4e9}
}

func TestDefaultPowerModel(t *testing.T) {
	p := DefaultPowerModel(machine.DAS5CPU())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full load at nominal frequency lands in the TDP class (~80 W for 8
	// cores).
	full := p.Power(8, p.NominalHz)
	if full < 40 || full > 150 {
		t.Fatalf("full-load power %v implausible", full)
	}
	if p.Power(0, p.NominalHz) != p.StaticWatts {
		t.Fatal("idle power must equal static power")
	}
}

func TestPowerCubicScaling(t *testing.T) {
	p := model()
	base := p.Power(4, p.NominalHz) - p.StaticWatts
	half := p.Power(4, p.NominalHz/2) - p.StaticWatts
	if math.Abs(half-base/8) > 1e-9 {
		t.Fatalf("dynamic power should scale cubically: %v vs %v/8", half, base)
	}
	if p.Power(-3, p.NominalHz) != p.StaticWatts {
		t.Fatal("negative cores should clamp to idle")
	}
}

func TestAccount(t *testing.T) {
	p := model()
	m := &metrics.Measurement{Name: "k", FLOPs: 1e9, Seconds: []float64{2}}
	r, err := p.Account(m, 1, p.NominalHz)
	if err != nil {
		t.Fatal(err)
	}
	wantW := 28.0 // 20 static + 8 one core
	if r.Watts != wantW || r.Joules != 56 || r.EDP != 112 {
		t.Fatalf("accounting wrong: %+v", r)
	}
	// 1e9 FLOPs in 2s = 0.5 GFLOP/s at 28 W.
	if math.Abs(r.GFLOPSPerWatt-0.5/28) > 1e-12 {
		t.Fatalf("efficiency = %v", r.GFLOPSPerWatt)
	}
	if !strings.Contains(r.String(), "GFLOP/s/W") {
		t.Fatal("String incomplete")
	}
	empty := &metrics.Measurement{}
	if _, err := p.Account(empty, 1, p.NominalHz); err == nil {
		t.Fatal("empty measurement must fail")
	}
	bad := PowerModel{}
	if _, err := bad.Account(m, 1, 1e9); err == nil {
		t.Fatal("invalid model must fail")
	}
}

func TestRaceToIdle(t *testing.T) {
	p := model()
	freqs := []float64{1.2e9, 1.6e9, 2.0e9, 2.4e9, 2.8e9}
	choices, bestE, bestEDP, err := RaceToIdle(p, 10, 4, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != len(freqs) {
		t.Fatalf("choices = %d", len(choices))
	}
	// Runtime shrinks with frequency; energy is non-monotone.
	for i := 1; i < len(choices); i++ {
		if choices[i].Seconds >= choices[i-1].Seconds {
			t.Fatal("runtime must shrink with frequency")
		}
	}
	// The energy optimum sits at or below the EDP optimum in frequency —
	// the canonical DVFS result.
	if choices[bestE].Hz > choices[bestEDP].Hz {
		t.Fatalf("energy optimum %v Hz above EDP optimum %v Hz",
			choices[bestE].Hz, choices[bestEDP].Hz)
	}
	// With substantial static power the highest frequency must not be the
	// energy optimum... unless static dominates; with these numbers the
	// optimum is interior or at an extreme — just check consistency:
	for i, c := range choices {
		if c.Joules < choices[bestE].Joules || c.EDP < choices[bestEDP].EDP {
			t.Fatalf("optimum indices wrong at %d", i)
		}
	}
}

func TestRaceToIdleErrors(t *testing.T) {
	p := model()
	if _, _, _, err := RaceToIdle(p, 0, 1, []float64{1e9}); err == nil {
		t.Fatal("zero work must fail")
	}
	if _, _, _, err := RaceToIdle(p, 1, 1, nil); err == nil {
		t.Fatal("no frequencies must fail")
	}
	if _, _, _, err := RaceToIdle(p, 1, 1, []float64{-1}); err == nil {
		t.Fatal("negative frequency must fail")
	}
	if _, _, _, err := RaceToIdle(PowerModel{}, 1, 1, []float64{1e9}); err == nil {
		t.Fatal("invalid model must fail")
	}
}

// Property: energy accounting is linear in runtime (twice the runtime at
// the same power is twice the energy, 4x the EDP).
func TestQuickEnergyLinearity(t *testing.T) {
	p := model()
	f := func(tRaw uint16) bool {
		tv := float64(tRaw%1000)/100 + 0.01
		m1 := &metrics.Measurement{Seconds: []float64{tv}}
		m2 := &metrics.Measurement{Seconds: []float64{2 * tv}}
		r1, err1 := p.Account(m1, 2, p.NominalHz)
		r2, err2 := p.Account(m2, 2, p.NominalHz)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r2.Joules-2*r1.Joules) < 1e-9 &&
			math.Abs(r2.EDP-4*r1.EDP) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
