package benchgate

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func regressionReport(t *testing.T) *Report {
	t.Helper()
	base := mkBaseline("BenchmarkSmoke/slow", jittered(1000, 10, 0.01))
	base.Benchmarks["BenchmarkSmoke/fast"] = BaselineBench{NsPerOp: jittered(1000, 10, 0.01)}
	cand := mkBaseline("BenchmarkSmoke/slow", jittered(1200, 10, 0.01))
	cand.Benchmarks["BenchmarkSmoke/fast"] = BaselineBench{NsPerOp: jittered(700, 10, 0.01)}
	return Compare(base, cand, Config{})
}

func TestMarkdownTable(t *testing.T) {
	r := regressionReport(t)
	md := r.Markdown()
	for _, want := range []string{
		"## Benchmark gate",
		"| benchmark | base ns/op (cv) | cand ns/op (cv) | Δ | gate ≥ | p | verdict |",
		"BenchmarkSmoke/slow",
		"**REGRESSION**",
		"improvement",
		"FAIL",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestGitHubAnnotations(t *testing.T) {
	r := regressionReport(t)
	var buf bytes.Buffer
	r.GitHubAnnotations(&buf)
	out := buf.String()
	if !strings.Contains(out, "::error title=benchmark regression::BenchmarkSmoke/slow") {
		t.Fatalf("missing ::error annotation:\n%s", out)
	}
	if !strings.Contains(out, "::notice title=benchmark improvement::BenchmarkSmoke/fast") {
		t.Fatalf("missing ::notice annotation:\n%s", out)
	}

	// Missing benchmarks gate regardless of environment, so they annotate
	// as ::error even in advisory reports.
	gone := Compare(mkBaseline("BenchmarkSmoke/gone", jittered(1000, 10, 0.01)),
		mkBaseline("BenchmarkSmoke/other", jittered(1000, 10, 0.01)), Config{})
	buf.Reset()
	gone.GitHubAnnotations(&buf)
	if !strings.Contains(buf.String(), "::error title=benchmark missing::BenchmarkSmoke/gone") {
		t.Fatalf("missing benchmark not an ::error:\n%s", buf.String())
	}

	// Advisory (env mismatch): regressions downgrade to warnings.
	base := mkBaseline("BenchmarkSmoke/slow", jittered(1000, 10, 0.01))
	cand := mkBaseline("BenchmarkSmoke/slow", jittered(1200, 10, 0.01))
	cand.Env.NumCPU = 2
	buf.Reset()
	Compare(base, cand, Config{}).GitHubAnnotations(&buf)
	out = buf.String()
	if !strings.Contains(out, "::warning title=benchmark regression::") {
		t.Fatalf("advisory regression not downgraded:\n%s", out)
	}
	if !strings.Contains(out, "::notice title=benchgate environment mismatch::") {
		t.Fatalf("env mismatch notice missing:\n%s", out)
	}
}

func TestWriteJSONSummary(t *testing.T) {
	r := regressionReport(t)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Failed      bool   `json:"failed"`
		Counts      Counts `json:"counts"`
		EnvMatch    bool   `json:"env_match"`
		Comparisons []struct {
			Name    string `json:"name"`
			Verdict string `json:"verdict"`
		} `json:"comparisons"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("summary not valid JSON: %v\n%s", err, buf.String())
	}
	if !got.Failed || got.Counts.Regressions != 1 || got.Counts.Improvements != 1 {
		t.Fatalf("summary = %+v", got)
	}
	if !got.EnvMatch {
		t.Fatal("env match lost in JSON")
	}
	if got.Comparisons[0].Verdict != "REGRESSION" {
		t.Fatalf("verdict rendering = %+v", got.Comparisons[0])
	}
}

func TestSummaryLine(t *testing.T) {
	r := regressionReport(t)
	s := r.Summary()
	if !strings.Contains(s, "1 regression(s)") || !strings.Contains(s, "FAIL") {
		t.Fatalf("summary = %q", s)
	}
}
