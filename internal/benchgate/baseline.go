package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// Baselines persist one recorded benchmark run as versioned JSON at the
// repository root: BENCH_1.json, BENCH_2.json, ... A baseline is an
// artifact in the reproducibility-engineering sense — it carries the raw
// per-benchmark samples (not just means, so future comparisons can apply
// their own statistics), the environment it was recorded in, and the
// protocol that produced it.

// SchemaVersion is the on-disk baseline format version.
const SchemaVersion = 1

// BaselineBench is one benchmark's recorded sample series.
type BaselineBench struct {
	NsPerOp     []float64 `json:"ns_per_op"`
	MBPerSec    []float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  []float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp []float64 `json:"allocs_per_op,omitempty"`
	// Noise is the relative spread of per-run mean ns/op across the
	// independent `go test` invocations that recorded this baseline
	// ((max-min)/min of run means). It captures machine-state drift that
	// per-sample statistics cannot see — two runs minutes apart on a busy
	// host differ systematically, not just per-sample — and the gate
	// requires a regression to exceed this recorded noise floor.
	Noise float64 `json:"noise_rel,omitempty"`
}

// Protocol records how a baseline was measured, so a refresh can
// reproduce the exact invocation.
type Protocol struct {
	Pkg       string `json:"pkg,omitempty"`
	Pattern   string `json:"pattern,omitempty"`
	Count     int    `json:"count,omitempty"`
	Benchtime string `json:"benchtime,omitempty"`
	// Runs is the number of independent `go test` invocations pooled into
	// the baseline (record mode); multiple runs let the baseline observe
	// cross-run machine drift, not just within-run variance.
	Runs int `json:"runs,omitempty"`
}

// Baseline is the versioned record of one benchmark run.
type Baseline struct {
	Schema     int                      `json:"schema"`
	Version    int                      `json:"version"`
	CreatedAt  string                   `json:"created_at,omitempty"`
	Env        Environment              `json:"env"`
	Protocol   Protocol                 `json:"protocol"`
	Benchmarks map[string]BaselineBench `json:"benchmarks"`
}

// Names returns the benchmark names in sorted order.
func (b *Baseline) Names() []string {
	names := make([]string, 0, len(b.Benchmarks))
	for n := range b.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FromResultSet converts a parsed run into a baseline. The environment is
// exactly what the run's headers describe — never the local host's: a
// parsed -input file may come from another machine, and backfilling host
// facts there could fake an environment match and wrongly turn advisory
// verdicts into binding gate failures. Runs measured in-process
// (RecordRun, CandidateRun) complete the environment themselves.
func FromResultSet(rs *ResultSet, proto Protocol, createdAt string) *Baseline {
	env := rs.Env
	if proto.Pkg == "" {
		proto.Pkg = rs.Pkg
	}
	b := &Baseline{
		Schema:     SchemaVersion,
		CreatedAt:  createdAt,
		Env:        env,
		Protocol:   proto,
		Benchmarks: make(map[string]BaselineBench, len(rs.Benchmarks)),
	}
	for name, s := range rs.Benchmarks {
		bb := BaselineBench{NsPerOp: s.NsPerOp()}
		if mem := s.BytesPerOp(); len(mem) > 0 {
			bb.BytesPerOp = mem
			bb.AllocsPerOp = s.AllocsPerOp()
		}
		mb := make([]float64, 0, len(s.Samples))
		for _, smp := range s.Samples {
			if smp.HasMB {
				mb = append(mb, smp.MBPerSec)
			}
		}
		if len(mb) > 0 {
			bb.MBPerSec = mb
		}
		b.Benchmarks[name] = bb
	}
	return b
}

// Save writes the baseline as indented JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file and validates the schema.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchgate: %s: schema %d, this build reads %d",
			path, b.Schema, SchemaVersion)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: %s: no benchmarks recorded", path)
	}
	return &b, nil
}

var baselineName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestBaselinePath returns the highest-versioned BENCH_<n>.json in dir,
// or an error when none exists.
func LatestBaselinePath(dir string) (string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	best := 0
	for _, e := range entries {
		m := baselineName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var v int
		fmt.Sscanf(m[1], "%d", &v)
		if v > best {
			best = v
		}
	}
	if best == 0 {
		return "", 0, fmt.Errorf("benchgate: no BENCH_<n>.json baseline in %s", dir)
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", best)), best, nil
}

// NextBaselinePath returns the path and version the next recorded baseline
// should use (one past the latest, starting at 1).
func NextBaselinePath(dir string) (string, int) {
	_, v, err := LatestBaselinePath(dir)
	if err != nil {
		v = 0
	}
	v++
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", v)), v
}
