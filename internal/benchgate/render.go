package benchgate

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Rendering of a comparison report in the three formats CI consumes:
// a markdown table (step summaries, PR comments), GitHub Actions
// ::error/::notice workflow annotations, and machine-readable JSON.

// Markdown renders the report as a markdown table with a verdict summary.
func (r *Report) Markdown() string {
	var sb strings.Builder
	sb.WriteString("## Benchmark gate\n\n")
	sb.WriteString(r.Summary() + "\n\n")
	if !r.EnvMatch {
		fmt.Fprintf(&sb, "> environment mismatch — baseline `%s` vs candidate `%s`; verdicts are advisory\n\n",
			r.BaseEnv, r.CandEnv)
	}
	sb.WriteString("| benchmark | base ns/op (cv) | cand ns/op (cv) | Δ | gate ≥ | p | verdict |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---|\n")
	for _, c := range r.Comparisons {
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s | %s |\n",
			markdownEscape(c.Name),
			nsCell(c.BaseMean, c.BaseCV, c.BaseN),
			nsCell(c.CandMean, c.CandCV, c.CandN),
			deltaCell(c), thresholdCell(c), pCell(c), verdictCell(c))
	}
	if len(r.Malformed) > 0 {
		fmt.Fprintf(&sb, "\n%d malformed benchmark line(s) were skipped.\n", len(r.Malformed))
	}
	return sb.String()
}

// The cell helpers run once per comparison per render; they build
// their strings with strconv so the row loop stays allocation-light.

func nsCell(mean, cv float64, n int) string {
	if n == 0 {
		return "—"
	}
	return strconv.FormatFloat(mean, 'f', 0, 64) +
		" ±" + strconv.FormatFloat(100*cv, 'f', 1, 64) + "%"
}

func deltaCell(c BenchComparison) string {
	if c.Verdict == Missing || c.Verdict == New {
		return "—"
	}
	s := strconv.FormatFloat(100*c.Delta, 'f', 1, 64)
	if c.Delta >= 0 {
		s = "+" + s
	}
	return s + "%"
}

func thresholdCell(c BenchComparison) string {
	if c.Threshold == 0 {
		return "—"
	}
	return strconv.FormatFloat(100*c.Threshold, 'f', 0, 64) + "%"
}

func pCell(c BenchComparison) string {
	if c.BaseN == 0 || c.CandN == 0 || c.Verdict == Indeterminate {
		return "—"
	}
	return strconv.FormatFloat(c.P, 'f', 4, 64)
}

func verdictCell(c BenchComparison) string {
	switch c.Verdict {
	case Regression, AllocRegression:
		return "**" + c.Verdict.String() + "**"
	default:
		return c.Verdict.String()
	}
}

func markdownEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}

// GitHubAnnotations writes GitHub Actions workflow commands: ::error for
// gating regressions and missing benchmarks (missing coverage gates
// regardless of environment), ::warning for advisory regressions,
// ::notice for improvements and new benchmarks.
func (r *Report) GitHubAnnotations(w io.Writer) {
	level := "error"
	if r.Advisory() {
		level = "warning"
	}
	for _, c := range r.Comparisons {
		switch c.Verdict {
		case Regression:
			fmt.Fprintf(w, "::%s title=benchmark regression::%s: %s\n",
				level, c.Name, c.Note)
		case AllocRegression:
			fmt.Fprintf(w, "::%s title=allocation regression::%s: %s\n",
				level, c.Name, c.Note)
		case Missing:
			fmt.Fprintf(w, "::error title=benchmark missing::%s: %s\n",
				c.Name, c.Note)
		case Improvement:
			fmt.Fprintf(w, "::notice title=benchmark improvement::%s: %s\n",
				c.Name, c.Note)
		case New:
			fmt.Fprintf(w, "::notice title=new benchmark::%s: %s\n",
				c.Name, c.Note)
		}
	}
	if !r.EnvMatch {
		fmt.Fprintf(w, "::notice title=benchgate environment mismatch::baseline %s vs candidate %s\n",
			r.BaseEnv, r.CandEnv)
	}
}

// WriteJSON writes the machine-readable summary: the full report plus the
// verdict tally and gate outcome.
func (r *Report) WriteJSON(w io.Writer) error {
	out := struct {
		*Report
		Counts Counts `json:"counts"`
		Failed bool   `json:"failed"`
	}{r, r.Counts(), r.Failed()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
