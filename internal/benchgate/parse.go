package benchgate

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Parsing of `go test -bench` text output into a ResultSet. The format is
// line-oriented:
//
//	goos: linux
//	goarch: amd64
//	pkg: perfeng
//	cpu: AMD EPYC 7763 64-Core Processor
//	BenchmarkSmoke/matmul-ikj/n=128-8    846    1416399 ns/op    12 B/op    3 allocs/op
//	...
//	PASS
//
// Sub-benchmark names contain '/'; the trailing -<n> go test appends when
// GOMAXPROCS > 1 is detected by consensus over the whole run (every
// benchmark carries the same suffix), stripped from the names, and
// recorded as Environment.Procs so runs at different GOMAXPROCS settings
// compare as an environment mismatch rather than silently merging.
// Repeated lines for the same name (from -count=N) accumulate as samples
// of one Series.

// ParseGoBench reads go test -bench output from r. It never fails on
// malformed benchmark lines — those are collected in ResultSet.Malformed —
// and only returns an error when r itself fails.
func ParseGoBench(r io.Reader) (*ResultSet, error) {
	rs := &ResultSet{Benchmarks: make(map[string]*Series)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"):
			rs.Env.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rs.Env.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rs.Env.CPUModel = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rs.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, smp, ok := parseBenchLine(line)
			if !ok {
				rs.Malformed = append(rs.Malformed, line)
				continue
			}
			s := rs.Benchmarks[name]
			if s == nil {
				s = &Series{Name: name}
				rs.Benchmarks[name] = s
			}
			s.Samples = append(s.Samples, smp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	stripRunProcsSuffix(rs)
	return rs, nil
}

// parseBenchLine parses one result line. A valid line has the benchmark
// name, an iteration count, and at least a "<value> ns/op" pair; B/op,
// allocs/op and MB/s pairs are optional.
func parseBenchLine(line string) (string, Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Sample{}, false
	}
	name := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return "", Sample{}, false
	}
	smp := Sample{Iterations: iters}
	sawNs := false
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || v < 0 {
			return "", Sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			smp.NsPerOp = v
			sawNs = true
		case "MB/s":
			smp.MBPerSec = v
			smp.HasMB = true
		case "B/op":
			smp.BytesPerOp = v
			smp.HasMem = true
		case "allocs/op":
			smp.AllocsPerOp = v
			smp.HasMem = true
		default:
			// Unknown unit (custom b.ReportMetric): ignore the pair, the
			// line is still valid if ns/op is present.
		}
	}
	if !sawNs {
		return "", Sample{}, false
	}
	return name, smp, true
}

// stripRunProcsSuffix removes the -<GOMAXPROCS> suffix go test appends to
// every benchmark name of a run ("BenchmarkFoo/n=128-8" ->
// "BenchmarkFoo/n=128"; absent when GOMAXPROCS=1) and records the value
// as Environment.Procs. The suffix is only recognized by consensus:
// every benchmark of the run must end in the same "-<digits>", which is
// exactly what go test produces. A lone trailing number is part of the
// benchmark's identity — a sub-benchmark like ".../shards-4" run at
// GOMAXPROCS=1, or two -cpu variants in one output — and is kept, so
// runs at different -cpu values never silently merge under one name.
func stripRunProcsSuffix(rs *ResultSet) {
	digits := ""
	for name := range rs.Benchmarks {
		d := trailingDigits(name)
		if d == "" || (digits != "" && d != digits) {
			return
		}
		digits = d
	}
	if digits == "" {
		return
	}
	suffix := "-" + digits
	renamed := make(map[string]*Series, len(rs.Benchmarks))
	for name, s := range rs.Benchmarks {
		short := strings.TrimSuffix(name, suffix)
		s.Name = short
		renamed[short] = s
	}
	rs.Benchmarks = renamed
	rs.Env.Procs, _ = strconv.Atoi(digits)
}

// trailingDigits returns the digits of a trailing "-<digits>" on name,
// or "" when there is none.
func trailingDigits(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 || i == len(name)-1 {
		return ""
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return ""
		}
	}
	return name[i+1:]
}
