package benchgate

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: perfeng
cpu: AMD EPYC 7763 64-Core Processor
BenchmarkSmoke/matmul-ikj/n=128-8         	     846	   1416399 ns/op	      12 B/op	       3 allocs/op
BenchmarkSmoke/matmul-ikj/n=128-8         	     850	   1410022 ns/op	      12 B/op	       3 allocs/op
BenchmarkSmoke/spmv-csr-8                 	    5000	    250123 ns/op	 512.50 MB/s	       0 B/op	       0 allocs/op
BenchmarkSmoke/spmv-csr-8                 	    5100	    248000 ns/op	 515.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkPlain-8                          	 1000000	      1234 ns/op
PASS
ok  	perfeng	1.234s
`

func TestParseGoBench(t *testing.T) {
	rs, err := ParseGoBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Env.GOOS != "linux" || rs.Env.GOARCH != "amd64" {
		t.Fatalf("env = %+v", rs.Env)
	}
	if rs.Env.CPUModel != "AMD EPYC 7763 64-Core Processor" {
		t.Fatalf("cpu = %q", rs.Env.CPUModel)
	}
	if rs.Pkg != "perfeng" {
		t.Fatalf("pkg = %q", rs.Pkg)
	}
	if rs.Len() != 3 {
		t.Fatalf("benchmarks = %v", rs.Names())
	}

	// Sub-benchmark name keeps its path, loses the -8 procs suffix, and
	// accumulates -count repetitions as samples.
	mm := rs.Benchmarks["BenchmarkSmoke/matmul-ikj/n=128"]
	if mm == nil {
		t.Fatalf("sub-benchmark missing: %v", rs.Names())
	}
	if len(mm.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(mm.Samples))
	}
	if mm.Samples[0].NsPerOp != 1416399 || mm.Samples[0].Iterations != 846 {
		t.Fatalf("sample = %+v", mm.Samples[0])
	}
	if !mm.Samples[0].HasMem || mm.Samples[0].BytesPerOp != 12 || mm.Samples[0].AllocsPerOp != 3 {
		t.Fatalf("benchmem columns lost: %+v", mm.Samples[0])
	}

	// MB/s column.
	sp := rs.Benchmarks["BenchmarkSmoke/spmv-csr"]
	if sp == nil || !sp.Samples[0].HasMB || sp.Samples[0].MBPerSec != 512.5 {
		t.Fatalf("MB/s lost: %+v", sp)
	}

	// A bench without -benchmem parses with HasMem=false.
	pl := rs.Benchmarks["BenchmarkPlain"]
	if pl == nil || pl.Samples[0].HasMem || pl.Samples[0].NsPerOp != 1234 {
		t.Fatalf("plain line = %+v", pl)
	}
	if len(rs.Malformed) != 0 {
		t.Fatalf("unexpected malformed lines: %v", rs.Malformed)
	}
}

func TestParseMalformedLines(t *testing.T) {
	in := `goos: linux
BenchmarkTruncated-8
BenchmarkBadIters-8     abc    100 ns/op
BenchmarkBadValue-8     100    xyz ns/op
BenchmarkNoNs-8         100    5 widgets/op
BenchmarkGood-8         100    5.0 ns/op
`
	rs, err := ParseGoBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Benchmarks["BenchmarkGood"] == nil {
		t.Fatalf("benchmarks = %v", rs.Names())
	}
	if len(rs.Malformed) != 4 {
		t.Fatalf("malformed = %d (%v), want 4", len(rs.Malformed), rs.Malformed)
	}
}

func TestParseCustomMetricIgnored(t *testing.T) {
	// b.ReportMetric adds custom units; the line stays valid.
	in := "BenchmarkCustom-8   100   50 ns/op   3.00 misses/op\n"
	rs, err := ParseGoBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := rs.Benchmarks["BenchmarkCustom"]
	if s == nil || s.Samples[0].NsPerOp != 50 {
		t.Fatalf("custom-metric line mishandled: %+v", s)
	}
}

func TestProcsSuffixConsensusStrip(t *testing.T) {
	// Every name of a GOMAXPROCS=8 run carries the same -8 suffix, so it
	// is stripped from all of them — including names whose own last
	// element ends in a number — and recorded as Env.Procs.
	in := `BenchmarkFoo-8            100  10 ns/op
BenchmarkFoo/n=128-8      100  10 ns/op
BenchmarkFoo/p=4/e=8-8    100  10 ns/op
BenchmarkFoo/name-x-8     100  10 ns/op
BenchmarkFoo/assoc=1-256-8  100  10 ns/op
`
	rs := parseText(t, in)
	for _, want := range []string{
		"BenchmarkFoo", "BenchmarkFoo/n=128", "BenchmarkFoo/p=4/e=8",
		"BenchmarkFoo/name-x", "BenchmarkFoo/assoc=1-256",
	} {
		if rs.Benchmarks[want] == nil {
			t.Errorf("missing %q after suffix strip: %v", want, rs.Names())
		}
	}
	if rs.Env.Procs != 8 {
		t.Errorf("Env.Procs = %d, want 8", rs.Env.Procs)
	}
}

func TestProcsSuffixKeptWithoutConsensus(t *testing.T) {
	// A GOMAXPROCS=1 run has no procs suffix; a sub-benchmark that
	// legitimately ends in a number must keep it. Consensus protects it:
	// the sibling without trailing digits vetoes stripping.
	rs := parseText(t, `BenchmarkFoo/shards-4  100  10 ns/op
BenchmarkFoo/serial    100  12 ns/op
`)
	if rs.Benchmarks["BenchmarkFoo/shards-4"] == nil || rs.Benchmarks["BenchmarkFoo/serial"] == nil {
		t.Fatalf("GOMAXPROCS=1 names mangled: %v", rs.Names())
	}
	if rs.Env.Procs != 0 {
		t.Errorf("Env.Procs = %d, want 0 (unknown)", rs.Env.Procs)
	}
}

func TestProcsSuffixMixedCPUValuesStayDistinct(t *testing.T) {
	// One output holding runs at -cpu 8,16 must not merge the two
	// variants under one name.
	rs := parseText(t, `BenchmarkFoo/n=128-8   100  10 ns/op
BenchmarkFoo/n=128-16  100  11 ns/op
`)
	if rs.Len() != 2 ||
		rs.Benchmarks["BenchmarkFoo/n=128-8"] == nil ||
		rs.Benchmarks["BenchmarkFoo/n=128-16"] == nil {
		t.Fatalf("-cpu variants merged: %v", rs.Names())
	}
	if rs.Env.Procs != 0 {
		t.Errorf("Env.Procs = %d, want 0 (ambiguous)", rs.Env.Procs)
	}
}

// TestRoundTrip is the satellite coverage: bench text -> typed results ->
// JSON baseline -> reload -> compare against itself must be all-unchanged.
func TestRoundTrip(t *testing.T) {
	rs, err := ParseGoBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := FromResultSet(rs, Protocol{Pattern: "^BenchmarkSmoke$", Count: 2}, "2026-08-05T00:00:00Z")
	// Parsed input keeps exactly the environment its headers describe —
	// the local host's CPU count and Go version must NOT be stamped in,
	// because the text may come from another machine and a fake match
	// would make the gate binding when it should be advisory.
	if b.Env.NumCPU != 0 || b.Env.GoVersion != "" {
		t.Fatalf("host facts leaked into parsed environment: %+v", b.Env)
	}
	if b.Env.GOOS != "linux" || b.Env.CPUModel == "" {
		t.Fatalf("header environment lost: %+v", b.Env)
	}

	path := t.TempDir() + "/BENCH_1.json"
	b.Version = 1
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Benchmarks) != len(b.Benchmarks) {
		t.Fatalf("round-trip lost benchmarks: %d vs %d", len(re.Benchmarks), len(b.Benchmarks))
	}
	mm := re.Benchmarks["BenchmarkSmoke/matmul-ikj/n=128"]
	if len(mm.NsPerOp) != 2 || mm.NsPerOp[0] != 1416399 {
		t.Fatalf("ns samples lost: %+v", mm)
	}
	if len(mm.AllocsPerOp) != 2 || mm.AllocsPerOp[0] != 3 {
		t.Fatalf("alloc samples lost: %+v", mm)
	}

	// Comparing a baseline against itself: nothing may regress (the
	// degenerate Welch case of two identical series yields p=1).
	rep := Compare(re, re, Config{MinSamples: 2})
	if rep.Failed() {
		t.Fatalf("self-comparison failed the gate: %s", rep.Summary())
	}
	for _, c := range rep.Comparisons {
		switch {
		case c.BaseN >= 2 && c.Verdict != Unchanged:
			t.Fatalf("self-comparison verdict %s for %s", c.Verdict, c.Name)
		case c.BaseN < 2 && c.Verdict != Indeterminate:
			// A single -count=1 sample cannot support a t-test.
			t.Fatalf("single-sample verdict %s for %s", c.Verdict, c.Name)
		}
	}
}
