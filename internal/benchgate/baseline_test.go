package benchgate

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineVersioning(t *testing.T) {
	dir := t.TempDir()

	// Empty dir: no latest, next is version 1.
	if _, _, err := LatestBaselinePath(dir); err == nil {
		t.Fatal("want error for empty dir")
	}
	path, v := NextBaselinePath(dir)
	if v != 1 || filepath.Base(path) != "BENCH_1.json" {
		t.Fatalf("next = %s v%d", path, v)
	}

	// Save BENCH_1 and BENCH_3 (a gap; refreshes may prune old files).
	b := mkBaseline("BenchmarkSmoke/x", []float64{1, 2, 3})
	b.Version = 1
	if err := b.Save(filepath.Join(dir, "BENCH_1.json")); err != nil {
		t.Fatal(err)
	}
	b.Version = 3
	if err := b.Save(filepath.Join(dir, "BENCH_3.json")); err != nil {
		t.Fatal(err)
	}
	// Distractors that must not match.
	os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_10.txt"), []byte("{}"), 0o644)

	path, v, err := LatestBaselinePath(dir)
	if err != nil || v != 3 || filepath.Base(path) != "BENCH_3.json" {
		t.Fatalf("latest = %s v%d err=%v", path, v, err)
	}
	path, v = NextBaselinePath(dir)
	if v != 4 || filepath.Base(path) != "BENCH_4.json" {
		t.Fatalf("next = %s v%d", path, v)
	}

	got, err := LoadBaseline(filepath.Join(dir, "BENCH_3.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || len(got.Benchmarks) != 1 {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestLoadBaselineRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"notjson.json": "not json at all",
		"schema.json":  `{"schema": 99, "benchmarks": {"b": {"ns_per_op": [1]}}}`,
		"empty.json":   `{"schema": 1, "benchmarks": {}}`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBaseline(p); err == nil {
			t.Errorf("%s: want load error", name)
		}
	}
	if _, err := LoadBaseline(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestEnvironmentMatches(t *testing.T) {
	a := Environment{GOOS: "linux", GOARCH: "amd64", CPUModel: "c", NumCPU: 8, GoVersion: "go1.24.0"}
	b := a
	if !a.Matches(b) {
		t.Fatal("identical envs must match")
	}
	b.GoVersion = "go1.23.0"
	if !a.Matches(b) {
		t.Fatal("go version alone must not break comparability")
	}
	b = a
	b.NumCPU = 4
	if a.Matches(b) {
		t.Fatal("CPU count change must break comparability")
	}
	b = a
	b.CPUModel = "other"
	if a.Matches(b) {
		t.Fatal("CPU model change must break comparability")
	}
	// GOMAXPROCS: strict when both runs recorded it, wildcard when either
	// predates the field (or ran at GOMAXPROCS=1, which leaves no suffix).
	a.Procs = 8
	b = a
	b.Procs = 4
	if a.Matches(b) {
		t.Fatal("GOMAXPROCS change must break comparability")
	}
	b.Procs = 0
	if !a.Matches(b) {
		t.Fatal("unknown GOMAXPROCS must not break comparability")
	}
}
