package benchgate

import (
	"fmt"
	"math"
	"sort"

	"perfeng/internal/stats"
)

// Comparison of a candidate run against a recorded baseline. The verdict
// logic is the course's measurement methodology turned into a gate:
//
//  1. outlier rejection (Tukey fences) on both ns/op series, because one
//     descheduled repetition must not decide a build;
//  2. Welch's t-test on the cleaned series — the *statistical* filter:
//     a difference only counts when p < alpha;
//  3. a minimum practical effect size — the *practical* filter: a
//     significant 0.4% drift is still noise at the scale CI cares about.
//
// Only a difference that passes both filters becomes a Regression (or an
// Improvement). Everything else is Unchanged.

// Config tunes the gate.
type Config struct {
	// Alpha is the family-wise significance level (default 0.05). It is
	// Bonferroni-corrected across the head-to-head comparisons of one
	// report, so gating ten benchmarks is no more likely to false-fail
	// than gating one.
	Alpha float64
	// MinEffect is the minimum practical relative change in mean ns/op
	// (default 0.05 = 5%); smaller deltas never fail the gate no matter
	// how significant.
	MinEffect float64
	// NoiseMargin scales each benchmark's recorded cross-run noise floor
	// (BaselineBench.Noise) into the practical threshold: a regression
	// must exceed max(MinEffect, NoiseMargin*Noise) to gate. Default 1.5.
	// Machine-state drift between runs is systematic, so it inflates the
	// mean without inflating within-run variance — the t-test alone
	// cannot reject it, the recorded floor can.
	NoiseMargin float64
	// MinSamples is the minimum per-side sample count after outlier
	// rejection for a statistical verdict (default 4).
	MinSamples int
	// OutlierK is the Tukey fence multiplier for pre-test outlier
	// rejection (default 1.5); negative disables rejection.
	OutlierK float64
	// StrictEnv makes environment mismatches fail the gate instead of
	// downgrading verdicts to advisory.
	StrictEnv bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	if c.MinEffect <= 0 {
		c.MinEffect = 0.05
	}
	if c.NoiseMargin <= 0 {
		c.NoiseMargin = 1.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.OutlierK == 0 {
		c.OutlierK = 1.5
	}
	return c
}

// Verdict classifies one benchmark's comparison.
type Verdict int

// Verdicts, ordered by severity for report sorting.
const (
	// Regression: statistically significant and practically large slowdown.
	Regression Verdict = iota
	// AllocRegression: the benchmark allocates more per op than the
	// baseline by at least MinEffect (allocs are near-deterministic, so
	// no t-test is needed).
	AllocRegression
	// Indeterminate: too few samples for a statistical verdict.
	Indeterminate
	// Missing: in the baseline but absent from the candidate run.
	Missing
	// New: in the candidate run but absent from the baseline.
	New
	// Unchanged: no significant-and-large difference.
	Unchanged
	// Improvement: statistically significant and practically large speedup.
	Improvement
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	return [...]string{"REGRESSION", "ALLOC-REGRESSION", "indeterminate",
		"missing", "new", "unchanged", "improvement"}[v]
}

// BenchComparison is the per-benchmark verdict.
type BenchComparison struct {
	Name    string  `json:"name"`
	Verdict Verdict `json:"-"`
	// VerdictName is the JSON rendering of Verdict.
	VerdictName string `json:"verdict"`
	// BaseMean/CandMean are mean ns/op after outlier rejection.
	BaseMean float64 `json:"base_ns_per_op,omitempty"`
	CandMean float64 `json:"cand_ns_per_op,omitempty"`
	// BaseCV/CandCV are the coefficients of variation of the cleaned series.
	BaseCV float64 `json:"base_cv,omitempty"`
	CandCV float64 `json:"cand_cv,omitempty"`
	// Delta is (CandMean-BaseMean)/BaseMean; positive = slower.
	Delta float64 `json:"delta,omitempty"`
	// Threshold is the practical effect floor applied to this benchmark:
	// max(MinEffect, NoiseMargin * recorded cross-run noise).
	Threshold float64 `json:"threshold,omitempty"`
	// P, T, DF are the Welch test outcome on ns/op.
	P  float64 `json:"p,omitempty"`
	T  float64 `json:"t,omitempty"`
	DF float64 `json:"df,omitempty"`
	// BaseN/CandN are sample counts after outlier rejection.
	BaseN int `json:"base_n,omitempty"`
	CandN int `json:"cand_n,omitempty"`
	// AllocDelta/BytesDelta are relative changes in allocs/op and B/op
	// means (NaN-free: 0 when either side lacks -benchmem data).
	AllocDelta float64 `json:"alloc_delta,omitempty"`
	BytesDelta float64 `json:"bytes_delta,omitempty"`
	Note       string  `json:"note,omitempty"`
}

// Report is the full comparison of a candidate run against a baseline.
type Report struct {
	Config      Config      `json:"config"`
	BaseEnv     Environment `json:"base_env"`
	CandEnv     Environment `json:"cand_env"`
	EnvMatch    bool        `json:"env_match"`
	BaseVersion int         `json:"base_version,omitempty"`
	// EffectiveAlpha is the Bonferroni-corrected per-benchmark level
	// actually applied: Alpha / #head-to-head comparisons.
	EffectiveAlpha float64           `json:"effective_alpha"`
	Comparisons    []BenchComparison `json:"comparisons"`
	Malformed      []string          `json:"malformed_lines,omitempty"`
}

// Compare runs the gate's statistics on every benchmark of the baseline
// and candidate. Comparisons are sorted most-severe-first, ties by name.
func Compare(base, cand *Baseline, cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Config:      cfg,
		BaseEnv:     base.Env,
		CandEnv:     cand.Env,
		EnvMatch:    base.Env.Matches(cand.Env),
		BaseVersion: base.Version,
	}
	shared := 0
	for _, name := range base.Names() {
		if _, ok := cand.Benchmarks[name]; ok {
			shared++
		}
	}
	r.EffectiveAlpha = cfg.Alpha
	if shared > 1 {
		r.EffectiveAlpha = cfg.Alpha / float64(shared)
	}
	for _, name := range base.Names() {
		bb := base.Benchmarks[name]
		cb, ok := cand.Benchmarks[name]
		if !ok {
			r.Comparisons = append(r.Comparisons, BenchComparison{
				Name: name, Verdict: Missing,
				Note: "in baseline but not in candidate run; record a fresh baseline to retire it",
			})
			continue
		}
		r.Comparisons = append(r.Comparisons, compareBench(name, bb, cb, cfg, r.EffectiveAlpha))
	}
	for _, name := range cand.Names() {
		if _, ok := base.Benchmarks[name]; !ok {
			cc := cand.Benchmarks[name]
			r.Comparisons = append(r.Comparisons, BenchComparison{
				Name: name, Verdict: New,
				CandMean: stats.Mean(cc.NsPerOp), CandN: len(cc.NsPerOp),
				Note: "benchmark not in baseline; record a new baseline to cover it",
			})
		}
	}
	sort.SliceStable(r.Comparisons, func(i, j int) bool {
		a, b := r.Comparisons[i], r.Comparisons[j]
		if a.Verdict != b.Verdict {
			return a.Verdict < b.Verdict
		}
		return a.Name < b.Name
	})
	for i := range r.Comparisons {
		r.Comparisons[i].VerdictName = r.Comparisons[i].Verdict.String()
	}
	return r
}

// compareBench produces one benchmark's verdict at the (already
// Bonferroni-corrected) per-benchmark significance level alpha.
func compareBench(name string, base, cand BaselineBench, cfg Config, alpha float64) BenchComparison {
	bs, cs := base.NsPerOp, cand.NsPerOp
	if cfg.OutlierK >= 0 {
		bs = stats.RejectIQR(bs, cfg.OutlierK)
		cs = stats.RejectIQR(cs, cfg.OutlierK)
	}
	c := BenchComparison{
		Name:     name,
		BaseMean: stats.Mean(bs), CandMean: stats.Mean(cs),
		BaseCV: stats.CoefficientOfVariation(bs),
		CandCV: stats.CoefficientOfVariation(cs),
		BaseN:  len(bs), CandN: len(cs),
	}
	if c.BaseMean > 0 {
		c.Delta = (c.CandMean - c.BaseMean) / c.BaseMean
	}
	c.AllocDelta = relDelta(base.AllocsPerOp, cand.AllocsPerOp)
	c.BytesDelta = relDelta(base.BytesPerOp, cand.BytesPerOp)

	if len(bs) < cfg.MinSamples || len(cs) < cfg.MinSamples {
		c.Verdict = Indeterminate
		c.Note = fmt.Sprintf("need >= %d samples per side after outlier rejection (have %d vs %d)",
			cfg.MinSamples, len(bs), len(cs))
		return c
	}
	w, err := stats.WelchTTest(bs, cs)
	if err != nil {
		c.Verdict = Indeterminate
		c.Note = err.Error()
		return c
	}
	c.P, c.T, c.DF = w.P, w.T, w.DF

	significant := w.Significant(alpha)
	c.Threshold = cfg.MinEffect
	if floor := cfg.NoiseMargin * base.Noise; floor > c.Threshold {
		c.Threshold = floor
	}
	large := math.Abs(c.Delta) >= c.Threshold
	// The time and allocation checks are independent: a change that trades
	// allocations for speed (caching, buffering) is both a wall-clock
	// improvement and an alloc regression, and the gate must still see the
	// regression. Severity picks the reported verdict — Regression >
	// AllocRegression > Improvement — and the note carries the other axis.
	allocReg := c.AllocDelta >= cfg.MinEffect
	switch {
	case significant && large && c.Delta > 0:
		c.Verdict = Regression
		c.Note = fmt.Sprintf("%.1f%% slower (p=%.4f)", 100*c.Delta, c.P)
		if allocReg {
			c.Note += fmt.Sprintf("; allocs/op up %.1f%%", 100*c.AllocDelta)
		}
	case allocReg:
		// Allocation counts are near-deterministic: a mean shift beyond
		// the practical threshold is a real change, not noise.
		c.Verdict = AllocRegression
		c.Note = fmt.Sprintf("allocs/op up %.1f%%", 100*c.AllocDelta)
		if significant && large && c.Delta < 0 {
			c.Note += fmt.Sprintf(" despite %.1f%% time improvement (p=%.4f)", -100*c.Delta, c.P)
		}
	case significant && large && c.Delta < 0:
		c.Verdict = Improvement
		c.Note = fmt.Sprintf("%.1f%% faster (p=%.4f)", -100*c.Delta, c.P)
	default:
		c.Verdict = Unchanged
	}
	return c
}

// relDelta returns (mean(cand)-mean(base))/mean(base), or 0 when either
// series is empty or the base mean is 0.
func relDelta(base, cand []float64) float64 {
	if len(base) == 0 || len(cand) == 0 {
		return 0
	}
	mb := stats.Mean(base)
	if mb == 0 {
		return 0
	}
	return (stats.Mean(cand) - mb) / mb
}
