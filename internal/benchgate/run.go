package benchgate

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"time"

	"perfeng/internal/stats"
)

// Running the benchmark protocol. The gate's canonical measurement is the
// smoke subset (BenchmarkSmoke in the root package) under -count
// repetitions with -benchmem, which yields the repeated samples the
// statistics need.

// DefaultProtocol is the canonical smoke-subset invocation; record, compare
// and gate all default to it so CI and local runs measure the same thing.
var DefaultProtocol = Protocol{
	Pkg:       "perfeng",
	Pattern:   "^BenchmarkSmoke$",
	Count:     10,
	Benchtime: "10ms",
	Runs:      3,
}

// RunGoBench executes `go test -run=^$ -bench=<pattern> -count=<n>
// -benchtime=<d> -benchmem <pkg>` in dir and returns the raw output. The
// benchmark text is returned even on a nonzero exit so callers can surface
// partial results alongside the error.
func RunGoBench(dir string, proto Protocol) ([]byte, error) {
	if proto.Pattern == "" {
		proto.Pattern = DefaultProtocol.Pattern
	}
	if proto.Count <= 0 {
		proto.Count = DefaultProtocol.Count
	}
	if proto.Benchtime == "" {
		proto.Benchtime = DefaultProtocol.Benchtime
	}
	pkg := proto.Pkg
	if pkg == "" || pkg == "perfeng" {
		pkg = "."
	}
	args := []string{"test", "-run", "^$",
		"-bench", proto.Pattern,
		"-count", strconv.Itoa(proto.Count),
		"-benchtime", proto.Benchtime,
		"-benchmem", pkg}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	if err != nil {
		err = fmt.Errorf("benchgate: go %v: %w", args, err)
	}
	return out.Bytes(), err
}

// RecordRun measures the protocol in dir — proto.Runs independent go test
// invocations, samples pooled — and converts the output into a baseline
// stamped with the current time and environment. With Runs > 1 the
// baseline also records each benchmark's cross-run noise floor.
func RecordRun(dir string, proto Protocol) (*Baseline, error) {
	sets, err := collectRuns(dir, proto)
	if err != nil {
		return nil, err
	}
	return completeHostEnv(MergeRuns(sets, proto, time.Now().UTC().Format(time.RFC3339))), nil
}

// CandidateRun measures the gate's candidate: proto.Runs independent
// invocations reduced per benchmark to the best run (see BestOfRuns).
func CandidateRun(dir string, proto Protocol) (*Baseline, error) {
	sets, err := collectRuns(dir, proto)
	if err != nil {
		return nil, err
	}
	return completeHostEnv(BestOfRuns(sets, proto, time.Now().UTC().Format(time.RFC3339))), nil
}

// collectRuns executes proto.Runs (>= 1) go test invocations and parses
// each one separately.
func collectRuns(dir string, proto Protocol) ([]*ResultSet, error) {
	runs := proto.Runs
	if runs <= 0 {
		runs = 1
	}
	sets := make([]*ResultSet, 0, runs)
	for i := 0; i < runs; i++ {
		//perfvet:ignore:allocattr each run forks go test; the subprocess dwarfs the argv slice
		out, err := RunGoBench(dir, proto)
		if err != nil {
			return nil, err
		}
		//perfvet:ignore:allocattr one read buffer per benchmark run; parsing subprocess output is not the hot path
		rs, err := ParseGoBench(bytes.NewReader(out))
		if err != nil {
			return nil, err
		}
		if rs.Len() == 0 {
			return nil, fmt.Errorf("benchgate: no benchmarks matched %q", proto.Pattern)
		}
		sets = append(sets, rs)
	}
	return sets, nil
}

// BestOfRuns builds a candidate from independent runs by keeping, per
// benchmark, the samples of the run with the lowest mean ns/op. Ambient
// noise is one-sided — a loaded machine or an unlucky process layout only
// ever slows a run down — so the best run is the closest observation of
// the code's true cost. A real regression slows every run, so it survives
// the selection; a transient bad machine state does not.
func BestOfRuns(sets []*ResultSet, proto Protocol, createdAt string) *Baseline {
	base := FromResultSet(sets[0], proto, createdAt)
	for _, rs := range sets[1:] {
		next := FromResultSet(rs, proto, createdAt)
		for name, nb := range next.Benchmarks {
			bb, ok := base.Benchmarks[name]
			if !ok || stats.Mean(nb.NsPerOp) < stats.Mean(bb.NsPerOp) {
				base.Benchmarks[name] = nb
			}
		}
	}
	return base
}

// MergeRuns pools independent runs of the same protocol into one baseline
// and records, per benchmark, the relative spread of per-run mean ns/op as
// the noise floor.
func MergeRuns(sets []*ResultSet, proto Protocol, createdAt string) *Baseline {
	base := FromResultSet(sets[0], proto, createdAt)
	runMeans := make(map[string][]float64)
	for name, s := range sets[0].Benchmarks {
		runMeans[name] = append(runMeans[name], stats.Mean(s.NsPerOp()))
	}
	for _, rs := range sets[1:] {
		next := FromResultSet(rs, proto, createdAt)
		for name, nb := range next.Benchmarks {
			bb, ok := base.Benchmarks[name]
			if !ok {
				base.Benchmarks[name] = nb
			} else {
				bb.NsPerOp = append(bb.NsPerOp, nb.NsPerOp...)
				bb.MBPerSec = append(bb.MBPerSec, nb.MBPerSec...)
				bb.BytesPerOp = append(bb.BytesPerOp, nb.BytesPerOp...)
				bb.AllocsPerOp = append(bb.AllocsPerOp, nb.AllocsPerOp...)
				base.Benchmarks[name] = bb
			}
			runMeans[name] = append(runMeans[name], stats.Mean(rs.Benchmarks[name].NsPerOp()))
		}
	}
	for name, means := range runMeans {
		if len(means) < 2 {
			continue
		}
		lo, hi := stats.Min(means), stats.Max(means)
		if lo > 0 {
			bb := base.Benchmarks[name]
			bb.Noise = (hi - lo) / lo
			base.Benchmarks[name] = bb
		}
	}
	return base
}

// completeHostEnv fills in the environment facts only the measuring
// process knows (CPU count, Go version, GOMAXPROCS when the run's names
// carried no suffix, i.e. the child go test ran at GOMAXPROCS=1). It is
// applied exclusively to runs measured in-process by RecordRun and
// CandidateRun — baselines parsed from -input files keep the environment
// their headers describe, because the file may have been recorded on a
// different machine.
func completeHostEnv(b *Baseline) *Baseline {
	if b.Env.NumCPU == 0 {
		b.Env.NumCPU = runtime.NumCPU()
	}
	if b.Env.GoVersion == "" {
		b.Env.GoVersion = runtime.Version()
	}
	if b.Env.Procs == 0 {
		b.Env.Procs = runtime.GOMAXPROCS(0)
	}
	return b
}
