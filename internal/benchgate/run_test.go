package benchgate

import (
	"strings"
	"testing"
)

// parseText is a test helper turning literal go test output into a ResultSet.
func parseText(t *testing.T, text string) *ResultSet {
	t.Helper()
	rs, err := ParseGoBench(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseGoBench: %v", err)
	}
	return rs
}

func TestBestOfRunsKeepsLowestMeanPerBench(t *testing.T) {
	// Run 1: A is fast, B is slow. Run 2: A is slow, B is fast.
	run1 := parseText(t, `
goos: linux
goarch: amd64
BenchmarkA-8	100	100 ns/op
BenchmarkA-8	100	110 ns/op
BenchmarkB-8	100	900 ns/op
BenchmarkB-8	100	910 ns/op
`)
	run2 := parseText(t, `
goos: linux
goarch: amd64
BenchmarkA-8	100	300 ns/op
BenchmarkA-8	100	310 ns/op
BenchmarkB-8	100	500 ns/op
BenchmarkB-8	100	510 ns/op
BenchmarkC-8	100	42 ns/op
`)
	b := BestOfRuns([]*ResultSet{run1, run2}, DefaultProtocol, "2026-01-01T00:00:00Z")

	a := b.Benchmarks["BenchmarkA"]
	if len(a.NsPerOp) != 2 || a.NsPerOp[0] != 100 {
		t.Fatalf("BenchmarkA should keep run 1 samples, got %v", a.NsPerOp)
	}
	bb := b.Benchmarks["BenchmarkB"]
	if len(bb.NsPerOp) != 2 || bb.NsPerOp[0] != 500 {
		t.Fatalf("BenchmarkB should keep run 2 samples, got %v", bb.NsPerOp)
	}
	// A benchmark present only in a later run is still carried over.
	if c, ok := b.Benchmarks["BenchmarkC"]; !ok || len(c.NsPerOp) != 1 {
		t.Fatalf("BenchmarkC missing from best-of selection: %+v", b.Benchmarks)
	}
}

func TestCollectRunsDefaultsToOneRun(t *testing.T) {
	// Protocol.Runs <= 0 must not mean zero invocations; exercised through
	// BestOfRuns/MergeRuns which require at least one set.
	p := DefaultProtocol
	p.Runs = 0
	rs := parseText(t, "BenchmarkA-8\t100\t100 ns/op\n")
	b := MergeRuns([]*ResultSet{rs}, p, "")
	if len(b.Benchmarks) != 1 {
		t.Fatalf("single-run merge lost benchmarks: %+v", b.Benchmarks)
	}
	if b.Benchmarks["BenchmarkA"].Noise != 0 {
		t.Fatalf("single run must not synthesize a noise floor")
	}
}
