// Package benchgate is the statistical benchmark-regression gate: it turns
// `go test -bench` output into typed sample series, persists them as
// versioned JSON baselines (BENCH_<n>.json), and compares a candidate run
// against a baseline with Welch's t-test so CI can fail a pull request on a
// statistically significant *and* practically large slowdown — and nothing
// else. Scheduler noise must not fail a build; a real regression must.
//
// The design follows the course's own methodology (repeated measurements,
// outlier rejection, significance testing, minimum practical effect) and
// the reproducibility-engineering literature in PAPERS.md: a benchmark is
// an artifact, so its results are recorded, versioned and re-verified
// automatically.
//
// The gate is metric-agnostic at the comparison layer: anything that
// yields repeated samples per named series (wall-clock ns/op today,
// internal/obs counter series or simulator cycle counts tomorrow) can be
// wrapped in a Baseline and gated with the same machinery.
package benchgate

import (
	"fmt"
	"sort"
)

// Sample is one repetition of one benchmark: the values of a single
// `go test -bench` result line.
type Sample struct {
	Iterations  int64   // the b.N iteration count of this repetition
	NsPerOp     float64 // wall-clock nanoseconds per operation
	MBPerSec    float64 // throughput, 0 when the bench does not SetBytes
	BytesPerOp  float64 // -benchmem bytes allocated per op (HasMem)
	AllocsPerOp float64 // -benchmem allocations per op (HasMem)
	HasMem      bool    // whether BytesPerOp/AllocsPerOp were reported
	HasMB       bool    // whether MBPerSec was reported
}

// Series is the repeated-sample record of one benchmark (one name across
// all -count repetitions).
type Series struct {
	Name    string
	Samples []Sample
}

// NsPerOp returns the ns/op values of all samples, the series the
// statistical comparison runs on.
func (s *Series) NsPerOp() []float64 {
	out := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.NsPerOp
	}
	return out
}

// BytesPerOp returns the B/op values of samples that carried -benchmem
// columns (nil when none did).
func (s *Series) BytesPerOp() []float64 {
	out := make([]float64, 0, len(s.Samples))
	for _, smp := range s.Samples {
		if smp.HasMem {
			out = append(out, smp.BytesPerOp)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// AllocsPerOp returns the allocs/op values of samples that carried
// -benchmem columns (nil when none did).
func (s *Series) AllocsPerOp() []float64 {
	out := make([]float64, 0, len(s.Samples))
	for _, smp := range s.Samples {
		if smp.HasMem {
			out = append(out, smp.AllocsPerOp)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Environment records where a benchmark run was taken. Wall-clock numbers
// are only comparable within one environment; the gate downgrades
// cross-environment verdicts to advisory unless told otherwise.
type Environment struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUModel  string `json:"cpu,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Procs is the GOMAXPROCS the run measured under, recovered from the
	// -<n> suffix go test appends to benchmark names (0 = unknown: a
	// GOMAXPROCS=1 run carries no suffix, and baselines recorded before
	// this field existed never stored it).
	Procs int `json:"gomaxprocs,omitempty"`
}

// Matches reports whether two environments are close enough that their
// wall-clock samples may be compared: same OS, architecture, CPU model and
// logical CPU count, and — when both runs recorded it — the same
// GOMAXPROCS. Go version differences are reported but do not break
// comparability (the compiler is part of what the gate should catch).
func (e Environment) Matches(o Environment) bool {
	return e.GOOS == o.GOOS && e.GOARCH == o.GOARCH &&
		e.CPUModel == o.CPUModel && e.NumCPU == o.NumCPU &&
		(e.Procs == 0 || o.Procs == 0 || e.Procs == o.Procs)
}

// String renders the environment compactly.
func (e Environment) String() string {
	s := fmt.Sprintf("%s/%s", e.GOOS, e.GOARCH)
	if e.CPUModel != "" {
		s += " " + e.CPUModel
	}
	if e.NumCPU > 0 {
		s += fmt.Sprintf(" (%d CPUs", e.NumCPU)
		if e.Procs > 0 && e.Procs != e.NumCPU {
			s += fmt.Sprintf(", GOMAXPROCS %d", e.Procs)
		}
		s += ")"
	}
	if e.GoVersion != "" {
		s += " " + e.GoVersion
	}
	return s
}

// ResultSet is one parsed benchmark run: every benchmark's repeated
// samples, plus the run headers go test prints.
type ResultSet struct {
	Env        Environment
	Pkg        string
	Benchmarks map[string]*Series
	// Malformed records lines that looked like benchmark results but did
	// not parse; callers surface them instead of silently dropping data.
	Malformed []string
}

// Names returns the benchmark names in sorted order.
func (rs *ResultSet) Names() []string {
	names := make([]string, 0, len(rs.Benchmarks))
	for n := range rs.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of distinct benchmarks.
func (rs *ResultSet) Len() int { return len(rs.Benchmarks) }
