package benchgate

import (
	"math"
	"strings"
	"testing"
)

// mkBaseline builds a baseline with one benchmark whose ns/op samples are
// base*(1+jitter_i), in a fixed environment.
func mkBaseline(name string, samples []float64) *Baseline {
	env := Environment{GOOS: "linux", GOARCH: "amd64",
		CPUModel: "test-cpu", NumCPU: 8, GoVersion: "go1.24.0"}
	return &Baseline{
		Schema: SchemaVersion, Version: 1, Env: env,
		Benchmarks: map[string]BaselineBench{
			name: {NsPerOp: samples},
		},
	}
}

// jittered returns n samples around mean with a small deterministic
// zig-zag jitter (relative amplitude amp), so variance is realistic but
// the test is reproducible.
func jittered(mean float64, n int, amp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		// Vary the amplitude a little so the series is not two-valued.
		out[i] = mean * (1 + sign*amp*(0.5+float64(i%3)/4))
	}
	return out
}

func TestGatePassesOnUnchanged(t *testing.T) {
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	cand := mkBaseline("BenchmarkSmoke/x", jittered(1005, 10, 0.01))
	r := Compare(base, cand, Config{})
	if r.Failed() {
		t.Fatalf("0.5%% drift failed the gate: %s", r.Summary())
	}
	if r.Comparisons[0].Verdict != Unchanged {
		t.Fatalf("verdict = %s", r.Comparisons[0].Verdict)
	}
}

// TestGateFailsOnDoctoredSlowdown is the acceptance-criterion test: a >5%
// statistically significant slowdown must fail the gate.
func TestGateFailsOnDoctoredSlowdown(t *testing.T) {
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	// Doctored candidate: every sample 10% slower.
	cand := mkBaseline("BenchmarkSmoke/x", jittered(1100, 10, 0.01))
	r := Compare(base, cand, Config{})
	if !r.Failed() {
		t.Fatalf("10%% slowdown passed the gate: %s", r.Summary())
	}
	c := r.Comparisons[0]
	if c.Verdict != Regression {
		t.Fatalf("verdict = %s, want REGRESSION", c.Verdict)
	}
	if c.Delta < 0.05 || c.P >= 0.05 {
		t.Fatalf("regression stats implausible: delta=%v p=%v", c.Delta, c.P)
	}
}

func TestGateIgnoresSignificantButSmallDrift(t *testing.T) {
	// 2% slower with tiny variance: statistically significant, but below
	// the 5% practical threshold — scheduler-noise-scale drift must pass.
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.001))
	cand := mkBaseline("BenchmarkSmoke/x", jittered(1020, 10, 0.001))
	r := Compare(base, cand, Config{})
	c := r.Comparisons[0]
	if c.P >= 0.05 {
		t.Fatalf("test setup broken: drift not significant (p=%v)", c.P)
	}
	if r.Failed() || c.Verdict != Unchanged {
		t.Fatalf("small significant drift failed the gate: %+v", c)
	}
}

func TestGateIgnoresLargeButNoisyDifference(t *testing.T) {
	// 8% slower but with 40% noise on 5 samples: not significant.
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 5, 0.4))
	cand := mkBaseline("BenchmarkSmoke/x", jittered(1080, 5, 0.4))
	r := Compare(base, cand, Config{OutlierK: -1})
	c := r.Comparisons[0]
	if c.Verdict == Regression {
		t.Fatalf("noisy difference regressed: p=%v delta=%v", c.P, c.Delta)
	}
	if r.Failed() {
		t.Fatalf("noisy difference failed the gate: %s", r.Summary())
	}
}

func TestGateDetectsImprovement(t *testing.T) {
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	cand := mkBaseline("BenchmarkSmoke/x", jittered(800, 10, 0.01))
	r := Compare(base, cand, Config{})
	if r.Failed() {
		t.Fatal("improvement failed the gate")
	}
	if r.Comparisons[0].Verdict != Improvement {
		t.Fatalf("verdict = %s", r.Comparisons[0].Verdict)
	}
}

func TestOutlierRejectionSavesTheBuild(t *testing.T) {
	// One wild outlier in the candidate (a descheduled repetition) must
	// not produce a regression verdict.
	cs := jittered(1000, 11, 0.01)
	cs[5] = 5000 // 5x spike
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 11, 0.01))
	cand := mkBaseline("BenchmarkSmoke/x", cs)
	r := Compare(base, cand, Config{})
	c := r.Comparisons[0]
	if c.CandN != 10 {
		t.Fatalf("outlier not rejected: n=%d", c.CandN)
	}
	if r.Failed() {
		t.Fatalf("outlier failed the gate: %+v", c)
	}
}

func TestEnvMismatchIsAdvisory(t *testing.T) {
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	cand := mkBaseline("BenchmarkSmoke/x", jittered(2000, 10, 0.01))
	cand.Env.CPUModel = "other-cpu"
	r := Compare(base, cand, Config{})
	if r.EnvMatch {
		t.Fatal("environments should differ")
	}
	if !r.Advisory() || r.Failed() {
		t.Fatalf("cross-environment comparison must be advisory: %s", r.Summary())
	}
	// The regression is still *reported*, just not gating.
	if r.Comparisons[0].Verdict != Regression {
		t.Fatalf("verdict = %s", r.Comparisons[0].Verdict)
	}
	// StrictEnv restores gating.
	r = Compare(base, cand, Config{StrictEnv: true})
	if !r.Failed() {
		t.Fatal("StrictEnv must gate across environments")
	}
}

func TestAllocRegression(t *testing.T) {
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	cand := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	bb := base.Benchmarks["BenchmarkSmoke/x"]
	bb.AllocsPerOp = []float64{3, 3, 3}
	base.Benchmarks["BenchmarkSmoke/x"] = bb
	cb := cand.Benchmarks["BenchmarkSmoke/x"]
	cb.AllocsPerOp = []float64{7, 7, 7}
	cand.Benchmarks["BenchmarkSmoke/x"] = cb
	r := Compare(base, cand, Config{})
	if !r.Failed() {
		t.Fatalf("alloc regression passed: %s", r.Summary())
	}
	if r.Comparisons[0].Verdict != AllocRegression {
		t.Fatalf("verdict = %s", r.Comparisons[0].Verdict)
	}
	if math.Abs(r.Comparisons[0].AllocDelta-4.0/3.0) > 1e-9 {
		t.Fatalf("alloc delta = %v", r.Comparisons[0].AllocDelta)
	}
}

func TestAllocRegressionNotMaskedByTimeImprovement(t *testing.T) {
	// The classic tradeoff: caching makes the op 20% faster but doubles
	// allocs/op. The time improvement must not hide the alloc regression.
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	cand := mkBaseline("BenchmarkSmoke/x", jittered(800, 10, 0.01))
	bb := base.Benchmarks["BenchmarkSmoke/x"]
	bb.AllocsPerOp = []float64{3, 3, 3}
	base.Benchmarks["BenchmarkSmoke/x"] = bb
	cb := cand.Benchmarks["BenchmarkSmoke/x"]
	cb.AllocsPerOp = []float64{6, 6, 6}
	cand.Benchmarks["BenchmarkSmoke/x"] = cb
	r := Compare(base, cand, Config{})
	c := r.Comparisons[0]
	if c.Verdict != AllocRegression {
		t.Fatalf("verdict = %s, want ALLOC-REGRESSION", c.Verdict)
	}
	if !r.Failed() {
		t.Fatalf("alloc regression masked by time improvement: %s", r.Summary())
	}
	// The note still surfaces the wall-clock win.
	if !strings.Contains(c.Note, "improvement") {
		t.Fatalf("note lost the time axis: %q", c.Note)
	}

	// And the reverse pairing: a time regression that also allocates more
	// stays a (time) Regression, the more severe verdict.
	cand = mkBaseline("BenchmarkSmoke/x", jittered(1200, 10, 0.01))
	cb = cand.Benchmarks["BenchmarkSmoke/x"]
	cb.AllocsPerOp = []float64{6, 6, 6}
	cand.Benchmarks["BenchmarkSmoke/x"] = cb
	r = Compare(base, cand, Config{})
	if r.Comparisons[0].Verdict != Regression || !r.Failed() {
		t.Fatalf("combined regression misclassified: %+v", r.Comparisons[0])
	}
}

func TestMissingAndNewBenchmarks(t *testing.T) {
	base := mkBaseline("BenchmarkSmoke/old", jittered(1000, 10, 0.01))
	cand := mkBaseline("BenchmarkSmoke/new", jittered(1000, 10, 0.01))
	r := Compare(base, cand, Config{})
	counts := r.Counts()
	if counts.Missing != 1 || counts.New != 1 {
		t.Fatalf("counts = %+v", counts)
	}
	// A benchmark that vanished from the candidate run fails the gate —
	// deleting or renaming a gated benchmark must not be a silent bypass —
	// even across environments, since presence is wall-clock-independent.
	if !r.Failed() {
		t.Fatal("missing benchmark must fail the gate")
	}
	cand.Env.CPUModel = "other-cpu"
	r = Compare(base, cand, Config{})
	if !r.Advisory() || !r.Failed() {
		t.Fatalf("missing benchmark must fail even when advisory: %s", r.Summary())
	}

	// A purely new benchmark (candidate superset) only notifies.
	cand = mkBaseline("BenchmarkSmoke/old", jittered(1000, 10, 0.01))
	cand.Benchmarks["BenchmarkSmoke/new"] = BaselineBench{NsPerOp: jittered(1000, 10, 0.01)}
	r = Compare(base, cand, Config{})
	if r.Failed() {
		t.Fatal("new benchmarks must not fail the gate")
	}
}

func TestTooFewSamplesIsIndeterminate(t *testing.T) {
	base := mkBaseline("BenchmarkSmoke/x", []float64{1000, 1001})
	cand := mkBaseline("BenchmarkSmoke/x", []float64{5000, 5001})
	r := Compare(base, cand, Config{})
	if r.Comparisons[0].Verdict != Indeterminate {
		t.Fatalf("verdict = %s", r.Comparisons[0].Verdict)
	}
	if r.Failed() {
		t.Fatal("indeterminate must not fail the gate")
	}
}

func TestNoiseFloorWidensThreshold(t *testing.T) {
	// A benchmark that drifted 12% between baseline runs must not gate on
	// an 8% "regression" — that's within recorded machine noise ...
	base := mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01))
	bb := base.Benchmarks["BenchmarkSmoke/x"]
	bb.Noise = 0.12
	base.Benchmarks["BenchmarkSmoke/x"] = bb
	cand := mkBaseline("BenchmarkSmoke/x", jittered(1080, 10, 0.01))
	r := Compare(base, cand, Config{})
	c := r.Comparisons[0]
	if c.Threshold != 0.18 { // 1.5 * 0.12
		t.Fatalf("threshold = %v, want 0.18", c.Threshold)
	}
	if c.P >= 0.05 {
		t.Fatalf("test setup broken: shift not significant (p=%v)", c.P)
	}
	if r.Failed() || c.Verdict != Unchanged {
		t.Fatalf("within-noise drift failed the gate: %+v", c)
	}
	// ... but a shift beyond the noise floor still fails.
	cand = mkBaseline("BenchmarkSmoke/x", jittered(1250, 10, 0.01))
	r = Compare(base, cand, Config{})
	if !r.Failed() {
		t.Fatalf("25%% slowdown passed a 18%% threshold: %s", r.Summary())
	}
}

func TestMergeRunsRecordsNoise(t *testing.T) {
	mkSet := func(mean float64) *ResultSet {
		rs := &ResultSet{Benchmarks: map[string]*Series{}}
		rs.Env = Environment{GOOS: "linux", GOARCH: "amd64"}
		s := &Series{Name: "BenchmarkSmoke/x"}
		for _, v := range jittered(mean, 5, 0.01) {
			s.Samples = append(s.Samples, Sample{Iterations: 1, NsPerOp: v})
		}
		rs.Benchmarks[s.Name] = s
		return rs
	}
	b := MergeRuns([]*ResultSet{mkSet(1000), mkSet(1100), mkSet(1050)},
		Protocol{Runs: 3}, "")
	bb := b.Benchmarks["BenchmarkSmoke/x"]
	if len(bb.NsPerOp) != 15 {
		t.Fatalf("pooled samples = %d, want 15", len(bb.NsPerOp))
	}
	// Run means ~1000/1100/1050 -> noise ~ 0.10.
	if bb.Noise < 0.08 || bb.Noise > 0.12 {
		t.Fatalf("noise = %v, want ~0.10", bb.Noise)
	}
}

func TestBonferroniCorrection(t *testing.T) {
	env := Environment{GOOS: "linux", GOARCH: "amd64", CPUModel: "test-cpu", NumCPU: 8}
	base := &Baseline{Schema: SchemaVersion, Env: env, Benchmarks: map[string]BaselineBench{}}
	cand := &Baseline{Schema: SchemaVersion, Env: env, Benchmarks: map[string]BaselineBench{}}
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		base.Benchmarks["BenchmarkSmoke/"+n] = BaselineBench{NsPerOp: jittered(1000, 10, 0.01)}
		cand.Benchmarks["BenchmarkSmoke/"+n] = BaselineBench{NsPerOp: jittered(1000, 10, 0.01)}
	}
	r := Compare(base, cand, Config{Alpha: 0.05})
	if math.Abs(r.EffectiveAlpha-0.01) > 1e-12 {
		t.Fatalf("effective alpha = %v, want 0.05/5", r.EffectiveAlpha)
	}
	// A single benchmark keeps the uncorrected level.
	r = Compare(mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01)),
		mkBaseline("BenchmarkSmoke/x", jittered(1000, 10, 0.01)), Config{Alpha: 0.05})
	if r.EffectiveAlpha != 0.05 {
		t.Fatalf("effective alpha = %v, want 0.05", r.EffectiveAlpha)
	}
}

func TestReportOrdersRegressionsFirst(t *testing.T) {
	env := Environment{GOOS: "linux", GOARCH: "amd64", CPUModel: "test-cpu", NumCPU: 8}
	base := &Baseline{Schema: SchemaVersion, Env: env, Benchmarks: map[string]BaselineBench{
		"BenchmarkSmoke/a-fine": {NsPerOp: jittered(1000, 10, 0.01)},
		"BenchmarkSmoke/z-slow": {NsPerOp: jittered(1000, 10, 0.01)},
	}}
	cand := &Baseline{Schema: SchemaVersion, Env: env, Benchmarks: map[string]BaselineBench{
		"BenchmarkSmoke/a-fine": {NsPerOp: jittered(1000, 10, 0.01)},
		"BenchmarkSmoke/z-slow": {NsPerOp: jittered(1300, 10, 0.01)},
	}}
	r := Compare(base, cand, Config{})
	if r.Comparisons[0].Name != "BenchmarkSmoke/z-slow" || r.Comparisons[0].Verdict != Regression {
		t.Fatalf("regression not sorted first: %+v", r.Comparisons)
	}
}
