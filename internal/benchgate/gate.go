package benchgate

import "fmt"

// The gate decision: which comparison outcomes fail a build.

// Counts tallies the report's verdicts.
type Counts struct {
	Regressions   int `json:"regressions"`
	AllocRegs     int `json:"alloc_regressions"`
	Improvements  int `json:"improvements"`
	Unchanged     int `json:"unchanged"`
	Indeterminate int `json:"indeterminate"`
	Missing       int `json:"missing"`
	New           int `json:"new"`
}

// Counts computes the verdict tally.
func (r *Report) Counts() Counts {
	var c Counts
	for _, cmp := range r.Comparisons {
		switch cmp.Verdict {
		case Regression:
			c.Regressions++
		case AllocRegression:
			c.AllocRegs++
		case Improvement:
			c.Improvements++
		case Unchanged:
			c.Unchanged++
		case Indeterminate:
			c.Indeterminate++
		case Missing:
			c.Missing++
		case New:
			c.New++
		}
	}
	return c
}

// Advisory reports whether the comparison is advisory-only: the candidate
// ran in a different environment than the baseline, so wall-clock verdicts
// are not comparable and must not fail a build (unless StrictEnv).
func (r *Report) Advisory() bool {
	return !r.EnvMatch && !r.Config.StrictEnv
}

// Failed reports whether the gate should fail the build: at least one
// regression (time or alloc) in a comparable environment, or a benchmark
// that is in the baseline but missing from the candidate run. Missing
// coverage is about presence, not wall-clock, so it fails even when
// verdicts are advisory — otherwise deleting or renaming a gated
// benchmark would slip through with a warning on any mismatched runner.
// Retiring a benchmark deliberately means recording a fresh baseline.
func (r *Report) Failed() bool {
	c := r.Counts()
	if c.Missing > 0 {
		return true
	}
	if r.Advisory() {
		return false
	}
	return c.Regressions > 0 || c.AllocRegs > 0
}

// Summary renders the one-line gate outcome.
func (r *Report) Summary() string {
	c := r.Counts()
	s := fmt.Sprintf("benchgate: %d regression(s), %d alloc regression(s), %d improvement(s), %d unchanged",
		c.Regressions, c.AllocRegs, c.Improvements, c.Unchanged)
	if c.Indeterminate+c.Missing+c.New > 0 {
		s += fmt.Sprintf(" (%d indeterminate, %d missing, %d new)",
			c.Indeterminate, c.Missing, c.New)
	}
	if r.Advisory() {
		s += " [advisory: environment mismatch]"
	}
	switch {
	case r.Failed():
		s += " — FAIL"
	default:
		s += " — PASS"
	}
	return s
}
