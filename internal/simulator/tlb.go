package simulator

import "errors"

// TLB model: a fully-associative LRU translation buffer in front of the
// hierarchy. Large-stride walks that look merely "strided" to the caches
// become TLB-thrashing at page granularity — a distinct pathology with its
// own counter signature (Assignment 4's perf/PMU work includes dTLB
// events).

// TLB is a fully-associative, LRU translation lookaside buffer.
type TLB struct {
	Entries  int
	PageSize int

	clock  uint64
	pages  map[uint64]uint64 // page -> last use
	hits   uint64
	misses uint64
}

// NewTLB builds a TLB. entries must be positive; pageSize a positive power
// of two.
func NewTLB(entries, pageSize int) (*TLB, error) {
	if entries <= 0 {
		return nil, errors.New("simulator: TLB needs positive entry count")
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, errors.New("simulator: TLB page size must be a positive power of two")
	}
	return &TLB{Entries: entries, PageSize: pageSize,
		pages: make(map[uint64]uint64, entries)}, nil
}

// Access translates addr, returning true on a TLB hit.
func (t *TLB) Access(addr uint64) bool {
	t.clock++
	page := addr / uint64(t.PageSize)
	if _, ok := t.pages[page]; ok {
		t.hits++
		t.pages[page] = t.clock
		return true
	}
	t.misses++
	if len(t.pages) >= t.Entries {
		// Evict the LRU page.
		var victim uint64
		var oldest uint64 = ^uint64(0)
		for p, use := range t.pages {
			if use < oldest {
				victim, oldest = p, use
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.clock
	return false
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// MissRatio returns misses/accesses (0 when idle).
func (t *TLB) MissRatio() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.misses) / float64(total)
}

// Reset clears entries and counters.
func (t *TLB) Reset() {
	t.clock, t.hits, t.misses = 0, 0, 0
	t.pages = make(map[uint64]uint64, t.Entries)
}

// AttachTLB adds a TLB to the hierarchy: every demand access translates
// first. Pass nil to detach.
func (h *Hierarchy) AttachTLB(t *TLB) { h.tlb = t }

// TLB returns the attached TLB, if any.
func (h *Hierarchy) TLB() *TLB { return h.tlb }

// MeasuredAI returns the arithmetic intensity of a kernel using the
// hierarchy's measured DRAM traffic instead of the compulsory-traffic
// estimate: flops / bytes-actually-moved. This is the "cache-aware AI"
// refinement — a thrashing kernel's measured AI collapses below its
// compulsory AI, moving its roofline point left.
func MeasuredAI(flops float64, h *Hierarchy) float64 {
	b := h.MemTrafficBytes()
	if b <= 0 {
		return 0
	}
	return flops / b
}
