package simulator

import "errors"

// Branch-predictor model: a gshare-style table of 2-bit saturating
// counters. Together with the branchy-sum kernel (kernels.SumAbove) it
// reproduces the most famous perf-counter demonstration there is — "why is
// processing a sorted array faster" — with deterministic counter values
// (the PAPI_BR_MSP events of Assignment 4).

// BranchPredictor is a gshare predictor: the pattern-history table is
// indexed by PC XOR global history.
type BranchPredictor struct {
	// HistoryBits is the global-history length (0 = plain bimodal).
	HistoryBits int

	table   []uint8 // 2-bit counters, initialized weakly-not-taken (1)
	mask    uint64
	history uint64

	predictions uint64
	mispredicts uint64
}

// NewBranchPredictor builds a predictor with 2^tableBits counters.
func NewBranchPredictor(tableBits, historyBits int) (*BranchPredictor, error) {
	if tableBits < 1 || tableBits > 24 {
		return nil, errors.New("simulator: tableBits must be in [1, 24]")
	}
	if historyBits < 0 || historyBits > 32 {
		return nil, errors.New("simulator: historyBits must be in [0, 32]")
	}
	size := 1 << tableBits
	b := &BranchPredictor{
		HistoryBits: historyBits,
		table:       make([]uint8, size),
		mask:        uint64(size - 1),
	}
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
	return b, nil
}

// Branch records one executed branch at pc with the actual outcome and
// returns whether the prediction was correct.
func (b *BranchPredictor) Branch(pc uint64, taken bool) bool {
	idx := (pc ^ b.history) & b.mask
	counter := b.table[idx]
	predictTaken := counter >= 2

	correct := predictTaken == taken
	b.predictions++
	if !correct {
		b.mispredicts++
	}
	// Update the 2-bit counter.
	if taken && counter < 3 {
		b.table[idx] = counter + 1
	}
	if !taken && counter > 0 {
		b.table[idx] = counter - 1
	}
	// Shift the outcome into the global history.
	if b.HistoryBits > 0 {
		bit := uint64(0)
		if taken {
			bit = 1
		}
		b.history = ((b.history << 1) | bit) & ((1 << uint(b.HistoryBits)) - 1)
	}
	return correct
}

// Predictions returns the number of branches seen.
func (b *BranchPredictor) Predictions() uint64 { return b.predictions }

// Mispredicts returns the misprediction count.
func (b *BranchPredictor) Mispredicts() uint64 { return b.mispredicts }

// MispredictRate returns mispredicts/predictions (0 when idle).
func (b *BranchPredictor) MispredictRate() float64 {
	if b.predictions == 0 {
		return 0
	}
	return float64(b.mispredicts) / float64(b.predictions)
}

// Reset clears counters, table state and history.
func (b *BranchPredictor) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
	b.history = 0
	b.predictions, b.mispredicts = 0, 0
}

// TraceBranchySum replays the branch stream of the "sum elements above a
// threshold" loop over data: one conditional branch per element at a fixed
// PC. On sorted data the branch is a long run of not-taken followed by a
// long run of taken — nearly perfectly predictable; on random data it is a
// coin flip.
func TraceBranchySum(b *BranchPredictor, data []float64, threshold float64) {
	const branchPC = 0x401000
	for _, v := range data {
		b.Branch(branchPC, v >= threshold)
	}
}
