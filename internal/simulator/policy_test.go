package simulator

import "testing"

func TestPolicyStrings(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || RandomPolicy.String() != "random" {
		t.Fatal("policy names wrong")
	}
}

// TestLRUvsFIFO uses the classic discriminating pattern on a 1-set,
// 2-way cache: touch A, B, re-touch A (refreshing it under LRU but not
// FIFO), then bring in C. LRU evicts B and keeps A; FIFO evicts A.
func TestLRUvsFIFO(t *testing.T) {
	const (
		a     = uint64(0)
		b     = uint64(64)
		cAddr = uint64(128)
	)
	mk := func(p Policy) *Cache {
		c, err := NewCache("L1", 1, 2, 64)
		if err != nil {
			t.Fatal(err)
		}
		c.Policy = p
		return c
	}
	lru := mk(LRU)
	lru.Access(a, false)
	lru.Access(b, false)
	lru.Access(a, false) // refresh A
	lru.Access(cAddr, false)
	if !lru.Access(a, false) {
		t.Fatal("LRU should have kept the re-touched line A")
	}

	fifo := mk(FIFO)
	fifo.Access(a, false)
	fifo.Access(b, false)
	fifo.Access(a, false) // no refresh under FIFO
	fifo.Access(cAddr, false)
	// Check B first: probing A first would fill it back and evict B.
	if !fifo.Access(b, false) {
		t.Fatal("FIFO should have kept B")
	}
	if fifo.Access(a, false) {
		t.Fatal("FIFO should have evicted the oldest line A")
	}
}

func TestRandomPolicyIsDeterministicAndValid(t *testing.T) {
	run := func() uint64 {
		c, err := NewCache("L1", 4, 2, 64)
		if err != nil {
			t.Fatal(err)
		}
		c.Policy = RandomPolicy
		for i := uint64(0); i < 1000; i++ {
			c.Access(i*64*7%4096, i%3 == 0)
		}
		return c.Stats().Misses
	}
	m1, m2 := run(), run()
	if m1 != m2 {
		t.Fatalf("random policy not deterministic: %d vs %d", m1, m2)
	}
	if m1 == 0 {
		t.Fatal("workload should miss")
	}
}

// TestPolicyAblationOnLoop: a cyclic loop over assoc+1 lines is the LRU
// worst case (every access misses); random replacement breaks the cycle
// and hits sometimes.
func TestPolicyAblationOnLoop(t *testing.T) {
	loop := func(p Policy) float64 {
		c, err := NewCache("L1", 1, 4, 64)
		if err != nil {
			t.Fatal(err)
		}
		c.Policy = p
		// 5 lines cycling through a 4-way set.
		for rep := 0; rep < 400; rep++ {
			for l := uint64(0); l < 5; l++ {
				c.Access(l*64, false)
			}
		}
		return c.Stats().MissRatio()
	}
	lru := loop(LRU)
	rnd := loop(RandomPolicy)
	if lru < 0.99 {
		t.Fatalf("LRU on a cyclic overflow should always miss, got %v", lru)
	}
	if rnd >= lru {
		t.Fatalf("random (%v) should beat LRU (%v) on the cyclic pattern", rnd, lru)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb, err := NewTLB(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !tlb.Access(100) {
		t.Fatal("same page must hit")
	}
	// Fill 4 entries, then a 5th evicts the LRU (page 0).
	tlb.Access(1 * 4096)
	tlb.Access(2 * 4096)
	tlb.Access(3 * 4096)
	tlb.Access(4 * 4096)
	if tlb.Access(0) {
		t.Fatal("page 0 should have been evicted")
	}
	if tlb.MissRatio() <= 0 {
		t.Fatal("miss ratio wrong")
	}
	tlb.Reset()
	if tlb.Hits() != 0 || tlb.Misses() != 0 || tlb.MissRatio() != 0 {
		t.Fatal("reset incomplete")
	}
	if _, err := NewTLB(0, 4096); err == nil {
		t.Fatal("zero entries must fail")
	}
	if _, err := NewTLB(4, 1000); err == nil {
		t.Fatal("bad page size must fail")
	}
}

func TestTLBThrashVsCacheFriendly(t *testing.T) {
	// Page-stride walk: every access a new page -> TLB thrash, while the
	// caches see a simple strided stream. Unit-stride walk: near-zero TLB
	// misses. The contrast is what makes dTLB counters worth having.
	mk := func() *Hierarchy {
		l1, err := NewCache("L1", 64, 8, 64)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHierarchy(l1)
		if err != nil {
			t.Fatal(err)
		}
		tlb, err := NewTLB(64, 4096)
		if err != nil {
			t.Fatal(err)
		}
		h.AttachTLB(tlb)
		return h
	}
	thrash := mk()
	for i := 0; i < 10000; i++ {
		thrash.Load(uint64(i)*4096, 8) // one access per page, 10k pages
	}
	friendly := mk()
	for i := 0; i < 10000; i++ {
		friendly.Load(uint64(i)*8, 8) // unit stride: 512 accesses/page
	}
	if thrash.TLB().MissRatio() < 0.9 {
		t.Fatalf("page-stride TLB miss ratio = %v, want ~1", thrash.TLB().MissRatio())
	}
	if friendly.TLB().MissRatio() > 0.01 {
		t.Fatalf("unit-stride TLB miss ratio = %v, want ~0", friendly.TLB().MissRatio())
	}
	// Reset clears the TLB through the hierarchy.
	thrash.Reset()
	if thrash.TLB().MissRatio() != 0 {
		t.Fatal("hierarchy reset must clear the TLB")
	}
}

func TestMeasuredAI(t *testing.T) {
	// A single 32 KiB level: at n=96 (3 x 73 KiB matrices) naive matmul
	// thrashes it, so the measured DRAM traffic far exceeds the
	// compulsory estimate and the measured AI collapses.
	l1, err := NewCache("L1", 64, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(l1)
	if err != nil {
		t.Fatal(err)
	}
	if MeasuredAI(100, h) != 0 {
		t.Fatal("idle hierarchy must yield 0")
	}
	n := 96
	TraceMatMulNaive(h, n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	compulsoryAI := flops / (3 * float64(n) * float64(n) * 8)
	measured := MeasuredAI(flops, h)
	if measured <= 0 {
		t.Fatal("measured AI must be positive after a trace")
	}
	if measured >= compulsoryAI {
		t.Fatalf("measured AI %v should be below compulsory %v for naive matmul",
			measured, compulsoryAI)
	}
}

func TestBranchPredictorValidation(t *testing.T) {
	if _, err := NewBranchPredictor(0, 0); err == nil {
		t.Fatal("tableBits=0 must fail")
	}
	if _, err := NewBranchPredictor(30, 0); err == nil {
		t.Fatal("tableBits=30 must fail")
	}
	if _, err := NewBranchPredictor(10, 64); err == nil {
		t.Fatal("historyBits=64 must fail")
	}
	b, err := NewBranchPredictor(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.MispredictRate() != 0 {
		t.Fatal("idle predictor should report 0")
	}
}

func TestBranchPredictorSortedVsRandom(t *testing.T) {
	// The famous demo: one branch PC, sorted input (two long runs) vs
	// random input (coin flips).
	mk := func() *BranchPredictor {
		b, err := NewBranchPredictor(12, 8)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	n := 1 << 15
	sorted := mk()
	srt := make([]float64, n)
	for i := range srt {
		srt[i] = float64(i) / float64(n)
	}
	TraceBranchySum(sorted, srt, 0.5)

	random := mk()
	rnd := make([]float64, n)
	s := uint64(12345)
	for i := range rnd {
		s = s*6364136223846793005 + 1442695040888963407
		rnd[i] = float64(s>>11) / float64(1<<53)
	}
	TraceBranchySum(random, rnd, 0.5)

	if sorted.MispredictRate() > 0.01 {
		t.Fatalf("sorted data mispredict rate = %v, want ~0", sorted.MispredictRate())
	}
	if random.MispredictRate() < 0.3 {
		t.Fatalf("random data mispredict rate = %v, want ~0.5", random.MispredictRate())
	}
	if sorted.Predictions() != uint64(n) || random.Predictions() != uint64(n) {
		t.Fatal("prediction counts wrong")
	}
	// Reset restores a clean slate.
	random.Reset()
	if random.Predictions() != 0 || random.MispredictRate() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBranchPredictorLearnsPatternWithHistory(t *testing.T) {
	// A strictly alternating branch defeats a bimodal predictor but is
	// perfectly learnable with global history — the gshare lesson.
	bimodal, err := NewBranchPredictor(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	gshare, err := NewBranchPredictor(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		taken := i%2 == 0
		bimodal.Branch(0x400, taken)
		gshare.Branch(0x400, taken)
	}
	if bimodal.MispredictRate() < 0.4 {
		t.Fatalf("bimodal on alternating = %v, want ~0.5+", bimodal.MispredictRate())
	}
	if gshare.MispredictRate() > 0.05 {
		t.Fatalf("gshare on alternating = %v, want ~0 after warmup", gshare.MispredictRate())
	}
}
