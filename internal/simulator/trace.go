package simulator

import (
	"math/rand"

	"perfeng/internal/kernels"
)

// Trace replay: each function walks the logical address stream of a kernel
// through the hierarchy. Addresses are synthetic (arrays placed at fixed
// disjoint bases) — the simulator cares about structure, not values, which
// is exactly what distinguishes the access-pattern behaviour of kernel
// variants (Assignment 4).

// Array bases, spaced far apart so arrays never alias in the index bits.
const (
	baseA uint64 = 0x1000_0000
	baseB uint64 = 0x2000_0000
	baseC uint64 = 0x3000_0000
	baseX uint64 = 0x4000_0000
	baseY uint64 = 0x5000_0000
)

const w8 = 8 // sizeof(float64)

// TraceMatMulNaive replays the ijk matmul access stream for n x n matrices.
func TraceMatMulNaive(h *Hierarchy, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				h.Load(baseA+uint64(i*n+k)*w8, w8)
				h.Load(baseB+uint64(k*n+j)*w8, w8)
			}
			h.Store(baseC+uint64(i*n+j)*w8, w8)
		}
	}
}

// TraceMatMulIKJ replays the ikj (unit-stride) matmul access stream.
func TraceMatMulIKJ(h *Hierarchy, n int) {
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			h.Load(baseA+uint64(i*n+k)*w8, w8)
			for j := 0; j < n; j++ {
				h.Load(baseB+uint64(k*n+j)*w8, w8)
				h.Load(baseC+uint64(i*n+j)*w8, w8)
				h.Store(baseC+uint64(i*n+j)*w8, w8)
			}
		}
	}
}

// TraceMatMulTiled replays the tiled matmul access stream.
func TraceMatMulTiled(h *Hierarchy, n, tile int) {
	if tile <= 0 {
		tile = 32
	}
	for ii := 0; ii < n; ii += tile {
		for kk := 0; kk < n; kk += tile {
			for jj := 0; jj < n; jj += tile {
				for i := ii; i < minInt(ii+tile, n); i++ {
					for k := kk; k < minInt(kk+tile, n); k++ {
						h.Load(baseA+uint64(i*n+k)*w8, w8)
						for j := jj; j < minInt(jj+tile, n); j++ {
							h.Load(baseB+uint64(k*n+j)*w8, w8)
							h.Load(baseC+uint64(i*n+j)*w8, w8)
							h.Store(baseC+uint64(i*n+j)*w8, w8)
						}
					}
				}
			}
		}
	}
}

// TraceStreamTriad replays a[i] = b[i] + s*c[i] over n elements.
func TraceStreamTriad(h *Hierarchy, n int) {
	for i := 0; i < n; i++ {
		h.Load(baseB+uint64(i)*w8, w8)
		h.Load(baseC+uint64(i)*w8, w8)
		h.Store(baseA+uint64(i)*w8, w8)
	}
}

// TraceStrided replays n loads with the given element stride — the knob
// that demonstrates spatial-locality loss as stride grows past the line
// size.
func TraceStrided(h *Hierarchy, n, stride int) {
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < n; i++ {
		h.Load(baseA+uint64(i*stride)*w8, w8)
	}
}

// TraceRandom replays n loads at uniform random element offsets within a
// working set of wsElems elements — the latency-bound adversary.
func TraceRandom(h *Hierarchy, n, wsElems int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	if wsElems < 1 {
		wsElems = 1
	}
	for i := 0; i < n; i++ {
		h.Load(baseA+uint64(rng.Intn(wsElems))*w8, w8)
	}
}

// TraceHistogram replays the histogram kernel: stream the samples, scatter
// increments over bins (read-modify-write per sample).
func TraceHistogram(h *Hierarchy, samples []float64, bins int) {
	for i, s := range samples {
		h.Load(baseA+uint64(i)*w8, w8)
		b := int(s * float64(bins))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Load(baseB+uint64(b)*w8, w8)
		h.Store(baseB+uint64(b)*w8, w8)
	}
}

// TraceSpMVCSR replays y = A*x for a CSR matrix: unit-stride vals/colidx,
// gathers on x, streaming stores on y.
func TraceSpMVCSR(h *Hierarchy, a *kernels.CSR) {
	rp, ci := a.RowPtr, a.ColIdx
	for r := 0; r < len(rp)-1; r++ {
		h.Load(baseA+uint64(r)*4, 4)   // RowPtr[r] (RowPtr[r+1] hits the same or next line)
		h.Load(baseA+uint64(r+1)*4, 4) // RowPtr[r+1]
		for k := rp[r]; k < rp[r+1]; k++ {
			h.Load(baseB+uint64(k)*w8, w8) // Vals[k]
			h.Load(baseC+uint64(k)*4, 4)   // ColIdx[k]
			h.Load(baseX+uint64(ci[k])*w8, w8)
		}
		h.Store(baseY+uint64(r)*w8, w8)
	}
}

// TraceFalseSharing emulates two workers ping-ponging writes to adjacent
// elements that share one cache line (the false-sharing pattern). In a
// single hierarchy this appears as repeated writes to one hot line; the
// patterns package pairs it with per-thread counters.
func TraceFalseSharing(h *Hierarchy, iterations int) {
	for i := 0; i < iterations; i++ {
		h.Store(baseA+0, w8) // worker 0's counter
		h.Store(baseA+8, w8) // worker 1's counter, same 64B line
		h.Load(baseA+0, w8)
		h.Load(baseA+8, w8)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
