package ports

import (
	"math"
	"strings"
	"testing"

	"perfeng/internal/isa"
)

func TestAnalyzeDotProductLatencyBound(t *testing.T) {
	// The scalar dot product has a loop-carried FMA accumulator: on
	// Haswell (FMA latency 5) the latency bound is 5 cycles/iter, far
	// above the throughput bound.
	r, err := Analyze(isa.DotProductKernel(), isa.Haswell(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.LatencyBound-5) > 1e-9 {
		t.Fatalf("latency bound = %v, want 5", r.LatencyBound)
	}
	if r.Bottleneck != "dependency chain" {
		t.Fatalf("bottleneck = %q", r.Bottleneck)
	}
	if math.Abs(r.Predicted-5) > 1e-9 {
		t.Fatalf("predicted = %v", r.Predicted)
	}
	// Simulation must agree with the analytic bound within 10%.
	if math.Abs(r.Simulated-r.Predicted) > 0.1*r.Predicted {
		t.Fatalf("simulated %v vs predicted %v", r.Simulated, r.Predicted)
	}
}

func TestAnalyzeTriadThroughputBound(t *testing.T) {
	// The triad has no loop-carried dependency; it is throughput-bound.
	r, err := Analyze(isa.TriadKernel(), isa.Haswell(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if r.LatencyBound != 0 {
		t.Fatalf("latency bound = %v, want 0", r.LatencyBound)
	}
	// Store port (p4) carries 1.0 cycles/iter: the bottleneck.
	if math.Abs(r.ThroughputBound-1) > 1e-9 {
		t.Fatalf("throughput bound = %v, want 1", r.ThroughputBound)
	}
	if !strings.HasPrefix(r.Bottleneck, "port") {
		t.Fatalf("bottleneck = %q", r.Bottleneck)
	}
	if math.Abs(r.Simulated-1) > 0.15 {
		t.Fatalf("simulated = %v, want ~1", r.Simulated)
	}
}

func TestAnalyzeInOrderTableIsSlower(t *testing.T) {
	hw, _ := Analyze(isa.TriadKernel(), isa.Haswell(), 200)
	io, _ := Analyze(isa.TriadKernel(), isa.SimpleInOrder(), 200)
	if io.Predicted <= hw.Predicted {
		t.Fatalf("in-order %v should be slower than Haswell %v",
			io.Predicted, hw.Predicted)
	}
}

func TestUnrolledAccumulatorsBreakTheChain(t *testing.T) {
	// Two independent accumulators halve the per-iteration latency cost:
	// classic Assignment 2 lesson.
	one := &isa.Kernel{Name: "acc1", Body: []isa.Instr{
		{Op: isa.FMA, LoopCarried: []int{0}},
	}}
	two := &isa.Kernel{Name: "acc2", Body: []isa.Instr{
		{Op: isa.FMA, LoopCarried: []int{0}},
		{Op: isa.FMA, LoopCarried: []int{1}},
	}}
	r1, err := Analyze(one, isa.Haswell(), 400)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(two, isa.Haswell(), 400)
	if err != nil {
		t.Fatal(err)
	}
	// Same latency bound per iteration, but iteration 2 does twice the
	// work: cycles per FMA halves.
	perFMA1 := r1.Simulated / 1
	perFMA2 := r2.Simulated / 2
	if perFMA2 >= perFMA1*0.75 {
		t.Fatalf("two chains should be ~2x faster per FMA: %v vs %v", perFMA2, perFMA1)
	}
}

func TestGFLOPSAt(t *testing.T) {
	r := Result{Predicted: 2}
	// 2 FLOPs per iter at 1 GHz, 2 cycles/iter -> 1 GFLOP/s.
	if got := r.GFLOPSAt(1e9, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("GFLOPSAt = %v", got)
	}
	if (Result{}).GFLOPSAt(1e9, 2) != 0 {
		t.Fatal("zero prediction must yield 0")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&isa.Kernel{Name: "empty"}, isa.Haswell(), 10); err == nil {
		t.Fatal("empty body must error")
	}
	bad := &isa.Kernel{Name: "bad", Body: []isa.Instr{{Op: isa.FAdd, Deps: []int{3}}}}
	if _, err := Analyze(bad, isa.Haswell(), 10); err == nil {
		t.Fatal("invalid kernel must error")
	}
	badTbl := &isa.Table{Name: "x", NumPorts: 0}
	if _, err := Analyze(isa.TriadKernel(), badTbl, 10); err == nil {
		t.Fatal("invalid table must error")
	}
}

func TestMissingOpsReported(t *testing.T) {
	k := &isa.Kernel{Name: "vec", Body: []isa.Instr{{Op: isa.VecFMA}}}
	r, err := Analyze(k, isa.SimpleInOrder(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MissingOps) != 1 || r.MissingOps[0] != "vfma" {
		t.Fatalf("missing ops = %v", r.MissingOps)
	}
	if !strings.Contains(r.Report(), "fallback") {
		t.Fatal("report should warn about fallback timings")
	}
}

func TestReportAndString(t *testing.T) {
	r, _ := Analyze(isa.MatMulInnerKernel(), isa.Haswell(), 100)
	rep := r.Report()
	for _, want := range []string{"port pressure", "bottleneck", "predicted"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(r.String(), "cyc/iter") {
		t.Fatal("String incomplete")
	}
}

func TestSimulatedNeverBeatsAnalyticBound(t *testing.T) {
	for _, k := range []*isa.Kernel{
		isa.DotProductKernel(), isa.TriadKernel(), isa.MatMulInnerKernel(),
	} {
		r, err := Analyze(k, isa.Haswell(), 400)
		if err != nil {
			t.Fatal(err)
		}
		// The greedy schedule cannot beat the analytic lower bound by
		// more than numerical noise.
		if r.Simulated < r.Predicted-0.05 {
			t.Fatalf("%s: simulated %v below bound %v", k.Name, r.Simulated, r.Predicted)
		}
	}
}
