// Package ports implements an instruction-scheduler simulator in the
// spirit of IACA, OSACA and LLVM-MCA (the tools Assignment 2 introduces):
// given a loop body (isa.Kernel) and a microarchitecture timing table
// (isa.Table), it estimates the steady-state cycles per loop iteration and
// identifies the bottleneck — port pressure (throughput) or the
// loop-carried dependency chain (latency).
//
// Two estimates are produced. The analytical bound follows OSACA: the
// throughput bound is the pressure of the busiest port under an optimal
// distribution, the latency bound is the longest loop-carried dependency
// cycle; the prediction is their maximum. The greedy simulator schedules N
// unrolled iterations on the actual ports and reports measured
// cycles/iteration, which converges to the analytical bound for regular
// bodies and exceeds it when dependencies serialize issue.
package ports

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"perfeng/internal/isa"
)

// Result is the verdict of one kernel analysis.
type Result struct {
	Kernel string
	Table  string
	// ThroughputBound is the best-case cycles/iteration from port
	// pressure alone (OSACA "TP").
	ThroughputBound float64
	// LatencyBound is the loop-carried critical-path length in cycles
	// (OSACA "LCD").
	LatencyBound float64
	// Predicted is max(ThroughputBound, LatencyBound).
	Predicted float64
	// Simulated is the greedy scheduler's steady-state cycles/iteration.
	Simulated float64
	// PortPressure is the per-port busy time per iteration under the
	// analytic distribution.
	PortPressure []float64
	// Bottleneck names the limiting resource: "port N" or "dependency
	// chain".
	Bottleneck string
	// MissingOps lists ops that were absent from the table (fallback
	// timing applied).
	MissingOps []string
}

// GFLOPSAt converts the prediction into GFLOP/s at the given core clock.
func (r Result) GFLOPSAt(freqHz, flopsPerIter float64) float64 {
	if r.Predicted <= 0 {
		return 0
	}
	return flopsPerIter / (r.Predicted / freqHz) / 1e9
}

// String renders a compact report line.
func (r Result) String() string {
	return fmt.Sprintf("%s on %s: TP %.2f, LCD %.2f, predicted %.2f, simulated %.2f cyc/iter (%s)",
		r.Kernel, r.Table, r.ThroughputBound, r.LatencyBound, r.Predicted, r.Simulated, r.Bottleneck)
}

// Analyze runs both the analytical bound and the greedy simulation
// (simIters unrolled iterations, default 200 when <= 0).
func Analyze(k *isa.Kernel, tbl *isa.Table, simIters int) (*Result, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := tbl.Validate(); err != nil {
		return nil, err
	}
	if len(k.Body) == 0 {
		return nil, errors.New("ports: empty kernel body")
	}
	if simIters <= 0 {
		simIters = 200
	}

	res := &Result{Kernel: k.Name, Table: tbl.Name,
		PortPressure: make([]float64, tbl.NumPorts)}
	pressure := res.PortPressure

	// Analytic port pressure: distribute each instruction's reciprocal
	// throughput evenly over its eligible ports (the OSACA heuristic).
	// Missing ops are deduplicated with a linear scan instead of a set:
	// Analyze runs per case inside validation sweeps, and the common
	// clean path should not allocate a map to record nothing.
	for _, in := range k.Body {
		tm, ok := tbl.Lookup(in.Op)
		if !ok {
			op := in.Op.String()
			if !slices.Contains(res.MissingOps, op) {
				res.MissingOps = append(res.MissingOps, op)
			}
		}
		share := tm.RecipThroughput / float64(len(tm.Ports))
		for _, p := range tm.Ports {
			pressure[p] += share
		}
	}
	sort.Strings(res.MissingOps)

	maxPort, maxPressure := 0, 0.0
	for p, v := range res.PortPressure {
		if v > maxPressure {
			maxPort, maxPressure = p, v
		}
	}
	res.ThroughputBound = maxPressure
	res.LatencyBound = loopCarriedCriticalPath(k, tbl)
	res.Predicted = math.Max(res.ThroughputBound, res.LatencyBound)
	if res.LatencyBound > res.ThroughputBound {
		res.Bottleneck = "dependency chain"
	} else {
		res.Bottleneck = fmt.Sprintf("port %d", maxPort)
	}
	res.Simulated = simulate(k, tbl, simIters)
	return res, nil
}

// loopCarriedCriticalPath returns the longest latency cycle through
// loop-carried edges, per iteration. It relaxes longest paths within one
// iteration and adds the loop-carried edge weights; the per-iteration bound
// is the maximum over loop-carried edges of (path length to the consumer +
// its latency back to the producer) — computed by unrolling two iterations
// and measuring the gain.
func loopCarriedCriticalPath(k *isa.Kernel, tbl *isa.Table) float64 {
	n := len(k.Body)
	lat := make([]float64, n)
	for i, in := range k.Body {
		tm, _ := tbl.Lookup(in.Op)
		lat[i] = tm.LatencyCycles
	}
	// finish[i] for iteration 0 with no loop-carried inputs.
	finish0 := finishTimes(k, lat, nil)
	// finish[i] for iteration 1 fed by iteration 0's results.
	finish1 := finishTimes(k, lat, finish0)
	var worst float64
	for i := range finish1 {
		if d := finish1[i] - finish0[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// finishTimes computes dataflow finish times of one loop body given the
// previous iteration's finish times (nil for the first iteration).
func finishTimes(k *isa.Kernel, lat []float64, prev []float64) []float64 {
	finish := make([]float64, len(k.Body))
	for i, in := range k.Body {
		var ready float64
		for _, d := range in.Deps {
			if d >= 0 && d < i && finish[d] > ready {
				ready = finish[d]
			}
		}
		if prev != nil {
			for _, d := range in.LoopCarried {
				if d >= 0 && d < len(prev) && prev[d] > ready {
					ready = prev[d]
				}
			}
		}
		finish[i] = ready + lat[i]
	}
	return finish
}

// simulate schedules iters unrolled copies of the body greedily on the
// table's ports and returns steady-state cycles/iteration measured over the
// second half of the run (to exclude warm-up).
func simulate(k *isa.Kernel, tbl *isa.Table, iters int) float64 {
	n := len(k.Body)
	portFree := make([]float64, tbl.NumPorts)
	finish := make([]float64, iters*n)
	var halfStart float64
	for it := 0; it < iters; it++ {
		for i, in := range k.Body {
			tm, _ := tbl.Lookup(in.Op)
			idx := it*n + i
			var ready float64
			for _, d := range in.Deps {
				if d >= 0 && d < i && finish[it*n+d] > ready {
					ready = finish[it*n+d]
				}
			}
			if it > 0 {
				for _, d := range in.LoopCarried {
					if d >= 0 && d < n && finish[(it-1)*n+d] > ready {
						ready = finish[(it-1)*n+d]
					}
				}
			}
			// Pick the eligible port that can issue earliest.
			ports := tm.Ports
			best := ports[0]
			for _, p := range ports[1:] {
				if portFree[p] < portFree[best] {
					best = p
				}
			}
			issue := math.Max(ready, portFree[best])
			portFree[best] = issue + tm.RecipThroughput
			finish[idx] = issue + tm.LatencyCycles
		}
		if it == iters/2 {
			halfStart = maxOf(finish[(it+1)*n-n : (it+1)*n])
		}
	}
	end := maxOf(finish[(iters-1)*n : iters*n])
	span := float64(iters - 1 - iters/2)
	if span <= 0 {
		return end / float64(iters)
	}
	return (end - halfStart) / span
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Report renders the per-port pressure table alongside the verdict — the
// OSACA-style listing students include in their Assignment 2 reports.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s on %s\n", r.Kernel, r.Table)
	sb.WriteString("port pressure (cycles/iter): ")
	for p, v := range r.PortPressure {
		fmt.Fprintf(&sb, "p%d=%.2f ", p, v)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "throughput bound %.2f | latency bound %.2f | predicted %.2f | simulated %.2f\n",
		r.ThroughputBound, r.LatencyBound, r.Predicted, r.Simulated)
	fmt.Fprintf(&sb, "bottleneck: %s\n", r.Bottleneck)
	if len(r.MissingOps) > 0 {
		fmt.Fprintf(&sb, "warning: ops missing from table (fallback timing): %s\n",
			strings.Join(r.MissingOps, ", "))
	}
	return sb.String()
}
