package simulator

import (
	"sync/atomic"

	"perfeng/internal/telemetry"
)

// Live-telemetry hooks for the cache simulator. The Access hot loop is
// deliberately untouched — it is part of the gated benchmark surface —
// so publication is pull-based: callers invoke Hierarchy.PublishTelemetry
// at safe points (end of a simulated kernel, between phases) and the
// hierarchy forwards the delta since its last publication.

type telHandles struct {
	accesses *telemetry.Counter
	hits     *telemetry.CounterFamily
	misses   *telemetry.CounterFamily
}

var tel atomic.Pointer[telHandles]

// EnableTelemetry publishes cache-simulation activity to reg: demand
// accesses issued to hierarchies, and hits/misses by level name.
// Passing nil stops publication.
func EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		tel.Store(nil)
		return
	}
	tel.Store(&telHandles{
		accesses: reg.Counter("perfeng_simcache_accesses",
			"Demand accesses issued to simulated hierarchies."),
		hits: reg.CounterFamily("perfeng_simcache_hits",
			"Simulated cache hits by level.", "level"),
		misses: reg.CounterFamily("perfeng_simcache_misses",
			"Simulated cache misses by level.", "level"),
	})
}

// statDelta returns cur-last, treating a regression (Reset between
// publications) as a fresh start so counters never wrap.
func statDelta(cur, last uint64) uint64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// PublishTelemetry forwards the hierarchy's hit/miss/access activity
// since the last publication to the enabled registry. It is a no-op
// when telemetry is disabled, and safe to call at any safe point in a
// simulation (it reads the same per-level Stats the reports use, so it
// must not race with concurrent Access calls — the simulator is
// single-threaded by design).
func (h *Hierarchy) PublishTelemetry() {
	th := tel.Load()
	if th == nil {
		return
	}
	if len(h.telLast) != len(h.Levels) {
		h.telLast = make([]Stats, len(h.Levels))
	}
	if th != h.telWired || len(h.telHits) != len(h.Levels) {
		// Resolve the per-level counters once per registry swap; the
		// steady-state publish path below then touches no label maps.
		h.telHits = make([]*telemetry.Counter, len(h.Levels))
		h.telMisses = make([]*telemetry.Counter, len(h.Levels))
		for i, c := range h.Levels {
			//perfvet:ignore:allocattr wiring runs once per registry swap, not per publication
			h.telHits[i] = th.hits.With(c.Name)
			//perfvet:ignore:allocattr wiring runs once per registry swap, not per publication
			h.telMisses[i] = th.misses.With(c.Name)
		}
		h.telWired = th
	}
	for i, c := range h.Levels {
		s := c.Stats()
		last := &h.telLast[i]
		h.telHits[i].Add(statDelta(s.Hits, last.Hits))
		h.telMisses[i].Add(statDelta(s.Misses, last.Misses))
		*last = s
	}
	th.accesses.Add(statDelta(h.Accesses, h.telLastAccesses))
	h.telLastAccesses = h.Accesses
}
