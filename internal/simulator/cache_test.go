package simulator

import (
	"strings"
	"testing"
	"testing/quick"

	"perfeng/internal/kernels"
	"perfeng/internal/machine"
)

func mustCache(t *testing.T, name string, sets, assoc, line int) *Cache {
	t.Helper()
	c, err := NewCache(name, sets, assoc, line)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	if _, err := NewCache("x", 0, 1, 64); err == nil {
		t.Fatal("zero sets must fail")
	}
	if _, err := NewCache("x", 4, 1, 48); err == nil {
		t.Fatal("non-power-of-two line must fail")
	}
}

func TestCacheHitMissBasics(t *testing.T) {
	c := mustCache(t, "L1", 4, 2, 64)
	if c.SizeBytes() != 512 {
		t.Fatalf("size = %d", c.SizeBytes())
	}
	if c.Access(0, false) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0, false) {
		t.Fatal("second access must hit")
	}
	if !c.Access(63, false) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(64, false) {
		t.Fatal("next line must miss")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRatio() != 0.5 {
		t.Fatalf("miss ratio = %v", s.MissRatio())
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// Direct-mapped-ish: 1 set, 2 ways, 64B lines. Three distinct lines
	// force an eviction of the least recently used.
	c := mustCache(t, "L1", 1, 2, 64)
	c.Access(0, false)   // line 0
	c.Access(64, false)  // line 1
	c.Access(0, false)   // touch line 0 (now MRU)
	c.Access(128, false) // evicts line 1 (LRU)
	if !c.Access(0, false) {
		t.Fatal("line 0 should have survived")
	}
	if c.Access(64, false) {
		t.Fatal("line 1 should have been evicted")
	}
	if c.Stats().Evictions < 1 {
		t.Fatal("eviction not counted")
	}
}

func TestCacheWritebacks(t *testing.T) {
	c := mustCache(t, "L1", 1, 1, 64)
	c.Access(0, true)   // dirty line 0
	c.Access(64, false) // evicts dirty line -> writeback
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
	r, w := c.MemTraffic()
	if r != 2 || w != 1 {
		t.Fatalf("mem traffic = %d reads, %d writes", r, w)
	}
}

func TestCachePrefetcher(t *testing.T) {
	c := mustCache(t, "L1", 64, 4, 64)
	c.NextLinePrefetch = true
	// Sequential walk: after the first miss, the next line is prefetched.
	for addr := uint64(0); addr < 64*16; addr += 64 {
		c.Access(addr, false)
	}
	s := c.Stats()
	if s.PrefetchIssued == 0 || s.PrefetchHits == 0 {
		t.Fatalf("prefetcher idle: %+v", s)
	}
	// With next-line prefetch on a sequential stream, only the first
	// access should truly miss.
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
}

func TestHierarchyInclusionOfTraffic(t *testing.T) {
	l1 := mustCache(t, "L1", 8, 2, 64)
	l2 := mustCache(t, "L2", 64, 4, 64)
	h, err := NewHierarchy(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	// Miss in L1 recurses into L2.
	h.Load(0, 8)
	if l2.Stats().Misses != 1 {
		t.Fatalf("L2 misses = %d", l2.Stats().Misses)
	}
	h.Load(0, 8)
	if l2.Stats().Accesses() != 1 {
		t.Fatal("L1 hit must not touch L2")
	}
	if _, err := NewHierarchy(); err == nil {
		t.Fatal("empty hierarchy must fail")
	}
}

func TestHierarchySplitsUnalignedAccesses(t *testing.T) {
	l1 := mustCache(t, "L1", 8, 2, 64)
	h, _ := NewHierarchy(l1)
	h.Load(60, 8) // crosses the 64-byte boundary
	if h.Accesses != 2 {
		t.Fatalf("accesses = %d, want 2 (split)", h.Accesses)
	}
	h.Reset()
	h.Load(0, 0) // size clamp
	if h.Accesses != 1 {
		t.Fatal("size<=0 should clamp to one byte")
	}
}

func TestFromCPU(t *testing.T) {
	h, err := FromCPU(machine.DAS5CPU())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 3 || h.Levels[0].Name != "L1" {
		t.Fatalf("levels = %d", len(h.Levels))
	}
	if h.Levels[2].SizeBytes() != 20<<20 {
		t.Fatalf("L3 size = %d", h.Levels[2].SizeBytes())
	}
	if _, err := FromCPU(machine.CPU{}); err == nil {
		t.Fatal("cacheless CPU must fail")
	}
}

func TestAMAT(t *testing.T) {
	l1 := mustCache(t, "L1", 8, 2, 64)
	h, _ := NewHierarchy(l1)
	// One miss then three hits: miss ratio 0.25.
	h.Load(0, 8)
	h.Load(0, 8)
	h.Load(0, 8)
	h.Load(0, 8)
	amat, err := h.AMAT([]float64{4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 + 0.25*100.0
	if amat != want {
		t.Fatalf("AMAT = %v, want %v", amat, want)
	}
	if _, err := h.AMAT([]float64{1, 2}, 100); err == nil {
		t.Fatal("latency count mismatch must fail")
	}
}

func TestAMATIdle(t *testing.T) {
	l1 := mustCache(t, "L1", 8, 2, 64)
	h, _ := NewHierarchy(l1)
	amat, err := h.AMAT([]float64{4}, 100)
	if err != nil || amat != 0 {
		t.Fatalf("idle AMAT = %v, %v", amat, err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	l1 := mustCache(t, "L1", 8, 2, 64)
	l2 := mustCache(t, "L2", 16, 4, 64)
	h, _ := NewHierarchy(l1, l2)
	h.Load(0, 8)
	h.Store(128, 8)
	h.Reset()
	if h.Accesses != 0 || l1.Stats().Accesses() != 0 || l2.Stats().Accesses() != 0 {
		t.Fatal("reset incomplete")
	}
	if h.MemTrafficBytes() != 0 {
		t.Fatal("mem traffic not reset")
	}
	// And the lines are cold again.
	if l1.Access(0, false) {
		t.Fatal("line survived reset")
	}
}

func TestTraceStridedLocality(t *testing.T) {
	mk := func() *Hierarchy {
		l1 := mustCache(t, "L1", 64, 8, 64)
		h, _ := NewHierarchy(l1)
		return h
	}
	unit := mk()
	TraceStrided(unit, 4096, 1)
	wide := mk()
	TraceStrided(wide, 4096, 16) // 128-byte stride: every access a new line
	um := unit.Levels[0].Stats().MissRatio()
	wm := wide.Levels[0].Stats().MissRatio()
	if um >= wm {
		t.Fatalf("stride-1 miss ratio %v should be below stride-16 %v", um, wm)
	}
	// Unit stride: 1 miss per 8 elements.
	if um > 0.2 {
		t.Fatalf("unit-stride miss ratio too high: %v", um)
	}
	if wm < 0.9 {
		t.Fatalf("wide-stride miss ratio too low: %v", wm)
	}
}

func TestTraceMatMulOrderings(t *testing.T) {
	// n=48 doubles => 18 KiB per matrix; L1 = 32 KiB so B must thrash for
	// ijk but stream for ikj.
	mk := func() *Hierarchy {
		h, err := FromCPU(machine.DAS5CPU())
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	naive := mk()
	TraceMatMulNaive(naive, 48)
	ikj := mk()
	TraceMatMulIKJ(ikj, 48)
	nm := naive.Levels[0].Stats().MissRatio()
	im := ikj.Levels[0].Stats().MissRatio()
	if im >= nm {
		t.Fatalf("ikj miss ratio %v should beat naive %v", im, nm)
	}
}

func TestTraceTiledBeatsIKJInL2ForLargeN(t *testing.T) {
	// n=128 doubles -> 128 KiB per matrix: larger than L1 (32 KiB).
	// Tiling with 32x32 tiles keeps the working set resident.
	mk := func() *Hierarchy {
		h, err := FromCPU(machine.DAS5CPU())
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ikj := mk()
	TraceMatMulIKJ(ikj, 128)
	tiled := mk()
	TraceMatMulTiled(tiled, 128, 32)
	// All three matrices fit in L3, so memory traffic is compulsory for
	// both; the win shows up as L1 misses (B streams past L1 under ikj
	// but stays tile-resident under tiling).
	im := ikj.Levels[0].Stats().Misses
	tm := tiled.Levels[0].Stats().Misses
	if tm >= im {
		t.Fatalf("tiled L1 misses %d should be below ikj %d", tm, im)
	}
}

func TestTraceStreamTriadCompulsoryOnly(t *testing.T) {
	h, err := FromCPU(machine.DAS5CPU())
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 14
	TraceStreamTriad(h, n)
	// Streaming: ~1 miss per 8 elements per array.
	mr := h.Levels[0].Stats().MissRatio()
	want := 1.0 / 8
	if mr < want/2 || mr > want*1.5 {
		t.Fatalf("triad L1 miss ratio = %v, want about %v", mr, want)
	}
}

func TestTraceRandomThrashes(t *testing.T) {
	l1 := mustCache(t, "L1", 64, 8, 64) // 32 KiB
	h, _ := NewHierarchy(l1)
	TraceRandom(h, 10000, 1<<20, 3) // 8 MB working set
	if h.Levels[0].Stats().MissRatio() < 0.8 {
		t.Fatalf("random trace should thrash, got %v", h.Levels[0].Stats().MissRatio())
	}
}

func TestTraceHistogramAndSpMV(t *testing.T) {
	h, err := FromCPU(machine.DAS5CPU())
	if err != nil {
		t.Fatal(err)
	}
	TraceHistogram(h, kernels.UniformSamples(4096, 1), 64)
	if h.Levels[0].Stats().Accesses() == 0 {
		t.Fatal("histogram trace produced no accesses")
	}
	h.Reset()
	csr := kernels.RandomSparse(200, 200, 2000, 1).ToCSR()
	TraceSpMVCSR(h, csr)
	if h.Levels[0].Stats().Accesses() == 0 {
		t.Fatal("spmv trace produced no accesses")
	}
	h.Reset()
	TraceFalseSharing(h, 100)
	if h.Levels[0].Stats().Accesses() != 400 {
		t.Fatalf("false-sharing accesses = %d", h.Levels[0].Stats().Accesses())
	}
}

func TestReport(t *testing.T) {
	h, _ := FromCPU(machine.DAS5CPU())
	TraceStreamTriad(h, 1024)
	rep := h.Report()
	for _, want := range []string{"L1", "L2", "L3", "mem", "miss"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// Property: hits + misses == accesses at every level, for random access
// streams.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		l1, _ := NewCache("L1", 16, 2, 64)
		l2, _ := NewCache("L2", 64, 4, 64)
		h, _ := NewHierarchy(l1, l2)
		TraceRandom(h, 2000, 4096, seed)
		for _, l := range h.Levels {
			s := l.Stats()
			if s.Hits+s.Misses != s.Accesses() {
				return false
			}
		}
		// L2 demand accesses == L1 misses + L1 writebacks.
		s1, s2 := l1.Stats(), l2.Stats()
		return s2.Accesses() == s1.Misses+s1.Writebacks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set that fits in L1 has only compulsory misses on a
// repeated pass.
func TestQuickSmallWorkingSetStaysResident(t *testing.T) {
	f := func(seed int64) bool {
		l1, _ := NewCache("L1", 64, 8, 64) // 32 KiB
		h, _ := NewHierarchy(l1)
		// 2 KiB working set, two passes.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 256; i++ {
				h.Load(uint64(i)*8, 8)
			}
		}
		s := l1.Stats()
		// Only the first pass misses, once per line: 256*8/64 = 32.
		return s.Misses == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
