// Package simulator provides an execution-driven, multi-level cache
// simulator ("Simulation and simulators" in the course's topic list). It
// substitutes for hardware performance counters: kernels replay their
// memory-access streams through a modeled hierarchy, which produces
// deterministic hit/miss/traffic counts that package counters exposes
// through a PAPI-like interface, and package patterns matches against
// performance-pattern signatures.
//
// The model is a set-associative, write-back, write-allocate hierarchy with
// true-LRU replacement and an optional next-line prefetcher — the textbook
// configuration the course's computer-architecture prerequisite assumes.
package simulator

import (
	"errors"
	"fmt"
	"strings"

	"perfeng/internal/machine"
	"perfeng/internal/telemetry"
)

// Stats counts the events of one cache level.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	// PrefetchIssued/PrefetchHits count prefetcher activity (fills and
	// demand hits on prefetched lines).
	PrefetchIssued uint64
	PrefetchHits   uint64
}

// Accesses returns demand accesses (hits+misses).
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRatio returns misses/accesses, or 0 when idle.
func (s Stats) MissRatio() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool // filled by the prefetcher, not yet demand-touched
	lastUse  uint64
}

// Policy selects the replacement policy of a cache level.
type Policy int

// Replacement policies.
const (
	// LRU evicts the least recently used way (the default).
	LRU Policy = iota
	// FIFO evicts the oldest-installed way regardless of reuse.
	FIFO
	// RandomPolicy evicts a pseudo-random way (deterministic xorshift).
	RandomPolicy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	return [...]string{"lru", "fifo", "random"}[p]
}

// DefaultLineSize is the cache-line size, in bytes, of every machine
// model the course targets (x86-64 and recent ARM servers alike). It
// is the geometry both the coherence false-sharing demos and the
// perfvet falseshare analyzer assume when no explicit hierarchy is in
// play.
const DefaultLineSize = 64

// Cache is one set-associative level.
type Cache struct {
	Name     string
	Sets     int
	Assoc    int
	LineSize int
	// Policy is the replacement policy (LRU by default).
	Policy Policy
	// NextLinePrefetch enables a simple sequential prefetcher on misses.
	NextLinePrefetch bool

	rngState uint64

	sets  [][]line
	clock uint64
	stats Stats
	lower *Cache // nil = backed by memory
	// memReads/memWrites count line transfers to/from memory when this is
	// the last level.
	memReads, memWrites uint64
}

// NewCache builds a cache level. Geometry must be consistent
// (sets, assoc, lineSize > 0).
func NewCache(name string, sets, assoc, lineSize int) (*Cache, error) {
	if sets <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("simulator: bad geometry for %s: sets=%d assoc=%d line=%d",
			name, sets, assoc, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("simulator: %s line size %d not a power of two", name, lineSize)
	}
	c := &Cache{Name: name, Sets: sets, Assoc: assoc, LineSize: lineSize}
	c.sets = make([][]line, sets)
	for i := range c.sets {
		c.sets[i] = make([]line, assoc)
	}
	return c, nil
}

// SizeBytes returns the capacity of the level.
func (c *Cache) SizeBytes() int { return c.Sets * c.Assoc * c.LineSize }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// MemTraffic returns (reads, writes) in lines between this level and memory;
// only meaningful on the last level.
func (c *Cache) MemTraffic() (reads, writes uint64) { return c.memReads, c.memWrites }

// Reset clears all lines and counters.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for j := range set {
			set[j] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
	c.memReads, c.memWrites = 0, 0
	if c.lower != nil {
		c.lower.Reset()
	}
}

func (c *Cache) indexTag(addr uint64) (int, uint64) {
	lineAddr := addr / uint64(c.LineSize)
	return int(lineAddr % uint64(c.Sets)), lineAddr / uint64(c.Sets)
}

// Access performs one demand access of the given kind at addr.
// It returns true on a hit in this level.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	setIdx, tag := c.indexTag(addr)
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			wasPrefetch := set[i].prefetch
			if wasPrefetch {
				c.stats.PrefetchHits++
				set[i].prefetch = false
			}
			if c.Policy == LRU {
				set[i].lastUse = c.clock
			}
			if write {
				set[i].dirty = true
			}
			if wasPrefetch && c.NextLinePrefetch {
				// Tagged prefetching: the first demand hit on a
				// prefetched line extends the stream.
				c.prefetchNext(addr)
			}
			return true
		}
	}
	c.stats.Misses++
	c.fill(addr, write, false)
	if c.NextLinePrefetch {
		c.prefetchNext(addr)
	}
	return false
}

func (c *Cache) prefetchNext(addr uint64) {
	next := (addr/uint64(c.LineSize) + 1) * uint64(c.LineSize)
	if !c.present(next) {
		c.stats.PrefetchIssued++
		c.fill(next, false, true)
	}
}

func (c *Cache) present(addr uint64) bool {
	setIdx, tag := c.indexTag(addr)
	for _, l := range c.sets[setIdx] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// fill brings the line holding addr into the level, recursing into the
// lower level (or memory) and evicting the LRU victim.
func (c *Cache) fill(addr uint64, write, prefetch bool) {
	// Fetch from below.
	if c.lower != nil {
		c.lower.Access(addr, false)
	} else {
		c.memReads++
	}
	setIdx, tag := c.indexTag(addr)
	set := c.sets[setIdx]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto install
		}
	}
	switch c.Policy {
	case RandomPolicy:
		// Deterministic xorshift64 sequence.
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		s := c.rngState
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		victim = int(s % uint64(len(set)))
	default:
		// LRU and FIFO both evict the smallest timestamp; they differ in
		// whether hits refresh it (see Access).
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
	}
	c.stats.Evictions++
	if set[victim].dirty {
		c.stats.Writebacks++
		// Write the victim back to the level below (or memory).
		if c.lower != nil {
			victimAddr := (set[victim].tag*uint64(c.Sets) + uint64(setIdx)) * uint64(c.LineSize)
			c.lower.Access(victimAddr, true)
		} else {
			c.memWrites++
		}
	}
install:
	set[victim] = line{tag: tag, valid: true, dirty: write, prefetch: prefetch, lastUse: c.clock}
}

// Hierarchy is a stack of cache levels in front of memory.
type Hierarchy struct {
	Levels []*Cache
	// Accesses counts demand accesses issued to the hierarchy.
	Accesses uint64

	tlb *TLB

	// telLast/telLastAccesses hold the per-level stats as of the last
	// PublishTelemetry call, so publication forwards deltas. telWired
	// remembers which handle set the per-level counters were resolved
	// against, so the steady-state publish path never re-does the
	// label lookup.
	telLast         []Stats
	telLastAccesses uint64
	telWired        *telHandles
	telHits         []*telemetry.Counter
	telMisses       []*telemetry.Counter
}

// NewHierarchy chains the given levels (L1 first). At least one level is
// required.
func NewHierarchy(levels ...*Cache) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, errors.New("simulator: hierarchy needs at least one level")
	}
	for i := 0; i < len(levels)-1; i++ {
		levels[i].lower = levels[i+1]
	}
	return &Hierarchy{Levels: levels}, nil
}

// FromCPU builds a hierarchy mirroring the CPU model's cache geometry.
func FromCPU(c machine.CPU) (*Hierarchy, error) {
	if len(c.Caches) == 0 {
		return nil, errors.New("simulator: CPU model has no caches")
	}
	levels := make([]*Cache, 0, len(c.Caches))
	for _, l := range c.Caches {
		sets, err := l.Sets()
		if err != nil {
			return nil, err
		}
		cache, err := NewCache(l.Name, sets, l.Assoc, l.LineBytes)
		if err != nil {
			return nil, err
		}
		levels = append(levels, cache)
	}
	return NewHierarchy(levels...)
}

// Access issues one demand access. size-byte accesses crossing a line
// boundary are split, as hardware does.
func (h *Hierarchy) Access(addr uint64, size int, write bool) {
	if size <= 0 {
		size = 1
	}
	if h.tlb != nil {
		// Translate each page the access touches.
		firstPage := addr / uint64(h.tlb.PageSize)
		lastPage := (addr + uint64(size) - 1) / uint64(h.tlb.PageSize)
		for p := firstPage; p <= lastPage; p++ {
			h.tlb.Access(p * uint64(h.tlb.PageSize))
		}
	}
	l1 := h.Levels[0]
	first := addr / uint64(l1.LineSize)
	last := (addr + uint64(size) - 1) / uint64(l1.LineSize)
	for lineAddr := first; lineAddr <= last; lineAddr++ {
		h.Accesses++
		l1.Access(lineAddr*uint64(l1.LineSize), write)
	}
}

// Load is shorthand for a read access.
func (h *Hierarchy) Load(addr uint64, size int) { h.Access(addr, size, false) }

// Store is shorthand for a write access.
func (h *Hierarchy) Store(addr uint64, size int) { h.Access(addr, size, true) }

// Reset clears all levels and the TLB, if attached.
func (h *Hierarchy) Reset() {
	h.Accesses = 0
	h.Levels[0].Reset() // recurses via lower links
	if h.tlb != nil {
		h.tlb.Reset()
	}
}

// AMAT returns the average memory access time in cycles given per-level hit
// latencies and the memory latency (all in cycles). lat must have one entry
// per level.
func (h *Hierarchy) AMAT(lat []float64, memLat float64) (float64, error) {
	if len(lat) != len(h.Levels) {
		return 0, fmt.Errorf("simulator: AMAT needs %d latencies, got %d", len(h.Levels), len(lat))
	}
	if len(h.Levels) == 0 || h.Levels[0].Stats().Accesses() == 0 {
		return 0, nil
	}
	// AMAT = hitTime_1 + missRatio_1 * (hitTime_2 + missRatio_2 * (...)).
	t := memLat
	for i := len(h.Levels) - 1; i >= 0; i-- {
		t = lat[i] + h.Levels[i].Stats().MissRatio()*t
	}
	return t, nil
}

// MemTrafficBytes returns bytes moved between the last level and memory.
func (h *Hierarchy) MemTrafficBytes() float64 {
	last := h.Levels[len(h.Levels)-1]
	r, w := last.MemTraffic()
	return float64(r+w) * float64(last.LineSize)
}

// Report renders the per-level counters.
func (h *Hierarchy) Report() string {
	var sb strings.Builder
	for _, l := range h.Levels {
		s := l.Stats()
		fmt.Fprintf(&sb, "%-4s %10d acc  %10d miss  %6.2f%% miss  %8d evict  %8d wb\n",
			l.Name, s.Accesses(), s.Misses, s.MissRatio()*100, s.Evictions, s.Writebacks)
	}
	r, w := h.Levels[len(h.Levels)-1].MemTraffic()
	fmt.Fprintf(&sb, "mem  %10d line reads  %10d line writes  (%.1f KiB)\n",
		r, w, h.MemTrafficBytes()/1024)
	return sb.String()
}
