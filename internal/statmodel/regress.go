// Package statmodel implements the statistical ("black-box") performance
// models of Assignment 3: linear/ridge regression, polynomial feature
// expansion, k-nearest-neighbours, CART regression trees and random
// forests, with the train/test and cross-validation machinery needed to
// evaluate prediction accuracy — and to contrast these models with the
// highly-explainable analytical ones ("the highly-explainable analytical
// model vs. the black-box statistical models").
package statmodel

import (
	"errors"
	"fmt"
	"math"

	"perfeng/internal/linalg"
)

// Regressor is a trainable model mapping a feature vector to a scalar
// target (runtime, GFLOP/s, ...).
type Regressor interface {
	Name() string
	// Fit trains on rows of X (n x d) with targets y (n).
	Fit(x [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) (float64, error)
}

// checkXY validates a design matrix/target pair.
func checkXY(x [][]float64, y []float64) (rows, cols int, err error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, 0, errors.New("statmodel: empty training set")
	}
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("statmodel: %d rows vs %d targets", len(x), len(y))
	}
	cols = len(x[0])
	if cols == 0 {
		return 0, 0, errors.New("statmodel: empty feature vectors")
	}
	for i, r := range x {
		if len(r) != cols {
			return 0, 0, fmt.Errorf("statmodel: ragged row %d", i)
		}
	}
	return len(x), cols, nil
}

// LinearRegression is ordinary least squares with an intercept, solved by
// Householder QR. Ridge > 0 adds Tikhonov regularization (the intercept is
// not penalized in spirit — with standardized features the distinction is
// negligible, and the course's datasets are standardized by Standardize).
type LinearRegression struct {
	ModelName string
	Ridge     float64

	// Intercept and Coef are available after Fit for interpretation —
	// the one advantage linear models keep over the forest.
	Intercept float64
	Coef      []float64
}

// Name implements Regressor.
func (m *LinearRegression) Name() string {
	if m.ModelName != "" {
		return m.ModelName
	}
	if m.Ridge > 0 {
		return "ridge"
	}
	return "ols"
}

// Fit implements Regressor.
func (m *LinearRegression) Fit(x [][]float64, y []float64) error {
	n, d, err := checkXY(x, y)
	if err != nil {
		return err
	}
	a := linalg.NewMatrix(n, d+1)
	for i, row := range x {
		a.Set(i, 0, 1)
		for j, v := range row {
			a.Set(i, j+1, v)
		}
	}
	var sol []float64
	if m.Ridge > 0 {
		sol, err = linalg.SolveRidge(a, y, m.Ridge)
	} else {
		sol, err = linalg.SolveLeastSquares(a, y)
	}
	if err != nil {
		return fmt.Errorf("statmodel: %s fit: %w", m.Name(), err)
	}
	m.Intercept = sol[0]
	m.Coef = sol[1:]
	return nil
}

// Predict implements Regressor.
func (m *LinearRegression) Predict(x []float64) (float64, error) {
	if m.Coef == nil {
		return 0, errors.New("statmodel: model not fitted")
	}
	if len(x) != len(m.Coef) {
		return 0, fmt.Errorf("statmodel: want %d features, got %d", len(m.Coef), len(x))
	}
	out := m.Intercept
	for i, v := range x {
		out += m.Coef[i] * v
	}
	return out, nil
}

// PolynomialFeatures expands each feature vector with powers up to degree
// and pairwise products (degree >= 2), the standard trick that lets a
// linear solver fit the polynomial cost functions of kernels (n^3 matmul
// time is linear in the feature n^3).
func PolynomialFeatures(x [][]float64, degree int) ([][]float64, error) {
	if degree < 1 {
		return nil, errors.New("statmodel: degree must be >= 1")
	}
	if len(x) == 0 {
		return nil, errors.New("statmodel: empty input")
	}
	d := len(x[0])
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("statmodel: ragged row %d", i)
		}
		feats := append([]float64(nil), row...)
		// Pure powers x_j^k for k = 2..degree.
		for k := 2; k <= degree; k++ {
			for _, v := range row {
				feats = append(feats, math.Pow(v, float64(k)))
			}
		}
		// Pairwise interaction terms (degree >= 2). len(row) == d was
		// checked above; iterating to len(row) lets the prover drop the
		// bounds checks.
		if degree >= 2 {
			for a := 0; a < len(row); a++ {
				for b := a + 1; b < len(row); b++ {
					feats = append(feats, row[a]*row[b])
				}
			}
		}
		out[i] = feats
	}
	return out, nil
}

// Standardizer rescales features to zero mean and unit variance; fitted on
// the training split and applied to both splits, as proper methodology
// requires.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer learns the per-feature mean and stddev.
func FitStandardizer(x [][]float64) (*Standardizer, error) {
	n, d, err := checkXY(x, make([]float64, len(x)))
	if err != nil {
		return nil, err
	}
	means := make([]float64, d)
	stds := make([]float64, d)
	for j := range means {
		var sum float64
		for _, row := range x {
			sum += row[j]
		}
		mean := sum / float64(n)
		var ss float64
		for _, row := range x {
			dlt := row[j] - mean
			ss += dlt * dlt
		}
		std := math.Sqrt(ss / float64(n))
		if std == 0 {
			std = 1 // constant feature: pass through centered
		}
		means[j], stds[j] = mean, std
	}
	return &Standardizer{Mean: means, Std: stds}, nil
}

// Transform returns the standardized copy of x.
func (s *Standardizer) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	mean, std := s.Mean, s.Std
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - mean[j]) / std[j]
		}
		out[i] = r
	}
	return out
}

// TransformOne standardizes a single vector.
func (s *Standardizer) TransformOne(x []float64) []float64 {
	r := make([]float64, len(x))
	for j, v := range x {
		r[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return r
}
