package statmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Evaluation machinery: error metrics, train/test split, k-fold cross
// validation, and the model shoot-out table — "evaluate the prediction
// accuracy of the proposed model" (Assignment 3).

// Metrics summarizes prediction error on one evaluation set.
type Metrics struct {
	Model string
	N     int
	MAE   float64
	RMSE  float64
	MAPE  float64 // only over non-zero targets
	R2    float64
}

// String renders a one-line metrics row.
func (m Metrics) String() string {
	return fmt.Sprintf("%-16s n=%-4d MAE %.4g  RMSE %.4g  MAPE %5.1f%%  R2 %6.3f",
		m.Model, m.N, m.MAE, m.RMSE, m.MAPE*100, m.R2)
}

// Evaluate computes metrics for predictions vs targets.
func Evaluate(name string, pred, y []float64) (Metrics, error) {
	if len(pred) != len(y) || len(y) == 0 {
		return Metrics{}, errors.New("statmodel: evaluation length mismatch or empty")
	}
	m := Metrics{Model: name, N: len(y)}
	var absSum, sqSum, apeSum float64
	apeN := 0
	var yMean float64
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(len(y))
	var ssTot float64
	for i := range y {
		e := pred[i] - y[i]
		absSum += math.Abs(e)
		sqSum += e * e
		if y[i] != 0 {
			apeSum += math.Abs(e / y[i])
			apeN++
		}
		d := y[i] - yMean
		ssTot += d * d
	}
	m.MAE = absSum / float64(len(y))
	m.RMSE = math.Sqrt(sqSum / float64(len(y)))
	if apeN > 0 {
		m.MAPE = apeSum / float64(apeN)
	}
	if ssTot > 0 {
		m.R2 = 1 - sqSum/ssTot
	}
	return m, nil
}

// Split shuffles and splits a dataset into train and test portions;
// testFrac in (0, 1).
func Split(x [][]float64, y []float64, testFrac float64, seed int64) (xTr [][]float64, yTr []float64, xTe [][]float64, yTe []float64, err error) {
	if _, _, err = checkXY(x, y); err != nil {
		return nil, nil, nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, nil, nil, errors.New("statmodel: testFrac must be in (0,1)")
	}
	n := len(x)
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(math.Round(testFrac * float64(n)))
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	for i, j := range idx {
		if i < nTest {
			xTe = append(xTe, x[j])
			yTe = append(yTe, y[j])
		} else {
			xTr = append(xTr, x[j])
			yTr = append(yTr, y[j])
		}
	}
	return xTr, yTr, xTe, yTe, nil
}

// FitEvaluate trains the model on the training split and evaluates on the
// test split.
func FitEvaluate(m Regressor, xTr [][]float64, yTr []float64, xTe [][]float64, yTe []float64) (Metrics, error) {
	if err := m.Fit(xTr, yTr); err != nil {
		return Metrics{}, err
	}
	pred := make([]float64, len(xTe))
	for i, row := range xTe {
		v, err := m.Predict(row)
		if err != nil {
			return Metrics{}, err
		}
		pred[i] = v
	}
	return Evaluate(m.Name(), pred, yTe)
}

// KFoldCV runs k-fold cross validation, returning the per-fold metrics and
// their mean MAPE/R2 as a summary row. The factory must return a fresh
// model per fold.
func KFoldCV(factory func() Regressor, x [][]float64, y []float64, k int, seed int64) ([]Metrics, Metrics, error) {
	if _, _, err := checkXY(x, y); err != nil {
		return nil, Metrics{}, err
	}
	n := len(x)
	if k < 2 || k > n {
		return nil, Metrics{}, fmt.Errorf("statmodel: k=%d invalid for n=%d", k, n)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([]Metrics, 0, k)
	var maeS, rmseS, mapeS, r2S float64
	name := ""
	for f := 0; f < k; f++ {
		lo, hi := f*n/k, (f+1)*n/k
		xTe := make([][]float64, 0, hi-lo)
		yTe := make([]float64, 0, hi-lo)
		xTr := make([][]float64, 0, n-(hi-lo))
		yTr := make([]float64, 0, n-(hi-lo))
		for i, j := range idx {
			if i >= lo && i < hi {
				xTe = append(xTe, x[j])
				yTe = append(yTe, y[j])
			} else {
				xTr = append(xTr, x[j])
				yTr = append(yTr, y[j])
			}
		}
		m := factory()
		name = m.Name()
		//perfvet:ignore:allocattr each fold predicts into its own buffer; training dominates the fold loop
		met, err := FitEvaluate(m, xTr, yTr, xTe, yTe)
		if err != nil {
			return nil, Metrics{}, err
		}
		folds = append(folds, met)
		maeS += met.MAE
		rmseS += met.RMSE
		mapeS += met.MAPE
		r2S += met.R2
	}
	kk := float64(k)
	summary := Metrics{Model: name + " (cv)", N: n,
		MAE: maeS / kk, RMSE: rmseS / kk, MAPE: mapeS / kk, R2: r2S / kk}
	return folds, summary, nil
}

// ShootOut trains and evaluates several models on the same split and
// returns their metrics sorted by MAPE (best first) plus a rendered table.
func ShootOut(models []Regressor, xTr [][]float64, yTr []float64, xTe [][]float64, yTe []float64) ([]Metrics, string, error) {
	out := make([]Metrics, 0, len(models))
	for _, m := range models {
		//perfvet:ignore:allocattr each contender predicts into its own buffer; training dominates the shoot-out
		met, err := FitEvaluate(m, xTr, yTr, xTe, yTe)
		if err != nil {
			return nil, "", fmt.Errorf("statmodel: %s: %w", m.Name(), err)
		}
		out = append(out, met)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAPE < out[j].MAPE })
	var sb strings.Builder
	sb.WriteString("model shoot-out (sorted by MAPE):\n")
	for _, m := range out {
		sb.WriteString("  " + m.String() + "\n")
	}
	return out, sb.String(), nil
}
