package statmodel

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// KNN is a k-nearest-neighbours regressor with optional inverse-distance
// weighting — the simplest non-parametric baseline in the Assignment 3
// shoot-out.
type KNN struct {
	K int
	// Weighted uses 1/d weighting instead of the plain average.
	Weighted bool

	x [][]float64
	y []float64
}

// Name implements Regressor. It is called per evaluation in the CV
// loops, so it uses strconv rather than fmt.
func (m *KNN) Name() string {
	if m.Weighted {
		return "knn" + strconv.Itoa(m.K) + "-weighted"
	}
	return "knn" + strconv.Itoa(m.K)
}

// Fit implements Regressor (lazy learner: it just stores the data).
func (m *KNN) Fit(x [][]float64, y []float64) error {
	if m.K < 1 {
		return errors.New("statmodel: KNN needs K >= 1")
	}
	if _, _, err := checkXY(x, y); err != nil {
		return err
	}
	m.x = x
	m.y = y
	return nil
}

// Predict implements Regressor.
func (m *KNN) Predict(q []float64) (float64, error) {
	if m.x == nil {
		return 0, errors.New("statmodel: model not fitted")
	}
	if len(q) != len(m.x[0]) {
		return 0, fmt.Errorf("statmodel: want %d features, got %d", len(m.x[0]), len(q))
	}
	type nb struct {
		d float64
		y float64
	}
	nbs := make([]nb, len(m.x))
	for i, row := range m.x {
		var ss float64
		for j, v := range row {
			dlt := v - q[j]
			ss += dlt * dlt
		}
		nbs[i] = nb{d: math.Sqrt(ss), y: m.y[i]}
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].d < nbs[j].d })
	k := m.K
	if k > len(nbs) {
		k = len(nbs)
	}
	if !m.Weighted {
		var sum float64
		for _, n := range nbs[:k] {
			sum += n.y
		}
		return sum / float64(k), nil
	}
	var wsum, sum float64
	for _, n := range nbs[:k] {
		if n.d == 0 {
			return n.y, nil // exact match dominates
		}
		w := 1 / n.d
		wsum += w
		sum += w * n.y
	}
	return sum / wsum, nil
}
