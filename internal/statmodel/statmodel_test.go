package statmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"perfeng/internal/kernels"
)

// planted returns a dataset y = 3 + 2*x0 - x1 (+ optional noise).
func planted(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.Float64()*10, rng.Float64()*10
		x[i] = []float64{a, b}
		y[i] = 3 + 2*a - b + noise*rng.NormFloat64()
	}
	return x, y
}

func TestLinearRegressionRecoversPlanted(t *testing.T) {
	x, y := planted(50, 0, 1)
	m := &LinearRegression{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-8 ||
		math.Abs(m.Coef[0]-2) > 1e-8 || math.Abs(m.Coef[1]+1) > 1e-8 {
		t.Fatalf("fit = %v + %v", m.Intercept, m.Coef)
	}
	pred, err := m.Predict([]float64{1, 1})
	if err != nil || math.Abs(pred-4) > 1e-8 {
		t.Fatalf("predict = %v, %v", pred, err)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	m := &LinearRegression{}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("unfitted predict must fail")
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must fail")
	}
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := m.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows must fail")
	}
	x, y := planted(20, 0, 2)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	x, y := planted(30, 0.5, 3)
	ols := &LinearRegression{}
	ridge := &LinearRegression{Ridge: 100}
	if err := ols.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := ridge.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	no := math.Abs(ols.Coef[0]) + math.Abs(ols.Coef[1])
	nr := math.Abs(ridge.Coef[0]) + math.Abs(ridge.Coef[1])
	if nr >= no {
		t.Fatalf("ridge coefficient norm %v not below OLS %v", nr, no)
	}
	if ridge.Name() != "ridge" || ols.Name() != "ols" {
		t.Fatal("names wrong")
	}
}

func TestPolynomialFeatures(t *testing.T) {
	x := [][]float64{{2, 3}}
	out, err := PolynomialFeatures(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	// [2, 3, 4, 9, 6] : originals, squares, pairwise product.
	want := []float64{2, 3, 4, 9, 6}
	if len(out[0]) != len(want) {
		t.Fatalf("features = %v", out[0])
	}
	for i := range want {
		if out[0][i] != want[i] {
			t.Fatalf("features = %v, want %v", out[0], want)
		}
	}
	if _, err := PolynomialFeatures(x, 0); err == nil {
		t.Fatal("degree 0 must fail")
	}
	if _, err := PolynomialFeatures(nil, 2); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestPolynomialLinearFitsCubic(t *testing.T) {
	// y = n^3 is nonlinear in n but linear in the degree-3 expansion.
	var x [][]float64
	var y []float64
	for n := 1.0; n <= 20; n++ {
		x = append(x, []float64{n})
		y = append(y, n*n*n)
	}
	xp, err := PolynomialFeatures(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := &LinearRegression{}
	if err := m.Fit(xp, y); err != nil {
		t.Fatal(err)
	}
	q, _ := PolynomialFeatures([][]float64{{25}}, 3)
	pred, err := m.Predict(q[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-25*25*25) > 1e-6*25*25*25 {
		t.Fatalf("cubic extrapolation = %v, want 15625", pred)
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 100}, {3, 100}, {5, 100}}
	s, err := FitStandardizer(x)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform(x)
	// First feature: mean 3, centered; second: constant -> passthrough 0.
	if math.Abs(out[0][0]+out[2][0]) > 1e-12 || out[1][0] != 0 {
		t.Fatalf("standardized = %v", out)
	}
	if out[0][1] != 0 {
		t.Fatalf("constant feature should map to 0, got %v", out[0][1])
	}
	one := s.TransformOne([]float64{3, 100})
	if one[0] != 0 || one[1] != 0 {
		t.Fatalf("TransformOne = %v", one)
	}
}

func TestKNN(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {10}}
	y := []float64{0, 1, 2, 10}
	m := &KNN{K: 2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0.5 { // neighbours 0 and 1
		t.Fatalf("knn predict = %v, want 0.5", pred)
	}
	w := &KNN{K: 2, Weighted: true}
	if err := w.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	wp, _ := w.Predict([]float64{0.4})
	if wp >= 0.5 { // weighting pulls toward the closer neighbour (0)
		t.Fatalf("weighted knn = %v, want < 0.5", wp)
	}
	exact, _ := w.Predict([]float64{2})
	if exact != 2 {
		t.Fatalf("exact-match predict = %v", exact)
	}
	if m.Name() != "knn2" || w.Name() != "knn2-weighted" {
		t.Fatal("names wrong")
	}
}

func TestKNNErrors(t *testing.T) {
	m := &KNN{K: 0}
	if err := m.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("K=0 must fail")
	}
	m2 := &KNN{K: 1}
	if _, err := m2.Predict([]float64{1}); err == nil {
		t.Fatal("unfitted must fail")
	}
	if err := m2.Fit([][]float64{{1}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Predict([]float64{1, 2}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	// K larger than the dataset clamps.
	big := &KNN{K: 10}
	if err := big.Fit([][]float64{{0}, {1}}, []float64{0, 2}); err != nil {
		t.Fatal(err)
	}
	if v, _ := big.Predict([]float64{0.5}); v != 1 {
		t.Fatalf("clamped knn = %v", v)
	}
}

func TestRegressionTreeFitsStepFunction(t *testing.T) {
	// A step function is exactly representable by one split.
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		if v < 20 {
			y = append(y, 5)
		} else {
			y = append(y, 11)
		}
	}
	m := &RegressionTree{MaxDepth: 3}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lo, _ := m.Predict([]float64{3})
	hi, _ := m.Predict([]float64{33})
	if lo != 5 || hi != 11 {
		t.Fatalf("tree = %v / %v, want 5 / 11", lo, hi)
	}
	if m.Depth() < 1 {
		t.Fatal("tree should have split")
	}
}

func TestRegressionTreeRespectsLimits(t *testing.T) {
	x, y := planted(200, 0.1, 5)
	m := &RegressionTree{MaxDepth: 2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.Depth() > 2 {
		t.Fatalf("depth = %d exceeds limit", m.Depth())
	}
	if _, err := (&RegressionTree{}).Predict([]float64{1}); err == nil {
		t.Fatal("unfitted must fail")
	}
}

func TestRandomForestBeatsSingleTreeOnNoise(t *testing.T) {
	x, y := planted(300, 2.0, 7)
	xTr, yTr, xTe, yTe, err := Split(x, y, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := &RegressionTree{MaxDepth: 10, MinLeafSize: 1}
	forest := &RandomForest{Trees: 30, MaxDepth: 10, MinLeafSize: 1, Seed: 2}
	mt, err := FitEvaluate(tree, xTr, yTr, xTe, yTe)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := FitEvaluate(forest, xTr, yTr, xTe, yTe)
	if err != nil {
		t.Fatal(err)
	}
	if mf.RMSE >= mt.RMSE {
		t.Fatalf("forest RMSE %v should beat single tree %v", mf.RMSE, mt.RMSE)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	m, err := Evaluate("m", []float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE != 0 || m.RMSE != 0 || m.MAPE != 0 || m.R2 != 1 {
		t.Fatalf("perfect metrics wrong: %+v", m)
	}
	m2, _ := Evaluate("m", []float64{2, 3, 4}, []float64{1, 2, 3})
	if m2.MAE != 1 || m2.RMSE != 1 {
		t.Fatalf("off-by-one metrics: %+v", m2)
	}
	if _, err := Evaluate("m", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if !strings.Contains(m2.String(), "MAPE") {
		t.Fatal("String incomplete")
	}
}

func TestSplit(t *testing.T) {
	x, y := planted(100, 0, 9)
	xTr, yTr, xTe, yTe, err := Split(x, y, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(xTe) != 25 || len(xTr) != 75 || len(yTe) != 25 || len(yTr) != 75 {
		t.Fatalf("split sizes: %d/%d", len(xTr), len(xTe))
	}
	if _, _, _, _, err := Split(x, y, 0, 1); err == nil {
		t.Fatal("testFrac=0 must fail")
	}
	if _, _, _, _, err := Split(x, y, 1, 1); err == nil {
		t.Fatal("testFrac=1 must fail")
	}
}

func TestKFoldCV(t *testing.T) {
	x, y := planted(60, 0.2, 11)
	folds, summary, err := KFoldCV(func() Regressor { return &LinearRegression{} }, x, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	if summary.R2 < 0.9 {
		t.Fatalf("linear model should explain planted data: R2 = %v", summary.R2)
	}
	if !strings.Contains(summary.Model, "cv") {
		t.Fatal("summary name wrong")
	}
	if _, _, err := KFoldCV(func() Regressor { return &LinearRegression{} }, x, y, 1, 1); err == nil {
		t.Fatal("k=1 must fail")
	}
}

func TestShootOut(t *testing.T) {
	x, y := planted(150, 0.3, 13)
	xTr, yTr, xTe, yTe, _ := Split(x, y, 0.3, 2)
	models := []Regressor{
		&LinearRegression{},
		&KNN{K: 3},
		&RegressionTree{MaxDepth: 6},
		&RandomForest{Trees: 20, Seed: 1},
	}
	metrics, table, err := ShootOut(models, xTr, yTr, xTe, yTe)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 4 {
		t.Fatalf("metrics = %d", len(metrics))
	}
	// Data is linear: OLS must win.
	if metrics[0].Model != "ols" {
		t.Fatalf("expected ols to win, got %s", metrics[0].Model)
	}
	// Sorted ascending by MAPE.
	for i := 1; i < len(metrics); i++ {
		if metrics[i].MAPE < metrics[i-1].MAPE {
			t.Fatal("shoot-out not sorted")
		}
	}
	if !strings.Contains(table, "shoot-out") {
		t.Fatal("table missing header")
	}
}

func TestSpMVFeatures(t *testing.T) {
	csr := kernels.BandedSparse(50, 2, 1).ToCSR()
	f := SpMVFeatures(csr)
	if len(f) != len(SpMVFeatureNames) {
		t.Fatalf("features = %d, names = %d", len(f), len(SpMVFeatureNames))
	}
	if f[0] != 50 {
		t.Fatalf("rows feature = %v", f[0])
	}
	if f[1] != float64(csr.NNZ()) {
		t.Fatalf("nnz feature = %v", f[1])
	}
}

// Property: OLS predictions are exact on the training set when the model
// family contains the target (planted linear data, no noise).
func TestQuickOLSInterpolation(t *testing.T) {
	f := func(seed int64) bool {
		x, y := planted(25, 0, seed)
		m := &LinearRegression{}
		if err := m.Fit(x, y); err != nil {
			return false
		}
		for i, row := range x {
			p, err := m.Predict(row)
			if err != nil || math.Abs(p-y[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: tree predictions always lie within the range of training
// targets (trees cannot extrapolate).
func TestQuickTreeRangeBound(t *testing.T) {
	f := func(seed int64, q float64) bool {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return true
		}
		x, y := planted(50, 1, seed)
		m := &RegressionTree{MaxDepth: 6}
		if err := m.Fit(x, y); err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range y {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		p, err := m.Predict([]float64{q, -q})
		return err == nil && p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationImportance(t *testing.T) {
	// y depends strongly on x0, weakly on x1, not at all on x2.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b, c := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b, c})
		y = append(y, 10*a+b)
	}
	m := &LinearRegression{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imps, err := PermutationImportance(m, x, y, []string{"strong", "weak", "noise"}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if imps[0].Name != "strong" {
		t.Fatalf("ranking = %+v", imps)
	}
	if imps[0].Increase <= imps[1].Increase || imps[1].Increase <= imps[2].Increase {
		t.Fatalf("importance not ordered: %+v", imps)
	}
	// The irrelevant feature contributes ~nothing.
	if imps[2].Increase > imps[0].Increase*0.05 {
		t.Fatalf("noise feature too important: %+v", imps)
	}
	if !strings.Contains(ImportanceTable(imps), "strong") {
		t.Fatal("table incomplete")
	}
}

func TestPermutationImportanceErrors(t *testing.T) {
	m := &LinearRegression{}
	if _, err := PermutationImportance(m, nil, nil, nil, 1, 1); err == nil {
		t.Fatal("empty data must fail")
	}
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := PermutationImportance(m, x, y, []string{"a", "b"}, 1, 1); err == nil {
		t.Fatal("names mismatch must fail")
	}
	unfitted := &LinearRegression{}
	if _, err := PermutationImportance(unfitted, x, y, nil, 1, 1); err == nil {
		t.Fatal("unfitted model must fail")
	}
}
