package statmodel

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Permutation feature importance: the model-agnostic interpretability tool
// that closes the gap Assignment 3 opens between explainable analytical
// models and black-box statistical ones — shuffle one feature column and
// watch the error grow.

// Importance is the score of one feature.
type Importance struct {
	Feature int
	Name    string
	// Increase is the RMSE increase caused by permuting the feature
	// (absolute; larger = more important).
	Increase float64
}

// PermutationImportance computes per-feature importances of a fitted model
// on the evaluation set, averaging over rounds shuffles. names may be nil
// (features are then labeled by index).
func PermutationImportance(m Regressor, x [][]float64, y []float64, names []string, rounds int, seed int64) ([]Importance, error) {
	n, d, err := checkXY(x, y)
	if err != nil {
		return nil, err
	}
	if names != nil && len(names) != d {
		return nil, errors.New("statmodel: names length mismatch")
	}
	if rounds < 1 {
		rounds = 3
	}
	pred := make([]float64, n) // prediction scratch shared by every round
	baseline, err := rmseOf(m, x, y, pred)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Importance, d)
	col := make([]float64, n)
	shuffled := make([][]float64, n)
	swapCol := func(a, b int) { col[a], col[b] = col[b], col[a] }
	for j := range out {
		var sum float64
		for r := 0; r < rounds; r++ {
			for i := range x {
				col[i] = x[i][j]
			}
			rng.Shuffle(n, swapCol)
			for i := range x {
				row := append([]float64(nil), x[i]...)
				row[j] = col[i]
				shuffled[i] = row
			}
			e, err := rmseOf(m, shuffled, y, pred)
			if err != nil {
				return nil, err
			}
			sum += e - baseline
		}
		name := "f" + strconv.Itoa(j)
		if names != nil {
			name = names[j]
		}
		out[j] = Importance{Feature: j, Name: name, Increase: sum / float64(rounds)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Increase > out[b].Increase })
	return out, nil
}

// rmseOf predicts every row of x into pred (len(x) scratch the caller
// owns, so permutation rounds reuse one buffer) and returns the RMSE.
func rmseOf(m Regressor, x [][]float64, y []float64, pred []float64) (float64, error) {
	for i, row := range x {
		v, err := m.Predict(row)
		if err != nil {
			return 0, err
		}
		pred[i] = v
	}
	met, err := Evaluate("", pred, y)
	if err != nil {
		return 0, err
	}
	return met.RMSE, nil
}

// ImportanceTable renders the ranking.
func ImportanceTable(imps []Importance) string {
	var sb strings.Builder
	sb.WriteString("permutation importance (RMSE increase when shuffled):\n")
	for _, im := range imps {
		fmt.Fprintf(&sb, "  %-20s %+.4g\n", im.Name, im.Increase)
	}
	return sb.String()
}
