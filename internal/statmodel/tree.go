package statmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RegressionTree is a CART regression tree: greedy binary splits minimizing
// the residual sum of squares, depth- and leaf-size-limited.
type RegressionTree struct {
	MaxDepth    int // default 8
	MinLeafSize int // default 2
	// FeatureSubset > 0 considers only that many random features per
	// split (used by the forest); 0 considers all.
	FeatureSubset int
	// Seed drives the feature subsampling.
	Seed int64

	root *treeNode
	dim  int
}

type treeNode struct {
	feature int
	thresh  float64
	value   float64 // leaf prediction
	leaf    bool
	lo, hi  *treeNode
}

// Name implements Regressor.
func (m *RegressionTree) Name() string { return "cart" }

// Fit implements Regressor.
func (m *RegressionTree) Fit(x [][]float64, y []float64) error {
	if _, d, err := checkXY(x, y); err != nil {
		return err
	} else {
		m.dim = d
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 8
	}
	if m.MinLeafSize <= 0 {
		m.MinLeafSize = 2
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.root = m.build(x, y, idx, 0, rng)
	return nil
}

func meanAt(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseAt(y []float64, idx []int) float64 {
	m := meanAt(y, idx)
	var ss float64
	for _, i := range idx {
		d := y[i] - m
		ss += d * d
	}
	return ss
}

func (m *RegressionTree) build(x [][]float64, y []float64, idx []int, depth int, rng *rand.Rand) *treeNode {
	if depth >= m.MaxDepth || len(idx) <= m.MinLeafSize {
		return &treeNode{leaf: true, value: meanAt(y, idx)}
	}
	parentSSE := sseAt(y, idx)
	if parentSSE == 0 {
		return &treeNode{leaf: true, value: meanAt(y, idx)}
	}

	features := make([]int, m.dim)
	for i := range features {
		features[i] = i
	}
	if m.FeatureSubset > 0 && m.FeatureSubset < m.dim {
		rng.Shuffle(len(features), func(i, j int) {
			features[i], features[j] = features[j], features[i]
		})
		features = features[:m.FeatureSubset]
	}

	bestFeature, bestThresh := -1, 0.0
	bestSSE := parentSSE
	sorted := make([]int, len(idx))
	for _, f := range features {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x[sorted[a]][f] < x[sorted[b]][f] })
		// Prefix sums enable O(n) split evaluation per feature.
		var sumLo, sqLo float64
		var sumHi, sqHi float64
		for _, i := range sorted {
			sumHi += y[i]
			sqHi += y[i] * y[i]
		}
		for pos := 0; pos < len(sorted)-1; pos++ {
			yi := y[sorted[pos]]
			sumLo += yi
			sqLo += yi * yi
			sumHi -= yi
			sqHi -= yi * yi
			// Cannot split between equal feature values.
			if x[sorted[pos]][f] == x[sorted[pos+1]][f] {
				continue
			}
			nLo, nHi := float64(pos+1), float64(len(sorted)-pos-1)
			if int(nLo) < m.MinLeafSize || int(nHi) < m.MinLeafSize {
				continue
			}
			sse := (sqLo - sumLo*sumLo/nLo) + (sqHi - sumHi*sumHi/nHi)
			if sse < bestSSE-1e-12 {
				bestSSE = sse
				bestFeature = f
				bestThresh = (x[sorted[pos]][f] + x[sorted[pos+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, value: meanAt(y, idx)}
	}
	loIdx := make([]int, 0, len(idx))
	hiIdx := make([]int, 0, len(idx))
	for _, i := range idx {
		if x[i][bestFeature] <= bestThresh {
			loIdx = append(loIdx, i)
		} else {
			hiIdx = append(hiIdx, i)
		}
	}
	return &treeNode{
		feature: bestFeature,
		thresh:  bestThresh,
		lo:      m.build(x, y, loIdx, depth+1, rng),
		hi:      m.build(x, y, hiIdx, depth+1, rng),
	}
}

// Predict implements Regressor.
func (m *RegressionTree) Predict(x []float64) (float64, error) {
	if m.root == nil {
		return 0, errors.New("statmodel: model not fitted")
	}
	if len(x) != m.dim {
		return 0, fmt.Errorf("statmodel: want %d features, got %d", m.dim, len(x))
	}
	n := m.root
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n.value, nil
}

// Depth returns the height of the fitted tree (0 for a stump).
func (m *RegressionTree) Depth() int { return depthOf(m.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	lo, hi := depthOf(n.lo), depthOf(n.hi)
	if lo > hi {
		return lo + 1
	}
	return hi + 1
}

// RandomForest bags Trees CART trees over bootstrap resamples with feature
// subsampling (sqrt(d) by default), the strongest black-box model in the
// Assignment 3 shoot-out.
type RandomForest struct {
	Trees       int // default 50
	MaxDepth    int
	MinLeafSize int
	Seed        int64

	forest []*RegressionTree
	dim    int
}

// Name implements Regressor.
func (m *RandomForest) Name() string { return "random-forest" }

// Fit implements Regressor.
func (m *RandomForest) Fit(x [][]float64, y []float64) error {
	n, d, err := checkXY(x, y)
	if err != nil {
		return err
	}
	m.dim = d
	if m.Trees <= 0 {
		m.Trees = 50
	}
	sub := int(math.Ceil(math.Sqrt(float64(d))))
	rng := rand.New(rand.NewSource(m.Seed))
	m.forest = make([]*RegressionTree, m.Trees)
	for t := 0; t < m.Trees; t++ {
		// Bootstrap resample.
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i], by[i] = x[j], y[j]
		}
		tree := &RegressionTree{
			MaxDepth:      m.MaxDepth,
			MinLeafSize:   m.MinLeafSize,
			FeatureSubset: sub,
			Seed:          rng.Int63(),
		}
		//perfvet:ignore:allocattr each forest member fits its own bootstrap; per-tree scratch is the fit
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		m.forest[t] = tree
	}
	return nil
}

// Predict implements Regressor.
func (m *RandomForest) Predict(x []float64) (float64, error) {
	if m.forest == nil {
		return 0, errors.New("statmodel: model not fitted")
	}
	var sum float64
	for _, t := range m.forest {
		v, err := t.Predict(x)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(len(m.forest)), nil
}
