package statmodel

import "perfeng/internal/kernels"

// Feature engineering for SpMV (Assignment 3): map the non-zero structure
// of a matrix to the feature vector the models train on. Choosing these
// features — and discovering which ones the models actually need — is the
// assignment's core exercise.

// SpMVFeatureNames lists the features produced by SpMVFeatures, in order.
var SpMVFeatureNames = []string{
	"rows", "nnz", "mean_nnz_per_row", "max_nnz_per_row",
	"row_cv", "density", "mean_col_span", "diag_dominance", "empty_rows",
}

// SpMVFeatures extracts the feature vector of a CSR matrix.
func SpMVFeatures(a *kernels.CSR) []float64 {
	s := a.Stats()
	return []float64{
		float64(s.Rows),
		float64(s.NNZ),
		s.MeanPerRow,
		float64(s.MaxPerRow),
		s.RowCV,
		s.Density,
		s.MeanColSpan,
		s.DiagonalDominance,
		float64(s.EmptyRows),
	}
}
