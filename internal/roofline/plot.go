package roofline

import (
	"fmt"
	"math"
	"strings"
)

// Plotting: the assignment suggests "tools that can calculate and plot the
// model automatically" but asks students to reflect on modeling by hand vs
// by tool. We provide both renderings the toolbox uses in reports: a
// terminal ASCII plot and an SVG file.

// ASCIIPlot renders the model and points on a log-log grid of the given
// width and height in characters.
func (m *Model) ASCIIPlot(points []Point, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	aiMin, aiMax := 1.0/64, math.Max(4*m.Ridge(), 64)
	pMax := m.Peak() * 2
	pMin := pMax / 1e5
	for _, p := range points {
		if p.AI > 0 {
			aiMin = math.Min(aiMin, p.AI/2)
			aiMax = math.Max(aiMax, p.AI*2)
		}
		if p.GFLOPS > 0 {
			pMin = math.Min(pMin, p.GFLOPS/2)
		}
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xOf := func(ai float64) int {
		return int(float64(width-1) * math.Log(ai/aiMin) / math.Log(aiMax/aiMin))
	}
	yOf := func(gflops float64) int {
		y := int(float64(height-1) * math.Log(gflops/pMin) / math.Log(pMax/pMin))
		return height - 1 - y
	}
	put := func(x, y int, c byte) {
		if x >= 0 && x < width && y >= 0 && y < height {
			grid[y][x] = c
		}
	}
	// Outer roofs: bandwidth diagonal then compute horizontal.
	for x := 0; x < width; x++ {
		ai := aiMin * math.Exp(float64(x)/float64(width-1)*math.Log(aiMax/aiMin))
		att := m.Attainable(ai)
		if att > 0 {
			c := byte('-')
			if att < m.Peak() {
				c = '/'
			}
			put(x, yOf(att), c)
		}
	}
	// Kernel points.
	markers := []byte{'1', '2', '3', '4', '5', '6', '7', '8', '9'}
	for i, p := range points {
		if p.AI <= 0 || p.GFLOPS <= 0 {
			continue
		}
		mk := byte('*')
		if i < len(markers) {
			mk = markers[i]
		}
		put(xOf(p.AI), yOf(p.GFLOPS), mk)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (log-log; '-' compute roof %.1f GFLOP/s, '/' bandwidth roof %.1f GB/s)\n",
		m.Name, m.Peak(), m.Bandwidth())
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "> AI (FLOP/byte)\n")
	for i, p := range points {
		mk := "*"
		if i < len(markers) {
			mk = string(markers[i])
		}
		fmt.Fprintf(&sb, "   %s = %s (AI %.3g, %.3g GFLOP/s)\n", mk, p.Name, p.AI, p.GFLOPS)
	}
	return sb.String()
}

// SVGPlot renders the model and points as a standalone SVG document.
func (m *Model) SVGPlot(points []Point, width, height int) string {
	if width < 100 {
		width = 480
	}
	if height < 100 {
		height = 320
	}
	margin := 50.0
	w, h := float64(width), float64(height)

	aiMin, aiMax := 1.0/64, math.Max(4*m.Ridge(), 64)
	pMax := m.Peak() * 2
	pMin := pMax / 1e5
	for _, p := range points {
		if p.AI > 0 {
			aiMin = math.Min(aiMin, p.AI/2)
			aiMax = math.Max(aiMax, p.AI*2)
		}
		if p.GFLOPS > 0 {
			pMin = math.Min(pMin, p.GFLOPS/2)
		}
	}
	x := func(ai float64) float64 {
		return margin + (w-2*margin)*math.Log(ai/aiMin)/math.Log(aiMax/aiMin)
	}
	y := func(g float64) float64 {
		return h - margin - (h-2*margin)*math.Log(g/pMin)/math.Log(pMax/pMin)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%g" y="20" font-size="13" font-family="sans-serif">%s</text>`+"\n",
		margin, xmlEscape(m.Name))
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		margin, margin, margin, h-margin)
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" font-family="sans-serif">AI (FLOP/byte)</text>`+"\n",
		w/2-40, h-margin+30)
	// Roof polyline for every compute/bandwidth combination of outer roofs.
	for ci, cr := range m.Compute {
		ridge := cr.GFLOPS / m.Bandwidth()
		color := []string{"#cc0000", "#e07000", "#888800"}[ci%3]
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%g,%g %g,%g %g,%g"/>`+"\n",
			color,
			x(aiMin), y(m.Bandwidth()*aiMin),
			x(ridge), y(cr.GFLOPS),
			x(aiMax), y(cr.GFLOPS))
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="10" font-family="sans-serif" fill="%s">%s</text>`+"\n",
			x(aiMax)-130, y(cr.GFLOPS)-4, color, xmlEscape(cr.Name))
	}
	// Extra bandwidth ceilings.
	for _, br := range m.Bandwidths[1:] {
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#3366cc" stroke-dasharray="4,3"/>`+"\n",
			x(aiMin), y(br.GBs*aiMin), x(m.Peak()/br.GBs), y(m.Peak()))
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="10" font-family="sans-serif" fill="#3366cc">%s</text>`+"\n",
			x(aiMin)+4, y(br.GBs*aiMin)-6, xmlEscape(br.Name))
	}
	// Points.
	for _, p := range points {
		if p.AI <= 0 || p.GFLOPS <= 0 {
			continue
		}
		fmt.Fprintf(&sb, `<circle cx="%g" cy="%g" r="4" fill="#006600"/>`+"\n", x(p.AI), y(p.GFLOPS))
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="10" font-family="sans-serif">%s</text>`+"\n",
			x(p.AI)+6, y(p.GFLOPS)+4, xmlEscape(p.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
