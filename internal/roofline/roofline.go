// Package roofline implements the Roofline visual performance model of
// Williams, Waterman & Patterson (CACM 2009), the tool at the heart of the
// course's Assignment 1, including the customary ceiling extensions
// (no-SIMD, single-core) and the cache-aware variant with one bandwidth
// roof per memory level.
//
// A Model is a set of compute roofs (GFLOP/s) and bandwidth roofs (GB/s);
// the attainable performance of a kernel with arithmetic intensity AI under
// roof pair (P, B) is min(P, B*AI). Kernels are placed on the model as
// Points and classified as compute- or memory-bound relative to the ridge
// point AI_ridge = P/B.
package roofline

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"perfeng/internal/machine"
	"perfeng/internal/metrics"
)

// ComputeRoof is one horizontal roof: a peak-performance ceiling.
type ComputeRoof struct {
	Name   string
	GFLOPS float64
}

// BandwidthRoof is one diagonal roof: a memory-bandwidth ceiling.
type BandwidthRoof struct {
	Name string
	GBs  float64
}

// Model is a Roofline model: at least one compute roof and one bandwidth
// roof. Roofs beyond the first pair are ceilings — tighter bounds reached
// without specific optimizations (vectorization, multithreading, cache
// blocking).
type Model struct {
	Name       string
	Compute    []ComputeRoof   // sorted descending; [0] is the outer roof
	Bandwidths []BandwidthRoof // sorted descending; [0] is the outer roof
}

// FromCPU builds the standard CPU roofline with three compute ceilings
// (peak, no-SIMD, single-core) over the DRAM bandwidth roof.
func FromCPU(c machine.CPU) *Model {
	m := &Model{
		Name: c.Name,
		Compute: []ComputeRoof{
			{Name: "peak (SIMD, all cores)", GFLOPS: c.PeakGFLOPS()},
			{Name: "no SIMD", GFLOPS: c.ScalarPeakGFLOPS()},
			{Name: "single core", GFLOPS: c.PeakGFLOPSPerCore()},
		},
		Bandwidths: []BandwidthRoof{
			{Name: "DRAM", GBs: c.MemBandwidthGBs()},
		},
	}
	m.normalize()
	return m
}

// CacheAwareFromCPU builds the cache-aware roofline: one bandwidth roof per
// cache level (aggregated over cores for private levels) above the DRAM
// roof.
func CacheAwareFromCPU(c machine.CPU) *Model {
	m := FromCPU(c)
	for _, l := range c.Caches {
		agg := l.BandwidthBytesPerCycle * c.FreqHz / 1e9
		if !l.Shared {
			agg *= float64(c.Cores)
		}
		m.Bandwidths = append(m.Bandwidths, BandwidthRoof{Name: l.Name, GBs: agg})
	}
	m.normalize()
	return m
}

// WithMeasuredBandwidths replaces the model's bandwidth roofs with roofs
// derived from an empirical bandwidth staircase (working-set size ->
// sustained GB/s): one roof per plateau, named by the working-set size
// that produced it. This is the "model by measurement, not data sheet"
// variant of the cache-aware roofline.
func (m *Model) WithMeasuredBandwidths(points map[string]float64) *Model {
	if len(points) == 0 {
		return m
	}
	m.Bandwidths = m.Bandwidths[:0]
	for name, gbs := range points {
		if gbs > 0 {
			m.Bandwidths = append(m.Bandwidths, BandwidthRoof{Name: name, GBs: gbs})
		}
	}
	m.normalize()
	return m
}

// FromGPU builds the device roofline of the accelerator.
func FromGPU(g machine.GPU) *Model {
	m := &Model{
		Name: g.Name,
		Compute: []ComputeRoof{
			{Name: "peak", GFLOPS: g.PeakGFLOPS()},
		},
		Bandwidths: []BandwidthRoof{
			{Name: "HBM/GDDR", GBs: g.MemBandwidthGBs()},
			{Name: "PCIe (offload)", GBs: g.PCIeBandwidthBytesPerSec / 1e9},
		},
	}
	m.normalize()
	return m
}

func (m *Model) normalize() {
	sort.Slice(m.Compute, func(i, j int) bool { return m.Compute[i].GFLOPS > m.Compute[j].GFLOPS })
	sort.Slice(m.Bandwidths, func(i, j int) bool { return m.Bandwidths[i].GBs > m.Bandwidths[j].GBs })
}

// Validate checks that the model has at least one roof of each kind with
// positive values.
func (m *Model) Validate() error {
	if len(m.Compute) == 0 || len(m.Bandwidths) == 0 {
		return errors.New("roofline: model needs at least one compute and one bandwidth roof")
	}
	for _, r := range m.Compute {
		if r.GFLOPS <= 0 {
			return fmt.Errorf("roofline: compute roof %q non-positive", r.Name)
		}
	}
	for _, r := range m.Bandwidths {
		if r.GBs <= 0 {
			return fmt.Errorf("roofline: bandwidth roof %q non-positive", r.Name)
		}
	}
	return nil
}

// Peak returns the outermost compute roof in GFLOP/s.
func (m *Model) Peak() float64 { return m.Compute[0].GFLOPS }

// Bandwidth returns the outermost bandwidth roof in GB/s.
func (m *Model) Bandwidth() float64 { return m.Bandwidths[0].GBs }

// Ridge returns the ridge-point arithmetic intensity (FLOP/byte) of the
// outer roofs.
func (m *Model) Ridge() float64 { return m.Peak() / m.Bandwidth() }

// Attainable returns the attainable performance (GFLOP/s) at arithmetic
// intensity ai under the outer roofs: min(peak, bandwidth*ai).
func (m *Model) Attainable(ai float64) float64 {
	if ai <= 0 {
		return 0
	}
	return math.Min(m.Peak(), m.Bandwidth()*ai)
}

// AttainableUnder returns attainable performance under a named pair of
// ceilings, enabling "what if I don't vectorize" questions.
func (m *Model) AttainableUnder(ai float64, computeRoof, bandwidthRoof string) (float64, error) {
	var p, b float64
	found := false
	for _, r := range m.Compute {
		if r.Name == computeRoof {
			p, found = r.GFLOPS, true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("roofline: unknown compute roof %q", computeRoof)
	}
	found = false
	for _, r := range m.Bandwidths {
		if r.Name == bandwidthRoof {
			b, found = r.GBs, true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("roofline: unknown bandwidth roof %q", bandwidthRoof)
	}
	if ai <= 0 {
		return 0, nil
	}
	return math.Min(p, b*ai), nil
}

// Bound labels which resource limits a kernel.
type Bound int

// Bound values.
const (
	MemoryBound Bound = iota
	ComputeBound
)

// String implements fmt.Stringer.
func (b Bound) String() string {
	if b == MemoryBound {
		return "memory-bound"
	}
	return "compute-bound"
}

// Point is one kernel (version) placed on the roofline.
type Point struct {
	Name   string
	AI     float64 // arithmetic intensity, FLOP/byte
	GFLOPS float64 // measured performance
}

// PointFromMeasurement places a Measurement on the model.
func PointFromMeasurement(m *metrics.Measurement) Point {
	return Point{Name: m.Name, AI: m.ArithmeticIntensity(), GFLOPS: m.GFLOPS()}
}

// Analysis is the verdict of the model for one point.
type Analysis struct {
	Point      Point
	Bound      Bound
	Attainable float64 // GFLOP/s under the outer roofs at the point's AI
	// Fraction is achieved/attainable in [0, ~1]; low fractions mean the
	// kernel is far from its roof (latency, overheads, bad access pattern).
	Fraction float64
	// Headroom is the multiplicative speedup still available at this AI.
	Headroom float64
	Advice   string
}

// Analyze classifies a point and derives the standard advice string
// students must produce in the assignment report.
func (m *Model) Analyze(p Point) Analysis {
	att := m.Attainable(p.AI)
	a := Analysis{Point: p, Attainable: att}
	if p.AI < m.Ridge() {
		a.Bound = MemoryBound
	} else {
		a.Bound = ComputeBound
	}
	if att > 0 {
		a.Fraction = p.GFLOPS / att
	}
	if p.GFLOPS > 0 {
		a.Headroom = att / p.GFLOPS
	} else {
		a.Headroom = math.Inf(1)
	}
	switch {
	case a.Fraction >= 0.8:
		if a.Bound == MemoryBound {
			a.Advice = "near the bandwidth roof: raise arithmetic intensity (blocking, fusion) to go faster"
		} else {
			a.Advice = "near the compute roof: only algorithmic changes reduce time further"
		}
	case a.Bound == MemoryBound:
		a.Advice = "below the bandwidth roof: improve access pattern (unit stride, tiling, prefetch-friendliness)"
	default:
		a.Advice = "below the compute roof: expose ILP/SIMD/parallelism or remove dependency stalls"
	}
	return a
}

// Report renders a textual analysis of a set of points against the model —
// the deliverable format of Assignment 1.
func (m *Model) Report(points []Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Roofline model: %s\n", m.Name)
	fmt.Fprintf(&sb, "  peak %.1f GFLOP/s, bandwidth %.1f GB/s, ridge %.2f FLOP/byte\n",
		m.Peak(), m.Bandwidth(), m.Ridge())
	for _, r := range m.Compute[1:] {
		fmt.Fprintf(&sb, "  ceiling: %-24s %.1f GFLOP/s\n", r.Name, r.GFLOPS)
	}
	for _, r := range m.Bandwidths[1:] {
		fmt.Fprintf(&sb, "  ceiling: %-24s %.1f GB/s\n", r.Name, r.GBs)
	}
	for _, p := range points {
		a := m.Analyze(p)
		fmt.Fprintf(&sb, "%-24s AI=%6.3f  %8.2f GFLOP/s  %5.1f%% of %8.2f  [%s]\n      %s\n",
			p.Name, p.AI, p.GFLOPS, a.Fraction*100, a.Attainable, a.Bound, a.Advice)
	}
	return sb.String()
}
