package roofline

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"perfeng/internal/machine"
	"perfeng/internal/metrics"
)

func das5Model() *Model { return FromCPU(machine.DAS5CPU()) }

func TestFromCPURoofs(t *testing.T) {
	m := das5Model()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Peak()-307.2) > 1e-9 {
		t.Fatalf("Peak = %v", m.Peak())
	}
	if math.Abs(m.Bandwidth()-59) > 1e-9 {
		t.Fatalf("Bandwidth = %v", m.Bandwidth())
	}
	if math.Abs(m.Ridge()-307.2/59) > 1e-9 {
		t.Fatalf("Ridge = %v", m.Ridge())
	}
	// Three compute ceilings, descending.
	if len(m.Compute) != 3 || m.Compute[0].GFLOPS < m.Compute[1].GFLOPS {
		t.Fatalf("ceilings wrong: %+v", m.Compute)
	}
}

func TestAttainablePiecewise(t *testing.T) {
	m := das5Model()
	// Left of the ridge: bandwidth-limited.
	if got := m.Attainable(1); math.Abs(got-59) > 1e-9 {
		t.Fatalf("Attainable(1) = %v, want 59", got)
	}
	// Right of the ridge: flat at peak.
	if got := m.Attainable(100); math.Abs(got-307.2) > 1e-9 {
		t.Fatalf("Attainable(100) = %v, want 307.2", got)
	}
	// At the ridge both agree.
	r := m.Ridge()
	if math.Abs(m.Attainable(r)-m.Peak()) > 1e-9 {
		t.Fatal("ridge point mismatch")
	}
	if m.Attainable(0) != 0 || m.Attainable(-3) != 0 {
		t.Fatal("non-positive AI must yield 0")
	}
}

func TestAttainableUnder(t *testing.T) {
	m := das5Model()
	got, err := m.AttainableUnder(100, "no SIMD", "DRAM")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-38.4) > 1e-9 {
		t.Fatalf("no-SIMD attainable = %v, want 38.4", got)
	}
	if _, err := m.AttainableUnder(1, "bogus", "DRAM"); err == nil {
		t.Fatal("unknown compute roof must error")
	}
	if _, err := m.AttainableUnder(1, "no SIMD", "bogus"); err == nil {
		t.Fatal("unknown bandwidth roof must error")
	}
}

func TestAnalyzeClassification(t *testing.T) {
	m := das5Model()
	memPt := Point{Name: "spmv", AI: 0.25, GFLOPS: 10}
	a := m.Analyze(memPt)
	if a.Bound != MemoryBound {
		t.Fatalf("AI=0.25 should be memory-bound, ridge %v", m.Ridge())
	}
	if math.Abs(a.Attainable-0.25*59) > 1e-9 {
		t.Fatalf("attainable = %v", a.Attainable)
	}
	compPt := Point{Name: "matmul-tiled", AI: 20, GFLOPS: 200}
	a2 := m.Analyze(compPt)
	if a2.Bound != ComputeBound {
		t.Fatal("AI=20 should be compute-bound")
	}
	if a2.Fraction <= 0 || a2.Fraction > 1 {
		t.Fatalf("fraction = %v", a2.Fraction)
	}
	if a2.Headroom < 1 {
		t.Fatalf("headroom = %v", a2.Headroom)
	}
	zero := m.Analyze(Point{Name: "z", AI: 1, GFLOPS: 0})
	if !math.IsInf(zero.Headroom, 1) {
		t.Fatal("zero-GFLOPS headroom should be Inf")
	}
}

func TestAnalyzeAdviceBranches(t *testing.T) {
	m := das5Model()
	cases := []struct {
		p    Point
		want string
	}{
		{Point{"near-bw", 0.5, 0.95 * m.Attainable(0.5)}, "raise arithmetic intensity"},
		{Point{"near-peak", 50, 0.9 * m.Peak()}, "algorithmic"},
		{Point{"far-mem", 0.5, 0.1 * m.Attainable(0.5)}, "access pattern"},
		{Point{"far-comp", 50, 0.1 * m.Peak()}, "ILP/SIMD"},
	}
	for _, c := range cases {
		a := m.Analyze(c.p)
		if !strings.Contains(a.Advice, c.want) {
			t.Errorf("%s: advice %q missing %q", c.p.Name, a.Advice, c.want)
		}
	}
}

func TestCacheAwareModel(t *testing.T) {
	m := CacheAwareFromCPU(machine.DAS5CPU())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 bandwidth roofs: DRAM + 3 cache levels; L1 aggregate must be the
	// largest.
	if len(m.Bandwidths) != 4 {
		t.Fatalf("bandwidth roofs = %d, want 4", len(m.Bandwidths))
	}
	// L1: 64 B/cycle * 2.4 GHz * 8 cores = 1228.8 GB/s.
	if math.Abs(m.Bandwidth()-1228.8) > 1e-6 {
		t.Fatalf("outer bandwidth = %v, want 1228.8", m.Bandwidth())
	}
}

func TestFromGPU(t *testing.T) {
	m := FromGPU(machine.DAS5TitanX())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Peak()-6144) > 1e-9 {
		t.Fatalf("GPU peak = %v", m.Peak())
	}
	// PCIe roof must be far below the HBM roof.
	if m.Bandwidths[1].GBs >= m.Bandwidths[0].GBs {
		t.Fatal("PCIe roof should be the inner ceiling")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := &Model{Name: "x"}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty model must fail")
	}
	bad2 := &Model{Compute: []ComputeRoof{{"p", 0}}, Bandwidths: []BandwidthRoof{{"b", 1}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero roof must fail")
	}
	bad3 := &Model{Compute: []ComputeRoof{{"p", 1}}, Bandwidths: []BandwidthRoof{{"b", -1}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative roof must fail")
	}
}

func TestPointFromMeasurement(t *testing.T) {
	meas := &metrics.Measurement{Name: "k", FLOPs: 100, Bytes: 50,
		Seconds: []float64{1e-9}}
	p := PointFromMeasurement(meas)
	if p.AI != 2 || p.Name != "k" {
		t.Fatalf("point = %+v", p)
	}
	if math.Abs(p.GFLOPS-100) > 1e-9 {
		t.Fatalf("GFLOPS = %v", p.GFLOPS)
	}
}

func TestReportAndPlots(t *testing.T) {
	m := das5Model()
	pts := []Point{
		{"naive", 0.2, 1.5},
		{"tiled", 8, 50},
	}
	rep := m.Report(pts)
	for _, want := range []string{"naive", "tiled", "ridge", "memory-bound", "compute-bound"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	ascii := m.ASCIIPlot(pts, 60, 16)
	if !strings.Contains(ascii, "1 = naive") || !strings.Contains(ascii, "/") {
		t.Errorf("ascii plot incomplete:\n%s", ascii)
	}
	// Degenerate sizes are clamped, not fatal.
	if s := m.ASCIIPlot(pts, 1, 1); len(s) == 0 {
		t.Fatal("tiny plot should still render")
	}
	svg := m.SVGPlot(pts, 480, 320)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "naive") {
		t.Error("svg plot incomplete")
	}
	if !strings.Contains(m.SVGPlot(pts, 1, 1), "<svg") {
		t.Fatal("tiny svg should still render")
	}
}

// Property: attainable performance is monotonic in AI and never exceeds
// either outer roof.
func TestQuickAttainableBounds(t *testing.T) {
	m := das5Model()
	f := func(aiRaw float64) bool {
		ai := math.Abs(math.Mod(aiRaw, 1000))
		att := m.Attainable(ai)
		if att > m.Peak()+1e-9 || att > m.Bandwidth()*ai+1e-9 {
			return false
		}
		return m.Attainable(ai*2) >= att-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithMeasuredBandwidths(t *testing.T) {
	m := das5Model()
	m.WithMeasuredBandwidths(map[string]float64{
		"ws=32KiB": 400,
		"ws=8MiB":  120,
		"ws=1GiB":  45,
		"bogus":    0, // dropped
	})
	if len(m.Bandwidths) != 3 {
		t.Fatalf("roofs = %+v", m.Bandwidths)
	}
	if m.Bandwidth() != 400 {
		t.Fatalf("outer roof = %v", m.Bandwidth())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Empty input is a no-op.
	before := m.Bandwidth()
	m.WithMeasuredBandwidths(nil)
	if m.Bandwidth() != before {
		t.Fatal("nil input must not change the model")
	}
}
