package counters

import (
	"fmt"
	"strings"
)

// Derived metrics: the quantities performance engineers actually reason
// about, computed from raw event deltas the way LIKWID's performance groups
// do.

// Derived is a set of derived metrics computed from one stopped EventSet.
type Derived struct {
	// L1MissRatio, L2MissRatio, L3MissRatio are misses/accesses per level
	// (NaN-free: 0 when idle).
	L1MissRatio float64
	L2MissRatio float64
	L3MissRatio float64
	// MemBytes is the DRAM traffic in bytes (lines x line size).
	MemBytes float64
	// BytesPerAccess is DRAM bytes per L1 access — near 0 for
	// cache-resident code, rising toward line-size for streaming misses.
	BytesPerAccess float64
	// PrefetchAccuracy is prefetch hits / prefetches issued.
	PrefetchAccuracy float64
}

// DeriveFromSim computes the derived metrics from a simulator-backed set.
// lineSize is the cache line size in bytes.
func DeriveFromSim(s *EventSet, lineSize int) (Derived, error) {
	var d Derived
	ratio := func(acc, miss Event) float64 {
		a, errA := s.Value(acc)
		m, errM := s.Value(miss)
		if errA != nil || errM != nil || a == 0 {
			return 0
		}
		return float64(m) / float64(a)
	}
	if s.values == nil {
		return d, fmt.Errorf("counters: set has not been stopped")
	}
	d.L1MissRatio = ratio(L1DCA, L1DCM)
	d.L2MissRatio = ratio(L2DCA, L2DCM)
	d.L3MissRatio = ratio(L3DCA, L3DCM)
	if r, err := s.Value(MemRd); err == nil {
		if w, err2 := s.Value(MemWr); err2 == nil {
			d.MemBytes = float64(r+w) * float64(lineSize)
		}
	}
	if a, err := s.Value(L1DCA); err == nil && a > 0 {
		d.BytesPerAccess = d.MemBytes / float64(a)
	}
	if is, err := s.Value(PrfIs); err == nil && is > 0 {
		if ht, err2 := s.Value(PrfHt); err2 == nil {
			d.PrefetchAccuracy = float64(ht) / float64(is)
		}
	}
	return d, nil
}

// String renders the derived metrics.
func (d Derived) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "L1 miss %6.2f%%  L2 miss %6.2f%%  L3 miss %6.2f%%\n",
		d.L1MissRatio*100, d.L2MissRatio*100, d.L3MissRatio*100)
	fmt.Fprintf(&sb, "DRAM traffic %.1f KiB (%.3f B per L1 access)  prefetch accuracy %.0f%%\n",
		d.MemBytes/1024, d.BytesPerAccess, d.PrefetchAccuracy*100)
	return sb.String()
}
