package counters

import (
	"strings"
	"testing"

	"perfeng/internal/machine"
	"perfeng/internal/simulator"
)

func simSet(t *testing.T) (*EventSet, *simulator.Hierarchy) {
	t.Helper()
	h, err := simulator.FromCPU(machine.DAS5CPU())
	if err != nil {
		t.Fatal(err)
	}
	return NewEventSet(&SimBackend{H: h}), h
}

func TestSimBackendSupported(t *testing.T) {
	s, _ := simSet(t)
	evs := s.backend.Supported()
	want := map[Event]bool{L1DCA: true, L2DCM: true, L3DCA: true, MemRd: true}
	found := 0
	for _, e := range evs {
		if want[e] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("supported = %v", evs)
	}
}

func TestEventSetLifecycle(t *testing.T) {
	s, h := simSet(t)
	if err := s.Add(L1DCA, L1DCM, MemRd, MemWr); err != nil {
		t.Fatal(err)
	}
	if err := s.Measure(func() {
		simulator.TraceStreamTriad(h, 4096)
	}); err != nil {
		t.Fatal(err)
	}
	acc, err := s.Value(L1DCA)
	if err != nil || acc == 0 {
		t.Fatalf("L1DCA = %d, %v", acc, err)
	}
	miss, _ := s.Value(L1DCM)
	if miss == 0 || miss >= acc {
		t.Fatalf("L1DCM = %d vs %d accesses", miss, acc)
	}
	if len(s.Values()) != 4 {
		t.Fatalf("Values = %v", s.Values())
	}
	if !strings.Contains(s.String(), "PAPI_L1_DCA") {
		t.Fatal("String incomplete")
	}
}

func TestEventSetDeltas(t *testing.T) {
	s, h := simSet(t)
	if err := s.Add(L1DCA); err != nil {
		t.Fatal(err)
	}
	// Pre-existing traffic must not leak into the measured delta.
	simulator.TraceStreamTriad(h, 1024)
	if err := s.Measure(func() { simulator.TraceStrided(h, 100, 1) }); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Value(L1DCA)
	if v != 100 {
		t.Fatalf("delta = %d, want 100", v)
	}
}

func TestEventSetErrors(t *testing.T) {
	s, _ := simSet(t)
	if err := s.Start(); err == nil {
		t.Fatal("empty set Start must fail")
	}
	if err := s.Add(Event("BOGUS")); err == nil {
		t.Fatal("unsupported event must fail")
	}
	if err := s.Add(L1DCA); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err == nil {
		t.Fatal("Stop before Start must fail")
	}
	if _, err := s.Value(L1DCA); err == nil {
		t.Fatal("Value before Stop must fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("double Start must fail")
	}
	if err := s.Add(L1DCM); err == nil {
		t.Fatal("Add while running must fail")
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Value(L2DCA); err == nil {
		t.Fatal("Value of event not in set must fail")
	}
}

func TestRuntimeBackend(t *testing.T) {
	s := NewEventSet(RuntimeBackend{})
	if err := s.Add(Allocs, AllocBytes, Goroutines); err != nil {
		t.Fatal(err)
	}
	if err := s.Measure(func() {
		data := make([][]byte, 100)
		for i := range data {
			data[i] = make([]byte, 1024)
		}
		_ = data
	}); err != nil {
		t.Fatal(err)
	}
	ab, err := s.Value(AllocBytes)
	if err != nil || ab < 100*1024 {
		t.Fatalf("AllocBytes = %d, %v", ab, err)
	}
	if _, err := (RuntimeBackend{}).Read(L1DCA); err == nil {
		t.Fatal("runtime backend must reject simulator events")
	}
}

func TestDerived(t *testing.T) {
	s, h := simSet(t)
	if err := s.Add(L1DCA, L1DCM, L2DCA, L2DCM, L3DCA, L3DCM, MemRd, MemWr); err != nil {
		t.Fatal(err)
	}
	if err := s.Measure(func() { simulator.TraceStreamTriad(h, 1<<14) }); err != nil {
		t.Fatal(err)
	}
	d, err := DeriveFromSim(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming triad: ~1/8 L1 miss ratio, nonzero DRAM traffic.
	if d.L1MissRatio < 0.05 || d.L1MissRatio > 0.25 {
		t.Fatalf("L1 miss ratio = %v", d.L1MissRatio)
	}
	if d.MemBytes <= 0 {
		t.Fatal("no DRAM traffic recorded")
	}
	if !strings.Contains(d.String(), "DRAM") {
		t.Fatal("String incomplete")
	}
}

func TestDerivedBeforeStop(t *testing.T) {
	s, _ := simSet(t)
	if err := s.Add(L1DCA); err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveFromSim(s, 64); err == nil {
		t.Fatal("derive before stop must fail")
	}
}

func TestSimBackendLevelErrors(t *testing.T) {
	// Single-level hierarchy: L2/L3 events unsupported.
	l1, err := simulator.NewCache("L1", 8, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := simulator.NewHierarchy(l1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewEventSet(&SimBackend{H: h})
	if err := s.Add(L2DCA); err == nil {
		t.Fatal("L2 event on 1-level hierarchy must fail")
	}
	if err := s.Add(L1DCA, MemRd); err != nil {
		t.Fatal(err)
	}
}

func TestTLBEvents(t *testing.T) {
	h, err := simulator.FromCPU(machine.DAS5CPU())
	if err != nil {
		t.Fatal(err)
	}
	// Without a TLB the events are unsupported.
	s := NewEventSet(&SimBackend{H: h})
	if err := s.Add(TLBA); err == nil {
		t.Fatal("TLB event without TLB must fail")
	}
	// With a TLB attached, deltas flow.
	tlb, err := simulator.NewTLB(16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	h.AttachTLB(tlb)
	s2 := NewEventSet(&SimBackend{H: h})
	if err := s2.Add(TLBA, TLBM); err != nil {
		t.Fatal(err)
	}
	if err := s2.Measure(func() {
		for i := 0; i < 1000; i++ {
			h.Load(uint64(i)*4096, 8)
		}
	}); err != nil {
		t.Fatal(err)
	}
	a, _ := s2.Value(TLBA)
	m, _ := s2.Value(TLBM)
	if a != 1000 || m == 0 || m > a {
		t.Fatalf("TLB deltas: %d accesses, %d misses", a, m)
	}
}
