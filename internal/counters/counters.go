// Package counters provides a PAPI-like performance-counter interface
// (Assignment 4: "tools like Linux PERF, PAPI, LIKWID"): named events,
// event sets that are started/stopped around a region, and derived metrics
// (IPC, miss ratios, bandwidth).
//
// Two backends exist. The simulator backend reads the execution-driven
// cache simulator (package simulator), giving deterministic
// microarchitectural counts the way PAPI reads PMU registers. The runtime
// backend samples the Go runtime (allocations, GC, goroutines) — the
// software-counter analogue. Both expose the same EventSet API, so the
// pattern detector (package patterns) is backend-agnostic.
package counters

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"

	"perfeng/internal/simulator"
)

// Event names the counters the toolbox knows about. The names follow the
// PAPI preset style.
type Event string

// Simulator-backed events.
const (
	L1DCA Event = "PAPI_L1_DCA" // L1 data cache accesses
	L1DCM Event = "PAPI_L1_DCM" // L1 data cache misses
	L2DCA Event = "PAPI_L2_DCA"
	L2DCM Event = "PAPI_L2_DCM"
	L3DCA Event = "PAPI_L3_DCA"
	L3DCM Event = "PAPI_L3_DCM"
	MemRd Event = "MEM_LINES_IN"  // lines read from memory
	MemWr Event = "MEM_LINES_OUT" // lines written back to memory
	PrfIs Event = "PREFETCH_ISSUED"
	PrfHt Event = "PREFETCH_HITS"
	L1WBK Event = "L1_WRITEBACKS" // dirty lines written back from L1
	TLBA  Event = "PAPI_TLB_DM_A" // data TLB accesses (when a TLB is attached)
	TLBM  Event = "PAPI_TLB_DM"   // data TLB misses
)

// Runtime-backed events.
const (
	Allocs     Event = "GO_MALLOCS"
	AllocBytes Event = "GO_ALLOC_BYTES"
	GCCycles   Event = "GO_GC_CYCLES"
	Goroutines Event = "GO_GOROUTINES"
)

// Backend supplies raw counter values.
type Backend interface {
	// Supported lists the events this backend can count.
	Supported() []Event
	// Read returns the current cumulative value of the event.
	Read(e Event) (uint64, error)
}

// SimBackend reads counters from a cache-simulator hierarchy.
type SimBackend struct {
	H *simulator.Hierarchy
}

// simLevelEvents pairs the access/miss events of cache levels 1-3.
var simLevelEvents = [...][2]Event{{L1DCA, L1DCM}, {L2DCA, L2DCM}, {L3DCA, L3DCM}}

// Supported implements Backend.
func (b *SimBackend) Supported() []Event {
	evs := []Event{MemRd, MemWr, PrfIs, PrfHt, L1WBK}
	if b.H.TLB() != nil {
		evs = append(evs, TLBA, TLBM)
	}
	for i := range b.H.Levels {
		if i < len(simLevelEvents) {
			evs = append(evs, simLevelEvents[i][0], simLevelEvents[i][1])
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	return evs
}

// Read implements Backend.
func (b *SimBackend) Read(e Event) (uint64, error) {
	level := func(i int) (simulator.Stats, error) {
		if i >= len(b.H.Levels) {
			return simulator.Stats{}, fmt.Errorf("counters: no cache level %d", i+1)
		}
		return b.H.Levels[i].Stats(), nil
	}
	switch e {
	case L1DCA:
		s, err := level(0)
		return s.Accesses(), err
	case L1DCM:
		s, err := level(0)
		return s.Misses, err
	case L2DCA:
		s, err := level(1)
		return s.Accesses(), err
	case L2DCM:
		s, err := level(1)
		return s.Misses, err
	case L3DCA:
		s, err := level(2)
		return s.Accesses(), err
	case L3DCM:
		s, err := level(2)
		return s.Misses, err
	case MemRd:
		r, _ := b.H.Levels[len(b.H.Levels)-1].MemTraffic()
		return r, nil
	case MemWr:
		_, w := b.H.Levels[len(b.H.Levels)-1].MemTraffic()
		return w, nil
	case PrfIs:
		s, err := level(0)
		return s.PrefetchIssued, err
	case PrfHt:
		s, err := level(0)
		return s.PrefetchHits, err
	case L1WBK:
		s, err := level(0)
		return s.Writebacks, err
	case TLBA:
		t := b.H.TLB()
		if t == nil {
			return 0, fmt.Errorf("counters: no TLB attached")
		}
		return t.Hits() + t.Misses(), nil
	case TLBM:
		t := b.H.TLB()
		if t == nil {
			return 0, fmt.Errorf("counters: no TLB attached")
		}
		return t.Misses(), nil
	default:
		return 0, fmt.Errorf("counters: event %s not supported by simulator backend", e)
	}
}

// RuntimeBackend reads Go runtime statistics.
type RuntimeBackend struct{}

// Supported implements Backend.
func (RuntimeBackend) Supported() []Event {
	return []Event{AllocBytes, Allocs, GCCycles, Goroutines}
}

// Read implements Backend.
func (RuntimeBackend) Read(e Event) (uint64, error) {
	var ms runtime.MemStats
	switch e {
	case Allocs:
		runtime.ReadMemStats(&ms)
		return ms.Mallocs, nil
	case AllocBytes:
		runtime.ReadMemStats(&ms)
		return ms.TotalAlloc, nil
	case GCCycles:
		runtime.ReadMemStats(&ms)
		return uint64(ms.NumGC), nil
	case Goroutines:
		return uint64(runtime.NumGoroutine()), nil
	default:
		return 0, fmt.Errorf("counters: event %s not supported by runtime backend", e)
	}
}

// EventSet is a PAPI-style set: add events, Start, run the region, Stop,
// read the deltas.
type EventSet struct {
	backend Backend
	events  []Event
	start   map[Event]uint64
	values  map[Event]uint64
	running bool
}

// NewEventSet creates an event set over the backend.
func NewEventSet(b Backend) *EventSet {
	return &EventSet{backend: b}
}

// Add registers an event. It returns an error for events the backend
// cannot count, mirroring PAPI_add_event semantics.
func (s *EventSet) Add(evs ...Event) error {
	if s.running {
		return errors.New("counters: cannot add to a running set")
	}
	// Linear scan rather than a set: backends expose a handful of
	// events, and Add runs during session wiring where a scratch map
	// per call is pure overhead.
	supported := s.backend.Supported()
	for _, e := range evs {
		if !slices.Contains(supported, e) {
			return fmt.Errorf("counters: event %s not supported", e)
		}
		s.events = append(s.events, e)
	}
	return nil
}

// Events returns the events registered in the set, in Add order.
func (s *EventSet) Events() []Event {
	return append([]Event(nil), s.events...)
}

// Backend returns the backend the set reads from.
func (s *EventSet) Backend() Backend { return s.backend }

// ReadNow reads the current cumulative value of every event in the set
// without disturbing a running Start/Stop window — the sampling entry
// point a timeline consumer uses to record counter series between the
// PAPI-style start/stop deltas.
func (s *EventSet) ReadNow() (map[Event]uint64, error) {
	if len(s.events) == 0 {
		return nil, errors.New("counters: empty event set")
	}
	out := make(map[Event]uint64, len(s.events))
	for _, e := range s.events {
		v, err := s.backend.Read(e)
		if err != nil {
			return nil, err
		}
		out[e] = v
	}
	return out, nil
}

// Start snapshots the counters.
func (s *EventSet) Start() error {
	if s.running {
		return errors.New("counters: set already running")
	}
	if len(s.events) == 0 {
		return errors.New("counters: empty event set")
	}
	s.start = make(map[Event]uint64, len(s.events))
	for _, e := range s.events {
		v, err := s.backend.Read(e)
		if err != nil {
			return err
		}
		s.start[e] = v
	}
	s.running = true
	return nil
}

// Stop reads the counters and stores the deltas since Start.
func (s *EventSet) Stop() error {
	if !s.running {
		return errors.New("counters: set not running")
	}
	s.values = make(map[Event]uint64, len(s.events))
	for _, e := range s.events {
		v, err := s.backend.Read(e)
		if err != nil {
			return err
		}
		s.values[e] = v - s.start[e]
	}
	s.running = false
	return nil
}

// Value returns the delta of one event after Stop.
func (s *EventSet) Value(e Event) (uint64, error) {
	if s.values == nil {
		return 0, errors.New("counters: set has not been stopped")
	}
	v, ok := s.values[e]
	if !ok {
		return 0, fmt.Errorf("counters: event %s not in set", e)
	}
	return v, nil
}

// Values returns all deltas.
func (s *EventSet) Values() map[Event]uint64 {
	out := make(map[Event]uint64, len(s.values))
	for k, v := range s.values {
		out[k] = v
	}
	return out
}

// Measure wraps the Start/f/Stop cycle.
func (s *EventSet) Measure(f func()) error {
	if err := s.Start(); err != nil {
		return err
	}
	f()
	return s.Stop()
}

// String renders the deltas sorted by event name.
func (s *EventSet) String() string {
	keys := make([]string, 0, len(s.values))
	for e := range s.values {
		keys = append(keys, string(e))
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%-16s %12d\n", k, s.values[Event(k)])
	}
	return sb.String()
}
