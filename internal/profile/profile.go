// Package profile implements a lightweight instrumentation profiler in the
// Score-P style: code is annotated with named regions (enter/exit), the
// profiler accumulates per-region call counts and inclusive/exclusive time
// along the region stack, and the report is the classic flat profile
// students first meet in gprof/perf ("Use different performance
// engineering tools (e.g., profilers...)" — learning objective 8).
//
// The profiler is deliberately single-goroutine per Profiler instance
// (regions nest on one stack, as in Score-P's per-thread region stacks);
// concurrent code profiles each worker with its own Profiler and merges.
package profile

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Region accumulates the statistics of one named region.
type Region struct {
	Name      string
	Calls     int
	Inclusive time.Duration // time between enter and exit
	Exclusive time.Duration // inclusive minus time in nested regions
}

type frame struct {
	name    string
	start   time.Time
	inChild time.Duration
}

// SpanListener observes every region exit as a timestamped span: path is
// the full region stack (outermost first, the exiting region last), start
// and end bound the interval. A listener lets a timeline consumer (the
// obs tracing layer) mirror the profiler's regions without the profiler
// depending on it.
type SpanListener func(path []string, start, end time.Time)

// Profiler collects region statistics on one goroutine.
type Profiler struct {
	regions  map[string]*Region
	stack    []frame
	now      func() time.Time // injectable clock for tests
	listener SpanListener
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{regions: make(map[string]*Region), now: time.Now}
}

// Listen attaches a span listener called on every Exit; nil detaches.
func (p *Profiler) Listen(l SpanListener) { p.listener = l }

// Enter pushes a region onto the stack.
func (p *Profiler) Enter(name string) {
	p.stack = append(p.stack, frame{name: name, start: p.now()})
}

// Exit pops the current region. It returns an error when the stack is
// empty or the name does not match the current region (unbalanced
// instrumentation — the classic user error Score-P also diagnoses).
func (p *Profiler) Exit(name string) error {
	if len(p.stack) == 0 {
		return errors.New("profile: exit with empty region stack")
	}
	top := p.stack[len(p.stack)-1]
	if top.name != name {
		return fmt.Errorf("profile: exit %q does not match current region %q", name, top.name)
	}
	p.stack = p.stack[:len(p.stack)-1]
	end := p.now()
	elapsed := end.Sub(top.start)
	if p.listener != nil {
		path := make([]string, 0, len(p.stack)+1)
		for _, f := range p.stack {
			path = append(path, f.name)
		}
		p.listener(append(path, name), top.start, end)
	}

	r, ok := p.regions[name]
	if !ok {
		r = &Region{Name: name}
		p.regions[name] = r
	}
	r.Calls++
	r.Inclusive += elapsed
	r.Exclusive += elapsed - top.inChild
	// Charge this region's time to the parent's child bucket.
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].inChild += elapsed
	}
	return nil
}

// Do profiles one function call as a region.
func (p *Profiler) Do(name string, f func()) error {
	p.Enter(name)
	f()
	return p.Exit(name)
}

// Depth returns the current region-stack depth.
func (p *Profiler) Depth() int { return len(p.stack) }

// Regions returns the accumulated regions sorted by exclusive time,
// largest first.
func (p *Profiler) Regions() []Region {
	out := make([]Region, 0, len(p.regions))
	for _, r := range p.regions {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalExclusive returns the sum of exclusive times (the profiled wall
// clock, up to instrumentation overhead).
func (p *Profiler) TotalExclusive() time.Duration {
	var t time.Duration
	for _, r := range p.regions {
		t += r.Exclusive
	}
	return t
}

// Merge adds other's statistics into p (for per-worker profiles).
func (p *Profiler) Merge(other *Profiler) error {
	if other.Depth() != 0 {
		return errors.New("profile: cannot merge a profiler with open regions")
	}
	for name, r := range other.regions {
		dst, ok := p.regions[name]
		if !ok {
			dst = &Region{Name: name}
			p.regions[name] = dst
		}
		dst.Calls += r.Calls
		dst.Inclusive += r.Inclusive
		dst.Exclusive += r.Exclusive
	}
	return nil
}

// Report renders the flat profile: regions by exclusive time with their
// share of the total.
func (p *Profiler) Report() string {
	regions := p.Regions()
	total := p.TotalExclusive()
	var sb strings.Builder
	sb.WriteString("flat profile (by exclusive time):\n")
	sb.WriteString("  excl%   exclusive    inclusive    calls  region\n")
	for _, r := range regions {
		pct := 0.0
		if total > 0 {
			pct = float64(r.Exclusive) / float64(total) * 100
		}
		fmt.Fprintf(&sb, "  %5.1f%%  %-11s  %-11s  %5d  %s\n",
			pct, r.Exclusive.Round(time.Microsecond),
			r.Inclusive.Round(time.Microsecond), r.Calls, r.Name)
	}
	return sb.String()
}
