package profile

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances by a fixed step on every call, making the arithmetic
// exact.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newFake(step time.Duration) *Profiler {
	p := New()
	c := &fakeClock{t: time.Unix(0, 0), step: step}
	p.now = c.now
	return p
}

func TestFlatRegions(t *testing.T) {
	p := newFake(time.Millisecond)
	// Each now() call advances 1ms: enter(+1ms) ... exit(+1ms) => each
	// region spans exactly 1ms.
	p.Enter("a")
	if err := p.Exit("a"); err != nil {
		t.Fatal(err)
	}
	p.Enter("a")
	if err := p.Exit("a"); err != nil {
		t.Fatal(err)
	}
	rs := p.Regions()
	if len(rs) != 1 || rs[0].Calls != 2 {
		t.Fatalf("regions = %+v", rs)
	}
	if rs[0].Inclusive != 2*time.Millisecond || rs[0].Exclusive != 2*time.Millisecond {
		t.Fatalf("times = %+v", rs[0])
	}
}

func TestNestedExclusiveTime(t *testing.T) {
	p := newFake(time.Millisecond)
	// Timeline (1ms per tick): enter outer (t=1), enter inner (t=2),
	// exit inner (t=3, inner incl=1ms), exit outer (t=4, outer incl=3ms,
	// excl=3-1=2ms).
	p.Enter("outer")
	p.Enter("inner")
	if err := p.Exit("inner"); err != nil {
		t.Fatal(err)
	}
	if err := p.Exit("outer"); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Region{}
	for _, r := range p.Regions() {
		byName[r.Name] = r
	}
	if byName["inner"].Inclusive != time.Millisecond {
		t.Fatalf("inner = %+v", byName["inner"])
	}
	if byName["outer"].Inclusive != 3*time.Millisecond {
		t.Fatalf("outer inclusive = %v", byName["outer"].Inclusive)
	}
	if byName["outer"].Exclusive != 2*time.Millisecond {
		t.Fatalf("outer exclusive = %v", byName["outer"].Exclusive)
	}
}

func TestUnbalancedInstrumentation(t *testing.T) {
	p := New()
	if err := p.Exit("ghost"); err == nil {
		t.Fatal("exit on empty stack must fail")
	}
	p.Enter("a")
	if err := p.Exit("b"); err == nil {
		t.Fatal("mismatched exit must fail")
	}
	if p.Depth() != 1 {
		t.Fatalf("depth = %d after failed exit", p.Depth())
	}
	if err := p.Exit("a"); err != nil {
		t.Fatal(err)
	}
}

func TestDo(t *testing.T) {
	p := New()
	ran := false
	if err := p.Do("work", func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran || p.Depth() != 0 {
		t.Fatal("Do did not run or left the stack dirty")
	}
	if p.Regions()[0].Calls != 1 {
		t.Fatal("region not recorded")
	}
}

func TestMerge(t *testing.T) {
	a := newFake(time.Millisecond)
	a.Enter("x")
	_ = a.Exit("x")
	b := newFake(time.Millisecond)
	b.Enter("x")
	_ = b.Exit("x")
	b.Enter("y")
	_ = b.Exit("y")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Region{}
	for _, r := range a.Regions() {
		byName[r.Name] = r
	}
	if byName["x"].Calls != 2 || byName["y"].Calls != 1 {
		t.Fatalf("merged = %+v", byName)
	}
	open := New()
	open.Enter("pending")
	if err := a.Merge(open); err == nil {
		t.Fatal("merging an open profiler must fail")
	}
}

func TestReportOrdering(t *testing.T) {
	p := newFake(time.Millisecond)
	// "hot" called 3 times (3ms exclusive), "cold" once (1ms).
	for i := 0; i < 3; i++ {
		p.Enter("hot")
		_ = p.Exit("hot")
	}
	p.Enter("cold")
	_ = p.Exit("cold")
	rs := p.Regions()
	if rs[0].Name != "hot" {
		t.Fatalf("hottest region should lead: %+v", rs)
	}
	rep := p.Report()
	if !strings.Contains(rep, "hot") || !strings.Contains(rep, "excl%") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
	if strings.Index(rep, "hot") > strings.Index(rep, "cold") {
		t.Fatal("report not sorted by exclusive time")
	}
	if p.TotalExclusive() != 4*time.Millisecond {
		t.Fatalf("total = %v", p.TotalExclusive())
	}
}

func TestRealClockSmoke(t *testing.T) {
	p := New()
	if err := p.Do("sleep", func() { time.Sleep(2 * time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
	if p.Regions()[0].Inclusive < time.Millisecond {
		t.Fatal("real clock did not accumulate")
	}
}
