package profile

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances by a fixed step on every call, making the arithmetic
// exact.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newFake(step time.Duration) *Profiler {
	p := New()
	c := &fakeClock{t: time.Unix(0, 0), step: step}
	p.now = c.now
	return p
}

func TestFlatRegions(t *testing.T) {
	p := newFake(time.Millisecond)
	// Each now() call advances 1ms: enter(+1ms) ... exit(+1ms) => each
	// region spans exactly 1ms.
	p.Enter("a")
	if err := p.Exit("a"); err != nil {
		t.Fatal(err)
	}
	p.Enter("a")
	if err := p.Exit("a"); err != nil {
		t.Fatal(err)
	}
	rs := p.Regions()
	if len(rs) != 1 || rs[0].Calls != 2 {
		t.Fatalf("regions = %+v", rs)
	}
	if rs[0].Inclusive != 2*time.Millisecond || rs[0].Exclusive != 2*time.Millisecond {
		t.Fatalf("times = %+v", rs[0])
	}
}

func TestNestedExclusiveTime(t *testing.T) {
	p := newFake(time.Millisecond)
	// Timeline (1ms per tick): enter outer (t=1), enter inner (t=2),
	// exit inner (t=3, inner incl=1ms), exit outer (t=4, outer incl=3ms,
	// excl=3-1=2ms).
	p.Enter("outer")
	p.Enter("inner")
	if err := p.Exit("inner"); err != nil {
		t.Fatal(err)
	}
	if err := p.Exit("outer"); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Region{}
	for _, r := range p.Regions() {
		byName[r.Name] = r
	}
	if byName["inner"].Inclusive != time.Millisecond {
		t.Fatalf("inner = %+v", byName["inner"])
	}
	if byName["outer"].Inclusive != 3*time.Millisecond {
		t.Fatalf("outer inclusive = %v", byName["outer"].Inclusive)
	}
	if byName["outer"].Exclusive != 2*time.Millisecond {
		t.Fatalf("outer exclusive = %v", byName["outer"].Exclusive)
	}
}

func TestUnbalancedInstrumentation(t *testing.T) {
	p := New()
	if err := p.Exit("ghost"); err == nil {
		t.Fatal("exit on empty stack must fail")
	}
	p.Enter("a")
	if err := p.Exit("b"); err == nil {
		t.Fatal("mismatched exit must fail")
	}
	if p.Depth() != 1 {
		t.Fatalf("depth = %d after failed exit", p.Depth())
	}
	if err := p.Exit("a"); err != nil {
		t.Fatal(err)
	}
}

func TestDo(t *testing.T) {
	p := New()
	ran := false
	if err := p.Do("work", func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran || p.Depth() != 0 {
		t.Fatal("Do did not run or left the stack dirty")
	}
	if p.Regions()[0].Calls != 1 {
		t.Fatal("region not recorded")
	}
}

func TestMerge(t *testing.T) {
	a := newFake(time.Millisecond)
	a.Enter("x")
	_ = a.Exit("x")
	b := newFake(time.Millisecond)
	b.Enter("x")
	_ = b.Exit("x")
	b.Enter("y")
	_ = b.Exit("y")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Region{}
	for _, r := range a.Regions() {
		byName[r.Name] = r
	}
	if byName["x"].Calls != 2 || byName["y"].Calls != 1 {
		t.Fatalf("merged = %+v", byName)
	}
	open := New()
	open.Enter("pending")
	if err := a.Merge(open); err == nil {
		t.Fatal("merging an open profiler must fail")
	}
}

func TestReportOrdering(t *testing.T) {
	p := newFake(time.Millisecond)
	// "hot" called 3 times (3ms exclusive), "cold" once (1ms).
	for i := 0; i < 3; i++ {
		p.Enter("hot")
		_ = p.Exit("hot")
	}
	p.Enter("cold")
	_ = p.Exit("cold")
	rs := p.Regions()
	if rs[0].Name != "hot" {
		t.Fatalf("hottest region should lead: %+v", rs)
	}
	rep := p.Report()
	if !strings.Contains(rep, "hot") || !strings.Contains(rep, "excl%") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
	if strings.Index(rep, "hot") > strings.Index(rep, "cold") {
		t.Fatal("report not sorted by exclusive time")
	}
	if p.TotalExclusive() != 4*time.Millisecond {
		t.Fatalf("total = %v", p.TotalExclusive())
	}
}

func TestRealClockSmoke(t *testing.T) {
	p := New()
	if err := p.Do("sleep", func() { time.Sleep(2 * time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
	if p.Regions()[0].Inclusive < time.Millisecond {
		t.Fatal("real clock did not accumulate")
	}
}

// TestMergeConcurrentWorkers exercises the documented concurrent-workers
// pattern: each worker goroutine profiles with its own Profiler, and the
// per-worker profiles merge into one report afterwards.
func TestMergeConcurrentWorkers(t *testing.T) {
	const workers = 4
	profs := make([]*Profiler, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := New()
			// Every worker runs the shared phase twice and its own
			// phase once, with nesting.
			for i := 0; i < 2; i++ {
				p.Enter("work")
				p.Enter("inner")
				time.Sleep(time.Millisecond)
				if err := p.Exit("inner"); err != nil {
					t.Error(err)
				}
				if err := p.Exit("work"); err != nil {
					t.Error(err)
				}
			}
			if err := p.Do(fmt.Sprintf("setup-%d", w), func() {}); err != nil {
				t.Error(err)
			}
			profs[w] = p
		}(w)
	}
	wg.Wait()

	total := New()
	for _, p := range profs {
		if err := total.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	regions := make(map[string]Region)
	for _, r := range total.Regions() {
		regions[r.Name] = r
	}
	// workers x 2 calls of the shared regions, one setup region each.
	if got := regions["work"].Calls; got != workers*2 {
		t.Fatalf("work calls = %d, want %d", got, workers*2)
	}
	if got := regions["inner"].Calls; got != workers*2 {
		t.Fatalf("inner calls = %d, want %d", got, workers*2)
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("setup-%d", w)
		if got := regions[name].Calls; got != 1 {
			t.Fatalf("%s calls = %d, want 1", name, got)
		}
	}
	// Inclusive time aggregates across workers and stays >= the nested
	// child's share; exclusive excludes it.
	if regions["work"].Inclusive < regions["inner"].Inclusive {
		t.Fatal("merged inclusive time lost nesting")
	}
	if regions["work"].Exclusive > regions["work"].Inclusive {
		t.Fatal("exclusive exceeds inclusive after merge")
	}
	// The merged report renders every region.
	rep := total.Report()
	for name := range regions {
		if !strings.Contains(rep, name) {
			t.Fatalf("merged report missing %q:\n%s", name, rep)
		}
	}
}

// TestMergeDeterministic pins the merge arithmetic with fake clocks.
func TestMergeDeterministic(t *testing.T) {
	a := newFake(time.Millisecond)
	b := newFake(time.Millisecond)
	for _, p := range []*Profiler{a, b} {
		p.Enter("outer")
		p.Enter("inner")
		_ = p.Exit("inner") // inner: 1ms inclusive
		_ = p.Exit("outer") // outer: 3ms inclusive, 2ms exclusive
	}
	total := New()
	if err := total.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := total.Merge(b); err != nil {
		t.Fatal(err)
	}
	regions := make(map[string]Region)
	for _, r := range total.Regions() {
		regions[r.Name] = r
	}
	if got := regions["outer"]; got.Inclusive != 6*time.Millisecond ||
		got.Exclusive != 4*time.Millisecond || got.Calls != 2 {
		t.Fatalf("outer = %+v", got)
	}
	if got := regions["inner"]; got.Inclusive != 2*time.Millisecond ||
		got.Exclusive != 2*time.Millisecond || got.Calls != 2 {
		t.Fatalf("inner = %+v", got)
	}
}

// TestSpanListener verifies the observability hook: every Exit reports
// the full region stack and interval, and detaching stops the stream.
func TestSpanListener(t *testing.T) {
	p := newFake(time.Millisecond)
	type span struct {
		path       []string
		start, end time.Time
	}
	var got []span
	p.Listen(func(path []string, start, end time.Time) {
		got = append(got, span{append([]string(nil), path...), start, end})
	})
	p.Enter("outer")
	p.Enter("inner")
	_ = p.Exit("inner")
	_ = p.Exit("outer")
	if len(got) != 2 {
		t.Fatalf("listener calls = %d, want 2", len(got))
	}
	if strings.Join(got[0].path, "/") != "outer/inner" {
		t.Fatalf("inner path = %v", got[0].path)
	}
	if strings.Join(got[1].path, "/") != "outer" {
		t.Fatalf("outer path = %v", got[1].path)
	}
	if d := got[0].end.Sub(got[0].start); d != time.Millisecond {
		t.Fatalf("inner interval = %v", d)
	}
	p.Listen(nil)
	p.Enter("quiet")
	_ = p.Exit("quiet")
	if len(got) != 2 {
		t.Fatal("detached listener still called")
	}
}
