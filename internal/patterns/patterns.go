// Package patterns implements performance patterns in the sense of Treibig,
// Hager & Wellein ("Performance Patterns and Hardware Metrics on Modern
// Multicore Processors"), the backbone of Assignment 4: each pattern is a
// recognizable pathology with a counter signature, a synthetic kernel that
// exhibits it, and a standard fix. The detector scores counter readings
// against every known signature, exactly the diagnostic loop students
// practice ("understand the correlation of performance patterns and
// observed counters values").
package patterns

import (
	"fmt"
	"sort"
	"strings"

	"perfeng/internal/counters"
	"perfeng/internal/machine"
	"perfeng/internal/simulator"
)

// Features are the normalized counter-derived quantities signatures match
// on.
type Features struct {
	L1MissRatio float64
	L2MissRatio float64
	L3MissRatio float64
	// FillRatio is L1 lines filled (demand misses + prefetch fills) per
	// access — the traffic-oriented miss ratio that stays meaningful when
	// the prefetcher hides demand misses.
	FillRatio        float64
	BytesPerAccess   float64 // DRAM bytes per L1 access
	PrefetchAccuracy float64
	WritebackRatio   float64 // L1 writebacks per L1 access
	TLBMissRatio     float64 // dTLB misses per translation (0 without TLB)
}

// Pattern is one named pathology.
type Pattern struct {
	Name        string
	Description string
	Fix         string
	// Score maps features to a match confidence in [0, 1].
	Score func(Features) float64
}

// Match is a detector verdict for one pattern.
type Match struct {
	Pattern *Pattern
	Score   float64
}

// clamp01 bounds a score into [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ramp returns 0 below lo, 1 above hi, linear in between.
func ramp(v, lo, hi float64) float64 {
	if hi == lo {
		if v >= hi {
			return 1
		}
		return 0
	}
	return clamp01((v - lo) / (hi - lo))
}

// inverseRamp returns 1 below lo, 0 above hi.
func inverseRamp(v, lo, hi float64) float64 { return 1 - ramp(v, lo, hi) }

// Known returns the pattern catalogue.
func Known() []*Pattern {
	return []*Pattern{
		{
			Name:        "cache-resident",
			Description: "working set fits in cache; all miss ratios near zero",
			Fix:         "nothing to fix at the memory level — optimize in-core (ILP, SIMD)",
			Score: func(f Features) float64 {
				return inverseRamp(f.FillRatio, 0.02, 0.10) *
					inverseRamp(f.BytesPerAccess, 0.5, 4)
			},
		},
		{
			Name:        "bandwidth-saturation",
			Description: "streaming access at line granularity; miss ratio ~1/(line/elem), DRAM traffic equals compulsory traffic",
			Fix:         "raise arithmetic intensity (blocking, kernel fusion, smaller data types)",
			Score: func(f Features) float64 {
				// ~0.125 fills/access for 8B elements on 64B lines.
				center := ramp(f.FillRatio, 0.05, 0.10) *
					inverseRamp(f.FillRatio, 0.25, 0.5)
				traffic := ramp(f.BytesPerAccess, 4, 7)
				return center * traffic
			},
		},
		{
			Name:        "strided-access",
			Description: "large stride wastes most of every cache line: miss ratio near 1, prefetcher still effective (sequential lines)",
			Fix:         "restructure data layout (AoS->SoA, transpose) for unit stride",
			Score: func(f Features) float64 {
				return ramp(f.FillRatio, 0.5, 0.9) *
					ramp(f.PrefetchAccuracy, 0.3, 0.7)
			},
		},
		{
			Name:        "latency-bound",
			Description: "dependent irregular accesses defeat the prefetcher: miss ratio near 1 with useless prefetches",
			Fix:         "improve locality (blocking, sorting, software prefetch) or overlap independent chains",
			Score: func(f Features) float64 {
				return ramp(f.FillRatio, 0.5, 0.9) *
					inverseRamp(f.PrefetchAccuracy, 0.1, 0.4)
			},
		},
		{
			Name:        "tlb-thrash",
			Description: "page-granular access pattern: every translation misses the dTLB while cache behaviour alone looks merely strided",
			Fix:         "huge pages, page-aware blocking, or layout changes that raise per-page reuse",
			Score: func(f Features) float64 {
				return ramp(f.TLBMissRatio, 0.2, 0.6)
			},
		},
		{
			Name:        "write-heavy-eviction",
			Description: "dirty working set exceeds the cache: high writeback traffic amplifies every miss",
			Fix:         "blocking to keep the write working set resident, or streaming stores",
			Score: func(f Features) float64 {
				// A pure store stream writes back one line per 8 stores
				// (~0.125 wb/access); the ramp saturates there.
				return ramp(f.WritebackRatio, 0.02, 0.10) *
					ramp(f.FillRatio, 0.04, 0.12)
			},
		},
	}
}

// Detect scores the features against every known pattern and returns
// matches with score >= threshold, best first.
func Detect(f Features, threshold float64) []Match {
	known := Known()
	out := make([]Match, 0, len(known))
	for _, p := range known {
		s := p.Score(f)
		if s >= threshold {
			out = append(out, Match{Pattern: p, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// FeaturesFromSet derives Features from a stopped simulator-backed event
// set. The set must contain the L1/L2/L3, memory, prefetch and writeback
// events (see FullEventSet).
func FeaturesFromSet(s *counters.EventSet, lineSize int) (Features, error) {
	d, err := counters.DeriveFromSim(s, lineSize)
	if err != nil {
		return Features{}, err
	}
	f := Features{
		L1MissRatio:      d.L1MissRatio,
		L2MissRatio:      d.L2MissRatio,
		L3MissRatio:      d.L3MissRatio,
		BytesPerAccess:   d.BytesPerAccess,
		PrefetchAccuracy: d.PrefetchAccuracy,
	}
	acc, accErr := s.Value(counters.L1DCA)
	if wb, err := s.Value(counters.L1WBK); err == nil && accErr == nil && acc > 0 {
		f.WritebackRatio = float64(wb) / float64(acc)
	}
	if accErr == nil && acc > 0 {
		miss, missErr := s.Value(counters.L1DCM)
		pf, pfErr := s.Value(counters.PrfIs)
		if missErr == nil {
			fills := float64(miss)
			if pfErr == nil {
				fills += float64(pf)
			}
			f.FillRatio = fills / float64(acc)
		}
	}
	if ta, err := s.Value(counters.TLBA); err == nil && ta > 0 {
		if tm, err2 := s.Value(counters.TLBM); err2 == nil {
			f.TLBMissRatio = float64(tm) / float64(ta)
		}
	}
	return f, nil
}

// fullBaseEvents is the unconditional core of FullEventSet, hoisted so
// per-window Diagnose loops do not rebuild the list on every call.
var fullBaseEvents = [...]counters.Event{
	counters.L1DCA, counters.L1DCM, counters.MemRd, counters.MemWr,
	counters.PrfIs, counters.PrfHt, counters.L1WBK,
}

// FullEventSet builds an event set with everything the detector needs over
// a simulator hierarchy.
func FullEventSet(h *simulator.Hierarchy) (*counters.EventSet, error) {
	s := counters.NewEventSet(&counters.SimBackend{H: h})
	evs := append([]counters.Event(nil), fullBaseEvents[:]...)
	if h.TLB() != nil {
		evs = append(evs, counters.TLBA, counters.TLBM)
	}
	if len(h.Levels) >= 2 {
		evs = append(evs, counters.L2DCA, counters.L2DCM)
	}
	if len(h.Levels) >= 3 {
		evs = append(evs, counters.L3DCA, counters.L3DCM)
	}
	if err := s.Add(evs...); err != nil {
		return nil, err
	}
	return s, nil
}

// Diagnose runs a trace function on a fresh prefetch-enabled hierarchy of
// the given CPU model, collects the counters, and returns the features and
// pattern matches — the one-call version of the Assignment 4 workflow.
func Diagnose(cpu machine.CPU, trace func(*simulator.Hierarchy)) (Features, []Match, error) {
	h, err := simulator.FromCPU(cpu)
	if err != nil {
		return Features{}, nil, err
	}
	h.Levels[0].NextLinePrefetch = true
	if tlb, terr := simulator.NewTLB(64, 4096); terr == nil {
		h.AttachTLB(tlb)
	}
	set, err := FullEventSet(h)
	if err != nil {
		return Features{}, nil, err
	}
	if err := set.Measure(func() { trace(h) }); err != nil {
		return Features{}, nil, err
	}
	line := h.Levels[0].LineSize
	f, err := FeaturesFromSet(set, line)
	if err != nil {
		return Features{}, nil, err
	}
	return f, Detect(f, 0.5), nil
}

// Report renders the matches as the diagnostic table students hand in.
func Report(f Features, matches []Match) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "features: L1 %.1f%%  fill %.1f%%  L2 %.1f%%  L3 %.1f%%  B/acc %.2f  pf %.0f%%  wb %.1f%%\n",
		f.L1MissRatio*100, f.FillRatio*100, f.L2MissRatio*100, f.L3MissRatio*100,
		f.BytesPerAccess, f.PrefetchAccuracy*100, f.WritebackRatio*100)
	if len(matches) == 0 {
		sb.WriteString("no pattern above threshold\n")
		return sb.String()
	}
	for _, m := range matches {
		fmt.Fprintf(&sb, "%-24s %.0f%%  %s\n    fix: %s\n",
			m.Pattern.Name, m.Score*100, m.Pattern.Description, m.Pattern.Fix)
	}
	return sb.String()
}
