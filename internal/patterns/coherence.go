package patterns

import "fmt"

// False sharing needs more than one cache to exist at all, so the detector
// above cannot see it; this file adds the minimal two-core MSI-style
// coherence model that makes the pattern observable: two private caches
// snooping each other's writes. A write to a line present in the other
// cache invalidates it there; the invalidation count is the false-sharing
// counter (the "HITM"/remote-cache events of real PMUs).

// CoherentPair models two single-level private caches with write-invalidate
// coherence.
type CoherentPair struct {
	LineSize int
	// lines[i] maps line address -> dirty for core i.
	lines [2]map[uint64]bool
	// Invalidations counts cross-core invalidations (the false-sharing
	// signal).
	Invalidations uint64
	// Accesses counts total accesses from both cores.
	Accesses uint64
}

// NewCoherentPair creates the pair with the given line size (power of two).
func NewCoherentPair(lineSize int) (*CoherentPair, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("patterns: bad line size %d", lineSize)
	}
	return &CoherentPair{
		LineSize: lineSize,
		lines:    [2]map[uint64]bool{make(map[uint64]bool), make(map[uint64]bool)},
	}, nil
}

// Access performs one access from core (0 or 1).
func (c *CoherentPair) Access(core int, addr uint64, write bool) {
	c.Accesses++
	line := addr / uint64(c.LineSize)
	other := 1 - core
	if write {
		// Write-invalidate: evict the line from the other core.
		if _, ok := c.lines[other][line]; ok {
			delete(c.lines[other], line)
			c.Invalidations++
		}
		c.lines[core][line] = true
	} else {
		if _, ok := c.lines[core][line]; !ok {
			c.lines[core][line] = false
		}
	}
}

// InvalidationRate returns invalidations per access.
func (c *CoherentPair) InvalidationRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Invalidations) / float64(c.Accesses)
}

// FalseSharingProbe runs the classic two-counter experiment: both cores
// increment their own counter in a shared array. With padded == false the
// counters share a cache line and every increment invalidates the peer;
// with padding they live on separate lines and invalidations vanish.
// It returns the invalidation rate.
func FalseSharingProbe(iterations int, padded bool, lineSize int) (float64, error) {
	c, err := NewCoherentPair(lineSize)
	if err != nil {
		return 0, err
	}
	stride := uint64(8)
	if padded {
		stride = uint64(lineSize)
	}
	for i := 0; i < iterations; i++ {
		for core := 0; core < 2; core++ {
			addr := uint64(core) * stride
			c.Access(core, addr, false) // read own counter
			c.Access(core, addr, true)  // write it back
		}
	}
	return c.InvalidationRate(), nil
}

// FalseSharingVerdict interprets the probe pair (the before/after of the
// padding fix) the way a student report should.
func FalseSharingVerdict(unpaddedRate, paddedRate float64) string {
	if unpaddedRate > 10*paddedRate && unpaddedRate > 0.05 {
		return fmt.Sprintf(
			"false sharing confirmed: %.1f%% invalidations unpadded vs %.1f%% padded — pad per-thread data to cache-line size",
			unpaddedRate*100, paddedRate*100)
	}
	return "no false sharing detected"
}
