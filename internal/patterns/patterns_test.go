package patterns

import (
	"strings"
	"testing"

	"perfeng/internal/machine"
	"perfeng/internal/simulator"
)

func TestRampHelpers(t *testing.T) {
	if ramp(0, 1, 2) != 0 || ramp(3, 1, 2) != 1 || ramp(1.5, 1, 2) != 0.5 {
		t.Fatal("ramp wrong")
	}
	if inverseRamp(0, 1, 2) != 1 || inverseRamp(3, 1, 2) != 0 {
		t.Fatal("inverseRamp wrong")
	}
	if ramp(5, 2, 2) != 1 || ramp(1, 2, 2) != 0 {
		t.Fatal("degenerate ramp wrong")
	}
}

// diagnose the four synthetic kernels and check the top pattern.
func TestDiagnoseSyntheticKernels(t *testing.T) {
	cpu := machine.DAS5CPU()
	cases := []struct {
		name  string
		trace func(*simulator.Hierarchy)
		want  string
	}{
		{"resident", func(h *simulator.Hierarchy) {
			for pass := 0; pass < 20; pass++ {
				simulator.TraceStrided(h, 512, 1) // 4 KiB, L1-resident
			}
		}, "cache-resident"},
		{"streaming", func(h *simulator.Hierarchy) {
			simulator.TraceStreamTriad(h, 1<<16)
		}, "bandwidth-saturation"},
		{"strided", func(h *simulator.Hierarchy) {
			// Stride 8 doubles = exactly one line: every access misses
			// but the next-line prefetcher stays accurate.
			simulator.TraceStrided(h, 1<<15, 8)
		}, "strided-access"},
		{"random", func(h *simulator.Hierarchy) {
			simulator.TraceRandom(h, 1<<15, 1<<22, 7)
		}, "latency-bound"},
	}
	for _, tc := range cases {
		f, matches, err := Diagnose(cpu, tc.trace)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(matches) == 0 {
			t.Fatalf("%s: no match (features %+v)", tc.name, f)
		}
		if matches[0].Pattern.Name != tc.want {
			t.Errorf("%s: top pattern %s (%.2f), want %s (features %+v)",
				tc.name, matches[0].Pattern.Name, matches[0].Score, tc.want, f)
		}
	}
}

func TestDetectThreshold(t *testing.T) {
	// A perfectly resident profile must not match the saturation pattern.
	f := Features{L1MissRatio: 0.001, FillRatio: 0.001, BytesPerAccess: 0.01}
	matches := Detect(f, 0.5)
	if len(matches) != 1 || matches[0].Pattern.Name != "cache-resident" {
		t.Fatalf("matches = %+v", matches)
	}
	// Threshold 1.01 excludes everything.
	if got := Detect(f, 1.01); len(got) != 0 {
		t.Fatal("impossible threshold matched")
	}
}

func TestWriteHeavyPattern(t *testing.T) {
	cpu := machine.DAS5CPU()
	f, matches, err := Diagnose(cpu, func(h *simulator.Hierarchy) {
		// Write-stream far beyond L3: every line comes in, gets dirty,
		// is evicted with a writeback.
		for i := 0; i < 1<<19; i++ {
			h.Store(uint64(i)*8, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.Pattern.Name == "write-heavy-eviction" {
			found = true
		}
	}
	if !found {
		t.Fatalf("write-heavy pattern not detected (features %+v, matches %+v)", f, matches)
	}
}

func TestReportRendering(t *testing.T) {
	f := Features{L1MissRatio: 0.9, FillRatio: 0.95, PrefetchAccuracy: 0.9}
	matches := Detect(f, 0.5)
	rep := Report(f, matches)
	if !strings.Contains(rep, "strided-access") || !strings.Contains(rep, "fix:") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
	empty := Report(Features{L1MissRatio: 0.3}, nil)
	if !strings.Contains(empty, "no pattern") {
		t.Fatal("empty report wrong")
	}
}

func TestCoherentPairBasics(t *testing.T) {
	c, err := NewCoherentPair(64)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 writes a line; core 1 writing the same line invalidates it.
	c.Access(0, 0, true)
	c.Access(1, 8, true) // same 64B line
	if c.Invalidations != 1 {
		t.Fatalf("invalidations = %d", c.Invalidations)
	}
	// Reads do not invalidate.
	c.Access(0, 128, false)
	c.Access(1, 128, false)
	if c.Invalidations != 1 {
		t.Fatal("reads must not invalidate")
	}
	if _, err := NewCoherentPair(48); err == nil {
		t.Fatal("non-power-of-two line must fail")
	}
	if (&CoherentPair{}).InvalidationRate() != 0 {
		t.Fatal("idle rate must be 0")
	}
}

func TestFalseSharingProbeAndFix(t *testing.T) {
	unpadded, err := FalseSharingProbe(1000, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := FalseSharingProbe(1000, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	if unpadded < 0.2 {
		t.Fatalf("unpadded rate %v too low to demonstrate the pattern", unpadded)
	}
	if padded > 0.01 {
		t.Fatalf("padded rate %v should be ~0", padded)
	}
	verdict := FalseSharingVerdict(unpadded, padded)
	if !strings.Contains(verdict, "false sharing confirmed") {
		t.Fatalf("verdict = %q", verdict)
	}
	if v := FalseSharingVerdict(0.001, 0.001); !strings.Contains(v, "no false sharing") {
		t.Fatalf("negative verdict = %q", v)
	}
}

func TestFullEventSetOnSmallHierarchy(t *testing.T) {
	l1, err := simulator.NewCache("L1", 8, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := simulator.NewHierarchy(l1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := FullEventSet(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Measure(func() { simulator.TraceStrided(h, 100, 1) }); err != nil {
		t.Fatal(err)
	}
	f, err := FeaturesFromSet(set, 64)
	if err != nil {
		t.Fatal(err)
	}
	if f.L1MissRatio <= 0 {
		t.Fatalf("features = %+v", f)
	}
}

func TestTLBThrashPattern(t *testing.T) {
	cpu := machine.DAS5CPU()
	// Page-stride walk: one access per 4 KiB page.
	f, matches, err := Diagnose(cpu, func(h *simulator.Hierarchy) {
		for i := 0; i < 1<<14; i++ {
			h.Load(uint64(i)*4096, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.TLBMissRatio < 0.5 {
		t.Fatalf("TLB miss ratio = %v, want high", f.TLBMissRatio)
	}
	found := false
	for _, m := range matches {
		if m.Pattern.Name == "tlb-thrash" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tlb-thrash not detected: %+v (features %+v)", matches, f)
	}
	// Unit-stride streaming must NOT trigger it.
	f2, matches2, err := Diagnose(cpu, func(h *simulator.Hierarchy) {
		simulator.TraceStreamTriad(h, 1<<15)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches2 {
		if m.Pattern.Name == "tlb-thrash" {
			t.Fatalf("triad wrongly flagged tlb-thrash (features %+v)", f2)
		}
	}
}
