package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccess(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("wrong elements: %v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	i3 := Identity(3)
	out, err := a.Mul(i3)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAbsDiff(a) != 0 {
		t.Fatalf("A*I != A: %v", out)
	}
	if _, err := i3.Mul(a.T().T()); err == nil {
		// I3 (3x3) * A (2x3) must fail.
		t.Fatal("shape mismatch must error")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	out, _ := a.Mul(b)
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if out.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("got %v", out)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	y, err := a.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("transpose wrong: %v", at)
	}
	if at.T().MaxAbsDiff(a) != 0 {
		t.Fatal("double transpose should be identity")
	}
}

func TestAddScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{3, 4}})
	s, _ := a.Add(b)
	if s.At(0, 0) != 4 || s.At(0, 1) != 6 {
		t.Fatalf("Add = %v", s)
	}
	if a.Scale(2).At(0, 1) != 4 {
		t.Fatal("Scale wrong")
	}
	c := NewMatrix(2, 2)
	if _, err := a.Add(c); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system.
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 -> x=1, y=3
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("solve = %v", x)
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// Overdetermined system: residual must be orthogonal to column space.
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(20, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = b[i] - ax[i]
	}
	// A^T r must be ~0.
	atr, _ := a.T().MulVec(resid)
	for j, v := range atr {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual not orthogonal: A^T r[%d] = %v", j, v)
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err != ErrRankDeficient {
		t.Fatalf("want ErrRankDeficient, got %v", err)
	}
	qr, _ := NewQR(a)
	if r := qr.Rank(1e-12); r != 1 {
		t.Fatalf("Rank = %d, want 1", r)
	}
}

func TestQRWideMatrixRejected(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := NewQR(a); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
}

func TestSolveRidge(t *testing.T) {
	// Ridge with identical columns has a unique minimizer that splits the
	// coefficient evenly.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	x, err := SolveRidge(a, []float64{2, 4, 6}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-x[1]) > 1e-4 {
		t.Fatalf("ridge should split evenly: %v", x)
	}
	if math.Abs(x[0]+x[1]-2) > 1e-3 {
		t.Fatalf("ridge solution wrong: %v", x)
	}
	if _, err := SolveRidge(a, []float64{1, 2, 3}, -1); err == nil {
		t.Fatal("negative lambda must error")
	}
}

func TestDotNormAxpy(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestFrobenius(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 4}})
	if a.FrobeniusNorm() != 5 {
		t.Fatal("Frobenius wrong")
	}
}

// Property: QR solve reproduces a planted solution for random
// well-conditioned tall systems.
func TestQuickQRPlantedSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		m, n := 12, 3
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal boost keeps the system well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+5)
		}
		want := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		b, _ := a.MulVec(want)
		got, err := SolveLeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)^T == B^T * A^T for random shapes.
func TestQuickTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		ab, _ := a.Mul(b)
		btat, _ := b.T().Mul(a.T())
		return ab.T().MaxAbsDiff(btat) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
