// Package linalg provides the small dense linear-algebra core used by the
// statistical-modeling substrate: row-major matrices, basic BLAS-1/2/3
// operations, and Householder-QR least squares.
//
// The package is intentionally minimal — it implements exactly what the
// toolbox needs (regression and model calibration) rather than a general
// numerical library, and it is written for clarity with cache-friendly
// loop orders where it matters.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape. It panics on
// non-positive dimensions, which indicate a programming error.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("linalg: non-positive matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged row %d (%d vs %d cols)", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	td, tc := t.Data, t.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			td[j*tc+i] = v
		}
	}
	return t
}

// Mul returns m * b. It returns an error on a shape mismatch.
// The k-loop is innermost over b's rows (ikj order) for cache locality.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: mul shape mismatch (%dx%d)*(%dx%d)",
			m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m * x. It returns an error when len(x) != m.Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: mulvec shape mismatch %dx%d * %d",
			m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := range out {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b elementwise.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, errors.New("linalg: add shape mismatch")
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Scale returns s * m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and b, or +Inf on a shape mismatch.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return math.Inf(1)
	}
	var max float64
	for i, v := range m.Data {
		d := math.Abs(v - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix with aligned columns for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "%10.4g ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a*x in place. It panics on length mismatch.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}
