package linalg

import (
	"errors"
	"math"
)

// ErrRankDeficient is returned when a least-squares system has (numerically)
// linearly dependent columns and no unique solution exists.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// QR holds a Householder QR factorization A = Q*R with A of size m x n,
// m >= n. The factors are stored compactly: the upper triangle of qr holds
// R, the lower part holds the Householder vectors.
type QR struct {
	qr    *Matrix
	rdiag []float64
}

// NewQR computes the QR factorization of a (which is not modified).
// It returns an error when a has more columns than rows.
func NewQR(a *Matrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, errors.New("linalg: QR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply the reflector to the remaining columns.
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// Rank reports the numerical rank: the number of diagonal entries of R whose
// magnitude exceeds eps times the largest diagonal magnitude.
func (q *QR) Rank(eps float64) int {
	var maxd float64
	for _, d := range q.rdiag {
		if a := math.Abs(d); a > maxd {
			maxd = a
		}
	}
	if maxd == 0 {
		return 0
	}
	rank := 0
	for _, d := range q.rdiag {
		if math.Abs(d) > eps*maxd {
			rank++
		}
	}
	return rank
}

// Solve returns the least-squares solution x minimizing ||A*x - b||2.
// It returns ErrRankDeficient when R is numerically singular.
func (q *QR) Solve(b []float64) ([]float64, error) {
	m, n := q.qr.Rows, q.qr.Cols
	if len(b) != m {
		return nil, errors.New("linalg: Solve rhs length mismatch")
	}
	if q.Rank(1e-12) < n {
		return nil, ErrRankDeficient
	}
	y := append([]float64(nil), b...)
	// Compute Q^T * b.
	for k := 0; k < n; k++ {
		if q.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s = -s / q.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * q.qr.At(i, k)
		}
	}
	// Back-substitute R*x = y[:n].
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= q.qr.At(k, j) * x[j]
		}
		x[k] = s / q.rdiag[k]
	}
	return x, nil
}

// SolveLeastSquares is a convenience wrapper: it factors a and solves for b
// in one call.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	qr, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return qr.Solve(b)
}

// SolveRidge solves the Tikhonov-regularized least squares problem
// min ||A*x - b||^2 + lambda*||x||^2 by augmenting the system with
// sqrt(lambda)*I rows, which keeps the solve numerically stable even for
// ill-conditioned design matrices.
func SolveRidge(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, errors.New("linalg: negative ridge penalty")
	}
	if lambda == 0 {
		return SolveLeastSquares(a, b)
	}
	m, n := a.Rows, a.Cols
	aug := NewMatrix(m+n, n)
	copy(aug.Data[:m*n], a.Data)
	sq := math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		aug.Set(m+i, i, sq)
	}
	baug := make([]float64, m+n)
	copy(baug, b)
	return SolveLeastSquares(aug, baug)
}
