package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV export of measurement series — the automation step the course's
// Lesson 3 insists on ("from data collection to plotting"): one summary
// row per measurement, ready for any plotting pipeline.

// csvHeader is the column set of WriteCSV.
var csvHeader = []string{
	"name", "n", "median_s", "mean_s", "min_s", "max_s", "stddev_s", "cv",
	"ci95_lo_s", "ci95_hi_s", "flops", "bytes", "gflops", "gbs", "procs",
}

// WriteCSV writes one summary row per measurement.
func WriteCSV(w io.Writer, ms []*Measurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, m := range ms {
		s := m.Summary()
		ci := m.MeanCI(0.95)
		rec := []string{
			m.Name,
			fmt.Sprint(s.N),
			fmt.Sprintf("%.9g", s.Median),
			fmt.Sprintf("%.9g", s.Mean),
			fmt.Sprintf("%.9g", s.Min),
			fmt.Sprintf("%.9g", s.Max),
			fmt.Sprintf("%.9g", s.Stddev),
			fmt.Sprintf("%.6g", s.CV),
			fmt.Sprintf("%.9g", ci.Lo),
			fmt.Sprintf("%.9g", ci.Hi),
			fmt.Sprintf("%.9g", m.FLOPs),
			fmt.Sprintf("%.9g", m.Bytes),
			fmt.Sprintf("%.6g", m.GFLOPS()),
			fmt.Sprintf("%.6g", m.GBs()),
			fmt.Sprint(m.Procs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRawCSV writes every repetition as its own row (name, rep, seconds)
// for distribution-level analysis.
func WriteRawCSV(w io.Writer, ms []*Measurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "rep", "seconds"}); err != nil {
		return err
	}
	for _, m := range ms {
		for i, s := range m.Seconds {
			if err := cw.Write([]string{m.Name, fmt.Sprint(i), fmt.Sprintf("%.9g", s)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
