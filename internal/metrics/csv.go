package metrics

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV export of measurement series — the automation step the course's
// Lesson 3 insists on ("from data collection to plotting"): one summary
// row per measurement, ready for any plotting pipeline.

// csvHeader is the column set of WriteCSV.
var csvHeader = []string{
	"name", "n", "median_s", "mean_s", "min_s", "max_s", "stddev_s", "cv",
	"ci95_lo_s", "ci95_hi_s", "flops", "bytes", "gflops", "gbs", "procs",
}

// g formats a float with the given significant-digit count, matching the
// %.Ng verbs the CSV schema promises without going through fmt's
// reflection-based formatter in the row loop.
func g(v float64, prec int) string {
	return strconv.FormatFloat(v, 'g', prec, 64)
}

// WriteCSV writes one summary row per measurement.
func WriteCSV(w io.Writer, ms []*Measurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, 0, len(csvHeader))
	for _, m := range ms {
		s := m.Summary()
		ci := m.MeanCI(0.95)
		rec = append(rec[:0],
			m.Name,
			strconv.Itoa(s.N),
			g(s.Median, 9),
			g(s.Mean, 9),
			g(s.Min, 9),
			g(s.Max, 9),
			g(s.Stddev, 9),
			g(s.CV, 6),
			g(ci.Lo, 9),
			g(ci.Hi, 9),
			g(m.FLOPs, 9),
			g(m.Bytes, 9),
			g(m.GFLOPS(), 6),
			g(m.GBs(), 6),
			strconv.Itoa(m.Procs),
		)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRawCSV writes every repetition as its own row (name, rep, seconds)
// for distribution-level analysis.
func WriteRawCSV(w io.Writer, ms []*Measurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "rep", "seconds"}); err != nil {
		return err
	}
	rec := make([]string, 3)
	for _, m := range ms {
		rec[0] = m.Name
		for i, s := range m.Seconds {
			rec[1], rec[2] = strconv.Itoa(i), g(s, 9)
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
