// Package metrics implements the measurement layer of the toolbox: timing
// with a repetition protocol, derived performance metrics (GFLOP/s, GB/s,
// speedup, efficiency, Karp-Flatt serial fraction), and factorial experiment
// design ("Basics of performance", learning objective 1).
//
// The central type is Measurement: a named series of repeated timings
// together with the work (FLOPs) and traffic (bytes) of one execution, from
// which every derived rate is computed. Measurements are collected by a
// Runner that implements the textbook protocol: warm-up runs, adaptive
// repetition until the confidence interval is tight, and robust outlier
// rejection.
package metrics

import (
	"fmt"
	"math"
	"time"

	"perfeng/internal/stats"
)

// Measurement is a named series of repeated wall-clock timings of one
// operation, with its work and traffic characterization.
type Measurement struct {
	Name string
	// Seconds holds one wall-clock duration per repetition.
	Seconds []float64
	// FLOPs is the floating-point work of a single execution.
	FLOPs float64
	// Bytes is the memory traffic of a single execution (model-level, e.g.
	// compulsory traffic; the cache simulator can refine it).
	Bytes float64
	// Procs is the number of workers used (1 for sequential).
	Procs int
}

// Add records one repetition.
func (m *Measurement) Add(d time.Duration) {
	m.Seconds = append(m.Seconds, d.Seconds())
}

// N returns the repetition count.
func (m *Measurement) N() int { return len(m.Seconds) }

// MedianSeconds returns the median runtime, the robust location estimate the
// course recommends for reporting.
func (m *Measurement) MedianSeconds() float64 { return stats.Median(m.Seconds) }

// MinSeconds returns the best observed runtime (the "speed-of-light" run).
func (m *Measurement) MinSeconds() float64 { return stats.Min(m.Seconds) }

// MeanCI returns the confidence interval of the mean runtime.
func (m *Measurement) MeanCI(level float64) stats.CI {
	return stats.MeanCI(m.Seconds, level)
}

// Summary returns the descriptive statistics of the runtime series.
func (m *Measurement) Summary() stats.Summary { return stats.Summarize(m.Seconds) }

// GFLOPS returns the achieved GFLOP/s based on the median runtime.
// It returns 0 when no work is declared or nothing was measured.
func (m *Measurement) GFLOPS() float64 {
	t := m.MedianSeconds()
	if t <= 0 || m.FLOPs <= 0 || math.IsNaN(t) {
		return 0
	}
	return m.FLOPs / t / 1e9
}

// GBs returns the achieved traffic rate in GB/s based on the median runtime.
func (m *Measurement) GBs() float64 {
	t := m.MedianSeconds()
	if t <= 0 || m.Bytes <= 0 || math.IsNaN(t) {
		return 0
	}
	return m.Bytes / t / 1e9
}

// ArithmeticIntensity returns FLOPs/byte, the x-axis of the Roofline model.
// It returns 0 when no traffic is declared.
func (m *Measurement) ArithmeticIntensity() float64 {
	if m.Bytes <= 0 {
		return 0
	}
	return m.FLOPs / m.Bytes
}

// String renders a one-line summary.
func (m *Measurement) String() string {
	s := m.Summary()
	out := fmt.Sprintf("%s: n=%d median=%s cv=%.1f%%",
		m.Name, s.N, FormatSeconds(s.Median), s.CV*100)
	if g := m.GFLOPS(); g > 0 {
		out += fmt.Sprintf(" %.2f GFLOP/s", g)
	}
	if b := m.GBs(); b > 0 {
		out += fmt.Sprintf(" %.2f GB/s", b)
	}
	return out
}

// FormatSeconds renders a duration in engineering units.
func FormatSeconds(s float64) string {
	switch {
	case math.IsNaN(s):
		return "NaN"
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3fus", s*1e6)
	default:
		return fmt.Sprintf("%.1fns", s*1e9)
	}
}

// Speedup returns t_base / t_opt, the factor by which opt improves on base
// (median-based). It returns NaN when the optimized median is non-positive.
func Speedup(base, opt *Measurement) float64 {
	tb, to := base.MedianSeconds(), opt.MedianSeconds()
	if to <= 0 {
		return math.NaN()
	}
	return tb / to
}

// ParallelEfficiency returns speedup/procs for a parallel measurement
// against its sequential baseline.
func ParallelEfficiency(seq, par *Measurement) float64 {
	if par.Procs <= 0 {
		return math.NaN()
	}
	return Speedup(seq, par) / float64(par.Procs)
}

// KarpFlatt returns the experimentally determined serial fraction
// e = (1/s - 1/p) / (1 - 1/p) for speedup s on p processors — the standard
// diagnostic for whether scaling loss is serial-fraction or overhead driven.
func KarpFlatt(speedup float64, procs int) float64 {
	if procs <= 1 || speedup <= 0 {
		return math.NaN()
	}
	p := float64(procs)
	return (1/speedup - 1/p) / (1 - 1/p)
}

// AmdahlSpeedup returns the speedup predicted by Amdahl's law for a program
// with serial fraction f on p processors.
func AmdahlSpeedup(serialFraction float64, procs int) float64 {
	if procs < 1 {
		return math.NaN()
	}
	p := float64(procs)
	return 1 / (serialFraction + (1-serialFraction)/p)
}

// GustafsonSpeedup returns the scaled speedup predicted by Gustafson's law.
func GustafsonSpeedup(serialFraction float64, procs int) float64 {
	if procs < 1 {
		return math.NaN()
	}
	p := float64(procs)
	return p - serialFraction*(p-1)
}
