package metrics

import (
	"sort"
	"strconv"
	"strings"
)

// Factor is one experimental factor with its levels, e.g. "n" over
// {128, 256, 512}. Experimental design — choosing factors and levels before
// measuring — is the discipline the course's Lesson 3 insists on.
type Factor struct {
	Name   string
	Levels []float64
}

// Design is a full-factorial experimental design.
type Design struct {
	Factors []Factor
}

// Point is one configuration of the design: factor name -> level.
type Point map[string]float64

// Size returns the number of configurations in the full factorial.
func (d Design) Size() int {
	n := 1
	for _, f := range d.Factors {
		n *= len(f.Levels)
	}
	if len(d.Factors) == 0 {
		return 0
	}
	return n
}

// Points enumerates the cartesian product of all factor levels in
// deterministic order (first factor varies slowest).
func (d Design) Points() []Point {
	if len(d.Factors) == 0 {
		return nil
	}
	for _, f := range d.Factors {
		if len(f.Levels) == 0 {
			return nil
		}
	}
	// Hoist the per-factor names and level slices out of the odometer loop
	// so the hot enumeration indexes plain locals.
	names := make([]string, len(d.Factors))
	levels := make([][]float64, len(d.Factors))
	for i, f := range d.Factors {
		names[i], levels[i] = f.Name, f.Levels
	}
	out := make([]Point, 0, d.Size())
	idx := make([]int, len(levels))
	for {
		p := make(Point, len(levels))
		for i, lv := range levels {
			p[names[i]] = lv[idx[i]]
		}
		out = append(out, p)
		// Odometer increment, last factor fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(levels[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// Key renders the point as a stable "a=1 b=2" string for table rows and map
// keys.
func (p Point) Key() string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = k + "=" + strconv.FormatFloat(p[k], 'g', -1, 64)
	}
	return strings.Join(parts, " ")
}

// Sweep runs the measurement function at every point of the design and
// returns the results keyed by Point.Key(), plus the ordered keys.
func (d Design) Sweep(run func(Point) *Measurement) (map[string]*Measurement, []string) {
	pts := d.Points()
	results := make(map[string]*Measurement, len(pts))
	order := make([]string, 0, len(pts))
	for _, p := range pts {
		//perfvet:ignore:allocattr Key sorts a fresh label slice per point; a sweep's cost is its run() calls
		k := p.Key()
		results[k] = run(p)
		order = append(order, k)
	}
	return results, order
}

// PowersOfTwo returns the levels {2^lo, ..., 2^hi} as float64s, the most
// common level spacing in performance sweeps.
func PowersOfTwo(lo, hi int) []float64 {
	if hi < lo {
		return nil
	}
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, float64(int64(1)<<uint(e)))
	}
	return out
}

// Linspace returns n evenly spaced levels from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
