package metrics

import (
	"errors"
	"fmt"
	"math"

	"perfeng/internal/stats"
)

// Statistically sound A/B comparison of two measurements (the "correct
// measurement and communication of performance data" lecture): Welch's
// unequal-variance t-test on the repetition series, so a reported speedup
// comes with the probability that it is noise.

// Comparison is the verdict of CompareMeasurements.
type Comparison struct {
	A, B string
	// Speedup is medianA / medianB (> 1 means B is faster).
	Speedup float64
	// TStat and DF are the Welch statistic and degrees of freedom.
	TStat float64
	DF    float64
	// PValue is the two-sided p-value for "the means differ".
	PValue float64
	// Significant is PValue < alpha.
	Significant bool
	Alpha       float64
}

// String renders the verdict.
func (c Comparison) String() string {
	rel := "not significant"
	if c.Significant {
		rel = "significant"
	}
	return fmt.Sprintf("%s vs %s: speedup %.2fx (p=%.4f, %s at alpha=%.2g)",
		c.A, c.B, c.Speedup, c.PValue, rel, c.Alpha)
}

// CompareMeasurements runs Welch's t-test on the two runtime series.
// alpha <= 0 defaults to 0.05. Both series need >= 2 samples.
func CompareMeasurements(a, b *Measurement, alpha float64) (Comparison, error) {
	if a.N() < 2 || b.N() < 2 {
		return Comparison{}, errors.New("metrics: comparison needs >= 2 samples per side")
	}
	if alpha <= 0 {
		alpha = 0.05
	}
	c := Comparison{A: a.Name, B: b.Name, Alpha: alpha}
	if stats.Mean(b.Seconds) > 0 {
		c.Speedup = a.MedianSeconds() / b.MedianSeconds()
	}
	w, err := stats.WelchTTest(a.Seconds, b.Seconds)
	if err != nil {
		return Comparison{}, err
	}
	c.TStat, c.DF, c.PValue = w.T, w.DF, w.P
	c.Significant = w.Significant(alpha)
	return c, nil
}

// SuiteSummary aggregates per-benchmark speedups the statistically correct
// way: geometric mean for ratios (Fleming & Wallace), with min and max for
// the spread.
type SuiteSummary struct {
	N              int
	GeoMeanSpeedup float64
	MinSpeedup     float64
	MaxSpeedup     float64
}

// SummarizeSuite computes the suite-level speedup of optimized runs over
// baselines, matched by index. Lengths must agree and be non-empty.
func SummarizeSuite(baselines, optimized []*Measurement) (SuiteSummary, error) {
	if len(baselines) != len(optimized) || len(baselines) == 0 {
		return SuiteSummary{}, errors.New("metrics: suite needs matching non-empty series")
	}
	speedups := make([]float64, len(baselines))
	for i := range baselines {
		sp := Speedup(baselines[i], optimized[i])
		if math.IsNaN(sp) || sp <= 0 {
			return SuiteSummary{}, fmt.Errorf("metrics: degenerate speedup at %d", i)
		}
		speedups[i] = sp
	}
	return SuiteSummary{
		N:              len(speedups),
		GeoMeanSpeedup: stats.GeoMean(speedups),
		MinSpeedup:     stats.Min(speedups),
		MaxSpeedup:     stats.Max(speedups),
	}, nil
}
