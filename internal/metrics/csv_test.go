package metrics

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	ms := []*Measurement{
		{Name: "a", Seconds: []float64{1, 2, 3}, FLOPs: 6e9, Bytes: 3e9, Procs: 1},
		{Name: "b", Seconds: []float64{0.5}, Procs: 4},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "name" || len(rows[0]) != 15 {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "a" || rows[2][0] != "b" {
		t.Fatal("names wrong")
	}
	med, err := strconv.ParseFloat(rows[1][2], 64)
	if err != nil || med != 2 {
		t.Fatalf("median = %v, %v", med, err)
	}
	gflops, _ := strconv.ParseFloat(rows[1][12], 64)
	if gflops != 3 { // 6e9 FLOPs / 2 s
		t.Fatalf("gflops = %v", gflops)
	}
}

func TestWriteRawCSV(t *testing.T) {
	ms := []*Measurement{{Name: "k", Seconds: []float64{0.1, 0.2}}}
	var buf bytes.Buffer
	if err := WriteRawCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2][1] != "1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCompareMeasurementsSignificant(t *testing.T) {
	a := &Measurement{Name: "slow", Seconds: []float64{10, 10.1, 9.9, 10.05, 9.95}}
	b := &Measurement{Name: "fast", Seconds: []float64{5, 5.1, 4.9, 5.05, 4.95}}
	c, err := CompareMeasurements(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant || c.PValue > 0.001 {
		t.Fatalf("clear 2x difference not significant: %+v", c)
	}
	if c.Speedup < 1.9 || c.Speedup > 2.1 {
		t.Fatalf("speedup = %v", c.Speedup)
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestCompareMeasurementsNoise(t *testing.T) {
	// Overlapping noisy series: the difference must not be significant.
	a := &Measurement{Name: "a", Seconds: []float64{10, 12, 9, 11, 10.5, 9.5}}
	b := &Measurement{Name: "b", Seconds: []float64{10.2, 11.8, 9.1, 11.1, 10.4, 9.6}}
	c, err := CompareMeasurements(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c.Significant {
		t.Fatalf("noise flagged significant: %+v", c)
	}
	if c.PValue < 0.5 {
		t.Fatalf("p-value = %v for near-identical series", c.PValue)
	}
}

func TestCompareMeasurementsEdgeCases(t *testing.T) {
	one := &Measurement{Name: "one", Seconds: []float64{1}}
	two := &Measurement{Name: "two", Seconds: []float64{1, 1}}
	if _, err := CompareMeasurements(one, two, 0); err == nil {
		t.Fatal("single sample must fail")
	}
	// Identical constant series: p = 1.
	c, err := CompareMeasurements(two, two, 0)
	if err != nil || c.PValue != 1 || c.Significant {
		t.Fatalf("identical series: %+v, %v", c, err)
	}
	// Distinct constant series: p = 0.
	three := &Measurement{Name: "three", Seconds: []float64{2, 2}}
	c2, _ := CompareMeasurements(two, three, 0)
	if !c2.Significant || c2.PValue != 0 {
		t.Fatalf("distinct constants: %+v", c2)
	}
	// Default alpha applied.
	if c2.Alpha != 0.05 {
		t.Fatalf("alpha = %v", c2.Alpha)
	}
}

func TestSummarizeSuite(t *testing.T) {
	base := []*Measurement{
		{Seconds: []float64{4}}, {Seconds: []float64{9}},
	}
	opt := []*Measurement{
		{Seconds: []float64{2}}, {Seconds: []float64{1}},
	}
	s, err := SummarizeSuite(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Speedups 2 and 9: geomean sqrt(18) ~ 4.2426.
	if s.N != 2 || s.MinSpeedup != 2 || s.MaxSpeedup != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.GeoMeanSpeedup < 4.24 || s.GeoMeanSpeedup > 4.25 {
		t.Fatalf("geomean = %v", s.GeoMeanSpeedup)
	}
	if _, err := SummarizeSuite(base, opt[:1]); err == nil {
		t.Fatal("length mismatch must fail")
	}
	zero := []*Measurement{{Seconds: []float64{0}}}
	if _, err := SummarizeSuite([]*Measurement{{Seconds: []float64{1}}}, zero); err == nil {
		t.Fatal("degenerate speedup must fail")
	}
}
