package metrics

import (
	"errors"
	"time"

	"perfeng/internal/stats"
)

// RunnerConfig controls the measurement protocol.
type RunnerConfig struct {
	// Warmup is the number of untimed executions before measurement starts
	// (cache warming, JIT-free in Go but still page faults, frequency ramp).
	Warmup int
	// MinRuns and MaxRuns bound the repetition count.
	MinRuns, MaxRuns int
	// TargetRelCI stops repetition early once the 95% CI half-width is
	// below this fraction of the mean (0 disables adaptive stopping).
	TargetRelCI float64
	// MinSampleTime makes the runner batch very short operations so one
	// recorded sample is at least this long, dividing by the batch size.
	MinSampleTime time.Duration
	// RejectOutliers applies Tukey IQR rejection (k=1.5) to the series
	// before it is stored.
	RejectOutliers bool
}

// DefaultConfig returns the protocol used across the toolbox: 3 warm-ups,
// 10–30 repetitions, stop at 5% relative CI, IQR outlier rejection.
func DefaultConfig() RunnerConfig {
	return RunnerConfig{
		Warmup:         3,
		MinRuns:        10,
		MaxRuns:        30,
		TargetRelCI:    0.05,
		MinSampleTime:  time.Millisecond,
		RejectOutliers: true,
	}
}

// QuickConfig returns a fast protocol for tests and smoke runs.
func QuickConfig() RunnerConfig {
	return RunnerConfig{Warmup: 1, MinRuns: 3, MaxRuns: 5, MinSampleTime: 0}
}

// Runner executes operations under a measurement protocol.
type Runner struct {
	cfg RunnerConfig
}

// NewRunner returns a Runner with the given configuration; zero-valued
// fields fall back to DefaultConfig choices.
func NewRunner(cfg RunnerConfig) *Runner {
	def := DefaultConfig()
	if cfg.MinRuns <= 0 {
		cfg.MinRuns = def.MinRuns
	}
	if cfg.MaxRuns < cfg.MinRuns {
		cfg.MaxRuns = cfg.MinRuns
	}
	return &Runner{cfg: cfg}
}

// Measure runs f repeatedly under the protocol and returns the Measurement.
// flops and bytes describe one execution of f.
func (r *Runner) Measure(name string, flops, bytes float64, f func()) *Measurement {
	m := &Measurement{Name: name, FLOPs: flops, Bytes: bytes, Procs: 1}
	for i := 0; i < r.cfg.Warmup; i++ {
		f()
	}
	batch := 1
	if r.cfg.MinSampleTime > 0 {
		batch = r.calibrateBatch(f)
	}
	for i := 0; i < r.cfg.MaxRuns; i++ {
		start := time.Now()
		for j := 0; j < batch; j++ {
			f()
		}
		elapsed := time.Since(start)
		m.Seconds = append(m.Seconds, elapsed.Seconds()/float64(batch))
		if i+1 >= r.cfg.MinRuns && r.cfg.TargetRelCI > 0 {
			ci := stats.MeanCI(m.Seconds, 0.95)
			if ci.RelativeHalfWidth() <= r.cfg.TargetRelCI {
				break
			}
		}
	}
	if r.cfg.RejectOutliers {
		m.Seconds = stats.RejectIQR(m.Seconds, 1.5)
	}
	publishMeasurement(m)
	return m
}

// calibrateBatch finds a batch size so one sample lasts ~MinSampleTime.
func (r *Runner) calibrateBatch(f func()) int {
	batch := 1
	for batch < 1<<20 {
		start := time.Now()
		for j := 0; j < batch; j++ {
			f()
		}
		if time.Since(start) >= r.cfg.MinSampleTime {
			return batch
		}
		batch *= 2
	}
	return batch
}

// MeasureErr runs an operation that may fail; measurement aborts on the
// first error.
func (r *Runner) MeasureErr(name string, flops, bytes float64, f func() error) (*Measurement, error) {
	var err error
	m := r.Measure(name, flops, bytes, func() {
		if err != nil {
			return
		}
		err = f()
	})
	if err != nil {
		return nil, err
	}
	if m.N() == 0 {
		return nil, errors.New("metrics: no samples collected")
	}
	return m, nil
}
