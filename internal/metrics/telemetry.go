package metrics

import (
	"sync/atomic"

	"perfeng/internal/telemetry"
)

// Live-telemetry hooks for the measurement runner. The handles are
// grouped behind one atomic pointer so the disabled path costs a single
// load and branch; enabling swaps in a populated handle set.

type telHandles struct {
	measurements *telemetry.Counter
	samples      *telemetry.Counter
	sampleSecs   *telemetry.Histogram
}

var tel atomic.Pointer[telHandles]

// EnableTelemetry publishes runner activity to reg: measurements and
// samples completed, and the per-sample duration distribution. Passing
// nil stops publication.
func EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		tel.Store(nil)
		return
	}
	tel.Store(&telHandles{
		measurements: reg.Counter("perfeng_runner_measurements",
			"Measurements completed by metrics.Runner."),
		samples: reg.Counter("perfeng_runner_samples",
			"Timed samples recorded across all measurements."),
		// 2^-20 s ≈ 1 µs up to 2^2 = 4 s spans the runner's sample range.
		sampleSecs: reg.Histogram("perfeng_runner_sample_seconds",
			"Duration of individual timed samples.", -20, 2),
	})
}

// publishMeasurement records one finished measurement; called at the
// end of Runner.Measure, outside any timed region.
func publishMeasurement(m *Measurement) {
	th := tel.Load()
	if th == nil {
		return
	}
	th.measurements.Inc()
	th.samples.Add(uint64(len(m.Seconds)))
	for _, s := range m.Seconds {
		th.sampleSecs.Observe(s)
	}
}
