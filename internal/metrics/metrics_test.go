package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMeasurementDerivedRates(t *testing.T) {
	m := &Measurement{Name: "k", FLOPs: 2e9, Bytes: 1e9, Procs: 1}
	m.Seconds = []float64{1.0, 1.0, 1.0}
	if got := m.GFLOPS(); got != 2 {
		t.Fatalf("GFLOPS = %v, want 2", got)
	}
	if got := m.GBs(); got != 1 {
		t.Fatalf("GBs = %v, want 1", got)
	}
	if got := m.ArithmeticIntensity(); got != 2 {
		t.Fatalf("AI = %v, want 2", got)
	}
	if m.MedianSeconds() != 1 || m.MinSeconds() != 1 {
		t.Fatal("median/min wrong")
	}
	empty := &Measurement{}
	if empty.GFLOPS() != 0 || empty.GBs() != 0 || empty.ArithmeticIntensity() != 0 {
		t.Fatal("empty measurement must report zero rates")
	}
}

func TestMeasurementAddAndString(t *testing.T) {
	m := &Measurement{Name: "op", FLOPs: 100, Bytes: 10}
	m.Add(2 * time.Millisecond)
	m.Add(3 * time.Millisecond)
	if m.N() != 2 {
		t.Fatalf("N = %d", m.N())
	}
	if s := m.String(); len(s) == 0 {
		t.Fatal("String empty")
	}
	ci := m.MeanCI(0.95)
	if !ci.Contains(ci.Mean) {
		t.Fatal("CI wrong")
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.500s"},
		{0.002, "2.000ms"},
		{3e-6, "3.000us"},
		{5e-9, "5.0ns"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if FormatSeconds(math.NaN()) != "NaN" {
		t.Fatal("NaN formatting wrong")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	seq := &Measurement{Seconds: []float64{8}, Procs: 1}
	par := &Measurement{Seconds: []float64{2}, Procs: 4}
	if got := Speedup(seq, par); got != 4 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := ParallelEfficiency(seq, par); got != 1 {
		t.Fatalf("Efficiency = %v", got)
	}
	bad := &Measurement{Seconds: []float64{0}, Procs: 0}
	if !math.IsNaN(Speedup(seq, bad)) || !math.IsNaN(ParallelEfficiency(seq, bad)) {
		t.Fatal("degenerate inputs should be NaN")
	}
}

func TestKarpFlatt(t *testing.T) {
	// Perfect speedup -> serial fraction 0.
	if got := KarpFlatt(4, 4); math.Abs(got) > 1e-12 {
		t.Fatalf("KarpFlatt(4,4) = %v, want 0", got)
	}
	// No speedup at all -> serial fraction 1.
	if got := KarpFlatt(1, 8); math.Abs(got-1) > 1e-12 {
		t.Fatalf("KarpFlatt(1,8) = %v, want 1", got)
	}
	if !math.IsNaN(KarpFlatt(2, 1)) {
		t.Fatal("p=1 should be NaN")
	}
}

func TestAmdahlGustafson(t *testing.T) {
	// f=0: both laws give linear speedup.
	if got := AmdahlSpeedup(0, 8); got != 8 {
		t.Fatalf("Amdahl(0,8) = %v", got)
	}
	if got := GustafsonSpeedup(0, 8); got != 8 {
		t.Fatalf("Gustafson(0,8) = %v", got)
	}
	// f=1: no speedup.
	if got := AmdahlSpeedup(1, 64); got != 1 {
		t.Fatalf("Amdahl(1,64) = %v", got)
	}
	if got := GustafsonSpeedup(1, 64); got != 1 {
		t.Fatalf("Gustafson(1,64) = %v", got)
	}
	// Amdahl's asymptote: speedup <= 1/f.
	if got := AmdahlSpeedup(0.1, 1_000_000); got > 10 {
		t.Fatalf("Amdahl asymptote violated: %v", got)
	}
}

// Property: Amdahl <= Gustafson for the same f, p (both equal at f=0, f=1).
func TestQuickAmdahlBelowGustafson(t *testing.T) {
	f := func(fr float64, p uint8) bool {
		frac := math.Mod(math.Abs(fr), 1)
		procs := int(p%64) + 1
		a := AmdahlSpeedup(frac, procs)
		g := GustafsonSpeedup(frac, procs)
		return a <= g+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerCollects(t *testing.T) {
	r := NewRunner(QuickConfig())
	count := 0
	m := r.Measure("busy", 1, 1, func() { count++ })
	if m.N() < 3 {
		t.Fatalf("want >=3 samples, got %d", m.N())
	}
	if count < m.N() {
		t.Fatal("function under-executed")
	}
}

func TestRunnerAdaptiveStop(t *testing.T) {
	cfg := RunnerConfig{Warmup: 0, MinRuns: 5, MaxRuns: 100, TargetRelCI: 0.5}
	r := NewRunner(cfg)
	m := r.Measure("steady", 0, 0, func() { time.Sleep(100 * time.Microsecond) })
	// A steady operation should stop well before MaxRuns.
	if m.N() > 50 {
		t.Fatalf("adaptive stop failed: %d runs", m.N())
	}
}

func TestRunnerBatchesShortOps(t *testing.T) {
	cfg := RunnerConfig{Warmup: 0, MinRuns: 3, MaxRuns: 3,
		MinSampleTime: 200 * time.Microsecond}
	r := NewRunner(cfg)
	m := r.Measure("tiny", 0, 0, func() {})
	// Per-sample time should be far below MinSampleTime because the batch
	// divisor is applied.
	if m.MedianSeconds() > 100e-6 {
		t.Fatalf("batching not applied: median %v", m.MedianSeconds())
	}
}

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(RunnerConfig{})
	if r.cfg.MinRuns <= 0 || r.cfg.MaxRuns < r.cfg.MinRuns {
		t.Fatalf("defaults not applied: %+v", r.cfg)
	}
}

func TestMeasureErr(t *testing.T) {
	r := NewRunner(QuickConfig())
	wantErr := errors.New("boom")
	if _, err := r.MeasureErr("fail", 0, 0, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	m, err := r.MeasureErr("ok", 0, 0, func() error { return nil })
	if err != nil || m.N() == 0 {
		t.Fatalf("MeasureErr ok failed: %v", err)
	}
}

func TestDesignPoints(t *testing.T) {
	d := Design{Factors: []Factor{
		{Name: "n", Levels: []float64{1, 2}},
		{Name: "t", Levels: []float64{10, 20, 30}},
	}}
	if d.Size() != 6 {
		t.Fatalf("Size = %d", d.Size())
	}
	pts := d.Points()
	if len(pts) != 6 {
		t.Fatalf("Points = %d", len(pts))
	}
	// First factor varies slowest.
	if pts[0]["n"] != 1 || pts[0]["t"] != 10 {
		t.Fatalf("first point wrong: %v", pts[0])
	}
	if pts[5]["n"] != 2 || pts[5]["t"] != 30 {
		t.Fatalf("last point wrong: %v", pts[5])
	}
	if (Design{}).Points() != nil {
		t.Fatal("empty design should yield nil")
	}
	empty := Design{Factors: []Factor{{Name: "x"}}}
	if empty.Points() != nil {
		t.Fatal("factor without levels should yield nil")
	}
}

func TestPointKeyStable(t *testing.T) {
	p := Point{"b": 2, "a": 1}
	if p.Key() != "a=1 b=2" {
		t.Fatalf("Key = %q", p.Key())
	}
}

func TestSweep(t *testing.T) {
	d := Design{Factors: []Factor{{Name: "n", Levels: []float64{1, 2, 3}}}}
	res, order := d.Sweep(func(p Point) *Measurement {
		return &Measurement{Name: p.Key(), Seconds: []float64{p["n"]}}
	})
	if len(res) != 3 || len(order) != 3 {
		t.Fatalf("sweep sizes wrong: %d %d", len(res), len(order))
	}
	if res["n=2"].MedianSeconds() != 2 {
		t.Fatal("sweep result wrong")
	}
}

func TestPowersOfTwoLinspace(t *testing.T) {
	p := PowersOfTwo(3, 5)
	if len(p) != 3 || p[0] != 8 || p[2] != 32 {
		t.Fatalf("PowersOfTwo = %v", p)
	}
	if PowersOfTwo(5, 3) != nil {
		t.Fatal("inverted range should be nil")
	}
	l := Linspace(0, 10, 5)
	if len(l) != 5 || l[0] != 0 || l[4] != 10 || l[2] != 5 {
		t.Fatalf("Linspace = %v", l)
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 = %v", got)
	}
	if Linspace(0, 1, 0) != nil {
		t.Fatal("n=0 should be nil")
	}
}

// Property: design size equals the product of level counts and Points
// enumerates exactly that many distinct keys.
func TestQuickDesignEnumeration(t *testing.T) {
	f := func(a, b, c uint8) bool {
		la, lb, lc := int(a%4)+1, int(b%4)+1, int(c%4)+1
		d := Design{Factors: []Factor{
			{Name: "a", Levels: Linspace(0, 1, la)},
			{Name: "b", Levels: Linspace(0, 1, lb)},
			{Name: "c", Levels: Linspace(0, 1, lc)},
		}}
		pts := d.Points()
		if len(pts) != la*lb*lc {
			return false
		}
		seen := make(map[string]bool, len(pts))
		for _, p := range pts {
			seen[p.Key()] = true
		}
		return len(seen) == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
