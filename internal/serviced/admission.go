// Admission control for the job service: a token bucket per tenant in
// front of one bounded queue, both sized from the M/M/c model in
// sizing.go and re-sized live as the measured service time drifts.
//
// The fast path — Admit on a known tenant — is one mutex, a map lookup
// and float arithmetic: 0 allocs/op, gated by the serviced-admit entry
// in BenchmarkSmoke. Rejections carry the backpressure signal (reason
// plus a retry horizon) the HTTP layer turns into 429 + Retry-After.
package serviced

import (
	"errors"
	"math"
	"sync"
	"time"
)

// Reject reasons, also the wire values in RejectInfo.Reason.
const (
	ReasonRate   = "rate"   // tenant token bucket empty
	ReasonQueue  = "queue"  // bounded queue full
	ReasonClosed = "closed" // service draining
)

// AdmissionConfig configures the admission controller.
type AdmissionConfig struct {
	// Servers is the executor count — the c of the M/M/c sizing.
	Servers int
	// TargetP99 is the sojourn (admit -> result) objective the sizing
	// keeps the modeled p99 under.
	TargetP99 time.Duration
	// InitialMeanService seeds the service-time estimate before any job
	// has completed; the EWMA takes over from the first completion.
	InitialMeanService time.Duration
	// FairShare divides the sized arrival rate among tenants: each
	// tenant's bucket refills at Lambda/FairShare, so any FairShare
	// concurrently active tenants cannot oversubscribe the model and no
	// single tenant can take more than 1/FairShare of capacity.
	// Default 4.
	FairShare int
	// ResizeEvery re-derives the sizing after this many completions
	// (default 256, 0 uses the default); < 0 disables live re-sizing
	// (benchmarks pin the sizing this way to keep Done allocation-free).
	ResizeEvery int
	// EWMAAlpha is the service-time smoothing factor (default 0.2).
	EWMAAlpha float64
}

// Decision is one admission verdict.
type Decision struct {
	OK bool
	// Reason is set on rejection: ReasonRate, ReasonQueue, ReasonClosed.
	Reason string
	// Position is the number of jobs waiting ahead of an admitted job
	// (0 = an executor was free at admit time).
	Position int
	// QueueLen and Limit snapshot the queue occupancy and sized bound.
	QueueLen int
	Limit    int
	// RetryAfter is the backpressure horizon for a rejection: when the
	// bucket will hold a token again, or the modeled time for one queue
	// slot to drain.
	RetryAfter time.Duration
}

type tenantBucket struct {
	tokens float64
	last   time.Time
}

// Admission is the token-bucket + bounded-queue controller. Safe for
// concurrent use.
type Admission struct {
	mu      sync.Mutex
	cfg     AdmissionConfig
	sizing  Sizing
	rate    float64 // per-tenant tokens/sec
	burst   float64
	tenants map[string]*tenantBucket

	inflight    int // admitted and not yet Done (running + queued)
	maxInflight int // high-water mark, for the contention tests
	ewma        float64
	completions uint64
	sinceResize int
	closed      bool

	admitted, rejectedRate, rejectedQueue, rejectedClosed uint64
}

// NewAdmission sizes and returns a controller.
func NewAdmission(cfg AdmissionConfig) (*Admission, error) {
	if cfg.FairShare <= 0 {
		cfg.FairShare = 4
	}
	if cfg.ResizeEvery == 0 {
		cfg.ResizeEvery = 256
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.2
	}
	if cfg.InitialMeanService <= 0 {
		return nil, errors.New("serviced: need a positive initial mean service time")
	}
	s, err := SizeAdmission(cfg.Servers, cfg.InitialMeanService, cfg.TargetP99)
	if err != nil {
		return nil, err
	}
	a := &Admission{
		cfg:     cfg,
		tenants: make(map[string]*tenantBucket),
		ewma:    cfg.InitialMeanService.Seconds(),
	}
	a.apply(s)
	return a, nil
}

// apply installs a sizing (caller holds mu, or is the constructor).
func (a *Admission) apply(s Sizing) {
	a.sizing = s
	a.rate = s.Lambda / float64(a.cfg.FairShare)
	a.burst = math.Max(1, float64(s.QueueDepth))
}

// Admit decides whether tenant may submit one job at now. An OK
// decision reserves one in-flight slot the caller must release with
// Done when the job finishes (success or failure).
func (a *Admission) Admit(tenant string, now time.Time) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	limit := a.sizing.QueueDepth
	waiting := a.inflight - a.cfg.Servers
	if waiting < 0 {
		waiting = 0
	}
	if a.closed {
		a.rejectedClosed++
		return Decision{Reason: ReasonClosed, QueueLen: waiting, Limit: limit,
			RetryAfter: time.Second}
	}
	b, ok := a.tenants[tenant]
	if !ok {
		b = &tenantBucket{tokens: a.burst, last: now}
		a.tenants[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(a.burst, b.tokens+a.rate*dt)
		b.last = now
	}
	if b.tokens < 1 {
		a.rejectedRate++
		retry := time.Duration((1 - b.tokens) / a.rate * float64(time.Second))
		return Decision{Reason: ReasonRate, QueueLen: waiting, Limit: limit, RetryAfter: retry}
	}
	if waiting >= limit {
		a.rejectedQueue++
		retry := time.Duration(a.ewma / float64(a.cfg.Servers) * float64(time.Second))
		return Decision{Reason: ReasonQueue, QueueLen: waiting, Limit: limit, RetryAfter: retry}
	}
	b.tokens--
	a.inflight++
	if a.inflight > a.maxInflight {
		a.maxInflight = a.inflight
	}
	a.admitted++
	return Decision{OK: true, Position: waiting, QueueLen: waiting, Limit: limit}
}

// Done releases one admitted job's slot and folds its measured service
// time (pure execution, excluding queue wait) into the EWMA the sizing
// is derived from. Every ResizeEvery completions — or immediately when
// the estimate has drifted past 2x in either direction — the admission
// limits are re-derived from the model.
func (a *Admission) Done(service time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight > 0 {
		a.inflight--
	}
	if service > 0 {
		a.ewma += a.cfg.EWMAAlpha * (service.Seconds() - a.ewma)
	}
	a.completions++
	if a.cfg.ResizeEvery < 0 {
		return
	}
	a.sinceResize++
	sized := a.sizing.MeanService.Seconds()
	drifted := a.ewma > 2*sized || a.ewma < sized/2
	if a.sinceResize < a.cfg.ResizeEvery && !(drifted && a.sinceResize >= 8) {
		return
	}
	a.sinceResize = 0
	mean := time.Duration(a.ewma * float64(time.Second))
	if mean <= 0 {
		return
	}
	if s, err := SizeAdmission(a.cfg.Servers, mean, a.cfg.TargetP99); err == nil {
		a.apply(s)
	}
}

// Close makes every subsequent Admit reject with ReasonClosed.
func (a *Admission) Close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
}

// Sizing returns the currently installed sizing.
func (a *Admission) Sizing() Sizing {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sizing
}

// AdmissionStats is a snapshot of the controller's counters.
type AdmissionStats struct {
	Sizing         Sizing        `json:"sizing"`
	Inflight       int           `json:"inflight"`
	QueueLen       int           `json:"queue_len"`
	MaxInflight    int           `json:"max_inflight"`
	Admitted       uint64        `json:"admitted"`
	RejectedRate   uint64        `json:"rejected_rate"`
	RejectedQueue  uint64        `json:"rejected_queue"`
	RejectedClosed uint64        `json:"rejected_closed"`
	Completions    uint64        `json:"completions"`
	ServiceEWMA    time.Duration `json:"service_ewma_ns"`
	Tenants        int           `json:"tenants"`
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	waiting := a.inflight - a.cfg.Servers
	if waiting < 0 {
		waiting = 0
	}
	return AdmissionStats{
		Sizing:         a.sizing,
		Inflight:       a.inflight,
		QueueLen:       waiting,
		MaxInflight:    a.maxInflight,
		Admitted:       a.admitted,
		RejectedRate:   a.rejectedRate,
		RejectedQueue:  a.rejectedQueue,
		RejectedClosed: a.rejectedClosed,
		Completions:    a.completions,
		ServiceEWMA:    time.Duration(a.ewma * float64(time.Second)),
		Tenants:        len(a.tenants),
	}
}
