package serviced

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRunLoadAgainstService drives the closed-loop harness against an
// in-process service: jobs complete, the protocol validates clean, and
// the report carries both measured quantiles and the model prediction.
func TestRunLoadAgainstService(t *testing.T) {
	cfg := Config{
		Resolve: func(spec JobSpec) (Runner, error) {
			if spec.Kernel != "smoke" {
				return nil, errors.New("unknown kernel")
			}
			return func(rep int) error {
				time.Sleep(300 * time.Microsecond)
				return nil
			}, nil
		},
		Admission: AdmissionConfig{
			Servers:            2,
			TargetP99:          time.Second,
			InitialMeanService: time.Millisecond,
			FairShare:          4,
		},
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:      srv.URL,
		Clients:  8,
		Tenants:  4,
		Duration: 600 * time.Millisecond,
		Spec:     JobSpec{Kernel: "smoke", Reps: 2},
		Client:   srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("no jobs completed: %+v", rep)
	}
	if rep.ProtocolViolations != 0 {
		t.Fatalf("%d protocol violations against a conforming server", rep.ProtocolViolations)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors: %+v", rep.Errors, rep)
	}
	if rep.P99Sojourn <= 0 || rep.P50Sojourn > rep.P99Sojourn {
		t.Fatalf("sojourn quantiles inconsistent: %+v", rep)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.ServerStats == nil {
		t.Fatal("report is missing the server stats snapshot")
	}
	if rep.ModeledP99 <= 0 {
		t.Fatalf("report is missing the model prediction: %+v", rep)
	}
	// The ledger reconciles: the server admitted exactly what some
	// client saw complete plus whatever was in flight at cutoff.
	if rep.ServerStats.Admitted < uint64(rep.Completed) {
		t.Fatalf("server admitted %d < client completed %d",
			rep.ServerStats.Admitted, rep.Completed)
	}
}

// TestRunLoadHonorsBackpressure points the harness at a service sized
// so small that rejections are guaranteed, and checks clients classify
// them instead of erroring out.
func TestRunLoadHonorsBackpressure(t *testing.T) {
	cfg := Config{
		Resolve: func(spec JobSpec) (Runner, error) {
			return func(rep int) error {
				time.Sleep(2 * time.Millisecond)
				return nil
			}, nil
		},
		Admission: AdmissionConfig{
			Servers: 1,
			// Target barely above the 2ms service tail (ln 100 · 2ms ≈
			// 9.2ms): the model sizes a one-slot queue and a thin rate, so
			// 12 concurrent clients are guaranteed to trip rejections.
			TargetP99:          10 * time.Millisecond,
			InitialMeanService: 2 * time.Millisecond,
			FairShare:          8,
		},
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:          srv.URL,
		Clients:      12,
		Tenants:      12,
		Duration:     500 * time.Millisecond,
		Spec:         JobSpec{Kernel: "x", Reps: 1},
		MaxRetryWait: 20 * time.Millisecond,
		Client:       srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatalf("starved sizing never rejected; test is vacuous: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("rejections must not count as errors: %+v", rep)
	}
	if rep.RejectedRate+rep.RejectedQueue != rep.Rejected {
		t.Fatalf("rejections unclassified: %d total, %d rate + %d queue",
			rep.Rejected, rep.RejectedRate, rep.RejectedQueue)
	}
}

func TestRunLoadValidatesConfig(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("empty config must error")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{URL: "http://x", Clients: 1}); err == nil {
		t.Fatal("zero duration must error")
	}
}
