// Closed-loop load-test harness for the job service: N clients each
// POST a job, consume the SSE stream to the result, validate the wire
// protocol as they go, and immediately submit the next job. On 429 a
// client honors the backpressure signal (the body's retry_after_ms)
// before retrying — rejected work is deferred, not lost, which is what
// makes the loop closed. The report carries measured sojourn quantiles
// next to the server's model-sized prediction so the CI load gate (and
// EXPERIMENTS.md) can hold the M/M/c sizing to account.
package serviced

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perfeng/internal/queuing"
	"perfeng/internal/stats"
)

// LoadConfig configures one load-test run.
type LoadConfig struct {
	// URL is the service base (e.g. "http://127.0.0.1:8091"); /v1/jobs
	// and /v1/stats are appended.
	URL string
	// Clients is the closed-loop client count.
	Clients int
	// Duration is how long clients keep submitting.
	Duration time.Duration
	// Tenants spreads clients round-robin over this many tenant ids
	// (default 1).
	Tenants int
	// Spec is the job each client submits (Tenant is overridden).
	Spec JobSpec
	// MaxRetryWait caps how long a client sleeps on backpressure
	// (default 2s) so a pathological Retry-After cannot park the fleet.
	MaxRetryWait time.Duration
	// Think, when positive, is the mean of an exponential pause each
	// client takes between jobs. Zero-think closed loops always drive
	// the service to saturation (useful for the backpressure gate);
	// with think time the fleet approximates Poisson arrivals at
	// Clients/Think jobs/sec, the regime where the M/M/c comparison is
	// meaningful.
	Think time.Duration
	// Client optionally overrides the HTTP client (tests inject
	// httptest clients); nil builds one tuned for Clients connections.
	Client *http.Client
}

// LoadReport is the outcome of a run: throughput, client-observed
// sojourn quantiles, protocol-validation counters, and the server's
// own model prediction for comparison.
type LoadReport struct {
	Clients  int           `json:"clients"`
	Tenants  int           `json:"tenants"`
	Duration time.Duration `json:"duration_ns"`

	Completed          int64 `json:"completed"`
	Rejected           int64 `json:"rejected"`
	RejectedRate       int64 `json:"rejected_rate"`
	RejectedQueue      int64 `json:"rejected_queue"`
	Errors             int64 `json:"errors"`
	ProtocolViolations int64 `json:"protocol_violations"`
	// Throughput is completed jobs per second of wall time.
	Throughput float64 `json:"throughput_jobs_per_sec"`

	// Client-observed sojourn: POST issued -> result event received.
	MeanSojourn time.Duration `json:"mean_sojourn_ns"`
	P50Sojourn  time.Duration `json:"p50_sojourn_ns"`
	P95Sojourn  time.Duration `json:"p95_sojourn_ns"`
	P99Sojourn  time.Duration `json:"p99_sojourn_ns"`
	MaxSojourn  time.Duration `json:"max_sojourn_ns"`

	// ServerStats is the /v1/stats snapshot taken at the end of the run.
	ServerStats *ServiceStats `json:"server_stats,omitempty"`
	// ModeledP99 re-runs the server's own M/M/c model at the *achieved*
	// throughput and measured mean service time. It is compared against
	// the server-side sojourn p99 (same station, same clock); the
	// client-observed P99Sojourn additionally carries HTTP transport
	// cost and is reported separately.
	ModeledP99 time.Duration `json:"modeled_p99_ns"`
	// ModelError is (measured - modeled) / modeled over the server-side
	// sojourn p99, when both exist.
	ModelError float64 `json:"model_error"`
}

// loadCounters is the atomically shared tally across clients. Each
// counter sits on its own cache line: hundreds of clients bump these
// concurrently, and co-resident hot atomics would ping-pong the line.
type loadCounters struct {
	completed  int64
	_          [56]byte
	rejected   int64
	_          [56]byte
	rejRate    int64
	_          [56]byte
	rejQueue   int64
	_          [56]byte
	errors     int64
	_          [56]byte
	violations int64
	_          [56]byte
}

// RunLoad drives the load test and returns the report. ctx bounds the
// whole run (in addition to cfg.Duration).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.URL == "" {
		return nil, errors.New("serviced: loadtest needs a URL")
	}
	if cfg.Clients < 1 {
		return nil, errors.New("serviced: loadtest needs at least one client")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("serviced: loadtest needs a positive duration")
	}
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if cfg.MaxRetryWait <= 0 {
		cfg.MaxRetryWait = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		tr := &http.Transport{
			MaxIdleConns:        cfg.Clients + 8,
			MaxIdleConnsPerHost: cfg.Clients + 8,
		}
		client = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var (
		ctr      loadCounters
		mu       sync.Mutex
		sojourns []float64
		wg       sync.WaitGroup
	)
	start := time.Now()
	jobsURL := cfg.URL + "/v1/jobs"
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			spec := cfg.Spec
			spec.Tenant = fmt.Sprintf("t%d", id%cfg.Tenants)
			body, _ := json.Marshal(spec)
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			scanbuf := make([]byte, 0, 4096) // reused across this client's streams
			var local []float64
			for ctx.Err() == nil {
				d, err := runOne(ctx, client, jobsURL, body, spec, scanbuf, &ctr)
				switch {
				case err == nil:
					atomic.AddInt64(&ctr.completed, 1)
					local = append(local, float64(d))
				case errors.Is(err, errRejected):
					// counters already bumped; wait was applied inside runOne
				case ctx.Err() != nil:
					// run over; an in-flight request dying on cancel is not a
					// service error
				default:
					atomic.AddInt64(&ctr.errors, 1)
				}
				if cfg.Think > 0 {
					pause := time.Duration(rng.ExpFloat64() * float64(cfg.Think))
					select {
					case <-time.After(pause):
					case <-ctx.Done():
					}
				}
			}
			mu.Lock()
			sojourns = append(sojourns, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Clients:            cfg.Clients,
		Tenants:            cfg.Tenants,
		Duration:           elapsed,
		Completed:          ctr.completed,
		Rejected:           ctr.rejected,
		RejectedRate:       ctr.rejRate,
		RejectedQueue:      ctr.rejQueue,
		Errors:             ctr.errors,
		ProtocolViolations: ctr.violations,
		Throughput:         float64(ctr.completed) / elapsed.Seconds(),
	}
	if len(sojourns) > 0 {
		sort.Float64s(sojourns)
		rep.MeanSojourn = time.Duration(stats.Mean(sojourns))
		rep.P50Sojourn = time.Duration(stats.Percentile(sojourns, 50))
		rep.P95Sojourn = time.Duration(stats.Percentile(sojourns, 95))
		rep.P99Sojourn = time.Duration(stats.Percentile(sojourns, 99))
		rep.MaxSojourn = time.Duration(sojourns[len(sojourns)-1])
	}

	// Pull the server's admission snapshot and re-run its model at the
	// achieved operating point.
	if st, err := fetchStats(context.Background(), client, cfg.URL); err == nil {
		rep.ServerStats = st
		mean := st.ServiceEWMA.Seconds()
		if mean > 0 && rep.Throughput > 0 && st.Sizing.Servers > 0 {
			mu := 1 / mean
			lambda := rep.Throughput
			// The model is undefined at/over capacity; clamp just under so
			// a saturated run still yields a (pessimistic) prediction.
			if cap := float64(st.Sizing.Servers) * mu; lambda >= cap {
				lambda = cap * 0.999
			}
			if m, err := queuing.AnalyzeMMC(lambda, mu, st.Sizing.Servers); err == nil {
				if q, err := m.SojournQuantile(0.99); err == nil {
					rep.ModeledP99 = time.Duration(q * float64(time.Second))
					if rep.ModeledP99 > 0 && st.SojournP99 > 0 {
						rep.ModelError = float64(st.SojournP99-rep.ModeledP99) / float64(rep.ModeledP99)
					}
				}
			}
		}
	}
	return rep, nil
}

// errRejected signals a handled 429/503 (already counted and waited).
var errRejected = errors.New("serviced: rejected")

// runOne submits one job and consumes its stream, returning the
// client-observed sojourn. Protocol violations (bad version, seq gaps,
// kind disorder, rep miscounts) bump ctr.violations.
func runOne(ctx context.Context, client *http.Client, jobsURL string, body []byte, spec JobSpec, scanbuf []byte, ctr *loadCounters) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, jobsURL, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		atomic.AddInt64(&ctr.rejected, 1)
		wait := rejectionWait(resp, ctr)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		return 0, errRejected
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, fmt.Errorf("serviced: unexpected status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}

	// Stream validation state: seq must increment from 1 without gaps,
	// kinds must run accepted -> started -> progress* -> result, and the
	// progress reps must count 1..Reps.
	var (
		lastSeq   uint64
		sawResult bool
		nextRep   = 1
		violation = func() { atomic.AddInt64(&ctr.violations, 1) }
	)
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(scanbuf, 1<<20)
	scanner.Split(splitSSEFrames)
	for scanner.Scan() {
		ev, err := ParseSSEFrame(scanner.Bytes())
		if err != nil {
			violation()
			continue
		}
		if ev.V != SchemaVersion {
			violation()
		}
		if ev.Seq != lastSeq+1 {
			violation()
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case KindAccepted:
			if ev.Seq != 1 || ev.Queue == nil {
				violation()
			}
		case KindStarted:
			if ev.Seq != 2 {
				violation()
			}
		case KindProgress:
			if ev.Rep == nil || ev.Rep.Rep != nextRep {
				violation()
			}
			nextRep++
		case KindResult:
			if ev.Result == nil || ev.Result.Reps != spec.Reps || nextRep != spec.Reps+1 {
				violation()
			}
			sawResult = true
		case KindError:
			return 0, errors.New("serviced: job failed: " + ev.Message)
		default:
			// Unknown kinds are forward-compatible, not violations.
		}
	}
	if err := scanner.Err(); err != nil {
		return 0, err
	}
	if !sawResult {
		violation()
		return 0, errors.New("serviced: stream ended without a result")
	}
	return time.Since(t0), nil
}

// rejectionWait extracts the backpressure horizon from a 429/503:
// the JSON body's retry_after_ms when parseable, else one second.
func rejectionWait(resp *http.Response, ctr *loadCounters) time.Duration {
	wait := time.Second
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if ev, err := DecodeEvent(bytes.TrimSpace(body)); err == nil && ev.Reject != nil {
		switch ev.Reject.Reason {
		case ReasonRate:
			atomic.AddInt64(&ctr.rejRate, 1)
		case ReasonQueue:
			atomic.AddInt64(&ctr.rejQueue, 1)
		}
		if ev.Reject.RetryAfterMS > 0 {
			wait = time.Duration(ev.Reject.RetryAfterMS) * time.Millisecond
		}
	}
	if wait > 2*time.Second {
		wait = 2 * time.Second
	}
	return wait
}

// fetchStats GETs /v1/stats.
func fetchStats(ctx context.Context, client *http.Client, base string) (*ServiceStats, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serviced: stats status %d", resp.StatusCode)
	}
	var st ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// splitSSEFrames is a bufio.SplitFunc cutting the stream at blank-line
// frame terminators ("\n\n", tolerating \r\n line endings).
func splitSSEFrames(data []byte, atEOF bool) (advance int, token []byte, err error) {
	for i := 0; i+1 < len(data); i++ {
		if data[i] != '\n' {
			continue
		}
		j := i + 1
		if data[j] == '\r' && j+1 < len(data) {
			j++
		}
		if j < len(data) && data[j] == '\n' {
			return j + 1, data[:i], nil
		}
	}
	if atEOF && len(bytes.TrimSpace(data)) > 0 {
		return len(data), data, nil
	}
	if atEOF {
		return len(data), nil, nil
	}
	return 0, nil, nil
}
