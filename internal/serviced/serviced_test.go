package serviced

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfeng/internal/telemetry"
)

// testService spins a Service over httptest with a synthetic runner.
func testService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Resolve == nil {
		cfg.Resolve = func(spec JobSpec) (Runner, error) {
			if spec.Kernel != "smoke" {
				return nil, errors.New("unknown kernel " + spec.Kernel)
			}
			return func(rep int) error {
				time.Sleep(200 * time.Microsecond)
				return nil
			}, nil
		}
	}
	if cfg.Admission.Servers == 0 {
		cfg.Admission = AdmissionConfig{
			Servers:            2,
			TargetP99:          2 * time.Second,
			InitialMeanService: time.Millisecond,
		}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream consumes an SSE response into its events.
func readStream(t *testing.T, body io.Reader) []Event {
	t.Helper()
	scanner := bufio.NewScanner(body)
	scanner.Buffer(make([]byte, 0, 4096), 1<<20)
	scanner.Split(splitSSEFrames)
	var events []Event
	for scanner.Scan() {
		ev, err := ParseSSEFrame(scanner.Bytes())
		if err != nil {
			t.Fatalf("bad frame %q: %v", scanner.Bytes(), err)
		}
		events = append(events, ev)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestServiceStreamsFullJob(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, srv := testService(t, Config{Registry: reg})

	resp := postJob(t, srv, JobSpec{Tenant: "acme", Kernel: "smoke", Reps: 3})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readStream(t, resp.Body)
	wantKinds := []Kind{KindAccepted, KindStarted, KindProgress, KindProgress, KindProgress, KindResult}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(wantKinds), events)
	}
	for i, ev := range events {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.V != SchemaVersion || ev.Tenant != "acme" || ev.Job == "" {
			t.Fatalf("bad envelope on event %d: %+v", i, ev)
		}
	}
	res := events[len(events)-1].Result
	if res == nil || res.Kernel != "smoke" || res.Reps != 3 || res.MeanNS <= 0 || res.TotalNS < res.MeanNS {
		t.Fatalf("bad result payload: %+v", res)
	}

	if h := reg.FindHistogram("perfeng_serviced_sojourn_seconds"); h == nil || h.Count() == 0 {
		t.Fatal("sojourn histogram never observed")
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	_, srv := testService(t, Config{})

	resp := postJob(t, srv, JobSpec{Kernel: "nope"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kernel: status %d, want 400", resp.StatusCode)
	}

	r2, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body: status %d, want 400", r2.StatusCode)
	}

	r3, err := srv.Client().Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", r3.StatusCode)
	}
}

// TestServiceBackpressure wedges the executors and fills the queue:
// the next request must bounce with 429, a Retry-After header, and a
// decodable rejected event in the body.
func TestServiceBackpressure(t *testing.T) {
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	cfg := Config{
		Resolve: func(spec JobSpec) (Runner, error) {
			return func(rep int) error {
				once.Do(started.Done)
				<-release
				return nil
			}, nil
		},
		Admission: AdmissionConfig{
			Servers:            1,
			TargetP99:          60 * time.Millisecond,
			InitialMeanService: 10 * time.Millisecond, // sizes a tiny queue
			FairShare:          1,
		},
	}
	svc, srv := testService(t, cfg)
	defer close(release)
	depth := svc.Admission().Sizing().QueueDepth

	// Park 1 running + depth queued jobs, leaving their streams open.
	var streams []*http.Response
	defer func() {
		for _, r := range streams {
			r.Body.Close()
		}
	}()
	for i := 0; i < 1+depth; i++ {
		resp := postJob(t, srv, JobSpec{Tenant: fmt.Sprintf("t%d", i), Kernel: "x"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("setup job %d: status %d", i, resp.StatusCode)
		}
		streams = append(streams, resp)
	}
	started.Wait() // executor is definitely wedged

	resp := postJob(t, srv, JobSpec{Tenant: "late", Kernel: "x"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q not a positive integer", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	ev, err := DecodeEvent(bytes.TrimSpace(body))
	if err != nil {
		t.Fatalf("429 body not a decodable event: %v (%q)", err, body)
	}
	if ev.Kind != KindRejected || ev.Reject == nil || ev.Reject.Reason != ReasonQueue {
		t.Fatalf("bad rejection event: %+v", ev)
	}
	if ev.Reject.RetryAfterMS <= 0 {
		t.Fatalf("rejection carries no retry horizon: %+v", ev.Reject)
	}
}

// TestServiceExactlyOnceUnderContention hammers a small service with
// concurrent clients and reconciles runner executions against result
// events and the admission ledger: every admitted job runs exactly
// once, nothing is lost, nothing runs twice.
func TestServiceExactlyOnceUnderContention(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{
		Resolve: func(spec JobSpec) (Runner, error) {
			return func(rep int) error {
				runs.Add(1)
				return nil
			}, nil
		},
		Admission: AdmissionConfig{
			Servers:            2,
			TargetP99:          time.Second,
			InitialMeanService: 500 * time.Microsecond,
			FairShare:          2,
		},
	}
	svc, srv := testService(t, cfg)

	const clients = 16
	const perClient = 20
	var completed, rejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			spec := JobSpec{Tenant: fmt.Sprintf("t%d", c%4), Kernel: "smoke", Reps: 1}
			body, _ := json.Marshal(spec)
			for i := 0; i < perClient; i++ {
				resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					events := readStream(t, resp.Body)
					if len(events) > 0 && events[len(events)-1].Kind == KindResult {
						completed.Add(1)
					}
				case http.StatusTooManyRequests:
					rejected.Add(1)
					io.Copy(io.Discard, resp.Body)
				default:
					t.Errorf("status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	st := svc.Admission().Stats()
	if completed.Load() == 0 {
		t.Fatal("nothing completed; test is vacuous")
	}
	if got := runs.Load(); got != completed.Load() {
		t.Fatalf("runner executed %d times for %d completed jobs", got, completed.Load())
	}
	if st.Admitted != uint64(completed.Load()) {
		t.Fatalf("admitted %d but %d streams completed", st.Admitted, completed.Load())
	}
	if st.Completions != st.Admitted {
		t.Fatalf("slots leaked: %d admitted, %d released", st.Admitted, st.Completions)
	}
	if st.Inflight != 0 {
		t.Fatalf("%d jobs still in flight after drain", st.Inflight)
	}
	if uint64(rejected.Load()) != st.RejectedRate+st.RejectedQueue {
		t.Fatalf("client rejections %d disagree with ledger %d+%d",
			rejected.Load(), st.RejectedRate, st.RejectedQueue)
	}
}

func TestServiceErrorEvent(t *testing.T) {
	cfg := Config{
		Resolve: func(spec JobSpec) (Runner, error) {
			return func(rep int) error {
				if rep == 2 {
					return errors.New("boom at rep 2")
				}
				return nil
			}, nil
		},
	}
	_, srv := testService(t, cfg)
	resp := postJob(t, srv, JobSpec{Kernel: "x", Reps: 3})
	defer resp.Body.Close()
	events := readStream(t, resp.Body)
	last := events[len(events)-1]
	if last.Kind != KindError || last.Message != "boom at rep 2" {
		t.Fatalf("want terminal error event, got %+v", last)
	}
	// rep 1 succeeded, so exactly one progress event precedes the error
	var progress int
	for _, ev := range events {
		if ev.Kind == KindProgress {
			progress++
		}
	}
	if progress != 1 {
		t.Fatalf("%d progress events before the error, want 1", progress)
	}
}

func TestServiceStatsEndpoint(t *testing.T) {
	_, srv := testService(t, Config{})
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st AdmissionStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sizing.Servers != 2 || st.Sizing.Lambda <= 0 {
		t.Fatalf("stats sizing looks wrong: %+v", st.Sizing)
	}
}

func TestServiceCloseRejects(t *testing.T) {
	svc, srv := testService(t, Config{})
	svc.Close()
	resp := postJob(t, srv, JobSpec{Kernel: "smoke"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed service: status %d, want 503", resp.StatusCode)
	}
}
