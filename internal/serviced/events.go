// The wire schema of the job service: every byte a client sees on the
// SSE stream comes through this file. Events are versioned (V stamps
// the schema generation), typed (Kind discriminates, with exactly one
// payload field populated per kind), and canonically encoded by a
// hand-rolled appender so the encode path allocates nothing into a
// reused buffer and the bytes are deterministic — which is what lets
// the golden test vectors under testdata/vectors/ pin the format
// byte-for-byte. Decoding goes through encoding/json and ignores
// unknown fields, so a v+1 server can stream to a v client (the
// version-skew vectors exercise exactly that).
package serviced

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
)

// SchemaVersion is the wire schema generation this package encodes.
// Bump it when an event's meaning changes incompatibly; adding fields
// or kinds is compatible (decoders ignore what they don't know) and
// does not bump it — but either way the golden vectors must be updated,
// and TestEveryKindHasVector fails the build until they are.
const SchemaVersion = 1

// Kind discriminates event types on the wire.
type Kind string

// The event kinds. Every kind listed here must have at least one
// committed golden vector in testdata/vectors/ — the codec test
// enumerates Kinds() and fails on any kind without one, so a schema
// change cannot land without its vector.
const (
	// KindAccepted opens every accepted job's stream: admission verdict,
	// queue position and the sized limits at admit time.
	KindAccepted Kind = "accepted"
	// KindStarted marks the job leaving the queue for an executor.
	KindStarted Kind = "started"
	// KindProgress reports one completed repetition.
	KindProgress Kind = "progress"
	// KindResult closes a successful stream with the measured
	// repetition statistics.
	KindResult Kind = "result"
	// KindRejected is the one-shot body of a 429: why, and when to retry.
	KindRejected Kind = "rejected"
	// KindError closes a failed stream.
	KindError Kind = "error"
)

// Kinds returns every kind the schema defines, in wire-stable order.
func Kinds() []Kind {
	return []Kind{KindAccepted, KindStarted, KindProgress, KindResult, KindRejected, KindError}
}

// Known reports whether k is a kind this schema generation defines.
// Streams from newer servers may carry unknown kinds; clients skip
// them instead of failing (forward compatibility).
func (k Kind) Known() bool {
	switch k {
	case KindAccepted, KindStarted, KindProgress, KindResult, KindRejected, KindError:
		return true
	}
	return false
}

// QueueInfo is the accepted payload: where the job landed.
type QueueInfo struct {
	// Position is the number of jobs ahead of this one when it was
	// admitted (0 = an executor was free).
	Position int `json:"position"`
	// Len and Limit are the queue occupancy and the model-sized bound
	// at admit time.
	Len   int `json:"len"`
	Limit int `json:"limit"`
	// Servers is the executor count (the c of the M/M/c sizing).
	Servers int `json:"servers"`
}

// RepInfo is the progress payload: one finished repetition.
type RepInfo struct {
	Rep  int   `json:"rep"`  // 1-based
	Reps int   `json:"reps"` // total requested
	NS   int64 `json:"ns"`   // this repetition's wall time
}

// ResultInfo is the result payload: the job's measured statistics.
type ResultInfo struct {
	Kernel  string `json:"kernel"`
	Reps    int    `json:"reps"`
	WaitNS  int64  `json:"wait_ns"` // admit -> first executor cycle
	MeanNS  int64  `json:"mean_ns"`
	P50NS   int64  `json:"p50_ns"`
	P95NS   int64  `json:"p95_ns"`
	P99NS   int64  `json:"p99_ns"`
	TotalNS int64  `json:"total_ns"` // sum of repetition times
}

// RejectInfo is the rejected payload: the backpressure signal.
type RejectInfo struct {
	// Reason is "rate" (tenant token bucket empty), "queue" (bounded
	// queue full) or "closed" (service draining).
	Reason string `json:"reason"`
	// RetryAfterMS mirrors the 429's Retry-After header at millisecond
	// resolution (the header rounds up to whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms"`
	QueueLen     int   `json:"queue_len"`
	Limit        int   `json:"limit"`
}

// Event is one element of a job's SSE stream. Exactly one payload
// pointer is non-nil, matching Kind; Seq numbers the stream from 1
// with no gaps, which is how the load-test client detects dropped
// events.
type Event struct {
	V      int    `json:"v"`
	Kind   Kind   `json:"kind"`
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Seq    uint64 `json:"seq"`

	Queue   *QueueInfo  `json:"queue,omitempty"`
	Rep     *RepInfo    `json:"rep,omitempty"`
	Result  *ResultInfo `json:"result,omitempty"`
	Reject  *RejectInfo `json:"reject,omitempty"`
	Message string      `json:"message,omitempty"`
}

// AppendJSON appends the canonical JSON encoding of e to b and returns
// the extended slice. Field order is fixed (v, kind, job, tenant, seq,
// payload), empty optional fields are omitted, and nothing beyond b's
// growth is allocated — the SSE hot path reuses one buffer per stream,
// and the serviced-event-encode benchmark gates the zero-alloc claim.
// The golden vectors under testdata/vectors/ pin the bytes.
func AppendJSON(b []byte, e *Event) []byte {
	b = append(b, `{"v":`...)
	b = strconv.AppendInt(b, int64(e.V), 10)
	b = append(b, `,"kind":`...)
	b = appendString(b, string(e.Kind))
	if e.Job != "" {
		b = append(b, `,"job":`...)
		b = appendString(b, e.Job)
	}
	if e.Tenant != "" {
		b = append(b, `,"tenant":`...)
		b = appendString(b, e.Tenant)
	}
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	if q := e.Queue; q != nil {
		b = append(b, `,"queue":{"position":`...)
		b = strconv.AppendInt(b, int64(q.Position), 10)
		b = append(b, `,"len":`...)
		b = strconv.AppendInt(b, int64(q.Len), 10)
		b = append(b, `,"limit":`...)
		b = strconv.AppendInt(b, int64(q.Limit), 10)
		b = append(b, `,"servers":`...)
		b = strconv.AppendInt(b, int64(q.Servers), 10)
		b = append(b, '}')
	}
	if r := e.Rep; r != nil {
		b = append(b, `,"rep":{"rep":`...)
		b = strconv.AppendInt(b, int64(r.Rep), 10)
		b = append(b, `,"reps":`...)
		b = strconv.AppendInt(b, int64(r.Reps), 10)
		b = append(b, `,"ns":`...)
		b = strconv.AppendInt(b, r.NS, 10)
		b = append(b, '}')
	}
	if r := e.Result; r != nil {
		b = append(b, `,"result":{"kernel":`...)
		b = appendString(b, r.Kernel)
		b = append(b, `,"reps":`...)
		b = strconv.AppendInt(b, int64(r.Reps), 10)
		b = append(b, `,"wait_ns":`...)
		b = strconv.AppendInt(b, r.WaitNS, 10)
		b = append(b, `,"mean_ns":`...)
		b = strconv.AppendInt(b, r.MeanNS, 10)
		b = append(b, `,"p50_ns":`...)
		b = strconv.AppendInt(b, r.P50NS, 10)
		b = append(b, `,"p95_ns":`...)
		b = strconv.AppendInt(b, r.P95NS, 10)
		b = append(b, `,"p99_ns":`...)
		b = strconv.AppendInt(b, r.P99NS, 10)
		b = append(b, `,"total_ns":`...)
		b = strconv.AppendInt(b, r.TotalNS, 10)
		b = append(b, '}')
	}
	if r := e.Reject; r != nil {
		b = append(b, `,"reject":{"reason":`...)
		b = appendString(b, r.Reason)
		b = append(b, `,"retry_after_ms":`...)
		b = strconv.AppendInt(b, r.RetryAfterMS, 10)
		b = append(b, `,"queue_len":`...)
		b = strconv.AppendInt(b, int64(r.QueueLen), 10)
		b = append(b, `,"limit":`...)
		b = strconv.AppendInt(b, int64(r.Limit), 10)
		b = append(b, '}')
	}
	if e.Message != "" {
		b = append(b, `,"message":`...)
		b = appendString(b, e.Message)
	}
	return append(b, '}')
}

// AppendSSE appends the full SSE frame for e — event: line, data: line,
// blank terminator — to b. Same allocation contract as AppendJSON.
func AppendSSE(b []byte, e *Event) []byte {
	b = append(b, "event: "...)
	b = append(b, e.Kind...)
	b = append(b, "\ndata: "...)
	b = AppendJSON(b, e)
	return append(b, "\n\n"...)
}

// appendString appends s as a JSON string literal. Job ids, tenants and
// kernel names are plain ASCII identifiers, so the fast path copies
// bytes; anything needing escapes takes the stdlib marshal path (an
// allocation, but off the hot path by construction).
func appendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7F {
			esc, _ := json.Marshal(s)
			return append(b, esc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// ErrNoVersion marks a data payload without a schema version — not an
// event from any generation of this schema.
var ErrNoVersion = errors.New("serviced: event payload has no schema version")

// DecodeEvent parses one data payload. Unknown fields are ignored and
// unknown kinds are preserved (check Kind.Known()), so clients keep
// working across compatible schema growth; a missing or non-positive
// version is malformed.
func DecodeEvent(data []byte) (Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return Event{}, fmt.Errorf("serviced: decoding event: %w", err)
	}
	if e.V <= 0 {
		return Event{}, ErrNoVersion
	}
	if e.Kind == "" {
		return Event{}, errors.New("serviced: event has no kind")
	}
	return e, nil
}

// ParseSSEFrame extracts and decodes the data payload of one SSE frame
// (the bytes between blank-line terminators). Comment lines and the
// event: name line are skipped; multiple data: lines concatenate per
// the SSE spec.
var (
	sseLF         = []byte("\n")
	sseCR         = []byte("\r")
	sseDataPrefix = []byte("data:")
	sseSpace      = []byte(" ")
)

func ParseSSEFrame(frame []byte) (Event, error) {
	var data []byte
	for _, line := range bytes.Split(frame, sseLF) {
		line = bytes.TrimSuffix(line, sseCR)
		rest, ok := bytes.CutPrefix(line, sseDataPrefix)
		if !ok {
			continue
		}
		rest = bytes.TrimPrefix(rest, sseSpace)
		if data != nil {
			data = append(data, '\n')
		}
		data = append(data, rest...)
	}
	if data == nil {
		return Event{}, errors.New("serviced: SSE frame has no data line")
	}
	return DecodeEvent(data)
}
