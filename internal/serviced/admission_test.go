package serviced

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfeng/internal/queuing"
	"perfeng/internal/stats"
)

func TestSizeAdmissionBasics(t *testing.T) {
	s, err := SizeAdmission(4, 10*time.Millisecond, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Attainable {
		t.Fatalf("generous target should be attainable: %+v", s)
	}
	if s.Lambda <= 0 || s.Rho <= 0 || s.Rho >= 1 {
		t.Fatalf("degenerate sizing: %+v", s)
	}
	if s.ModeledP99 > s.TargetP99 {
		t.Fatalf("modeled p99 %v exceeds the target %v it was sized for", s.ModeledP99, s.TargetP99)
	}
	if s.QueueDepth < 1 || s.QueueDepth > maxQueueDepth {
		t.Fatalf("queue depth %d out of range", s.QueueDepth)
	}
	// A looser target must never admit less or queue shallower.
	loose, err := SizeAdmission(4, 10*time.Millisecond, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Lambda < s.Lambda || loose.QueueDepth < s.QueueDepth {
		t.Fatalf("loosening the target shrank the sizing: tight=%+v loose=%+v", s, loose)
	}
}

func TestSizeAdmissionUnattainable(t *testing.T) {
	// Service p99 alone (ln 100 ≈ 4.6 mean service times) exceeds the
	// target: the sizing must say so and still produce usable limits.
	s, err := SizeAdmission(2, time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.Attainable {
		t.Fatalf("target below the service tail must be unattainable: %+v", s)
	}
	if s.Lambda <= 0 || s.QueueDepth < 1 {
		t.Fatalf("fallback sizing unusable: %+v", s)
	}
	if s.ModeledP99 <= s.TargetP99 {
		t.Fatalf("unattainable sizing should expose the violation: modeled %v <= target %v",
			s.ModeledP99, s.TargetP99)
	}
}

func TestSizeAdmissionRejectsBadInputs(t *testing.T) {
	if _, err := SizeAdmission(0, time.Millisecond, time.Second); err == nil {
		t.Fatal("0 servers must error")
	}
	if _, err := SizeAdmission(2, 0, time.Second); err == nil {
		t.Fatal("0 service time must error")
	}
	if _, err := SizeAdmission(2, time.Millisecond, 0); err == nil {
		t.Fatal("0 target must error")
	}
}

// TestAdmissionConcurrentTenants is the contention hammer: many
// goroutines across several tenants slam Admit/Done on a deliberately
// tiny queue under the race detector. Invariants: every admitted job
// is released exactly once, the in-flight high-water mark never
// exceeds servers + queue depth (the bound the executor channel
// capacity relies on), and every rejection carries a usable retry
// horizon.
func TestAdmissionConcurrentTenants(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{
		Servers:            2,
		TargetP99:          50 * time.Millisecond,
		InitialMeanService: 5 * time.Millisecond,
		FairShare:          4,
		ResizeEvery:        16, // exercise live re-sizing under contention
	})
	if err != nil {
		t.Fatal(err)
	}
	limit := a.Sizing().QueueDepth
	bound := 2 + limit

	const goroutines = 32
	const attempts = 400
	var admitted, badRetry int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%5)
			now := time.Now()
			for i := 0; i < attempts; i++ {
				// Advance a synthetic clock so buckets refill deterministically
				// regardless of scheduler jitter.
				now = now.Add(500 * time.Microsecond)
				d := a.Admit(tenant, now)
				if !d.OK {
					if d.RetryAfter <= 0 {
						atomic.AddInt64(&badRetry, 1)
					}
					continue
				}
				atomic.AddInt64(&admitted, 1)
				if d.QueueLen > d.Limit {
					t.Errorf("admitted with queue %d over limit %d", d.QueueLen, d.Limit)
				}
				a.Done(time.Duration(1+i%10) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()

	st := a.Stats()
	if st.Inflight != 0 {
		t.Fatalf("slots leaked: %d still in flight after all Done calls", st.Inflight)
	}
	if st.Admitted != uint64(admitted) {
		t.Fatalf("admission ledger disagrees with clients: controller %d, clients %d",
			st.Admitted, admitted)
	}
	if st.Completions != st.Admitted {
		t.Fatalf("exactly-once violated: %d admissions, %d completions", st.Admitted, st.Completions)
	}
	if st.MaxInflight > bound {
		t.Fatalf("in-flight high water %d exceeded servers+depth bound %d", st.MaxInflight, bound)
	}
	if badRetry != 0 {
		t.Fatalf("%d rejections carried no retry horizon", badRetry)
	}
	if admitted == 0 {
		t.Fatal("hammer admitted nothing; test is vacuous")
	}
	if st.RejectedRate+st.RejectedQueue == 0 {
		t.Fatal("tiny queue never rejected; test is vacuous")
	}
}

// TestAdmissionQueueNeverExceedsBound drives admits with no Done calls
// at all: the controller must stop at exactly servers + depth.
func TestAdmissionQueueNeverExceedsBound(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{
		Servers:            2,
		TargetP99:          time.Second,
		InitialMeanService: 10 * time.Millisecond,
		FairShare:          1, // whole rate to one tenant: only the queue bound stops us
	})
	if err != nil {
		t.Fatal(err)
	}
	depth := a.Sizing().QueueDepth
	now := time.Now()
	got := 0
	for i := 0; i < 2+depth+100; i++ {
		// Generous refill between attempts so the token bucket never binds.
		now = now.Add(time.Second)
		if d := a.Admit("hog", now); d.OK {
			got++
		} else if d.Reason != ReasonQueue {
			t.Fatalf("expected queue rejection once full, got %q", d.Reason)
		}
	}
	if want := 2 + depth; got != want {
		t.Fatalf("admitted %d without any completions; bound is %d", got, want)
	}
}

func TestAdmissionClose(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{
		Servers: 1, TargetP99: time.Second, InitialMeanService: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	d := a.Admit("x", time.Now())
	if d.OK || d.Reason != ReasonClosed {
		t.Fatalf("closed controller admitted: %+v", d)
	}
}

// TestAdmissionResizesOnDrift feeds completions 8x slower than the
// seed estimate and checks the controller re-derives a smaller lambda
// without waiting for the ResizeEvery period.
func TestAdmissionResizesOnDrift(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{
		Servers:            2,
		TargetP99:          2 * time.Second,
		InitialMeanService: time.Millisecond,
		ResizeEvery:        1 << 20, // periodic path effectively off; drift must trigger
	})
	if err != nil {
		t.Fatal(err)
	}
	before := a.Sizing()
	now := time.Now()
	for i := 0; i < 64; i++ {
		now = now.Add(time.Second)
		if d := a.Admit("t", now); d.OK {
			a.Done(8 * time.Millisecond)
		}
	}
	after := a.Sizing()
	if after.MeanService == before.MeanService {
		t.Fatalf("8x drift never re-sized: before=%+v after=%+v", before, after)
	}
	if after.Lambda >= before.Lambda {
		t.Fatalf("slower service must shrink lambda: before %.1f, after %.1f",
			before.Lambda, after.Lambda)
	}
}

// TestSizedLimitHoldsP99 is the property test closing the loop between
// sizing.go and internal/queuing's discrete-event simulator: offer the
// sized arrival rate to a simulated station with the matching service
// distribution and the measured p99 sojourn must come in at or under
// the target (within simulation noise). The model is exact for M/M/c,
// so this catches sizing-math regressions, not model error.
func TestSizedLimitHoldsP99(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		servers := 1 + rng.Intn(4)
		mean := time.Duration(1+rng.Intn(20)) * time.Millisecond
		// Targets comfortably above the service tail so the sizing is
		// attainable and rho lands in the interesting mid-range.
		target := time.Duration(8+rng.Intn(40)) * mean
		s, err := SizeAdmission(servers, mean, target)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Attainable {
			t.Fatalf("trial %d: target %v should be attainable for mean %v", trial, target, mean)
		}
		sim, err := queuing.Simulate(
			queuing.Exponential(s.Lambda),
			queuing.Exponential(1/mean.Seconds()),
			servers, 60000, 4000, int64(100+trial),
		)
		if err != nil {
			t.Fatal(err)
		}
		p99 := stats.Percentile(append([]float64(nil), sim.Sojourns...), 99)
		measured := time.Duration(p99 * float64(time.Second))
		// 20% headroom: 60k exponential customers leave real noise in the
		// 99th percentile.
		if measured > target+target/5 {
			t.Errorf("trial %d (c=%d mean=%v target=%v lambda=%.2f): simulated p99 %v blew the target",
				trial, servers, mean, target, s.Lambda, measured)
		}
	}
}

// TestSizedLimitDeterministicService: with deterministic service times
// (lighter tail than the exponential the model assumes) the sized
// limit must hold with room to spare — the model is conservative here.
func TestSizedLimitDeterministicService(t *testing.T) {
	mean := 5 * time.Millisecond
	target := 100 * time.Millisecond
	s, err := SizeAdmission(3, mean, target)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := queuing.Simulate(
		queuing.Exponential(s.Lambda),
		queuing.Deterministic(mean.Seconds()),
		3, 40000, 2000, 11,
	)
	if err != nil {
		t.Fatal(err)
	}
	p99 := stats.Percentile(append([]float64(nil), sim.Sojourns...), 99)
	if measured := time.Duration(p99 * float64(time.Second)); measured > target {
		t.Fatalf("deterministic service should sit under the target: measured %v, target %v",
			measured, target)
	}
}
