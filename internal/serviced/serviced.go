// Package serviced is perfengd: the multi-tenant kernel-run job
// service layered on the perfeng serve monitoring endpoint (ROADMAP
// item 1). Clients POST kernel-run requests (kernel, shape, sched
// policy, reps) to /v1/jobs; admitted jobs execute on a fixed set of
// executors dispatching onto the shared internal/sched pool, and the
// response streams typed, versioned progress/result events over SSE
// (events.go). Admission control (admission.go) is a per-tenant token
// bucket plus one bounded queue, both sized from internal/queuing's
// M/M/c model (sizing.go) — the toolbox dogfooding its own queuing
// theory — with rejections surfacing as 429 + Retry-After. Every
// decision and latency exports through internal/telemetry, and
// rejections leave context in the internal/flight black box.
package serviced

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"perfeng/internal/flight"
	"perfeng/internal/stats"
	"perfeng/internal/telemetry"
)

// JobSpec is the request body of POST /v1/jobs.
type JobSpec struct {
	// Tenant identifies the admission-control principal; empty maps to
	// "anon".
	Tenant string `json:"tenant"`
	// Kernel names the workload (the resolver validates it).
	Kernel string `json:"kernel"`
	// N is the problem size, Workers the parallel worker count
	// (0 = kernel default), Policy the sched policy name ("stealing",
	// "static", "guided"; advisory, resolver-interpreted).
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	Policy  string `json:"policy,omitempty"`
	// Reps is how many repetitions to run and measure (default 1,
	// clamped to Config.MaxReps).
	Reps int `json:"reps"`
}

// Runner executes one repetition of a resolved job.
type Runner func(rep int) error

// Resolver turns a validated spec into a Runner. It must reject
// unknown kernels and out-of-range shapes — resolution happens before
// admission, so a malformed request never consumes a queue slot.
type Resolver func(spec JobSpec) (Runner, error)

// Config configures a Service.
type Config struct {
	// Resolve is required.
	Resolve Resolver
	// Admission sizes the front door (see AdmissionConfig; Servers also
	// sets the executor count).
	Admission AdmissionConfig
	// Registry receives the perfeng_serviced_* metrics; nil disables
	// telemetry (handles no-op).
	Registry *telemetry.Registry
	// MaxReps clamps JobSpec.Reps (default 64).
	MaxReps int
}

// job is one admitted request flowing from the HTTP handler to an
// executor. The handler is the only goroutine writing the response;
// the executor publishes events into the buffered channel, whose
// capacity (reps+3) covers the whole stream so the executor never
// blocks on a slow or disconnected client and no event is ever
// dropped.
type job struct {
	spec    JobSpec
	id      string
	runner  Runner
	admitAt time.Time
	seq     uint64
	events  chan Event
}

func (j *job) next() uint64 { j.seq++; return j.seq }

func (j *job) emit(e Event) {
	e.V = SchemaVersion
	e.Job = j.id
	e.Tenant = j.spec.Tenant
	e.Seq = j.next()
	j.events <- e
}

// Service is the job service. Create with New, attach Handler to an
// HTTP server, Close to drain.
type Service struct {
	cfg   Config
	adm   *Admission
	queue chan *job
	wg    sync.WaitGroup
	ids   atomic.Uint64
	_     [56]byte // keep the id counter off the RWMutex's cache line

	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool

	met serviceMetrics
}

// serviceMetrics are the perfeng_serviced_* handles; all nil (no-op)
// without a registry.
type serviceMetrics struct {
	admitted, rejectedRate, rejectedQueue, rejectedClosed *telemetry.Counter
	badRequests, completed, jobErrors, eventsSent         *telemetry.Counter
	disconnects                                           *telemetry.Counter
	tenantAdmitted                                        *telemetry.CounterFamily
	queueLen, inflight, lambda, depth                     *telemetry.Gauge
	modeledP99, serviceEWMA                               *telemetry.Gauge
	sojourn, service, wait                                *telemetry.Histogram
}

func newServiceMetrics(reg *telemetry.Registry) serviceMetrics {
	req := reg.CounterFamily("perfeng_serviced_requests",
		"Job requests by admission decision.", "decision")
	return serviceMetrics{
		admitted:       req.With("admitted"),
		rejectedRate:   req.With("rejected_rate"),
		rejectedQueue:  req.With("rejected_queue"),
		rejectedClosed: req.With("rejected_closed"),
		badRequests:    req.With("bad_request"),
		completed: reg.Counter("perfeng_serviced_jobs_completed",
			"Jobs that ran to a result event."),
		jobErrors: reg.Counter("perfeng_serviced_job_errors",
			"Jobs whose kernel returned an error."),
		eventsSent: reg.Counter("perfeng_serviced_events_sent",
			"SSE events written to clients."),
		disconnects: reg.Counter("perfeng_serviced_client_disconnects",
			"Streams abandoned by the client before the result event."),
		tenantAdmitted: reg.CounterFamily("perfeng_serviced_tenant_admitted",
			"Admitted jobs per tenant (cardinality-bounded by the tenant population).", "tenant"),
		queueLen: reg.Gauge("perfeng_serviced_queue_len",
			"Jobs waiting for an executor."),
		inflight: reg.Gauge("perfeng_serviced_inflight",
			"Admitted jobs not yet completed (running + queued)."),
		lambda: reg.Gauge("perfeng_serviced_admit_lambda",
			"Model-sized admitted arrival-rate cap, jobs/second."),
		depth: reg.Gauge("perfeng_serviced_queue_depth_limit",
			"Model-sized bound on waiting jobs."),
		modeledP99: reg.Gauge("perfeng_serviced_modeled_p99_seconds",
			"Modeled p99 sojourn at the sized arrival cap."),
		serviceEWMA: reg.Gauge("perfeng_serviced_service_ewma_seconds",
			"Smoothed measured mean service time feeding the sizing."),
		sojourn: reg.Histogram("perfeng_serviced_sojourn_seconds",
			"Admit-to-completion time of admitted jobs.", -30, 4),
		service: reg.Histogram("perfeng_serviced_service_seconds",
			"Pure execution time of admitted jobs.", -30, 4),
		wait: reg.Histogram("perfeng_serviced_wait_seconds",
			"Queue wait of admitted jobs.", -30, 4),
	}
}

// New builds a Service and starts its executors.
func New(cfg Config) (*Service, error) {
	if cfg.Resolve == nil {
		return nil, errors.New("serviced: config needs a resolver")
	}
	if cfg.MaxReps <= 0 {
		cfg.MaxReps = 64
	}
	adm, err := NewAdmission(cfg.Admission)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg: cfg,
		adm: adm,
		// Admission bounds inflight by Servers + QueueDepth and the
		// depth never exceeds maxQueueDepth, so this capacity means an
		// admitted job can always be enqueued without blocking.
		queue: make(chan *job, cfg.Admission.Servers+maxQueueDepth+1),
		met:   newServiceMetrics(cfg.Registry),
	}
	s.publishSizing()
	for i := 0; i < cfg.Admission.Servers; i++ {
		s.wg.Add(1)
		//perfvet:ignore:allocattr each executor allocates its reusable duration buffer once at spawn, not per job
		go s.executor()
	}
	return s, nil
}

// publishSizing mirrors the current sizing and occupancy into gauges.
func (s *Service) publishSizing() {
	st := s.adm.Stats()
	s.met.queueLen.Set(float64(st.QueueLen))
	s.met.inflight.Set(float64(st.Inflight))
	s.met.lambda.Set(st.Sizing.Lambda)
	s.met.depth.Set(float64(st.Sizing.QueueDepth))
	s.met.modeledP99.Set(st.Sizing.ModeledP99.Seconds())
	s.met.serviceEWMA.Set(st.ServiceEWMA.Seconds())
}

// Admission exposes the controller (stats endpoints, tests).
func (s *Service) Admission() *Admission { return s.adm }

// Close drains the service: new requests are rejected, queued jobs run
// to completion, executors exit.
func (s *Service) Close() {
	s.adm.Close()
	s.mu.Lock()
	already := s.closed
	s.closed = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	if !already {
		s.wg.Wait()
	}
}

// Handler returns the /v1/ routing table: POST /v1/jobs (SSE stream),
// GET /v1/stats (admission + sizing snapshot JSON).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// Attach registers the service's routes on any HandleFunc-style
// registrar (telemetry.Server satisfies it), which is how perfeng
// serve mounts the job API next to /metrics.
func (s *Service) Attach(reg interface {
	HandleFunc(pattern string, fn http.HandlerFunc)
}) {
	reg.HandleFunc("/v1/jobs", s.handleJobs)
	reg.HandleFunc("/v1/stats", s.handleStats)
}

// ServiceStats is the GET /v1/stats body: the admission ledger plus
// the server-side sojourn quantiles (admit -> done, from the telemetry
// histogram). The latter is what the load-test harness compares the
// M/M/c prediction against — same station, same clock — while the
// client-observed sojourn additionally carries HTTP transport cost.
type ServiceStats struct {
	AdmissionStats
	SojournP50 time.Duration `json:"sojourn_p50_ns"`
	SojournP95 time.Duration `json:"sojourn_p95_ns"`
	SojournP99 time.Duration `json:"sojourn_p99_ns"`
}

// Stats snapshots the service.
func (s *Service) Stats() ServiceStats {
	q := func(p float64) time.Duration {
		v := s.met.sojourn.Quantile(p)
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		return time.Duration(v * float64(time.Second))
	}
	return ServiceStats{
		AdmissionStats: s.adm.Stats(),
		SojournP50:     q(0.50),
		SojournP95:     q(0.95),
		SojournP99:     q(0.99),
	}
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a job spec", http.StatusMethodNotAllowed)
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10))
	if err := dec.Decode(&spec); err != nil {
		s.met.badRequests.Inc()
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if spec.Tenant == "" {
		spec.Tenant = "anon"
	}
	if spec.Reps <= 0 {
		spec.Reps = 1
	}
	if spec.Reps > s.cfg.MaxReps {
		spec.Reps = s.cfg.MaxReps
	}
	runner, err := s.cfg.Resolve(spec)
	if err != nil {
		s.met.badRequests.Inc()
		http.Error(w, "unresolvable job: "+err.Error(), http.StatusBadRequest)
		return
	}

	now := time.Now()
	d := s.adm.Admit(spec.Tenant, now)
	if !d.OK {
		s.reject(w, spec, d)
		return
	}
	s.met.admitted.Inc()
	s.met.tenantAdmitted.With(spec.Tenant).Inc()
	s.publishSizing()

	j := &job{
		spec:    spec,
		id:      fmt.Sprintf("j%d", s.ids.Add(1)),
		runner:  runner,
		admitAt: now,
		events:  make(chan Event, spec.Reps+3),
	}

	// The handler owns the response; the accepted event goes out first,
	// then everything the executor publishes, in seq order.
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Job-Id", j.id)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 0, 512)
	accepted := Event{
		V: SchemaVersion, Kind: KindAccepted, Job: j.id, Tenant: spec.Tenant, Seq: j.next(),
		Queue: &QueueInfo{Position: d.Position, Len: d.QueueLen, Limit: d.Limit,
			Servers: s.cfg.Admission.Servers},
	}
	buf = AppendSSE(buf[:0], &accepted)
	if _, err := w.Write(buf); err == nil {
		s.met.eventsSent.Inc()
		if flusher != nil {
			flusher.Flush()
		}
	}

	if !s.enqueue(j) {
		// Lost the race with Close after admission: release the slot and
		// end the stream with an error event.
		s.adm.Done(0)
		errEv := Event{Kind: KindError, Message: "service draining"}
		errEv.V, errEv.Job, errEv.Tenant, errEv.Seq = SchemaVersion, j.id, spec.Tenant, j.next()
		if _, err := w.Write(AppendSSE(buf[:0], &errEv)); err == nil {
			s.met.eventsSent.Inc()
		}
		return
	}

	ctx := r.Context()
	for {
		select {
		case e, ok := <-j.events:
			if !ok {
				return
			}
			buf = AppendSSE(buf[:0], &e)
			if _, err := w.Write(buf); err != nil {
				// Client went away; the job still runs (its slot is
				// accounted for) but nobody is listening.
				s.met.disconnects.Inc()
				return
			}
			s.met.eventsSent.Inc()
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			s.met.disconnects.Inc()
			return
		}
	}
}

// reject writes the 429 (or 503 when draining): Retry-After header in
// whole seconds rounded up, millisecond-resolution horizon in the JSON
// body, context dropped into the flight recorder's black box.
func (s *Service) reject(w http.ResponseWriter, spec JobSpec, d Decision) {
	status := http.StatusTooManyRequests
	switch d.Reason {
	case ReasonRate:
		s.met.rejectedRate.Inc()
	case ReasonQueue:
		s.met.rejectedQueue.Inc()
	default:
		s.met.rejectedClosed.Inc()
		status = http.StatusServiceUnavailable
	}
	if rec := flight.Active(); rec != nil {
		rec.RecordInstant("serviced", "reject/"+d.Reason, rec.Now())
		rec.RecordSample("perfeng_serviced_queue_len", rec.Now(), float64(d.QueueLen))
	}
	retry := d.RetryAfter
	if retry < 0 {
		retry = 0
	}
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	e := Event{
		V: SchemaVersion, Kind: KindRejected, Tenant: spec.Tenant, Seq: 1,
		Reject: &RejectInfo{Reason: d.Reason, RetryAfterMS: retry.Milliseconds(),
			QueueLen: d.QueueLen, Limit: d.Limit},
	}
	w.Write(AppendJSON(make([]byte, 0, 256), &e))
	w.Write([]byte("\n"))
}

// enqueue hands j to the executors unless the service is draining.
func (s *Service) enqueue(j *job) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	s.queue <- j // capacity covers every admissible job; never blocks
	return true
}

// executor consumes jobs until the queue closes. The per-rep duration
// buffer is owned by the executor and reused across jobs (MaxReps
// bounds it), so the steady state allocates nothing per job.
func (s *Service) executor() {
	defer s.wg.Done()
	durs := make([]float64, 0, s.cfg.MaxReps)
	for j := range s.queue {
		//perfvet:ignore:allocattr per-rep progress payloads escape into the event channel and are consumed concurrently by the streaming handler; they cannot be reused
		s.run(j, durs)
	}
}

// run executes one job: started, one progress per rep, then result (or
// error), releasing the admission slot with the measured service time.
func (s *Service) run(j *job, durs []float64) {
	started := time.Now()
	wait := started.Sub(j.admitAt)
	j.emit(Event{Kind: KindStarted})

	reps := j.spec.Reps
	durs = durs[:0]
	var total time.Duration
	for rep := 1; rep <= reps; rep++ {
		t0 := time.Now()
		err := j.runner(rep)
		d := time.Since(t0)
		total += d
		if err != nil {
			s.met.jobErrors.Inc()
			j.emit(Event{Kind: KindError, Message: err.Error()})
			close(j.events)
			s.finish(j, wait, total)
			return
		}
		durs = append(durs, float64(d))
		j.emit(Event{Kind: KindProgress, Rep: &RepInfo{Rep: rep, Reps: reps, NS: int64(d)}})
	}
	res := &ResultInfo{
		Kernel:  j.spec.Kernel,
		Reps:    reps,
		WaitNS:  int64(wait),
		MeanNS:  int64(stats.Mean(durs)),
		P50NS:   int64(stats.Percentile(durs, 50)),
		P95NS:   int64(stats.Percentile(durs, 95)),
		P99NS:   int64(stats.Percentile(durs, 99)),
		TotalNS: int64(total),
	}
	j.emit(Event{Kind: KindResult, Result: res})
	close(j.events)
	s.met.completed.Inc()
	s.finish(j, wait, total)
}

// finish releases the admission slot and records the latency split.
func (s *Service) finish(j *job, wait, service time.Duration) {
	s.adm.Done(service)
	sojourn := time.Since(j.admitAt)
	s.met.sojourn.Observe(sojourn.Seconds())
	s.met.service.Observe(service.Seconds())
	s.met.wait.Observe(wait.Seconds())
	s.publishSizing()
	if rec := flight.Active(); rec != nil {
		end := rec.Now()
		rec.RecordSpan("serviced", "job/"+j.spec.Kernel, j.id, end-sojourn, sojourn)
	}
}
