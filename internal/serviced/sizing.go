// Admission sizing: the service dogfooding internal/queuing. The job
// pool is modeled as an M/M/c station — c executors, exponential
// service at the measured mean — and the two admission limits fall out
// of the model:
//
//   - Lambda, the per-second token rate, is the largest arrival rate
//     whose modeled p99 sojourn (queuing.MMC.SojournQuantile) still
//     sits under the latency objective. Admitted traffic therefore
//     never offers more load than the model says the target can absorb.
//   - QueueDepth bounds waiting jobs so that even a worst-case admit —
//     arriving behind a full queue — drains in time: K slots at mean
//     drain rate c/S plus the service tail must fit the target.
//
// Both are re-derived live as the measured mean service time drifts
// (Admission.Done feeds an EWMA and re-sizes), which is the "measure,
// model, operate" loop of the paper's process applied to the service's
// own front door. The model is exact for Poisson arrivals and
// exponential service; real traffic is neither, so EXPERIMENTS.md
// documents the modeled-vs-measured gap the load-test harness reports.
package serviced

import (
	"errors"
	"fmt"
	"math"
	"time"

	"perfeng/internal/queuing"
)

// maxQueueDepth caps the sized queue bound regardless of how loose the
// latency objective is: beyond this, memory and connection count — not
// sojourn time — are the binding constraints.
const maxQueueDepth = 4096

// Sizing is one admission-control configuration derived from the M/M/c
// model, plus the inputs that produced it (for /v1/stats and reports).
type Sizing struct {
	Servers     int           `json:"servers"`
	MeanService time.Duration `json:"mean_service_ns"`
	TargetP99   time.Duration `json:"target_p99_ns"`

	// Lambda is the admitted arrival-rate cap, jobs/second.
	Lambda float64 `json:"lambda"`
	// QueueDepth bounds jobs waiting for an executor (excludes the c
	// running ones).
	QueueDepth int `json:"queue_depth"`
	// Rho and ModeledP99 describe the station at the Lambda cap.
	Rho        float64       `json:"rho"`
	ModeledP99 time.Duration `json:"modeled_p99_ns"`
	// Attainable is false when the objective cannot be met even by an
	// empty system (the service-time tail alone exceeds it); the sizing
	// then falls back to rho=0.5 so the service stays usable and the
	// violation is visible in ModeledP99 > TargetP99.
	Attainable bool `json:"attainable"`
}

// SizeAdmission derives the admission limits for c executors with the
// given measured mean service time and p99 sojourn objective.
func SizeAdmission(servers int, meanService, targetP99 time.Duration) (Sizing, error) {
	if servers < 1 {
		return Sizing{}, errors.New("serviced: need at least one executor")
	}
	if meanService <= 0 || targetP99 <= 0 {
		return Sizing{}, errors.New("serviced: service time and target must be positive")
	}
	s := Sizing{
		Servers:     servers,
		MeanService: meanService,
		TargetP99:   targetP99,
		Attainable:  true,
	}
	mu := 1 / meanService.Seconds()
	target := targetP99.Seconds()
	capacity := float64(servers) * mu

	// Empty-system floor: with exponential service the p99 of service
	// alone is ln(100)/mu. Above-target means no arrival rate helps.
	serviceP99 := math.Log(100) / mu
	if serviceP99 >= target {
		s.Attainable = false
		s.Lambda = 0.5 * capacity
		s.QueueDepth = servers
		m, err := queuing.AnalyzeMMC(s.Lambda, mu, servers)
		if err != nil {
			return Sizing{}, fmt.Errorf("serviced: fallback sizing: %w", err)
		}
		s.Rho = m.Rho
		q, err := m.SojournQuantile(0.99)
		if err != nil {
			return Sizing{}, err
		}
		s.ModeledP99 = time.Duration(q * float64(time.Second))
		return s, nil
	}

	// Largest lambda whose modeled p99 sojourn meets the target, by
	// bisection over (0, c*mu). feasible() is monotone in lambda: more
	// offered load never shortens the sojourn tail.
	feasible := func(lambda float64) (bool, float64) {
		m, err := queuing.AnalyzeMMC(lambda, mu, servers)
		if err != nil {
			return false, math.Inf(1)
		}
		q, err := m.SojournQuantile(0.99)
		if err != nil {
			return false, math.Inf(1)
		}
		return q <= target, q
	}
	lo := capacity * 1e-6
	hi := capacity * (1 - 1e-9)
	if ok, _ := feasible(lo); !ok {
		// Numerical corner: even a near-empty system misses (target just
		// above serviceP99). Treat like the unattainable fallback.
		lo = 0.5 * capacity
	} else {
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if ok, _ := feasible(mid); ok {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	s.Lambda = lo
	m, err := queuing.AnalyzeMMC(s.Lambda, mu, servers)
	if err != nil {
		return Sizing{}, err
	}
	s.Rho = m.Rho
	q, err := m.SojournQuantile(0.99)
	if err != nil {
		return Sizing{}, err
	}
	s.ModeledP99 = time.Duration(q * float64(time.Second))

	// Queue bound: a job admitted behind K waiters starts after the
	// queue drains at rate c*mu (all servers busy while a queue exists),
	// so its modeled p99 sojourn is K/(c*mu) + serviceP99. The largest K
	// keeping that under target is the depth.
	k := int(math.Floor((target - serviceP99) * capacity))
	if k < 1 {
		k = 1
	}
	if k > maxQueueDepth {
		k = maxQueueDepth
	}
	s.QueueDepth = k
	return s, nil
}
