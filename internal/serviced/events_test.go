package serviced

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// vector is one committed golden test vector under testdata/vectors/:
// the exact wire bytes of an SSE frame next to the event it decodes
// to. Non-decode-only vectors also pin the encoder: re-encoding the
// event must reproduce the wire bytes exactly.
type vector struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Kind        Kind            `json:"kind"`
	DecodeOnly  bool            `json:"decode_only"`
	Wire        string          `json:"wire"`
	Event       json.RawMessage `json:"event"`
}

func loadVectors(t *testing.T) []vector {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "vectors", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden vectors under testdata/vectors/")
	}
	var out []vector
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var v vector
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if v.Name == "" || v.Wire == "" || len(v.Event) == 0 {
			t.Fatalf("%s: vector missing name, wire or event", p)
		}
		if want := strings.TrimSuffix(filepath.Base(p), ".json"); v.Name != want {
			t.Fatalf("%s: vector name %q does not match its file name", p, v.Name)
		}
		out = append(out, v)
	}
	return out
}

// TestEveryKindHasVector is the schema-change tripwire: a kind added
// to Kinds() without a committed round-trippable golden vector fails
// here, so the wire format cannot drift unpinned.
func TestEveryKindHasVector(t *testing.T) {
	vectors := loadVectors(t)
	for _, k := range Kinds() {
		found := false
		for _, v := range vectors {
			if v.Kind == k && !v.DecodeOnly {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("kind %q has no round-trippable golden vector under testdata/vectors/", k)
		}
	}
}

// TestVectorsRoundTrip decodes every vector's wire frame, compares it
// against the expected event, and — for non-decode-only vectors —
// re-encodes the event and demands byte equality with the wire.
func TestVectorsRoundTrip(t *testing.T) {
	for _, v := range loadVectors(t) {
		t.Run(v.Name, func(t *testing.T) {
			got, err := ParseSSEFrame([]byte(v.Wire))
			if err != nil {
				t.Fatalf("decoding wire: %v", err)
			}
			var want Event
			if err := json.Unmarshal(v.Event, &want); err != nil {
				t.Fatalf("unmarshalling expected event: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decoded event mismatch:\n got: %+v\nwant: %+v", got, want)
			}
			if got.Kind != v.Kind {
				t.Fatalf("decoded kind %q, vector says %q", got.Kind, v.Kind)
			}
			if v.DecodeOnly {
				return
			}
			if !got.Kind.Known() {
				t.Fatalf("round-trippable vector has unknown kind %q", got.Kind)
			}
			wire := AppendSSE(nil, &want)
			if string(wire) != v.Wire {
				t.Fatalf("re-encode drifted from golden bytes:\n got: %q\nwant: %q", wire, v.Wire)
			}
		})
	}
}

// TestVectorSkew pins the forward-compatibility contract: the v2
// vector decodes under v1 (extra fields dropped, version preserved)
// and the unknown-kind vector surfaces as Known() == false.
func TestVectorSkew(t *testing.T) {
	byName := map[string]vector{}
	for _, v := range loadVectors(t) {
		byName[v.Name] = v
	}
	skew, ok := byName["version_skew_v2"]
	if !ok {
		t.Fatal("version_skew_v2 vector missing")
	}
	ev, err := ParseSSEFrame([]byte(skew.Wire))
	if err != nil {
		t.Fatalf("v1 decoder must accept a v2 frame: %v", err)
	}
	if ev.V <= SchemaVersion {
		t.Fatalf("skew vector must carry a newer version, got v=%d", ev.V)
	}
	if !ev.Kind.Known() || ev.Result == nil {
		t.Fatalf("skew vector should decode to a known result event, got %+v", ev)
	}

	unk, ok := byName["unknown_kind"]
	if !ok {
		t.Fatal("unknown_kind vector missing")
	}
	ev, err = ParseSSEFrame([]byte(unk.Wire))
	if err != nil {
		t.Fatalf("unknown kinds must decode, not error: %v", err)
	}
	if ev.Kind.Known() {
		t.Fatalf("vector kind %q unexpectedly known to this schema", ev.Kind)
	}
}

// TestDecodeEventErrors pins the malformed cases.
func TestDecodeEventErrors(t *testing.T) {
	if _, err := DecodeEvent([]byte(`{"kind":"started","seq":1}`)); err != ErrNoVersion {
		t.Fatalf("missing version: got %v, want ErrNoVersion", err)
	}
	if _, err := DecodeEvent([]byte(`{"v":1,"seq":1}`)); err == nil {
		t.Fatal("missing kind must error")
	}
	if _, err := DecodeEvent([]byte(`{"v":1,`)); err == nil {
		t.Fatal("truncated JSON must error")
	}
	if _, err := ParseSSEFrame([]byte("event: started\n")); err == nil {
		t.Fatal("frame without a data line must error")
	}
}

// TestAppendJSONAgreesWithStdlib checks the hand-rolled encoder's
// output is valid JSON that the stdlib decodes back to the original
// event, including strings that force the escape slow path.
func TestAppendJSONAgreesWithStdlib(t *testing.T) {
	events := []Event{
		{V: 1, Kind: KindStarted, Job: "j1", Tenant: "acme", Seq: 2},
		{V: 1, Kind: KindError, Job: "j3", Tenant: "anon", Seq: 4,
			Message: `quote " backslash \ newline` + "\n" + `unicode é`},
		{V: 1, Kind: KindProgress, Job: "j1", Tenant: "t0", Seq: 3,
			Rep: &RepInfo{Rep: 2, Reps: 5, NS: 987654321}},
		{V: 1, Kind: KindRejected, Tenant: "t7", Seq: 1,
			Reject: &RejectInfo{Reason: ReasonRate, RetryAfterMS: 42, QueueLen: 3, Limit: 8}},
	}
	for _, want := range events {
		raw := AppendJSON(nil, &want)
		var got Event
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("encoder produced invalid JSON %q: %v", raw, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stdlib decode of %q:\n got: %+v\nwant: %+v", raw, got, want)
		}
	}
}

// TestParseSSEFrameVariants covers CRLF line endings and multi-data
// concatenation per the SSE spec.
func TestParseSSEFrameVariants(t *testing.T) {
	crlf := "event: started\r\ndata: {\"v\":1,\"kind\":\"started\",\"seq\":2}\r\n"
	ev, err := ParseSSEFrame([]byte(crlf))
	if err != nil || ev.Kind != KindStarted || ev.Seq != 2 {
		t.Fatalf("CRLF frame: ev=%+v err=%v", ev, err)
	}
	multi := "data: {\"v\":1,\ndata: \"kind\":\"started\",\"seq\":2}"
	if _, err := ParseSSEFrame([]byte(multi)); err == nil {
		// Multi-data lines join with \n per spec, which here lands inside
		// the JSON — still valid JSON (whitespace), so this must decode.
		ev, _ := ParseSSEFrame([]byte(multi))
		if ev.Kind != KindStarted {
			t.Fatalf("multi-data frame decoded to %+v", ev)
		}
	} else {
		t.Fatalf("multi-data frame: %v", err)
	}
}
