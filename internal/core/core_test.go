package core

import (
	"strings"
	"testing"
	"time"

	"perfeng/internal/kernels"
	"perfeng/internal/machine"
	"perfeng/internal/metrics"
)

// matmulApp builds the Assignment 1 application: naive baseline, ikj and
// parallel candidates, on an n x n problem.
func matmulApp(n int) *Application {
	a := kernels.RandomDense(n, 1)
	b := kernels.RandomDense(n, 2)
	c := kernels.NewDense(n)
	return &Application{
		Name:  "matmul",
		FLOPs: kernels.MatMulFLOPs(n),
		Bytes: kernels.MatMulCompulsoryBytes(n),
		Baseline: Variant{Name: "naive-ijk", Run: func() {
			kernels.MatMulNaive(a, b, c)
		}},
		Candidates: []Variant{
			{Name: "reordered-ikj", Run: func() { kernels.MatMulIKJ(a, b, c) }},
			{Name: "parallel", Procs: 4, Run: func() { kernels.MatMulParallel(a, b, c, 4) }},
		},
	}
}

func quickEngagement(app *Application, req Requirement) *Engagement {
	return &Engagement{
		App:         app,
		CPU:         machine.GenericLaptop(),
		Requirement: req,
		Runner:      metrics.QuickConfig(),
	}
}

func TestEngagementEndToEnd(t *testing.T) {
	e := quickEngagement(matmulApp(96), Requirement{Kind: SpeedupAtLeast, Target: 1.2})
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Baseline == nil || out.Baseline.Speedup != 1 {
		t.Fatal("baseline missing or speedup != 1")
	}
	if len(out.Variants) != 3 {
		t.Fatalf("variants = %d, want 3", len(out.Variants))
	}
	// ikj or parallel must beat naive at this size.
	if out.Best == out.Baseline {
		t.Fatal("an optimized variant should win")
	}
	if out.Best.Speedup <= 1.2 {
		t.Fatalf("best speedup = %v, expected > 1.2", out.Best.Speedup)
	}
	if !out.Satisfied {
		t.Fatal("requirement should be met")
	}
	if out.Iterations < 1 {
		t.Fatal("stage 6 never ran")
	}
	// Stage 7 report includes all stages.
	txt := out.Report.String()
	for _, want := range []string{"Stage 1", "Stage 2", "Stage 3", "Stage 4",
		"Stage 5/6", "Stage 6", "Stage 7", "MET", "matmul"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("report missing %q:\n%s", want, txt)
		}
	}
}

func TestEngagementImpossibleRequirement(t *testing.T) {
	// A speedup target far beyond the roofline headroom must be flagged
	// infeasible in stage 3 and unmet in stage 6.
	e := quickEngagement(matmulApp(64), Requirement{Kind: SpeedupAtLeast, Target: 1e9})
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Feasible {
		t.Fatal("1e9x speedup should be infeasible")
	}
	if out.Satisfied {
		t.Fatal("requirement cannot be satisfied")
	}
	if !strings.Contains(out.Report.String(), "NOT MET") {
		t.Fatal("report must state the requirement was not met")
	}
	if !strings.Contains(out.Report.String(), "INFEASIBLE") {
		t.Fatal("report must carry the stage-3 verdict")
	}
}

func TestEngagementRuntimeRequirement(t *testing.T) {
	e := quickEngagement(matmulApp(48), Requirement{Kind: RuntimeBelow, Target: 10})
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 seconds for a 48x48 matmul: trivially satisfied.
	if !out.Satisfied || !out.Feasible {
		t.Fatal("10s budget must be met")
	}
}

func TestEngagementFractionRequirement(t *testing.T) {
	e := quickEngagement(matmulApp(48), Requirement{Kind: FractionOfRoofline, Target: 1e-9})
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfied {
		t.Fatalf("any code achieves 1e-9 of roofline; fraction = %v",
			out.Best.Analysis.Fraction)
	}
	over := quickEngagement(matmulApp(48), Requirement{Kind: FractionOfRoofline, Target: 1.5})
	out2, err := over.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Feasible {
		t.Fatal(">100% of roofline is infeasible by definition")
	}
}

func TestEngagementNoCandidates(t *testing.T) {
	app := matmulApp(32)
	app.Candidates = nil
	e := quickEngagement(app, Requirement{Kind: RuntimeBelow, Target: 10})
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Best != out.Baseline {
		t.Fatal("baseline must be best without candidates")
	}
	if !out.Satisfied {
		t.Fatal("10s budget must still be judged")
	}
}

func TestEngagementValidation(t *testing.T) {
	good := matmulApp(16)
	cases := []struct {
		name string
		e    *Engagement
	}{
		{"nil baseline", quickEngagement(&Application{Name: "x"}, Requirement{Kind: SpeedupAtLeast, Target: 2})},
		{"no name", quickEngagement(&Application{Baseline: good.Baseline}, Requirement{Kind: SpeedupAtLeast, Target: 2})},
		{"bad requirement", quickEngagement(good, Requirement{Kind: SpeedupAtLeast, Target: 0})},
		{"nil candidate", quickEngagement(&Application{Name: "x", Baseline: good.Baseline,
			Candidates: []Variant{{Name: "broken"}}}, Requirement{Kind: SpeedupAtLeast, Target: 2})},
	}
	for _, tc := range cases {
		if _, err := tc.e.Run(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Invalid machine model.
	bad := quickEngagement(good, Requirement{Kind: SpeedupAtLeast, Target: 2})
	bad.CPU = machine.CPU{}
	if _, err := bad.Run(); err == nil {
		t.Error("invalid CPU must fail")
	}
}

func TestRequirementStrings(t *testing.T) {
	r := Requirement{Kind: SpeedupAtLeast, Target: 2}
	if !strings.Contains(r.String(), "speedup") {
		t.Fatalf("String = %q", r.String())
	}
	rt := Requirement{Kind: RuntimeBelow, Target: 0.5}
	if !strings.Contains(rt.String(), "500") {
		t.Fatalf("String = %q", rt.String())
	}
}

func TestVariantAnalysisCarriesBound(t *testing.T) {
	e := quickEngagement(matmulApp(64), Requirement{Kind: SpeedupAtLeast, Target: 1.1})
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Variants {
		if v.Analysis.Attainable <= 0 {
			t.Fatalf("variant %s has no attainable bound", v.Variant.Name)
		}
	}
}

func TestSignificanceInOutcome(t *testing.T) {
	// The quick protocol's 3-5 samples make Welch's t-test fragile under
	// scheduler noise; this test needs a stable verdict, so it runs its
	// own protocol: more repetitions, millisecond batching and outlier
	// rejection, which makes a ~3x ikj-over-naive win reliably
	// significant at alpha = 0.05.
	e := &Engagement{
		App:         matmulApp(96),
		CPU:         machine.GenericLaptop(),
		Requirement: Requirement{Kind: SpeedupAtLeast, Target: 1.2},
		Runner: metrics.RunnerConfig{
			Warmup:         2,
			MinRuns:        10,
			MaxRuns:        15,
			MinSampleTime:  time.Millisecond,
			RejectOutliers: true,
		},
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Best == out.Baseline {
		t.Skip("baseline won; nothing to compare")
	}
	if out.Significance == nil {
		t.Fatal("significance missing for a real win")
	}
	// A ~3x ikj win over naive must be statistically significant even
	// with the quick protocol.
	if !out.Significance.Significant {
		t.Fatalf("clear win not significant: %+v", out.Significance)
	}
	if !strings.Contains(out.Report.String(), "p=") {
		t.Fatal("report must carry the p-value")
	}
}

func TestEngagementProfile(t *testing.T) {
	e := quickEngagement(matmulApp(32), Requirement{Kind: RuntimeBelow, Target: 10})
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Profile == nil || out.Profile.Depth() != 0 {
		t.Fatal("profile missing or left open")
	}
	// One region per measured variant.
	if got := len(out.Profile.Regions()); got != len(out.Variants) {
		t.Fatalf("profile regions = %d, variants = %d", got, len(out.Variants))
	}
	if !strings.Contains(out.Report.String(), "flat profile") {
		t.Fatal("report missing the engineering-time profile")
	}
}
