package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"perfeng/internal/linalg"
	"perfeng/internal/metrics"
)

// ScalingStudy is the strong-scaling analysis of learning objective 4/6:
// measure a parallel implementation across worker counts, compute speedup
// and efficiency, fit Amdahl's law to estimate the serial fraction, and
// report the Karp-Flatt diagnostic per point.

// ScalingPoint is one measured worker count.
type ScalingPoint struct {
	Workers    int
	Seconds    float64
	Speedup    float64
	Efficiency float64
	KarpFlatt  float64
}

// ScalingResult is the outcome of a study.
type ScalingResult struct {
	Name   string
	Points []ScalingPoint
	// SerialFraction is the Amdahl serial fraction fitted by least
	// squares over all points (NaN when the fit is impossible).
	SerialFraction float64
	// AmdahlLimit is the asymptotic speedup 1/SerialFraction.
	AmdahlLimit float64
}

// RunScalingStudy measures run(workers) for each worker count (which must
// start at 1, the sequential baseline) under the given protocol.
func RunScalingStudy(name string, workerCounts []int, cfg metrics.RunnerConfig, run func(workers int)) (*ScalingResult, error) {
	if len(workerCounts) < 2 || workerCounts[0] != 1 {
		return nil, errors.New("core: scaling study needs worker counts starting at 1")
	}
	runner := metrics.NewRunner(cfg)
	seconds := make([]float64, 0, len(workerCounts))
	for _, w := range workerCounts {
		if w < 1 {
			return nil, fmt.Errorf("core: invalid worker count %d", w)
		}
		w := w
		m := runner.Measure(name+"/w="+strconv.Itoa(w), 0, 0, func() { run(w) })
		seconds = append(seconds, m.MedianSeconds())
	}
	return FitScaling(name, workerCounts, seconds)
}

// FitScaling builds the result from already-measured runtimes (exposed
// separately so model-generated or externally measured series can be
// analyzed identically).
func FitScaling(name string, workers []int, seconds []float64) (*ScalingResult, error) {
	if len(workers) != len(seconds) || len(workers) < 2 {
		return nil, errors.New("core: scaling fit needs matching series of >= 2 points")
	}
	if workers[0] != 1 {
		return nil, errors.New("core: first point must be the sequential baseline")
	}
	t1 := seconds[0]
	if t1 <= 0 {
		return nil, errors.New("core: non-positive baseline runtime")
	}
	res := &ScalingResult{Name: name}
	for i, w := range workers {
		if seconds[i] <= 0 {
			return nil, fmt.Errorf("core: non-positive runtime at w=%d", w)
		}
		sp := t1 / seconds[i]
		p := ScalingPoint{
			Workers:    w,
			Seconds:    seconds[i],
			Speedup:    sp,
			Efficiency: sp / float64(w),
			KarpFlatt:  metrics.KarpFlatt(sp, w),
		}
		res.Points = append(res.Points, p)
	}
	res.SerialFraction = fitAmdahl(res.Points)
	if res.SerialFraction > 0 {
		res.AmdahlLimit = 1 / res.SerialFraction
	} else {
		res.AmdahlLimit = math.Inf(1)
	}
	return res, nil
}

// fitAmdahl fits T(p) = t1*(f + (1-f)/p) by least squares on the
// normalized runtimes: T(p)/t1 = f*(1 - 1/p) + 1/p, a one-parameter
// linear problem in f.
func fitAmdahl(pts []ScalingPoint) float64 {
	t1 := pts[0].Seconds
	var rows int
	for _, p := range pts {
		if p.Workers > 1 {
			rows++
		}
	}
	if rows == 0 {
		return math.NaN()
	}
	a := linalg.NewMatrix(rows, 1)
	b := make([]float64, rows)
	i := 0
	for _, p := range pts {
		if p.Workers == 1 {
			continue
		}
		invP := 1 / float64(p.Workers)
		a.Set(i, 0, 1-invP)
		b[i] = p.Seconds/t1 - invP
		i++
	}
	x, err := linalg.SolveLeastSquares(a, b)
	if err != nil {
		return math.NaN()
	}
	f := x[0]
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// WeakScalingPoint is one measured worker count of a weak-scaling study
// (problem size grows with workers).
type WeakScalingPoint struct {
	Workers int
	Seconds float64
	// ScaledSpeedup is the Gustafson speedup: p * t1/tp normalized so
	// ideal weak scaling (constant runtime) gives speedup == p.
	ScaledSpeedup float64
	Efficiency    float64 // t1/tp; 1 means perfect weak scaling
}

// WeakScalingResult is the outcome of a weak-scaling study.
type WeakScalingResult struct {
	Name   string
	Points []WeakScalingPoint
	// SerialFraction is the Gustafson serial fraction fitted from the
	// scaled speedups: S(p) = p - f*(p-1).
	SerialFraction float64
}

// FitWeakScaling analyzes runtimes where the per-worker problem size is
// constant (total work grows with p). workers must start at 1.
func FitWeakScaling(name string, workers []int, seconds []float64) (*WeakScalingResult, error) {
	if len(workers) != len(seconds) || len(workers) < 2 {
		return nil, errors.New("core: weak scaling needs matching series of >= 2 points")
	}
	if workers[0] != 1 {
		return nil, errors.New("core: first point must be the sequential baseline")
	}
	t1 := seconds[0]
	if t1 <= 0 {
		return nil, errors.New("core: non-positive baseline runtime")
	}
	res := &WeakScalingResult{Name: name}
	for i, w := range workers {
		if seconds[i] <= 0 {
			return nil, fmt.Errorf("core: non-positive runtime at w=%d", w)
		}
		eff := t1 / seconds[i]
		res.Points = append(res.Points, WeakScalingPoint{
			Workers:       w,
			Seconds:       seconds[i],
			ScaledSpeedup: float64(w) * eff,
			Efficiency:    eff,
		})
	}
	// Fit S(p) = p - f*(p-1) by least squares over p > 1.
	var num, den float64
	for _, p := range res.Points {
		if p.Workers == 1 {
			continue
		}
		pm1 := float64(p.Workers - 1)
		num += pm1 * (float64(p.Workers) - p.ScaledSpeedup)
		den += pm1 * pm1
	}
	if den > 0 {
		f := num / den
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		res.SerialFraction = f
	} else {
		res.SerialFraction = math.NaN()
	}
	return res, nil
}

// String renders the weak-scaling table.
func (r *WeakScalingResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "weak scaling: %s\n", r.Name)
	sb.WriteString("  p   time        scaled-speedup  efficiency\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%3d   %-10s  %13.2fx  %9.0f%%\n",
			p.Workers, metrics.FormatSeconds(p.Seconds), p.ScaledSpeedup,
			p.Efficiency*100)
	}
	if !math.IsNaN(r.SerialFraction) {
		fmt.Fprintf(&sb, "Gustafson fit: serial fraction %.3f\n", r.SerialFraction)
	}
	return sb.String()
}

// String renders the scaling table with the Amdahl verdict.
func (r *ScalingResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strong scaling: %s\n", r.Name)
	sb.WriteString("  p   time        speedup  efficiency  karp-flatt\n")
	for _, p := range r.Points {
		kf := "-"
		if !math.IsNaN(p.KarpFlatt) {
			kf = strconv.FormatFloat(p.KarpFlatt, 'f', 3, 64)
		}
		fmt.Fprintf(&sb, "%3d   %-10s  %6.2fx  %9.0f%%  %s\n",
			p.Workers, metrics.FormatSeconds(p.Seconds), p.Speedup,
			p.Efficiency*100, kf)
	}
	if !math.IsNaN(r.SerialFraction) {
		fmt.Fprintf(&sb, "Amdahl fit: serial fraction %.3f -> speedup limit %.1fx\n",
			r.SerialFraction, r.AmdahlLimit)
	}
	return sb.String()
}
