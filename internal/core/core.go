// Package core implements the toolbox's centerpiece: the seven-stage
// performance-engineering process of Section 2.3 as an executable engine.
//
//	Stage 1  Collect and analyse performance requirements.
//	Stage 2  Understand current performance (measure the baseline).
//	Stage 3  Assess feasibility of the requirements (roofline headroom).
//	Stage 4  Assess suitable approaches (bound classification -> advice).
//	Stage 5  Apply tuning and optimization (measure candidate variants).
//	Stage 6  Assess progress and iterate back to 3-5.
//	Stage 7  Analyse and document the process and the final result.
//
// An Engagement binds an Application (baseline + candidate variants with
// a work/traffic characterization) to a machine model and a requirement,
// runs the stages, and emits the stage-7 report. This is the "performance
// engineering toolbox" the course wants students to assemble, in library
// form.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"perfeng/internal/machine"
	"perfeng/internal/metrics"
	"perfeng/internal/profile"
	"perfeng/internal/report"
	"perfeng/internal/roofline"
)

// Variant is one implementation of the application.
type Variant struct {
	Name string
	// Run executes the variant once on the standard problem instance.
	Run func()
	// Procs is the worker count the variant uses (1 = sequential).
	Procs int
}

// Application describes the code under engineering.
type Application struct {
	Name string
	// FLOPs and Bytes characterize one execution (for roofline placement).
	FLOPs, Bytes float64
	Baseline     Variant
	// Candidates are the optimization ladder measured in stage 5.
	Candidates []Variant
}

// Validate checks the application description.
func (a *Application) Validate() error {
	if a.Name == "" {
		return errors.New("core: application needs a name")
	}
	if a.Baseline.Run == nil {
		return errors.New("core: application needs a runnable baseline")
	}
	for _, v := range a.Candidates {
		if v.Run == nil {
			return fmt.Errorf("core: candidate %q is not runnable", v.Name)
		}
	}
	return nil
}

// RequirementKind selects how the requirement is judged.
type RequirementKind int

// Requirement kinds.
const (
	// SpeedupAtLeast requires best/baseline >= Target.
	SpeedupAtLeast RequirementKind = iota
	// RuntimeBelow requires the best median runtime <= Target seconds.
	RuntimeBelow
	// FractionOfRoofline requires achieved/attainable >= Target.
	FractionOfRoofline
)

// String implements fmt.Stringer.
func (k RequirementKind) String() string {
	return [...]string{"speedup at least", "runtime below", "fraction of roofline at least"}[k]
}

// Requirement is the stage-1 artifact.
type Requirement struct {
	Kind   RequirementKind
	Target float64
}

// String implements fmt.Stringer.
func (r Requirement) String() string {
	switch r.Kind {
	case RuntimeBelow:
		return fmt.Sprintf("%s %s", r.Kind, metrics.FormatSeconds(r.Target))
	default:
		return fmt.Sprintf("%s %.2f", r.Kind, r.Target)
	}
}

// Validate checks the requirement.
func (r Requirement) Validate() error {
	if r.Target <= 0 {
		return errors.New("core: requirement target must be positive")
	}
	return nil
}

// Engagement binds an application to a machine and a requirement.
type Engagement struct {
	App         *Application
	CPU         machine.CPU
	Requirement Requirement
	// Runner configures the measurement protocol (DefaultConfig when
	// zero).
	Runner metrics.RunnerConfig
	// MaxIterations bounds the stage-6 loop (default 3).
	MaxIterations int
}

// VariantResult is a measured variant.
type VariantResult struct {
	Variant     Variant
	Measurement *metrics.Measurement
	Speedup     float64 // vs baseline
	Analysis    roofline.Analysis
}

// Outcome is everything the engagement produced, stage by stage.
type Outcome struct {
	Requirement Requirement      // stage 1
	Baseline    *VariantResult   // stage 2
	Model       *roofline.Model  // stage 3
	Feasible    bool             // stage 3
	Feasibility string           // stage 3 narrative
	Advice      []string         // stage 4
	Variants    []*VariantResult // stage 5, baseline first
	Best        *VariantResult   // stage 6
	Satisfied   bool             // stage 6
	Iterations  int              // stage 6
	// Significance is the Welch t-test verdict of best vs baseline
	// (nil when the baseline itself is best or samples are too few).
	Significance *metrics.Comparison // stage 6
	// Profile is the flat profile of where the engagement's own wall
	// clock went (per-stage, per-variant measurement regions).
	Profile *profile.Profiler
	Report  *report.Report // stage 7
}

// Run executes the seven stages.
func (e *Engagement) Run() (*Outcome, error) {
	// Stage 1: requirements.
	if err := e.App.Validate(); err != nil {
		return nil, err
	}
	if err := e.Requirement.Validate(); err != nil {
		return nil, err
	}
	if err := e.CPU.Validate(); err != nil {
		return nil, err
	}
	out := &Outcome{Requirement: e.Requirement, Profile: profile.New()}
	runner := metrics.NewRunner(e.Runner)
	model := roofline.FromCPU(e.CPU)
	out.Model = model

	measure := func(v Variant) *VariantResult {
		out.Profile.Enter("measure/" + v.Name)
		m := runner.Measure(e.App.Name+"/"+v.Name, e.App.FLOPs, e.App.Bytes, v.Run)
		_ = out.Profile.Exit("measure/" + v.Name)
		if v.Procs > 0 {
			m.Procs = v.Procs
		}
		return &VariantResult{
			Variant:     v,
			Measurement: m,
			Analysis:    model.Analyze(roofline.PointFromMeasurement(m)),
		}
	}

	// Stage 2: understand current performance.
	out.Baseline = measure(e.App.Baseline)
	out.Baseline.Speedup = 1
	out.Variants = append(out.Variants, out.Baseline)

	// Stage 3: feasibility. The roofline headroom at the baseline's AI is
	// the model's upper bound on achievable speedup (for a fixed
	// algorithm and AI).
	headroom := out.Baseline.Analysis.Headroom
	switch e.Requirement.Kind {
	case SpeedupAtLeast:
		out.Feasible = headroom >= e.Requirement.Target
		out.Feasibility = fmt.Sprintf(
			"roofline headroom at AI %.3g is %.2fx; requirement needs %.2fx",
			out.Baseline.Analysis.Point.AI, headroom, e.Requirement.Target)
	case RuntimeBelow:
		bestPossible := out.Baseline.Measurement.MedianSeconds() / headroom
		out.Feasible = bestPossible <= e.Requirement.Target
		out.Feasibility = fmt.Sprintf(
			"model-optimal runtime is %s; requirement needs %s",
			metrics.FormatSeconds(bestPossible), metrics.FormatSeconds(e.Requirement.Target))
	case FractionOfRoofline:
		out.Feasible = e.Requirement.Target <= 1
		out.Feasibility = fmt.Sprintf("requesting %.0f%% of attainable", e.Requirement.Target*100)
	}

	// Stage 4: approaches.
	out.Advice = append(out.Advice, out.Baseline.Analysis.Advice)
	if out.Baseline.Analysis.Bound == roofline.MemoryBound {
		out.Advice = append(out.Advice,
			"memory-bound: prefer variants improving locality (reordering, tiling) before adding threads")
	} else {
		out.Advice = append(out.Advice,
			"compute-bound: prefer variants adding parallelism and ILP")
	}

	// Stages 5+6: tune, assess, iterate. Each iteration measures the
	// remaining candidates; the loop stops when the requirement is met or
	// candidates are exhausted.
	maxIter := e.MaxIterations
	if maxIter <= 0 {
		maxIter = 3
	}
	out.Best = out.Baseline
	remaining := append([]Variant(nil), e.App.Candidates...)
	for iter := 0; iter < maxIter && len(remaining) > 0 && !out.Satisfied; iter++ {
		out.Iterations++
		for _, v := range remaining {
			vr := measure(v)
			vr.Speedup = metrics.Speedup(out.Baseline.Measurement, vr.Measurement)
			out.Variants = append(out.Variants, vr)
			if vr.Measurement.MedianSeconds() < out.Best.Measurement.MedianSeconds() {
				out.Best = vr
			}
		}
		remaining = nil // one pass over the ladder per engagement
		out.Satisfied = e.satisfied(out)
	}
	if len(e.App.Candidates) == 0 {
		out.Satisfied = e.satisfied(out)
	}

	// Stage 6 addendum: is the best-variant win statistically real?
	if out.Best != out.Baseline {
		if cmp, err := metrics.CompareMeasurements(
			out.Baseline.Measurement, out.Best.Measurement, 0.05); err == nil {
			out.Significance = &cmp
		}
	}

	// Stage 7: document.
	out.Report = e.buildReport(out)
	return out, nil
}

func (e *Engagement) satisfied(out *Outcome) bool {
	switch e.Requirement.Kind {
	case SpeedupAtLeast:
		return out.Best.Speedup >= e.Requirement.Target ||
			(out.Best == out.Baseline && e.Requirement.Target <= 1)
	case RuntimeBelow:
		return out.Best.Measurement.MedianSeconds() <= e.Requirement.Target
	case FractionOfRoofline:
		return out.Best.Analysis.Fraction >= e.Requirement.Target
	}
	return false
}

func (e *Engagement) buildReport(out *Outcome) *report.Report {
	r := &report.Report{Title: "Performance engineering report: " + e.App.Name}
	r.AddSection("Stage 1: requirement", out.Requirement.String())
	r.AddSection("Stage 2: baseline", out.Baseline.Measurement.String())
	feas := "INFEASIBLE per model"
	if out.Feasible {
		feas = "feasible per model"
	}
	r.AddSection("Stage 3: feasibility", feas+" — "+out.Feasibility)
	r.AddSection("Stage 4: approach", "- "+strings.Join(out.Advice, "\n- "))

	tab := &report.Table{Title: "Stage 5/6: variants",
		Headers: []string{"variant", "median", "GFLOP/s", "speedup", "% of roof", "bound"}}
	for _, v := range out.Variants {
		tab.AddRow(v.Variant.Name,
			metrics.FormatSeconds(v.Measurement.MedianSeconds()),
			strconv.FormatFloat(v.Measurement.GFLOPS(), 'f', 2, 64),
			strconv.FormatFloat(v.Speedup, 'f', 2, 64)+"x",
			strconv.FormatFloat(v.Analysis.Fraction*100, 'f', 0, 64)+"%",
			v.Analysis.Bound.String())
	}
	r.AddTable(tab)

	verdict := fmt.Sprintf("best variant %q, %.2fx over baseline; requirement %s: ",
		out.Best.Variant.Name, out.Best.Speedup, out.Requirement)
	if out.Satisfied {
		verdict += "MET"
	} else {
		verdict += "NOT MET"
		if !out.Feasible {
			verdict += " (and the model predicted it infeasible at this arithmetic intensity)"
		}
	}
	if out.Significance != nil {
		verdict += "\n" + out.Significance.String()
	}
	r.AddSection("Stage 6: assessment", verdict)
	r.AddSection("Stage 7: model",
		model3Lines(out))
	r.AddSection("Engineering-time profile", out.Profile.Report())
	return r
}

func model3Lines(out *Outcome) string {
	pts := make([]roofline.Point, 0, len(out.Variants))
	for _, v := range out.Variants {
		pts = append(pts, v.Analysis.Point)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Name < pts[j].Name })
	return out.Model.Report(pts) + "\n" + out.Model.ASCIIPlot(pts, 64, 16)
}
