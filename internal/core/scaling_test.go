package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"perfeng/internal/metrics"
)

// amdahlSeries generates exact Amdahl runtimes for a serial fraction f.
func amdahlSeries(f float64, workers []int) []float64 {
	out := make([]float64, len(workers))
	for i, w := range workers {
		out[i] = 1 * (f + (1-f)/float64(w))
	}
	return out
}

func TestFitScalingRecoversSerialFraction(t *testing.T) {
	workers := []int{1, 2, 4, 8, 16}
	for _, f := range []float64{0, 0.05, 0.25, 0.5, 1} {
		res, err := FitScaling("synthetic", workers, amdahlSeries(f, workers))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.SerialFraction-f) > 1e-9 {
			t.Fatalf("f=%v: fitted %v", f, res.SerialFraction)
		}
		if f > 0 && math.Abs(res.AmdahlLimit-1/f) > 1e-6/f {
			t.Fatalf("f=%v: limit %v", f, res.AmdahlLimit)
		}
	}
	// f=0 gives an infinite limit.
	res, _ := FitScaling("ideal", workers, amdahlSeries(0, workers))
	if !math.IsInf(res.AmdahlLimit, 1) {
		t.Fatalf("ideal limit = %v", res.AmdahlLimit)
	}
}

func TestFitScalingPointMetrics(t *testing.T) {
	workers := []int{1, 4}
	res, err := FitScaling("x", workers, []float64{8, 2})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[1]
	if p.Speedup != 4 || p.Efficiency != 1 {
		t.Fatalf("point = %+v", p)
	}
	if math.Abs(p.KarpFlatt) > 1e-12 {
		t.Fatalf("perfect scaling KarpFlatt = %v", p.KarpFlatt)
	}
	if !strings.Contains(res.String(), "Amdahl fit") {
		t.Fatal("String incomplete")
	}
}

func TestFitScalingErrors(t *testing.T) {
	if _, err := FitScaling("x", []int{1}, []float64{1}); err == nil {
		t.Fatal("single point must fail")
	}
	if _, err := FitScaling("x", []int{2, 4}, []float64{1, 1}); err == nil {
		t.Fatal("missing baseline must fail")
	}
	if _, err := FitScaling("x", []int{1, 2}, []float64{0, 1}); err == nil {
		t.Fatal("zero baseline must fail")
	}
	if _, err := FitScaling("x", []int{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("negative runtime must fail")
	}
	if _, err := FitScaling("x", []int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestRunScalingStudySmoke(t *testing.T) {
	res, err := RunScalingStudy("busy", []int{1, 2}, metrics.QuickConfig(),
		func(workers int) {
			// A trivially parallel-agnostic busy loop; on any host the
			// study must at least produce a valid structure.
			s := 0.0
			for i := 0; i < 100_000; i++ {
				s += float64(i)
			}
			_ = s
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Workers != 1 {
		t.Fatalf("points = %+v", res.Points)
	}
	if _, err := RunScalingStudy("bad", []int{2, 4}, metrics.QuickConfig(),
		func(int) {}); err == nil {
		t.Fatal("missing baseline must fail")
	}
	if _, err := RunScalingStudy("bad", []int{1, 0}, metrics.QuickConfig(),
		func(int) {}); err == nil {
		t.Fatal("invalid count must fail")
	}
}

// Property: the fitted serial fraction is clamped to [0, 1] even on noisy
// or adversarial series.
func TestQuickFitClamped(t *testing.T) {
	f := func(a, b, c uint8) bool {
		workers := []int{1, 2, 4}
		secs := []float64{
			1,
			0.1 + float64(a)/64,
			0.1 + float64(b)/64 + float64(c)/256,
		}
		res, err := FitScaling("q", workers, secs)
		if err != nil {
			return false
		}
		return res.SerialFraction >= 0 && res.SerialFraction <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// gustafsonSeries generates weak-scaling runtimes for serial fraction f:
// per-worker work constant, runtime tp = t1*(f + (1-f)) serialized part
// grows... Exact inverse of the fit: S(p) = p - f*(p-1), eff = S/p,
// tp = t1/eff.
func gustafsonSeries(f float64, workers []int) []float64 {
	out := make([]float64, len(workers))
	for i, w := range workers {
		s := float64(w) - f*float64(w-1)
		out[i] = float64(w) / s
	}
	return out
}

func TestFitWeakScalingRecoversSerialFraction(t *testing.T) {
	workers := []int{1, 2, 4, 8}
	for _, f := range []float64{0, 0.1, 0.4, 1} {
		res, err := FitWeakScaling("w", workers, gustafsonSeries(f, workers))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.SerialFraction-f) > 1e-9 {
			t.Fatalf("f=%v: fitted %v", f, res.SerialFraction)
		}
	}
	// Perfect weak scaling: constant runtime, efficiency 1 everywhere.
	res, _ := FitWeakScaling("ideal", workers, []float64{1, 1, 1, 1})
	for _, p := range res.Points {
		if p.Efficiency != 1 || p.ScaledSpeedup != float64(p.Workers) {
			t.Fatalf("ideal point wrong: %+v", p)
		}
	}
	if !strings.Contains(res.String(), "Gustafson fit") {
		t.Fatal("String incomplete")
	}
}

func TestFitWeakScalingErrors(t *testing.T) {
	if _, err := FitWeakScaling("x", []int{1}, []float64{1}); err == nil {
		t.Fatal("single point must fail")
	}
	if _, err := FitWeakScaling("x", []int{2, 4}, []float64{1, 1}); err == nil {
		t.Fatal("missing baseline must fail")
	}
	if _, err := FitWeakScaling("x", []int{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("negative runtime must fail")
	}
}
