package cluster

import (
	"testing"

	"perfeng/internal/kernels"
)

func TestDistributedStencilMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		for _, sweeps := range []int{0, 1, 5, 12} {
			grid := kernels.HotBoundaryGrid(24)
			want := kernels.StencilRun(grid, sweeps, 1)
			w, err := NewWorld(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DistributedStencil(w, grid, sweeps)
			if err != nil {
				t.Fatalf("p=%d sweeps=%d: %v", p, sweeps, err)
			}
			if d := got.MaxAbsDiff(want); d > 1e-12 {
				t.Fatalf("p=%d sweeps=%d: differs from sequential by %v", p, sweeps, d)
			}
		}
	}
}

func TestDistributedStencilUnevenDecomposition(t *testing.T) {
	// n=10 over p=4: chunk 3,3,3,1 — uneven bands and an idle-free but
	// short last rank.
	grid := kernels.HotBoundaryGrid(10)
	want := kernels.StencilRun(grid, 6, 1)
	w, _ := NewWorld(4, 0)
	got, err := DistributedStencil(w, grid, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Fatalf("uneven decomposition differs by %v", d)
	}
}

func TestDistributedStencilErrors(t *testing.T) {
	grid := kernels.HotBoundaryGrid(4)
	w, _ := NewWorld(8, 0)
	if _, err := DistributedStencil(w, grid, 1); err == nil {
		t.Fatal("more ranks than rows must fail")
	}
	w2, _ := NewWorld(2, 0)
	if _, err := DistributedStencil(w2, grid, -1); err == nil {
		t.Fatal("negative sweeps must fail")
	}
}

func TestHaloExchangeModel(t *testing.T) {
	m := LogGP{L: 1e-6, O: 0.5e-6, G: 1e-9, P: 4}
	c := HaloExchangeModel(m, 100)
	if c <= 0 {
		t.Fatal("halo cost must be positive")
	}
	// Larger grids cost more per sweep.
	if HaloExchangeModel(m, 1000) <= c {
		t.Fatal("halo cost must grow with n")
	}
}

func TestDistributedStencilRankDeathAborts(t *testing.T) {
	// Failure injection: killing a middle rank must abort the whole
	// computation with an error, not deadlock.
	grid := kernels.HotBoundaryGrid(16)
	w, _ := NewWorld(4, 0)
	w.Kill(2)
	if _, err := DistributedStencil(w, grid, 4); err == nil {
		t.Fatal("dead rank must abort the stencil")
	}
}
