package cluster

import (
	"errors"
	"math"
	"time"
)

// LogGP cost model (Alexandrov et al.), the analytical model the
// distributed-modeling lectures teach: a point-to-point message of k bytes
// costs L + 2o + (k-1)G seconds; long messages are bandwidth-dominated
// through G, short ones latency-dominated through L and o.

// LogGP holds the model parameters, all in seconds (G per byte).
type LogGP struct {
	L float64 // network latency
	O float64 // per-message CPU overhead (send or recv side)
	G float64 // gap per byte (1/bandwidth)
	P int     // number of processors
}

// Validate checks the parameters.
func (m LogGP) Validate() error {
	if m.L < 0 || m.O < 0 || m.G < 0 || m.P < 1 {
		return errors.New("cluster: invalid LogGP parameters")
	}
	return nil
}

// PointToPoint returns the modeled one-way time of a k-byte message.
func (m LogGP) PointToPoint(k int) float64 {
	if k < 1 {
		k = 1
	}
	return m.L + 2*m.O + float64(k-1)*m.G
}

// RoundTrip returns the modeled ping-pong time of a k-byte message.
func (m LogGP) RoundTrip(k int) float64 { return 2 * m.PointToPoint(k) }

// BcastTree returns the modeled binomial-tree broadcast time of a k-byte
// payload: ceil(log2 P) sequential rounds of point-to-point messages.
func (m LogGP) BcastTree(k int) float64 {
	if m.P <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(m.P)))
	return rounds * m.PointToPoint(k)
}

// BcastLinear returns the modeled linear broadcast time: the root serializes
// P-1 sends separated by the per-message gap, then the last message flies.
func (m LogGP) BcastLinear(k int) float64 {
	if m.P <= 1 {
		return 0
	}
	return float64(m.P-1)*(m.O+float64(k-1)*m.G) + m.L + m.O
}

// AllreduceTree returns the modeled tree allreduce time (reduce + bcast).
func (m LogGP) AllreduceTree(k int) float64 { return 2 * m.BcastTree(k) }

// AllreduceRing returns the modeled ring allreduce time: 2(P-1) steps, each
// moving k/P bytes.
func (m LogGP) AllreduceRing(k int) float64 {
	if m.P <= 1 {
		return 0
	}
	chunk := k / m.P
	if chunk < 1 {
		chunk = 1
	}
	return 2 * float64(m.P-1) * m.PointToPoint(chunk)
}

// Barrier returns the modeled dissemination-barrier time.
func (m LogGP) Barrier() float64 {
	if m.P <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(m.P)))
	return rounds * m.PointToPoint(1)
}

// CalibrateLogGP measures ping-pong times on the live world between ranks
// 0 and 1 for a small and a large payload and fits L+2o (combined) and G.
// The split between L and o is not observable from ping-pong alone, so o
// is reported as 0 and the combined constant lands in L — adequate for
// collective predictions, and honest about identifiability (a point the
// lectures stress).
func CalibrateLogGP(w *World, reps int) (LogGP, error) {
	if w.Size() < 2 {
		return LogGP{}, errors.New("cluster: calibration needs at least 2 ranks")
	}
	if reps < 1 {
		reps = 10
	}
	const smallN, largeN = 1, 64 * 1024 // elements (8B each)
	var tSmall, tLarge time.Duration
	err := w.Run(func(c *Comm) error {
		if c.Rank() > 1 {
			return nil
		}
		small := make([]float64, smallN)
		large := make([]float64, largeN)
		// Warm-up.
		if err := pingPong(c, small, 1); err != nil {
			return err
		}
		if c.Rank() == 0 {
			start := time.Now()
			if err := pingPong(c, small, reps); err != nil {
				return err
			}
			tSmall = time.Since(start) / time.Duration(reps)
			start = time.Now()
			if err := pingPong(c, large, reps); err != nil {
				return err
			}
			tLarge = time.Since(start) / time.Duration(reps)
		} else {
			if err := pingPong(c, small, reps); err != nil {
				return err
			}
			if err := pingPong(c, large, reps); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return LogGP{}, err
	}
	// Round trip = 2(L + 2o + (k-1)G). Solve the 2x2 system with o := 0.
	sSmall := tSmall.Seconds() / 2
	sLarge := tLarge.Seconds() / 2
	g := (sLarge - sSmall) / float64(8*largeN-8*smallN)
	if g < 0 {
		g = 0
	}
	l := sSmall - float64(8*smallN-1)*g
	if l < 0 {
		l = 0
	}
	return LogGP{L: l, O: 0, G: g, P: w.Size()}, nil
}

// pingPong runs reps ping-pong exchanges between ranks 0 and 1.
func pingPong(c *Comm, buf []float64, reps int) error {
	const tag = 1 << 19
	for i := 0; i < reps; i++ {
		if c.Rank() == 0 {
			if err := c.Send(1, tag, buf); err != nil {
				return err
			}
			if _, err := c.Recv(1, tag); err != nil {
				return err
			}
		} else {
			got, err := c.Recv(0, tag)
			if err != nil {
				return err
			}
			if err := c.Send(0, tag, got); err != nil {
				return err
			}
		}
	}
	return nil
}
