package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Collective operations. Each collective exists in the algorithmic variants
// the scale-out lectures compare (linear vs binomial-tree broadcast,
// tree vs ring allreduce); the ablation benches measure the crossovers.

// Internal tag space for collectives, kept away from user tags.
const (
	tagBarrier = 1 << 20
	tagBcast   = 1<<20 + 1
	tagReduce  = 1<<20 + 2
	tagGather  = 1<<20 + 3
	tagScatter = 1<<20 + 4
	tagRing    = 1<<20 + 5
)

// ReduceOp combines two equal-length vectors elementwise.
type ReduceOp func(dst, src []float64)

// SumOp adds src into dst.
func SumOp(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// MaxOp keeps the elementwise maximum in dst.
func MaxOp(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// Barrier synchronizes all ranks (dissemination barrier: log2(p) rounds).
func (c *Comm) Barrier() error {
	start := time.Now()
	p := c.Size()
	for round := 1; round < p; round <<= 1 {
		dst := (c.rank + round) % p
		src := (c.rank - round + p) % p
		if err := c.Send(dst, tagBarrier+round, nil); err != nil {
			return err
		}
		if _, err := c.Recv(src, tagBarrier+round); err != nil {
			return err
		}
	}
	c.trace(EvBarrier, -1, 0, start)
	return nil
}

// Bcast distributes root's data to all ranks using a binomial tree and
// returns each rank's copy.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: bcast invalid root %d", root)
	}
	start := time.Now()
	p := c.Size()
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + p) % p
	var buf []float64
	if vrank == 0 {
		buf = append([]float64(nil), data...)
	} else {
		// Receive from the parent: clear the lowest set bit.
		parent := (vrank&(vrank-1) + root) % p
		got, err := c.Recv(parent, tagBcast)
		if err != nil {
			return nil, err
		}
		buf = got
	}
	// Forward to children: set bits above the lowest set bit.
	for bit := 1; bit < p; bit <<= 1 {
		if vrank&(bit-1) == 0 && vrank&bit == 0 {
			child := vrank | bit
			if child < p {
				if err := c.Send((child+root)%p, tagBcast, buf); err != nil {
					return nil, err
				}
			}
		}
	}
	c.trace(EvBcast, root, 8*len(buf), start)
	return buf, nil
}

// BcastLinear is the naive root-sends-to-everyone broadcast, kept as the
// ablation baseline for the tree algorithm.
func (c *Comm) BcastLinear(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: bcast invalid root %d", root)
	}
	if c.rank == root {
		for dst := 0; dst < c.Size(); dst++ {
			if dst == root {
				continue
			}
			if err := c.Send(dst, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return append([]float64(nil), data...), nil
	}
	return c.Recv(root, tagBcast)
}

// Reduce combines every rank's data on root with op (binomial tree).
// Non-root ranks return nil.
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: reduce invalid root %d", root)
	}
	start := time.Now()
	p := c.Size()
	vrank := (c.rank - root + p) % p
	acc := append([]float64(nil), data...)
	for bit := 1; bit < p; bit <<= 1 {
		if vrank&bit != 0 {
			// Send accumulated value to the partner and exit.
			parent := vrank &^ bit
			if err := c.Send((parent+root)%p, tagReduce, acc); err != nil {
				return nil, err
			}
			c.trace(EvReduce, root, 8*len(acc), start)
			return nil, nil
		}
		partner := vrank | bit
		if partner < p {
			got, err := c.Recv((partner+root)%p, tagReduce)
			if err != nil {
				return nil, err
			}
			if len(got) != len(acc) {
				return nil, errors.New("cluster: reduce length mismatch")
			}
			op(acc, got)
		}
	}
	c.trace(EvReduce, root, 8*len(acc), start)
	return acc, nil
}

// Allreduce combines every rank's data everywhere (reduce to 0 + bcast).
func (c *Comm) Allreduce(data []float64, op ReduceOp) ([]float64, error) {
	red, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, red)
}

// AllreduceRing is the bandwidth-optimal ring allreduce (reduce-scatter +
// allgather), the algorithm of choice for large payloads; ablation partner
// of the tree version. The payload length must be divisible by the world
// size.
func (c *Comm) AllreduceRing(data []float64, op ReduceOp) ([]float64, error) {
	p := c.Size()
	if p == 1 {
		return append([]float64(nil), data...), nil
	}
	if len(data)%p != 0 {
		return nil, fmt.Errorf("cluster: ring allreduce needs len %% p == 0 (len %d, p %d)", len(data), p)
	}
	chunk := len(data) / p
	buf := append([]float64(nil), data...)
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	seg := func(i int) []float64 {
		i = ((i % p) + p) % p
		return buf[i*chunk : (i+1)*chunk]
	}
	// Reduce-scatter: after p-1 steps, segment (rank+1)%p is fully
	// reduced on this rank.
	for step := 0; step < p-1; step++ {
		sendIdx := c.rank - step
		recvIdx := c.rank - step - 1
		if err := c.Send(next, tagRing+step, seg(sendIdx)); err != nil {
			return nil, err
		}
		got, err := c.Recv(prev, tagRing+step)
		if err != nil {
			return nil, err
		}
		op(seg(recvIdx), got)
	}
	// Allgather: circulate the reduced segments.
	for step := 0; step < p-1; step++ {
		sendIdx := c.rank - step + 1
		recvIdx := c.rank - step
		if err := c.Send(next, tagRing+p+step, seg(sendIdx)); err != nil {
			return nil, err
		}
		got, err := c.Recv(prev, tagRing+p+step)
		if err != nil {
			return nil, err
		}
		copy(seg(recvIdx), got)
	}
	return buf, nil
}

// Gather collects every rank's equal-length data on root (concatenated in
// rank order). Non-root ranks return nil.
func (c *Comm) Gather(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: gather invalid root %d", root)
	}
	if c.rank != root {
		return nil, c.Send(root, tagGather, data)
	}
	out := make([]float64, len(data)*c.Size())
	copy(out[c.rank*len(data):], data)
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		got, err := c.Recv(src, tagGather)
		if err != nil {
			return nil, err
		}
		if len(got) != len(data) {
			return nil, errors.New("cluster: gather length mismatch")
		}
		copy(out[src*len(data):], got)
	}
	return out, nil
}

// Scatter splits root's data into Size equal chunks and returns each
// rank's chunk.
func (c *Comm) Scatter(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: scatter invalid root %d", root)
	}
	p := c.Size()
	if c.rank == root {
		if len(data)%p != 0 {
			return nil, fmt.Errorf("cluster: scatter needs len %% p == 0 (len %d, p %d)", len(data), p)
		}
		chunk := len(data) / p
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			if err := c.Send(dst, tagScatter, data[dst*chunk:(dst+1)*chunk]); err != nil {
				return nil, err
			}
		}
		return append([]float64(nil), data[root*chunk:(root+1)*chunk]...), nil
	}
	return c.Recv(root, tagScatter)
}

// AllreduceScalar is a convenience wrapper for single-value reductions.
func (c *Comm) AllreduceScalar(v float64, op ReduceOp) (float64, error) {
	out, err := c.Allreduce([]float64{v}, op)
	if err != nil {
		return math.NaN(), err
	}
	return out[0], nil
}
