package cluster

import (
	"sync/atomic"
	"time"

	"perfeng/internal/telemetry"
)

// Live-telemetry hooks for the communication tracer. Event recording
// already takes a mutex per event, so the extra counter increments are
// in the noise; the disabled path is one atomic load in record.

type telHandles struct {
	events     *telemetry.CounterFamily
	bytesSent  *telemetry.Counter
	bytesRecv  *telemetry.Counter
	lateSender *telemetry.Gauge
	imbalance  *telemetry.Gauge
}

var tel atomic.Pointer[telHandles]

// EnableTelemetry publishes tracer activity to reg: events by kind,
// bytes moved, and — refreshed on every AnalyzeWaitStates — the
// late-sender total and load-imbalance ratio. Passing nil stops
// publication.
func EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		tel.Store(nil)
		return
	}
	tel.Store(&telHandles{
		events: reg.CounterFamily("perfeng_cluster_events",
			"Traced communication events by kind.", "kind"),
		bytesSent: reg.Counter("perfeng_cluster_bytes_sent",
			"Payload bytes recorded on send events."),
		bytesRecv: reg.Counter("perfeng_cluster_bytes_recv",
			"Payload bytes recorded on recv events."),
		lateSender: reg.Gauge("perfeng_cluster_late_sender_seconds",
			"Late-sender wait time across all ranks, from the last analysis."),
		imbalance: reg.Gauge("perfeng_cluster_imbalance_ratio",
			"Load-imbalance ratio (max-min)/max, from the last analysis."),
	})
}

// publishEvent counts one recorded event; called from record.
func publishEvent(e Event) {
	th := tel.Load()
	if th == nil {
		return
	}
	th.events.With(e.Kind.String()).Inc()
	switch e.Kind {
	case EvSend:
		if e.Bytes > 0 {
			th.bytesSent.Add(uint64(e.Bytes))
		}
	case EvRecv:
		if e.Bytes > 0 {
			th.bytesRecv.Add(uint64(e.Bytes))
		}
	}
}

// publishWaitStates refreshes the analysis gauges; called from
// AnalyzeWaitStates with the freshly computed diagnosis.
func publishWaitStates(ws WaitStates) {
	th := tel.Load()
	if th == nil {
		return
	}
	var late time.Duration
	for _, d := range ws.LateSenderTime {
		late += d
	}
	th.lateSender.Set(late.Seconds())
	th.imbalance.Set(ws.ImbalanceRatio)
}
