package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event tracing in the spirit of VAMPIR/Score-P: every communication call
// records an interval per rank; the analyzer computes Scalasca-style
// wait-state diagnostics (late sender, synchronization share) from the
// merged timeline.

// EventKind labels a traced interval.
type EventKind int

// Event kinds.
const (
	EvSend EventKind = iota
	EvRecv
	EvBarrier
	EvBcast
	EvReduce
	EvCompute
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	return [...]string{"send", "recv", "barrier", "bcast", "reduce", "compute"}[k]
}

// Event is one traced interval on one rank.
type Event struct {
	Kind  EventKind
	Peer  int // peer rank, -1 for collectives
	Bytes int
	Start time.Time
	End   time.Time
}

// Duration returns the interval length.
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Tracer collects per-rank event streams.
type Tracer struct {
	mu       sync.Mutex
	events   [][]Event
	epoch    time.Time
	listener func(rank int, e Event)
}

// NewTracer creates a tracer for size ranks.
func NewTracer(size int) *Tracer {
	return &Tracer{events: make([][]Event, size), epoch: time.Now()}
}

// Size returns the number of ranks the tracer records.
func (t *Tracer) Size() int { return len(t.events) }

// Epoch returns the tracer's creation time (the natural timeline origin
// for exporting the per-rank event streams).
func (t *Tracer) Epoch() time.Time { return t.epoch }

func (t *Tracer) record(rank int, e Event) {
	publishEvent(e)
	t.mu.Lock()
	t.events[rank] = append(t.events[rank], e)
	fn := t.listener
	t.mu.Unlock()
	// Invoked outside the lock so a listener may query the tracer.
	if fn != nil {
		fn(rank, e)
	}
}

// Listen attaches a callback invoked for every recorded event — the
// hook the flight recorder tees cluster traffic through. One listener;
// nil detaches. Safe to call while ranks are recording.
func (t *Tracer) Listen(fn func(rank int, e Event)) {
	t.mu.Lock()
	t.listener = fn
	t.mu.Unlock()
}

// RecordEvent appends an externally constructed event to rank's stream.
// Besides instrumentation layered on top of the runtime, this is the
// deterministic-injection path for testing the trace analyses: callers
// control every timestamp, so wait-state assertions need no real sleeps.
// Out-of-range ranks are ignored.
func (t *Tracer) RecordEvent(rank int, e Event) {
	if rank < 0 || rank >= len(t.events) {
		return
	}
	t.record(rank, e)
}

// RecordCompute lets application code mark a computation phase, so the
// communication share can be computed per rank.
func (t *Tracer) RecordCompute(rank int, start, end time.Time) {
	t.record(rank, Event{Kind: EvCompute, Peer: -1, Start: start, End: end})
}

// Events returns a copy of rank's event stream in chronological order.
func (t *Tracer) Events(rank int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Event(nil), t.events[rank]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// RankProfile summarizes one rank's time breakdown.
type RankProfile struct {
	Rank         int
	SendTime     time.Duration
	RecvTime     time.Duration
	CollTime     time.Duration
	ComputeTime  time.Duration
	BytesSent    int
	MessagesSent int
}

// CommTime returns total communication time.
func (p RankProfile) CommTime() time.Duration {
	return p.SendTime + p.RecvTime + p.CollTime
}

// Profile computes per-rank summaries.
func (t *Tracer) Profile() []RankProfile {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RankProfile, len(t.events))
	for r, evs := range t.events {
		p := RankProfile{Rank: r}
		for _, e := range evs {
			switch e.Kind {
			case EvSend:
				p.SendTime += e.Duration()
				p.BytesSent += e.Bytes
				p.MessagesSent++
			case EvRecv:
				p.RecvTime += e.Duration()
			case EvCompute:
				p.ComputeTime += e.Duration()
			default:
				p.CollTime += e.Duration()
			}
		}
		out[r] = p
	}
	return out
}

// WaitStates is the Scalasca-style diagnosis of the trace.
type WaitStates struct {
	// LateSenderTime is, per rank, the receive time spent blocked before
	// the matching send had even started — the classic late-sender wait
	// state.
	LateSenderTime []time.Duration
	// ImbalanceRatio is (max-min)/max of per-rank communication+compute
	// spans, the load-imbalance indicator.
	ImbalanceRatio float64
}

// AnalyzeWaitStates matches recv events to the chronologically
// corresponding send events between each rank pair and attributes
// late-sender time.
func (t *Tracer) AnalyzeWaitStates() WaitStates {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.events)
	ws := WaitStates{LateSenderTime: make([]time.Duration, n)}

	// Index sends per (src, dst) in chronological order.
	sends := make(map[[2]int][]Event)
	for src, evs := range t.events {
		for _, e := range evs {
			if e.Kind == EvSend {
				sends[[2]int{src, e.Peer}] = append(sends[[2]int{src, e.Peer}], e)
			}
		}
	}
	for k := range sends {
		s := sends[k]
		sort.Slice(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
		sends[k] = s
	}
	used := make(map[[2]int]int)
	late := ws.LateSenderTime
	for dst, evs := range t.events {
		recvs := make([]Event, 0, len(evs))
		for _, e := range evs {
			if e.Kind == EvRecv {
				recvs = append(recvs, e)
			}
		}
		sort.Slice(recvs, func(i, j int) bool { return recvs[i].Start.Before(recvs[j].Start) })
		for _, re := range recvs {
			key := [2]int{re.Peer, dst}
			idx := used[key]
			if idx >= len(sends[key]) {
				continue
			}
			se := sends[key][idx]
			used[key] = idx + 1
			if se.Start.After(re.Start) {
				wait := se.Start.Sub(re.Start)
				if recvDur := re.Duration(); wait > recvDur {
					wait = recvDur
				}
				late[dst] += wait
			}
		}
	}

	// Imbalance over per-rank busy spans.
	var maxSpan, minSpan time.Duration
	first := true
	for _, evs := range t.events {
		var span time.Duration
		for _, e := range evs {
			span += e.Duration()
		}
		if first {
			maxSpan, minSpan = span, span
			first = false
		}
		if span > maxSpan {
			maxSpan = span
		}
		if span < minSpan {
			minSpan = span
		}
	}
	if maxSpan > 0 {
		ws.ImbalanceRatio = float64(maxSpan-minSpan) / float64(maxSpan)
	}
	publishWaitStates(ws)
	return ws
}

// Report renders the profile and wait states.
func (t *Tracer) Report() string {
	var sb strings.Builder
	ws := t.AnalyzeWaitStates()
	sb.WriteString("rank  send        recv        coll        compute     bytes    late-sender\n")
	for _, p := range t.Profile() {
		fmt.Fprintf(&sb, "%4d  %-10s  %-10s  %-10s  %-10s  %-7d  %s\n",
			p.Rank, p.SendTime.Round(time.Microsecond), p.RecvTime.Round(time.Microsecond),
			p.CollTime.Round(time.Microsecond), p.ComputeTime.Round(time.Microsecond),
			p.BytesSent, ws.LateSenderTime[p.Rank].Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "imbalance ratio: %.2f\n", ws.ImbalanceRatio)
	return sb.String()
}
