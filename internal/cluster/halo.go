package cluster

import (
	"errors"
	"fmt"

	"perfeng/internal/kernels"
)

// Halo exchange: the canonical distributed-memory stencil decomposition
// (each rank owns a band of rows and trades boundary rows with its
// neighbours every sweep). This is the pattern the course's
// distributed-modeling lectures analyze with LogGP: per sweep, two
// neighbour messages of one row each, then local compute.

const (
	tagHaloUp   = 1<<21 + 0
	tagHaloDown = 1<<21 + 1
	tagHaloOut  = 1<<21 + 2
)

// DistributedStencil runs sweeps Jacobi sweeps of the 5-point stencil on
// grid, decomposed row-wise over the world, and returns the full final
// grid (identical on rank 0's return; the world's Run result carries any
// error). The result must equal kernels.StencilRun(grid, sweeps, 1).
func DistributedStencil(w *World, grid *kernels.Grid2D, sweeps int) (*kernels.Grid2D, error) {
	n := grid.N
	p := w.Size()
	if p > n {
		return nil, fmt.Errorf("cluster: %d ranks for %d rows", p, n)
	}
	if sweeps < 0 {
		return nil, errors.New("cluster: negative sweep count")
	}
	width := n + 2
	result := kernels.NewGrid2D(n)
	copy(result.Data, grid.Data)

	err := w.Run(func(c *Comm) error {
		rank := c.Rank()
		// Row band [lo, hi) of interior rows (1-based rows lo..hi-1).
		chunk := (n + p - 1) / p
		lo := 1 + rank*chunk
		hi := lo + chunk
		if hi > n+1 {
			hi = n + 1
		}
		if lo >= hi {
			return nil // idle rank (p does not divide n)
		}
		// Local copy: band rows plus one halo row above and below.
		src := make([]float64, (hi-lo+2)*width)
		dst := make([]float64, (hi-lo+2)*width)
		copy(src, grid.Data[(lo-1)*width:(hi+1)*width])
		copy(dst, src)

		rowOf := func(buf []float64, globalRow int) []float64 {
			local := globalRow - (lo - 1)
			return buf[local*width : (local+1)*width]
		}

		for s := 0; s < sweeps; s++ {
			// Exchange halo rows with neighbours. Ranks owning the top
			// band keep the fixed boundary row instead.
			if lo > 1 {
				if err := c.Send(rank-1, tagHaloUp, rowOf(src, lo)); err != nil {
					return err
				}
				got, err := c.Recv(rank-1, tagHaloDown)
				if err != nil {
					return err
				}
				copy(rowOf(src, lo-1), got)
			}
			if hi <= n {
				if err := c.Send(rank+1, tagHaloDown, rowOf(src, hi-1)); err != nil {
					return err
				}
				got, err := c.Recv(rank+1, tagHaloUp)
				if err != nil {
					return err
				}
				copy(rowOf(src, hi), got)
			}
			// Local sweep over the owned band.
			for i := lo; i < hi; i++ {
				up := rowOf(src, i-1)
				mid := rowOf(src, i)
				down := rowOf(src, i+1)
				out := rowOf(dst, i)
				for j := 1; j <= n; j++ {
					out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
				}
			}
			src, dst = dst, src
		}
		// Gather bands on rank 0.
		if rank == 0 {
			copy(result.Data[lo*width:hi*width], src[width:width*(hi-lo+1)])
			for r := 1; r < p; r++ {
				rlo := 1 + r*chunk
				rhi := rlo + chunk
				if rhi > n+1 {
					rhi = n + 1
				}
				if rlo >= rhi {
					continue
				}
				got, err := c.Recv(r, tagHaloOut)
				if err != nil {
					return err
				}
				copy(result.Data[rlo*width:rhi*width], got)
			}
			return nil
		}
		return c.Send(0, tagHaloOut, src[width:width*(hi-lo+1)])
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// HaloExchangeModel returns the LogGP-modeled communication time of one
// sweep: each interior rank exchanges two rows (up+down) of (n+2) doubles;
// exchanges proceed concurrently, so the per-sweep cost is one
// send+recv pair per direction.
func HaloExchangeModel(m LogGP, n int) float64 {
	row := (n + 2) * 8
	return 2 * m.PointToPoint(row)
}
