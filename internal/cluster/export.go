package cluster

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// Trace export in the spirit of Score-P/OTF: the merged event timeline as
// JSON (for programmatic consumers) or CSV (for the spreadsheet-driven
// analysis the course's Lesson 3 automation advice targets). Timestamps
// are microseconds relative to the tracer's epoch, so traces from one run
// are directly comparable across ranks.

// ExportedEvent is the serialization of one traced interval.
type ExportedEvent struct {
	Rank    int     `json:"rank"`
	Kind    string  `json:"kind"`
	Peer    int     `json:"peer"`
	Bytes   int     `json:"bytes"`
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`
}

// Export returns all events of all ranks in global chronological order.
func (t *Tracer) Export() []ExportedEvent {
	t.mu.Lock()
	epoch := t.epoch
	total := 0
	for _, evs := range t.events {
		total += len(evs)
	}
	out := make([]ExportedEvent, 0, total)
	for rank, evs := range t.events {
		for _, e := range evs {
			out = append(out, ExportedEvent{
				Rank:    rank,
				Kind:    e.Kind.String(),
				Peer:    e.Peer,
				Bytes:   e.Bytes,
				StartUs: float64(e.Start.Sub(epoch)) / float64(time.Microsecond),
				EndUs:   float64(e.End.Sub(epoch)) / float64(time.Microsecond),
			})
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUs != out[j].StartUs {
			return out[i].StartUs < out[j].StartUs
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// WriteJSON writes the trace as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Export())
}

// WriteCSV writes the trace as CSV with a header row.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "kind", "peer", "bytes", "start_us", "end_us"}); err != nil {
		return err
	}
	rec := make([]string, 6)
	for _, e := range t.Export() {
		rec[0] = strconv.Itoa(e.Rank)
		rec[1] = e.Kind
		rec[2] = strconv.Itoa(e.Peer)
		rec[3] = strconv.Itoa(e.Bytes)
		rec[4] = strconv.FormatFloat(e.StartUs, 'f', 3, 64)
		rec[5] = strconv.FormatFloat(e.EndUs, 'f', 3, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
