package cluster

import (
	"sync"
	"testing"
	"time"
)

// TestTracerListen: a listener sees every recorded event, may safely
// query the tracer from the callback, and detaches with nil.
func TestTracerListen(t *testing.T) {
	tr := NewTracer(2)
	var mu sync.Mutex
	var got []Event
	tr.Listen(func(rank int, e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
		_ = tr.Events(rank) // must not deadlock
	})
	now := time.Now()
	tr.RecordEvent(0, Event{Kind: EvSend, Peer: 1, Bytes: 8, Start: now, End: now.Add(time.Millisecond)})
	tr.RecordCompute(1, now, now.Add(2*time.Millisecond))
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("listener saw %d events, want 2", n)
	}
	tr.Listen(nil)
	tr.RecordEvent(0, Event{Kind: EvBarrier, Peer: -1, Start: now, End: now})
	mu.Lock()
	n = len(got)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("detached listener still invoked: %d events", n)
	}
}
