// Package cluster implements the scale-out substrate of the course's
// "Scale-out to distributed systems" topic: an in-process message-passing
// runtime (ranks are goroutines, links are channels) with MPI-style
// point-to-point and collective operations, an event tracer in the spirit
// of VAMPIR/Score-P, Scalasca-style late-sender wait-state analysis, and a
// LogGP cost model calibrated from ping-pong measurements.
//
// The runtime substitutes for the DAS-5 cluster + MPI stack the course
// uses: it exercises the same algorithmic structure (collective
// algorithms, synchronization, load imbalance) deterministically on one
// machine.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrAborted is returned by communication calls after any rank aborts.
var ErrAborted = errors.New("cluster: world aborted")

// ErrDeadRank is returned when communicating with a killed rank.
var ErrDeadRank = errors.New("cluster: peer rank is dead")

type message struct {
	src, tag int
	data     []float64
}

// World is a set of ranks with all-to-all mailboxes.
type World struct {
	size int
	// mail[dst][src] is the channel from src to dst.
	mail [][]chan message
	done chan struct{}

	mu       sync.Mutex
	abortErr error
	dead     []bool

	tracer *Tracer
}

// NewWorld creates a world of size ranks. Channels are buffered (eager
// sends) with the given per-link capacity (default 64 when <= 0).
func NewWorld(size, linkCap int) (*World, error) {
	if size < 1 {
		return nil, errors.New("cluster: world needs at least one rank")
	}
	if linkCap <= 0 {
		linkCap = 64
	}
	w := &World{
		size: size,
		done: make(chan struct{}),
		dead: make([]bool, size),
	}
	w.mail = make([][]chan message, size)
	mail := w.mail
	for dst := range mail {
		row := make([]chan message, size)
		for src := range row {
			row[src] = make(chan message, linkCap)
		}
		mail[dst] = row
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// EnableTracing attaches a tracer; must be called before Run.
func (w *World) EnableTracing() *Tracer {
	w.tracer = NewTracer(w.size)
	return w.tracer
}

// abort records the first abort error and releases all blocked ranks.
func (w *World) abort(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.abortErr == nil {
		w.abortErr = err
		close(w.done)
	}
}

// AbortError returns the error that aborted the world, if any.
func (w *World) AbortError() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.abortErr
}

// Kill marks a rank dead (failure injection): subsequent sends to or
// receives from it fail with ErrDeadRank.
func (w *World) Kill(rank int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rank >= 0 && rank < w.size {
		w.dead[rank] = true
	}
}

func (w *World) isDead(rank int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead[rank]
}

// Run executes f on every rank concurrently and waits for completion.
// The first error any rank returns aborts the world and is returned.
func (w *World) Run(f func(c *Comm) error) error {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					w.abort(fmt.Errorf("cluster: rank %d panicked: %v", rank, p))
				}
			}()
			if err := f(&Comm{world: w, rank: rank}); err != nil {
				w.abort(fmt.Errorf("cluster: rank %d: %w", rank, err))
			}
		}(r)
	}
	wg.Wait()
	return w.AbortError()
}

// Comm is one rank's communicator.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

func (c *Comm) trace(kind EventKind, peer, bytes int, start time.Time) {
	if c.world.tracer != nil {
		c.world.tracer.record(c.rank, Event{
			Kind: kind, Peer: peer, Bytes: bytes,
			Start: start, End: time.Now(),
		})
	}
}

// Send delivers data to dst with the given tag. The payload is copied, so
// the caller may reuse its buffer.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= c.world.size {
		return fmt.Errorf("cluster: send to invalid rank %d", dst)
	}
	if c.world.isDead(dst) {
		return fmt.Errorf("cluster: send to rank %d: %w", dst, ErrDeadRank)
	}
	start := time.Now()
	msg := message{src: c.rank, tag: tag, data: append([]float64(nil), data...)}
	select {
	case c.world.mail[dst][c.rank] <- msg:
		c.trace(EvSend, dst, 8*len(data), start)
		return nil
	case <-c.world.done:
		return ErrAborted
	}
}

// Recv blocks until a message with the tag arrives from src.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	if src < 0 || src >= c.world.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d", src)
	}
	if c.world.isDead(src) {
		return nil, fmt.Errorf("cluster: recv from rank %d: %w", src, ErrDeadRank)
	}
	start := time.Now()
	ch := c.world.mail[c.rank][src]
	for {
		select {
		case msg := <-ch:
			if msg.tag != tag {
				// Out-of-order tag: requeue and retry. With the
				// toolbox's structured collectives this is rare; a
				// bounded requeue avoids livelock on misuse.
				select {
				case ch <- msg:
				case <-c.world.done:
					return nil, ErrAborted
				}
				continue
			}
			c.trace(EvRecv, src, 8*len(msg.data), start)
			return msg.data, nil
		case <-c.world.done:
			return nil, ErrAborted
		}
	}
}

// SendRecv performs a simultaneous exchange with peer (deadlock-free even
// with unbuffered semantics because sends here are eager).
func (c *Comm) SendRecv(peer, tag int, data []float64) ([]float64, error) {
	if err := c.Send(peer, tag, data); err != nil {
		return nil, err
	}
	return c.Recv(peer, tag)
}
