package cluster

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, 0); err == nil {
		t.Fatal("empty world must fail")
	}
	w, err := NewWorld(3, 0)
	if err != nil || w.Size() != 3 {
		t.Fatalf("world = %v, %v", w, err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	w, _ := NewWorld(2, 0)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1, 2, 3})
		}
		got, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[2] != 3 {
			return fmt.Errorf("payload = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w, _ := NewWorld(2, 0)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 0 // must not corrupt the in-flight message
			return nil
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			return fmt.Errorf("payload corrupted: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagFiltering(t *testing.T) {
	w, _ := NewWorld(2, 0)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{1}); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{2})
		}
		// Receive tag 2 first even though tag 1 arrived first.
		got2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		got1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if got2[0] != 2 || got1[0] != 1 {
			return fmt.Errorf("tag filtering broken: %v %v", got1, got2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRankErrors(t *testing.T) {
	w, _ := NewWorld(2, 0)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(9, 0, nil); err == nil {
				return errors.New("send to invalid rank must fail")
			}
			if _, err := c.Recv(-1, 0); err == nil {
				return errors.New("recv from invalid rank must fail")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorAbortsWorld(t *testing.T) {
	w, _ := NewWorld(4, 0)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		// Everyone else blocks on a message that never comes; the abort
		// must release them.
		_, err := c.Recv((c.Rank()+1)%4, 99)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicIsCaptured(t *testing.T) {
	w, _ := NewWorld(2, 0)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		_, err := c.Recv(1, 0)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestKillFailureInjection(t *testing.T) {
	w, _ := NewWorld(3, 0)
	w.Kill(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(2, 0, nil); !errors.Is(err, ErrDeadRank) {
				return fmt.Errorf("send to dead rank: %v", err)
			}
			if _, err := c.Recv(2, 0); !errors.Is(err, ErrDeadRank) {
				return fmt.Errorf("recv from dead rank: %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		w, _ := NewWorld(p, 0)
		var after time.Time
		var mu = make(chan struct{}, p)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				time.Sleep(20 * time.Millisecond)
				after = time.Now()
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			// All ranks pass the barrier only after rank 0's sleep.
			if c.Rank() != 0 && time.Now().Before(after) {
				return errors.New("barrier leaked")
			}
			mu <- struct{}{}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(mu) != p {
			t.Fatalf("p=%d: %d ranks finished", p, len(mu))
		}
	}
}

func TestBcastVariants(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		for root := 0; root < p; root++ {
			w, _ := NewWorld(p, 0)
			err := w.Run(func(c *Comm) error {
				var data []float64
				if c.Rank() == root {
					data = []float64{3.14, float64(root)}
				}
				got, err := c.Bcast(root, data)
				if err != nil {
					return err
				}
				if got[0] != 3.14 || got[1] != float64(root) {
					return fmt.Errorf("bcast payload = %v", got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("tree p=%d root=%d: %v", p, root, err)
			}
			w2, _ := NewWorld(p, 0)
			err = w2.Run(func(c *Comm) error {
				var data []float64
				if c.Rank() == root {
					data = []float64{2.71}
				}
				got, err := c.BcastLinear(root, data)
				if err != nil {
					return err
				}
				if got[0] != 2.71 {
					return fmt.Errorf("linear bcast payload = %v", got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("linear p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		w, _ := NewWorld(p, 0)
		err := w.Run(func(c *Comm) error {
			data := []float64{float64(c.Rank() + 1), 1}
			got, err := c.Reduce(0, data, SumOp)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				wantSum := float64(p*(p+1)) / 2
				if got[0] != wantSum || got[1] != float64(p) {
					return fmt.Errorf("reduce = %v, want [%v %v]", got, wantSum, p)
				}
			} else if got != nil {
				return errors.New("non-root should get nil")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceTreeAndRing(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		w, _ := NewWorld(p, 0)
		err := w.Run(func(c *Comm) error {
			data := make([]float64, 2*p) // divisible by p for the ring
			for i := range data {
				data[i] = float64(c.Rank())
			}
			wantEach := float64(p*(p-1)) / 2
			tree, err := c.Allreduce(data, SumOp)
			if err != nil {
				return err
			}
			ring, err := c.AllreduceRing(data, SumOp)
			if err != nil {
				return err
			}
			for i := range tree {
				if tree[i] != wantEach || math.Abs(ring[i]-wantEach) > 1e-12 {
					return fmt.Errorf("allreduce tree %v ring %v want %v", tree[i], ring[i], wantEach)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceRingRejectsBadLength(t *testing.T) {
	w, _ := NewWorld(3, 0)
	err := w.Run(func(c *Comm) error {
		_, err := c.AllreduceRing(make([]float64, 4), SumOp) // 4 % 3 != 0
		if err == nil {
			return errors.New("expected length error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	p := 4
	w, _ := NewWorld(p, 0)
	err := w.Run(func(c *Comm) error {
		// Scatter 0..7 from root 0, two elements per rank.
		var data []float64
		if c.Rank() == 0 {
			data = []float64{0, 1, 2, 3, 4, 5, 6, 7}
		}
		chunk, err := c.Scatter(0, data)
		if err != nil {
			return err
		}
		if chunk[0] != float64(2*c.Rank()) {
			return fmt.Errorf("scatter chunk = %v", chunk)
		}
		// Gather them back.
		all, err := c.Gather(0, chunk)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < 8; i++ {
				if all[i] != float64(i) {
					return fmt.Errorf("gather = %v", all)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceScalarAndSendRecv(t *testing.T) {
	w, _ := NewWorld(3, 0)
	err := w.Run(func(c *Comm) error {
		v, err := c.AllreduceScalar(1, SumOp)
		if err != nil {
			return err
		}
		if v != 3 {
			return fmt.Errorf("scalar allreduce = %v", v)
		}
		if c.Size() >= 2 && c.Rank() < 2 {
			peer := 1 - c.Rank()
			got, err := c.SendRecv(peer, 5, []float64{float64(c.Rank())})
			if err != nil {
				return err
			}
			if got[0] != float64(peer) {
				return fmt.Errorf("sendrecv = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxOp(t *testing.T) {
	dst := []float64{1, 5}
	MaxOp(dst, []float64{3, 2})
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("MaxOp = %v", dst)
	}
}

func TestTracingAndWaitStates(t *testing.T) {
	w, _ := NewWorld(2, 0)
	tr := w.EnableTracing()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Late sender: rank 1 waits ~20ms for this message.
			time.Sleep(20 * time.Millisecond)
			return c.Send(1, 0, []float64{1})
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Structural assertions only: magnitudes depend on goroutine
	// scheduling, so exact wait-state arithmetic is covered by the
	// deterministic injected-timestamp test below.
	ws := tr.AnalyzeWaitStates()
	if ws.LateSenderTime[1] <= 0 {
		t.Fatalf("late-sender time = %v, want > 0", ws.LateSenderTime[1])
	}
	if ws.LateSenderTime[0] != 0 {
		t.Fatalf("rank 0 should have no late-sender time")
	}
	prof := tr.Profile()
	if prof[0].MessagesSent != 1 || prof[0].BytesSent != 8 {
		t.Fatalf("profile = %+v", prof[0])
	}
	if prof[1].RecvTime <= 0 {
		t.Fatalf("recv time = %v, want > 0", prof[1].RecvTime)
	}
	if prof[1].RecvTime < ws.LateSenderTime[1] {
		t.Fatalf("late-sender wait %v exceeds recv time %v",
			ws.LateSenderTime[1], prof[1].RecvTime)
	}
	rep := tr.Report()
	if !strings.Contains(rep, "late-sender") || !strings.Contains(rep, "imbalance") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
	if len(tr.Events(1)) == 0 {
		t.Fatal("rank 1 events missing")
	}
}

func TestAnalyzeWaitStatesInjected(t *testing.T) {
	// Deterministic wait-state arithmetic via injected timestamps: no
	// goroutines, no sleeps, exact expected values.
	at := func(ms int) time.Time {
		return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond)
	}
	tr := NewTracer(2)
	// Rank 1 posts its receive at t=0; rank 0's matching send starts at
	// t=20ms. Late-sender wait = 20ms exactly.
	tr.RecordEvent(1, Event{Kind: EvRecv, Peer: 0, Start: at(0), End: at(25)})
	tr.RecordEvent(0, Event{Kind: EvSend, Peer: 1, Bytes: 8, Start: at(20), End: at(21)})
	// Second exchange: the send starts first, so no wait is attributed.
	tr.RecordEvent(0, Event{Kind: EvSend, Peer: 1, Bytes: 8, Start: at(30), End: at(31)})
	tr.RecordEvent(1, Event{Kind: EvRecv, Peer: 0, Start: at(32), End: at(33)})

	ws := tr.AnalyzeWaitStates()
	if ws.LateSenderTime[1] != 20*time.Millisecond {
		t.Fatalf("late-sender time = %v, want exactly 20ms", ws.LateSenderTime[1])
	}
	if ws.LateSenderTime[0] != 0 {
		t.Fatalf("rank 0 late-sender time = %v, want 0", ws.LateSenderTime[0])
	}
	// Busy spans: rank 0 = 2ms of sends, rank 1 = 26ms of recvs.
	if want := float64(26-2) / 26; ws.ImbalanceRatio != want {
		t.Fatalf("imbalance ratio = %v, want %v", ws.ImbalanceRatio, want)
	}

	prof := tr.Profile()
	if prof[0].MessagesSent != 2 || prof[0].BytesSent != 16 {
		t.Fatalf("rank 0 profile = %+v", prof[0])
	}
	if prof[1].RecvTime != 26*time.Millisecond {
		t.Fatalf("rank 1 recv time = %v, want 26ms", prof[1].RecvTime)
	}
}

func TestAnalyzeWaitStatesClampsToRecvDuration(t *testing.T) {
	// A send that starts after the receive has already completed cannot
	// attribute more wait than the receive interval itself.
	at := func(ms int) time.Time {
		return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond)
	}
	tr := NewTracer(2)
	tr.RecordEvent(1, Event{Kind: EvRecv, Peer: 0, Start: at(0), End: at(5)})
	tr.RecordEvent(0, Event{Kind: EvSend, Peer: 1, Start: at(50), End: at(51)})
	ws := tr.AnalyzeWaitStates()
	if ws.LateSenderTime[1] != 5*time.Millisecond {
		t.Fatalf("late-sender time = %v, want clamped to 5ms recv duration",
			ws.LateSenderTime[1])
	}
}

func TestRecordEventIgnoresOutOfRangeRank(t *testing.T) {
	tr := NewTracer(1)
	tr.RecordEvent(-1, Event{Kind: EvSend})
	tr.RecordEvent(5, Event{Kind: EvSend})
	if len(tr.Events(0)) != 0 {
		t.Fatal("out-of-range RecordEvent must not land anywhere")
	}
}

func TestRecordCompute(t *testing.T) {
	tr := NewTracer(1)
	start := time.Now()
	tr.RecordCompute(0, start, start.Add(5*time.Millisecond))
	p := tr.Profile()
	if p[0].ComputeTime != 5*time.Millisecond {
		t.Fatalf("compute time = %v", p[0].ComputeTime)
	}
}

func TestLogGPModel(t *testing.T) {
	m := LogGP{L: 1e-6, O: 0.5e-6, G: 1e-9, P: 8}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// PtToPt(1) = L + 2o.
	if got := m.PointToPoint(1); math.Abs(got-2e-6) > 1e-12 {
		t.Fatalf("PointToPoint(1) = %v", got)
	}
	// Monotone in size.
	if m.PointToPoint(1000) <= m.PointToPoint(1) {
		t.Fatal("model not monotone in bytes")
	}
	if m.RoundTrip(1) != 2*m.PointToPoint(1) {
		t.Fatal("roundtrip wrong")
	}
	// Tree bcast beats linear for large payloads (root serialization
	// dominates: (P-1)kG vs log2(P)kG)...
	if m.BcastTree(1<<20) >= m.BcastLinear(1<<20) {
		t.Fatalf("tree %v should beat linear %v for 1MB at p=8",
			m.BcastTree(1<<20), m.BcastLinear(1<<20))
	}
	// ...and for many ranks even with small payloads ((P-1)o vs log2(P)L).
	wide := LogGP{L: 1e-6, O: 0.5e-6, G: 1e-9, P: 64}
	if wide.BcastTree(8) >= wide.BcastLinear(8) {
		t.Fatalf("tree %v should beat linear %v at p=64",
			wide.BcastTree(8), wide.BcastLinear(8))
	}
	// Ring allreduce beats tree for large payloads.
	big := 1 << 20
	if m.AllreduceRing(big) >= m.AllreduceTree(big) {
		t.Fatalf("ring %v should beat tree %v for 1MB", m.AllreduceRing(big), m.AllreduceTree(big))
	}
	// Degenerate world sizes.
	one := LogGP{L: 1e-6, O: 0, G: 1e-9, P: 1}
	if one.BcastTree(8) != 0 || one.Barrier() != 0 || one.AllreduceRing(8) != 0 {
		t.Fatal("p=1 collectives should be free")
	}
	bad := LogGP{L: -1, P: 2}
	if bad.Validate() == nil {
		t.Fatal("negative L must fail validation")
	}
}

func TestCalibrateLogGP(t *testing.T) {
	w, _ := NewWorld(4, 0)
	m, err := CalibrateLogGP(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 4 {
		t.Fatalf("P = %d", m.P)
	}
	if m.L < 0 || m.G < 0 {
		t.Fatalf("calibrated params negative: %+v", m)
	}
	// An in-process channel hop costs well under a millisecond.
	if m.PointToPoint(1) > 1e-3 {
		t.Fatalf("implausible latency %v", m.PointToPoint(1))
	}
	w1, _ := NewWorld(1, 0)
	if _, err := CalibrateLogGP(w1, 5); err == nil {
		t.Fatal("calibration on 1 rank must fail")
	}
}

// Property: allreduce(sum) equals p * mean over any payload, for both
// algorithms and several world sizes.
func TestQuickAllreduceAgreement(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw%5) + 1
		w, err := NewWorld(p, 0)
		if err != nil {
			return false
		}
		ok := true
		err = w.Run(func(c *Comm) error {
			data := make([]float64, p) // divisible by p
			for i := range data {
				data[i] = float64((seed+int64(c.Rank())*31+int64(i))%100) / 10
			}
			tree, err := c.Allreduce(data, SumOp)
			if err != nil {
				return err
			}
			ring, err := c.AllreduceRing(data, SumOp)
			if err != nil {
				return err
			}
			for i := range tree {
				if math.Abs(tree[i]-ring[i]) > 1e-9 {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceExport(t *testing.T) {
	w, _ := NewWorld(2, 0)
	tr := w.EnableTracing()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []float64{1, 2})
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Export()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Chronological order with non-negative relative timestamps.
	for i, e := range events {
		if e.StartUs < 0 || e.EndUs < e.StartUs {
			t.Fatalf("event %d has bad interval: %+v", i, e)
		}
		if i > 0 && e.StartUs < events[i-1].StartUs {
			t.Fatal("events not sorted")
		}
	}
	var js bytes.Buffer
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var parsed []ExportedEvent
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || parsed[0].Bytes != 16 {
		t.Fatalf("json round trip = %+v", parsed)
	}
	var cs bytes.Buffer
	if err := tr.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cs).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "rank" {
		t.Fatalf("csv rows = %v", rows)
	}
}
