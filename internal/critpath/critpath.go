// Package critpath is the toolbox's causal trace analyzer: it rebuilds
// a dependency DAG from an obs.Session — span nesting within tracks
// plus the cross-track causal edges the producers record (scheduler
// fork/join and steal provenance, cluster send→recv matches and
// collective episodes, GPU launch→block fan-out) — and answers the
// questions a timeline view cannot: which chain of work actually bound
// the end-to-end time (the critical path), where the non-critical time
// went (slack), which wait states inflated the path (late senders,
// steals, queueing, join imbalance), and what the run would plausibly
// have cost had one span been faster (COZ-style what-if virtual
// speedups, estimated by replaying the DAG with scaled durations).
//
// The analysis is offline and read-only: it snapshots the session via
// the copying accessors, so it is safe to run against a live session
// while producers are still appending, against a flight-recorder dump,
// or against a re-imported Chrome trace (obs.ReadChromeTrace). Flight
// dumps carry less provenance (no per-span args beyond the region id),
// so some edge classes degrade gracefully — the path is still exact,
// the attribution just coarser.
package critpath

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"perfeng/internal/obs"
)

// Category classifies where critical-path time went.
type Category int

// Categories, ordered roughly from "doing work" to "doing nothing".
const (
	// CatCompute is productive work: the span was executing.
	CatCompute Category = iota
	// CatCommWait is time a receive blocked before the matching send
	// completed — the late-sender wait state.
	CatCommWait
	// CatCollWait is time inside a collective before the last member
	// arrived — synchronization imbalance.
	CatCollWait
	// CatStealWait is the fork→start latency of a range the executing
	// worker had to steal from another deque.
	CatStealWait
	// CatQueueWait is the fork→start latency of a range executed from
	// the deque it was seeded on (or a GPU block waiting for an SM).
	CatQueueWait
	// CatJoinWait is a submitter blocked in a fork/join region or a
	// kernel launch while its children finish.
	CatJoinWait
	// CatIdle is a gap on the path with no recorded cause.
	CatIdle
	numCategories
)

var categoryNames = [...]string{
	"compute", "comm-wait", "collective-wait", "steal-wait",
	"queue-wait", "join-wait", "idle",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return "unknown"
	}
	return categoryNames[c]
}

// IsWait reports whether the category is a wait state (anything that
// is not productive work).
func (c Category) IsWait() bool { return c != CatCompute }

// EdgeKind labels a dependency edge.
type EdgeKind int

// Edge kinds.
const (
	// EdgeSeq orders consecutive segments on one track (a track is a
	// serial resource: a worker, a rank, an SM).
	EdgeSeq EdgeKind = iota
	// EdgeFork runs from a submitter's segment to a child it spawned
	// (scheduler range, GPU launch, GPU block).
	EdgeFork
	// EdgeJoin runs from a child back to the submitter's resume point.
	EdgeJoin
	// EdgeComm runs from a matched send to the receive it released.
	EdgeComm
	// EdgeColl runs between members of one collective episode.
	EdgeColl
)

var edgeKindNames = [...]string{"seq", "fork", "join", "comm", "coll"}

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	if k < 0 || int(k) >= len(edgeKindNames) {
		return "unknown"
	}
	return edgeKindNames[k]
}

// Node is one segment of one track: a maximal interval during which the
// same innermost span was active and no causal boundary (fork point,
// matched-send completion, collective last-arrival) cuts through.
type Node struct {
	ID    int
	Track int    // session track id
	Name  string // innermost owning span's leaf name
	Start time.Duration
	End   time.Duration
	// Elastic marks segments whose duration is derived, not intrinsic:
	// a submitter blocked on a join, a receive blocked on a send, a
	// collective member waiting for the stragglers. Replay gives them
	// zero duration — their finish is whatever their dependencies make
	// it.
	Elastic bool
	// Cat is the category charged when this node's own interval lands
	// on the critical path: CatCompute for work, the wait categories
	// for elastic segments.
	Cat Category
}

// Dur returns the segment length.
func (n Node) Dur() time.Duration { return n.End - n.Start }

// Edge is one dependency: To cannot start before From has finished.
type Edge struct {
	From, To int
	Kind     EdgeKind
	// Stolen marks fork edges of ranges the executor stole; the
	// fork→start gap is then steal latency rather than queueing.
	Stolen bool
}

// Graph is the rebuilt dependency DAG.
type Graph struct {
	Nodes      []Node
	Edges      []Edge
	TrackNames []string
	// MinStart and Makespan bound the recorded activity; the critical
	// path tiles [PathStart, Makespan] exactly.
	MinStart time.Duration
	Makespan time.Duration

	preds [][]int // edge indices per node
	succs [][]int
	// byTrack[t] lists node ids on track t in start order.
	byTrack [][]int
}

// Step is one tile of the critical path: either a node's interval or a
// gap bound by the edge that released the successor.
type Step struct {
	// NodeID is the node whose interval this step covers, or -1 for a
	// gap between nodes.
	NodeID int
	Track  int
	Name   string // node name, or the binding edge kind for gaps
	From   time.Duration
	To     time.Duration
	Cat    Category
}

// Dur returns the step length.
func (s Step) Dur() time.Duration { return s.To - s.From }

// Report is the full analysis result.
type Report struct {
	Session    string
	TrackNames []string
	Graph      *Graph

	// PathStart..Makespan is the window the critical path tiles; the
	// step durations sum to Wall exactly.
	PathStart time.Duration
	Makespan  time.Duration
	Wall      time.Duration
	Steps     []Step

	// ByCategory is the wall time attributed to each category.
	ByCategory [numCategories]time.Duration
	// WaitTotals aggregates wait states across the whole graph, on and
	// off the critical path: elastic segment durations by category,
	// plus fork→start gaps charged to steal/queue latency. The
	// critical path shows the chain that bound the run; these totals
	// show the inflation everywhere (a late sender shadowed by the
	// sender's own compute still shows up here).
	WaitTotals [numCategories]time.Duration
	// BySpan aggregates the path's work steps per span name.
	BySpan []SpanShare
	// GCPause estimates how much of the path's compute time was GC
	// stop-the-world pause, interpolated from the cumulative pause
	// counter series when one was sampled (zero otherwise).
	GCPause time.Duration

	// WhatIf holds virtual-speedup predictions for the top path
	// contributors.
	WhatIf []WhatIf
	// ReplayWall is the baseline replay makespan the what-if estimates
	// are measured against (the DAG with unscaled durations; gaps the
	// model does not explain collapse, so it is ≤ Wall).
	ReplayWall time.Duration
}

// SpanShare is one span name's contribution to the critical path.
type SpanShare struct {
	Name      string
	Subsystem string // host, sched, cluster, gpu
	// PathTime is this name's work time on the critical path; Share is
	// its fraction of Wall.
	PathTime time.Duration
	Share    float64
	// TotalTime sums the name's work across the whole graph (on and
	// off the path) — the denominator optimizers care about.
	TotalTime time.Duration
	// MinSlack is the smallest slack of any node with this name: zero
	// means at least one instance is on a critical chain.
	MinSlack time.Duration
}

// WhatIf is the predicted whole-run effect of speeding up one span name.
type WhatIf struct {
	Name      string
	Subsystem string
	Share     float64 // critical-path share of the target
	// Factors and Speedups pair up: scaling every Name node's duration
	// by Factors[i] predicts an end-to-end speedup of Speedups[i]
	// percent (relative to the baseline replay).
	Factors  []float64
	Speedups []float64
}

// Options tunes the analysis.
type Options struct {
	// TopSpans bounds the BySpan table and the what-if target list
	// (default 8).
	TopSpans int
	// WhatIfFactors are the duration scales to simulate
	// (default 0.95, 0.75, 0.50).
	WhatIfFactors []float64
}

func (o Options) withDefaults() Options {
	if o.TopSpans <= 0 {
		o.TopSpans = 8
	}
	if len(o.WhatIfFactors) == 0 {
		o.WhatIfFactors = []float64{0.95, 0.75, 0.50}
	}
	return o
}

// Analyze snapshots the session, rebuilds the dependency DAG, walks the
// critical path and computes the attribution and what-if tables. It
// returns an error for malformed inputs: a cyclic graph (possible only
// for imported traces with inconsistent timestamps) or a walk that
// fails to tile the analysis window — both mean the trace, not the
// caller, is broken.
func Analyze(s *obs.Session, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	g, err := BuildGraph(s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Session:    s.Name(),
		TrackNames: g.TrackNames,
		Graph:      g,
		Makespan:   g.Makespan,
	}
	if len(g.Nodes) == 0 {
		return rep, nil
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	if err := g.walk(rep); err != nil {
		return nil, err
	}
	attribute(rep, g, opts)
	estimateGC(rep, s)
	whatIf(rep, g, order, opts)
	return rep, nil
}

// subsystem classifies a track by its naming convention.
func subsystem(trackName string) string {
	switch {
	case strings.HasPrefix(trackName, "rank "):
		return "cluster"
	case strings.HasPrefix(trackName, "sched "):
		return "sched"
	case strings.HasPrefix(trackName, "gpu"):
		return "gpu"
	default:
		return "host"
	}
}

// topoOrder Kahn-sorts the nodes, rejecting cycles. Construction only
// emits time-forward edges, so a cycle means the input trace was
// inconsistent enough that no analysis of it should be trusted.
func (g *Graph) topoOrder() ([]int, error) {
	indeg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, len(g.Nodes))
	for id := range g.Nodes {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(g.Nodes))
	edges := g.Edges
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ei := range g.succs[id] {
			to := edges[ei].To
			if indeg[to]--; indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("critpath: dependency graph has a cycle (%d of %d nodes unsortable) — inconsistent trace timestamps",
			len(g.Nodes)-len(order), len(g.Nodes))
	}
	return order, nil
}

// attribute fills the per-category and per-span tables from the steps.
func attribute(rep *Report, g *Graph, opts Options) {
	for _, st := range rep.Steps {
		rep.ByCategory[st.Cat] += st.Dur()
	}
	for _, n := range g.Nodes {
		if n.Elastic {
			rep.WaitTotals[n.Cat] += n.Dur()
		}
	}
	for _, e := range g.Edges {
		if e.Kind != EdgeFork {
			continue
		}
		if gap := g.Nodes[e.To].Start - g.Nodes[e.From].End; gap > 0 {
			rep.WaitTotals[gapCategory(e)] += gap
		}
	}

	type agg struct {
		path, total time.Duration
		minSlack    time.Duration
		track       int
	}
	perName := map[string]*agg{}
	for _, st := range rep.Steps {
		if st.NodeID < 0 || st.Cat != CatCompute {
			continue
		}
		a := perName[st.Name]
		if a == nil {
			a = &agg{minSlack: -1, track: st.Track}
			perName[st.Name] = a
		}
		a.path += st.Dur()
	}
	slack := g.slack()
	for id, n := range g.Nodes {
		if n.Elastic {
			continue
		}
		a := perName[n.Name]
		if a == nil {
			continue // off-path names are not reported
		}
		a.total += n.Dur()
		if a.minSlack < 0 || slack[id] < a.minSlack {
			a.minSlack = slack[id]
		}
	}
	for name, a := range perName {
		share := 0.0
		if rep.Wall > 0 {
			share = float64(a.path) / float64(rep.Wall)
		}
		if a.minSlack < 0 {
			a.minSlack = 0
		}
		rep.BySpan = append(rep.BySpan, SpanShare{
			Name:      name,
			Subsystem: subsystem(g.TrackNames[a.track]),
			PathTime:  a.path,
			Share:     share,
			TotalTime: a.total,
			MinSlack:  a.minSlack,
		})
	}
	sort.Slice(rep.BySpan, func(i, j int) bool {
		if rep.BySpan[i].PathTime != rep.BySpan[j].PathTime {
			return rep.BySpan[i].PathTime > rep.BySpan[j].PathTime
		}
		return rep.BySpan[i].Name < rep.BySpan[j].Name
	})
	if len(rep.BySpan) > opts.TopSpans {
		rep.BySpan = rep.BySpan[:opts.TopSpans]
	}
}

// estimateGC interpolates the cumulative GC pause series over the
// path's compute steps. The series is cumulative seconds, so the pause
// charged to a window [a,b] is C(b)-C(a) under linear interpolation
// between samples — an estimate, but one that correctly refuses to
// charge GC to windows where the counter did not move.
func estimateGC(rep *Report, s *obs.Session) {
	var series []obs.Sample
	for name, smp := range s.Counters() {
		if strings.HasSuffix(name, "go_gc_pause_total_seconds") && len(smp) >= 2 {
			series = smp
			break
		}
	}
	if series == nil {
		return
	}
	sort.Slice(series, func(i, j int) bool { return series[i].At < series[j].At })
	at := func(t time.Duration) float64 {
		if t <= series[0].At {
			return series[0].Value
		}
		last := series[len(series)-1]
		if t >= last.At {
			return last.Value
		}
		i := sort.Search(len(series), func(i int) bool { return series[i].At >= t })
		lo, hi := series[i-1], series[i]
		frac := float64(t-lo.At) / float64(hi.At-lo.At)
		return lo.Value + frac*(hi.Value-lo.Value)
	}
	var secs float64
	for _, st := range rep.Steps {
		if st.Cat == CatCompute {
			secs += at(st.To) - at(st.From)
		}
	}
	if secs > 0 {
		rep.GCPause = time.Duration(secs * float64(time.Second))
	}
}
