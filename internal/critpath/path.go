package critpath

import (
	"fmt"
	"time"
)

// The critical path is recovered backward from the latest-ending node:
// each iteration covers the current node's interval, then hands off to
// the binding predecessor — the dependency that finished last, i.e. the
// one that actually released this node. A gap between the binding
// predecessor's finish and the current node's start is charged to the
// edge that bridged it (a stolen fork's gap is steal latency, a comm
// edge's gap is network wait, a sequence edge's gap is plain idleness).
// The walk maintains one invariant the rest of the report leans on: the
// emitted steps tile [PathStart, Makespan] exactly, so the step
// durations sum to the reported wall time to the nanosecond.

// gapCategory classifies the gap bridged by an edge.
func gapCategory(e Edge) Category {
	switch e.Kind {
	case EdgeFork:
		if e.Stolen {
			return CatStealWait
		}
		return CatQueueWait
	case EdgeJoin:
		return CatJoinWait
	case EdgeComm:
		return CatCommWait
	case EdgeColl:
		return CatCollWait
	default:
		return CatIdle
	}
}

// edgePriority breaks binding-predecessor ties: a causal edge explains
// a handoff better than same-track sequencing, and a join beats the
// fork that merely scheduled the region.
func edgePriority(k EdgeKind) int {
	switch k {
	case EdgeJoin:
		return 4
	case EdgeComm:
		return 3
	case EdgeColl:
		return 2
	case EdgeFork:
		return 1
	default:
		return 0
	}
}

// walk fills rep.Steps, rep.PathStart and rep.Wall.
func (g *Graph) walk(rep *Report) error {
	cur := 0
	for id, n := range g.Nodes {
		c := g.Nodes[cur]
		if n.End > c.End ||
			(n.End == c.End && (n.Track < c.Track || (n.Track == c.Track && n.Start < c.Start))) {
			cur = id
		}
	}
	t := g.Nodes[cur].End
	visited := make(map[int]bool, 64)
	var rsteps []Step // reverse order
	limit := 4*len(g.Nodes) + 16
	nodes, edges := g.Nodes, g.Edges

	for {
		if len(rsteps) > limit {
			return fmt.Errorf("critpath: walk exceeded %d steps without converging — malformed graph", limit)
		}
		if visited[cur] {
			return fmt.Errorf("critpath: walk revisited node %d — malformed graph", cur)
		}
		visited[cur] = true
		n := g.Nodes[cur]
		lo := n.Start
		if lo > t {
			lo = t
		}
		if t > lo {
			rsteps = append(rsteps, Step{NodeID: cur, Track: n.Track, Name: n.Name, From: lo, To: t, Cat: n.Cat})
		}
		t = lo
		if t <= g.MinStart {
			break
		}

		best, bestEdge := -1, -1
		for _, ei := range g.preds[cur] {
			e := edges[ei]
			if best < 0 {
				best, bestEdge = e.From, ei
				continue
			}
			p, bp := nodes[e.From], nodes[best]
			pe, bpe := p.End, bp.End
			if pe > t {
				pe = t
			}
			if bpe > t {
				bpe = t
			}
			switch {
			case pe > bpe:
				best, bestEdge = e.From, ei
			case pe == bpe:
				if pr, bpr := edgePriority(e.Kind), edgePriority(edges[bestEdge].Kind); pr > bpr ||
					(pr == bpr && !p.Elastic && bp.Elastic) {
					best, bestEdge = e.From, ei
				}
			}
		}
		if best < 0 {
			// No recorded dependency: bridge to the globally latest
			// activity that had finished by t. This keeps the tiling
			// exact even across unmodeled handoffs.
			q := -1
			for id := range nodes {
				n2 := nodes[id]
				if id == cur || visited[id] || n2.End > t {
					continue
				}
				if q < 0 || n2.End > nodes[q].End {
					q = id
				}
			}
			if q < 0 {
				break
			}
			if nodes[q].End < t {
				rsteps = append(rsteps, Step{
					NodeID: -1, Track: nodes[q].Track, Name: "idle",
					From: nodes[q].End, To: t, Cat: CatIdle,
				})
				t = nodes[q].End
			}
			cur = q
			continue
		}
		p := g.Nodes[best]
		pe := p.End
		if pe > t {
			pe = t
		}
		if pe < t {
			e := g.Edges[bestEdge]
			rsteps = append(rsteps, Step{
				NodeID: -1, Track: n.Track, Name: e.Kind.String(),
				From: pe, To: t, Cat: gapCategory(e),
			})
			t = pe
		}
		cur = best
	}

	rep.PathStart = t
	rep.Wall = g.Makespan - t
	rep.Steps = make([]Step, 0, len(rsteps))
	for i := len(rsteps) - 1; i >= 0; i-- {
		rep.Steps = append(rep.Steps, rsteps[i])
	}
	var sum time.Duration
	prev := rep.PathStart
	for _, st := range rep.Steps {
		if st.From != prev || st.To < st.From {
			return fmt.Errorf("critpath: path does not tile at %v (step [%v,%v]) — malformed graph", prev, st.From, st.To)
		}
		sum += st.Dur()
		prev = st.To
	}
	if prev != g.Makespan || sum != rep.Wall {
		return fmt.Errorf("critpath: path sums to %v over a %v window — malformed graph", sum, rep.Wall)
	}
	return nil
}

// slack returns, per node, how much the node could slip without moving
// the replayed makespan: latest finish (backward pass) minus earliest
// finish (forward pass). Zero-slack nodes sit on a critical chain.
func (g *Graph) slack() []time.Duration {
	order, err := g.topoOrder()
	if err != nil {
		return make([]time.Duration, len(g.Nodes))
	}
	est := g.earliestFinish(order, nil, 0)
	var makespan time.Duration
	for _, f := range est {
		if f > makespan {
			makespan = f
		}
	}
	lft := make([]time.Duration, len(g.Nodes))
	for i := range lft {
		lft[i] = makespan
	}
	nodes, edges := g.Nodes, g.Edges
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, ei := range g.succs[id] {
			e := edges[ei]
			succStart := lft[e.To] - nodes[e.To].replayDur(nil, 0)
			if succStart < lft[id] {
				lft[id] = succStart
			}
		}
	}
	out := make([]time.Duration, len(g.Nodes))
	for id := range g.Nodes {
		if s := lft[id] - est[id]; s > 0 {
			out[id] = s
		}
	}
	return out
}
