package critpath

import (
	"testing"
	"time"

	"perfeng/internal/obs"
	"perfeng/internal/stats"
)

// TestWhatIfMatchesMeasured is the causal-profiling validation
// experiment recorded in EXPERIMENTS.md: the what-if engine predicts
// the end-to-end effect of halving the hottest span from ONE recorded
// baseline run, and the prediction is checked against actually running
// the halved workload. Both sides are real executions timed by the obs
// clock; Welch's t-test first confirms the intervention's effect is
// statistically real, then the prediction must land within a tolerance
// that covers scheduler noise on shared machines.
func TestWhatIfMatchesMeasured(t *testing.T) {
	spinSink := 0.0
	spin := func(iters int) {
		acc := 0.0
		for i := 0; i < iters; i++ {
			acc += float64(i&15) * 0.25
		}
		spinSink += acc
	}
	const hotIters, coldIters = 2_000_000, 500_000

	// One run = hot phase then cold phase, serially, under real spans.
	run := func(hot int) *obs.Session {
		s := obs.NewSession("whatif-validate")
		host := s.Track("host")
		err := host.Span("workload", func() {
			if err := host.Span("hot", func() { spin(hot) }); err != nil {
				t.Fatal(err)
			}
			if err := host.Span("cold", func() { spin(coldIters) }); err != nil {
				t.Fatal(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	wall := func(s *obs.Session) (*Report, float64) {
		rep, err := Analyze(s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep, rep.Wall.Seconds()
	}

	const reps = 12
	// Warm both shapes before sampling: the first executions pay cold
	// caches and frequency ramp, which would land entirely in the
	// baseline sample and bias the comparison.
	run(hotIters)
	run(hotIters / 2)
	var base, halved []float64
	var predicted []float64
	for i := 0; i < reps; i++ {
		rep, w := wall(run(hotIters))
		base = append(base, w)
		for _, wi := range rep.WhatIf {
			if wi.Name != "hot" {
				continue
			}
			for j, f := range wi.Factors {
				if f == 0.50 {
					predicted = append(predicted, wi.Speedups[j])
				}
			}
		}
		_, w = wall(run(hotIters / 2))
		halved = append(halved, w)
	}
	if len(predicted) != reps {
		t.Fatalf("what-if table lacked a ×0.50 entry for the hot span (%d/%d)", len(predicted), reps)
	}

	// The intervention must be statistically real before its size is
	// compared to the prediction.
	w, err := stats.WelchTTest(base, halved)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Significant(0.01) {
		t.Fatalf("halving the hot span did not significantly change wall time (p=%g)", w.P)
	}

	measured := (stats.Mean(base)/stats.Mean(halved) - 1) * 100
	pred := stats.Mean(predicted)
	t.Logf("baseline wall %v ±%.1f%%, halved wall %v ±%.1f%%",
		time.Duration(stats.Mean(base)*1e9), 100*stats.Stddev(base)/stats.Mean(base),
		time.Duration(stats.Mean(halved)*1e9), 100*stats.Stddev(halved)/stats.Mean(halved))
	t.Logf("what-if ×0.50 on hot: predicted %+.1f%%, measured %+.1f%% (Welch p=%.3g)", pred, measured, w.P)

	if measured < 20 {
		t.Fatalf("measured speedup %.1f%% too small — workload shape broken", measured)
	}
	// The replay is conservative by construction (it keeps the recorded
	// schedule), and spin loops jitter on shared machines: accept the
	// prediction within 15 points or 40%% of the measured gain,
	// whichever is looser.
	tol := 0.40 * measured
	if tol < 15 {
		tol = 15
	}
	if diff := pred - measured; diff < -tol || diff > tol {
		t.Fatalf("what-if prediction %+.1f%% vs measured %+.1f%% — outside ±%.1f points", pred, measured, tol)
	}
	_ = spinSink
}
