package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"perfeng/internal/report"
)

// Rendering in the toolbox's three house formats: aligned text for the
// terminal, markdown for CI step summaries, JSON for machines. All
// three are deterministic for a given report.

const maxRenderedSteps = 40

func pct(num, den time.Duration) string {
	if den <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func rd(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// Text renders the terminal report.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path: %s\n", r.Session)
	fmt.Fprintf(&sb, "window [%v, %v]  wall %v  steps %d  (graph: %d nodes, %d edges)\n\n",
		rd(r.PathStart), rd(r.Makespan), rd(r.Wall), len(r.Steps), len(r.Graph.Nodes), len(r.Graph.Edges))

	cat := &report.Table{Title: "where the time went", Headers: []string{"category", "time", "share"}}
	for c := Category(0); c < numCategories; c++ {
		if d := r.ByCategory[c]; d > 0 {
			//perfvet:ignore:fmttransitive a report renders once; the table has at most one row per category
			cat.AddRow(c.String(), rd(d).String(), pct(d, r.Wall))
		}
	}
	sb.WriteString(cat.String())
	wt := &report.Table{Title: "wait states (whole trace, on + off path)", Headers: []string{"category", "time"}}
	for c := Category(0); c < numCategories; c++ {
		if d := r.WaitTotals[c]; d > 0 {
			wt.AddRow(c.String(), rd(d).String())
		}
	}
	if len(wt.Rows) > 0 {
		sb.WriteString("\n")
		sb.WriteString(wt.String())
	}
	if r.GCPause > 0 {
		fmt.Fprintf(&sb, "gc pause inside path compute (est.): %v (%s)\n", rd(r.GCPause), pct(r.GCPause, r.Wall))
	}
	sb.WriteString("\n")

	spans := &report.Table{Title: "top critical spans",
		Headers: []string{"span", "subsystem", "on-path", "share", "total", "min-slack"}}
	for _, ss := range r.BySpan {
		spans.AddRow(ss.Name, ss.Subsystem, rd(ss.PathTime).String(),
			//perfvet:ignore:hotloopalloc formatting the rows is this renderer's purpose; BySpan is capped at Options.TopSpans
			fmt.Sprintf("%.1f%%", 100*ss.Share), rd(ss.TotalTime).String(), rd(ss.MinSlack).String())
	}
	sb.WriteString(spans.String())
	sb.WriteString("\n")

	if len(r.WhatIf) > 0 {
		headers := []string{"span", "share"}
		for _, f := range r.WhatIf[0].Factors {
			//perfvet:ignore:hotloopalloc one header per what-if factor (three by default), once per report
			headers = append(headers, fmt.Sprintf("×%.2f", f))
		}
		wi := &report.Table{
			Title:   fmt.Sprintf("what-if virtual speedups (vs %v replay baseline)", rd(r.ReplayWall)),
			Headers: headers,
		}
		for _, w := range r.WhatIf {
			//perfvet:ignore:hotloopalloc one row per top span, once per report
			row := []string{w.Name, fmt.Sprintf("%.1f%%", 100*w.Share)}
			for _, s := range w.Speedups {
				//perfvet:ignore:hotloopalloc one cell per what-if factor, once per report
				row = append(row, fmt.Sprintf("%+.1f%%", s))
			}
			wi.AddRow(row...)
		}
		sb.WriteString(wi.String())
		sb.WriteString("\n")
	}

	sb.WriteString("path steps (oldest first):\n")
	for i, st := range r.Steps {
		if i == maxRenderedSteps {
			fmt.Fprintf(&sb, "  … %d more steps\n", len(r.Steps)-maxRenderedSteps)
			break
		}
		fmt.Fprintf(&sb, "  %-12v %-10v %-16s %-15s %s\n",
			//perfvet:ignore:fmttransitive the step listing is the report's output, capped at maxRenderedSteps lines
			rd(st.From), rd(st.Dur()), st.Cat, trackLabel(r.TrackNames, st.Track), st.Name)
	}
	return sb.String()
}

// Markdown renders the CI step-summary report.
func (r *Report) Markdown() string {
	var sb strings.Builder
	sb.WriteString("## Critical path\n\n")
	fmt.Fprintf(&sb, "`%s`: wall **%v** over [%v, %v], %d steps (graph: %d nodes, %d edges)\n\n",
		r.Session, rd(r.Wall), rd(r.PathStart), rd(r.Makespan), len(r.Steps), len(r.Graph.Nodes), len(r.Graph.Edges))

	sb.WriteString("| category | time | share |\n|---|---:|---:|\n")
	for c := Category(0); c < numCategories; c++ {
		if d := r.ByCategory[c]; d > 0 {
			//perfvet:ignore:fmttransitive a report renders once; the table has at most one row per category
			fmt.Fprintf(&sb, "| %s | %v | %s |\n", c, rd(d), pct(d, r.Wall))
		}
	}
	if r.GCPause > 0 {
		fmt.Fprintf(&sb, "\nEstimated GC pause inside path compute: %v (%s)\n", rd(r.GCPause), pct(r.GCPause, r.Wall))
	}

	var anyWait bool
	for c := Category(0); c < numCategories; c++ {
		anyWait = anyWait || r.WaitTotals[c] > 0
	}
	if anyWait {
		sb.WriteString("\n| wait state (whole trace) | time |\n|---|---:|\n")
		for c := Category(0); c < numCategories; c++ {
			if d := r.WaitTotals[c]; d > 0 {
				fmt.Fprintf(&sb, "| %s | %v |\n", c, rd(d))
			}
		}
	}

	sb.WriteString("\n| span | subsystem | on-path | share | total | min-slack |\n|---|---|---:|---:|---:|---:|\n")
	for _, ss := range r.BySpan {
		fmt.Fprintf(&sb, "| %s | %s | %v | %.1f%% | %v | %v |\n",
			ss.Name, ss.Subsystem, rd(ss.PathTime), 100*ss.Share, rd(ss.TotalTime), rd(ss.MinSlack))
	}

	if len(r.WhatIf) > 0 {
		sb.WriteString("\n| what-if span | share |")
		for _, f := range r.WhatIf[0].Factors {
			fmt.Fprintf(&sb, " ×%.2f |", f)
		}
		sb.WriteString("\n|---|---:|")
		for range r.WhatIf[0].Factors {
			sb.WriteString("---:|")
		}
		sb.WriteString("\n")
		for _, w := range r.WhatIf {
			fmt.Fprintf(&sb, "| %s | %.1f%% |", w.Name, 100*w.Share)
			for _, s := range w.Speedups {
				fmt.Fprintf(&sb, " %+.1f%% |", s)
			}
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "\nReplay baseline: %v\n", rd(r.ReplayWall))
	}
	return sb.String()
}

func trackLabel(names []string, id int) string {
	if id >= 0 && id < len(names) {
		return names[id]
	}
	return fmt.Sprintf("track %d", id)
}

// JSON shadow types: durations in integer nanoseconds, categories as
// strings, field order fixed by the structs.

type jsonCategory struct {
	Category string  `json:"category"`
	Ns       int64   `json:"ns"`
	Share    float64 `json:"share"`
}

type jsonSpan struct {
	Name      string  `json:"name"`
	Subsystem string  `json:"subsystem"`
	PathNs    int64   `json:"path_ns"`
	Share     float64 `json:"share"`
	TotalNs   int64   `json:"total_ns"`
	SlackNs   int64   `json:"min_slack_ns"`
}

type jsonWhatIf struct {
	Name      string    `json:"name"`
	Subsystem string    `json:"subsystem"`
	Share     float64   `json:"share"`
	Factors   []float64 `json:"factors"`
	Speedups  []float64 `json:"speedups_pct"`
}

type jsonStep struct {
	Track    string `json:"track"`
	Name     string `json:"name"`
	FromNs   int64  `json:"from_ns"`
	ToNs     int64  `json:"to_ns"`
	Category string `json:"category"`
}

type jsonReport struct {
	Session      string         `json:"session"`
	WallNs       int64          `json:"wall_ns"`
	PathStartNs  int64          `json:"path_start_ns"`
	MakespanNs   int64          `json:"makespan_ns"`
	Nodes        int            `json:"nodes"`
	Edges        int            `json:"edges"`
	Categories   []jsonCategory `json:"categories"`
	WaitTotals   []jsonCategory `json:"wait_totals"`
	GCPauseNs    int64          `json:"gc_pause_ns,omitempty"`
	Spans        []jsonSpan     `json:"spans"`
	ReplayWallNs int64          `json:"replay_wall_ns"`
	WhatIf       []jsonWhatIf   `json:"what_if"`
	Steps        []jsonStep     `json:"steps"`
}

// WriteJSON writes the machine-readable report.
func (r *Report) WriteJSON(w io.Writer) error {
	jr := jsonReport{
		Session:      r.Session,
		WallNs:       r.Wall.Nanoseconds(),
		PathStartNs:  r.PathStart.Nanoseconds(),
		MakespanNs:   r.Makespan.Nanoseconds(),
		Nodes:        len(r.Graph.Nodes),
		Edges:        len(r.Graph.Edges),
		GCPauseNs:    r.GCPause.Nanoseconds(),
		ReplayWallNs: r.ReplayWall.Nanoseconds(),
	}
	for c := Category(0); c < numCategories; c++ {
		if d := r.ByCategory[c]; d > 0 {
			share := 0.0
			if r.Wall > 0 {
				share = float64(d) / float64(r.Wall)
			}
			jr.Categories = append(jr.Categories, jsonCategory{Category: c.String(), Ns: d.Nanoseconds(), Share: share})
		}
	}
	for c := Category(0); c < numCategories; c++ {
		if d := r.WaitTotals[c]; d > 0 {
			jr.WaitTotals = append(jr.WaitTotals, jsonCategory{Category: c.String(), Ns: d.Nanoseconds()})
		}
	}
	for _, ss := range r.BySpan {
		jr.Spans = append(jr.Spans, jsonSpan{
			Name: ss.Name, Subsystem: ss.Subsystem, PathNs: ss.PathTime.Nanoseconds(),
			Share: ss.Share, TotalNs: ss.TotalTime.Nanoseconds(), SlackNs: ss.MinSlack.Nanoseconds(),
		})
	}
	for _, wi := range r.WhatIf {
		jr.WhatIf = append(jr.WhatIf, jsonWhatIf{
			Name: wi.Name, Subsystem: wi.Subsystem, Share: wi.Share,
			Factors: wi.Factors, Speedups: wi.Speedups,
		})
	}
	for _, st := range r.Steps {
		jr.Steps = append(jr.Steps, jsonStep{
			//perfvet:ignore:fmttransitive labeling each step is the JSON export's purpose, once per report
			Track: trackLabel(r.TrackNames, st.Track), Name: st.Name,
			FromNs: st.From.Nanoseconds(), ToNs: st.To.Nanoseconds(), Category: st.Cat.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jr)
}
