package critpath

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// What-if virtual speedups, in the spirit of causal profiling (COZ):
// instead of guessing from flat profiles, replay the dependency DAG
// with one span name's durations scaled down and read off the new
// makespan. The replay keeps the recorded schedule's structure — every
// edge still holds, nodes without recorded dependencies stay anchored
// at their recorded starts — so the prediction is conservative: it
// shows what the same execution would have cost, not what a rescheduled
// one might.

// replayDur is a node's duration under a what-if scale: elastic
// segments are derived (zero — their finish is whatever dependencies
// dictate), work segments scale when their name is targeted.
func (n Node) replayDur(target map[string]bool, factor float64) time.Duration {
	if n.Elastic {
		return 0
	}
	if target != nil && target[n.Name] {
		return time.Duration(float64(n.Dur()) * factor)
	}
	return n.Dur()
}

// earliestFinish runs the forward pass: finish(n) = max(anchor,
// max over preds finish(pred)) + dur(n). Nodes with no predecessors
// anchor at their recorded start — they model externally triggered
// work the DAG cannot move.
func (g *Graph) earliestFinish(order []int, target map[string]bool, factor float64) []time.Duration {
	finish := make([]time.Duration, len(g.Nodes))
	edges := g.Edges
	for _, id := range order {
		n := g.Nodes[id]
		start := time.Duration(0)
		if len(g.preds[id]) == 0 {
			start = n.Start - g.MinStart
		}
		for _, ei := range g.preds[id] {
			if f := finish[edges[ei].From]; f > start {
				start = f
			}
		}
		finish[id] = start + n.replayDur(target, factor)
	}
	return finish
}

// replayMakespan returns the replayed end-to-end time.
func (g *Graph) replayMakespan(order []int, target map[string]bool, factor float64) time.Duration {
	var m time.Duration
	for _, f := range g.earliestFinish(order, target, factor) {
		if f > m {
			m = f
		}
	}
	return m
}

// whatIf fills rep.ReplayWall and rep.WhatIf for the top path
// contributors.
func whatIf(rep *Report, g *Graph, order []int, opts Options) {
	rep.ReplayWall = g.replayMakespan(order, nil, 0)
	if rep.ReplayWall <= 0 {
		return
	}
	for _, ss := range rep.BySpan {
		if ss.PathTime <= 0 {
			continue
		}
		w := WhatIf{
			Name:      ss.Name,
			Subsystem: ss.Subsystem,
			Share:     ss.Share,
			Factors:   append([]float64(nil), opts.WhatIfFactors...),
		}
		target := map[string]bool{ss.Name: true}
		for _, f := range w.Factors {
			scaled := g.replayMakespan(order, target, f)
			speedup := 0.0
			if scaled > 0 {
				speedup = (float64(rep.ReplayWall)/float64(scaled) - 1) * 100
			}
			w.Speedups = append(w.Speedups, speedup)
		}
		rep.WhatIf = append(rep.WhatIf, w)
	}
}

// Hint is one entry of the ranked optimization-target list: the spans
// whose acceleration the DAG predicts would move end-to-end time the
// most. perfeng tune consumes these to order its search.
type Hint struct {
	// Target is the span name (a kernel name, a parallel-region
	// policy, a region label).
	Target    string
	Subsystem string
	// Share is the target's critical-path share; Gain is the predicted
	// end-to-end speedup (percent) at the most aggressive simulated
	// factor.
	Share float64
	Gain  float64
}

// Hints ranks the what-if targets by predicted gain.
func (r *Report) Hints() []Hint {
	out := make([]Hint, 0, len(r.WhatIf))
	for _, w := range r.WhatIf {
		h := Hint{Target: w.Name, Subsystem: w.Subsystem, Share: w.Share}
		for _, s := range w.Speedups {
			if s > h.Gain {
				h.Gain = s
			}
		}
		out = append(out, h)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// jsonHint is the on-disk hint schema — the contract between
// `perfeng critpath -hints` and `perfeng tune -hints`.
type jsonHint struct {
	Target    string  `json:"target"`
	Subsystem string  `json:"subsystem"`
	Share     float64 `json:"share"`
	GainPct   float64 `json:"gain_pct"`
}

// WriteHints serializes a ranked hint list as JSON.
func WriteHints(w io.Writer, hints []Hint) error {
	js := make([]jsonHint, 0, len(hints))
	for _, h := range hints {
		js = append(js, jsonHint{Target: h.Target, Subsystem: h.Subsystem, Share: h.Share, GainPct: h.Gain})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(js)
}

// ReadHints parses a hint list written by WriteHints.
func ReadHints(r io.Reader) ([]Hint, error) {
	var js []jsonHint
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, err
	}
	out := make([]Hint, 0, len(js))
	for _, h := range js {
		out = append(out, Hint{Target: h.Target, Subsystem: h.Subsystem, Share: h.Share, Gain: h.GainPct})
	}
	return out, nil
}
