package critpath

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"perfeng/internal/obs"
)

const ms = time.Millisecond

// requireTiling asserts the walk's core invariant: steps are adjacent
// and their durations sum to Wall exactly (integer nanoseconds, no
// rounding).
func requireTiling(t *testing.T, rep *Report) {
	t.Helper()
	var sum time.Duration
	prev := rep.PathStart
	for _, st := range rep.Steps {
		if st.From != prev {
			t.Fatalf("step gap: step starts at %v, previous ended at %v", st.From, prev)
		}
		if st.To < st.From {
			t.Fatalf("negative step [%v, %v]", st.From, st.To)
		}
		sum += st.Dur()
		prev = st.To
	}
	if prev != rep.Makespan {
		t.Fatalf("path ends at %v, makespan %v", prev, rep.Makespan)
	}
	if sum != rep.Wall {
		t.Fatalf("steps sum to %v, wall is %v", sum, rep.Wall)
	}
}

func TestAnalyzeEmptySession(t *testing.T) {
	rep, err := Analyze(obs.NewSession("empty"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall != 0 || len(rep.Steps) != 0 {
		t.Fatalf("empty session: wall=%v steps=%d", rep.Wall, len(rep.Steps))
	}
}

// TestLateSenderPath: the canonical Scalasca scenario. Rank 1 posts a
// receive early and blocks; rank 0 computes, then sends. The critical
// path must run through the SENDER's compute (the cause), not through
// the receiver's blocked time (the symptom) — and the blocked time must
// still show up in the whole-trace wait totals.
func TestLateSenderPath(t *testing.T) {
	s := obs.NewSession("late-sender")
	r0 := s.Track("rank 0")
	r1 := s.Track("rank 1")
	r0.AddSpanOffsets("compute", nil, 0, 5*ms, nil)
	r0.AddSpanOffsets("send", nil, 5*ms, 6*ms, map[string]any{"peer": 1, "bytes": 8})
	r1.AddSpanOffsets("recv", nil, 1*ms, 6*ms, map[string]any{"peer": 0, "bytes": 8})
	r1.AddSpanOffsets("compute", nil, 6*ms, 10*ms, nil)

	rep, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireTiling(t, rep)
	if rep.Wall != 10*ms {
		t.Fatalf("wall = %v, want 10ms", rep.Wall)
	}
	// Path: rank0 compute [0,5], rank0 send [5,6], rank1 compute [6,10].
	if rep.ByCategory[CatCompute] != 10*ms {
		t.Fatalf("compute on path = %v, want 10ms (path should follow the sender)", rep.ByCategory[CatCompute])
	}
	onR0 := false
	for _, st := range rep.Steps {
		if rep.TrackNames[st.Track] == "rank 0" && st.Name == "send" {
			onR0 = true
		}
	}
	if !onR0 {
		t.Fatalf("critical path missed the sender: %+v", rep.Steps)
	}
	// The receiver sat blocked [1ms, 6ms) — whole-trace comm wait.
	if rep.WaitTotals[CatCommWait] != 5*ms {
		t.Fatalf("comm-wait total = %v, want 5ms", rep.WaitTotals[CatCommWait])
	}
}

// TestBarrierImbalance: three ranks hit a barrier; the straggler
// defines the exit. The path runs through the straggler's compute, and
// the early arrivals' blocked time lands in collective-wait.
func TestBarrierImbalance(t *testing.T) {
	s := obs.NewSession("barrier")
	computes := []time.Duration{2 * ms, 7 * ms, 4 * ms}
	const sync = ms / 2
	last := 7 * ms
	for r, c := range computes {
		tr := s.Track("rank " + strconv.Itoa(r))
		tr.AddSpanOffsets("compute", nil, 0, c, nil)
		tr.AddSpanOffsets("barrier", nil, c, last+sync, nil)
	}
	rep, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireTiling(t, rep)
	if rep.Wall != last+sync {
		t.Fatalf("wall = %v, want %v", rep.Wall, last+sync)
	}
	// Early ranks 0 and 2 waited (7-2) + (7-4) = 8ms in the barrier.
	if rep.WaitTotals[CatCollWait] != 8*ms {
		t.Fatalf("collective-wait total = %v, want 8ms", rep.WaitTotals[CatCollWait])
	}
	// The path's compute must be the straggler's 7ms plus the sync tail.
	if rep.ByCategory[CatCompute] != last+sync {
		t.Fatalf("compute on path = %v, want %v", rep.ByCategory[CatCompute], last+sync)
	}
}

// TestSyntheticRoundsLongestPath is the exact-arithmetic property test:
// K rounds of random per-rank compute separated by barriers. The
// analytical longest path — sum over rounds of the slowest rank's
// compute plus the sync cost — must equal the reported wall and the
// replay baseline to the nanosecond.
func TestSyntheticRoundsLongestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		ranks := 2 + rng.Intn(5)
		rounds := 1 + rng.Intn(6)
		const sync = 100 * time.Microsecond

		s := obs.NewSession("rounds")
		tracks := make([]*obs.Track, ranks)
		for r := range tracks {
			tracks[r] = s.Track("rank " + strconv.Itoa(r))
		}
		now := make([]time.Duration, ranks)
		var expected time.Duration
		for k := 0; k < rounds; k++ {
			var arrive time.Duration
			durs := make([]time.Duration, ranks)
			for r := range durs {
				durs[r] = time.Duration(1+rng.Intn(5000)) * time.Microsecond
				if a := now[r] + durs[r]; a > arrive {
					arrive = a
				}
			}
			var slowest time.Duration
			for r := range durs {
				tracks[r].AddSpanOffsets("compute", nil, now[r], now[r]+durs[r], nil)
				tracks[r].AddSpanOffsets("barrier", nil, now[r]+durs[r], arrive+sync, nil)
				now[r] = arrive + sync
				if durs[r] > slowest {
					slowest = durs[r]
				}
			}
			expected += slowest + sync
		}

		rep, err := Analyze(s, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		requireTiling(t, rep)
		if rep.Wall != expected {
			t.Fatalf("trial %d (ranks=%d rounds=%d): wall = %v, analytical longest path = %v",
				trial, ranks, rounds, rep.Wall, expected)
		}
		if rep.ReplayWall != expected {
			t.Fatalf("trial %d: replay baseline = %v, want %v", trial, rep.ReplayWall, expected)
		}
	}
}

// TestWhatIfMonotone: scaling down the dominant span must predict a
// positive speedup, and a harder scaling must predict at least as much.
func TestWhatIfMonotone(t *testing.T) {
	s := obs.NewSession("whatif")
	h := s.Track("host")
	h.AddSpanOffsets("hot", nil, 0, 8*ms, nil)
	h.AddSpanOffsets("cold", nil, 8*ms, 9*ms, nil)
	rep, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hot *WhatIf
	for i := range rep.WhatIf {
		if rep.WhatIf[i].Name == "hot" {
			hot = &rep.WhatIf[i]
		}
	}
	if hot == nil {
		t.Fatalf("what-if table misses the dominant span: %+v", rep.WhatIf)
	}
	prev := 0.0
	for i, sp := range hot.Speedups {
		if sp <= 0 {
			t.Fatalf("factor %.2f predicts %.2f%% speedup, want > 0", hot.Factors[i], sp)
		}
		if sp < prev {
			t.Fatalf("speedups not monotone: %v", hot.Speedups)
		}
		prev = sp
	}
	// Exact check: hot is 8/9 of the run; halving it gives 9/5.
	half := hot.Speedups[len(hot.Speedups)-1]
	want := (9.0/5.0 - 1) * 100
	if diff := half - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("×0.50 speedup = %v%%, want %v%%", half, want)
	}
}

// TestHintsRanked: hints order by predicted gain, dominant span first.
func TestHintsRanked(t *testing.T) {
	s := obs.NewSession("hints")
	h := s.Track("host")
	h.AddSpanOffsets("big", nil, 0, 6*ms, nil)
	h.AddSpanOffsets("small", nil, 6*ms, 7*ms, nil)
	rep, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hints := rep.Hints()
	if len(hints) == 0 || hints[0].Target != "big" {
		t.Fatalf("hints = %+v, want big first", hints)
	}
	if hints[0].Gain <= 0 {
		t.Fatalf("dominant hint predicts no gain: %+v", hints[0])
	}
}

// TestRenderers: the three formats stay well-formed and carry the
// headline number.
func TestRenderers(t *testing.T) {
	s := obs.NewSession("render")
	s.Track("host").AddSpanOffsets("work", nil, 0, 2*ms, nil)
	rep, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if txt := rep.Text(); !strings.Contains(txt, "critical path: render") || !strings.Contains(txt, "work") {
		t.Fatalf("text render:\n%s", txt)
	}
	if md := rep.Markdown(); !strings.Contains(md, "## Critical path") {
		t.Fatalf("markdown render:\n%s", md)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("json render invalid: %v", err)
	}
	if decoded["wall_ns"].(float64) != float64(2*ms) {
		t.Fatalf("wall_ns = %v", decoded["wall_ns"])
	}
}

// TestImportedTraceMatchesLive: exporting a session to Chrome trace
// JSON, importing it back and re-analyzing must reproduce the wall time
// and category split exactly — the CLI's -input path depends on it.
func TestImportedTraceMatchesLive(t *testing.T) {
	s := obs.NewSession("roundtrip")
	r0 := s.Track("rank 0")
	r1 := s.Track("rank 1")
	r0.AddSpanOffsets("compute", nil, 0, 3*ms, nil)
	r0.AddSpanOffsets("send", nil, 3*ms, 4*ms, map[string]any{"peer": 1, "bytes": 64})
	r1.AddSpanOffsets("recv", nil, 1*ms, 4*ms, map[string]any{"peer": 0, "bytes": 64})
	r1.AddSpanOffsets("compute", nil, 4*ms, 6*ms, nil)

	live, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := obs.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(imported, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireTiling(t, rep)
	if rep.Wall != live.Wall {
		t.Fatalf("imported wall = %v, live wall = %v", rep.Wall, live.Wall)
	}
	if rep.ByCategory != live.ByCategory {
		t.Fatalf("imported categories %v, live %v", rep.ByCategory, live.ByCategory)
	}
	if rep.WaitTotals != live.WaitTotals {
		t.Fatalf("imported wait totals %v, live %v", rep.WaitTotals, live.WaitTotals)
	}
}

// TestGCEstimate: a cumulative pause series overlapping the path's
// compute window is charged to GCPause by interpolation.
func TestGCEstimate(t *testing.T) {
	s := obs.NewSession("gc")
	s.Track("host").AddSpanOffsets("work", nil, 0, 10*ms, nil)
	s.CounterSampleAt("runtime/go_gc_pause_total_seconds", 0, 0)
	s.CounterSampleAt("runtime/go_gc_pause_total_seconds", 10*ms, 0.001) // 1ms of pause
	rep, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GCPause != ms {
		t.Fatalf("gc pause estimate = %v, want 1ms", rep.GCPause)
	}
}
