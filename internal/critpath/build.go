package critpath

import (
	"sort"
	"strings"
	"time"

	"perfeng/internal/obs"
)

// Graph construction: decompose each track into segments at every span
// boundary plus every causal cut point (fork instants, matched-send
// completions, collective last-arrivals), assign each segment to its
// innermost span, then connect segments with sequence edges along each
// track and causal edges across tracks. Cutting before connecting is
// what makes the later arithmetic exact: a wait and the work it delayed
// never share a segment, so the critical-path walk tiles the timeline
// without ever splitting a node on the fly.

type builder struct {
	spans      []obs.Span
	trackNames []string
	byTrack    [][]int // span indices per track, start-sorted
	cuts       []map[time.Duration]struct{}
	marks      [][]mark
	pending    []pendingEdge
}

// mark flags [lo,hi) on one track as elastic wait time.
type mark struct {
	lo, hi time.Duration
	cat    Category
}

// pendingEdge is an edge recorded against timeline positions before the
// nodes exist. From resolves to the last node on fromTrack ending at or
// before fromTime; To resolves to the first node on toTrack starting at
// or after toTime.
type pendingEdge struct {
	fromTrack int
	fromTime  time.Duration
	toTrack   int
	toTime    time.Duration
	kind      EdgeKind
	stolen    bool
}

// BuildGraph rebuilds the dependency DAG from a session snapshot. It is
// safe to call while producers are still appending to s.
func BuildGraph(s *obs.Session) (*Graph, error) {
	b := &builder{spans: s.Spans(), trackNames: s.TrackNames()}
	nTracks := len(b.trackNames)
	b.byTrack = make([][]int, nTracks)
	b.cuts = make([]map[time.Duration]struct{}, nTracks)
	b.marks = make([][]mark, nTracks)
	for t := 0; t < nTracks; t++ {
		b.cuts[t] = make(map[time.Duration]struct{})
	}
	for i, sp := range b.spans {
		if sp.TrackID < 0 || sp.TrackID >= nTracks || b.skipTrack(sp.TrackID) {
			continue
		}
		b.byTrack[sp.TrackID] = append(b.byTrack[sp.TrackID], i)
		b.cuts[sp.TrackID][sp.Start] = struct{}{}
		b.cuts[sp.TrackID][sp.End()] = struct{}{}
	}
	for t := range b.byTrack {
		idx := b.byTrack[t]
		sort.SliceStable(idx, func(a, c int) bool {
			sa, sc := b.spans[idx[a]], b.spans[idx[c]]
			if sa.Start != sc.Start {
				return sa.Start < sc.Start
			}
			return sa.Dur > sc.Dur
		})
	}

	b.schedEdges()
	b.gpuEdges()
	b.commEdges()
	b.collectiveEdges()

	return b.assemble()
}

// skipTrack excludes meta tracks that do not model a serial resource:
// the SLO engine's violation markers annotate the timeline, they are
// not activity.
func (b *builder) skipTrack(t int) bool { return b.trackNames[t] == "slo" }

func (b *builder) cut(track int, at time.Duration) { b.cuts[track][at] = struct{}{} }

func (b *builder) mark(track int, lo, hi time.Duration, cat Category) {
	if hi <= lo {
		return
	}
	b.cut(track, lo)
	b.cut(track, hi)
	b.marks[track] = append(b.marks[track], mark{lo: lo, hi: hi, cat: cat})
}

// containingHostSpan finds the innermost span covering time at on a
// host-class track — the submitter of a fork or launch. Returns the
// track and whether one was found.
func (b *builder) containingHostSpan(at time.Duration) (int, bool) {
	bestTrack, found := -1, false
	var bestStart, bestEnd time.Duration
	spans := b.spans
	for t, idx := range b.byTrack {
		if subsystem(b.trackNames[t]) != "host" {
			continue
		}
		for _, si := range idx {
			sp := spans[si]
			if sp.Start > at {
				break
			}
			if sp.End() < at {
				continue
			}
			if !found || sp.Start > bestStart || (sp.Start == bestStart && sp.End() < bestEnd) {
				bestTrack, bestStart, bestEnd, found = t, sp.Start, sp.End(), true
			}
		}
	}
	return bestTrack, found
}

// schedEdges rebuilds fork/join structure from the scheduler's task
// spans. Provenance-rich traces carry the region id and fork instant in
// span args; flight dumps carry only the region id (as "value"); bare
// traces carry neither, and regions are then recovered by clustering
// overlapping task spans — coarser, but the join structure survives.
func (b *builder) schedEdges() {
	type taskRef struct {
		span   int
		region int64
		stolen bool
	}
	tasks := make([]taskRef, 0, len(b.spans))
	spans := b.spans
	for t, idx := range b.byTrack {
		if !strings.HasPrefix(b.trackNames[t], "sched ") {
			continue
		}
		for _, si := range idx {
			sp := spans[si]
			if !strings.HasPrefix(sp.Name, "parfor") {
				continue
			}
			region, ok := argInt(sp.Args, "region")
			if !ok {
				region, ok = argInt(sp.Args, "value")
			}
			if !ok {
				region = 0
			}
			stolen, _ := argBool(sp.Args, "stolen")
			tasks = append(tasks, taskRef{span: si, region: region, stolen: stolen})
		}
	}
	if len(tasks) == 0 {
		return
	}

	// Group into regions: by recorded id when present, by overlap
	// clustering for the id-less remainder (tasks of one region overlap
	// or abut; separate regions of one submitter are disjoint in time).
	groups := map[int64][]taskRef{}
	bare := make([]taskRef, 0, len(tasks))
	for _, tr := range tasks {
		if tr.region != 0 {
			groups[tr.region] = append(groups[tr.region], tr)
		} else {
			bare = append(bare, tr)
		}
	}
	if len(bare) > 0 {
		sort.Slice(bare, func(i, j int) bool { return b.spans[bare[i].span].Start < b.spans[bare[j].span].Start })
		synth := int64(-1)
		var maxEnd time.Duration
		for i, tr := range bare {
			if i > 0 && b.spans[tr.span].Start >= maxEnd {
				synth--
				maxEnd = 0
			}
			groups[synth] = append(groups[synth], tr)
			if e := b.spans[tr.span].End(); e > maxEnd {
				maxEnd = e
			}
		}
	}

	regionIDs := make([]int64, 0, len(groups))
	for id := range groups {
		regionIDs = append(regionIDs, id)
	}
	sort.Slice(regionIDs, func(i, j int) bool { return regionIDs[i] < regionIDs[j] })
	for _, id := range regionIDs {
		members := groups[id]
		fork := time.Duration(-1)
		var hullEnd time.Duration
		minStart := spans[members[0].span].Start
		for _, tr := range members {
			sp := spans[tr.span]
			if sp.Start < minStart {
				minStart = sp.Start
			}
			if sp.End() > hullEnd {
				hullEnd = sp.End()
			}
			if f, ok := argInt(sp.Args, "fork_ns"); ok {
				if d := time.Duration(f); fork < 0 || d < fork {
					fork = d
				}
			}
		}
		if fork < 0 || fork > minStart {
			fork = minStart
		}
		submit, ok := b.containingHostSpan(fork)
		if !ok {
			continue // fork site untracked: tasks stay anchored at their recorded starts
		}
		b.mark(submit, fork, hullEnd, CatJoinWait)
		for _, tr := range members {
			sp := spans[tr.span]
			b.pending = append(b.pending,
				pendingEdge{fromTrack: submit, fromTime: fork, toTrack: sp.TrackID, toTime: sp.Start, kind: EdgeFork, stolen: tr.stolen},
				pendingEdge{fromTrack: sp.TrackID, fromTime: sp.End(), toTrack: submit, toTime: hullEnd, kind: EdgeJoin})
		}
	}
}

// gpuEdges connects kernel launches to their blocks: the device span is
// the submitter's wait (elastic), the blocks are the work, and the host
// resumes when the last block lands.
func (b *builder) gpuEdges() {
	type launch struct {
		track int
		span  int
	}
	launches := make([]launch, 0, len(b.byTrack))
	for t, idx := range b.byTrack {
		if b.trackNames[t] != "gpu device" {
			continue
		}
		for _, si := range idx {
			launches = append(launches, launch{track: t, span: si})
		}
	}
	if len(launches) == 0 {
		return
	}
	// containing launch per block: the latest-starting launch interval
	// that covers the block.
	find := func(blk obs.Span) (launch, bool) {
		best, found := launch{}, false
		var bestStart time.Duration
		for _, l := range launches {
			sp := b.spans[l.span]
			if sp.Start <= blk.Start && blk.End() <= sp.End() {
				if !found || sp.Start > bestStart {
					best, bestStart, found = l, sp.Start, true
				}
			}
		}
		return best, found
	}
	type blocks struct {
		spanIdx []int
	}
	perLaunch := map[int]*blocks{}
	spans := b.spans
	for t, idx := range b.byTrack {
		if !strings.HasPrefix(b.trackNames[t], "gpu sm") {
			continue
		}
		for _, si := range idx {
			sp := spans[si]
			if sp.Name != "block" && !strings.HasPrefix(sp.Name, "block/") {
				continue
			}
			if l, ok := find(sp); ok {
				pb := perLaunch[l.span]
				if pb == nil {
					pb = &blocks{}
					perLaunch[l.span] = pb
				}
				pb.spanIdx = append(pb.spanIdx, si)
			}
		}
	}
	for _, l := range launches {
		lsp := b.spans[l.span]
		b.mark(l.track, lsp.Start, lsp.End(), CatJoinWait)
		submit, ok := b.containingHostSpan(lsp.Start)
		if ok {
			b.mark(submit, lsp.Start, lsp.End(), CatJoinWait)
			b.pending = append(b.pending, pendingEdge{
				fromTrack: submit, fromTime: lsp.Start, toTrack: l.track, toTime: lsp.Start, kind: EdgeFork})
		}
		pb := perLaunch[l.span]
		if pb == nil {
			continue
		}
		for _, si := range pb.spanIdx {
			blk := spans[si]
			if ok {
				b.pending = append(b.pending,
					pendingEdge{fromTrack: submit, fromTime: lsp.Start, toTrack: blk.TrackID, toTime: blk.Start, kind: EdgeFork},
					pendingEdge{fromTrack: blk.TrackID, fromTime: blk.End(), toTrack: submit, toTime: lsp.End(), kind: EdgeJoin})
			}
		}
	}
}

// commEdges matches sends to receives per ordered rank pair in
// chronological order — the same discipline as the cluster runtime's
// wait-state analysis — and splits each receive at the matched send's
// completion: before it the receiver was blocked (late sender), after
// it the transfer was real work. Traces without peer metadata (flight
// dumps) skip this pass.
func (b *builder) commEdges() {
	rankTrack := map[int]int{} // rank number -> track id
	for t, name := range b.trackNames {
		if r, ok := parseRank(name); ok {
			rankTrack[r] = t
		}
	}
	if len(rankTrack) == 0 {
		return
	}
	type msg struct{ span int }
	sends := map[[2]int][]msg{} // (src, dst) -> chronological sends
	spans := b.spans
	for r, t := range rankTrack {
		for _, si := range b.byTrack[t] {
			sp := spans[si]
			if sp.Name != "send" {
				continue
			}
			peer, ok := argInt(sp.Args, "peer")
			if !ok {
				continue
			}
			sends[[2]int{r, int(peer)}] = append(sends[[2]int{r, int(peer)}], msg{span: si})
		}
	}
	used := map[[2]int]int{}
	ranks := make([]int, 0, len(rankTrack))
	for r := range rankTrack {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, dst := range ranks {
		t := rankTrack[dst]
		for _, si := range b.byTrack[t] {
			rp := spans[si]
			if rp.Name != "recv" {
				continue
			}
			peer, ok := argInt(rp.Args, "peer")
			if !ok {
				continue
			}
			key := [2]int{int(peer), dst}
			idx := used[key]
			if idx >= len(sends[key]) {
				continue
			}
			sp := spans[sends[key][idx].span]
			used[key] = idx + 1
			se := sp.End()
			cutAt := se
			if cutAt < rp.Start {
				cutAt = rp.Start
			}
			if e := rp.End(); cutAt > e {
				cutAt = e
			}
			b.mark(t, rp.Start, cutAt, CatCommWait)
			b.pending = append(b.pending, pendingEdge{
				fromTrack: sp.TrackID, fromTime: se, toTrack: t, toTime: cutAt, kind: EdgeComm})
		}
	}
}

// collectiveEdges groups the k-th barrier/bcast/reduce span of each
// rank into one episode: every member waits for the last arrival, so
// each member's pre-arrival slice is elastic and the post-arrival slice
// depends on every member's entry.
func (b *builder) collectiveEdges() {
	rankTracks := make([]int, 0, len(b.trackNames))
	for t, name := range b.trackNames {
		if _, ok := parseRank(name); ok {
			rankTracks = append(rankTracks, t)
		}
	}
	if len(rankTracks) < 2 {
		return
	}
	sort.Slice(rankTracks, func(i, j int) bool { return b.trackNames[rankTracks[i]] < b.trackNames[rankTracks[j]] })
	byTrack, spans := b.byTrack, b.spans
	for _, kind := range []string{"barrier", "bcast", "reduce"} {
		perTrack := make([][]int, len(rankTracks))
		max := 0
		for i, t := range rankTracks {
			for _, si := range byTrack[t] {
				if spans[si].Name == kind {
					perTrack[i] = append(perTrack[i], si)
				}
			}
			if len(perTrack[i]) > max {
				max = len(perTrack[i])
			}
		}
		for k := 0; k < max; k++ {
			members := make([]int, 0, len(rankTracks)) // span indices
			for i := range rankTracks {
				if k < len(perTrack[i]) {
					members = append(members, perTrack[i][k])
				}
			}
			if len(members) < 2 {
				continue
			}
			var last time.Duration
			for _, si := range members {
				if s := spans[si].Start; s > last {
					last = s
				}
			}
			for _, si := range members {
				m := spans[si]
				cutAt := last
				if cutAt < m.Start {
					cutAt = m.Start
				}
				if e := m.End(); cutAt > e {
					cutAt = e
				}
				b.mark(m.TrackID, m.Start, cutAt, CatCollWait)
				for _, sj := range members {
					if si == sj {
						continue
					}
					n := spans[sj]
					b.pending = append(b.pending, pendingEdge{
						fromTrack: n.TrackID, fromTime: n.Start, toTrack: m.TrackID, toTime: cutAt, kind: EdgeColl})
				}
			}
		}
	}
}

// assemble segments every track at its cut points, owns each segment to
// its innermost span, then materializes sequence and pending edges.
func (b *builder) assemble() (*Graph, error) {
	g := &Graph{TrackNames: b.trackNames}
	g.byTrack = make([][]int, len(b.trackNames))
	spans, segs := b.spans, g.byTrack
	for t, idx := range b.byTrack {
		if len(idx) == 0 {
			continue
		}
		cuts := make([]time.Duration, 0, len(b.cuts[t]))
		for c := range b.cuts[t] {
			cuts = append(cuts, c)
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
		marks := b.marks[t]

		active := make([]int, 0, 8)
		next := 0 // next span (in start order) not yet activated
		for ci := 0; ci+1 < len(cuts); ci++ {
			a, c := cuts[ci], cuts[ci+1]
			for next < len(idx) && spans[idx[next]].Start <= a {
				active = append(active, idx[next])
				next++
			}
			keep := active[:0]
			for _, si := range active {
				if spans[si].End() > a {
					keep = append(keep, si)
				}
			}
			active = keep
			if len(active) == 0 {
				continue
			}
			// Every remaining span covers [a,c): starts are cuts ≤ a and
			// ends are cuts > a, hence ≥ c. Owner = innermost.
			owner := active[0]
			for _, si := range active[1:] {
				sp, best := spans[si], spans[owner]
				if sp.Start > best.Start || (sp.Start == best.Start && sp.Dur < best.Dur) {
					owner = si
				}
			}
			n := Node{
				ID: len(g.Nodes), Track: t, Name: spans[owner].Name,
				Start: a, End: c, Cat: CatCompute,
			}
			for _, m := range marks {
				if m.lo <= a && c <= m.hi {
					n.Elastic, n.Cat = true, m.cat
					break
				}
			}
			segs[t] = append(segs[t], n.ID)
			g.Nodes = append(g.Nodes, n)
		}
	}
	if len(g.Nodes) == 0 {
		return g, nil
	}

	g.MinStart, g.Makespan = g.Nodes[0].Start, 0
	for _, n := range g.Nodes {
		if n.Start < g.MinStart {
			g.MinStart = n.Start
		}
		if n.End > g.Makespan {
			g.Makespan = n.End
		}
	}

	es := NewEdgeSet(len(g.Nodes) + len(b.pending))
	for _, ids := range g.byTrack {
		for i := 1; i < len(ids); i++ {
			if _, fresh := es.Add(Edge{From: ids[i-1], To: ids[i], Kind: EdgeSeq}); fresh {
				g.Edges = append(g.Edges, Edge{From: ids[i-1], To: ids[i], Kind: EdgeSeq})
			}
		}
	}
	for _, pe := range b.pending {
		from, okF := g.lastEndingBy(pe.fromTrack, pe.fromTime)
		to, okT := g.firstStartingAt(pe.toTrack, pe.toTime)
		if !okF || !okT || from == to {
			continue
		}
		if g.Nodes[from].End > g.Nodes[to].Start {
			continue // inconsistent timestamps: drop rather than risk a cycle
		}
		e := Edge{From: from, To: to, Kind: pe.kind, Stolen: pe.stolen}
		if _, fresh := es.Add(e); fresh {
			g.Edges = append(g.Edges, e)
		}
	}

	g.preds = make([][]int, len(g.Nodes))
	g.succs = make([][]int, len(g.Nodes))
	for ei, e := range g.Edges {
		g.preds[e.To] = append(g.preds[e.To], ei)
		g.succs[e.From] = append(g.succs[e.From], ei)
	}
	return g, nil
}

// EdgeSet interns materialized edges. Collective episodes and
// overlap-clustered sched regions can resolve many pending edges to the
// same (from, to, kind) triple; duplicates would double-count
// predecessors in every later pass, so each triple is kept once. Edge
// is a comparable value, so the hit path is a single map probe and
// allocation-free (gated in BenchmarkSmoke).
type EdgeSet struct {
	ids map[Edge]int
}

func NewEdgeSet(capacity int) *EdgeSet {
	return &EdgeSet{ids: make(map[Edge]int, capacity)}
}

// Add interns e, returning its index and whether it was newly added.
func (s *EdgeSet) Add(e Edge) (int, bool) {
	if id, ok := s.ids[e]; ok {
		return id, false
	}
	id := len(s.ids)
	s.ids[e] = id
	return id, true
}

// lastEndingBy returns the last node on the track with End ≤ at.
func (g *Graph) lastEndingBy(track int, at time.Duration) (int, bool) {
	ids := g.byTrack[track]
	i := sort.Search(len(ids), func(i int) bool { return g.Nodes[ids[i]].End > at })
	if i == 0 {
		return 0, false
	}
	return ids[i-1], true
}

// firstStartingAt returns the first node on the track with Start ≥ at.
func (g *Graph) firstStartingAt(track int, at time.Duration) (int, bool) {
	ids := g.byTrack[track]
	i := sort.Search(len(ids), func(i int) bool { return g.Nodes[ids[i]].Start >= at })
	if i == len(ids) {
		return 0, false
	}
	return ids[i], true
}

// parseRank extracts N from "rank N".
func parseRank(trackName string) (int, bool) {
	rest, ok := strings.CutPrefix(trackName, "rank ")
	if !ok || len(rest) == 0 {
		return 0, false
	}
	n := 0
	for _, r := range rest {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	return n, true
}

// argInt reads an integer-valued arg, tolerating the int/int64/uint64
// a live session stores and the float64 a JSON import produces.
func argInt(args map[string]any, key string) (int64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int64:
		return x, true
	case uint64:
		return int64(x), true
	case float64:
		return int64(x), true
	}
	return 0, false
}

// argBool reads a boolean arg, tolerating JSON's bool and the string a
// generic exporter might have produced.
func argBool(args map[string]any, key string) (bool, bool) {
	v, ok := args[key]
	if !ok {
		return false, false
	}
	switch x := v.(type) {
	case bool:
		return x, true
	case string:
		return x == "true", true
	}
	return false, false
}
