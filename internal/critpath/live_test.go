package critpath

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"perfeng/internal/obs"
	"perfeng/internal/sched"
)

// TestLiveSchedSession runs a real parallel region with the provenance
// observer attached and analyzes the resulting session: fork edges must
// exist, the path must tile, and the region's join structure must hang
// off the host span that submitted it.
func TestLiveSchedSession(t *testing.T) {
	s := obs.NewSession("live-sched")
	pool := sched.New(4)
	defer pool.Close()
	pool.Observe(obs.NewSchedObserver(s))
	defer pool.Observe(nil)

	host := s.Track("host")
	err := host.Span("region", func() {
		pool.ForPolicy(sched.PolicyStealing, 1<<14, 128, func(lo, hi int) {
			x := 0.0
			for i := lo; i < hi; i++ {
				x += float64(i)
			}
			_ = x
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Analyze(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireTiling(t, rep)
	var forks, joins int
	for _, e := range rep.Graph.Edges {
		switch e.Kind {
		case EdgeFork:
			forks++
		case EdgeJoin:
			joins++
		}
	}
	if forks == 0 || joins == 0 {
		t.Fatalf("sched region produced no fork/join edges (forks=%d joins=%d)", forks, joins)
	}
	// Every task span must be reachable as a node; the submitter's wait
	// inside the region must be elastic.
	var elastic int
	for _, n := range rep.Graph.Nodes {
		if n.Elastic && n.Cat == CatJoinWait {
			elastic++
		}
	}
	if elastic == 0 {
		t.Fatal("submitting span was not split into an elastic join-wait segment")
	}
}

// TestAnalyzeWhileRecording hammers Analyze against a session that
// producers are still appending to — the flight-recorder / monitoring
// use case. Run under -race this is the snapshot-isolation proof.
func TestAnalyzeWhileRecording(t *testing.T) {
	s := obs.NewSession("concurrent")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := s.Track("rank " + strconv.Itoa(w))
			at := time.Duration(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.AddSpanOffsets("compute", nil, at, at+time.Microsecond, nil)
				if i%8 == 0 {
					tr.AddSpanOffsets("send", nil, at+time.Microsecond, at+2*time.Microsecond,
						map[string]any{"peer": (w + 1) % 4, "bytes": 8})
				}
				s.CounterSample("ops", float64(i))
				at += 3 * time.Microsecond
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		if _, err := Analyze(s, Options{}); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("analyze %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := Analyze(s, Options{}); err != nil {
		t.Fatal(err)
	}
}
