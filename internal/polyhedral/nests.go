package polyhedral

// Canonical nests used across the course material and this package's
// tests/benches.

// MatMulNest returns the (i, j, k) matrix-multiplication nest
// C[i][j] += A[i][k] * B[k][j] over n x n matrices.
func MatMulNest(n int) *Nest {
	return &Nest{
		Name:   "matmul",
		Bounds: []int{n, n, n},
		Accesses: []Access{
			{Array: "C", Index: []IndexExpr{{Iter: 0}, {Iter: 1}}, Write: false},
			{Array: "C", Index: []IndexExpr{{Iter: 0}, {Iter: 1}}, Write: true},
			{Array: "A", Index: []IndexExpr{{Iter: 0}, {Iter: 2}}},
			{Array: "B", Index: []IndexExpr{{Iter: 2}, {Iter: 1}}},
		},
	}
}

// SeidelNest returns the in-place Gauss-Seidel-style sweep
// A[i][j] = f(A[i-1][j], A[i][j-1]) over an n x n interior: dependence
// distances (1,0) and (0,1) — fully permutable, tilable.
func SeidelNest(n int) *Nest {
	return &Nest{
		Name:   "seidel",
		Bounds: []int{n, n},
		Accesses: []Access{
			{Array: "A", Index: []IndexExpr{{Iter: 0}, {Iter: 1}}, Write: true},
			{Array: "A", Index: []IndexExpr{{Iter: 0, Const: -1}, {Iter: 1}}},
			{Array: "A", Index: []IndexExpr{{Iter: 0}, {Iter: 1, Const: -1}}},
		},
	}
}

// AntiDiagonalNest returns the nest A[i][j] = f(A[i+1][j-1]) whose
// anti-dependence distance (1,-1) makes both interchange and tiling
// illegal — the canonical counterexample.
func AntiDiagonalNest(n int) *Nest {
	return &Nest{
		Name:   "anti-diagonal",
		Bounds: []int{n, n},
		Accesses: []Access{
			{Array: "A", Index: []IndexExpr{{Iter: 0}, {Iter: 1}}, Write: true},
			{Array: "A", Index: []IndexExpr{{Iter: 0, Const: 1}, {Iter: 1, Const: -1}}},
		},
	}
}

// JacobiNest returns the two-array Jacobi sweep B[i][j] = f(A[...]) with
// no loop-carried dependences at all: every schedule is legal.
func JacobiNest(n int) *Nest {
	return &Nest{
		Name:   "jacobi",
		Bounds: []int{n, n},
		Accesses: []Access{
			{Array: "B", Index: []IndexExpr{{Iter: 0}, {Iter: 1}}, Write: true},
			{Array: "A", Index: []IndexExpr{{Iter: 0, Const: -1}, {Iter: 1}}},
			{Array: "A", Index: []IndexExpr{{Iter: 0, Const: 1}, {Iter: 1}}},
			{Array: "A", Index: []IndexExpr{{Iter: 0}, {Iter: 1, Const: -1}}},
			{Array: "A", Index: []IndexExpr{{Iter: 0}, {Iter: 1, Const: 1}}},
		},
	}
}
