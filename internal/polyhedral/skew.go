package polyhedral

import (
	"errors"
	"fmt"
)

// Loop skewing: the transformation that turns the anti-diagonal nest's
// (1,-1) dependence into (1, f-1) >= 0, making wavefront parallelism and
// tiling legal — the canonical "enabling transformation" of the
// polyhedral lectures. Skewing is always legal (it is a unimodular change
// of basis); its value is what it does to the distance vectors.

// SkewDistances returns the dependences transformed by skewing loop
// `target` by factor f with respect to loop `source`:
// d'[target] = d[target] + f * d[source]. Free entries stay free; a free
// source entry makes the target entry free too (its contribution is
// unbounded).
func SkewDistances(deps []Dependence, source, target int, f int) ([]Dependence, error) {
	if source == target {
		return nil, errors.New("polyhedral: skew source and target must differ")
	}
	out := make([]Dependence, len(deps))
	for i, d := range deps {
		if source < 0 || source >= len(d.Distance) || target < 0 || target >= len(d.Distance) {
			return nil, fmt.Errorf("polyhedral: skew loops (%d,%d) out of range for depth %d",
				source, target, len(d.Distance))
		}
		nd := Dependence{Array: d.Array, Kind: d.Kind,
			Distance: append([]Entry(nil), d.Distance...)}
		s, t := d.Distance[source], d.Distance[target]
		switch {
		case t.Free || s.Free:
			nd.Distance[target] = Entry{Free: true}
		default:
			nd.Distance[target] = Entry{Val: t.Val + f*s.Val}
		}
		out[i] = nd
	}
	return out, nil
}

// SkewedSchedule executes a depth-2 nest in skewed coordinates
// (i, j + f*i), optionally tiled in the skewed space, calling body with
// ORIGINAL iteration vectors. Skewing preserves semantics for any f when
// the skewed loops execute in lexicographic order of (i, j+f*i) —
// what this executor does.
type SkewedSchedule struct {
	// F is the skew factor applied to the inner loop w.r.t. the outer.
	F int
	// Tile are tile sizes in skewed coordinates (0/nil = untiled).
	Tile []int
}

// ExecuteSkewed runs body over the rectangular 2D domain in skewed order.
func ExecuteSkewed(bounds []int, s SkewedSchedule, body func(iv []int)) error {
	if len(bounds) != 2 {
		return errors.New("polyhedral: skewed execution supports depth-2 nests")
	}
	ni, nj := bounds[0], bounds[1]
	f := s.F
	// Skewed inner coordinate j' = j + f*i ranges over [min, max).
	minJ, maxJ := 0, nj
	if f > 0 {
		maxJ = nj + f*(ni-1)
	} else if f < 0 {
		minJ = f * (ni - 1)
	}
	tileI, tileJ := 0, 0
	if len(s.Tile) == 2 {
		tileI, tileJ = s.Tile[0], s.Tile[1]
	} else if s.Tile != nil {
		return errors.New("polyhedral: skewed tile vector must have 2 entries")
	}
	if tileI <= 0 {
		tileI = ni
	}
	if tileJ <= 0 {
		tileJ = maxJ - minJ
	}
	iv := make([]int, 2)
	// Tiles over skewed space; within a tile, lexicographic (i, j').
	// Lexicographic (tile_jp, tile_i, i, j') order: for the wavefront
	// property, tiles along j' must advance together — iterate tile rows
	// of j' outermost is NOT generally legal; legal tiled order is
	// lexicographic in skewed coordinates: (ti, tj, i, j').
	for ti := 0; ti < ni; ti += tileI {
		for tj := minJ; tj < maxJ; tj += tileJ {
			for i := ti; i < minIntP(ti+tileI, ni); i++ {
				lo := tj
				if lo < f*i {
					lo = f * i
				}
				hi := tj + tileJ
				if hi > f*i+nj {
					hi = f*i + nj
				}
				for jp := lo; jp < hi; jp++ {
					iv[0] = i
					iv[1] = jp - f*i
					body(iv)
				}
			}
		}
	}
	return nil
}

func minIntP(a, b int) int {
	if a < b {
		return a
	}
	return b
}
