package polyhedral

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := MatMulNest(4).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Nest{}).Validate(); err == nil {
		t.Fatal("empty nest must fail")
	}
	bad := &Nest{Bounds: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bound must fail")
	}
	badIter := &Nest{Bounds: []int{4},
		Accesses: []Access{{Array: "A", Index: []IndexExpr{{Iter: 7}}}}}
	if err := badIter.Validate(); err == nil {
		t.Fatal("bad iterator must fail")
	}
}

func TestMatMulDependences(t *testing.T) {
	deps, err := Dependences(MatMulNest(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) == 0 {
		t.Fatal("matmul must have C dependences")
	}
	for _, d := range deps {
		if d.Array != "C" {
			t.Fatalf("unexpected dependence on %s", d.Array)
		}
		// i and j distances are exactly 0; k is free.
		if d.Distance[0].Free || d.Distance[0].Val != 0 ||
			d.Distance[1].Free || d.Distance[1].Val != 0 ||
			!d.Distance[2].Free {
			t.Fatalf("matmul distance wrong: %v", d)
		}
	}
	// All six permutations are legal; tiling is legal.
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		ok, err := PermutationLegal(deps, p)
		if err != nil || !ok {
			t.Fatalf("perm %v should be legal (%v)", p, err)
		}
	}
	if !TilingLegal(deps) {
		t.Fatal("matmul tiling should be legal")
	}
}

func TestSeidelDependences(t *testing.T) {
	deps, err := Dependences(SeidelNest(8))
	if err != nil {
		t.Fatal(err)
	}
	// Must include flow deps with distances (1,0) and (0,1).
	found10, found01 := false, false
	for _, d := range deps {
		if d.Kind != Flow {
			continue
		}
		if !d.Distance[0].Free && !d.Distance[1].Free {
			if d.Distance[0].Val == 1 && d.Distance[1].Val == 0 {
				found10 = true
			}
			if d.Distance[0].Val == 0 && d.Distance[1].Val == 1 {
				found01 = true
			}
		}
	}
	if !found10 || !found01 {
		t.Fatalf("seidel flow deps missing: %v", deps)
	}
	ok, _ := PermutationLegal(deps, []int{1, 0})
	if !ok {
		t.Fatal("seidel interchange should be legal")
	}
	if !TilingLegal(deps) {
		t.Fatal("seidel tiling should be legal")
	}
}

func TestAntiDiagonalIllegal(t *testing.T) {
	deps, err := Dependences(AntiDiagonalNest(8))
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := PermutationLegal(deps, []int{1, 0})
	if ok {
		t.Fatal("anti-diagonal interchange must be illegal")
	}
	if TilingLegal(deps) {
		t.Fatal("anti-diagonal tiling must be illegal")
	}
	// Identity stays legal, of course.
	ok, _ = PermutationLegal(deps, []int{0, 1})
	if !ok {
		t.Fatal("identity must stay legal")
	}
}

func TestJacobiNoDeps(t *testing.T) {
	deps, err := Dependences(JacobiNest(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 0 {
		t.Fatalf("jacobi should have no loop-carried deps, got %v", deps)
	}
	if !TilingLegal(deps) {
		t.Fatal("jacobi must be tilable")
	}
}

func TestPermutationValidation(t *testing.T) {
	deps, _ := Dependences(SeidelNest(4))
	if _, err := PermutationLegal(deps, []int{0}); err == nil {
		t.Fatal("wrong-length perm must fail")
	}
	if _, err := PermutationLegal(deps, []int{0, 0}); err == nil {
		t.Fatal("non-permutation must fail")
	}
}

func TestDependenceString(t *testing.T) {
	deps, _ := Dependences(SeidelNest(4))
	s := deps[0].String()
	if !strings.Contains(s, "dep on A") {
		t.Fatalf("String = %q", s)
	}
}

// seidelRun executes the Seidel computation under a schedule and returns
// the resulting grid.
func seidelRun(n int, s Schedule) ([]float64, error) {
	// Grid with halo of 1 on top/left; iterators map to interior cells.
	w := n + 1
	a := make([]float64, w*(n+1))
	for i := range a {
		a[i] = float64(i % 7)
	}
	err := Execute([]int{n, n}, s, func(iv []int) {
		i, j := iv[0]+1, iv[1]+1
		a[i*w+j] = 0.5 * (a[(i-1)*w+j] + a[i*w+j-1])
	})
	return a, err
}

func TestExecuteLegalScheduleEquivalence(t *testing.T) {
	n := 12
	base, err := seidelRun(n, Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	// Interchange (legal for Seidel).
	inter, err := seidelRun(n, Schedule{Perm: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != inter[i] {
			t.Fatalf("legal interchange changed results at %d", i)
		}
	}
	// Tiled (legal for Seidel).
	tiled, err := seidelRun(n, Schedule{Perm: []int{0, 1}, Tile: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != tiled[i] {
			t.Fatalf("legal tiling changed results at %d", i)
		}
	}
}

// antiRun executes the anti-diagonal computation under a schedule.
func antiRun(n int, s Schedule) ([]float64, error) {
	w := n + 2
	a := make([]float64, w*w)
	for i := range a {
		a[i] = float64(i%5) + 1
	}
	err := Execute([]int{n, n}, s, func(iv []int) {
		i, j := iv[0], iv[1]+1
		a[i*w+j] = a[i*w+j] + 2*a[(i+1)*w+j-1]
	})
	return a, err
}

func TestExecuteIllegalScheduleDiverges(t *testing.T) {
	n := 8
	base, err := antiRun(n, Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	inter, err := antiRun(n, Schedule{Perm: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range base {
		if base[i] != inter[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("illegal interchange should have changed the result")
	}
}

func TestExecuteCoversDomainOnce(t *testing.T) {
	bounds := []int{3, 4, 5}
	count := make(map[[3]int]int)
	err := Execute(bounds, Schedule{Perm: []int{2, 0, 1}, Tile: []int{2, 0, 3}},
		func(iv []int) {
			count[[3]int{iv[0], iv[1], iv[2]}]++
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(count) != 3*4*5 {
		t.Fatalf("covered %d points, want 60", len(count))
	}
	for k, c := range count {
		if c != 1 {
			t.Fatalf("point %v visited %d times", k, c)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	if err := Execute([]int{2}, Schedule{Perm: []int{0, 1}}, func([]int) {}); err == nil {
		t.Fatal("depth mismatch must fail")
	}
	if err := Execute([]int{2, 2}, Schedule{Perm: []int{0, 0}}, func([]int) {}); err == nil {
		t.Fatal("bad permutation must fail")
	}
	if err := Execute([]int{2, 2}, Schedule{Perm: []int{0, 1}, Tile: []int{2}}, func([]int) {}); err == nil {
		t.Fatal("tile length mismatch must fail")
	}
}

// Property: every schedule (any permutation, any tile sizes) enumerates
// the full domain exactly once — schedules only reorder.
func TestQuickScheduleIsBijection(t *testing.T) {
	f := func(permSeed, tileSeed uint8) bool {
		perms := [][]int{{0, 1}, {1, 0}}
		perm := perms[int(permSeed)%2]
		tiles := [][]int{nil, {2, 3}, {0, 2}, {5, 5}}
		tile := tiles[int(tileSeed)%4]
		visits := 0
		seen := make(map[[2]int]bool)
		err := Execute([]int{5, 7}, Schedule{Perm: perm, Tile: tile}, func(iv []int) {
			visits++
			seen[[2]int{iv[0], iv[1]}] = true
		})
		return err == nil && visits == 35 && len(seen) == 35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
