package polyhedral

import (
	"testing"
	"testing/quick"
)

func TestSkewDistancesAntiDiagonal(t *testing.T) {
	deps, err := Dependences(AntiDiagonalNest(8))
	if err != nil {
		t.Fatal(err)
	}
	if TilingLegal(deps) {
		t.Fatal("unskewed anti-diagonal must not be tilable")
	}
	// Skew inner (1) by outer (0) with f=1: (1,-1) -> (1,0).
	skewed, err := SkewDistances(deps, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !TilingLegal(skewed) {
		t.Fatalf("skewed anti-diagonal must be tilable: %v", skewed)
	}
	// Insufficient skew keeps it illegal.
	zero, _ := SkewDistances(deps, 0, 1, 0)
	if TilingLegal(zero) {
		t.Fatal("f=0 is the identity; still illegal")
	}
}

func TestSkewDistancesFreeEntries(t *testing.T) {
	deps, _ := Dependences(MatMulNest(4))
	// Skew j (1) by k (2): k is free, so j becomes free.
	skewed, err := SkewDistances(deps, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range skewed {
		if !d.Distance[1].Free {
			t.Fatalf("target of free-source skew must be free: %v", d)
		}
	}
}

func TestSkewDistancesErrors(t *testing.T) {
	deps, _ := Dependences(SeidelNest(4))
	if _, err := SkewDistances(deps, 1, 1, 1); err == nil {
		t.Fatal("source == target must fail")
	}
	if _, err := SkewDistances(deps, 0, 7, 1); err == nil {
		t.Fatal("out-of-range loop must fail")
	}
}

// antiRunSkewed executes the anti-diagonal computation under a skewed
// schedule.
func antiRunSkewed(n int, s SkewedSchedule) ([]float64, error) {
	w := n + 2
	a := make([]float64, w*w)
	for i := range a {
		a[i] = float64(i%5) + 1
	}
	err := ExecuteSkewed([]int{n, n}, s, func(iv []int) {
		i, j := iv[0], iv[1]+1
		a[i*w+j] = a[i*w+j] + 2*a[(i+1)*w+j-1]
	})
	return a, err
}

func TestSkewEnablesTilingEmpirically(t *testing.T) {
	n := 12
	base, err := antiRun(n, Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	// Rectangular tiling in original coordinates is illegal and diverges.
	tiled, err := antiRun(n, Schedule{Perm: []int{0, 1}, Tile: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range base {
		if base[i] != tiled[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("unskewed tiling should have diverged (it is illegal)")
	}
	// Skewing by f=1 makes tiling legal: skewed-tiled matches identity.
	for _, tile := range [][]int{nil, {4, 4}, {3, 5}, {12, 100}} {
		skewed, err := antiRunSkewed(n, SkewedSchedule{F: 1, Tile: tile})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if base[i] != skewed[i] {
				t.Fatalf("skewed tile=%v diverged at %d", tile, i)
			}
		}
	}
}

func TestExecuteSkewedCoversDomain(t *testing.T) {
	for _, f := range []int{-2, -1, 0, 1, 3} {
		count := make(map[[2]int]int)
		err := ExecuteSkewed([]int{5, 7}, SkewedSchedule{F: f, Tile: []int{2, 3}},
			func(iv []int) {
				count[[2]int{iv[0], iv[1]}]++
			})
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if len(count) != 35 {
			t.Fatalf("f=%d covered %d points", f, len(count))
		}
		for k, c := range count {
			if c != 1 {
				t.Fatalf("f=%d point %v visited %d times", f, k, c)
			}
		}
	}
}

func TestExecuteSkewedErrors(t *testing.T) {
	if err := ExecuteSkewed([]int{2, 2, 2}, SkewedSchedule{}, func([]int) {}); err == nil {
		t.Fatal("depth != 2 must fail")
	}
	if err := ExecuteSkewed([]int{2, 2}, SkewedSchedule{Tile: []int{1}}, func([]int) {}); err == nil {
		t.Fatal("bad tile vector must fail")
	}
}

// Property: skewed execution with any factor and tiling visits each point
// exactly once (it is a bijection on the domain).
func TestQuickSkewBijection(t *testing.T) {
	f := func(fRaw int8, tiRaw, tjRaw uint8) bool {
		factor := int(fRaw % 4)
		ti := int(tiRaw%5) + 1
		tj := int(tjRaw%7) + 1
		visits := 0
		err := ExecuteSkewed([]int{4, 6}, SkewedSchedule{F: factor, Tile: []int{ti, tj}},
			func([]int) { visits++ })
		return err == nil && visits == 24
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
