// Package polyhedral implements the polyhedral-model topic of the course
// (taught from the HiPEAC tutorial): affine loop nests over rectangular
// iteration domains, dependence analysis producing distance vectors, the
// classic legality tests for loop interchange and tiling, and an executor
// that runs a nest under a transformed schedule so legality can be
// verified empirically (transformed results must equal the original).
//
// The model is deliberately the teachable core of the theory: accesses are
// affine selections (each array subscript is one loop iterator plus a
// constant), which covers matmul, stencils and Game-of-Life-style kernels
// — the nests students actually transform in the course.
package polyhedral

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// IndexExpr is one array subscript: iterator Iter (by loop depth) plus
// Const. Iter == -1 denotes a constant subscript.
type IndexExpr struct {
	Iter  int
	Const int
}

// Access is one array reference in the loop body.
type Access struct {
	Array string
	Index []IndexExpr
	Write bool
}

// Nest is a perfect rectangular loop nest with a single statement.
type Nest struct {
	Name string
	// Bounds[i] is the trip count of loop i (iterators run 0..Bounds[i]).
	Bounds   []int
	Accesses []Access
}

// Depth returns the nest depth.
func (n *Nest) Depth() int { return len(n.Bounds) }

// Validate checks iterator references and bounds.
func (n *Nest) Validate() error {
	if n.Depth() == 0 {
		return errors.New("polyhedral: empty nest")
	}
	for _, b := range n.Bounds {
		if b <= 0 {
			return errors.New("polyhedral: non-positive bound")
		}
	}
	for _, a := range n.Accesses {
		for _, ix := range a.Index {
			if ix.Iter < -1 || ix.Iter >= n.Depth() {
				return fmt.Errorf("polyhedral: access %s references iterator %d", a.Array, ix.Iter)
			}
		}
	}
	return nil
}

// DepKind classifies a dependence.
type DepKind int

// Dependence kinds.
const (
	Flow   DepKind = iota // write -> read
	Anti                  // read -> write
	Output                // write -> write
)

// String implements fmt.Stringer.
func (k DepKind) String() string { return [...]string{"flow", "anti", "output"}[k] }

// Entry is one component of a distance vector: either an exact integer or
// free (unconstrained by the subscripts, taking any value).
type Entry struct {
	Free bool
	Val  int
}

// String implements fmt.Stringer.
func (e Entry) String() string {
	if e.Free {
		return "*"
	}
	return fmt.Sprintf("%d", e.Val)
}

// Dependence is one dependence class between two accesses, characterized
// by a (possibly partially free) distance vector in original loop order.
type Dependence struct {
	Array    string
	Kind     DepKind
	Distance []Entry
}

// String implements fmt.Stringer.
func (d Dependence) String() string {
	parts := make([]string, len(d.Distance))
	for i, e := range d.Distance {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s dep on %s: (%s)", d.Kind, d.Array, strings.Join(parts, ","))
}

// Dependences computes the dependence classes of the nest: for every pair
// of accesses to the same array with at least one write, the distance
// vector implied by equating subscripts. Pairs whose subscripts can never
// be equal (constant mismatch) produce no dependence.
func Dependences(n *Nest) ([]Dependence, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	out := make([]Dependence, 0, len(n.Accesses))
	seen := make(map[string]bool)
	for i, src := range n.Accesses {
		for j, dst := range n.Accesses {
			if i == j && !src.Write {
				continue
			}
			if src.Array != dst.Array {
				continue
			}
			if !src.Write && !dst.Write {
				continue
			}
			var kind DepKind
			switch {
			case src.Write && dst.Write:
				kind = Output
			case src.Write:
				kind = Flow
			default:
				kind = Anti
			}
			dist, possible := distance(n.Depth(), src, dst)
			if !possible {
				continue
			}
			// A vector with no lexicographically positive instance (e.g.
			// the exact-zero self pair) constrains nothing: same
			// iteration, not a loop-carried dependence.
			if len(instantiations(dist)) == 0 {
				continue
			}
			//perfvet:ignore:hotloopalloc dedup key formats a distance-vector slice; fmt.Sprint is the clearest encoding and Dependences runs once per nest, not per iteration
			key := fmt.Sprintf("%s|%v|%v", src.Array, kind, dist)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Dependence{Array: src.Array, Kind: kind, Distance: dist})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].String() < out[b].String()
	})
	return out, nil
}

// distance equates subscripts of src (source iteration S) and dst (target
// iteration T) and solves for d = T - S per dimension. Returns ok=false
// when the subscripts are incompatible (no dependence).
func distance(depth int, src, dst Access) ([]Entry, bool) {
	// Entries start Free and flip to exact when a subscript constrains
	// them; Free doubles as the "not yet constrained" marker so no
	// side table is needed (distance runs per access pair).
	dist := make([]Entry, depth)
	for k := range dist {
		dist[k].Free = true
	}
	// Subscript k: S[src.Iter]+src.Const == T[dst.Iter]+dst.Const.
	if len(src.Index) != len(dst.Index) {
		return nil, false
	}
	for k := range src.Index {
		si, di := src.Index[k], dst.Index[k]
		switch {
		case si.Iter == -1 && di.Iter == -1:
			if si.Const != di.Const {
				return nil, false
			}
		case si.Iter == -1 || di.Iter == -1:
			// One constant subscript, one iterator: the iterator is
			// pinned to a single value — dependence exists only at that
			// value; treat the dimension as exact-zero-information,
			// conservatively free.
			continue
		case si.Iter == di.Iter:
			// d[iter] = S - T? We want T - S: s + cS = t + cT =>
			// t - s = cS - cT.
			d := si.Const - di.Const
			it := si.Iter
			if !dist[it].Free && dist[it].Val != d {
				return nil, false
			}
			dist[it] = Entry{Val: d}
		default:
			// Different iterators in the same subscript (e.g. A[i] vs
			// A[j]): couples two dimensions; conservatively mark both
			// free.
			continue
		}
	}
	return dist, true
}

// instantiations expands the free entries of a distance vector into
// representative sign patterns {-1, 0, +1} and returns only the
// lexicographically positive concrete vectors — the actual dependence
// instances that constrain scheduling (lex-negative instances belong to
// the symmetric pair, lex-zero is the same iteration).
func instantiations(dist []Entry) [][]int {
	var out [][]int
	var rec func(i int, cur []int)
	rec = func(i int, cur []int) {
		if i == len(dist) {
			if lexPositive(cur) {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		if dist[i].Free {
			for _, v := range []int{-1, 0, 1} {
				rec(i+1, append(cur, v))
			}
			return
		}
		rec(i+1, append(cur, dist[i].Val))
	}
	rec(0, nil)
	return out
}

func lexPositive(v []int) bool {
	for _, x := range v {
		if x > 0 {
			return true
		}
		if x < 0 {
			return false
		}
	}
	return false
}

// PermutationLegal reports whether executing the nest with loops permuted
// by perm (perm[k] = original loop at new level k) preserves all
// dependences: every dependence instance must stay lexicographically
// positive in the new order.
func PermutationLegal(deps []Dependence, perm []int) (bool, error) {
	for _, d := range deps {
		if len(perm) != len(d.Distance) {
			return false, fmt.Errorf("polyhedral: perm length %d vs depth %d", len(perm), len(d.Distance))
		}
	}
	if err := checkPerm(perm); err != nil {
		return false, err
	}
	for _, d := range deps {
		for _, inst := range instantiations(d.Distance) {
			permuted := make([]int, len(inst))
			for k, orig := range perm {
				permuted[k] = inst[orig]
			}
			if !lexPositive(permuted) {
				return false, nil
			}
		}
	}
	return true, nil
}

func checkPerm(perm []int) error {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("polyhedral: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	return nil
}

// TilingLegal reports whether rectangular tiling of all loops is legal:
// the sufficient classical condition is full permutability — every
// dependence instance non-negative in every dimension.
func TilingLegal(deps []Dependence) bool {
	for _, d := range deps {
		for _, inst := range instantiations(d.Distance) {
			for _, x := range inst {
				if x < 0 {
					return false
				}
			}
		}
	}
	return true
}

// Schedule is a transformed execution order: a loop permutation plus
// optional tile sizes (0 = untiled) per (new-order) loop.
type Schedule struct {
	Perm []int
	Tile []int
}

// Identity returns the identity schedule for the given depth.
func Identity(depth int) Schedule {
	p := make([]int, depth)
	for i := range p {
		p[i] = i
	}
	return Schedule{Perm: p}
}

// Execute runs body over the rectangular domain in the schedule's order.
// body receives the iteration vector in ORIGINAL loop indexing.
func Execute(bounds []int, s Schedule, body func(iv []int)) error {
	depth := len(bounds)
	if len(s.Perm) != depth {
		return fmt.Errorf("polyhedral: schedule depth %d vs %d", len(s.Perm), depth)
	}
	if err := checkPerm(s.Perm); err != nil {
		return err
	}
	tile := s.Tile
	if tile == nil {
		tile = make([]int, depth)
	}
	if len(tile) != depth {
		return errors.New("polyhedral: tile vector length mismatch")
	}

	iv := make([]int, depth)
	// Tiled execution: outer tile loops then inner point loops, both in
	// permuted order.
	anyTiled := false
	for _, t := range tile {
		if t > 0 {
			anyTiled = true
		}
	}
	if !anyTiled {
		var rec func(level int)
		rec = func(level int) {
			if level == depth {
				body(iv)
				return
			}
			orig := s.Perm[level]
			for v := 0; v < bounds[orig]; v++ {
				iv[orig] = v
				rec(level + 1)
			}
		}
		rec(0)
		return nil
	}

	lo := make([]int, depth)
	var tiles func(level int)
	var points func(level int)
	points = func(level int) {
		if level == depth {
			body(iv)
			return
		}
		orig := s.Perm[level]
		t := tile[level]
		if t <= 0 {
			t = bounds[orig]
		}
		hi := lo[orig] + t
		if hi > bounds[orig] {
			hi = bounds[orig]
		}
		for v := lo[orig]; v < hi; v++ {
			iv[orig] = v
			points(level + 1)
		}
	}
	tiles = func(level int) {
		if level == depth {
			points(0)
			return
		}
		orig := s.Perm[level]
		t := tile[level]
		if t <= 0 {
			lo[orig] = 0
			tiles(level + 1)
			return
		}
		for v := 0; v < bounds[orig]; v += t {
			lo[orig] = v
			tiles(level + 1)
		}
	}
	tiles(0)
	return nil
}
