package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval. Samples outside
// [Lo, Hi] are counted in Under/Over rather than silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
// It panics if bins < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // x == Hi lands in the last bin
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records every sample of xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Mode returns the center of the fullest bin.
func (h *Histogram) Mode() float64 {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return h.Lo + (float64(best)+0.5)*h.BinWidth()
}

// String renders the histogram as an ASCII bar chart, one bin per line.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const width = 40
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*h.BinWidth()
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * width))
		}
		fmt.Fprintf(&sb, "[%10.4g, %10.4g) %6d %s\n",
			lo, lo+h.BinWidth(), c, strings.Repeat("#", bar))
	}
	return sb.String()
}
