package stats

import "math"

// CI is a two-sided confidence interval for a population mean.
type CI struct {
	Level float64 // e.g. 0.95
	Mean  float64
	Lo    float64
	Hi    float64
	Half  float64 // half-width: Hi-Mean == Mean-Lo
}

// Contains reports whether v lies inside the interval (inclusive).
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// RelativeHalfWidth returns Half/|Mean|, the common "measurement is stable
// when the 95% CI is within x% of the mean" criterion. It returns +Inf when
// the mean is zero and the half-width is not.
func (c CI) RelativeHalfWidth() float64 {
	if c.Mean == 0 {
		if c.Half == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return c.Half / math.Abs(c.Mean)
}

// MeanCI returns the confidence interval for the mean of xs at the given
// level (0 < level < 1) using the Student t distribution, the textbook
// procedure for small benchmark repetition counts.
func MeanCI(xs []float64, level float64) CI {
	n := len(xs)
	m := Mean(xs)
	if n < 2 {
		return CI{Level: level, Mean: m, Lo: m, Hi: m}
	}
	se := Stddev(xs) / math.Sqrt(float64(n))
	t := TInv(1-(1-level)/2, float64(n-1))
	h := t * se
	return CI{Level: level, Mean: m, Lo: m - h, Hi: m + h, Half: h}
}

// NormInv returns the quantile function (inverse CDF) of the standard normal
// distribution, using Acklam's rational approximation (relative error below
// 1.15e-9 over the full domain).
func NormInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// TInv returns the quantile function of the Student t distribution with df
// degrees of freedom, via the Cornish-Fisher-style expansion of Abramowitz &
// Stegun 26.7.5 around the normal quantile. Accuracy is better than 1% for
// df >= 3 and exact in the limit df -> inf; below df=3 a Newton refinement on
// the t CDF is applied.
func TInv(p, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := NormInv(p)
	g1 := (x*x*x + x) / 4
	g2 := (5*math.Pow(x, 5) + 16*x*x*x + 3*x) / 96
	g3 := (3*math.Pow(x, 7) + 19*math.Pow(x, 5) + 17*x*x*x - 15*x) / 384
	g4 := (79*math.Pow(x, 9) + 776*math.Pow(x, 7) + 1482*math.Pow(x, 5) -
		1920*x*x*x - 945*x) / 92160
	t := x + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
	// Newton refinement against the actual CDF handles very small df.
	for i := 0; i < 8; i++ {
		f := TCDF(t, df) - p
		pdf := tPDF(t, df)
		if pdf == 0 {
			break
		}
		step := f / pdf
		t -= step
		if math.Abs(step) < 1e-12*math.Max(1, math.Abs(t)) {
			break
		}
	}
	return t
}

// TCDF returns the CDF of the Student t distribution with df degrees of
// freedom at t, computed from the regularized incomplete beta function.
func TCDF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

func tPDF(t, df float64) float64 {
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	return math.Exp(lg1-lg2) / math.Sqrt(df*math.Pi) *
		math.Pow(1+t*t/df, -(df+1)/2)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a + b)
	lgb, _ := math.Lgamma(a)
	lgc, _ := math.Lgamma(b)
	front := math.Exp(lga - lgb - lgc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x /
			((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
