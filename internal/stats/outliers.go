package stats

import (
	"math"
	"sort"
)

// RejectIQR returns the samples of xs that fall inside
// [Q1 - k*IQR, Q3 + k*IQR], Tukey's fence with multiplier k (1.5 is the
// conventional value). The input is not modified; sample order is preserved.
func RejectIQR(xs []float64, k float64) []float64 {
	if len(xs) < 4 {
		return append([]float64(nil), xs...)
	}
	q1 := Percentile(xs, 25)
	q3 := Percentile(xs, 75)
	iqr := q3 - q1
	lo, hi := q1-k*iqr, q3+k*iqr
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	return out
}

// MAD returns the median absolute deviation of xs, a robust scale estimator.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// RejectMAD returns the samples whose distance from the median is at most
// k * 1.4826 * MAD (1.4826 scales MAD to the stddev of a normal
// distribution). With all-identical samples (MAD == 0) the input is returned
// unchanged.
func RejectMAD(xs []float64, k float64) []float64 {
	if len(xs) < 3 {
		return append([]float64(nil), xs...)
	}
	med := Median(xs)
	scale := 1.4826 * MAD(xs)
	if scale == 0 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-med) <= k*scale {
			out = append(out, x)
		}
	}
	return out
}

// TrimmedMean returns the mean of xs after discarding the frac fraction of
// samples at each extreme (0 <= frac < 0.5). A 10% trimmed mean is a common
// robust location estimator for noisy timing data.
func TrimmedMean(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if frac <= 0 {
		return Mean(xs)
	}
	if frac >= 0.5 {
		return Median(xs)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cut := int(frac * float64(len(sorted)))
	trimmed := sorted[cut : len(sorted)-cut]
	return Mean(trimmed)
}
