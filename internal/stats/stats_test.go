package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic dataset is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
	if got := Stddev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestMedianPercentile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("P25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestGeoHarmonicMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEq(got, 4, 1e-12) {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with negative should be NaN")
	}
	if got := HarmonicMean([]float64{1, 2}); !almostEq(got, 4.0/3.0, 1e-12) {
		t.Fatalf("HarmonicMean = %v, want 4/3", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Fatalf("Correlation = %v, %v; want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Correlation(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("Correlation = %v, want -1", r)
	}
	if _, err := Correlation(xs, xs[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("zero variance should error")
	}
}

func TestNormInv(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.95, 1.644854},
		{0.995, 2.575829},
	}
	for _, c := range cases {
		if got := NormInv(c.p); !almostEq(got, c.want, 1e-5) {
			t.Errorf("NormInv(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormInv(0), -1) || !math.IsInf(NormInv(1), 1) {
		t.Fatal("NormInv boundary behaviour wrong")
	}
}

func TestTInvAgainstTables(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct{ p, df, want float64 }{
		{0.975, 1, 12.7062},
		{0.975, 2, 4.30265},
		{0.975, 5, 2.57058},
		{0.975, 10, 2.22814},
		{0.975, 30, 2.04227},
		{0.95, 5, 2.01505},
		{0.995, 10, 3.16927},
	}
	for _, c := range cases {
		got := TInv(c.p, c.df)
		if !almostEq(got, c.want, 2e-3) {
			t.Errorf("TInv(%v,%v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTCDFInverseRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 4, 9, 25, 100} {
		for _, p := range []float64{0.6, 0.75, 0.9, 0.975, 0.999} {
			tt := TInv(p, df)
			back := TCDF(tt, df)
			if !almostEq(back, p, 1e-6) {
				t.Errorf("TCDF(TInv(%v,%v)) = %v", p, df, back)
			}
		}
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 10, 12, 9, 11, 10}
	ci := MeanCI(xs, 0.95)
	if !ci.Contains(ci.Mean) {
		t.Fatal("CI must contain the mean")
	}
	if ci.Lo >= ci.Hi {
		t.Fatal("CI must have positive width")
	}
	if !almostEq(ci.Hi-ci.Mean, ci.Mean-ci.Lo, 1e-9) {
		t.Fatal("CI must be symmetric around the mean")
	}
	single := MeanCI([]float64{5}, 0.95)
	if single.Lo != 5 || single.Hi != 5 {
		t.Fatal("single-sample CI should collapse to the point")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Empirical coverage check: 95% CIs over normal samples should contain
	// the true mean roughly 95% of the time.
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 12)
		for j := range xs {
			xs[j] = 7 + rng.NormFloat64()*2
		}
		if MeanCI(xs, 0.95).Contains(7) {
			hits++
		}
	}
	cov := float64(hits) / trials
	if cov < 0.90 || cov > 0.99 {
		t.Fatalf("empirical coverage %v outside [0.90, 0.99]", cov)
	}
}

func TestRejectIQR(t *testing.T) {
	xs := []float64{10, 11, 10, 12, 11, 10, 100}
	out := RejectIQR(xs, 1.5)
	for _, x := range out {
		if x == 100 {
			t.Fatal("outlier survived IQR rejection")
		}
	}
	if len(out) != len(xs)-1 {
		t.Fatalf("rejected too much: %v", out)
	}
	// Small inputs pass through unchanged.
	small := []float64{1, 2, 3}
	if got := RejectIQR(small, 1.5); len(got) != 3 {
		t.Fatal("small input should pass through")
	}
}

func TestRejectMAD(t *testing.T) {
	xs := []float64{10, 10.5, 9.5, 10.2, 9.8, 50}
	out := RejectMAD(xs, 3)
	for _, x := range out {
		if x == 50 {
			t.Fatal("outlier survived MAD rejection")
		}
	}
	same := []float64{4, 4, 4, 4}
	if got := RejectMAD(same, 3); len(got) != 4 {
		t.Fatal("identical samples must pass through (MAD==0)")
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if got := TrimmedMean(xs, 0.2); got != 3 {
		t.Fatalf("TrimmedMean = %v, want 3", got)
	}
	if got := TrimmedMean(xs, 0); got != Mean(xs) {
		t.Fatal("frac=0 should equal the mean")
	}
	if got := TrimmedMean(xs, 0.6); got != Median(xs) {
		t.Fatal("frac>=0.5 should equal the median")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if h.Total() != 11 {
		t.Fatalf("Total = %d, want 11", h.Total())
	}
	h.Add(-1)
	h.Add(11)
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("Under/Over = %d/%d", h.Under, h.Over)
	}
	// x == Hi must land in the last bin, not panic.
	if h.Counts[4] < 1 {
		t.Fatal("boundary sample missing from last bin")
	}
	if h.BinWidth() != 2 {
		t.Fatalf("BinWidth = %v", h.BinWidth())
	}
	if s := h.String(); len(s) == 0 {
		t.Fatal("String should render")
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{5.1, 5.2, 5.3, 1})
	if got := h.Mode(); got != 5.5 {
		t.Fatalf("Mode = %v, want 5.5", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewHistogram(0, 1, 0) })
	mustPanic(func() { NewHistogram(1, 1, 4) })
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
}

// Property: the mean lies between min and max for any non-empty sample.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is never negative and invariant under shifts.
func TestQuickVarianceShiftInvariant(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if math.IsNaN(shift) || math.Abs(shift) > 1e6 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		v1 := Variance(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		v2 := Variance(shifted)
		return v1 >= 0 && almostEq(v1, v2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples (in-range + under + over = added).
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 7)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		return h.Total()+h.Under+h.Over == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: outlier rejection never removes the median.
func TestQuickRejectKeepsMedian(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 4 {
			return true
		}
		med := Median(xs)
		out := RejectIQR(xs, 1.5)
		if len(out) == 0 {
			return false
		}
		return Min(out) <= med && med <= Max(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
