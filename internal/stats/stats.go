// Package stats provides the descriptive statistics, confidence intervals,
// outlier rejection, and histogram utilities used throughout the
// performance-engineering toolbox.
//
// Performance engineering is an empirical discipline: every measurement in
// this repository is reported with its dispersion and, where meaningful, a
// confidence interval, as the course's "Basics of performance" lectures
// require (correct measurement and communication of performance data).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Kahan summation keeps long benchmark series accurate.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (divisor n-1) of xs.
// It returns 0 when fewer than two samples are present.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefficientOfVariation returns stddev/mean, the standard dimensionless
// stability indicator for repeated performance measurements. It returns 0
// when the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Stddev(xs) / m
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Sum returns the Kahan-compensated sum of xs.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of xs. All samples must be positive;
// non-positive samples yield NaN, as the geometric mean is undefined there.
// The geometric mean is the correct way to average speedups across
// benchmarks (Fleming & Wallace).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs, the correct average for
// rates (e.g. bandwidths over equal volumes). Non-positive samples yield NaN.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var invSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		invSum += 1 / x
	}
	return float64(len(xs)) / invSum
}

// Summary bundles the descriptive statistics of one measurement series.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Stddev float64
	Min    float64
	Max    float64
	P5     float64
	P95    float64
	CV     float64 // coefficient of variation (stddev/mean)
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P5:     Percentile(xs, 5),
		P95:    Percentile(xs, 95),
		CV:     CoefficientOfVariation(xs),
	}
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns an error when the lengths differ or fewer than two pairs exist.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
