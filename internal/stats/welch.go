package stats

import (
	"errors"
	"math"
)

// Welch's unequal-variance t-test, exported here so every layer that
// compares repeated measurements — engagement verdicts (internal/metrics),
// the benchmark-regression gate (internal/benchgate), and future consumers
// of counter or simulator series — shares one implementation of the
// course's "is this difference noise?" question.

// ErrTooFewSamples is returned when a test needs more repetitions.
var ErrTooFewSamples = errors.New("stats: need >= 2 samples per side")

// Welch is the outcome of Welch's two-sample t-test.
type Welch struct {
	T  float64 // t statistic (mean(a) - mean(b), standardized)
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value for "the means differ"
}

// Significant reports whether the difference is significant at level alpha.
func (w Welch) Significant(alpha float64) bool { return w.P < alpha }

// WelchTTest runs Welch's unequal-variance t-test on two sample series.
// Both series need at least two samples. Two identical constant series
// yield P = 1 (no evidence of difference); two different constant series
// yield P = 0 (a difference with zero within-group variance).
func WelchTTest(a, b []float64) (Welch, error) {
	if len(a) < 2 || len(b) < 2 {
		return Welch{}, ErrTooFewSamples
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		if ma == mb {
			return Welch{P: 1}, nil
		}
		return Welch{T: math.Inf(1), P: 0}, nil
	}
	w := Welch{T: (ma - mb) / math.Sqrt(se2)}
	w.DF = se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	w.P = 2 * (1 - TCDF(math.Abs(w.T), w.DF))
	if w.P > 1 {
		w.P = 1
	}
	return w, nil
}
