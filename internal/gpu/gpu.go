// Package gpu provides the accelerator substrate of the course's
// heterogeneous-systems story: a SIMT-style device executor (grid/block/
// thread over a goroutine pool standing in for streaming multiprocessors)
// plus the occupancy, coalescing and offload performance models students
// apply to the "GPU as accelerator device to the CPU host" (Section 2.1).
//
// The executor is a functional substitute for CUDA, not a timing-accurate
// GPU simulator: it runs kernels with the CUDA execution geometry
// (gridDim/blockDim/blockIdx/threadIdx, per-block shared memory) so the
// course's GPU exercises can execute anywhere, while the analytical models
// in model.go answer the performance questions (what limits the kernel,
// is offload worthwhile) that the assignments pose.
package gpu

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"perfeng/internal/machine"

	"perfeng/internal/sched"
)

// Dim3 is the CUDA-style 3D geometry index.
type Dim3 struct {
	X, Y, Z int
}

// Count returns the number of points in the geometry.
func (d Dim3) Count() int { return d.X * d.Y * d.Z }

// valid reports whether all components are positive.
func (d Dim3) valid() bool { return d.X > 0 && d.Y > 0 && d.Z > 0 }

// Kernel is the device function: invoked once per thread with its block
// and thread indices and the block's shared memory.
type Kernel func(blockIdx, threadIdx Dim3, shared []float64)

// Recorder observes kernel execution for tracing: one KernelLaunch per
// launch (host-side view) and one KernelBlock per executed block on its
// worker "SM". Implementations must be safe for concurrent KernelBlock
// calls; the obs layer provides one that turns these into device-track
// spans with occupancy metadata.
type Recorder interface {
	KernelLaunch(name string, grid, block Dim3, sharedLen, workers int, start, end time.Time)
	KernelBlock(name string, worker int, blockIdx Dim3, start, end time.Time)
}

// Device executes kernels with the geometry of the modeled GPU.
type Device struct {
	Model machine.GPU
	// Workers is the number of concurrently executing blocks (defaults to
	// min(SMs, GOMAXPROCS)).
	Workers int
	// Recorder, when set, receives launch and per-block execution events.
	Recorder Recorder
}

// NewDevice creates a device for the model.
func NewDevice(model machine.GPU) (*Device, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	w := model.SMs
	if p := runtime.GOMAXPROCS(0); p < w {
		w = p
	}
	if w < 1 {
		w = 1
	}
	return &Device{Model: model, Workers: w}, nil
}

// Launch runs the kernel over grid x block threads. Each block gets a
// fresh shared-memory slice of sharedLen float64s. Threads within a block
// run sequentially in (z, y, x) order — the warp-synchronous
// approximation, which makes shared-memory reductions deterministic;
// blocks run concurrently, so cross-block communication must use atomics,
// as on real devices.
func (d *Device) Launch(grid, block Dim3, sharedLen int, kernel Kernel) error {
	return d.LaunchNamed("kernel", grid, block, sharedLen, kernel)
}

// LaunchNamed is Launch with a kernel name for the trace recorder, so a
// timeline shows "saxpy" rather than an anonymous launch.
func (d *Device) LaunchNamed(name string, grid, block Dim3, sharedLen int, kernel Kernel) error {
	if kernel == nil {
		return errors.New("gpu: nil kernel")
	}
	if !grid.valid() || !block.valid() {
		return fmt.Errorf("gpu: invalid geometry grid=%+v block=%+v", grid, block)
	}
	if block.Count() > d.Model.MaxThreadsPerSM {
		return fmt.Errorf("gpu: block of %d threads exceeds device limit %d",
			block.Count(), d.Model.MaxThreadsPerSM)
	}
	if sharedLen*8 > d.Model.SharedMemPerSMBytes {
		return fmt.Errorf("gpu: shared memory %dB exceeds per-SM limit %dB",
			sharedLen*8, d.Model.SharedMemPerSMBytes)
	}
	nBlocks := grid.Count()
	workers := d.Workers
	if workers > nBlocks {
		workers = nBlocks
	}
	rec := d.Recorder
	th := tel.Load()
	launchStart := time.Time{}
	if rec != nil || th != nil {
		launchStart = time.Now()
	}
	// Blocks are handed out dynamically from a shared counter; each lane of
	// the shared scheduler acts as one virtual SM, so at most d.Workers
	// blocks are in flight regardless of the pool's worker count.
	var next atomic.Int64
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("gpu: kernel panicked: %v", p)
			}
		}()
		sched.ParallelFor(workers, 1, func(lo, hi int) {
			for lane := lo; lane < hi; lane++ {
				for {
					i := int(next.Add(1)) - 1
					if i >= nBlocks {
						return
					}
					b := Dim3{X: i % grid.X, Y: (i / grid.X) % grid.Y, Z: i / (grid.X * grid.Y)}
					var shared []float64
					if sharedLen > 0 {
						shared = make([]float64, sharedLen)
					}
					var blockStart time.Time
					if rec != nil {
						blockStart = time.Now()
					}
					for tz := 0; tz < block.Z; tz++ {
						for ty := 0; ty < block.Y; ty++ {
							for tx := 0; tx < block.X; tx++ {
								kernel(b, Dim3{X: tx, Y: ty, Z: tz}, shared)
							}
						}
					}
					if rec != nil {
						rec.KernelBlock(name, lane, b, blockStart, time.Now())
					}
				}
			}
		})
		return nil
	}()
	if rec != nil || th != nil {
		launchEnd := time.Now()
		if rec != nil {
			rec.KernelLaunch(name, grid, block, sharedLen, workers, launchStart, launchEnd)
		}
		if th != nil {
			d.publishLaunch(th, name, grid, block, sharedLen, launchEnd.Sub(launchStart).Seconds())
		}
	}
	return err
}

// Launch1D is the common 1D convenience wrapper: n threads in blocks of
// blockSize; the kernel receives the global thread id and must bounds-check
// against n itself (ids round up to a whole block, as in CUDA).
func (d *Device) Launch1D(n, blockSize int, kernel func(globalID int)) error {
	if n <= 0 || blockSize <= 0 {
		return errors.New("gpu: Launch1D needs positive sizes")
	}
	blocks := (n + blockSize - 1) / blockSize
	return d.Launch(Dim3{X: blocks, Y: 1, Z: 1}, Dim3{X: blockSize, Y: 1, Z: 1}, 0,
		func(b, t Dim3, _ []float64) {
			kernel(b.X*blockSize + t.X)
		})
}
