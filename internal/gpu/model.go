package gpu

import (
	"errors"
	"fmt"
	"math"

	"perfeng/internal/machine"
)

// Analytical GPU models: occupancy (the CUDA occupancy-calculator logic),
// memory-coalescing efficiency, roofline-style kernel time, and the
// host-device offload break-even analysis — the modeling content of the
// course's GPU lectures.

// Occupancy is the per-SM resource analysis of a kernel launch.
type Occupancy struct {
	BlocksPerSM   int
	ActiveThreads int
	MaxThreads    int
	Fraction      float64 // active/max threads
	LimitedBy     string  // "threads", "blocks", "shared-memory", "registers"
}

// ComputeOccupancy returns the occupancy of a kernel with the given block
// size, per-thread register count and per-block shared memory bytes on g.
func ComputeOccupancy(g machine.GPU, blockThreads, regsPerThread, sharedPerBlockBytes int) (Occupancy, error) {
	if blockThreads <= 0 {
		return Occupancy{}, errors.New("gpu: block needs at least one thread")
	}
	if blockThreads > g.MaxThreadsPerSM {
		return Occupancy{}, fmt.Errorf("gpu: block of %d exceeds %d threads/SM",
			blockThreads, g.MaxThreadsPerSM)
	}
	// A fixed array instead of a map: ComputeOccupancy runs inside the
	// offload model's sweep loops, and four entries don't need hashing.
	type limit struct {
		name string
		v    int
	}
	limits := [4]limit{
		{"threads", g.MaxThreadsPerSM / blockThreads},
		{"blocks", g.MaxBlocksPerSM},
	}
	n := 2
	if sharedPerBlockBytes > 0 {
		limits[n] = limit{"shared-memory", g.SharedMemPerSMBytes / sharedPerBlockBytes}
		n++
	}
	if regsPerThread > 0 {
		limits[n] = limit{"registers", g.RegistersPerSM / (regsPerThread * blockThreads)}
		n++
	}
	best, by := math.MaxInt, "threads"
	for _, l := range limits[:n] {
		if l.v < best || (l.v == best && l.name < by) {
			best, by = l.v, l.name
		}
	}
	if best < 1 {
		return Occupancy{LimitedBy: by, MaxThreads: g.MaxThreadsPerSM},
			fmt.Errorf("gpu: kernel cannot fit one block per SM (limited by %s)", by)
	}
	o := Occupancy{
		BlocksPerSM:   best,
		ActiveThreads: best * blockThreads,
		MaxThreads:    g.MaxThreadsPerSM,
		LimitedBy:     by,
	}
	o.Fraction = float64(o.ActiveThreads) / float64(o.MaxThreads)
	return o, nil
}

// CoalescingEfficiency returns the fraction of each memory transaction
// carrying useful data for a warp accessing elemBytes-sized elements with
// the given element stride: useful bytes / (128-byte segments touched).
func CoalescingEfficiency(g machine.GPU, strideElems, elemBytes int) float64 {
	if strideElems < 1 || elemBytes < 1 {
		return 0
	}
	const segment = 128
	warp := g.WarpSize
	span := (warp-1)*strideElems*elemBytes + elemBytes
	segments := (span + segment - 1) / segment
	useful := warp * elemBytes
	eff := float64(useful) / float64(segments*segment)
	if eff > 1 {
		eff = 1
	}
	return eff
}

// KernelEstimate is the roofline-style time model for one kernel launch.
type KernelEstimate struct {
	Seconds    float64
	Bound      string // "compute" or "memory"
	Occupancy  Occupancy
	EffPeak    float64 // GFLOP/s after occupancy derating
	EffBandGBs float64 // GB/s after coalescing derating
}

// EstimateKernel predicts the runtime of a kernel doing flops FLOPs and
// moving bytes bytes, with the given launch configuration and access
// stride. Occupancy derates peak linearly below 50% (past ~50% occupancy
// latency is typically hidden — the heuristic the occupancy lectures
// teach); coalescing derates bandwidth.
func EstimateKernel(g machine.GPU, flops, bytes float64, blockThreads, regsPerThread, sharedPerBlockBytes, strideElems int) (KernelEstimate, error) {
	occ, err := ComputeOccupancy(g, blockThreads, regsPerThread, sharedPerBlockBytes)
	if err != nil {
		return KernelEstimate{}, err
	}
	latencyFactor := math.Min(1, occ.Fraction/0.5)
	effPeak := g.PeakGFLOPS() * latencyFactor
	effBand := g.MemBandwidthGBs() * CoalescingEfficiency(g, strideElems, 8) * latencyFactor

	tc := flops / (effPeak * 1e9)
	tm := bytes / (effBand * 1e9)
	est := KernelEstimate{Occupancy: occ, EffPeak: effPeak, EffBandGBs: effBand}
	if tm >= tc {
		est.Bound = "memory"
		est.Seconds = tm
	} else {
		est.Bound = "compute"
		est.Seconds = tc
	}
	return est, nil
}

// Offload models one host->device->host round trip for a kernel.
type Offload struct {
	H2D, Kernel, D2H float64 // seconds
	Total            float64
	CPUSeconds       float64
	Speedup          float64 // CPU/offload; > 1 means offload wins
}

// EstimateOffload compares running on the host (cpuSeconds, measured or
// modeled) against offloading: transfer bytesIn, run the kernel estimate,
// transfer bytesOut.
func EstimateOffload(g machine.GPU, est KernelEstimate, bytesIn, bytesOut, cpuSeconds float64) Offload {
	lat := g.PCIeLatencyUs * 1e-6
	o := Offload{
		H2D:        lat + bytesIn/g.PCIeBandwidthBytesPerSec,
		Kernel:     est.Seconds,
		D2H:        lat + bytesOut/g.PCIeBandwidthBytesPerSec,
		CPUSeconds: cpuSeconds,
	}
	o.Total = o.H2D + o.Kernel + o.D2H
	if o.Total > 0 {
		o.Speedup = cpuSeconds / o.Total
	}
	return o
}

// BreakEvenFLOPs returns the kernel work (FLOPs) at which offload matches
// the host for a compute-bound kernel moving the given bytes: below this,
// the PCIe transfers dominate and the host wins — the classic "is my
// kernel big enough for the GPU" estimate.
func BreakEvenFLOPs(g machine.GPU, c machine.CPU, bytesMoved float64) float64 {
	transfer := 2*g.PCIeLatencyUs*1e-6 + bytesMoved/g.PCIeBandwidthBytesPerSec
	cpuRate := c.PeakGFLOPS() * 1e9
	gpuRate := g.PeakGFLOPS() * 1e9
	if gpuRate <= cpuRate {
		return math.Inf(1)
	}
	// Solve flops/cpu = transfer + flops/gpu.
	return transfer / (1/cpuRate - 1/gpuRate)
}
