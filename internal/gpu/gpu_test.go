package gpu

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"perfeng/internal/machine"
)

func dev(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(machine.DAS5TitanX())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceRejectsBadModel(t *testing.T) {
	if _, err := NewDevice(machine.GPU{}); err == nil {
		t.Fatal("invalid model must fail")
	}
}

func TestLaunch1DVectorAdd(t *testing.T) {
	d := dev(t)
	n := 10_000
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = 2 * float64(i)
	}
	err := d.Launch1D(n, 256, func(id int) {
		if id < n {
			c[id] = a[id] + b[id]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i] != 3*float64(i) {
			t.Fatalf("c[%d] = %v", i, c[i])
		}
	}
}

func TestLaunchGeometry(t *testing.T) {
	d := dev(t)
	var count int64
	err := d.Launch(Dim3{X: 2, Y: 3, Z: 1}, Dim3{X: 4, Y: 2, Z: 1}, 0,
		func(b, tid Dim3, _ []float64) {
			atomic.AddInt64(&count, 1)
		})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2*3*4*2 {
		t.Fatalf("threads run = %d, want 48", count)
	}
}

func TestLaunchSharedMemoryReduction(t *testing.T) {
	d := dev(t)
	n := 1 << 12
	block := 128
	blocks := n / block
	data := make([]float64, n)
	for i := range data {
		data[i] = 1
	}
	partial := make([]float64, blocks)
	err := d.Launch(Dim3{X: blocks, Y: 1, Z: 1}, Dim3{X: block, Y: 1, Z: 1}, 1,
		func(b, tid Dim3, shared []float64) {
			shared[0] += data[b.X*block+tid.X]
			if tid.X == block-1 { // last thread in the (sequential) block
				partial[b.X] = shared[0]
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range partial {
		total += p
	}
	if total != float64(n) {
		t.Fatalf("reduction = %v, want %v", total, float64(n))
	}
}

func TestLaunchValidation(t *testing.T) {
	d := dev(t)
	if err := d.Launch(Dim3{}, Dim3{X: 1, Y: 1, Z: 1}, 0, func(Dim3, Dim3, []float64) {}); err == nil {
		t.Fatal("invalid grid must fail")
	}
	if err := d.Launch(Dim3{X: 1, Y: 1, Z: 1}, Dim3{X: 4096, Y: 1, Z: 1}, 0, func(Dim3, Dim3, []float64) {}); err == nil {
		t.Fatal("oversized block must fail")
	}
	if err := d.Launch(Dim3{X: 1, Y: 1, Z: 1}, Dim3{X: 1, Y: 1, Z: 1}, 1<<20, func(Dim3, Dim3, []float64) {}); err == nil {
		t.Fatal("oversized shared memory must fail")
	}
	if err := d.Launch(Dim3{X: 1, Y: 1, Z: 1}, Dim3{X: 1, Y: 1, Z: 1}, 0, nil); err == nil {
		t.Fatal("nil kernel must fail")
	}
	if err := d.Launch1D(0, 32, func(int) {}); err == nil {
		t.Fatal("n=0 must fail")
	}
}

func TestLaunchKernelPanicCaptured(t *testing.T) {
	d := dev(t)
	err := d.Launch1D(128, 32, func(id int) {
		if id == 77 {
			panic("device-side assert")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestComputeOccupancyFull(t *testing.T) {
	g := machine.DAS5TitanX()
	// 256-thread blocks, tiny resource use: thread-limited, 8 blocks/SM.
	occ, err := ComputeOccupancy(g, 256, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 8 || occ.Fraction != 1 {
		t.Fatalf("occ = %+v", occ)
	}
	if occ.LimitedBy != "threads" {
		t.Fatalf("limited by %s", occ.LimitedBy)
	}
}

func TestComputeOccupancySharedLimited(t *testing.T) {
	g := machine.DAS5TitanX()
	// 48 KiB shared per block on a 96 KiB SM: 2 blocks -> 512 threads.
	occ, err := ComputeOccupancy(g, 256, 0, 48<<10)
	if err != nil {
		t.Fatal(err)
	}
	if occ.LimitedBy != "shared-memory" || occ.BlocksPerSM != 2 {
		t.Fatalf("occ = %+v", occ)
	}
	if math.Abs(occ.Fraction-0.25) > 1e-12 {
		t.Fatalf("fraction = %v", occ.Fraction)
	}
}

func TestComputeOccupancyRegisterLimited(t *testing.T) {
	g := machine.DAS5TitanX()
	// 64 regs/thread x 1024 threads consumes the whole 64K register file:
	// one block per SM, register-limited.
	occ, err := ComputeOccupancy(g, 1024, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.LimitedBy != "registers" {
		t.Fatalf("occ = %+v", occ)
	}
}

func TestComputeOccupancyErrors(t *testing.T) {
	g := machine.DAS5TitanX()
	if _, err := ComputeOccupancy(g, 0, 0, 0); err == nil {
		t.Fatal("zero block must fail")
	}
	if _, err := ComputeOccupancy(g, 4096, 0, 0); err == nil {
		t.Fatal("oversized block must fail")
	}
	if _, err := ComputeOccupancy(g, 256, 0, 200<<10); err == nil {
		t.Fatal("unfittable shared memory must fail")
	}
}

func TestCoalescingEfficiency(t *testing.T) {
	g := machine.DAS5TitanX()
	// Unit stride, 8B elements: a warp spans 256B = 2 segments, fully
	// used.
	if got := CoalescingEfficiency(g, 1, 8); got != 1 {
		t.Fatalf("unit stride eff = %v", got)
	}
	// Stride 2 halves the efficiency.
	if got := CoalescingEfficiency(g, 2, 8); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("stride-2 eff = %v", got)
	}
	// Stride 16 (128B): each lane its own segment -> 1/16.
	if got := CoalescingEfficiency(g, 16, 8); got > 0.07 {
		t.Fatalf("stride-16 eff = %v", got)
	}
	if CoalescingEfficiency(g, 0, 8) != 0 {
		t.Fatal("invalid stride must be 0")
	}
}

func TestEstimateKernel(t *testing.T) {
	g := machine.DAS5TitanX()
	// SAXPY-like: 2 FLOPs and 24 bytes per element — memory-bound.
	n := 1e7
	est, err := EstimateKernel(g, 2*n, 24*n, 256, 32, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Bound != "memory" {
		t.Fatalf("bound = %s", est.Bound)
	}
	want := 24 * n / (g.MemBandwidthGBs() * 1e9)
	if math.Abs(est.Seconds-want) > 1e-9 {
		t.Fatalf("seconds = %v, want %v", est.Seconds, want)
	}
	// Heavy-compute kernel: compute-bound.
	est2, err := EstimateKernel(g, 1e12, 8*n, 256, 32, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Bound != "compute" {
		t.Fatalf("bound = %s", est2.Bound)
	}
	// Low occupancy derates the roofs: 128 regs/thread caps the SM at
	// 4 blocks of 128 threads = 25% occupancy.
	est3, err := EstimateKernel(g, 2*n, 24*n, 128, 128, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est3.Seconds <= est.Seconds {
		t.Fatalf("low-occupancy kernel should be slower: %v vs %v", est3.Seconds, est.Seconds)
	}
}

func TestEstimateOffload(t *testing.T) {
	g := machine.DAS5TitanX()
	est := KernelEstimate{Seconds: 1e-3}
	// Tiny transfers, 100ms CPU time: offload clearly wins.
	o := EstimateOffload(g, est, 1e6, 1e6, 0.1)
	if o.Speedup < 10 {
		t.Fatalf("speedup = %v", o.Speedup)
	}
	if o.Total != o.H2D+o.Kernel+o.D2H {
		t.Fatal("total wrong")
	}
	// Giant transfers, tiny CPU time: offload loses.
	o2 := EstimateOffload(g, est, 1e10, 1e10, 1e-3)
	if o2.Speedup >= 1 {
		t.Fatalf("offload should lose: %v", o2.Speedup)
	}
}

func TestBreakEvenFLOPs(t *testing.T) {
	g := machine.DAS5TitanX()
	c := machine.DAS5CPU()
	be := BreakEvenFLOPs(g, c, 1e8) // 100 MB moved
	if be <= 0 || math.IsInf(be, 1) {
		t.Fatalf("break-even = %v", be)
	}
	// At 10x the break-even work, offload should win decisively.
	flops := 10 * be
	est, err := EstimateKernel(g, flops, 1, 256, 32, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpuTime := flops / (c.PeakGFLOPS() * 1e9)
	o := EstimateOffload(g, est, 1e8, 0, cpuTime)
	if o.Speedup <= 1 {
		t.Fatalf("offload should win past break-even: %v", o.Speedup)
	}
	// A slower "GPU" than the CPU never breaks even.
	slow := g
	slow.SMs = 1
	slow.CoresPerSM = 1
	if !math.IsInf(BreakEvenFLOPs(slow, c, 1e8), 1) {
		t.Fatal("slow GPU should never break even")
	}
}
