package gpu

import (
	"sync/atomic"

	"perfeng/internal/telemetry"
)

// Live-telemetry hooks for the device executor. Launch bookkeeping is
// host-side and happens once per kernel launch (never per thread), so
// the labeled lookups here are cold-path; the disabled path is one
// atomic load in LaunchNamed.

// telemetryRegsPerThread is the per-thread register pressure assumed
// when deriving launch occupancy for the gauge — the executor does not
// model registers, so this matches the course's default kernel budget.
const telemetryRegsPerThread = 32

type telHandles struct {
	launches   *telemetry.CounterFamily
	blocks     *telemetry.CounterFamily
	launchSecs *telemetry.HistogramFamily
	occupancy  *telemetry.GaugeFamily
}

var tel atomic.Pointer[telHandles]

// EnableTelemetry publishes kernel-launch activity to reg, labeled by
// kernel name: launches and blocks executed, wall-clock launch
// duration, and the modeled occupancy of the most recent launch.
// Passing nil stops publication.
func EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		tel.Store(nil)
		return
	}
	tel.Store(&telHandles{
		launches: reg.CounterFamily("perfeng_gpu_launches",
			"Kernel launches completed.", "kernel"),
		blocks: reg.CounterFamily("perfeng_gpu_blocks",
			"Thread blocks executed.", "kernel"),
		// 2^-20 s ≈ 1 µs up to 2^2 = 4 s.
		launchSecs: reg.HistogramFamily("perfeng_gpu_launch_seconds",
			"Wall-clock kernel launch duration.", -20, 2, "kernel"),
		occupancy: reg.GaugeFamily("perfeng_gpu_occupancy_fraction",
			"Modeled SM occupancy of the most recent launch.", "kernel"),
	})
}

// publishLaunch records one completed launch. seconds is the host-side
// wall-clock duration; occupancy is derived from the launch geometry
// with the default register budget.
func (d *Device) publishLaunch(th *telHandles, name string, grid, block Dim3, sharedLen int, seconds float64) {
	th.launches.With(name).Inc()
	th.blocks.With(name).Add(uint64(grid.Count()))
	th.launchSecs.With(name).Observe(seconds)
	if occ, err := ComputeOccupancy(d.Model, block.Count(), telemetryRegsPerThread, sharedLen*8); err == nil {
		th.occupancy.With(name).Set(occ.Fraction)
	}
}
