package course

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV serialization of the paper's data artifacts in the layout of the
// course repository: DATA-1 as data/students.csv and DATA-2 as
// data/metrics.csv. Writing and re-reading these files reproduces the
// artifact pipeline of the appendix (DATA -> SW -> Figure/Table).

// WriteStudentsCSV writes DATA-1.
func WriteStudentsCSV(w io.Writer, recs []YearRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"year", "enrolled", "passed", "respondents", "evaluation_available"}); err != nil {
		return err
	}
	for _, r := range recs {
		rec := []string{
			strconv.Itoa(r.Year), strconv.Itoa(r.Enrolled),
			strconv.Itoa(r.Passed), strconv.Itoa(r.Respondents),
			strconv.FormatBool(r.EvaluationAvailable),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadStudentsCSV parses DATA-1.
func ReadStudentsCSV(r io.Reader) ([]YearRecord, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("course: students.csv has no data rows")
	}
	out := make([]YearRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("course: students.csv row %d has %d fields", i+2, len(row))
		}
		var rec YearRecord
		var errs [5]error
		rec.Year, errs[0] = strconv.Atoi(row[0])
		rec.Enrolled, errs[1] = strconv.Atoi(row[1])
		rec.Passed, errs[2] = strconv.Atoi(row[2])
		rec.Respondents, errs[3] = strconv.Atoi(row[3])
		rec.EvaluationAvailable, errs[4] = strconv.ParseBool(row[4])
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("course: students.csv row %d: %w", i+2, e)
			}
		}
		if rec.Enrolled < rec.Passed || rec.Respondents < 0 {
			return nil, fmt.Errorf("course: students.csv row %d is inconsistent", i+2)
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteMetricsCSV writes DATA-2 (both Table 2a and 2b questions; the
// scale column distinguishes them).
func WriteMetricsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scale", "group", "statement", "c1", "c2", "c3", "c4", "c5"}); err != nil {
		return err
	}
	write := func(scale string, qs []EvalQuestion) error {
		for _, q := range qs {
			rec := []string{scale, q.Group, q.Statement}
			for _, c := range q.Counts {
				rec = append(rec, strconv.Itoa(c))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("agreement", Table2a()); err != nil {
		return err
	}
	if err := write("level", Table2b()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadMetricsCSV parses DATA-2 back into the two question sets.
func ReadMetricsCSV(r io.Reader) (agreement, level []EvalQuestion, err error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	for i, row := range rows[1:] {
		if len(row) != 8 {
			return nil, nil, fmt.Errorf("course: metrics.csv row %d has %d fields", i+2, len(row))
		}
		q := EvalQuestion{Group: row[1], Statement: row[2]}
		for j := 0; j < 5; j++ {
			v, err := strconv.Atoi(row[3+j])
			if err != nil || v < 0 {
				return nil, nil, fmt.Errorf("course: metrics.csv row %d count %d invalid", i+2, j+1)
			}
			q.Counts[j] = v
		}
		switch row[0] {
		case "agreement":
			agreement = append(agreement, q)
		case "level":
			level = append(level, q)
		default:
			return nil, nil, fmt.Errorf("course: metrics.csv row %d has unknown scale %q", i+2, row[0])
		}
	}
	return agreement, level, nil
}
