package course

import (
	"bytes"
	"strings"
	"testing"
)

func TestStudentsCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStudentsCSV(&buf, Students()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStudentsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := Students()
	if len(back) != len(orig) {
		t.Fatalf("rows = %d", len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("row %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestReadStudentsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "year,enrolled,passed,respondents,evaluation_available\n",
		"short row":    "h1,h2,h3,h4,h5\n2017,12,8\n",
		"bad int":      "h1,h2,h3,h4,h5\nx,12,8,9,true\n",
		"bad bool":     "h1,h2,h3,h4,h5\n2017,12,8,9,maybe\n",
		"inconsistent": "h1,h2,h3,h4,h5\n2017,5,8,9,true\n",
	}
	for name, src := range cases {
		if _, err := ReadStudentsCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMetricsCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	agree, level, err := ReadMetricsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(agree) != len(Table2a()) || len(level) != len(Table2b()) {
		t.Fatalf("rows = %d/%d", len(agree), len(level))
	}
	// Means recomputed from the round-tripped data still match the paper.
	for i, q := range agree {
		if q.Mean() != Table2a()[i].Mean() {
			t.Fatalf("agreement row %d mean changed", i)
		}
	}
}

func TestReadMetricsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short":     "h\nagreement,g\n",
		"bad count": "h1,h2,h3,h4,h5,h6,h7,h8\nagreement,g,s,x,1,1,1,1\n",
		"neg count": "h1,h2,h3,h4,h5,h6,h7,h8\nagreement,g,s,-1,1,1,1,1\n",
		"bad scale": "h1,h2,h3,h4,h5,h6,h7,h8\nbogus,g,s,1,1,1,1,1\n",
	}
	for name, src := range cases {
		if _, _, err := ReadMetricsCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
