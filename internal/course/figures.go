package course

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"perfeng/internal/report"
)

// Generators for the paper's figures and tables (the Go reimplementation
// of the SW-2/SW-3 artifact scripts).

// Figure1 renders the enrollment/passing/respondents plot of Figure 1.
func Figure1(width, height int) string {
	recs := Students()
	years := make([]float64, 0, len(recs))
	enrolled := make([]float64, 0, len(recs))
	passed := make([]float64, 0, len(recs))
	resp := make([]float64, 0, len(recs))
	for _, r := range recs {
		years = append(years, float64(r.Year))
		enrolled = append(enrolled, float64(r.Enrolled))
		passed = append(passed, float64(r.Passed))
		resp = append(resp, float64(r.Respondents))
	}
	plot := report.LinePlot("Figure 1: students enrolled, passing, and evaluation respondents per year",
		[]report.Series{
			{Name: "Total enrolled", X: years, Y: enrolled, Marker: '*'},
			{Name: "Passing grades", X: years, Y: passed, Marker: 'o'},
			{Name: "Evaluation respondents (2019, 2022 unavailable)", X: years, Y: resp, Marker: '+'},
		}, width, height)
	var tot YearRecord
	for _, r := range recs {
		tot.Enrolled += r.Enrolled
		tot.Passed += r.Passed
		tot.Respondents += r.Respondents
	}
	return plot + fmt.Sprintf("totals: %d enrolled, %d passed, %d respondents\n",
		tot.Enrolled, tot.Passed, tot.Respondents)
}

// Table1 renders the topics x stages x objectives matrix of Table 1.
func Table1() *report.Table {
	t := &report.Table{
		Title:   "Table 1: topics vs PE-process stages and learning objectives",
		Headers: []string{"Topic", "Stages 1234567", "Objectives 12345678"},
	}
	marks := func(set []int, n int) string {
		row := make([]byte, n)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range set {
			if s >= 1 && s <= n {
				row[s-1] = 'v'
			}
		}
		return string(row)
	}
	for _, tp := range Topics() {
		t.AddRow(tp.Name, marks(tp.Stages, 7), marks(tp.Objectives, 8))
	}
	return t
}

// evalRow renders one evaluation question as a table row (shared by
// Table 2a and 2b, and allocation-light: strconv, not fmt, per cell).
func evalRow(q EvalQuestion) []string {
	return []string{
		q.Group, q.Statement,
		strconv.Itoa(q.Counts[0]), strconv.Itoa(q.Counts[1]), strconv.Itoa(q.Counts[2]),
		strconv.Itoa(q.Counts[3]), strconv.Itoa(q.Counts[4]),
		strconv.Itoa(q.N()), strconv.FormatFloat(q.Mean(), 'f', 1, 64),
	}
}

// Table2aReport renders Table 2a with per-statement histograms and means.
func Table2aReport() *report.Table {
	t := &report.Table{
		Title:   "Table 2a: evaluation responses (1=Firmly Disagree .. 5=Firmly Agree)",
		Headers: []string{"Group", "Statement", "1", "2", "3", "4", "5", "N", "M"},
	}
	for _, q := range Table2a() {
		t.AddRow(evalRow(q)...)
	}
	return t
}

// Table2bReport renders Table 2b (3-4 considered optimal).
func Table2bReport() *report.Table {
	t := &report.Table{
		Title:   "Table 2b: evaluation responses (1=Very Low .. 5=Very High; 3-4 optimal)",
		Headers: []string{"Group", "Statement", "1", "2", "3", "4", "5", "N", "M"},
	}
	for _, q := range Table2b() {
		t.AddRow(evalRow(q)...)
	}
	return t
}

// Figure2 renders the artifact dependency graph in topological order.
func Figure2() (string, error) {
	arts := Artifacts()
	byID := make(map[string]Artifact, len(arts))
	for _, a := range arts {
		byID[a.ID] = a
	}
	order, err := topoSort(arts)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 2: artifact dependency graph (topological order)\n")
	for _, id := range order {
		a := byID[id]
		if len(a.DependsOn) == 0 {
			fmt.Fprintf(&sb, "  %-8s [%s]\n", a.ID, a.Kind)
		} else {
			fmt.Fprintf(&sb, "  %-8s [%s] <- %s\n", a.ID, a.Kind, strings.Join(a.DependsOn, ", "))
		}
	}
	return sb.String(), nil
}

// topoSort returns a deterministic topological order of the artifacts,
// failing on cycles or dangling references.
func topoSort(arts []Artifact) ([]string, error) {
	deps := make(map[string][]string, len(arts))
	for _, a := range arts {
		deps[a.ID] = a.DependsOn
	}
	for id, ds := range deps {
		for _, d := range ds {
			if _, ok := deps[d]; !ok {
				return nil, fmt.Errorf("course: artifact %s depends on unknown %s", id, d)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(deps))
	var order []string
	var visit func(id string) error
	visit = func(id string) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("course: artifact cycle through %s", id)
		case black:
			return nil
		}
		color[id] = gray
		ds := append([]string(nil), deps[id]...)
		sort.Strings(ds)
		for _, d := range ds {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[id] = black
		order = append(order, id)
		return nil
	}
	ids := make([]string, 0, len(deps))
	for id := range deps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	return order, nil
}
