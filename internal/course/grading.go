package course

import (
	"errors"
	"fmt"
)

// The grading scheme of Section 4.4, Equations 1-3. Dutch grades run from
// 1 (worst) to 10 (best); 5.5 and above passes.

// AssignmentPoints holds the per-assignment point budgets (10, 9, 11, 12
// for assignments 1-4).
var AssignmentPoints = [4]float64{10, 9, 11, 12}

// TeamDivisor returns the N of Equation 3 for the given team size:
// 32 for 1 student, 36 for 2, 40 for 3-4.
func TeamDivisor(teamSize int) (float64, error) {
	switch {
	case teamSize == 1:
		return 32, nil
	case teamSize == 2:
		return 36, nil
	case teamSize == 3 || teamSize == 4:
		return 40, nil
	default:
		return 0, fmt.Errorf("course: invalid team size %d (teams are 1-4 students)", teamSize)
	}
}

// AssignmentsGrade implements Equation 3: Ga = 10 * sum(points) / N.
// points are the earned points per assignment (bounded by
// AssignmentPoints); the result is NOT clamped — Equation 1 clamps the
// final grade.
func AssignmentsGrade(points [4]float64, teamSize int) (float64, error) {
	n, err := TeamDivisor(teamSize)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i, p := range points {
		if p < 0 || p > AssignmentPoints[i] {
			return 0, fmt.Errorf("course: assignment %d points %g outside [0, %g]",
				i+1, p, AssignmentPoints[i])
		}
		sum += p
	}
	return 10 * sum / n, nil
}

// ProjectGrade implements Equation 2: Gp = 0.4*Gproject + 0.3*Greport +
// 0.3*Gtalks, with Gtalks the average of the midterm and final
// presentations.
func ProjectGrade(project, reportGrade, midtermTalk, finalTalk float64) (float64, error) {
	for _, g := range [...]float64{project, reportGrade, midtermTalk, finalTalk} {
		if g < 1 || g > 10 {
			return 0, errors.New("course: component grades must be in [1, 10]")
		}
	}
	talks := (midtermTalk + finalTalk) / 2
	return 0.4*project + 0.3*reportGrade + 0.3*talks, nil
}

// FinalGrade implements Equation 1:
// G = max(1, min(10, 0.5*Gp + 0.3*Ga + 0.3*(Ge + Sq/70))).
// quizScore (Sq) is the in-class quiz bonus in raw points.
func FinalGrade(projectGrade, assignmentsGrade, examGrade, quizScore float64) (float64, error) {
	if projectGrade < 0 || assignmentsGrade < 0 || examGrade < 0 || quizScore < 0 {
		return 0, errors.New("course: negative grade component")
	}
	g := 0.5*projectGrade + 0.3*assignmentsGrade + 0.3*(examGrade+quizScore/70)
	if g < 1 {
		g = 1
	}
	if g > 10 {
		g = 10
	}
	return g, nil
}

// Passed reports whether a final grade passes (>= 5.5 in the Dutch
// system).
func Passed(finalGrade float64) bool { return finalGrade >= 5.5 }

// StudentRecord bundles one team's raw scores for end-to-end grading.
type StudentRecord struct {
	TeamSize    int
	Assignment  [4]float64 // earned points per assignment
	Project     float64    // 1-10
	Report      float64    // 1-10
	MidtermTalk float64    // 1-10
	FinalTalk   float64    // 1-10
	Exam        float64    // 1-10
	QuizScore   float64    // raw quiz points
}

// Grade computes the final grade of a record via Equations 1-3.
func (r StudentRecord) Grade() (float64, error) {
	ga, err := AssignmentsGrade(r.Assignment, r.TeamSize)
	if err != nil {
		return 0, err
	}
	gp, err := ProjectGrade(r.Project, r.Report, r.MidtermTalk, r.FinalTalk)
	if err != nil {
		return 0, err
	}
	return FinalGrade(gp, ga, r.Exam, r.QuizScore)
}
