package course

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStudentsTotalsMatchPaper(t *testing.T) {
	recs := Students()
	if len(recs) != 7 {
		t.Fatalf("years = %d, want 7 (2017-2023)", len(recs))
	}
	var enrolled, passed, resp int
	for _, r := range recs {
		enrolled += r.Enrolled
		passed += r.Passed
		resp += r.Respondents
		if !r.EvaluationAvailable && r.Respondents != 0 {
			t.Fatalf("year %d: respondents despite unavailable evaluation", r.Year)
		}
	}
	if enrolled != 146 {
		t.Fatalf("total enrolled = %d, paper says 146", enrolled)
	}
	if passed != 93 {
		t.Fatalf("total passed = %d, paper says 93", passed)
	}
	if resp != 41 {
		t.Fatalf("total respondents = %d, paper says 41", resp)
	}
	// 2019 and 2022 evaluations unavailable.
	for _, r := range recs {
		wantAvail := r.Year != 2019 && r.Year != 2022
		if r.EvaluationAvailable != wantAvail {
			t.Fatalf("year %d availability = %v", r.Year, r.EvaluationAvailable)
		}
	}
	// Dropout within the published 15-50% band every year.
	for _, r := range recs {
		drop := 1 - float64(r.Passed)/float64(r.Enrolled)
		if drop < 0.15 || drop > 0.50 {
			t.Fatalf("year %d dropout %.2f outside the paper's 15-50%% band", r.Year, drop)
		}
	}
}

func TestTable2aMatchesPaperMeans(t *testing.T) {
	want := map[string]float64{
		"Taught me a lot":                4.5,
		"Was clearly structured":         4.2,
		"Was intellectually challenging": 4.6,
		"Factual knowledge":              4.4,
		"Fundamental principles":         4.2,
		"Current scientific theories":    3.9,
		"To apply subject matter":        4.8,
		"Professional skills":            4.4,
		"Technical skills":               4.1,
		"Assignment 1":                   4.4,
		"Assignment 2":                   4.5,
		"Assignment 3":                   4.1,
		"Assignment 4":                   4.4,
	}
	qs := Table2a()
	if len(qs) != 13 {
		t.Fatalf("Table 2a has %d rows, want 13", len(qs))
	}
	for _, q := range qs {
		w, ok := want[q.Statement]
		if !ok {
			t.Fatalf("unexpected statement %q", q.Statement)
		}
		if math.Abs(q.Mean()-w) > 0.05 {
			t.Errorf("%s: mean %.2f, paper says %.1f", q.Statement, q.Mean(), w)
		}
	}
}

func TestTable2bMatchesPaperMeans(t *testing.T) {
	qs := Table2b()
	if len(qs) != 2 {
		t.Fatalf("Table 2b has %d rows", len(qs))
	}
	if math.Abs(qs[0].Mean()-4.0) > 0.05 {
		t.Errorf("Workload mean %.2f, paper says 4.0", qs[0].Mean())
	}
	if math.Abs(qs[1].Mean()-3.7) > 0.05 {
		t.Errorf("Level mean %.2f, paper says 3.7", qs[1].Mean())
	}
	// "a score between 3 and 4 is considered optimal" — workload at 4.0
	// is the paper's own evidence that students find it heavy.
	if qs[0].Mean() < qs[1].Mean() {
		t.Error("workload should score above level")
	}
}

func TestEvalQuestionEdge(t *testing.T) {
	var empty EvalQuestion
	if empty.Mean() != 0 || empty.N() != 0 {
		t.Fatal("empty question should be zero")
	}
}

func TestTopicsMatchTable1(t *testing.T) {
	tp := Topics()
	if len(tp) != 11 {
		t.Fatalf("topics = %d, want 11", len(tp))
	}
	for _, topic := range tp {
		if len(topic.Stages) == 0 || len(topic.Objectives) == 0 {
			t.Fatalf("topic %q missing mappings", topic.Name)
		}
		for _, s := range topic.Stages {
			if s < 1 || s > 7 {
				t.Fatalf("topic %q stage %d out of range", topic.Name, s)
			}
		}
		for _, o := range topic.Objectives {
			if o < 1 || o > 8 {
				t.Fatalf("topic %q objective %d out of range", topic.Name, o)
			}
		}
	}
}

func TestTeamDivisor(t *testing.T) {
	cases := map[int]float64{1: 32, 2: 36, 3: 40, 4: 40}
	for size, want := range cases {
		got, err := TeamDivisor(size)
		if err != nil || got != want {
			t.Fatalf("TeamDivisor(%d) = %v, %v", size, got, err)
		}
	}
	for _, bad := range []int{0, 5, -1} {
		if _, err := TeamDivisor(bad); err == nil {
			t.Fatalf("TeamDivisor(%d) should fail", bad)
		}
	}
}

func TestAssignmentsGrade(t *testing.T) {
	// Full marks, solo student: 10 * 42/32 = 13.125 (pre-clamp).
	full := [4]float64{10, 9, 11, 12}
	g, err := AssignmentsGrade(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-13.125) > 1e-12 {
		t.Fatalf("solo full assignments = %v", g)
	}
	// Same points in a team of 4 are worth less per head.
	g4, _ := AssignmentsGrade(full, 4)
	if g4 >= g {
		t.Fatal("larger team should divide by more")
	}
	if _, err := AssignmentsGrade([4]float64{11, 0, 0, 0}, 1); err == nil {
		t.Fatal("points above budget must fail")
	}
	if _, err := AssignmentsGrade([4]float64{-1, 0, 0, 0}, 1); err == nil {
		t.Fatal("negative points must fail")
	}
}

func TestProjectGrade(t *testing.T) {
	g, err := ProjectGrade(8, 7, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.4*8 + 0.3*7 + 0.3*8
	if math.Abs(g-want) > 1e-12 {
		t.Fatalf("project grade = %v, want %v", g, want)
	}
	if _, err := ProjectGrade(0, 7, 7, 7); err == nil {
		t.Fatal("grade below 1 must fail")
	}
	if _, err := ProjectGrade(8, 7, 7, 11); err == nil {
		t.Fatal("grade above 10 must fail")
	}
}

func TestFinalGradeEquation1(t *testing.T) {
	// Mid-range case, no clamping: 0.5*8 + 0.3*8 + 0.3*(7+35/70) = 8.65.
	g, err := FinalGrade(8, 8, 7, 35)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-8.65) > 1e-12 {
		t.Fatalf("final grade = %v, want 8.65", g)
	}
	// The weights sum to 1.1 deliberately ("allow for slack"): a perfect
	// student hits the clamp at 10.
	top, _ := FinalGrade(10, 13.125, 10, 70)
	if top != 10 {
		t.Fatalf("top grade = %v, want clamped 10", top)
	}
	// Floor clamp at 1.
	bottom, _ := FinalGrade(0, 0, 0, 0)
	if bottom != 1 {
		t.Fatalf("bottom grade = %v, want 1", bottom)
	}
	if _, err := FinalGrade(-1, 5, 5, 0); err == nil {
		t.Fatal("negative component must fail")
	}
	if !Passed(5.5) || Passed(5.4) {
		t.Fatal("pass threshold wrong")
	}
}

func TestStudentRecordGrade(t *testing.T) {
	r := StudentRecord{
		TeamSize:    2,
		Assignment:  [4]float64{9, 8, 10, 11},
		Project:     8.5,
		Report:      7.5,
		MidtermTalk: 8,
		FinalTalk:   9,
		Exam:        7.5,
		QuizScore:   40,
	}
	g, err := r.Grade()
	if err != nil {
		t.Fatal(err)
	}
	// This profile matches the paper's averages (~8 everywhere): the
	// final grade must land near 8 and pass.
	if g < 7 || g > 10 {
		t.Fatalf("grade = %v, want around 8", g)
	}
	if !Passed(g) {
		t.Fatal("typical passing student must pass")
	}
	bad := r
	bad.TeamSize = 9
	if _, err := bad.Grade(); err == nil {
		t.Fatal("invalid team must fail")
	}
}

// Property: the final grade is monotone in every component and always in
// [1, 10].
func TestQuickFinalGradeMonotoneBounded(t *testing.T) {
	f := func(p, a, e, q uint8) bool {
		gp := float64(p%100) / 10
		ga := float64(a%131) / 10
		ge := float64(e%100) / 10
		sq := float64(q % 71)
		g, err := FinalGrade(gp, ga, ge, sq)
		if err != nil || g < 1 || g > 10 {
			return false
		}
		g2, err := FinalGrade(gp+0.5, ga, ge, sq)
		return err == nil && g2 >= g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1(t *testing.T) {
	fig := Figure1(60, 15)
	for _, want := range []string{"Figure 1", "Total enrolled", "146 enrolled", "93 passed", "41 respondents"} {
		if !strings.Contains(fig, want) {
			t.Fatalf("figure missing %q:\n%s", want, fig)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	tab := Table1()
	s := tab.String()
	if !strings.Contains(s, "Roofline model and extensions") ||
		!strings.Contains(s, "Queuing theory") {
		t.Fatalf("table 1 incomplete:\n%s", s)
	}
	// Roofline row: stages 2,3 -> ".vv...." pattern.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "Roofline") && !strings.Contains(line, ".vv....") {
			t.Fatalf("roofline stage marks wrong: %s", line)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	a := Table2aReport().String()
	if !strings.Contains(a, "Taught me a lot") || !strings.Contains(a, "4.5") {
		t.Fatalf("table 2a incomplete:\n%s", a)
	}
	b := Table2bReport().String()
	if !strings.Contains(b, "Workload") || !strings.Contains(b, "4.0") {
		t.Fatalf("table 2b incomplete:\n%s", b)
	}
}

func TestFigure2Topology(t *testing.T) {
	fig, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// Dependencies must appear before their dependents.
	idx := func(s string) int { return strings.Index(fig, s+" ") }
	if idx("DATA-1") > idx("SW-2") || idx("SW-2") > idx("Figure 1") {
		t.Fatalf("topological order broken:\n%s", fig)
	}
	if idx("Figure 1") > idx("Paper") || idx("Table 2") > idx("Paper") {
		t.Fatalf("paper must come last:\n%s", fig)
	}
}

func TestTopoSortRejectsCycles(t *testing.T) {
	_, err := topoSort([]Artifact{
		{ID: "a", DependsOn: []string{"b"}},
		{ID: "b", DependsOn: []string{"a"}},
	})
	if err == nil {
		t.Fatal("cycle must fail")
	}
	_, err = topoSort([]Artifact{{ID: "a", DependsOn: []string{"ghost"}}})
	if err == nil {
		t.Fatal("dangling dependency must fail")
	}
}

func TestLessons(t *testing.T) {
	ls := Lessons()
	if len(ls) != 6 {
		t.Fatalf("lessons = %d, want 6 (Section 6)", len(ls))
	}
	for i, l := range ls {
		if l.Number != i+1 || l.Title == "" || l.Essence == "" {
			t.Fatalf("lesson %d malformed: %+v", i+1, l)
		}
	}
}
