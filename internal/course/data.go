// Package course reproduces the paper's own evaluation artifacts: the
// DATA-1/DATA-2 data (student counts and evaluation responses), the
// grading scheme of Equations 1-3, and the generators for Figure 1,
// Table 1, Table 2a/2b and Figure 2 (the SW-2/SW-3 scripts of the
// artifact appendix, reimplemented in Go).
//
// The per-year DATA-1 series is reconstructed: the paper publishes the
// totals (146 enrolled, 93 passed, 41 evaluation respondents over seven
// editions; evaluations unavailable for 2019 and 2022) and the shape of
// Figure 1; the reconstruction preserves those totals and the published
// shape exactly where stated. DATA-2 (Table 2) is transcribed verbatim
// from the paper.
package course

// YearRecord is one row of DATA-1 (students.csv).
type YearRecord struct {
	Year        int
	Enrolled    int
	Passed      int
	Respondents int
	// EvaluationAvailable is false for 2019 and 2022 ("the evaluation for
	// the 2019 and 2022 courses are unavailable").
	EvaluationAvailable bool
}

// Students returns the reconstructed DATA-1 series. Totals match the
// paper: 146 enrolled, 93 passed, 41 respondents.
func Students() []YearRecord {
	return []YearRecord{
		{Year: 2017, Enrolled: 12, Passed: 8, Respondents: 9, EvaluationAvailable: true},
		{Year: 2018, Enrolled: 15, Passed: 10, Respondents: 8, EvaluationAvailable: true},
		{Year: 2019, Enrolled: 18, Passed: 11, Respondents: 0, EvaluationAvailable: false},
		{Year: 2020, Enrolled: 20, Passed: 13, Respondents: 8, EvaluationAvailable: true},
		{Year: 2021, Enrolled: 22, Passed: 14, Respondents: 7, EvaluationAvailable: true},
		{Year: 2022, Enrolled: 26, Passed: 17, Respondents: 0, EvaluationAvailable: false},
		{Year: 2023, Enrolled: 33, Passed: 20, Respondents: 9, EvaluationAvailable: true},
	}
}

// EvalQuestion is one row of DATA-2 (metrics.csv): a statement and its
// 5-point Likert histogram (index 0 = "Firmly Disagree"/"Very Low").
type EvalQuestion struct {
	Group     string
	Statement string
	Counts    [5]int
}

// N returns the number of responses.
func (q EvalQuestion) N() int {
	n := 0
	for _, c := range q.Counts {
		n += c
	}
	return n
}

// Mean returns the mean score (the paper's "M" column).
func (q EvalQuestion) Mean() float64 {
	n, sum := 0, 0
	for i, c := range q.Counts {
		n += c
		sum += (i + 1) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Table2a returns the agreement-scale questions of Table 2a, transcribed
// from the paper.
func Table2a() []EvalQuestion {
	return []EvalQuestion{
		{"The course ...", "Taught me a lot", [5]int{0, 0, 1, 17, 18}},
		{"The course ...", "Was clearly structured", [5]int{0, 2, 3, 19, 13}},
		{"The course ...", "Was intellectually challenging", [5]int{0, 0, 2, 9, 25}},
		{"I acquired, learned, or developed ...", "Factual knowledge", [5]int{0, 0, 1, 13, 13}},
		{"I acquired, learned, or developed ...", "Fundamental principles", [5]int{0, 1, 2, 16, 11}},
		{"I acquired, learned, or developed ...", "Current scientific theories", [5]int{0, 3, 5, 13, 9}},
		{"I acquired, learned, or developed ...", "To apply subject matter", [5]int{0, 0, 0, 7, 22}},
		{"I acquired, learned, or developed ...", "Professional skills", [5]int{0, 0, 3, 13, 15}},
		{"I acquired, learned, or developed ...", "Technical skills", [5]int{0, 0, 6, 14, 9}},
		{"... helped me understand the subject", "Assignment 1", [5]int{0, 1, 1, 12, 16}},
		{"... helped me understand the subject", "Assignment 2", [5]int{0, 0, 1, 11, 16}},
		{"... helped me understand the subject", "Assignment 3", [5]int{1, 1, 1, 17, 10}},
		{"... helped me understand the subject", "Assignment 4", [5]int{0, 1, 1, 12, 13}},
	}
}

// Table2b returns the low/high-scale questions of Table 2b (a score
// between 3 and 4 is considered optimal).
func Table2b() []EvalQuestion {
	return []EvalQuestion{
		{"The ... of the course was", "Workload", [5]int{0, 0, 11, 14, 11}},
		{"The ... of the course was", "Level", [5]int{0, 1, 16, 13, 6}},
	}
}

// Topic is one row of Table 1: a lecture topic with the PE-process stages
// (1-7, Section 2.3) and learning objectives (1-8, Section 3.1) it serves.
type Topic struct {
	Name       string
	Stages     []int
	Objectives []int
}

// Topics returns Table 1 as published.
func Topics() []Topic {
	return []Topic{
		{"Basics of performance", []int{2}, []int{1}},
		{"Code tuning and optimization", []int{5}, []int{6, 8}},
		{"Roofline model and extensions", []int{2, 3}, []int{2, 4}},
		{"Analytical modeling", []int{2, 3}, []int{2, 3, 5}},
		{"(Micro)benchmarking", []int{1, 2}, []int{1, 4, 8}},
		{"Data-driven and stat. modeling", []int{2, 3}, []int{3, 5, 8}},
		{"Simulation and simulators", []int{4}, []int{3, 7, 8}},
		{"Perf. counters and patterns", []int{2}, []int{4, 6, 8}},
		{"Scale-out to distributed systems", []int{4, 5}, []int{6, 7}},
		{"Queuing theory", []int{2}, []int{2, 5}},
		{"Polyhedral model", []int{5}, []int{2, 6, 8}},
	}
}

// Lesson is one of the paper's six lessons learned (Section 6).
type Lesson struct {
	Number  int
	Title   string
	Essence string
}

// Lessons returns Section 6 as data (the toolbox's executables surface
// them next to the results they explain).
func Lessons() []Lesson {
	return []Lesson{
		{1, "Treat performance engineering like a puzzle",
			"appeal to curiosity about why applications behave weirdly on different systems"},
		{2, "Provide both methods and tools for each part",
			"theory lands when students can link it to concrete examples"},
		{3, "Do not underestimate empirical analysis efforts",
			"missing experimental design and automation is where time disappears"},
		{4, "Projects stimulate creativity; allow exploration time",
			"no end-line: try different things and report after critical reflection"},
		{5, "Stimulate critical reporting of positive and negative results",
			"grade the process and insights, not the ultimate speedup"},
		{6, "This is an intensive course for teachers and students",
			"keeping material current is hard but is what makes it immediately applicable"},
	}
}

// Artifact is one node of the Figure 2 dependency graph.
type Artifact struct {
	ID   string
	Kind string // "data", "software", "document", "output"
	// DependsOn lists artifact IDs this one is produced from.
	DependsOn []string
}

// Artifacts returns the Figure 2 graph: the paper and its figures are
// produced from the data artifacts by the software artifacts.
func Artifacts() []Artifact {
	return []Artifact{
		{ID: "DATA-1", Kind: "data"},
		{ID: "DATA-2", Kind: "data"},
		{ID: "SW-1", Kind: "software"},
		{ID: "SW-2", Kind: "software", DependsOn: []string{"DATA-1"}},
		{ID: "SW-3", Kind: "software", DependsOn: []string{"DATA-2"}},
		{ID: "Figure 1", Kind: "output", DependsOn: []string{"SW-2"}},
		{ID: "Table 2", Kind: "output", DependsOn: []string{"SW-3"}},
		{ID: "DOC-1", Kind: "document"},
		{ID: "DOC-2", Kind: "document"},
		{ID: "Paper", Kind: "output", DependsOn: []string{"Figure 1", "Table 2"}},
	}
}
