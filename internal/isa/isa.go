// Package isa defines the abstract instruction set and the Agner-Fog-style
// instruction tables (latency, reciprocal throughput, port bindings) that
// Assignment 2's instruction-level analytical models and the
// OSACA/IACA-like port simulator consume.
//
// The tables mirror the "Instruction tables: lists of instruction
// latencies, throughputs and micro-operation breakdowns" students are given
// [Agner Fog, 2011]: for each operation class they record the issue ports
// it can execute on, its result latency in cycles, and how many micro-ops
// it decodes into.
package isa

import (
	"errors"
	"fmt"
)

// Op is an abstract operation class, the granularity at which the course's
// instruction-level models work.
type Op int

// Operation classes.
const (
	Nop Op = iota
	IntAdd
	IntMul
	FAdd
	FMul
	FMA
	FDiv
	Load
	Store
	Branch
	VecFAdd // SIMD packed variants (4 lanes in the default tables)
	VecFMul
	VecFMA
	VecLoad
	VecStore
	numOps
)

var opNames = [...]string{
	"nop", "iadd", "imul", "fadd", "fmul", "fma", "fdiv",
	"load", "store", "branch",
	"vfadd", "vfmul", "vfma", "vload", "vstore",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// FLOPs returns the floating-point operations one instance of the op
// performs (SIMD ops count all lanes; FMA counts 2 per lane).
func (o Op) FLOPs() float64 {
	switch o {
	case FAdd, FMul:
		return 1
	case FMA:
		return 2
	case FDiv:
		return 1
	case VecFAdd, VecFMul:
		return 4
	case VecFMA:
		return 8
	default:
		return 0
	}
}

// Timing is the table entry for one operation class.
type Timing struct {
	// LatencyCycles is the dependent-chain (result) latency.
	LatencyCycles float64
	// RecipThroughput is the reciprocal throughput in cycles per
	// instruction when independent instances are issued back to back.
	RecipThroughput float64
	// Ports lists the execution ports the op may issue to.
	Ports []int
	// UOps is the number of micro-operations the op decodes into.
	UOps int
}

// Table is an instruction-timing table for one microarchitecture.
type Table struct {
	Name     string
	NumPorts int
	Timings  map[Op]Timing
}

// Lookup returns the timing of op; missing ops fall back to a safe
// single-cycle ALU estimate and ok=false so callers can warn.
func (t *Table) Lookup(op Op) (Timing, bool) {
	tm, ok := t.Timings[op]
	if !ok {
		return Timing{LatencyCycles: 1, RecipThroughput: 1, Ports: []int{0}, UOps: 1}, false
	}
	return tm, true
}

// Validate checks the table for internal consistency (ports in range,
// positive timings).
func (t *Table) Validate() error {
	if t.NumPorts <= 0 {
		return errors.New("isa: table needs at least one port")
	}
	for op, tm := range t.Timings {
		if tm.LatencyCycles <= 0 || tm.RecipThroughput <= 0 {
			return fmt.Errorf("isa: %v has non-positive timing", op)
		}
		if tm.UOps <= 0 {
			return fmt.Errorf("isa: %v has non-positive uops", op)
		}
		if len(tm.Ports) == 0 {
			return fmt.Errorf("isa: %v has no ports", op)
		}
		for _, p := range tm.Ports {
			if p < 0 || p >= t.NumPorts {
				return fmt.Errorf("isa: %v port %d out of range", op, p)
			}
		}
	}
	return nil
}

// Haswell returns a table modeled on Intel Haswell (the DAS-5
// microarchitecture): 8 issue ports, FP on ports 0/1, loads on 2/3, store
// on 4, integer on 0/1/5/6, branch on 6. Latencies follow Agner Fog's
// published numbers for the common classes.
func Haswell() *Table {
	return &Table{
		Name:     "haswell",
		NumPorts: 8,
		Timings: map[Op]Timing{
			IntAdd:   {LatencyCycles: 1, RecipThroughput: 0.25, Ports: []int{0, 1, 5, 6}, UOps: 1},
			IntMul:   {LatencyCycles: 3, RecipThroughput: 1, Ports: []int{1}, UOps: 1},
			FAdd:     {LatencyCycles: 3, RecipThroughput: 1, Ports: []int{1}, UOps: 1},
			FMul:     {LatencyCycles: 5, RecipThroughput: 0.5, Ports: []int{0, 1}, UOps: 1},
			FMA:      {LatencyCycles: 5, RecipThroughput: 0.5, Ports: []int{0, 1}, UOps: 1},
			FDiv:     {LatencyCycles: 20, RecipThroughput: 13, Ports: []int{0}, UOps: 1},
			Load:     {LatencyCycles: 4, RecipThroughput: 0.5, Ports: []int{2, 3}, UOps: 1},
			Store:    {LatencyCycles: 4, RecipThroughput: 1, Ports: []int{4}, UOps: 1},
			Branch:   {LatencyCycles: 1, RecipThroughput: 0.5, Ports: []int{0, 6}, UOps: 1},
			VecFAdd:  {LatencyCycles: 3, RecipThroughput: 1, Ports: []int{1}, UOps: 1},
			VecFMul:  {LatencyCycles: 5, RecipThroughput: 0.5, Ports: []int{0, 1}, UOps: 1},
			VecFMA:   {LatencyCycles: 5, RecipThroughput: 0.5, Ports: []int{0, 1}, UOps: 1},
			VecLoad:  {LatencyCycles: 4, RecipThroughput: 0.5, Ports: []int{2, 3}, UOps: 1},
			VecStore: {LatencyCycles: 4, RecipThroughput: 1, Ports: []int{4}, UOps: 1},
		},
	}
}

// Zen2 returns a table modeled on AMD Zen 2 ("We have used both Intel and
// AMD CPUs" — Appendix A.3): 4 FP pipes (FMA on 0/1, FADD on 2/3, so FMA
// and FADD streams do not contend), 3-cycle FADD, separate AGU ports.
func Zen2() *Table {
	return &Table{
		Name:     "zen2",
		NumPorts: 10, // 4 ALU (0-3), 4 FP (4-7), 2 AGU/mem (8-9)
		Timings: map[Op]Timing{
			IntAdd:   {LatencyCycles: 1, RecipThroughput: 0.25, Ports: []int{0, 1, 2, 3}, UOps: 1},
			IntMul:   {LatencyCycles: 3, RecipThroughput: 1, Ports: []int{1}, UOps: 1},
			FAdd:     {LatencyCycles: 3, RecipThroughput: 0.5, Ports: []int{6, 7}, UOps: 1},
			FMul:     {LatencyCycles: 3, RecipThroughput: 0.5, Ports: []int{4, 5}, UOps: 1},
			FMA:      {LatencyCycles: 5, RecipThroughput: 0.5, Ports: []int{4, 5}, UOps: 1},
			FDiv:     {LatencyCycles: 13, RecipThroughput: 5, Ports: []int{4}, UOps: 1},
			Load:     {LatencyCycles: 4, RecipThroughput: 0.5, Ports: []int{8, 9}, UOps: 1},
			Store:    {LatencyCycles: 4, RecipThroughput: 1, Ports: []int{9}, UOps: 1},
			Branch:   {LatencyCycles: 1, RecipThroughput: 0.5, Ports: []int{0, 3}, UOps: 1},
			VecFAdd:  {LatencyCycles: 3, RecipThroughput: 0.5, Ports: []int{6, 7}, UOps: 1},
			VecFMul:  {LatencyCycles: 3, RecipThroughput: 0.5, Ports: []int{4, 5}, UOps: 1},
			VecFMA:   {LatencyCycles: 5, RecipThroughput: 0.5, Ports: []int{4, 5}, UOps: 1},
			VecLoad:  {LatencyCycles: 4, RecipThroughput: 0.5, Ports: []int{8, 9}, UOps: 1},
			VecStore: {LatencyCycles: 4, RecipThroughput: 1, Ports: []int{9}, UOps: 1},
		},
	}
}

// SimpleInOrder returns a table for a scalar in-order core with one ALU
// port and one memory port — the contrast machine for teaching why port
// counts matter.
func SimpleInOrder() *Table {
	return &Table{
		Name:     "simple-inorder",
		NumPorts: 2,
		Timings: map[Op]Timing{
			IntAdd: {LatencyCycles: 1, RecipThroughput: 1, Ports: []int{0}, UOps: 1},
			IntMul: {LatencyCycles: 4, RecipThroughput: 2, Ports: []int{0}, UOps: 1},
			FAdd:   {LatencyCycles: 4, RecipThroughput: 1, Ports: []int{0}, UOps: 1},
			FMul:   {LatencyCycles: 6, RecipThroughput: 2, Ports: []int{0}, UOps: 1},
			FMA:    {LatencyCycles: 8, RecipThroughput: 2, Ports: []int{0}, UOps: 1},
			FDiv:   {LatencyCycles: 30, RecipThroughput: 30, Ports: []int{0}, UOps: 1},
			Load:   {LatencyCycles: 3, RecipThroughput: 1, Ports: []int{1}, UOps: 1},
			Store:  {LatencyCycles: 3, RecipThroughput: 1, Ports: []int{1}, UOps: 1},
			Branch: {LatencyCycles: 1, RecipThroughput: 1, Ports: []int{0}, UOps: 1},
		},
	}
}

// Instr is one instruction instance in a kernel loop body: an operation
// with dependency edges to earlier instructions in the same body (by
// index; -1 or out-of-range entries are ignored). Deps crossing loop
// iterations are expressed by LoopCarried naming the instruction index in
// the previous iteration.
type Instr struct {
	Op   Op
	Deps []int
	// LoopCarried holds indices of instructions in the *previous* loop
	// iteration whose results this instruction consumes (e.g. the
	// accumulator in a reduction).
	LoopCarried []int
	// Comment is an optional annotation for listings.
	Comment string
}

// Kernel is a straight-line loop body to be analyzed or simulated.
type Kernel struct {
	Name string
	Body []Instr
}

// FLOPsPerIteration sums the floating-point work of one loop body.
func (k *Kernel) FLOPsPerIteration() float64 {
	var f float64
	for _, in := range k.Body {
		f += in.Op.FLOPs()
	}
	return f
}

// Validate checks that dependency indices reference earlier instructions.
func (k *Kernel) Validate() error {
	for i, in := range k.Body {
		for _, d := range in.Deps {
			if d >= i {
				return fmt.Errorf("isa: kernel %q instr %d depends on later instr %d", k.Name, i, d)
			}
		}
		for _, d := range in.LoopCarried {
			if d < 0 || d >= len(k.Body) {
				return fmt.Errorf("isa: kernel %q instr %d loop-carried dep %d out of range", k.Name, i, d)
			}
		}
	}
	return nil
}

// DotProductKernel returns the scalar dot-product loop body:
// load, load, fma into accumulator (loop-carried).
func DotProductKernel() *Kernel {
	return &Kernel{
		Name: "dot-product",
		Body: []Instr{
			{Op: Load, Comment: "x[i]"},
			{Op: Load, Comment: "y[i]"},
			{Op: FMA, Deps: []int{0, 1}, LoopCarried: []int{2}, Comment: "acc += x*y"},
		},
	}
}

// TriadKernel returns the STREAM triad loop body a[i] = b[i] + s*c[i].
func TriadKernel() *Kernel {
	return &Kernel{
		Name: "stream-triad",
		Body: []Instr{
			{Op: Load, Comment: "b[i]"},
			{Op: Load, Comment: "c[i]"},
			{Op: FMA, Deps: []int{0, 1}, Comment: "b + s*c"},
			{Op: Store, Deps: []int{2}, Comment: "a[i]"},
		},
	}
}

// MatMulInnerKernel returns the ikj matmul inner loop body:
// c[j] += a_ik * b[j] with the multiplier held in a register.
func MatMulInnerKernel() *Kernel {
	return &Kernel{
		Name: "matmul-inner-ikj",
		Body: []Instr{
			{Op: Load, Comment: "b[k*n+j]"},
			{Op: Load, Comment: "c[i*n+j]"},
			{Op: FMA, Deps: []int{0, 1}, Comment: "c += a*b"},
			{Op: Store, Deps: []int{2}, Comment: "c[i*n+j]"},
		},
	}
}
