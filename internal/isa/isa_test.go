package isa

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	if FMA.String() != "fma" || Load.String() != "load" {
		t.Fatal("op names wrong")
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("unknown op should fall back to numeric")
	}
}

func TestOpFLOPs(t *testing.T) {
	cases := map[Op]float64{
		FAdd: 1, FMul: 1, FMA: 2, FDiv: 1,
		VecFAdd: 4, VecFMA: 8,
		Load: 0, Store: 0, IntAdd: 0, Branch: 0,
	}
	for op, want := range cases {
		if got := op.FLOPs(); got != want {
			t.Errorf("%v FLOPs = %v, want %v", op, got, want)
		}
	}
}

func TestTablesValidate(t *testing.T) {
	for _, tbl := range []*Table{Haswell(), SimpleInOrder()} {
		if err := tbl.Validate(); err != nil {
			t.Errorf("%s: %v", tbl.Name, err)
		}
	}
}

func TestTableValidateRejects(t *testing.T) {
	cases := []*Table{
		{Name: "no ports", NumPorts: 0},
		{Name: "neg latency", NumPorts: 2,
			Timings: map[Op]Timing{FAdd: {LatencyCycles: -1, RecipThroughput: 1, Ports: []int{0}, UOps: 1}}},
		{Name: "no op ports", NumPorts: 2,
			Timings: map[Op]Timing{FAdd: {LatencyCycles: 1, RecipThroughput: 1, UOps: 1}}},
		{Name: "port range", NumPorts: 2,
			Timings: map[Op]Timing{FAdd: {LatencyCycles: 1, RecipThroughput: 1, Ports: []int{5}, UOps: 1}}},
		{Name: "zero uops", NumPorts: 2,
			Timings: map[Op]Timing{FAdd: {LatencyCycles: 1, RecipThroughput: 1, Ports: []int{0}}}},
	}
	for _, tbl := range cases {
		if err := tbl.Validate(); err == nil {
			t.Errorf("%s: expected error", tbl.Name)
		}
	}
}

func TestLookupFallback(t *testing.T) {
	tbl := SimpleInOrder()
	if _, ok := tbl.Lookup(FAdd); !ok {
		t.Fatal("FAdd should be present")
	}
	tm, ok := tbl.Lookup(VecFMA) // not in the in-order table
	if ok {
		t.Fatal("VecFMA should be missing")
	}
	if tm.LatencyCycles <= 0 || tm.RecipThroughput <= 0 {
		t.Fatal("fallback timing must be usable")
	}
}

func TestHaswellNumbers(t *testing.T) {
	tbl := Haswell()
	fma, _ := tbl.Lookup(FMA)
	if fma.LatencyCycles != 5 || fma.RecipThroughput != 0.5 {
		t.Fatalf("FMA timing = %+v", fma)
	}
	ld, _ := tbl.Lookup(Load)
	if len(ld.Ports) != 2 {
		t.Fatal("Haswell has two load ports")
	}
}

func TestKernelValidate(t *testing.T) {
	for _, k := range []*Kernel{DotProductKernel(), TriadKernel(), MatMulInnerKernel()} {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
	bad := &Kernel{Name: "fwd", Body: []Instr{{Op: FAdd, Deps: []int{1}}, {Op: FAdd}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("forward dep must fail")
	}
	bad2 := &Kernel{Name: "lc", Body: []Instr{{Op: FAdd, LoopCarried: []int{7}}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range loop-carried dep must fail")
	}
}

func TestKernelFLOPs(t *testing.T) {
	if got := DotProductKernel().FLOPsPerIteration(); got != 2 {
		t.Fatalf("dot FLOPs = %v", got)
	}
	if got := TriadKernel().FLOPsPerIteration(); got != 2 {
		t.Fatalf("triad FLOPs = %v", got)
	}
}

func TestZen2Table(t *testing.T) {
	tbl := Zen2()
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zen 2's signature: FADD and FMA live on disjoint pipe pairs.
	fadd, _ := tbl.Lookup(FAdd)
	fma, _ := tbl.Lookup(FMA)
	for _, pa := range fadd.Ports {
		for _, pm := range fma.Ports {
			if pa == pm {
				t.Fatal("Zen2 FADD and FMA must not share ports")
			}
		}
	}
	// And its FADD latency (3) beats Haswell's FMA-fused add path (5 on
	// FMA, 3 on FADD port 1) in throughput: two FADD pipes vs one.
	hw, _ := Haswell().Lookup(FAdd)
	if fadd.RecipThroughput >= hw.RecipThroughput {
		t.Fatalf("Zen2 FADD throughput %v should beat Haswell %v",
			fadd.RecipThroughput, hw.RecipThroughput)
	}
}
