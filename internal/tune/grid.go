// Candidate generation: the cartesian grid successive halving starts
// from, and the neighborhood function hill climbing refines with. The
// grid is deliberately coarse — halving is cheap per candidate but the
// budget is reps × candidates, so the grid covers regimes (policies,
// order-of-magnitude grains, power-of-two tiles) and the hill climb
// fills in between the survivors.
package tune

import "runtime"

// GridSpec enumerates the axes of a kernel's tuning space. Empty axes
// contribute the default (zero) value only, so a kernel without tiles
// simply leaves Tiles nil.
type GridSpec struct {
	// Policies are sched policy names ("" = kernel default).
	Policies []string
	// Grains are minimum scheduled range sizes (0 = automatic).
	Grains []int
	// Workers are pinned static chunk counts (0 = whole pool). A
	// candidate never sets both Workers and Grain.
	Workers []int
	// Tiles are tile edges for tiled kernels (0 = kernel default).
	Tiles []int
}

// Build expands the spec into the candidate list: the cross product of
// (policy × grain × tile) plus (policy-independent) pinned-worker
// splits, deduplicated, zero config excluded (the default is the
// incumbent, not a candidate).
func (g GridSpec) Build() []Config {
	pols := g.Policies
	if len(pols) == 0 {
		pols = []string{""}
	}
	grains := g.Grains
	if len(grains) == 0 {
		grains = []int{0}
	}
	tiles := g.Tiles
	if len(tiles) == 0 {
		tiles = []int{0}
	}
	seen := map[Config]bool{{}: true}
	var out []Config
	add := func(c Config) {
		if !seen[c] && c.Validate() == nil {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, p := range pols {
		for _, gr := range grains {
			for _, t := range tiles {
				add(Config{Policy: p, Grain: gr, Tile: t})
			}
		}
	}
	for _, w := range g.Workers {
		if w <= 0 {
			continue
		}
		for _, t := range tiles {
			add(Config{Workers: w, Tile: t})
		}
	}
	return out
}

// DefaultGrains proposes order-of-magnitude grain sizes for an
// n-element iteration space: n/64 … n/2 clamped to >= 1, deduplicated.
func DefaultGrains(n int) []int {
	out := make([]int, 0, 4)
	last := -1
	for _, div := range []int{64, 16, 4, 2} {
		g := n / div
		if g < 1 {
			g = 1
		}
		if g != last {
			out = append(out, g)
			last = g
		}
	}
	return out
}

// DefaultWorkers proposes pinned chunk counts around the host's
// parallelism: 1, P/2, P, 2P (deduplicated, P = GOMAXPROCS).
func DefaultWorkers() []int {
	p := runtime.GOMAXPROCS(0)
	cands := []int{1, p / 2, p, 2 * p}
	seen := map[int]bool{}
	out := make([]int, 0, len(cands))
	for _, w := range cands {
		if w >= 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// DefaultNeighbors is the hill-climbing move set: halve/double the
// grain (or step to a small grain if unset), halve/double the tile
// within [8, 512], step the worker pin up and down, and try the other
// scheduling policies at the current shape. Every move changes one
// knob, which keeps the neighborhood small and the climb attributable.
func DefaultNeighbors(c Config) []Config {
	var out []Config
	add := func(nc Config) {
		if nc != c && nc.Validate() == nil {
			out = append(out, nc)
		}
	}
	if c.Workers > 0 {
		nc := c
		nc.Workers = c.Workers * 2
		add(nc)
		nc = c
		nc.Workers = c.Workers / 2
		add(nc) // Workers 1 → 0 falls back to pool scheduling
	} else {
		switch {
		case c.Grain > 1:
			nc := c
			nc.Grain = c.Grain / 2
			add(nc)
			nc = c
			nc.Grain = c.Grain * 2
			add(nc)
		case c.Grain == 0:
			for _, g := range []int{16, 64} {
				nc := c
				nc.Grain = g
				add(nc)
			}
		default: // Grain == 1
			nc := c
			nc.Grain = 2
			add(nc)
		}
		for _, p := range []string{"", "static", "guided", "stealing"} {
			nc := c
			nc.Policy = p
			add(nc)
		}
	}
	if c.Tile > 0 {
		if c.Tile > 8 {
			nc := c
			nc.Tile = c.Tile / 2
			add(nc)
		}
		if c.Tile < 512 {
			nc := c
			nc.Tile = c.Tile * 2
			add(nc)
		}
	}
	return out
}
