package tune

import (
	"math/rand"
	"testing"
)

// fakeSurface is a deterministic noisy cost model: every config has a
// fixed true mean drawn once per seed, and samples are the mean plus
// bounded multiplicative noise from a per-call RNG. It lets the
// property test sweep many random landscapes without touching a clock.
type fakeSurface struct {
	rng   *rand.Rand
	noise float64
	means map[Config]float64
}

func newFakeSurface(seed int64, noise float64) *fakeSurface {
	return &fakeSurface{
		rng:   rand.New(rand.NewSource(seed)),
		noise: noise,
		means: map[Config]float64{},
	}
}

func (f *fakeSurface) measurer() Measurer {
	return func(cfg Config, reps int) ([]float64, error) {
		mean, ok := f.means[cfg]
		if !ok {
			// True cost in [50µs, 150µs), fixed per config.
			mean = 50e3 + f.rng.Float64()*100e3
			f.means[cfg] = mean
		}
		out := make([]float64, reps)
		for i := range out {
			out[i] = mean * (1 + f.noise*(2*f.rng.Float64()-1))
		}
		return out, nil
	}
}

// TestSearchNeverPromotesRejected is the promotion-discipline property:
// across randomized cost surfaces — including very noisy ones where
// halving's mean ranking is unreliable — every champion replacement the
// search applied must carry a Welch verdict that passes the comparator,
// and the final Improved claim must re-verify against the recorded
// sample series. Halving may prune good configs (that is its cheap
// mistake), but a statistically unjustified config must never be
// installed.
func TestSearchNeverPromotesRejected(t *testing.T) {
	grid := GridSpec{
		Policies: []string{"", "static", "guided"},
		Grains:   []int{0, 8, 64, 512},
		Workers:  []int{1, 2, 4},
		Tiles:    []int{16, 64},
	}.Build()
	const alpha, minEffect = 0.05, 0.05

	for seed := int64(0); seed < 50; seed++ {
		// Odd seeds get noise comparable to the effect floor, where a
		// sloppy promotion rule would trip.
		noise := 0.01
		if seed%2 == 1 {
			noise = 0.08
		}
		surf := newFakeSurface(seed, noise)
		res, err := Search("fake", 100, Config{}, grid, surf.measurer(),
			Options{Alpha: alpha, MinEffect: minEffect})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, p := range res.Promotions {
			if !p.Welch.Significant(alpha) {
				t.Errorf("seed %d: promotion %d (%s -> %s) not significant: p=%g",
					seed, i, p.From, p.To, p.Welch.P)
			}
			if p.Delta < minEffect {
				t.Errorf("seed %d: promotion %d (%s -> %s) below effect floor: delta=%g",
					seed, i, p.From, p.To, p.Delta)
			}
		}
		if res.Improved {
			if len(res.Promotions) == 0 {
				t.Errorf("seed %d: Improved without any recorded promotion", seed)
			}
			if _, ok := Better(res.BestSamples, res.DefaultSamples, alpha, minEffect); !ok {
				t.Errorf("seed %d: Improved but best-vs-default fails the comparator (p=%g, speedup=%.3f)",
					seed, res.Welch.P, res.Speedup)
			}
		} else if res.Best != res.Default {
			t.Errorf("seed %d: not Improved but Best %s != Default %s", seed, res.Best, res.Default)
		}
	}
}

// TestSearchFindsPlantedOptimum checks the engine actually optimizes: on
// a low-noise surface with one config 3x faster than everything else,
// the search must find and promote it.
func TestSearchFindsPlantedOptimum(t *testing.T) {
	grid := GridSpec{
		Policies: []string{"", "static", "guided"},
		Grains:   []int{0, 8, 64},
		Tiles:    []int{16, 64},
	}.Build()
	best := Config{Policy: "guided", Grain: 64, Tile: 16}

	surf := newFakeSurface(7, 0.005)
	inner := surf.measurer()
	if _, err := inner(best, 2); err != nil { // materialize, then plant
		t.Fatal(err)
	}
	surf.means[best] = 20e3
	surf.means[Config{}] = 60e3

	res, err := Search("fake", 100, Config{}, grid, inner, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != best {
		t.Fatalf("planted optimum %s not found; got %s (speedup %.2f)", best, res.Best, res.Speedup)
	}
	if !res.Improved || res.Speedup < 2 {
		t.Fatalf("planted 3x win reported as Improved=%v speedup=%.2f", res.Improved, res.Speedup)
	}
}

// TestSearchTieKeepsDefaults: when every config costs the same, the
// defaults must survive and the result must be an explicit match
// (speedup 1, Best == Default) — the beat-or-match contract.
func TestSearchTieKeepsDefaults(t *testing.T) {
	grid := GridSpec{Policies: []string{"static", "guided"}, Grains: []int{8, 64}}.Build()
	flat := func(cfg Config, reps int) ([]float64, error) {
		out := make([]float64, reps)
		for i := range out {
			out[i] = 100e3
		}
		return out, nil
	}
	res, err := Search("fake", 100, Config{}, grid, flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Improved || res.Best != (Config{}) || res.Speedup != 1 {
		t.Fatalf("flat surface: Improved=%v Best=%s Speedup=%.2f, want defaults kept",
			res.Improved, res.Best, res.Speedup)
	}
}

func TestBetterRejectsInsignificantAndSmallWins(t *testing.T) {
	inc := []float64{100, 101, 99, 100, 100, 101, 99, 100}
	// 2% faster with tight variance: significant but below the floor.
	small := []float64{98, 98.2, 97.8, 98, 98.1, 97.9, 98, 98}
	if _, ok := Better(small, inc, 0.05, 0.05); ok {
		t.Error("2%% win promoted past a 5%% practical-effect floor")
	}
	// 20% faster but wildly noisy: fails significance.
	noisy := []float64{40, 160, 30, 150, 45, 140, 35, 40}
	if _, ok := Better(noisy, inc, 0.05, 0.05); ok {
		t.Error("insignificant noisy series promoted")
	}
	// 20% faster, tight: passes both filters.
	good := []float64{80, 80.5, 79.5, 80, 80.2, 79.8, 80, 80}
	if _, ok := Better(good, inc, 0.05, 0.05); !ok {
		t.Error("clear significant win rejected")
	}
}
