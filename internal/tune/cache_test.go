package tune

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"perfeng/internal/benchgate"
)

func sampleCache() *Cache {
	return &Cache{
		CreatedAt: "2026-08-08T00:00:00Z",
		Env:       HostEnvironment(),
		Entries: []Entry{
			{Kernel: KernelMatMul, N: 256,
				Config:    Config{Policy: "guided", Grain: 32, Tile: 64},
				DefaultNs: 1.5e6, TunedNs: 1.2e6, Speedup: 1.25, P: 0.003,
				Improved: true, Trials: 90},
			{Kernel: KernelHistogram, N: 1 << 20,
				Config: Config{}, Speedup: 1, P: 1, Improved: false, Trials: 40},
		},
	}
}

func TestCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "TUNED.json")
	want := sampleCache()
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("Save stamped schema %d, want %d", got.Schema, SchemaVersion)
	}
	if e, ok := got.Find(KernelMatMul, 256); !ok || e.Config.Tile != 64 {
		t.Fatalf("Find(matmul, 256) = %+v, %v", e, ok)
	}
	if _, ok := got.Find(KernelMatMul, 512); ok {
		t.Fatal("Find matched a shape that was never recorded")
	}
}

func TestLoadRejectsBadCaches(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"future schema": `{"schema": 99, "env": {}, "entries": [{"kernel": "matmul", "n": 8, "config": {}}]}`,
		"no entries":    `{"schema": 1, "env": {}, "entries": []}`,
		"no kernel":     `{"schema": 1, "env": {}, "entries": [{"kernel": "", "n": 8, "config": {}}]}`,
		"bad config":    `{"schema": 1, "env": {}, "entries": [{"kernel": "matmul", "n": 8, "config": {"policy": "magic"}}]}`,
		"not json":      `]`,
	}
	i := 0
	for name, body := range cases {
		i++
		if _, err := Load(write(strings.ReplaceAll(name, " ", "-")+".json", body)); err == nil {
			t.Errorf("%s: Load accepted a cache it must reject", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want IsNotExist", err)
	}
}

// TestLoadAndActivateEnvInvalidation: a cache fingerprinted on a
// different machine must be refused with ErrEnvMismatch and must leave
// the runtime table untouched — tuned configs are machine facts.
func TestLoadAndActivateEnvInvalidation(t *testing.T) {
	Activate(nil)
	t.Cleanup(func() { Activate(nil) })

	c := sampleCache()
	c.Env = benchgate.Environment{GOOS: "plan9", GOARCH: "mips", NumCPU: 1024, Procs: 1024}
	path := filepath.Join(t.TempDir(), "TUNED.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadAndActivate(path)
	if !errors.Is(err, ErrEnvMismatch) {
		t.Fatalf("foreign env: err = %v, want ErrEnvMismatch", err)
	}
	if got == nil {
		t.Fatal("LoadAndActivate should still return the parsed cache for reporting")
	}
	if Active() {
		t.Fatal("foreign cache was activated")
	}

	// The same cache stamped with this host's fingerprint activates.
	c.Env = HostEnvironment()
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAndActivate(path); err != nil {
		t.Fatalf("matching env: %v", err)
	}
	if !Active() {
		t.Fatal("matching cache did not activate")
	}
	if cfg, ok := Lookup(KernelMatMul, 256); !ok || cfg.Tile != 64 {
		t.Fatalf("Lookup after activation = %+v, %v", cfg, ok)
	}
}

func TestConfigValidateAndString(t *testing.T) {
	if err := (Config{Policy: "warp"}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := (Config{Grain: -1}).Validate(); err == nil {
		t.Error("negative grain accepted")
	}
	if got := (Config{}).String(); got != "defaults" {
		t.Errorf("zero config renders %q", got)
	}
	if got := (Config{Policy: "guided", Grain: 8, Tile: 32}).String(); got != "guided/g=8/t=32" {
		t.Errorf("config renders %q", got)
	}
	if got := (Config{Workers: 4}).String(); got != "stealing/w=4" {
		t.Errorf("worker-pinned config renders %q", got)
	}
}
