// The on-disk tuning cache: TUNED.json at the repository root, in the
// same artifact spirit as benchgate's BENCH_<n>.json baselines — every
// persisted winner carries the measurement that justified it (default
// and tuned ns/op, speedup, p-value) and the environment fingerprint it
// was measured on, so a reader can audit why a knob is set and the
// loader can refuse to apply another machine's tunings.
package tune

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"perfeng/internal/benchgate"
)

// SchemaVersion is the on-disk cache format version.
const SchemaVersion = 1

// DefaultPath is where the cache lives relative to the repo root.
const DefaultPath = "TUNED.json"

// ErrEnvMismatch reports a cache recorded on a different machine.
var ErrEnvMismatch = errors.New("tune: cache environment does not match this host")

// Entry is one persisted winner: the config to apply for a
// kernel×shape, plus the evidence that made it win.
type Entry struct {
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	Config Config `json:"config"`
	// DefaultNs/TunedNs are mean ns/op of the kernel's built-in
	// defaults and of Config, measured by the search's final budget.
	DefaultNs float64 `json:"default_ns_per_op,omitempty"`
	TunedNs   float64 `json:"tuned_ns_per_op,omitempty"`
	// Speedup is DefaultNs/TunedNs (1.0 = the defaults won and were
	// kept — beat-or-match keeps an explicit "match" entry so the gate
	// can still verify it).
	Speedup float64 `json:"speedup,omitempty"`
	// P is the two-sided Welch p-value of the final tuned-vs-default
	// comparison.
	P float64 `json:"p,omitempty"`
	// Improved records whether Config beat the defaults significantly
	// (p < alpha and relative win >= the practical floor). When false,
	// Config equals the zero config and the entry documents a verified
	// tie.
	Improved bool `json:"improved"`
	// Trials is how many candidate measurements the search spent.
	Trials int `json:"trials,omitempty"`
}

// Cache is the versioned collection of winners for one machine.
type Cache struct {
	Schema    int                   `json:"schema"`
	CreatedAt string                `json:"created_at,omitempty"`
	Env       benchgate.Environment `json:"env"`
	Entries   []Entry               `json:"entries"`
}

// Find returns the entry recorded for exactly (kernel, n), if any.
func (c *Cache) Find(kernel string, n int) (Entry, bool) {
	for _, e := range c.Entries {
		if e.Kernel == kernel && e.N == n {
			return e, true
		}
	}
	return Entry{}, false
}

// EnvMatches reports whether the cache was recorded on an environment
// comparable to env (benchgate's comparability rule: same OS, arch,
// CPU model and count, compatible GOMAXPROCS).
func (c *Cache) EnvMatches(env benchgate.Environment) bool {
	return c.Env.Matches(env)
}

// Save writes the cache as indented JSON.
func (c *Cache) Save(path string) error {
	c.Schema = SchemaVersion
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a cache file. It does not check the
// environment — callers decide whether a mismatch warns (CI on a
// foreign runner) or refuses (LoadAndActivate).
func Load(path string) (*Cache, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Cache
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if c.Schema != SchemaVersion {
		return nil, fmt.Errorf("tune: %s: schema %d, this build reads %d",
			path, c.Schema, SchemaVersion)
	}
	if len(c.Entries) == 0 {
		return nil, fmt.Errorf("tune: %s: no entries", path)
	}
	for i, e := range c.Entries {
		if e.Kernel == "" || e.N <= 0 {
			return nil, fmt.Errorf("tune: %s: entry %d has no kernel/shape", path, i)
		}
		if err := e.Config.Validate(); err != nil {
			return nil, fmt.Errorf("tune: %s: entry %d: %w", path, i, err)
		}
	}
	return &c, nil
}

// LoadAndActivate loads path and installs it as the process tuning
// table, but only when its environment fingerprint matches this host —
// a cache tuned on another machine returns ErrEnvMismatch and leaves
// the kernels on their defaults (tuned configs are machine facts).
func LoadAndActivate(path string) (*Cache, error) {
	c, err := Load(path)
	if err != nil {
		return nil, err
	}
	if !c.EnvMatches(HostEnvironment()) {
		return c, fmt.Errorf("%w (cache: %s, host: %s)", ErrEnvMismatch, c.Env, HostEnvironment())
	}
	Activate(c)
	return c, nil
}
