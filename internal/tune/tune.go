// Package tune closes the measure→model→optimize loop of the course's
// seven-stage process: instead of a human turning the scheduler and
// tiling knobs, a search engine measures candidate configurations per
// kernel×shape, accepts a candidate only when Welch's t-test says it is
// significantly faster than the incumbent past a practical-effect floor
// (the same statistical bar the benchmark-regression gate applies), and
// persists winners to a versioned on-disk cache (TUNED.json) that the
// kernels consult at runtime.
//
// The package splits into three layers:
//
//   - the runtime lookup (lookup.go): an atomic table the parallel
//     kernels query on every dispatch. The hot path is one atomic load,
//     one map access and a short scan — 0 allocs, gated by the
//     tune-lookup entry of BenchmarkSmoke. No active cache (or no
//     matching entry) falls back to the kernels' built-in defaults, so
//     a missing, stale or wrong-machine TUNED.json can never change
//     results or make anything slower than the untuned build.
//   - the cache codec (cache.go): schema-versioned JSON carrying each
//     winner's config, the measured speedup and p-value that justified
//     it, and the environment fingerprint it was measured on. A cache
//     recorded on a different machine is invalid — tuned configs are
//     machine facts, not code facts.
//   - the search engine (search.go): successive halving over a
//     generated candidate grid, refined by hill climbing on the
//     survivors. Ranking inside a halving round uses means (pruning is
//     cheap and reversible across rounds); *promotion* — replacing the
//     incumbent champion — always goes through the Welch-t comparator,
//     so the search can never install a config the statistics rejected.
//
// Kernel bindings (which knobs exist per kernel and how to run one
// trial) live in the tunables subpackage, so this package stays
// import-light and the kernels themselves can depend on it for Lookup.
package tune

import (
	"fmt"
	"runtime"
	"strconv"

	"perfeng/internal/benchgate"
	"perfeng/internal/sched"
)

// Kernel names the built-in wiring uses when consulting the cache. The
// kernels package passes these to Lookup; the tunables subpackage
// records entries under the same names.
const (
	KernelMatMul    = "matmul"
	KernelStencil   = "stencil"
	KernelSpMVCSR   = "spmv-csr"
	KernelHistogram = "histogram"
)

// Config is one point in the tuning space. The zero value means "the
// kernel's built-in defaults" on every axis, so a Config can always be
// applied partially: a kernel without a tile ignores Tile, a sequential
// kernel ignores all of it.
type Config struct {
	// Policy is the sched decomposition policy: "stealing", "static",
	// "guided", or "" for the kernel's default (stealing).
	Policy string `json:"policy,omitempty"`
	// Grain is the smallest index range worth scheduling (0 = the
	// pool's automatic grain). Ignored when Workers > 0.
	Grain int `json:"grain,omitempty"`
	// Workers > 0 pins the decomposition to that many contiguous
	// chunks (grain = ceil(n/Workers)), the classic static split; 0
	// uses the whole pool under Policy/Grain.
	Workers int `json:"workers,omitempty"`
	// Tile is the tile edge for tiled kernels (0 = kernel default).
	Tile int `json:"tile,omitempty"`
}

// SchedPolicy maps the policy name onto the scheduler's enum, falling
// back to the given default for "" or an unknown name.
func (c Config) SchedPolicy(def sched.Policy) sched.Policy {
	switch c.Policy {
	case "static":
		return sched.PolicyStatic
	case "guided":
		return sched.PolicyGuided
	case "stealing":
		return sched.PolicyStealing
	}
	return def
}

// EffectiveGrain resolves the grain the scheduler should use for a
// dispatch over n indices: a pinned worker count wins over Grain.
func (c Config) EffectiveGrain(n int) int {
	if c.Workers > 0 {
		return (n + c.Workers - 1) / c.Workers
	}
	return c.Grain
}

// IsDefault reports whether the config leaves every knob at the
// kernel's built-in default.
func (c Config) IsDefault() bool { return c == Config{} }

// String renders the config compactly ("defaults" for the zero value).
func (c Config) String() string {
	if c.IsDefault() {
		return "defaults"
	}
	s := c.Policy
	if s == "" {
		s = "stealing"
	}
	if c.Workers > 0 {
		s += "/w=" + strconv.Itoa(c.Workers)
	} else if c.Grain > 0 {
		s += "/g=" + strconv.Itoa(c.Grain)
	}
	if c.Tile > 0 {
		s += "/t=" + strconv.Itoa(c.Tile)
	}
	return s
}

// Validate rejects configs the dispatch layer cannot honor.
func (c Config) Validate() error {
	switch c.Policy {
	case "", "stealing", "static", "guided":
	default:
		return fmt.Errorf("tune: unknown policy %q", c.Policy)
	}
	if c.Grain < 0 || c.Workers < 0 || c.Tile < 0 {
		return fmt.Errorf("tune: negative knob in %+v", c)
	}
	return nil
}

// HostEnvironment fingerprints the running process the way benchgate
// fingerprints a benchmark run: OS, architecture, CPU count and
// GOMAXPROCS. The CPU model is left empty — it is only known from `go
// test` output headers, and Matches treats empty-vs-empty as equal, so
// in-process recordings compare consistently with each other.
func HostEnvironment() benchgate.Environment {
	return benchgate.Environment{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
	}
}
