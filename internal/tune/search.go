// The search engine: successive halving over a candidate grid, refined
// by hill climbing on the survivors.
//
// Two different statistical standards apply at two different places,
// deliberately:
//
//   - *Pruning* (dropping the slower half of a halving round) ranks by
//     mean ns/op at a small repetition budget. Pruning mistakes are
//     cheap — a good config mistakenly dropped just leaves the
//     incumbent in place — so halving spends its budget where the
//     candidates are, doubling repetitions only for survivors.
//   - *Promotion* (replacing the incumbent champion) is Hasselbring's
//     "benchmarking as empirical standard" bar: Welch's t-test at the
//     full budget, significant at alpha AND faster past a practical
//     floor, the same two filters benchgate applies to regressions.
//     The search can therefore never install a config the comparator
//     rejected — TestSearchNeverPromotesRejected holds this as a
//     property over randomized cost surfaces.
package tune

import (
	"fmt"
	"strconv"
	"time"

	"perfeng/internal/stats"
)

// Measurer runs one candidate config for reps repetitions and returns
// the per-repetition ns/op samples. The tunables subpackage builds
// measurers that install cfg via ActivateOne and run the kernel through
// its public entry point, so a trial measures the exact dispatch path
// production uses.
type Measurer func(cfg Config, reps int) ([]float64, error)

// Options tunes the search budget and the promotion bar.
type Options struct {
	// InitialReps is the repetition budget of the first halving round;
	// each round doubles it up to FinalReps (defaults 4 and 10).
	InitialReps int
	FinalReps   int
	// Survivors stops halving when this many candidates remain
	// (default 3); each survivor then gets a full-budget audition.
	Survivors int
	// HillSteps bounds the hill-climbing refinement rounds after
	// halving (default 6); the climb also stops at the first round
	// that promotes nothing.
	HillSteps int
	// Alpha and MinEffect are the promotion bar: Welch significance
	// level and minimum practical relative win (defaults 0.05 and
	// 0.05, matching benchgate's gate thresholds).
	Alpha     float64
	MinEffect float64
	// Neighbors generates hill-climb moves from a config; nil uses
	// DefaultNeighbors.
	Neighbors func(Config) []Config
}

func (o Options) withDefaults() Options {
	if o.InitialReps <= 0 {
		o.InitialReps = 4
	}
	if o.FinalReps < o.InitialReps {
		o.FinalReps = 10
		if o.FinalReps < o.InitialReps {
			o.FinalReps = o.InitialReps
		}
	}
	if o.Survivors <= 0 {
		o.Survivors = 3
	}
	if o.HillSteps < 0 {
		o.HillSteps = 0
	} else if o.HillSteps == 0 {
		o.HillSteps = 6
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.MinEffect <= 0 {
		o.MinEffect = 0.05
	}
	if o.Neighbors == nil {
		o.Neighbors = DefaultNeighbors
	}
	return o
}

// Trial is one measured candidate, kept for the audit trail the CI job
// renders as its markdown summary.
type Trial struct {
	Config Config  `json:"config"`
	Stage  string  `json:"stage"` // "default", "halving-<r>", "survivor", "hillclimb-<r>"
	Reps   int     `json:"reps"`
	MeanNs float64 `json:"mean_ns"`
	Pruned bool    `json:"pruned,omitempty"`
}

// Promotion records one champion replacement and the Welch outcome that
// authorized it.
type Promotion struct {
	From   Config      `json:"from"`
	To     Config      `json:"to"`
	Stage  string      `json:"stage"`
	Delta  float64     `json:"delta"` // relative win of To over From (positive)
	Welch  stats.Welch `json:"welch"`
	Accept bool        `json:"accept"` // always true for applied promotions
}

// Result is the outcome of one kernel×shape search.
type Result struct {
	Kernel  string `json:"kernel"`
	N       int    `json:"n"`
	Default Config `json:"default"`
	Best    Config `json:"best"`
	// Improved is true when Best beat Default through the comparator;
	// false means the defaults survived (Best == Default).
	Improved  bool        `json:"improved"`
	DefaultNs float64     `json:"default_ns"`
	BestNs    float64     `json:"best_ns"`
	Speedup   float64     `json:"speedup"`
	Welch     stats.Welch `json:"welch"`
	// DefaultSamples/BestSamples are the full-budget ns/op series
	// behind the verdict, kept raw so the gate can re-test them.
	DefaultSamples []float64   `json:"default_samples,omitempty"`
	BestSamples    []float64   `json:"best_samples,omitempty"`
	Trials         []Trial     `json:"trials"`
	Promotions     []Promotion `json:"promotions,omitempty"`
}

// Better is the promotion comparator: cand beats incumbent iff Welch's
// t-test finds the series significantly different at alpha AND cand's
// mean is faster by at least minEffect (relative). It returns the test
// outcome either way so callers can record the evidence.
func Better(cand, incumbent []float64, alpha, minEffect float64) (stats.Welch, bool) {
	w, err := stats.WelchTTest(incumbent, cand)
	if err != nil {
		return stats.Welch{}, false
	}
	mi, mc := stats.Mean(incumbent), stats.Mean(cand)
	if mi <= 0 {
		return w, false
	}
	win := (mi - mc) / mi
	return w, w.Significant(alpha) && win >= minEffect
}

// Search runs the engine for one kernel×shape: measure the defaults at
// full budget, successively halve grid, audition the survivors, hill
// climb from the champion, and return the audited result. The returned
// Result.Best equals def unless a candidate passed the comparator.
func Search(kernel string, n int, def Config, grid []Config, measure Measurer, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	th := tel.Load()

	res := &Result{Kernel: kernel, N: n, Default: def, Best: def}
	trial := func(cfg Config, stage string, reps int) ([]float64, error) {
		start := time.Now()
		s, err := measure(cfg, reps)
		if err != nil {
			return nil, fmt.Errorf("tune: %s/%s %v: %w", kernel, stage, cfg, err)
		}
		if len(s) < 2 {
			return nil, fmt.Errorf("tune: %s/%s %v: measurer returned %d samples, need >= 2",
				kernel, stage, cfg, len(s))
		}
		th.trials().Inc()
		th.trialSeconds().Observe(time.Since(start).Seconds())
		res.Trials = append(res.Trials, Trial{
			Config: cfg, Stage: stage, Reps: reps, MeanNs: stats.Mean(s),
		})
		return s, nil
	}

	defSamples, err := trial(def, "default", opts.FinalReps)
	if err != nil {
		return nil, err
	}
	res.DefaultNs = stats.Mean(defSamples)
	res.DefaultSamples = defSamples
	champ, champSamples := def, defSamples
	th.bestNs(kernel).Set(res.DefaultNs)

	// promote applies the comparator; it is the only way champ moves.
	promote := func(cfg Config, samples []float64, stage string) bool {
		w, ok := Better(samples, champSamples, opts.Alpha, opts.MinEffect)
		if !ok {
			return false
		}
		mi, mc := stats.Mean(champSamples), stats.Mean(samples)
		res.Promotions = append(res.Promotions, Promotion{
			From: champ, To: cfg, Stage: stage, Delta: (mi - mc) / mi, Welch: w, Accept: true,
		})
		champ, champSamples = cfg, samples
		th.promotions().Inc()
		th.bestNs(kernel).Set(mc)
		return true
	}

	// Successive halving: rank by mean, drop the slower half, double
	// the budget. Candidates equal to the default are skipped — the
	// default is already the incumbent at full budget.
	pool := make([]Config, 0, len(grid))
	seen := map[Config]bool{def: true}
	for _, c := range grid {
		if c.Validate() != nil || seen[c] {
			continue
		}
		seen[c] = true
		pool = append(pool, c)
	}
	reps := opts.InitialReps
	for round := 1; len(pool) > opts.Survivors; round++ {
		stage := "halving-" + strconv.Itoa(round)
		ranked := make([]scored, 0, len(pool))
		for _, cfg := range pool {
			s, err := trial(cfg, stage, reps)
			if err != nil {
				return nil, err
			}
			ranked = append(ranked, scored{cfg, stats.Mean(s)})
		}
		sortScored(ranked)
		keep := (len(ranked) + 1) / 2
		if keep < opts.Survivors {
			keep = opts.Survivors
		}
		pool = pool[:0]
		for i, sc := range ranked {
			if i < keep {
				pool = append(pool, sc.cfg)
				continue
			}
			markPruned(res, sc.cfg, stage)
			th.prunes().Inc()
		}
		if reps < opts.FinalReps {
			reps *= 2
			if reps > opts.FinalReps {
				reps = opts.FinalReps
			}
		}
	}

	// Survivor auditions at full budget, through the comparator.
	for _, cfg := range pool {
		s, err := trial(cfg, "survivor", opts.FinalReps)
		if err != nil {
			return nil, err
		}
		promote(cfg, s, "survivor")
	}

	// Hill climbing from the champion: each round measures the unseen
	// neighbors cheaply, auditions the best-looking one at full
	// budget, and stops at the first round that promotes nothing.
	for step := 1; step <= opts.HillSteps; step++ {
		stage := "hillclimb-" + strconv.Itoa(step)
		nbs := opts.Neighbors(champ)
		cands := make([]scored, 0, len(nbs))
		for _, nb := range nbs {
			if nb.Validate() != nil || seen[nb] {
				continue
			}
			seen[nb] = true
			s, err := trial(nb, stage, opts.InitialReps)
			if err != nil {
				return nil, err
			}
			cands = append(cands, scored{nb, stats.Mean(s)})
		}
		if len(cands) == 0 {
			break
		}
		sortScored(cands)
		s, err := trial(cands[0].cfg, stage, opts.FinalReps)
		if err != nil {
			return nil, err
		}
		if !promote(cands[0].cfg, s, stage) {
			break
		}
	}

	res.Best = champ
	res.BestNs = stats.Mean(champSamples)
	res.BestSamples = champSamples
	res.Improved = champ != def
	res.Speedup = 1
	if res.BestNs > 0 {
		res.Speedup = res.DefaultNs / res.BestNs
	}
	if res.Improved {
		res.Welch, _ = Better(champSamples, defSamples, opts.Alpha, opts.MinEffect)
	} else {
		res.Welch = stats.Welch{P: 1}
		res.BestNs = res.DefaultNs
		res.BestSamples = defSamples
		res.Speedup = 1
	}
	return res, nil
}

// scored pairs a candidate with its mean ns/op for ranking.
type scored struct {
	cfg  Config
	mean float64
}

// sortScored orders by mean ascending, ties broken by config string for
// determinism (insertion sort: pools are tiny).
func sortScored(s []scored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			if s[j].mean < s[j-1].mean ||
				(s[j].mean == s[j-1].mean && s[j].cfg.String() < s[j-1].cfg.String()) {
				s[j], s[j-1] = s[j-1], s[j]
			} else {
				break
			}
		}
	}
}

// markPruned flags the most recent trial of cfg at stage as pruned.
func markPruned(res *Result, cfg Config, stage string) {
	for i := len(res.Trials) - 1; i >= 0; i-- {
		if res.Trials[i].Config == cfg && res.Trials[i].Stage == stage {
			res.Trials[i].Pruned = true
			return
		}
	}
}
