// The runtime side of the tuning cache: an atomically swappable table
// the parallel kernels consult on every dispatch. Design constraints,
// in order:
//
//   - Lookup sits on the dispatch path of every tuned kernel, so it
//     must be allocation-free and a few nanoseconds when a cache is
//     active, and one atomic load + one branch when none is
//     (BenchmarkSmoke gates the active path at 0 allocs/op).
//   - A miss must be indistinguishable from "tuning was never built":
//     callers fall back to their historical defaults, so activation is
//     always safe and deactivation always restores the untuned build.
package tune

import (
	"sort"
	"sync/atomic"
)

// sized is one activated entry: the shape it was tuned at and the
// winning config.
type sized struct {
	n   int
	cfg Config
}

// table is the immutable activated form of a cache. Entries are grouped
// by kernel and sorted by shape; lookups scan the (short) per-kernel
// slice for the nearest shape.
type table struct {
	byKernel map[string][]sized
}

var active atomic.Pointer[table]

// ShapeSpread bounds how far a lookup shape may sit from a tuned shape
// before the entry stops applying: within a factor of 4 either way. A
// config tuned at n=512 says nothing trustworthy about n=64 — cache
// footprints and per-range costs shift regimes — so out-of-range
// lookups miss and the kernel keeps its defaults.
const ShapeSpread = 4

// Activate installs the cache's entries as the process-wide tuning
// table and returns how many entries were installed. A nil cache (or
// one with no valid entries) deactivates tuning entirely. Entries with
// invalid configs or non-positive shapes are skipped — a doctored or
// corrupted cache degrades to defaults, never to a broken dispatch.
//
// Activation is not synchronized against in-flight lookups beyond the
// atomic swap: kernels running concurrently see either the old or the
// new table, both of which are internally consistent.
func Activate(c *Cache) int {
	if c == nil || len(c.Entries) == 0 {
		active.Store(nil)
		return 0
	}
	t := &table{byKernel: make(map[string][]sized, len(c.Entries))}
	installed := 0
	for _, e := range c.Entries {
		if e.Kernel == "" || e.N <= 0 || e.Config.Validate() != nil {
			continue
		}
		t.byKernel[e.Kernel] = append(t.byKernel[e.Kernel], sized{n: e.N, cfg: e.Config})
		installed++
	}
	if installed == 0 {
		active.Store(nil)
		return 0
	}
	for k := range t.byKernel {
		es := t.byKernel[k]
		sort.Slice(es, func(i, j int) bool { return es[i].n < es[j].n })
	}
	active.Store(t)
	return installed
}

// ActivateOne installs a single-entry table — the search engine
// measures every candidate through this, so trials run on the exact
// dispatch path the production kernels use, and tests and benchmarks
// use it to pin a known config.
func ActivateOne(kernel string, n int, cfg Config) {
	Activate(&Cache{Entries: []Entry{{Kernel: kernel, N: n, Config: cfg}}})
}

// Active reports whether a tuning table is installed.
func Active() bool { return active.Load() != nil }

// Lookup returns the tuned config for a kernel at shape n, if an
// activated entry's shape is within ShapeSpread of n (nearest entry
// wins, ties to the smaller shape). The miss path — no table, unknown
// kernel, or every entry out of range — returns (Config{}, false) and
// the caller falls back to its defaults.
//
// Hot-path contract: 0 allocs, no locks; gated by BenchmarkSmoke's
// tune-lookup entry.
func Lookup(kernel string, n int) (Config, bool) {
	t := active.Load()
	if t == nil {
		return Config{}, false
	}
	th := tel.Load()
	th.lookups().Inc()
	es := t.byKernel[kernel]
	best := -1
	var bestRatio float64
	for i := range es {
		en := es[i].n
		// ratio >= 1 measures shape distance symmetrically.
		ratio := float64(n) / float64(en)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > ShapeSpread {
			continue
		}
		if best < 0 || ratio < bestRatio {
			best, bestRatio = i, ratio
		}
	}
	if best < 0 {
		th.misses().Inc()
		return Config{}, false
	}
	th.hits().Inc()
	return es[best].cfg, true
}
